// Giant-wafer scale gate: a 30x30 mesh (899 GPMs, ~18x the Table I wafer)
// with a concentrated workload — only every tenth GPM issues traffic —
// exercising the memory-scaling machinery this repo leans on at scale:
// sparse NoC link accounting, lazy GPM instantiation and the SoA result
// columns. BenchmarkScale30x30 reports events/sec (throughput) and
// bytes/GPM (allocation per GPM from runtime.ReadMemStats deltas), both
// gated by cmd/benchjson against results/bench.json; the tests pin the
// memory bound and the serial-vs-sharded byte identity at this size.
package hdpat_test

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"

	"hdpat"
	"hdpat/internal/vm"
	"hdpat/internal/wafer"
	"hdpat/internal/workload"
)

var updateScaleGolden = flag.Bool("update-scale-golden", false, "rewrite testdata/golden_scale.json from current outputs")

const scaleGoldenPath = "testdata/golden_scale.json"

// scaleGPMs is a 30x30 wafer's GPM count (one tile is the CPU).
const scaleGPMs = 30*30 - 1

// scaleActiveEvery concentrates the footprint: only GPMs whose index is a
// multiple of this issue traffic, so ~10% of the wafer is active and the
// rest must stay unmaterialized — the lazy-instantiation win the bytes/GPM
// metric guards.
const scaleActiveEvery = 10

// scaleConfig is the Table I system on a 30x30 mesh.
func scaleConfig(t testing.TB) hdpat.Config {
	t.Helper()
	cfg := hdpat.DefaultConfig()
	cfg.MeshW, cfg.MeshH = 30, 30
	if err := cfg.Validate(); err != nil {
		t.Fatalf("30x30 config: %v", err)
	}
	mcfg, err := wafer.ConfigFor("hdpat", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return mcfg
}

// scaleWorkload builds the concentrated benchmark: active GPMs stride their
// own chunk of one shared region and sample the next active GPM's chunk
// (remote traffic that never wakes an idle GPM). The trace is pure
// arithmetic — no RNG — so runs are deterministic by construction.
func scaleWorkload() workload.Benchmark {
	regions := []workload.RegionSpec{{Name: "main", Pages: scaleGPMs * 4}}
	trace := func(ctx workload.Context) []vm.VAddr {
		if ctx.GPM%scaleActiveEvery != 0 {
			return nil
		}
		r := ctx.Regions["main"]
		lo, hi := r.OwnerSlice(ctx.GPM, ctx.NumGPMs)
		peer := (ctx.GPM + scaleActiveEvery) % ctx.NumGPMs
		plo, phi := r.OwnerSlice(peer, ctx.NumGPMs)
		out := make([]vm.VAddr, 0, ctx.OpsBudget)
		for i := 0; i < ctx.OpsBudget; i++ {
			var p int
			switch {
			case i%4 == 3 && phi > plo:
				p = plo + (i*7+ctx.CU)%(phi-plo)
			case hi > lo:
				p = lo + (i*3+ctx.CU)%(hi-lo)
			}
			out = append(out, ctx.PageSize.Base(r.Start+vm.VPN(p))+vm.VAddr((i%64)*64))
		}
		return out
	}
	return workload.Custom("SC30", "scale-30x30-concentrated", 64, regions, trace)
}

// runScale executes one 30x30 run.
func runScale(t testing.TB, domains int, routing string) hdpat.Result {
	t.Helper()
	res, err := wafer.Run(scaleConfig(t), wafer.Options{
		Scheme: "hdpat", Benchmark: scaleWorkload(),
		OpsBudget: 16, Seed: 7, Domains: domains, Routing: routing,
	})
	if err != nil {
		t.Fatalf("30x30 run: %v", err)
	}
	return res
}

// scaleBytesPerGPM measures the allocation cost of one full 30x30 run,
// per GPM: the runtime.MemStats.TotalAlloc delta across the run divided by
// the GPM count. Allocation totals are near-deterministic (unlike heap
// residency, which moves with GC timing), so this is the stable number the
// bench gate diffs. The eager layouts this PR replaced paid ~1.1 MB of
// construction per GPM before the first event; the sparse/lazy layouts
// must stay far under that.
func scaleBytesPerGPM(t testing.TB) float64 {
	t.Helper()
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	res := runScale(t, 0, "")
	runtime.ReadMemStats(&m1)
	runtime.KeepAlive(res)
	return float64(m1.TotalAlloc-m0.TotalAlloc) / float64(scaleGPMs)
}

// BenchmarkScale30x30 is the scale leg of the bench gate: kernel throughput
// and per-GPM allocation on the giant wafer.
func BenchmarkScale30x30(b *testing.B) {
	bytesPerGPM := scaleBytesPerGPM(b)
	b.ReportAllocs()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events += runScale(b, 0, "").Events
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
	}
	b.ReportMetric(bytesPerGPM, "bytes/GPM")
}

// BenchmarkScale30x30Deflect is the deflection-routed twin of the scale
// leg: same wafer and workload under the bufferless router, whose per-hop
// routing decision and misroute probing are the added cost. Informational
// in the bench gate (like the D legs) so router tuning does not flake CI.
func BenchmarkScale30x30Deflect(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events += runScale(b, 0, "deflect").Events
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
	}
}

// TestScale30x30BoundedMemory pins the absolute bound: a concentrated
// 30x30 run must cost well under the ~1.1 MB/GPM the eager per-GPM
// hierarchy alone used to allocate — the >= 5x scale-acceptance criterion
// with headroom (the companion internal/gpm test pins the lazy-vs-eager
// construction ratio itself, measured >1000x).
func TestScale30x30BoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("30x30 run is not short")
	}
	const eagerBytesPerGPM = 1.1e6
	got := scaleBytesPerGPM(t)
	t.Logf("bytes/GPM = %.0f", got)
	if got <= 0 {
		t.Fatalf("degenerate measurement: %.0f bytes/GPM", got)
	}
	if got > eagerBytesPerGPM/5 {
		t.Errorf("bytes/GPM = %.0f, want <= %.0f (5x under the eager layout)",
			got, eagerBytesPerGPM/5)
	}
}

// TestScale30x30Digests pins the 30x30 outputs byte-for-byte: the serial
// run must match testdata/golden_scale.json, and the domain-sharded kernel
// must reproduce the serial bytes exactly. Regenerate (only on intentional
// behaviour change) with -update-scale-golden.
func TestScale30x30Digests(t *testing.T) {
	if testing.Short() {
		t.Skip("30x30 run is not short")
	}
	serial := digestResult(t, runScale(t, 0, ""))
	if sharded := digestResult(t, runScale(t, 4, "")); sharded != serial {
		t.Errorf("WithDomains(4) digest %s != serial %s", sharded[:12], serial[:12])
	}
	// The deflection leg runs serially (the policy declares itself
	// non-shardable) and pins its own digest alongside the XY key.
	deflect := runScale(t, 0, "deflect")
	if deflect.NoC.HopsTotal < deflect.NoC.ManhattanTotal {
		t.Errorf("deflect 30x30: HopsTotal %d below Manhattan bound %d",
			deflect.NoC.HopsTotal, deflect.NoC.ManhattanTotal)
	}
	got := map[string]string{
		"hdpat/SC30":         serial,
		"hdpat/SC30/deflect": digestResult(t, deflect),
	}
	if *updateScaleGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(scaleGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", scaleGoldenPath)
		return
	}
	data, err := os.ReadFile(scaleGoldenPath)
	if err != nil {
		t.Fatalf("missing scale golden file (run with -update-scale-golden): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s: digest %s != golden %s (output changed)", k, got[k][:12], w[:12])
		}
	}
}
