// Public-API tests for the observability subsystem: WithMetrics /
// WithTrace wiring through Simulate, RunBatch and CompareAll, the per-run
// snapshot semantics, and the determinism guarantee.
package hdpat_test

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"hdpat"
)

func obsConfig() hdpat.Config {
	cfg := hdpat.DefaultConfig()
	cfg.MeshW, cfg.MeshH = 5, 5
	cfg.GPM.NumCUs = 8
	cfg.WorkloadScale = 32
	return cfg
}

func TestSimulateWithMetrics(t *testing.T) {
	reg := hdpat.NewMetricsRegistry()
	res, err := hdpat.Simulate(obsConfig(), hdpat.RunSpec{Scheme: "hdpat", Benchmark: "SPMV"},
		hdpat.WithOpsBudget(16), hdpat.WithSeed(1), hdpat.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("Result.Metrics is nil")
	}
	// Single runs report into the caller's registry live.
	live := reg.Snapshot()
	if live.Counter("sim.events_dispatched") != res.Metrics.Counter("sim.events_dispatched") {
		t.Error("caller registry and result snapshot disagree")
	}
	if res.Metrics.Counter("noc.messages") == 0 {
		t.Error("no NoC series")
	}
}

func TestSimulateWithTraceJSONL(t *testing.T) {
	var buf bytes.Buffer
	_, err := hdpat.Simulate(obsConfig(), hdpat.RunSpec{Scheme: "baseline", Benchmark: "SPMV"},
		hdpat.WithOpsBudget(8), hdpat.WithSeed(1), hdpat.WithTraceJSONL(&buf))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no trace output")
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &obj); err != nil {
		t.Fatalf("first trace line invalid: %v", err)
	}
}

func TestSimulateWithTraceChrome(t *testing.T) {
	var buf bytes.Buffer
	_, err := hdpat.Simulate(obsConfig(), hdpat.RunSpec{Scheme: "baseline", Benchmark: "SPMV"},
		hdpat.WithOpsBudget(8), hdpat.WithSeed(1), hdpat.WithTrace(&buf))
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
}

// TestRunBatchMetricsMerge: batch runs get private registries whose
// snapshots land per-run and merge into the caller's registry.
func TestRunBatchMetricsMerge(t *testing.T) {
	reg := hdpat.NewMetricsRegistry()
	specs := []hdpat.RunSpec{
		{Scheme: "baseline", Benchmark: "SPMV"},
		{Scheme: "hdpat", Benchmark: "SPMV"},
	}
	runs, err := hdpat.RunBatch(context.Background(), obsConfig(), specs,
		hdpat.WithOpsBudget(8), hdpat.WithSeed(1), hdpat.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for i, r := range runs {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Result.Metrics == nil {
			t.Fatalf("run %d has no snapshot", i)
		}
		sum += r.Result.Metrics.Counter("noc.messages")
	}
	agg := reg.Snapshot()
	if got := agg.Counter("noc.messages"); got != sum {
		t.Errorf("aggregate noc.messages = %d, per-run sum = %d", got, sum)
	}
	if agg.Counter("runner.runs") != 2 {
		t.Errorf("runner.runs = %d, want 2", agg.Counter("runner.runs"))
	}
}

// TestRunBatchSharedTrace: batch runs share one trace stream with events
// tagged by submission index.
func TestRunBatchSharedTrace(t *testing.T) {
	var buf bytes.Buffer
	specs := []hdpat.RunSpec{
		{Scheme: "baseline", Benchmark: "SPMV"},
		{Scheme: "hdpat", Benchmark: "SPMV"},
	}
	_, err := hdpat.RunBatch(context.Background(), obsConfig(), specs,
		hdpat.WithOpsBudget(8), hdpat.WithSeed(1), hdpat.WithWorkers(2),
		hdpat.WithTraceJSONL(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"run":1`) {
		t.Error("no events tagged with run 1")
	}
}

// TestCompareAllMetricsDiff: the acceptance criterion — CompareAll diffing
// hdpat's metric set against the baseline's.
func TestCompareAllMetricsDiff(t *testing.T) {
	reg := hdpat.NewMetricsRegistry()
	cmp, err := hdpat.CompareAll(context.Background(), obsConfig(),
		[]string{"hdpat"}, []string{"SPMV"},
		hdpat.WithOpsBudget(16), hdpat.WithSeed(1), hdpat.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp) != 1 || cmp[0].Err != nil {
		t.Fatalf("cmp = %+v", cmp)
	}
	d := cmp[0].MetricsDiff()
	if d == nil {
		t.Fatal("MetricsDiff returned nil with metrics enabled")
	}
	// HDPAT's whole point: it walks the IOMMU less than the baseline.
	if d["iommu.walks"] >= 0 {
		t.Errorf("iommu.walks diff = %f, expected hdpat to walk less", d["iommu.walks"])
	}
	if _, ok := d["noc.messages"]; !ok {
		t.Error("diff missing noc.messages")
	}
	// Without metrics the diff is nil.
	plain, err := hdpat.Compare(obsConfig(), "hdpat", "SPMV",
		hdpat.WithOpsBudget(8), hdpat.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if plain.MetricsDiff() != nil {
		t.Error("MetricsDiff should be nil without WithMetrics")
	}
}

// TestPublicDeterminismWithObservability: simulation outcomes are identical
// with observability on and off, through the public API.
func TestPublicDeterminismWithObservability(t *testing.T) {
	spec := hdpat.RunSpec{Scheme: "hdpat", Benchmark: "KM"}
	plain, err := hdpat.Simulate(obsConfig(), spec, hdpat.WithOpsBudget(16), hdpat.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	observed, err := hdpat.Simulate(obsConfig(), spec, hdpat.WithOpsBudget(16), hdpat.WithSeed(7),
		hdpat.WithMetrics(hdpat.NewMetricsRegistry()), hdpat.WithTraceJSONL(&buf))
	if err != nil {
		t.Fatal(err)
	}
	observed.Metrics = nil
	if !reflect.DeepEqual(plain, observed) {
		t.Error("observability changed public-API results")
	}
}
