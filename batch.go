package hdpat

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"hdpat/internal/attr"
	"hdpat/internal/metrics"
	"hdpat/internal/runner"
	"hdpat/internal/trace"
)

// RunResult is one run of a batch: the spec that produced it, its result or
// error, and its wall-clock cost. The simulated cost is Result.Cycles.
type RunResult struct {
	// Spec is the submitted spec (before option overrides).
	Spec RunSpec
	// Result is the simulation outcome (zero when Err is non-nil).
	Result Result
	// Err is this run's error: a simulation/validation error, the batch
	// context's error for runs cancelled before or while executing, or a
	// *PanicError when the run panicked. One failed run never aborts the
	// rest of the batch.
	Err error
	// Wall is this run's wall-clock execution time.
	Wall time.Duration
}

// RunBatch executes every spec concurrently on up to GOMAXPROCS workers
// (see WithWorkers) and returns one RunResult per spec, indexed by
// submission order regardless of completion order. Simulations are
// deterministic and share no state, so a parallel batch produces results
// identical to running the same specs serially.
//
// Cancelling ctx aborts in-flight simulations between engine slices and
// marks unstarted runs with ctx's error; the returned error is ctx.Err()
// (per-run failures are reported only on the individual RunResults).
func RunBatch(ctx context.Context, cfg Config, specs []RunSpec, opts ...Option) ([]RunResult, error) {
	rc := newRunConfig(opts)
	var batchTracer *trace.Tracer
	if rc.traceW != nil {
		batchTracer = trace.New(rc.traceW, rc.traceFormat)
	}
	tasks := make([]runner.Task, len(specs))
	for i, spec := range specs {
		i, spec := i, spec
		tasks[i] = func(ctx context.Context) (Result, error) {
			rci := rc.forRun(i)
			if rci.metrics != nil || batchTracer != nil {
				// Concurrent runs must not share series: give each its own
				// registry and a child tracer tagged with the run index. The
				// run's snapshot folds into the caller's registry on settle.
				c := *rci
				if c.metrics != nil {
					c.metrics = metrics.NewRegistry()
				}
				c.tracer = batchTracer.Run(i)
				c.traceW = nil
				rci = &c
			}
			res, err := simulate(ctx, cfg, spec, rci)
			if rc.metrics != nil && res.Metrics != nil {
				rc.metrics.Merge(res.Metrics)
			}
			return res, err
		}
	}
	workers := rc.workers
	if rc.domains != nil && *rc.domains != 1 {
		// WithDomains multiplies each run's goroutine demand; cap workers so
		// workers x domains stays within GOMAXPROCS (see WithDomains).
		nd := *rc.domains
		maxp := runtime.GOMAXPROCS(0)
		if nd <= 0 {
			nd = maxp
		}
		cap := maxp / nd
		if cap < 1 {
			cap = 1
		}
		if workers <= 0 || workers > cap {
			workers = cap
		}
	}
	pool := &runner.Pool{Workers: workers, Metrics: rc.metrics}
	if rc.progress != nil {
		pool.Progress = func(done, total int, _ runner.Outcome) { rc.progress(done, total) }
	}
	if rc.monitor != nil {
		rc.monitor.pool.Store(pool)
	}
	outs := pool.Run(ctx, tasks)
	results := make([]RunResult, len(specs))
	for i, o := range outs {
		results[i] = RunResult{Spec: specs[i], Result: o.Result, Err: o.Err, Wall: o.Wall}
	}
	err := ctx.Err()
	if cerr := batchTracer.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("hdpat: trace: %w", cerr)
	}
	return results, err
}

// ComparisonResult is one scheme-vs-baseline measurement on a benchmark.
type ComparisonResult struct {
	// Scheme and Benchmark name the comparison.
	Scheme    string
	Benchmark string
	// Baseline and Result are the two runs (sharing benchmark, budget and
	// seed).
	Baseline Result
	Result   Result
	// Speedup is Baseline.Cycles / Result.Cycles (0 when Err is non-nil).
	Speedup float64
	// Err reports a failure of either underlying run (only meaningful from
	// CompareAll; Compare returns it as its error instead).
	Err error
}

// MetricsDiff returns the scheme run's metric series minus the baseline's
// (counters and gauges subtract; histograms contribute their ".count"
// delta), the per-series view behind "why is this scheme faster". It
// returns nil unless both runs carried metrics (WithMetrics).
func (c ComparisonResult) MetricsDiff() map[string]float64 {
	if c.Result.Metrics == nil || c.Baseline.Metrics == nil {
		return nil
	}
	return c.Result.Metrics.Diff(c.Baseline.Metrics)
}

// BreakdownDiff returns the scheme run's per-stage latency attribution
// minus the baseline's: "<stage>.mean" and "<stage>.p95" deltas for the
// admission/pwq/walk/wire stages plus total, and the "requests" count delta.
// Negative stage deltas mean the scheme spends fewer cycles there. It
// returns nil unless both runs carried attribution (WithAttribution).
func (c ComparisonResult) BreakdownDiff() map[string]float64 {
	if c.Result.Breakdown == nil || c.Baseline.Breakdown == nil {
		return nil
	}
	return attr.Diff(c.Result.Breakdown, c.Baseline.Breakdown)
}

// Compare runs the same benchmark under the baseline and the given scheme
// and returns both results plus the speedup.
func Compare(cfg Config, scheme, benchmark string, opts ...Option) (ComparisonResult, error) {
	return CompareContext(context.Background(), cfg, scheme, benchmark, opts...)
}

// CompareContext is Compare with cancellation.
func CompareContext(ctx context.Context, cfg Config, scheme, benchmark string, opts ...Option) (ComparisonResult, error) {
	cmp, err := CompareAll(ctx, cfg, []string{scheme}, []string{benchmark}, opts...)
	if err != nil {
		return ComparisonResult{}, err
	}
	if cmp[0].Err != nil {
		return ComparisonResult{}, cmp[0].Err
	}
	return cmp[0], nil
}

// CompareAll evaluates every scheme against the baseline on every benchmark
// — the cross-product the experiments harness runs — as one parallel batch.
// Each benchmark's baseline is simulated once and shared across all its
// schemes. Results are ordered benchmark-major: the cell for
// (benchmarks[i], schemes[j]) is at index i*len(schemes)+j.
//
// Per-cell failures land on ComparisonResult.Err; like RunBatch, the
// returned error is only ctx.Err(). WithPerRun is not supported here (cells
// share their benchmark's baseline, so per-cell configs would desynchronise
// the pair); use RunBatch for heterogeneous grids.
func CompareAll(ctx context.Context, cfg Config, schemes, benchmarks []string, opts ...Option) ([]ComparisonResult, error) {
	// Flat batch layout, benchmark-major: [base, scheme0, scheme1, ...] per
	// benchmark.
	stride := len(schemes) + 1
	specs := make([]RunSpec, 0, len(benchmarks)*stride)
	for _, bench := range benchmarks {
		specs = append(specs, RunSpec{Scheme: "baseline", Benchmark: bench})
		for _, scheme := range schemes {
			specs = append(specs, RunSpec{Scheme: scheme, Benchmark: bench})
		}
	}
	opts = append(append([]Option{}, opts...), WithPerRun(nil))
	runs, err := RunBatch(ctx, cfg, specs, opts...)
	if err != nil {
		return nil, err
	}
	out := make([]ComparisonResult, 0, len(benchmarks)*len(schemes))
	for bi, bench := range benchmarks {
		base := runs[bi*stride]
		for si, scheme := range schemes {
			run := runs[bi*stride+1+si]
			cr := ComparisonResult{Scheme: scheme, Benchmark: bench,
				Baseline: base.Result, Result: run.Result}
			switch {
			case base.Err != nil:
				cr.Err = base.Err
			case run.Err != nil:
				cr.Err = run.Err
			default:
				cr.Speedup = cr.Result.Speedup(cr.Baseline)
			}
			out = append(out, cr)
		}
	}
	return out, nil
}
