// Smoke test for cmd/report: build the binary, exercise the live Compare
// mode and the JSONL replay mode, and check the acceptance artifacts — a
// Markdown latency-breakdown table and a per-link NoC heatmap CSV.
package hdpat_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"hdpat"
)

func TestReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("report build+run skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "report")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/report").CombinedOutput(); err != nil {
		t.Fatalf("build failed: %v\n%s", err, out)
	}

	t.Run("live", func(t *testing.T) {
		dir := t.TempDir()
		cmd := exec.Command(bin, "-scheme", "hdpat", "-bench", "SPMV",
			"-budget", "8", "-mesh", "5", "-seed", "1", "-o", dir)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("run failed: %v\n%s", err, out)
		}
		md, err := os.ReadFile(filepath.Join(dir, "report.md"))
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"| Stage |", "| total |", "Delta: hdpat minus baseline"} {
			if !strings.Contains(string(md), want) {
				t.Errorf("report.md missing %q", want)
			}
		}
		for _, name := range []string{"heatmap-hdpat-SPMV.csv", "heatmap-baseline-SPMV.csv"} {
			csv, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
			if len(lines) < 2 || !strings.HasPrefix(lines[0], "x,y,dir,") {
				t.Errorf("%s is not a populated heatmap:\n%s", name, csv)
			}
		}
	})

	t.Run("replay", func(t *testing.T) {
		// Record a JSONL trace with the public API, then rebuild the
		// breakdown from it offline.
		tracePath := filepath.Join(t.TempDir(), "run.jsonl")
		f, err := os.Create(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		_, err = hdpat.Simulate(obsConfig(), hdpat.RunSpec{Scheme: "hdpat", Benchmark: "SPMV"},
			hdpat.WithOpsBudget(8), hdpat.WithSeed(1), hdpat.WithTraceJSONL(f))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		cmd := exec.Command(bin, "-trace", tracePath, "-o", dir)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("replay run failed: %v\n%s", err, out)
		}
		md, err := os.ReadFile(filepath.Join(dir, "report.md"))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(md), "| total |") {
			t.Errorf("replay report missing stage table:\n%s", md)
		}
		if _, err := os.Stat(filepath.Join(dir, "heatmap.csv")); err != nil {
			t.Error(err)
		}
	})
}
