package hdpat_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"hdpat"
)

// batchCfg is a small wafer that keeps batch tests fast.
func batchCfg() hdpat.Config {
	cfg := hdpat.DefaultConfig()
	cfg.MeshW, cfg.MeshH = 5, 5
	cfg.GPM.NumCUs = 8
	return cfg
}

// crossSpecs builds the 3 schemes x 3 benchmarks batch the acceptance
// criteria name.
func crossSpecs() []hdpat.RunSpec {
	var specs []hdpat.RunSpec
	for _, scheme := range []string{"baseline", "transfw", "hdpat"} {
		for _, bench := range []string{"PR", "KM", "FIR"} {
			specs = append(specs, hdpat.RunSpec{Scheme: scheme, Benchmark: bench, OpsBudget: 24, Seed: 1})
		}
	}
	return specs
}

// TestRunBatchMatchesSerial asserts the tentpole determinism property: a
// parallel batch returns results identical to the same specs run serially
// through Simulate.
func TestRunBatchMatchesSerial(t *testing.T) {
	cfg := batchCfg()
	specs := crossSpecs()

	serial := make([]hdpat.Result, len(specs))
	for i, spec := range specs {
		res, err := hdpat.Simulate(cfg, spec)
		if err != nil {
			t.Fatalf("serial %s/%s: %v", spec.Scheme, spec.Benchmark, err)
		}
		serial[i] = res
	}

	parallel, err := hdpat.RunBatch(context.Background(), cfg, specs, hdpat.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(specs) {
		t.Fatalf("got %d results, want %d", len(parallel), len(specs))
	}
	for i, run := range parallel {
		if run.Err != nil {
			t.Fatalf("parallel %s/%s: %v", specs[i].Scheme, specs[i].Benchmark, run.Err)
		}
		if run.Spec != specs[i] {
			t.Errorf("run %d spec %+v, want %+v", i, run.Spec, specs[i])
		}
		if !reflect.DeepEqual(run.Result, serial[i]) {
			t.Errorf("%s/%s: parallel result differs from serial\nparallel: %+v\nserial:   %+v",
				specs[i].Scheme, specs[i].Benchmark, run.Result, serial[i])
		}
	}
}

// TestRunBatchCancellation cancels a batch after its first run settles and
// expects every later run to carry the context error.
func TestRunBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	specs := crossSpecs()
	// One worker serialises the schedule: run 0 completes, the progress
	// callback cancels, and every later run settles with ctx's error before
	// it starts simulating.
	runs, err := hdpat.RunBatch(ctx, batchCfg(), specs,
		hdpat.WithWorkers(1),
		hdpat.WithProgress(func(done, total int) {
			if done == 1 {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error = %v, want context.Canceled", err)
	}
	if runs[0].Err != nil {
		t.Fatalf("first run failed: %v", runs[0].Err)
	}
	for i := 1; i < len(runs); i++ {
		if !errors.Is(runs[i].Err, context.Canceled) {
			t.Errorf("run %d err = %v, want context.Canceled", i, runs[i].Err)
		}
	}
}

// TestSimulateContextCancelled exercises mid-run cancellation: a cancelled
// context aborts the engine between slices.
func TestSimulateContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := hdpat.SimulateContext(ctx, batchCfg(),
		hdpat.RunSpec{Scheme: "hdpat", Benchmark: "PR", OpsBudget: 24, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunBatchPanicRecovery injects a panic into one run of a batch (via a
// panicking option hook) and expects it to surface as that run's error
// while the rest of the batch completes.
func TestRunBatchPanicRecovery(t *testing.T) {
	specs := []hdpat.RunSpec{
		{Scheme: "baseline", Benchmark: "PR", OpsBudget: 24, Seed: 1},
		{Scheme: "hdpat", Benchmark: "PR", OpsBudget: 24, Seed: 1},
		{Scheme: "transfw", Benchmark: "PR", OpsBudget: 24, Seed: 1},
	}
	runs, err := hdpat.RunBatch(context.Background(), batchCfg(), specs,
		hdpat.WithPerRun(func(i int) []hdpat.Option {
			if i != 1 {
				return nil
			}
			return []hdpat.Option{hdpat.WithIOMMU(func(*hdpat.IOMMUConfig) { panic("boom") })}
		}))
	if err != nil {
		t.Fatal(err)
	}
	var pe *hdpat.PanicError
	if !errors.As(runs[1].Err, &pe) || pe.Value != "boom" {
		t.Fatalf("run 1 err = %v, want *PanicError(boom)", runs[1].Err)
	}
	for _, i := range []int{0, 2} {
		if runs[i].Err != nil {
			t.Errorf("run %d err = %v, want nil", i, runs[i].Err)
		}
		if runs[i].Result.Cycles == 0 {
			t.Errorf("run %d produced empty result", i)
		}
	}
}

// TestSentinelErrors checks the typed name-resolution errors across every
// entry point that resolves names.
func TestSentinelErrors(t *testing.T) {
	cfg := batchCfg()
	if _, err := hdpat.Simulate(cfg, hdpat.RunSpec{Scheme: "nope", Benchmark: "PR"}); !errors.Is(err, hdpat.ErrUnknownScheme) {
		t.Errorf("Simulate scheme err = %v, want ErrUnknownScheme", err)
	}
	if _, err := hdpat.Simulate(cfg, hdpat.RunSpec{Benchmark: "NOPE"}); !errors.Is(err, hdpat.ErrUnknownBenchmark) {
		t.Errorf("Simulate benchmark err = %v, want ErrUnknownBenchmark", err)
	}
	// The wrapped message carries the offending name.
	_, err := hdpat.Simulate(cfg, hdpat.RunSpec{Scheme: "nope", Benchmark: "PR"})
	if err == nil || !contains(err.Error(), `"nope"`) {
		t.Errorf("scheme error %q does not name the scheme", err)
	}
	if _, err := hdpat.Compare(cfg, "nope", "PR"); !errors.Is(err, hdpat.ErrUnknownScheme) {
		t.Errorf("Compare err = %v, want ErrUnknownScheme", err)
	}
	runs, err := hdpat.RunBatch(context.Background(), cfg, []hdpat.RunSpec{
		{Scheme: "hdpat", Benchmark: "NOPE", OpsBudget: 24, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(runs[0].Err, hdpat.ErrUnknownBenchmark) {
		t.Errorf("RunBatch run err = %v, want ErrUnknownBenchmark", runs[0].Err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestCompareAllSharesBaseline checks the cross-product helper: cell
// layout, shared baselines, and per-cell speedups.
func TestCompareAllSharesBaseline(t *testing.T) {
	cfg := batchCfg()
	schemes := []string{"transfw", "hdpat"}
	benches := []string{"PR", "KM"}
	cmp, err := hdpat.CompareAll(context.Background(), cfg, schemes, benches,
		hdpat.WithOpsBudget(24), hdpat.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp) != len(schemes)*len(benches) {
		t.Fatalf("got %d cells, want %d", len(cmp), len(schemes)*len(benches))
	}
	for bi, bench := range benches {
		var first hdpat.Result
		for si, scheme := range schemes {
			c := cmp[bi*len(schemes)+si]
			if c.Err != nil {
				t.Fatalf("%s/%s: %v", scheme, bench, c.Err)
			}
			if c.Scheme != scheme || c.Benchmark != bench {
				t.Errorf("cell %d/%d labelled %s/%s", bi, si, c.Scheme, c.Benchmark)
			}
			if c.Speedup <= 0 {
				t.Errorf("%s/%s speedup = %f", scheme, bench, c.Speedup)
			}
			// Every scheme on this benchmark must share one baseline run.
			if si == 0 {
				first = c.Baseline
			} else if !reflect.DeepEqual(c.Baseline, first) {
				t.Errorf("%s/%s does not share the benchmark baseline", scheme, bench)
			}
		}
	}
}

// TestOptionOverrides checks WithOpsBudget/WithSeed override the spec and
// WithConfig/WithIOMMU hooks stack in order.
func TestOptionOverrides(t *testing.T) {
	cfg := batchCfg()
	spec := hdpat.RunSpec{Scheme: "hdpat", Benchmark: "FIR", OpsBudget: 999, Seed: 999}
	viaOpts, err := hdpat.Simulate(cfg, spec,
		hdpat.WithOpsBudget(24), hdpat.WithSeed(2),
		hdpat.WithConfig(func(c *hdpat.Config) { c.IOMMU.PrefetchDegree = 2 }),
		hdpat.WithIOMMU(func(io *hdpat.IOMMUConfig) { io.PrefetchDegree = 8 })) // later hook wins
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := hdpat.Simulate(cfg,
		hdpat.RunSpec{Scheme: "hdpat", Benchmark: "FIR", OpsBudget: 24, Seed: 2},
		hdpat.WithIOMMU(func(io *hdpat.IOMMUConfig) { io.PrefetchDegree = 8 }))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaOpts, viaSpec) {
		t.Error("option overrides did not replace the spec's budget/seed")
	}
	if viaOpts.IOMMU.Prefetches == 0 {
		t.Error("IOMMU hook had no effect")
	}
}

// TestBatchMonitor checks WithMonitor exposes live queued/inflight/done
// accounting while a batch runs and settles to a complete snapshot.
func TestBatchMonitor(t *testing.T) {
	cfg := batchCfg()
	specs := crossSpecs()

	var mon hdpat.BatchMonitor
	if s := mon.Snapshot(); s != (hdpat.BatchSnapshot{}) {
		t.Fatalf("unattached monitor snapshot = %+v, want zero", s)
	}

	// Watch the batch from a separate goroutine like a progress endpoint
	// would; record whether any poll saw the batch genuinely mid-flight.
	stop := make(chan struct{})
	sawPartial := make(chan bool, 1)
	go func() {
		partial := false
		for {
			select {
			case <-stop:
				sawPartial <- partial
				return
			default:
			}
			s := mon.Snapshot()
			if s.Total > 0 && s.Done < s.Total {
				partial = true
			}
		}
	}()

	runs, err := hdpat.RunBatch(context.Background(), cfg, specs,
		hdpat.WithWorkers(2), hdpat.WithMonitor(&mon))
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.Err != nil {
			t.Fatalf("%s/%s: %v", r.Spec.Scheme, r.Spec.Benchmark, r.Err)
		}
	}
	final := mon.Snapshot()
	want := hdpat.BatchSnapshot{Done: len(specs), Total: len(specs)}
	if final != want {
		t.Errorf("final snapshot = %+v, want %+v", final, want)
	}
	if !<-sawPartial {
		t.Log("no poll observed a mid-flight batch (fast machine); accounting still verified at settle")
	}

	// CompareAll re-points the same monitor at its batch; counts accumulate.
	if _, err := hdpat.CompareAll(context.Background(), cfg,
		[]string{"hdpat"}, []string{"FIR"},
		hdpat.WithOpsBudget(16), hdpat.WithSeed(1), hdpat.WithMonitor(&mon)); err != nil {
		t.Fatal(err)
	}
	after := mon.Snapshot()
	if after.Total != 2 || after.Done != 2 {
		t.Errorf("monitor after CompareAll = %+v, want 2 done of 2", after)
	}
}
