#!/usr/bin/env bash
# Service smoke test (make service-smoke, run by CI): build hdpatd, start it
# with a small ops cap, wait for readiness (/readyz — journal replay done),
# submit a compare job over HTTP, poll the job to completion, then fetch
# every artifact and check its bytes hash to the digest the daemon
# advertised AND to the digest a direct in-process run of the same spec
# prints (`hdpatd -digest`) — the end-to-end proof that the served
# artifacts equal a plain CompareAll run. Also scrapes the observability
# surface: /metrics must expose go_runtime_* and http_request_* series, the
# job must serve a wall-clock /timeline (Chrome trace_event JSON) and a
# /events flight-recorder ring, and the daemon's stderr must be structured
# JSON log lines. Core checks need only curl/sed/grep/sha256sum; the
# JSON-shape checks use jq and are skipped with a notice when jq is absent.
set -euo pipefail

PORT="${SMOKE_PORT:-18080}"
ADDR="127.0.0.1:${PORT}"
BASE="http://${ADDR}"
SPEC='{"kind":"compare","scheme":"hdpat","benchmark":"FIR","ops_budget":8,"seed":1,"attribution":true}'

WORK="$(mktemp -d)"
BIN="${WORK}/hdpatd"
DAEMON_PID=""
cleanup() {
  if [[ -n "${DAEMON_PID}" ]]; then
    kill "${DAEMON_PID}" 2>/dev/null || true
    wait "${DAEMON_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORK}"
}
trap cleanup EXIT

HAVE_JQ=1
command -v jq >/dev/null 2>&1 || { HAVE_JQ=0; echo "NOTE: jq not found; skipping JSON-shape checks"; }

echo "== build"
go build -o "${BIN}" ./cmd/hdpatd

echo "== reference digests (direct run, no daemon)"
"${BIN}" -digest -spec "${SPEC}" | tee "${WORK}/expected.txt"
[[ -s "${WORK}/expected.txt" ]] || { echo "FAIL: -digest printed nothing"; exit 1; }

echo "== start daemon on ${ADDR}"
"${BIN}" -addr "${ADDR}" -data "${WORK}/data" -max-ops 64 2>"${WORK}/daemon.log" &
DAEMON_PID=$!
for i in $(seq 1 50); do
  curl -fsS "${BASE}/readyz" >/dev/null 2>&1 && break
  kill -0 "${DAEMON_PID}" 2>/dev/null || {
    echo "FAIL: daemon exited during startup"; cat "${WORK}/daemon.log"; exit 1
  }
  sleep 0.2
done
curl -fsS "${BASE}/readyz" >/dev/null || { echo "FAIL: daemon never became ready"; cat "${WORK}/daemon.log"; exit 1; }
curl -fsS "${BASE}/healthz" >/dev/null || { echo "FAIL: ready but not healthy"; exit 1; }

echo "== submit job"
SUBMIT="$(curl -fsS -X POST "${BASE}/v1/jobs" -H 'Content-Type: application/json' -d "${SPEC}")"
echo "${SUBMIT}"
JOB_ID="$(printf '%s' "${SUBMIT}" | sed -n 's/.*"id":"\([0-9a-f]\{16\}\)".*/\1/p')"
[[ -n "${JOB_ID}" ]] || { echo "FAIL: no job id in submit response"; exit 1; }

echo "== poll job ${JOB_ID}"
STATUS=""
for i in $(seq 1 60); do
  STATUS="$(curl -fsS "${BASE}/v1/jobs/${JOB_ID}/progress?since=-1&timeout=5s")"
  case "${STATUS}" in
    *'"state":"done"'*) break ;;
    *'"state":"failed"'*|*'"state":"cancelled"'*)
      echo "FAIL: job terminal without success: ${STATUS}"; exit 1 ;;
  esac
done
[[ "${STATUS}" == *'"state":"done"'* ]] || { echo "FAIL: job never finished: ${STATUS}"; exit 1; }
echo "${STATUS}"

echo "== verify artifacts against the direct run"
COUNT=0
while read -r NAME DIGEST; do
  [[ -n "${NAME}" && -n "${DIGEST}" ]] || continue
  # The job must advertise exactly this artifact...
  if [[ "${STATUS}" != *"${DIGEST}"* ]]; then
    echo "FAIL: job status is missing artifact ${NAME} (${DIGEST})"; exit 1
  fi
  # ...and serve bytes that hash back to the same address.
  curl -fsS "${BASE}/v1/artifacts/${DIGEST}" -o "${WORK}/blob"
  GOT="$(sha256sum "${WORK}/blob" | cut -d' ' -f1)"
  if [[ "${GOT}" != "${DIGEST}" ]]; then
    echo "FAIL: ${NAME}: served bytes hash to ${GOT}, want ${DIGEST}"; exit 1
  fi
  COUNT=$((COUNT + 1))
  echo "ok ${NAME} ${DIGEST}"
done < "${WORK}/expected.txt"
[[ "${COUNT}" -ge 3 ]] || { echo "FAIL: only ${COUNT} artifacts checked, want >= 3"; exit 1; }

echo "== resubmission deduplicates (HTTP 200, same id)"
CODE="$(curl -sS -o "${WORK}/resubmit.json" -w '%{http_code}' -X POST "${BASE}/v1/jobs" \
  -H 'Content-Type: application/json' -d "${SPEC}")"
[[ "${CODE}" == "200" ]] || { echo "FAIL: resubmit returned ${CODE}, want 200"; exit 1; }
grep -q "\"id\":\"${JOB_ID}\"" "${WORK}/resubmit.json" || { echo "FAIL: resubmit created a different job"; exit 1; }

echo "== scrape /metrics for runtime + HTTP series"
curl -fsS "${BASE}/metrics" -o "${WORK}/metrics.txt"
grep -q '^hdpat_go_runtime_goroutines ' "${WORK}/metrics.txt" || {
  echo "FAIL: /metrics missing hdpat_go_runtime_goroutines"; exit 1
}
grep -q '^hdpat_go_runtime_heap_alloc_bytes ' "${WORK}/metrics.txt" || {
  echo "FAIL: /metrics missing hdpat_go_runtime_heap_alloc_bytes"; exit 1
}
grep -q '^hdpat_http_request_count_' "${WORK}/metrics.txt" || {
  echo "FAIL: /metrics missing hdpat_http_request_count_* series"; exit 1
}
grep -q '^hdpat_http_request_latency_us_' "${WORK}/metrics.txt" || {
  echo "FAIL: /metrics missing hdpat_http_request_latency_us_* series"; exit 1
}
echo "ok runtime + http series present"

echo "== fetch wall-clock timeline and flight-recorder events"
curl -fsS "${BASE}/v1/jobs/${JOB_ID}/timeline" -o "${WORK}/timeline.json"
[[ -s "${WORK}/timeline.json" ]] || { echo "FAIL: empty timeline"; exit 1; }
curl -fsS "${BASE}/v1/jobs/${JOB_ID}/events" -o "${WORK}/events.json"
[[ -s "${WORK}/events.json" ]] || { echo "FAIL: empty events body"; exit 1; }
if [[ "${HAVE_JQ}" == "1" ]]; then
  jq -e 'type == "array" and length > 0 and (map(has("ph") and has("name") and has("ts")) | all)' \
    "${WORK}/timeline.json" >/dev/null || { echo "FAIL: timeline is not trace_event JSON"; exit 1; }
  jq -e '.events | length > 0' "${WORK}/events.json" >/dev/null || {
    echo "FAIL: flight recorder has no events"; exit 1
  }
  echo "ok timeline is trace_event JSON; events ring populated"
fi

echo "== daemon stderr is structured JSON logging"
[[ -s "${WORK}/daemon.log" ]] || { echo "FAIL: daemon logged nothing"; exit 1; }
if [[ "${HAVE_JQ}" == "1" ]]; then
  jq -es 'length > 0 and (map(has("time") and has("level") and has("msg")) | all)' \
    "${WORK}/daemon.log" >/dev/null || {
    echo "FAIL: daemon stderr is not one JSON log object per line:"
    cat "${WORK}/daemon.log"; exit 1
  }
  grep -q "\"job_id\":\"${JOB_ID}\"" "${WORK}/daemon.log" || {
    echo "FAIL: no log line correlates job_id ${JOB_ID}"; exit 1
  }
  echo "ok structured logs with job correlation"
fi

echo "PASS: service smoke (${COUNT} artifacts byte-identical to direct run)"
