#!/usr/bin/env bash
# Service smoke test (make service-smoke, run by CI): build hdpatd, start it
# with a small ops cap, submit a compare job over HTTP, poll the job to
# completion, then fetch every artifact and check its bytes hash to the
# digest the daemon advertised AND to the digest a direct in-process run of
# the same spec prints (`hdpatd -digest`) — the end-to-end proof that the
# served artifacts equal a plain CompareAll run. Standard tools only
# (curl, sed, grep, sha256sum); no jq.
set -euo pipefail

PORT="${SMOKE_PORT:-18080}"
ADDR="127.0.0.1:${PORT}"
BASE="http://${ADDR}"
SPEC='{"kind":"compare","scheme":"hdpat","benchmark":"FIR","ops_budget":8,"seed":1,"attribution":true}'

WORK="$(mktemp -d)"
BIN="${WORK}/hdpatd"
DAEMON_PID=""
cleanup() {
  if [[ -n "${DAEMON_PID}" ]]; then
    kill "${DAEMON_PID}" 2>/dev/null || true
    wait "${DAEMON_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORK}"
}
trap cleanup EXIT

echo "== build"
go build -o "${BIN}" ./cmd/hdpatd

echo "== reference digests (direct run, no daemon)"
"${BIN}" -digest -spec "${SPEC}" | tee "${WORK}/expected.txt"
[[ -s "${WORK}/expected.txt" ]] || { echo "FAIL: -digest printed nothing"; exit 1; }

echo "== start daemon on ${ADDR}"
"${BIN}" -addr "${ADDR}" -data "${WORK}/data" -max-ops 64 &
DAEMON_PID=$!
for i in $(seq 1 50); do
  curl -fsS "${BASE}/healthz" >/dev/null 2>&1 && break
  kill -0 "${DAEMON_PID}" 2>/dev/null || { echo "FAIL: daemon exited during startup"; exit 1; }
  sleep 0.2
done
curl -fsS "${BASE}/healthz" >/dev/null || { echo "FAIL: daemon never became healthy"; exit 1; }

echo "== submit job"
SUBMIT="$(curl -fsS -X POST "${BASE}/v1/jobs" -H 'Content-Type: application/json' -d "${SPEC}")"
echo "${SUBMIT}"
JOB_ID="$(printf '%s' "${SUBMIT}" | sed -n 's/.*"id":"\([0-9a-f]\{16\}\)".*/\1/p')"
[[ -n "${JOB_ID}" ]] || { echo "FAIL: no job id in submit response"; exit 1; }

echo "== poll job ${JOB_ID}"
STATUS=""
for i in $(seq 1 60); do
  STATUS="$(curl -fsS "${BASE}/v1/jobs/${JOB_ID}/progress?since=-1&timeout=5s")"
  case "${STATUS}" in
    *'"state":"done"'*) break ;;
    *'"state":"failed"'*|*'"state":"cancelled"'*)
      echo "FAIL: job terminal without success: ${STATUS}"; exit 1 ;;
  esac
done
[[ "${STATUS}" == *'"state":"done"'* ]] || { echo "FAIL: job never finished: ${STATUS}"; exit 1; }
echo "${STATUS}"

echo "== verify artifacts against the direct run"
COUNT=0
while read -r NAME DIGEST; do
  [[ -n "${NAME}" && -n "${DIGEST}" ]] || continue
  # The job must advertise exactly this artifact...
  if [[ "${STATUS}" != *"${DIGEST}"* ]]; then
    echo "FAIL: job status is missing artifact ${NAME} (${DIGEST})"; exit 1
  fi
  # ...and serve bytes that hash back to the same address.
  curl -fsS "${BASE}/v1/artifacts/${DIGEST}" -o "${WORK}/blob"
  GOT="$(sha256sum "${WORK}/blob" | cut -d' ' -f1)"
  if [[ "${GOT}" != "${DIGEST}" ]]; then
    echo "FAIL: ${NAME}: served bytes hash to ${GOT}, want ${DIGEST}"; exit 1
  fi
  COUNT=$((COUNT + 1))
  echo "ok ${NAME} ${DIGEST}"
done < "${WORK}/expected.txt"
[[ "${COUNT}" -ge 3 ]] || { echo "FAIL: only ${COUNT} artifacts checked, want >= 3"; exit 1; }

echo "== resubmission deduplicates (HTTP 200, same id)"
CODE="$(curl -sS -o "${WORK}/resubmit.json" -w '%{http_code}' -X POST "${BASE}/v1/jobs" \
  -H 'Content-Type: application/json' -d "${SPEC}")"
[[ "${CODE}" == "200" ]] || { echo "FAIL: resubmit returned ${CODE}, want 200"; exit 1; }
grep -q "\"id\":\"${JOB_ID}\"" "${WORK}/resubmit.json" || { echo "FAIL: resubmit created a different job"; exit 1; }

echo "PASS: service smoke (${COUNT} artifacts byte-identical to direct run)"
