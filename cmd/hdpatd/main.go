// Command hdpatd is the long-running HDPAT simulation service: an HTTP+JSON
// API that accepts simulation/comparison/sweep jobs, runs them on the
// parallel batch engine, streams per-job progress (SSE or long-poll) and
// metrics, and persists Result/Breakdown/report.md artifacts under
// content-addressed SHA-256 digests. Job journals make runs durable: a
// restarted daemon resumes an interrupted sweep from its last finished run
// and produces artifacts byte-identical to an uninterrupted one.
//
// Serve:
//
//	hdpatd -addr :8080 -data ./hdpatd-data
//	curl -XPOST localhost:8080/v1/jobs -d '{"kind":"compare","scheme":"hdpat","benchmark":"FIR","ops_budget":8,"seed":1}'
//	curl localhost:8080/v1/jobs/<id>/progress?since=0
//	curl localhost:8080/v1/artifacts/<digest>
//
// One-shot digest mode (no server) runs a spec directly through the same
// artifact-assembly path and prints "name  sha256" per artifact — the
// reference the CI smoke test diffs a served job against:
//
//	hdpatd -digest -spec '{"kind":"compare","scheme":"hdpat","benchmark":"FIR","ops_budget":8,"seed":1}'
//
// See docs/service.md for the API reference and resume semantics.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hdpat"
	"hdpat/internal/metrics"
	"hdpat/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	data := flag.String("data", "hdpatd-data", "state directory (artifacts, job journals)")
	defOps := flag.Int("ops", 0, "default per-CU ops budget for specs that leave ops_budget at 0 (0 = simulator default)")
	maxOps := flag.Int("max-ops", 0, "reject specs asking for more than this ops budget (0 = no cap)")
	jobWorkers := flag.Int("job-workers", 1, "jobs executing concurrently")
	runWorkers := flag.Int("run-workers", 0, "default per-job run concurrency when a spec leaves workers at 0 (0 = 1, serial)")
	waferCfg := flag.String("wafer", "7x7", "system configuration: 7x7 (Table I) or 7x12 (Fig 22)")
	digest := flag.Bool("digest", false, "one-shot: run -spec locally and print its artifact digests, then exit")
	specJSON := flag.String("spec", "", "job spec JSON for -digest mode")
	flag.Parse()

	cfg, err := systemConfig(*waferCfg)
	if err != nil {
		log.Fatalf("hdpatd: %v", err)
	}
	run := runFunc(cfg, *defOps, *maxOps)

	if *digest {
		if err := printDigests(*specJSON, run); err != nil {
			log.Fatalf("hdpatd: %v", err)
		}
		return
	}
	if err := serve(*addr, *data, run, *jobWorkers, *runWorkers); err != nil {
		log.Fatalf("hdpatd: %v", err)
	}
}

// systemConfig resolves the -wafer flag.
func systemConfig(name string) (hdpat.Config, error) {
	switch name {
	case "7x7":
		return hdpat.DefaultConfig(), nil
	case "7x12":
		return hdpat.Wafer7x12Config(), nil
	}
	return hdpat.Config{}, fmt.Errorf("unknown -wafer %q (7x7 or 7x12)", name)
}

// runFunc adapts the public simulation API into the service's run seam.
// Every job run goes through here: scheme resolution, the daemon's default
// budget, and the optional per-run metrics registry.
func runFunc(cfg hdpat.Config, defOps, maxOps int) service.RunFunc {
	return func(ctx context.Context, spec service.JobSpec, p service.Point, reg *metrics.Registry) (hdpat.Result, error) {
		budget := spec.OpsBudget
		if budget == 0 {
			budget = defOps
		}
		if maxOps > 0 && budget > maxOps {
			return hdpat.Result{}, fmt.Errorf("ops budget %d exceeds daemon cap %d", budget, maxOps)
		}
		opts := []hdpat.Option{hdpat.WithSeed(spec.Seed)}
		if budget > 0 {
			opts = append(opts, hdpat.WithOpsBudget(budget))
		}
		if spec.Attribution {
			opts = append(opts, hdpat.WithAttribution())
		}
		if reg != nil {
			opts = append(opts, hdpat.WithMetrics(reg))
		}
		return hdpat.SimulateContext(ctx, cfg, hdpat.RunSpec{
			Scheme: p.Scheme, Benchmark: p.Benchmark,
		}, opts...)
	}
}

// printDigests runs the spec inline (no daemon, no store) and prints one
// "name  sha256-hex" line per assembled artifact.
func printDigests(specJSON string, run service.RunFunc) error {
	if specJSON == "" {
		return errors.New("-digest needs -spec '<job spec JSON>'")
	}
	var spec service.JobSpec
	if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
		return fmt.Errorf("parse -spec: %w", err)
	}
	blobs, err := service.Materialize(context.Background(), spec, run)
	if err != nil {
		return err
	}
	for _, b := range blobs {
		fmt.Printf("%s  %x\n", b.Name, sha256.Sum256(b.Data))
	}
	return nil
}

// serve opens the service state, mounts the API and blocks until SIGINT or
// SIGTERM, then shuts down gracefully: the HTTP listener drains, running
// jobs are interrupted without a terminal journal entry, and the next start
// resumes them from their last finished run.
func serve(addr, data string, run service.RunFunc, jobWorkers, runWorkers int) error {
	svc, err := service.Open(service.Options{
		Dir:        data,
		Run:        run,
		JobWorkers: jobWorkers,
		RunWorkers: runWorkers,
		Logf:       log.Printf,
	})
	if err != nil {
		return err
	}
	srv := &http.Server{Addr: addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("hdpatd: serving on %s, state in %s", addr, data)

	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	log.Printf("hdpatd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
	if err := svc.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "hdpatd: stopped; journaled jobs resume on next start")
	return nil
}
