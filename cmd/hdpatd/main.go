// Command hdpatd is the long-running HDPAT simulation service: an HTTP+JSON
// API that accepts simulation/comparison/sweep jobs, runs them on the
// parallel batch engine, streams per-job progress (SSE or long-poll),
// metrics, wall-clock timelines and flight-recorder events, and persists
// Result/Breakdown/report.md artifacts under content-addressed SHA-256
// digests. Job journals make runs durable: a restarted daemon resumes an
// interrupted sweep from its last finished run and produces artifacts
// byte-identical to an uninterrupted one.
//
// Serve:
//
//	hdpatd -addr :8080 -data ./hdpatd-data
//	curl -XPOST localhost:8080/v1/jobs -d '{"kind":"compare","scheme":"hdpat","benchmark":"FIR","ops_budget":8,"seed":1}'
//	curl localhost:8080/v1/jobs/<id>/progress?since=0
//	curl localhost:8080/v1/jobs/<id>/timeline   # chrome://tracing wall-clock view
//	curl localhost:8080/v1/artifacts/<digest>
//
// Operational output is structured JSON on stderr (log/slog), one object
// per line, carrying job_id/run_id/spec_digest correlation attributes.
// The listener binds before journal replay starts: /healthz answers
// immediately, /readyz stays 503 until recovery finishes and flips back to
// 503 when shutdown begins.
//
// One-shot digest mode (no server) runs a spec directly through the same
// artifact-assembly path and prints "name  sha256" per artifact — the
// reference the CI smoke test diffs a served job against:
//
//	hdpatd -digest -spec '{"kind":"compare","scheme":"hdpat","benchmark":"FIR","ops_budget":8,"seed":1}'
//
// See docs/service.md for the API reference and resume semantics.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"hdpat"
	"hdpat/internal/metrics"
	"hdpat/internal/service"
)

// main parses flags and funnels every outcome through one exit path — no
// log.Fatalf after the listener is up, so shutdown always drains the HTTP
// server and closes the service (journal handles released, interrupted
// jobs left resumable).
func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	data := flag.String("data", "hdpatd-data", "state directory (artifacts, job journals)")
	defOps := flag.Int("ops", 0, "default per-CU ops budget for specs that leave ops_budget at 0 (0 = simulator default)")
	maxOps := flag.Int("max-ops", 0, "reject specs asking for more than this ops budget (0 = no cap)")
	jobWorkers := flag.Int("job-workers", 1, "jobs executing concurrently")
	runWorkers := flag.Int("run-workers", 0, "default per-job run concurrency when a spec leaves workers at 0 (0 = 1, serial)")
	waferCfg := flag.String("wafer", "7x7", "system configuration: 7x7 (Table I) or 7x12 (Fig 22)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	digest := flag.Bool("digest", false, "one-shot: run -spec locally and print its artifact digests, then exit")
	specJSON := flag.String("spec", "", "job spec JSON for -digest mode")
	flag.Parse()

	logger, err := newLogger(*logLevel)
	if err == nil {
		var cfg hdpat.Config
		cfg, err = systemConfig(*waferCfg)
		if err == nil {
			run := runFunc(cfg, *defOps, *maxOps)
			if *digest {
				err = printDigests(*specJSON, run)
			} else {
				err = serve(*addr, *data, run, checkSpec(cfg), *jobWorkers, *runWorkers, logger)
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdpatd: %v\n", err)
		os.Exit(1)
	}
}

// newLogger builds the daemon's structured logger: JSON records on stderr,
// one object per line — machine-parseable (the smoke test pipes them
// through jq) and greppable by job_id.
func newLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (debug, info, warn or error)", level)
	}
	return slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

// systemConfig resolves the -wafer flag.
func systemConfig(name string) (hdpat.Config, error) {
	switch name {
	case "7x7":
		return hdpat.DefaultConfig(), nil
	case "7x12":
		return hdpat.Wafer7x12Config(), nil
	}
	return hdpat.Config{}, fmt.Errorf("unknown -wafer %q (7x7 or 7x12)", name)
}

// specConfig applies a spec's mesh and routing overrides to the daemon's
// base config.
func specConfig(cfg hdpat.Config, spec service.JobSpec) hdpat.Config {
	if spec.MeshW != 0 {
		cfg.MeshW, cfg.MeshH = spec.MeshW, spec.MeshH
	}
	if spec.Routing != "" {
		cfg.NoC.Routing = spec.Routing
	}
	return cfg
}

// checkSpec builds the service's submission-time vet: the full
// config.Validate on the job's effective system config, so a hostile spec
// (overflowing mesh, absurd geometry, unknown routing policy) comes back as
// an HTTP 400 instead of failing — or panicking — inside a run.
func checkSpec(cfg hdpat.Config) func(service.JobSpec) error {
	return func(spec service.JobSpec) error {
		return specConfig(cfg, spec).Validate()
	}
}

// runFunc adapts the public simulation API into the service's run seam.
// Every job run goes through here: scheme resolution, the daemon's default
// budget, the spec's mesh override, and the optional per-run metrics
// registry.
func runFunc(cfg hdpat.Config, defOps, maxOps int) service.RunFunc {
	return func(ctx context.Context, spec service.JobSpec, p service.Point, reg *metrics.Registry) (hdpat.Result, error) {
		budget := spec.OpsBudget
		if budget == 0 {
			budget = defOps
		}
		if maxOps > 0 && budget > maxOps {
			return hdpat.Result{}, fmt.Errorf("ops budget %d exceeds daemon cap %d", budget, maxOps)
		}
		cfg := specConfig(cfg, spec)
		opts := []hdpat.Option{hdpat.WithSeed(spec.Seed)}
		if budget > 0 {
			opts = append(opts, hdpat.WithOpsBudget(budget))
		}
		if spec.Attribution {
			opts = append(opts, hdpat.WithAttribution())
		}
		if reg != nil {
			opts = append(opts, hdpat.WithMetrics(reg))
		}
		return hdpat.SimulateContext(ctx, cfg, hdpat.RunSpec{
			Scheme: p.Scheme, Benchmark: p.Benchmark,
		}, opts...)
	}
}

// printDigests runs the spec inline (no daemon, no store) and prints one
// "name  sha256-hex" line per assembled artifact.
func printDigests(specJSON string, run service.RunFunc) error {
	if specJSON == "" {
		return errors.New("-digest needs -spec '<job spec JSON>'")
	}
	var spec service.JobSpec
	if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
		return fmt.Errorf("parse -spec: %w", err)
	}
	blobs, err := service.Materialize(context.Background(), spec, run)
	if err != nil {
		return err
	}
	for _, b := range blobs {
		fmt.Printf("%s  %x\n", b.Name, sha256.Sum256(b.Data))
	}
	return nil
}

// startupHandler answers while the service is still recovering its
// journals: /healthz is alive from the instant the port is bound, /readyz
// (and everything else) is 503 until the real handler is swapped in.
type startupHandler struct {
	h atomic.Value // http.Handler, set once recovery finishes
}

func (s *startupHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	if r.URL.Path == "/healthz" {
		fmt.Fprintln(w, "ok")
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, "starting")
}

// serve binds the listener, opens the service state behind it (journal
// replay may take a while on a large state dir — /readyz reports 503 until
// it finishes), then blocks until SIGINT/SIGTERM or a listener failure.
// Every exit goes through the same graceful sequence: drain the HTTP
// server, then Close the service so running jobs are interrupted without a
// terminal journal entry and the next start resumes them.
func serve(addr, data string, run service.RunFunc, check func(service.JobSpec) error, jobWorkers, runWorkers int, logger *slog.Logger) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	var startup startupHandler
	srv := &http.Server{Handler: &startup}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	logger.Info("listening", "addr", ln.Addr().String(), "data", data)

	svc, err := service.Open(service.Options{
		Dir:        data,
		Run:        run,
		JobWorkers: jobWorkers,
		RunWorkers: runWorkers,
		Logger:     logger,
		CheckSpec:  check,
	})
	if err != nil {
		srv.Close()
		<-errc
		return err
	}
	startup.h.Store(svc.Handler())
	logger.Info("ready", "addr", ln.Addr().String())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		// The listener died out from under us; unwind the service and
		// surface the cause.
		closeErr := svc.Close()
		if err == nil || errors.Is(err, http.ErrServerClosed) {
			err = closeErr
		}
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown incomplete", "err", err.Error())
	}
	if err := svc.Close(); err != nil {
		return err
	}
	logger.Info("stopped; journaled jobs resume on next start")
	return nil
}
