package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hdpat"
	"hdpat/internal/metrics"
	"hdpat/internal/service"
)

// testLogger routes the service's structured log output through t.Logf.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testWriter{t}, nil))
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// startDaemon opens a service over the real simulator in dir and serves it.
func startDaemon(t *testing.T, dir string, run service.RunFunc) (*service.Service, *httptest.Server) {
	t.Helper()
	svc, err := service.Open(service.Options{Dir: dir, Run: run, Logger: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return svc, srv
}

func pollDone(t *testing.T, srv *httptest.Server, id string) service.Status {
	t.Helper()
	since := int64(-1)
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/progress?since=%d&timeout=2s", srv.URL, id, since))
		if err != nil {
			t.Fatal(err)
		}
		var st service.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		since = st.Rev
	}
	t.Fatal("job never settled")
	return service.Status{}
}

// TestDaemonCompareMatchesDirectRun is the smoke contract CI scripts
// against: a Compare job served over HTTP stores artifacts byte-identical
// to a direct in-process run of the same spec (service.Materialize — the
// hdpatd -digest path).
func TestDaemonCompareMatchesDirectRun(t *testing.T) {
	run := runFunc(hdpat.DefaultConfig(), 0, 0)
	_, srv := startDaemon(t, t.TempDir(), run)

	spec := service.JobSpec{
		Kind: service.KindCompare, Scheme: "hdpat", Benchmark: "FIR",
		OpsBudget: 8, Seed: 1, Attribution: true,
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	final := pollDone(t, srv, st.ID)
	if final.State != service.StateDone {
		t.Fatalf("job %s: %s (%s)", st.ID, final.State, final.Error)
	}

	// Direct run through the same assembly path.
	blobs, err := service.Materialize(context.Background(), spec, run)
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != len(final.Artifacts) {
		t.Fatalf("direct run has %d artifacts, job %d", len(blobs), len(final.Artifacts))
	}
	for i, b := range blobs {
		a := final.Artifacts[i]
		sum := sha256.Sum256(b.Data)
		if a.Name != b.Name || a.Digest != hex.EncodeToString(sum[:]) {
			t.Errorf("artifact %d: job %s/%s vs direct %s/%x", i, a.Name, a.Digest, b.Name, sum)
		}
		// And the served bytes match too.
		resp, err := http.Get(srv.URL + "/v1/artifacts/" + a.Digest)
		if err != nil {
			t.Fatal(err)
		}
		served, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !bytes.Equal(served, b.Data) {
			t.Errorf("artifact %s served bytes differ from direct run", a.Name)
		}
	}
}

// TestDaemonKillRestartSweep runs the acceptance scenario on the real
// simulator: a sweep interrupted mid-flight and resumed by a fresh service
// produces artifacts byte-identical to an uninterrupted sweep, without
// re-executing completed runs.
func TestDaemonKillRestartSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("real-simulator sweep")
	}
	run := runFunc(hdpat.DefaultConfig(), 0, 0)
	spec := service.JobSpec{
		Kind:       service.KindSweep,
		Schemes:    []string{"hdpat"},
		Benchmarks: []string{"FIR", "SPMV"},
		OpsBudget:  6, Seed: 2, Attribution: true,
	}
	total := len(spec.Points()) // 2 benchmarks x (baseline + hdpat) = 4
	const allow = 2

	// Control sweep, uninterrupted.
	ctrl, err := service.Open(service.Options{Dir: t.TempDir(), Run: run})
	if err != nil {
		t.Fatal(err)
	}
	jc, _, err := ctrl.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := waitDone(t, jc)
	ctrl.Close()

	// Interrupted sweep: the run seam blocks after `allow` completions.
	dir := t.TempDir()
	var count atomic.Int64
	blocked := make(chan struct{}, 1)
	gated := func(ctx context.Context, s service.JobSpec, p service.Point, reg *metrics.Registry) (hdpat.Result, error) {
		if count.Add(1) > allow {
			select {
			case blocked <- struct{}{}:
			default:
			}
			<-ctx.Done()
			return hdpat.Result{}, ctx.Err()
		}
		return run(ctx, s, p, reg)
	}
	svc1, err := service.Open(service.Options{Dir: dir, Run: gated})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc1.Submit(spec); err != nil {
		t.Fatal(err)
	}
	select {
	case <-blocked:
	case <-time.After(60 * time.Second):
		t.Fatal("gate never reached")
	}
	svc1.Close() // the kill: no terminal journal entry

	// Fresh daemon process over the same state dir.
	var executed atomic.Int64
	counting := func(ctx context.Context, s service.JobSpec, p service.Point, reg *metrics.Registry) (hdpat.Result, error) {
		executed.Add(1)
		return run(ctx, s, p, reg)
	}
	svc2, err := service.Open(service.Options{Dir: dir, Run: counting})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	j, ok := svc2.Get(spec.ID())
	if !ok {
		t.Fatal("job not recovered")
	}
	got := waitDone(t, j)

	if n := int(executed.Load()); n != total-allow {
		t.Errorf("restart executed %d runs, want %d (completed runs must not re-execute)", n, total-allow)
	}
	if got.Progress.Resumed != allow {
		t.Errorf("resumed = %d, want %d", got.Progress.Resumed, allow)
	}
	if len(got.Artifacts) != len(want.Artifacts) {
		t.Fatalf("artifact count %d vs control %d", len(got.Artifacts), len(want.Artifacts))
	}
	for i := range got.Artifacts {
		if got.Artifacts[i] != want.Artifacts[i] {
			t.Errorf("artifact %d: %+v vs control %+v", i, got.Artifacts[i], want.Artifacts[i])
		}
	}
}

func waitDone(t *testing.T, j *service.Job) service.Status {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	since := int64(-1)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		st := j.Wait(ctx, since)
		cancel()
		since = st.Rev
		if st.State.Terminal() {
			if st.State != service.StateDone {
				t.Fatalf("job %s: %s (%s)", st.ID, st.State, st.Error)
			}
			return st
		}
	}
	t.Fatal("job never settled")
	return service.Status{}
}

// TestDigestModeMatchesSpec checks the -digest plumbing end to end: the
// printed digests equal the SHA-256 of the materialized artifacts.
func TestDigestModeMatchesSpec(t *testing.T) {
	run := runFunc(hdpat.DefaultConfig(), 0, 0)
	spec := service.JobSpec{Kind: service.KindSimulate, Scheme: "baseline", Benchmark: "FIR", OpsBudget: 4, Seed: 1}
	blobs, err := service.Materialize(context.Background(), spec, run)
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 1 || blobs[0].Name != "run-0-baseline-FIR.json" {
		t.Fatalf("blobs = %+v", blobs)
	}
	// The daemon cap rejects over-budget specs.
	capped := runFunc(hdpat.DefaultConfig(), 0, 2)
	if _, err := service.Materialize(context.Background(), spec, capped); err == nil {
		t.Error("max-ops cap not enforced")
	}
}
