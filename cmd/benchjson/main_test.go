package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeReport(t *testing.T, name string, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldJSON = `{"benchmarks":[
  {"name":"BenchmarkBatch3x3/serial","iterations":3,"metrics":[{"value":1000,"unit":"ns/op"},{"value":64,"unit":"B/op"}]},
  {"name":"BenchmarkBatch3x3/parallel","iterations":3,"metrics":[{"value":400,"unit":"ns/op"}]},
  {"name":"BenchmarkRemoved","iterations":1,"metrics":[{"value":10,"unit":"ns/op"}]}
]}`

func TestCompareWithinTolerance(t *testing.T) {
	newJSON := `{"benchmarks":[
	  {"name":"BenchmarkBatch3x3/serial","iterations":3,"metrics":[{"value":1100,"unit":"ns/op"}]},
	  {"name":"BenchmarkBatch3x3/parallel","iterations":3,"metrics":[{"value":380,"unit":"ns/op"}]},
	  {"name":"BenchmarkNew","iterations":1,"metrics":[{"value":5,"unit":"ns/op"}]}
	]}`
	code := compareReports(writeReport(t, "old.json", oldJSON),
		writeReport(t, "new.json", newJSON), 0.15)
	if code != 0 {
		t.Errorf("10%% slowdown under 15%% tolerance: exit %d, want 0", code)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	newJSON := `{"benchmarks":[
	  {"name":"BenchmarkBatch3x3/serial","iterations":3,"metrics":[{"value":1200,"unit":"ns/op"}]}
	]}`
	code := compareReports(writeReport(t, "old.json", oldJSON),
		writeReport(t, "new.json", newJSON), 0.15)
	if code != 1 {
		t.Errorf("20%% slowdown over 15%% tolerance: exit %d, want 1", code)
	}
	// The same delta passes when the tolerance is raised.
	if code := compareReports(writeReport(t, "old2.json", oldJSON),
		writeReport(t, "new2.json", newJSON), 0.25); code != 0 {
		t.Errorf("20%% slowdown under 25%% tolerance: exit %d, want 0", code)
	}
}

func TestCompareMissingFile(t *testing.T) {
	if code := compareReports(filepath.Join(t.TempDir(), "absent.json"),
		writeReport(t, "new.json", oldJSON), 0.15); code != 2 {
		t.Errorf("missing baseline: exit %d, want 2", code)
	}
}

func TestNsPerOpIndexing(t *testing.T) {
	rep := Report{Benchmarks: []Benchmark{
		{Name: "A", Metrics: []Metric{{Value: 7, Unit: "B/op"}, {Value: 42, Unit: "ns/op"}}},
		{Name: "B", Metrics: []Metric{{Value: 9, Unit: "allocs/op"}}},
	}}
	ns := nsPerOp(rep)
	if ns["A"] != 42 {
		t.Errorf("ns/op[A] = %v", ns["A"])
	}
	if _, ok := ns["B"]; ok {
		t.Error("benchmark without ns/op should not be indexed")
	}
}
