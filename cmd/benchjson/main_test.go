package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeReport(t *testing.T, name string, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// defaultTol mirrors the flag defaults.
func defaultTol() tolerances {
	return tolerances{NsPerOp: 0.15, AllocsOp: 0.10, EventsSec: 0.15, BytesGPM: 0.20}
}

const oldJSON = `{"benchmarks":[
  {"name":"BenchmarkBatch3x3/serial","iterations":3,"metrics":[{"value":1000,"unit":"ns/op"},{"value":64,"unit":"B/op"}]},
  {"name":"BenchmarkBatch3x3/parallel","iterations":3,"metrics":[{"value":400,"unit":"ns/op"}]},
  {"name":"BenchmarkRemoved","iterations":1,"metrics":[{"value":10,"unit":"ns/op"}]}
]}`

func TestCompareWithinTolerance(t *testing.T) {
	newJSON := `{"benchmarks":[
	  {"name":"BenchmarkBatch3x3/serial","iterations":3,"metrics":[{"value":1100,"unit":"ns/op"}]},
	  {"name":"BenchmarkBatch3x3/parallel","iterations":3,"metrics":[{"value":380,"unit":"ns/op"}]},
	  {"name":"BenchmarkNew","iterations":1,"metrics":[{"value":5,"unit":"ns/op"}]}
	]}`
	code := compareReports(writeReport(t, "old.json", oldJSON),
		writeReport(t, "new.json", newJSON), defaultTol())
	if code != 0 {
		t.Errorf("10%% slowdown under 15%% tolerance: exit %d, want 0", code)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	newJSON := `{"benchmarks":[
	  {"name":"BenchmarkBatch3x3/serial","iterations":3,"metrics":[{"value":1200,"unit":"ns/op"}]}
	]}`
	code := compareReports(writeReport(t, "old.json", oldJSON),
		writeReport(t, "new.json", newJSON), defaultTol())
	if code != 1 {
		t.Errorf("20%% slowdown over 15%% tolerance: exit %d, want 1", code)
	}
	// The same delta passes when the tolerance is raised.
	tol := defaultTol()
	tol.NsPerOp = 0.25
	if code := compareReports(writeReport(t, "old2.json", oldJSON),
		writeReport(t, "new2.json", newJSON), tol); code != 0 {
		t.Errorf("20%% slowdown under 25%% tolerance: exit %d, want 0", code)
	}
}

func TestCompareAllocRegressionFails(t *testing.T) {
	old := `{"benchmarks":[
	  {"name":"BenchmarkCompare","iterations":3,"metrics":[{"value":1000,"unit":"ns/op"},{"value":1000,"unit":"allocs/op"}]}
	]}`
	// Wall time fine, allocations up 20%: the alloc gate must fail alone.
	next := `{"benchmarks":[
	  {"name":"BenchmarkCompare","iterations":3,"metrics":[{"value":1000,"unit":"ns/op"},{"value":1200,"unit":"allocs/op"}]}
	]}`
	code := compareReports(writeReport(t, "old.json", old),
		writeReport(t, "new.json", next), defaultTol())
	if code != 1 {
		t.Errorf("20%% alloc growth over 10%% tolerance: exit %d, want 1", code)
	}
	within := `{"benchmarks":[
	  {"name":"BenchmarkCompare","iterations":3,"metrics":[{"value":1000,"unit":"ns/op"},{"value":1050,"unit":"allocs/op"}]}
	]}`
	if code := compareReports(writeReport(t, "old2.json", old),
		writeReport(t, "new2.json", within), defaultTol()); code != 0 {
		t.Errorf("5%% alloc growth under 10%% tolerance: exit %d, want 0", code)
	}
}

func TestCompareEventsThroughputGate(t *testing.T) {
	old := `{"benchmarks":[
	  {"name":"BenchmarkCompare","iterations":3,"metrics":[{"value":1000,"unit":"ns/op"},{"value":1000000,"unit":"events/sec"}]}
	]}`
	// events/sec regresses downward: a 30% drop fails, a 30% gain passes.
	drop := `{"benchmarks":[
	  {"name":"BenchmarkCompare","iterations":3,"metrics":[{"value":1000,"unit":"ns/op"},{"value":700000,"unit":"events/sec"}]}
	]}`
	if code := compareReports(writeReport(t, "old.json", old),
		writeReport(t, "new.json", drop), defaultTol()); code != 1 {
		t.Errorf("30%% throughput drop over 15%% tolerance: exit %d, want 1", code)
	}
	gain := `{"benchmarks":[
	  {"name":"BenchmarkCompare","iterations":3,"metrics":[{"value":1000,"unit":"ns/op"},{"value":1300000,"unit":"events/sec"}]}
	]}`
	if code := compareReports(writeReport(t, "old2.json", old),
		writeReport(t, "new2.json", gain), defaultTol()); code != 0 {
		t.Errorf("throughput gain flagged as regression: exit %d, want 0", code)
	}
}

func TestCompareShardedLegInformationalOnSingleCPU(t *testing.T) {
	// A D4 leg with no GOMAXPROCS suffix (procs omitted = single CPU)
	// regresses hard; the sweep on 8 procs regresses the same amount.
	old := `{"benchmarks":[
	  {"name":"BenchmarkCompareHDPATD4","iterations":3,"metrics":[{"value":1000,"unit":"ns/op"}]},
	  {"name":"BenchmarkCompareHDPAT","procs":8,"iterations":3,"metrics":[{"value":1000,"unit":"ns/op"}]}
	]}`
	slowD4 := `{"benchmarks":[
	  {"name":"BenchmarkCompareHDPATD4","iterations":3,"metrics":[{"value":2000,"unit":"ns/op"}]},
	  {"name":"BenchmarkCompareHDPAT","procs":8,"iterations":3,"metrics":[{"value":1000,"unit":"ns/op"}]}
	]}`
	// Only the sharded leg regressed, and it ran on one CPU: informational.
	if code := compareReports(writeReport(t, "old.json", old),
		writeReport(t, "new.json", slowD4), defaultTol()); code != 0 {
		t.Errorf("single-CPU D4 regression gated: exit %d, want 0", code)
	}
	// The deflection leg follows the same rule: single CPU is informational.
	oldDefl := `{"benchmarks":[
	  {"name":"BenchmarkCompareHDPATDeflect","iterations":3,"metrics":[{"value":1000,"unit":"ns/op"}]}
	]}`
	slowDefl := `{"benchmarks":[
	  {"name":"BenchmarkCompareHDPATDeflect","iterations":3,"metrics":[{"value":2000,"unit":"ns/op"}]}
	]}`
	if code := compareReports(writeReport(t, "oldd.json", oldDefl),
		writeReport(t, "newd.json", slowDefl), defaultTol()); code != 0 {
		t.Errorf("single-CPU Deflect regression gated: exit %d, want 0", code)
	}
	// The same leg on a multi-CPU runner measures the real sharding speedup
	// and must gate.
	oldMP := `{"benchmarks":[
	  {"name":"BenchmarkCompareHDPATD4","procs":8,"iterations":3,"metrics":[{"value":1000,"unit":"ns/op"}]}
	]}`
	slowMP := `{"benchmarks":[
	  {"name":"BenchmarkCompareHDPATD4","procs":8,"iterations":3,"metrics":[{"value":2000,"unit":"ns/op"}]}
	]}`
	if code := compareReports(writeReport(t, "old2.json", oldMP),
		writeReport(t, "new2.json", slowMP), defaultTol()); code != 1 {
		t.Errorf("multi-CPU D4 regression not gated: exit %d, want 1", code)
	}
	// A non-sharded single-CPU benchmark still gates.
	oldPlain := `{"benchmarks":[
	  {"name":"BenchmarkCompareHDPAT","iterations":3,"metrics":[{"value":1000,"unit":"ns/op"}]}
	]}`
	slowPlain := `{"benchmarks":[
	  {"name":"BenchmarkCompareHDPAT","iterations":3,"metrics":[{"value":2000,"unit":"ns/op"}]}
	]}`
	if code := compareReports(writeReport(t, "old3.json", oldPlain),
		writeReport(t, "new3.json", slowPlain), defaultTol()); code != 1 {
		t.Errorf("plain single-CPU regression not gated: exit %d, want 1", code)
	}
}

func TestCompareInformationalFlag(t *testing.T) {
	old := `{"benchmarks":[
	  {"name":"BenchmarkNoisy","procs":8,"iterations":3,"metrics":[{"value":1000,"unit":"ns/op"}]}
	]}`
	slow := `{"benchmarks":[
	  {"name":"BenchmarkNoisy","procs":8,"iterations":3,"metrics":[{"value":2000,"unit":"ns/op"}]}
	]}`
	tol := defaultTol()
	tol.Informational = `^BenchmarkNoisy$`
	if code := compareReports(writeReport(t, "old.json", old),
		writeReport(t, "new.json", slow), tol); code != 0 {
		t.Errorf("-informational benchmark gated: exit %d, want 0", code)
	}
	// Without the flag the same diff fails.
	if code := compareReports(writeReport(t, "old2.json", old),
		writeReport(t, "new2.json", slow), defaultTol()); code != 1 {
		t.Errorf("ungated without -informational: exit %d, want 1", code)
	}
	// A bad pattern is a usage error, not a silent pass.
	tol.Informational = `(`
	if code := compareReports(writeReport(t, "old3.json", old),
		writeReport(t, "new3.json", slow), tol); code != 2 {
		t.Errorf("bad -informational pattern: exit %d, want 2", code)
	}
}

func TestShardedLegPattern(t *testing.T) {
	cases := []struct {
		b    Benchmark
		want bool
	}{
		{Benchmark{Name: "BenchmarkCompareHDPATD4"}, true},
		{Benchmark{Name: "BenchmarkCompareHDPAT7x12D4"}, true},
		{Benchmark{Name: "BenchmarkCompareHDPATD4/sub"}, true},
		{Benchmark{Name: "BenchmarkCompareHDPATD4", Procs: 8}, false}, // multi-CPU
		{Benchmark{Name: "BenchmarkCompareHDPAT"}, false},
		{Benchmark{Name: "BenchmarkBatch3x3/parallel"}, false},
	}
	for _, c := range cases {
		if got := informational(c.b, nil); got != c.want {
			t.Errorf("informational(%q procs=%d) = %v, want %v", c.b.Name, c.b.Procs, got, c.want)
		}
	}
}

func TestCompareMissingFile(t *testing.T) {
	if code := compareReports(filepath.Join(t.TempDir(), "absent.json"),
		writeReport(t, "new.json", oldJSON), defaultTol()); code != 2 {
		t.Errorf("missing baseline: exit %d, want 2", code)
	}
}

func TestMetricIndexing(t *testing.T) {
	rep := Report{Benchmarks: []Benchmark{
		{Name: "A", Metrics: []Metric{{Value: 7, Unit: "B/op"}, {Value: 42, Unit: "ns/op"}}},
		{Name: "B", Metrics: []Metric{{Value: 9, Unit: "allocs/op"}}},
	}}
	ns := metricIndex(rep, "ns/op")
	if ns["A"] != 42 {
		t.Errorf("ns/op[A] = %v", ns["A"])
	}
	if _, ok := ns["B"]; ok {
		t.Error("benchmark without ns/op should not be indexed")
	}
	if al := metricIndex(rep, "allocs/op"); al["B"] != 9 {
		t.Errorf("allocs/op[B] = %v", al["B"])
	}
}

// bytes/GPM is the memory-scaling gate: heap growth per GPM reported by the
// giant-wafer benchmarks. An increase past -bytes-tolerance fails, a
// decrease never does.
func TestCompareBytesPerGPMGate(t *testing.T) {
	old := `{"benchmarks":[
	  {"name":"BenchmarkScale30x30","procs":4,"iterations":1,"metrics":[{"value":100000,"unit":"bytes/GPM"}]}
	]}`
	worse := `{"benchmarks":[
	  {"name":"BenchmarkScale30x30","procs":4,"iterations":1,"metrics":[{"value":140000,"unit":"bytes/GPM"}]}
	]}`
	if code := compareReports(writeReport(t, "old.json", old),
		writeReport(t, "worse.json", worse), defaultTol()); code != 1 {
		t.Errorf("40%% bytes/GPM growth over 20%% tolerance: exit %d, want 1", code)
	}
	within := `{"benchmarks":[
	  {"name":"BenchmarkScale30x30","procs":4,"iterations":1,"metrics":[{"value":110000,"unit":"bytes/GPM"}]}
	]}`
	if code := compareReports(writeReport(t, "old2.json", old),
		writeReport(t, "within.json", within), defaultTol()); code != 0 {
		t.Errorf("10%% bytes/GPM growth under 20%% tolerance: exit %d, want 0", code)
	}
	better := `{"benchmarks":[
	  {"name":"BenchmarkScale30x30","procs":4,"iterations":1,"metrics":[{"value":20000,"unit":"bytes/GPM"}]}
	]}`
	if code := compareReports(writeReport(t, "old3.json", old),
		writeReport(t, "better.json", better), defaultTol()); code != 0 {
		t.Errorf("5x bytes/GPM improvement: exit %d, want 0", code)
	}
}
