// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so `make bench` can commit a
// regression baseline (results/bench.json) that CI and later sessions diff
// against without re-parsing the text format.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkBatch -benchmem | benchjson > results/bench.json
//	benchjson -compare old.json new.json [-tolerance 0.15]
//
// Only standard benchmark result lines and the context header (goos/goarch/
// pkg/cpu) are interpreted; everything else passes through to stderr so
// failures stay visible in pipelines.
//
// -compare diffs two reports and exits 1 when any benchmark present in both
// regressed beyond tolerance — the CI bench-regression gate
// (`make bench-check`). Four metrics are gated, each with its own
// tolerance:
//
//   - ns/op (-tolerance, default 0.15): wall time is noisy on shared
//     runners, so the slack is wide.
//   - allocs/op (-alloc-tolerance, default 0.10): allocation counts are
//     nearly deterministic; the slack only absorbs sync.Pool and map-growth
//     jitter, so a real new allocation per op trips the gate.
//   - events/sec (-events-tolerance, default 0.15): the kernel-throughput
//     custom metric; derived from wall time, so it inherits its noise.
//   - bytes/GPM (-bytes-tolerance, default 0.20): the memory-scaling custom
//     metric reported by the giant-wafer benchmarks (heap growth per GPM
//     from runtime.ReadMemStats deltas); an increase means the sparse/lazy
//     layouts regressed toward eager instantiation. Heap accounting jitters
//     with GC timing, so the slack is the widest of the four.
//
// Benchmarks appearing on only one side are reported but never fail the
// gate, so adding or renaming a benchmark does not require regenerating the
// baseline in the same change.
//
// Two escape hatches keep the gate honest rather than strict:
//
//   - -informational REGEX: matching benchmark names are diffed and printed
//     but never fail the gate.
//   - Domain-sharded legs (a D<n> suffix before the /sub-bench or
//     GOMAXPROCS marker, e.g. BenchmarkCompareHDPATD4) and deflection legs
//     (a Deflect suffix, e.g. BenchmarkCompareHDPATDeflect) are
//     automatically informational when the new run executed on a single CPU
//     (GOMAXPROCS 1). On one CPU those legs measure pure sharding-protocol
//     overhead, not the speedup they exist to track, so their wall time
//     gates CI misleadingly (see docs/performance.md, "Domain
//     decomposition").
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Metric is one reported value of a benchmark ("ns/op", "B/op",
// "allocs/op", or any custom b.ReportMetric unit).
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Benchmark is one result line.
type Benchmark struct {
	Name       string   `json:"name"`
	Procs      int      `json:"procs,omitempty"` // the -N GOMAXPROCS suffix
	Iterations int64    `json:"iterations"`
	Metrics    []Metric `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// tolerances holds the per-metric slack -compare allows before failing.
type tolerances struct {
	NsPerOp       float64 // fractional ns/op increase allowed
	AllocsOp      float64 // fractional allocs/op increase allowed
	EventsSec     float64 // fractional events/sec decrease allowed
	BytesGPM      float64 // fractional bytes/GPM increase allowed
	Informational string  // regexp of benchmark names reported but never gated
}

func main() {
	compare := flag.Bool("compare", false, "compare two bench.json files: -compare old.json new.json")
	var tol tolerances
	flag.Float64Var(&tol.NsPerOp, "tolerance", 0.15, "allowed fractional ns/op regression before -compare fails")
	flag.Float64Var(&tol.AllocsOp, "alloc-tolerance", 0.10, "allowed fractional allocs/op regression before -compare fails")
	flag.Float64Var(&tol.EventsSec, "events-tolerance", 0.15, "allowed fractional events/sec decrease before -compare fails")
	flag.Float64Var(&tol.BytesGPM, "bytes-tolerance", 0.20, "allowed fractional bytes/GPM increase before -compare fails")
	flag.StringVar(&tol.Informational, "informational", "", "regexp of benchmark names to diff and report but never fail on")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare [-tolerance F] [-alloc-tolerance F] [-events-tolerance F] [-bytes-tolerance F] [-informational RE] old.json new.json")
			os.Exit(2)
		}
		os.Exit(compareReports(flag.Arg(0), flag.Arg(1), tol))
	}
	convert()
}

// shardedLeg matches domain-sharded benchmark legs: a D<n> suffix on the
// top-level benchmark name (before any /sub-benchmark), the naming
// convention bench_hot_test.go uses for WithDomains variants.
var shardedLeg = regexp.MustCompile(`^Benchmark[^/]*D[0-9]+(/|$)`)

// deflectLeg matches deflection-routed benchmark legs (a Deflect suffix on
// the top-level name, e.g. BenchmarkCompareHDPATDeflect): the router's
// misroute probing is contention-dependent work whose cost moves with
// scheduling noise far more than the XY hot path, so single-CPU runners
// diff it without gating, mirroring the D-leg rule.
var deflectLeg = regexp.MustCompile(`^Benchmark[^/]*Deflect[^/]*(/|$)`)

// informational reports whether b's regression should be printed but not
// gated: either its name matches the -informational pattern, or it is a
// domain-sharded or deflection-routed leg that ran on a single CPU, where
// the leg measures protocol/probing overhead rather than the speedup or
// hot-path cost it exists to track.
func informational(b Benchmark, pat *regexp.Regexp) bool {
	if pat != nil && pat.MatchString(b.Name) {
		return true
	}
	return b.Procs <= 1 && (shardedLeg.MatchString(b.Name) || deflectLeg.MatchString(b.Name))
}

// gate describes one gated metric: its unit, its slack, and whether an
// increase (ns/op, allocs/op) or a decrease (events/sec) counts as a
// regression.
type gate struct {
	unit      string
	tolerance float64
	higherBad bool
}

// compareReports diffs new against old and returns the process exit code:
// 0 when every shared benchmark is within tolerance on every gated metric,
// 1 on regression.
func compareReports(oldPath, newPath string, tol tolerances) int {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	var infoPat *regexp.Regexp
	if tol.Informational != "" {
		infoPat, err = regexp.Compile(tol.Informational)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -informational:", err)
			return 2
		}
	}
	gates := []gate{
		{unit: "ns/op", tolerance: tol.NsPerOp, higherBad: true},
		{unit: "allocs/op", tolerance: tol.AllocsOp, higherBad: true},
		{unit: "events/sec", tolerance: tol.EventsSec, higherBad: false},
		{unit: "bytes/GPM", tolerance: tol.BytesGPM, higherBad: true},
	}
	var regressed []string
	for _, g := range gates {
		oldVals := metricIndex(oldRep, g.unit)
		newVals := metricIndex(newRep, g.unit)
		for _, b := range newRep.Benchmarks {
			nv, ok := newVals[b.Name]
			if !ok {
				continue
			}
			ov, ok := oldVals[b.Name]
			if !ok {
				fmt.Printf("%-40s %14.0f %-10s (new benchmark, not gated)\n", b.Name, nv, g.unit)
				continue
			}
			var delta float64
			switch {
			case ov != 0:
				delta = (nv - ov) / ov
				if !g.higherBad {
					delta = -delta
				}
			case nv != 0:
				delta = 1 // from zero to something: treat as 100% worse
			}
			status := "ok"
			if delta > g.tolerance {
				if informational(b, infoPat) {
					status = "regression (informational, not gated)"
				} else {
					status = "REGRESSION"
					regressed = append(regressed, g.unit)
				}
			}
			fmt.Printf("%-40s %14.0f -> %14.0f %-10s %+7.1f%%  %s\n", b.Name, ov, nv, g.unit, delta*100, status)
		}
		for name, ov := range oldVals {
			if _, ok := newVals[name]; !ok {
				fmt.Printf("%-40s %14.0f %-10s (removed, not gated)\n", name, ov, g.unit)
			}
		}
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: regression beyond tolerance in %v\n", regressed)
		return 1
	}
	return 0
}

func loadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// metricIndex indexes one metric unit of a report by benchmark name.
// Duplicate names (e.g. -cpu sweeps) keep the last value.
func metricIndex(rep Report, unit string) map[string]float64 {
	out := make(map[string]float64, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		for _, m := range b.Metrics {
			if m.Unit == unit {
				out[b.Name] = m.Value
			}
		}
	}
	return out
}

// convert is the original stdin-to-JSON mode.
func convert() {
	rep := Report{Note: os.Getenv("BENCHJSON_NOTE")}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
				continue
			}
			fmt.Fprintln(os.Stderr, line)
		default:
			// PASS/FAIL/ok and test chatter: keep visible, out of the JSON.
			if line != "" {
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

// parseBenchLine parses "BenchmarkName-8  3  123 ns/op  45 B/op ..." into a
// Benchmark. Metrics come in (value, unit) pairs after the iteration count.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0]}
	if i := strings.LastIndexByte(b.Name, '-'); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics = append(b.Metrics, Metric{Value: v, Unit: fields[i+1]})
	}
	return b, true
}
