// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so `make bench` can commit a
// regression baseline (results/bench.json) that CI and later sessions diff
// against without re-parsing the text format.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkBatch -benchmem | benchjson > results/bench.json
//
// Only standard benchmark result lines and the context header (goos/goarch/
// pkg/cpu) are interpreted; everything else passes through to stderr so
// failures stay visible in pipelines.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Metric is one reported value of a benchmark ("ns/op", "B/op",
// "allocs/op", or any custom b.ReportMetric unit).
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Benchmark is one result line.
type Benchmark struct {
	Name       string   `json:"name"`
	Procs      int      `json:"procs,omitempty"` // the -N GOMAXPROCS suffix
	Iterations int64    `json:"iterations"`
	Metrics    []Metric `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep := Report{Note: os.Getenv("BENCHJSON_NOTE")}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
				continue
			}
			fmt.Fprintln(os.Stderr, line)
		default:
			// PASS/FAIL/ok and test chatter: keep visible, out of the JSON.
			if line != "" {
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

// parseBenchLine parses "BenchmarkName-8  3  123 ns/op  45 B/op ..." into a
// Benchmark. Metrics come in (value, unit) pairs after the iteration count.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0]}
	if i := strings.LastIndexByte(b.Name, '-'); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics = append(b.Metrics, Metric{Value: v, Unit: fields[i+1]})
	}
	return b, true
}
