// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so `make bench` can commit a
// regression baseline (results/bench.json) that CI and later sessions diff
// against without re-parsing the text format.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkBatch -benchmem | benchjson > results/bench.json
//	benchjson -compare old.json new.json [-tolerance 0.15]
//
// Only standard benchmark result lines and the context header (goos/goarch/
// pkg/cpu) are interpreted; everything else passes through to stderr so
// failures stay visible in pipelines.
//
// -compare diffs two reports and exits 1 when any benchmark present in both
// regressed its ns/op by more than the tolerance — the CI bench-regression
// gate (`make bench-check`). Benchmarks appearing on only one side are
// reported but never fail the gate, so adding or renaming a benchmark does
// not require regenerating the baseline in the same change.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Metric is one reported value of a benchmark ("ns/op", "B/op",
// "allocs/op", or any custom b.ReportMetric unit).
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Benchmark is one result line.
type Benchmark struct {
	Name       string   `json:"name"`
	Procs      int      `json:"procs,omitempty"` // the -N GOMAXPROCS suffix
	Iterations int64    `json:"iterations"`
	Metrics    []Metric `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	compare := flag.Bool("compare", false, "compare two bench.json files: -compare old.json new.json")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional ns/op regression before -compare fails")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare [-tolerance F] old.json new.json")
			os.Exit(2)
		}
		os.Exit(compareReports(flag.Arg(0), flag.Arg(1), *tolerance))
	}
	convert()
}

// compareReports diffs new against old and returns the process exit code:
// 0 when every shared benchmark is within tolerance, 1 on regression.
func compareReports(oldPath, newPath string, tolerance float64) int {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	oldNs := nsPerOp(oldRep)
	newNs := nsPerOp(newRep)
	failed := false
	for _, b := range newRep.Benchmarks {
		nv, ok := newNs[b.Name]
		if !ok {
			continue
		}
		ov, ok := oldNs[b.Name]
		if !ok {
			fmt.Printf("%-40s %12.0f ns/op  (new benchmark, not gated)\n", b.Name, nv)
			continue
		}
		delta := (nv - ov) / ov
		status := "ok"
		if delta > tolerance {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-40s %12.0f -> %12.0f ns/op  %+7.1f%%  %s\n", b.Name, ov, nv, delta*100, status)
	}
	for name, ov := range oldNs {
		if _, ok := newNs[name]; !ok {
			fmt.Printf("%-40s %12.0f ns/op  (removed, not gated)\n", name, ov)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchjson: ns/op regression beyond %.0f%% tolerance\n", tolerance*100)
		return 1
	}
	return 0
}

func loadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// nsPerOp indexes a report's ns/op metric by benchmark name. Duplicate
// names (e.g. -cpu sweeps) keep the last value.
func nsPerOp(rep Report) map[string]float64 {
	out := make(map[string]float64, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		for _, m := range b.Metrics {
			if m.Unit == "ns/op" {
				out[b.Name] = m.Value
			}
		}
	}
	return out
}

// convert is the original stdin-to-JSON mode.
func convert() {
	rep := Report{Note: os.Getenv("BENCHJSON_NOTE")}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
				continue
			}
			fmt.Fprintln(os.Stderr, line)
		default:
			// PASS/FAIL/ok and test chatter: keep visible, out of the JSON.
			if line != "" {
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

// parseBenchLine parses "BenchmarkName-8  3  123 ns/op  45 B/op ..." into a
// Benchmark. Metrics come in (value, unit) pairs after the iteration count.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0]}
	if i := strings.LastIndexByte(b.Name, '-'); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics = append(b.Metrics, Metric{Value: v, Unit: fields[i+1]})
	}
	return b, true
}
