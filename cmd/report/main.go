// Command report renders per-request latency attribution reports: Markdown
// stage breakdowns (admission / pwq / walk / wire with p50/p95/p99), the
// scheme-vs-baseline delta table, and per-link NoC heatmap CSVs.
//
// Live mode (default) runs scheme and baseline under WithAttribution and
// reports the comparison:
//
//	report -scheme hdpat -bench SPMV,PR -o results/report
//
// Replay mode rebuilds a breakdown from a saved JSONL trace (WithTraceJSONL
// or cmd/experiments -trace) without re-simulating:
//
//	report -trace run.jsonl -run 0 -o results/report
//
// Artifacts land in the -o directory: report.md plus one
// heatmap-<scheme>-<benchmark>.csv per attributed run. With -o "" everything
// is written to stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hdpat"
	"hdpat/internal/attr"
)

func main() {
	scheme := flag.String("scheme", "hdpat", "scheme to compare against the baseline")
	bench := flag.String("bench", "SPMV", "comma-separated benchmark abbreviations")
	budget := flag.Int("budget", 0, "per-CU ops budget override (0 = simulator default)")
	seed := flag.Int64("seed", 1, "workload seed")
	mesh := flag.Int("mesh", 0, "square mesh side override (0 = config default)")
	routing := flag.String("routing", "", "NoC routing policy (\"\" = xy, or \"deflect\"; heatmaps gain live deflection columns)")
	outDir := flag.String("o", "results/report", "output directory (\"\" = stdout)")
	traceFile := flag.String("trace", "", "replay a saved JSONL trace instead of simulating")
	runIdx := flag.Int("run", -1, "batch run index to replay from the trace (-1 = all)")
	flag.Parse()

	if err := run(*scheme, *bench, *budget, *seed, *mesh, *routing, *outDir, *traceFile, *runIdx); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

func run(scheme, bench string, budget int, seed int64, mesh int, routing, outDir, traceFile string, runIdx int) error {
	out, err := newEmitter(outDir)
	if err != nil {
		return err
	}
	if traceFile != "" {
		return replay(out, traceFile, runIdx)
	}
	return live(out, scheme, bench, budget, seed, mesh, routing)
}

// live runs the scheme/baseline pair per benchmark with attribution on and
// renders breakdowns, deltas and heatmaps.
func live(out *emitter, scheme, bench string, budget int, seed int64, mesh int, routing string) error {
	cfg := hdpat.DefaultConfig()
	if mesh > 0 {
		cfg.MeshW, cfg.MeshH = mesh, mesh
	}
	benches := strings.Split(bench, ",")
	opts := []hdpat.Option{hdpat.WithSeed(seed), hdpat.WithAttribution()}
	if budget > 0 {
		opts = append(opts, hdpat.WithOpsBudget(budget))
	}
	if routing != "" {
		opts = append(opts, hdpat.WithRouting(routing))
	}
	cmps, err := hdpat.CompareAll(context.Background(), cfg, []string{scheme}, benches, opts...)
	if err != nil {
		return err
	}
	md, err := out.create("report.md")
	if err != nil {
		return err
	}
	fmt.Fprintf(md, "# Latency attribution: %s vs baseline\n", scheme)
	for _, c := range cmps {
		if c.Err != nil {
			return fmt.Errorf("%s/%s: %w", c.Scheme, c.Benchmark, c.Err)
		}
		fmt.Fprintf(md, "\n## %s (speedup %.3fx)\n\n", c.Benchmark, c.Speedup)
		c.Result.Breakdown.WriteMarkdown(md)
		fmt.Fprintln(md)
		c.Baseline.Breakdown.WriteMarkdown(md)
		fmt.Fprintf(md, "\n### Delta: %s minus baseline on %s\n\n", c.Scheme, c.Benchmark)
		attr.CompareMarkdown(md, c.Result.Breakdown, c.Baseline.Breakdown)
		for _, b := range []*hdpat.Breakdown{c.Result.Breakdown, c.Baseline.Breakdown} {
			name := fmt.Sprintf("heatmap-%s-%s.csv", b.Scheme, b.Benchmark)
			if err := out.write(name, b.HeatmapCSV()); err != nil {
				return err
			}
		}
	}
	return out.close(md)
}

// replay rebuilds a breakdown from a JSONL trace stream and renders it.
func replay(out *emitter, traceFile string, runIdx int) error {
	f, err := os.Open(traceFile)
	if err != nil {
		return err
	}
	defer f.Close()
	b, err := attr.ReplayJSONL(f, runIdx)
	if err != nil {
		return err
	}
	b.Scheme = "replay"
	b.Benchmark = filepath.Base(traceFile)
	md, err := out.create("report.md")
	if err != nil {
		return err
	}
	fmt.Fprintf(md, "# Latency attribution (replayed from %s)\n\n", traceFile)
	b.WriteMarkdown(md)
	if err := out.write("heatmap.csv", b.HeatmapCSV()); err != nil {
		return err
	}
	return out.close(md)
}

// emitter writes named artifacts into a directory, or everything to stdout
// when the directory is empty.
type emitter struct{ dir string }

func newEmitter(dir string) (*emitter, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return &emitter{dir: dir}, nil
}

func (e *emitter) create(name string) (io.WriteCloser, error) {
	if e.dir == "" {
		return nopCloser{os.Stdout}, nil
	}
	return os.Create(filepath.Join(e.dir, name))
}

func (e *emitter) write(name, content string) error {
	if e.dir == "" {
		fmt.Printf("--- %s ---\n%s", name, content)
		return nil
	}
	return os.WriteFile(filepath.Join(e.dir, name), []byte(content), 0o644)
}

func (e *emitter) close(w io.WriteCloser) error {
	if err := w.Close(); err != nil {
		return err
	}
	if e.dir != "" {
		fmt.Printf("report written to %s\n", e.dir)
	}
	return nil
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }
