// Command verifyinv is the invariant conformance harness: it drives every
// translation scheme × benchmark pair under the simulation invariant checker
// (hdpat.WithInvariants) — first at the paper's Table I configuration, then
// across randomized small wafer configurations — and cross-checks that
// same-seed serial and parallel batches are byte-identical. Any invariant
// violation or determinism divergence is reported and the process exits
// nonzero, so `make verify-invariants` can gate CI on it.
//
// Usage:
//
//	verifyinv [-ops N] [-seed N] [-rand N] [-workers N] [-domains N] [-routing xy|deflect] [-skip-default] [-v]
//
// -ops bounds the per-CU operation budget (the knob CI uses to bound run
// time); -rand sets how many randomized configurations to sweep; -domains
// sets the shard count of the domain-sharded determinism case (1 disables
// it); -routing reruns the whole harness under a different NoC routing
// policy (CI gates both xy and deflect).
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"time"

	"hdpat"
)

func main() {
	ops := flag.Int("ops", 4, "per-CU operation budget")
	seed := flag.Int64("seed", 1, "base simulation seed")
	randConfigs := flag.Int("rand", 3, "number of randomized small configurations to sweep")
	workers := flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
	domains := flag.Int("domains", 4, "shard count for the domain-sharded determinism case (1 = skip)")
	skipDefault := flag.Bool("skip-default", false, "skip the Table I default-configuration matrix")
	scale := flag.Bool("scale", true, "run the giant-wafer (30x30) invariant case")
	routing := flag.String("routing", "", "NoC routing policy for every run (\"\" = xy, or \"deflect\")")
	verbose := flag.Bool("v", false, "log every run")
	flag.Parse()

	h := &harness{ops: *ops, seed: *seed, workers: *workers, domains: *domains, routing: *routing, verbose: *verbose}

	if !*skipDefault {
		h.matrix("default (Table I)", hdpat.DefaultConfig(), hdpat.Benchmarks())
	}
	rng := rand.New(rand.NewSource(*seed))
	for i := 0; i < *randConfigs; i++ {
		cfg, desc := randomConfig(rng)
		// Three random benchmarks per configuration keep the sweep bounded;
		// the default matrix already covers every benchmark.
		benches := hdpat.Benchmarks()
		rng.Shuffle(len(benches), func(a, b int) { benches[a], benches[b] = benches[b], benches[a] })
		h.matrix(desc, cfg, benches[:3])
	}
	h.determinism()
	h.sharding()
	if *scale {
		h.scale30()
	}

	if h.failures > 0 {
		fmt.Fprintf(os.Stderr, "verifyinv: %d failure(s) across %d runs\n", h.failures, h.runs)
		os.Exit(1)
	}
	fmt.Printf("verifyinv: %d runs clean in %s\n", h.runs, h.elapsed().Round(time.Millisecond))
}

type harness struct {
	ops      int
	seed     int64
	workers  int
	domains  int
	routing  string
	verbose  bool
	runs     int
	failures int
	start    time.Time
}

// opts prefixes every run's option list with the harness-wide routing
// override; deflection declares itself non-shardable, so under -routing
// deflect the sharding and scale cases exercise the serial fallback (the
// Results must still match, which pins the fallback itself).
func (h *harness) opts(extra ...hdpat.Option) []hdpat.Option {
	var o []hdpat.Option
	if h.routing != "" {
		o = append(o, hdpat.WithRouting(h.routing))
	}
	return append(o, extra...)
}

func (h *harness) elapsed() time.Duration {
	if h.start.IsZero() {
		return 0
	}
	return time.Since(h.start)
}

// matrix runs every scheme against the given benchmarks under invariants.
func (h *harness) matrix(desc string, cfg hdpat.Config, benches []string) {
	if h.start.IsZero() {
		h.start = time.Now()
	}
	var specs []hdpat.RunSpec
	for _, s := range hdpat.Schemes() {
		for _, b := range benches {
			specs = append(specs, hdpat.RunSpec{Scheme: s, Benchmark: b, OpsBudget: h.ops, Seed: h.seed})
		}
	}
	results, err := hdpat.RunBatch(context.Background(), cfg, specs,
		h.opts(hdpat.WithInvariants(), hdpat.WithAttribution(), hdpat.WithWorkers(h.workers))...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAIL %s: batch: %v\n", desc, err)
		h.failures++
		return
	}
	for _, r := range results {
		h.runs++
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s %s/%s: %v\n", desc, r.Spec.Scheme, r.Spec.Benchmark, r.Err)
			h.failures++
		} else if h.verbose {
			fmt.Printf("ok   %s %s/%s (%d cycles)\n", desc, r.Spec.Scheme, r.Spec.Benchmark, r.Result.Cycles)
		}
	}
}

// determinism verifies same-seed serial and parallel batches are
// byte-identical under invariants.
func (h *harness) determinism() {
	specs := []hdpat.RunSpec{
		{Scheme: "baseline", Benchmark: "SPMV", OpsBudget: h.ops, Seed: h.seed},
		{Scheme: "hdpat", Benchmark: "SPMV", OpsBudget: h.ops, Seed: h.seed},
		{Scheme: "iommutlb", Benchmark: "KM", OpsBudget: h.ops, Seed: h.seed},
		{Scheme: "redirect", Benchmark: "AES", OpsBudget: h.ops, Seed: h.seed},
	}
	cfg := hdpat.DefaultConfig()
	cfg.MeshW, cfg.MeshH = 5, 5
	cfg.GPM.NumCUs = 8
	serial, err1 := hdpat.RunBatch(context.Background(), cfg, specs,
		h.opts(hdpat.WithInvariants(), hdpat.WithWorkers(1))...)
	parallel, err2 := hdpat.RunBatch(context.Background(), cfg, specs,
		h.opts(hdpat.WithInvariants(), hdpat.WithWorkers(4))...)
	if err1 != nil || err2 != nil {
		fmt.Fprintf(os.Stderr, "FAIL determinism: %v / %v\n", err1, err2)
		h.failures++
		return
	}
	for i := range serial {
		h.runs += 2
		serial[i].Wall, parallel[i].Wall = 0, 0
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			fmt.Fprintf(os.Stderr, "FAIL determinism: %s/%s differs between serial and parallel\n",
				serial[i].Spec.Scheme, serial[i].Spec.Benchmark)
			h.failures++
		}
	}
}

// sharding verifies the domain-sharded kernel (hdpat.WithDomains) against
// the serial kernel: every scheme runs once serially — under the invariant
// checker, which must stay green — and once sharded; the two Results must be
// byte-identical. Schemes the sharded path cannot split fall back to serial
// internally, so the equality check covers the fallback too.
func (h *harness) sharding() {
	if h.domains == 1 {
		return
	}
	cfg := hdpat.DefaultConfig()
	for _, scheme := range hdpat.Schemes() {
		h.runs += 2
		spec := hdpat.RunSpec{Scheme: scheme, Benchmark: "SPMV", OpsBudget: h.ops, Seed: h.seed}
		serial, err := hdpat.Simulate(cfg, spec, h.opts()...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL sharding %s: serial: %v\n", scheme, err)
			h.failures++
			continue
		}
		if _, err := hdpat.Simulate(cfg, spec, h.opts(hdpat.WithInvariants())...); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL sharding %s: invariants: %v\n", scheme, err)
			h.failures++
			continue
		}
		sharded, err := hdpat.Simulate(cfg, spec, h.opts(hdpat.WithDomains(h.domains))...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL sharding %s: domains=%d: %v\n", scheme, h.domains, err)
			h.failures++
			continue
		}
		if !reflect.DeepEqual(serial, sharded) {
			fmt.Fprintf(os.Stderr, "FAIL sharding %s: domains=%d result differs from serial\n", scheme, h.domains)
			h.failures++
		} else if h.verbose {
			fmt.Printf("ok   sharding %s domains=%d (%d cycles)\n", scheme, h.domains, sharded.Cycles)
		}
	}
}

// scale30 runs one scheme/benchmark pair on the giant 30x30 wafer (899
// GPMs): once serially under the invariant checker, once domain-sharded,
// asserting the two Results byte-identical. This is where the sparse link
// accounting and lazy GPM instantiation would first break conservation —
// a link the sweep skips, or a GPM materialized on one path but not the
// other, diverges the results here. Disable with -scale=false.
func (h *harness) scale30() {
	if h.start.IsZero() {
		h.start = time.Now()
	}
	cfg := hdpat.DefaultConfig()
	cfg.MeshW, cfg.MeshH = 30, 30
	spec := hdpat.RunSpec{Scheme: "hdpat", Benchmark: "SPMV", OpsBudget: h.ops, Seed: h.seed}
	h.runs += 3
	serial, err := hdpat.Simulate(cfg, spec, h.opts()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAIL scale 30x30: serial: %v\n", err)
		h.failures++
		return
	}
	if _, err := hdpat.Simulate(cfg, spec, h.opts(hdpat.WithInvariants())...); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL scale 30x30: invariants: %v\n", err)
		h.failures++
		return
	}
	domains := h.domains
	if domains <= 1 {
		domains = 4
	}
	sharded, err := hdpat.Simulate(cfg, spec, h.opts(hdpat.WithDomains(domains))...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAIL scale 30x30: domains=%d: %v\n", domains, err)
		h.failures++
		return
	}
	if !reflect.DeepEqual(serial, sharded) {
		fmt.Fprintf(os.Stderr, "FAIL scale 30x30: domains=%d result differs from serial\n", domains)
		h.failures++
	} else if h.verbose {
		fmt.Printf("ok   scale 30x30 hdpat/SPMV (%d cycles)\n", serial.Cycles)
	}
}

// randomConfig derives a small but valid wafer configuration from rng:
// mesh geometry, CU count and IOMMU pressure parameters all vary so the
// invariants see queue-full, MSHR-full and admission-stage corner cases the
// default configuration never reaches.
func randomConfig(rng *rand.Rand) (hdpat.Config, string) {
	cfg := hdpat.DefaultConfig()
	cfg.MeshW = 3 + rng.Intn(4) // 3..6
	cfg.MeshH = 3 + rng.Intn(4)
	cfg.GPM.NumCUs = 4 << rng.Intn(3) // 4, 8, 16
	cfg.IOMMU.Walkers = 1 << rng.Intn(4)
	cfg.IOMMU.PWQueueCap = 2 << rng.Intn(5) // 2..32
	// WorkloadScale divides footprints; stay at or above the default so the
	// randomized runs are never slower than the Table I matrix.
	cfg.WorkloadScale = 4 + rng.Intn(5)
	desc := fmt.Sprintf("rand %dx%d cus=%d walkers=%d pwq=%d scale=%d",
		cfg.MeshW, cfg.MeshH, cfg.GPM.NumCUs, cfg.IOMMU.Walkers,
		cfg.IOMMU.PWQueueCap, cfg.WorkloadScale)
	return cfg, desc
}
