// Command hdpatsim runs one wafer-scale GPU simulation and prints a
// detailed report: execution time, translation breakdown, IOMMU and NoC
// statistics.
//
// Usage:
//
//	hdpatsim -bench SPMV -scheme hdpat [-budget 96] [-seed 1]
//	         [-mesh 7x7] [-pagesize 4096] [-gpu MI100] [-domains 1] [-compare]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"hdpat/internal/config"
	"hdpat/internal/vm"
	"hdpat/internal/wafer"
	"hdpat/internal/workload"
	"hdpat/internal/xlat"
)

func main() {
	bench := flag.String("bench", "SPMV", "benchmark abbreviation (see -list)")
	scheme := flag.String("scheme", "hdpat", "translation scheme (see -list)")
	budget := flag.Int("budget", 96, "approximate ops per CU")
	seed := flag.Int64("seed", 1, "workload seed")
	mesh := flag.String("mesh", "7x7", "wafer mesh WxH")
	pageSize := flag.Uint64("pagesize", 4096, "system page size in bytes")
	gpu := flag.String("gpu", "MI100", "GPU generation (MI100|MI200|MI300|H100|H200)")
	scale := flag.Int("scale", 0, "workload scale divisor override")
	domains := flag.Int("domains", 1, "spatial domains to shard the simulation across (1 = serial, 0 = one per CPU)")
	compare := flag.Bool("compare", false, "also run the baseline and report speedup")
	dumpTrace := flag.String("dumptrace", "", "write the benchmark's address traces as JSON lines to this file and exit")
	list := flag.Bool("list", false, "list benchmarks and schemes, then exit")
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:", strings.Join(workload.Names(), " "))
		fmt.Println("schemes:   ", strings.Join(wafer.SchemeNames(), " "))
		return
	}

	cfg := config.Default()
	if n, err := fmt.Sscanf(*mesh, "%dx%d", &cfg.MeshW, &cfg.MeshH); n != 2 || err != nil {
		fatal("bad -mesh %q (want WxH)", *mesh)
	}
	cfg.PageSize = vm.PageSize(*pageSize)
	if *scale > 0 {
		cfg.WorkloadScale = *scale
	}
	gpm, err := config.GPMVariant(*gpu)
	if err != nil {
		fatal("%v", err)
	}
	cfg.GPM = gpm

	b, err := workload.ByAbbr(*bench)
	if err != nil {
		fatal("%v", err)
	}

	if *dumpTrace != "" {
		f, err := os.Create(*dumpTrace)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		numGPMs := cfg.MeshW*cfg.MeshH - 1
		err = workload.WriteTrace(f, b, cfg.WorkloadScale, numGPMs, cfg.GPM.NumCUs,
			*budget, cfg.PageSize, *seed)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("wrote %s traces for %d GPMs x %d CUs to %s\n",
			b.Abbr, numGPMs, cfg.GPM.NumCUs, *dumpTrace)
		return
	}

	nd := *domains
	if nd <= 0 {
		nd = runtime.GOMAXPROCS(0)
	}
	run := func(scheme string) wafer.Result {
		c, err := wafer.ConfigFor(scheme, cfg)
		if err != nil {
			fatal("%v", err)
		}
		res, err := wafer.Run(c, wafer.Options{
			Scheme: scheme, Benchmark: b, OpsBudget: *budget, Seed: *seed,
			Domains: nd,
		})
		if err != nil {
			fatal("%v", err)
		}
		return res
	}

	res := run(*scheme)
	report(res)
	if *compare && *scheme != "baseline" {
		base := run("baseline")
		fmt.Printf("\nbaseline execution:   %d cycles\n", base.Cycles)
		fmt.Printf("speedup vs baseline:  %.3fx\n", res.Speedup(base))
		if base.AvgRemoteLatency() > 0 {
			fmt.Printf("remote latency ratio: %.3f\n", res.AvgRemoteLatency()/base.AvgRemoteLatency())
		}
	}
}

func report(res wafer.Result) {
	fmt.Printf("%s on %s\n", res.Scheme, res.Benchmark)
	fmt.Printf("execution:        %d cycles (%d ops)\n", res.Cycles, res.TotalOps)
	var l1, l2, lltlb, walks, remote uint64
	for _, g := range res.GPMStats {
		l1 += g.L1TLBHits
		l2 += g.L2TLBHits
		lltlb += g.LLTLBHits
		walks += g.LocalWalks
		remote += g.RemoteRequests
	}
	fmt.Printf("translation path: L1 %d | L2 %d | LLTLB %d | local walks %d | remote %d\n",
		l1, l2, lltlb, walks, remote)
	by := res.RemoteBySource()
	fmt.Printf("remote served by: ")
	for s := 0; s < xlat.NumSources; s++ {
		if by[s] > 0 {
			fmt.Printf("%s=%d ", xlat.Source(s), by[s])
		}
	}
	fmt.Println()
	fmt.Printf("offload fraction: %.1f%%\n", 100*res.OffloadFraction())
	fmt.Printf("IOMMU:            %d requests, %d walks, %d redirects, %d revisits, %d prefetches\n",
		res.IOMMU.Requests, res.IOMMU.Walks, res.IOMMU.RTRedirects, res.IOMMU.Revisits, res.IOMMU.Prefetches)
	pre, q, w := res.IOMMU.Breakdown.Means()
	fmt.Printf("IOMMU latency:    pre-queue %.0f + queue %.0f + walk %.0f cycles\n", pre, q, w)
	fmt.Printf("remote RTT:       %.0f cycles avg\n", res.AvgRemoteLatency())
	fmt.Printf("NoC:              %d messages, %d byte-hops, max %d hops\n",
		res.NoC.Messages, res.NoC.ByteHops, res.NoC.MaxHops)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
