// Command experiments regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	experiments [-run id[,id...]] [-quick] [-budget N] [-seed N] [-bench A,B]
//	            [-workers N] [-domains N] [-report dir] [-serve addr [-pprof]]
//
// Without -run it executes every experiment in paper order. Use -list to
// see the available ids. -report additionally writes each experiment's
// table as Markdown and CSV artifacts into dir; -pprof mounts the
// /debug/pprof/ profiling endpoints on the -serve listener.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"hdpat/internal/experiments"
	"hdpat/internal/metrics"
)

func main() {
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	quick := flag.Bool("quick", false, "quick mode: fewer benchmarks, smaller budgets")
	budget := flag.Int("budget", 0, "per-CU operation budget override")
	seed := flag.Int64("seed", 1, "simulation seed")
	bench := flag.String("bench", "", "comma-separated benchmark subset")
	workers := flag.Int("workers", 0, "parallel simulations per experiment (0 = GOMAXPROCS, 1 = serial)")
	domains := flag.Int("domains", 1, "spatial domains per simulation (1 = serial kernel, 0 = one per CPU)")
	asJSON := flag.Bool("json", false, "emit results as a JSON array")
	asCSV := flag.Bool("csv", false, "emit results as CSV blocks")
	serve := flag.String("serve", "", "serve live metrics/progress over HTTP on this address (e.g. :9090)")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof/ on the -serve listener")
	report := flag.String("report", "", "write per-experiment Markdown and CSV artifacts into this directory")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}

	p := experiments.Params{Quick: *quick, OpsBudget: *budget, Seed: *seed, Workers: *workers, Domains: *domains}
	if *domains <= 0 {
		p.Domains = runtime.GOMAXPROCS(0)
	}
	if *bench != "" {
		p.Benchmarks = strings.Split(*bench, ",")
	}
	session := experiments.NewSession(p)
	var progress progressState
	if *serve != "" {
		reg := metrics.NewRegistry()
		session.Metrics = reg
		var sopts []metrics.ServeOption
		if *pprofOn {
			sopts = append(sopts, metrics.WithPprof())
		}
		go func() {
			if err := metrics.ListenAndServe(*serve, reg, progress.snapshot, sopts...); err != nil {
				fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			}
		}()
	}
	if *report != "" {
		if err := os.MkdirAll(*report, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	var selected []experiments.Experiment
	if *run == "" {
		for _, e := range experiments.All() {
			if experiments.RunByDefault(e.ID) {
				selected = append(selected, e)
			}
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	t0 := time.Now()
	var tables []experiments.Table
	for i, e := range selected {
		start := time.Now()
		progress.set(e.ID, i, len(selected), session.Runs)
		table, err := e.Run(session)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *report != "" {
			if err := writeArtifacts(*report, table); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		switch {
		case *asJSON:
			tables = append(tables, table)
		case *asCSV:
			fmt.Printf("# %s: %s\n%s\n", table.ID, table.Title, table.CSV())
		default:
			fmt.Println(table.String())
			fmt.Printf("(%s in %s)\n\n", e.ID, time.Since(start).Truncate(time.Millisecond))
		}
	}
	if *asJSON {
		out, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	if !*asCSV {
		fmt.Printf("total: %d experiments, %d simulations, %s\n",
			len(selected), session.Runs, time.Since(t0).Truncate(time.Millisecond))
	}
}

// writeArtifacts saves one experiment's table as <dir>/<id>.md and
// <dir>/<id>.csv.
func writeArtifacts(dir string, t experiments.Table) error {
	if err := os.WriteFile(filepath.Join(dir, t.ID+".md"), []byte(t.Markdown()), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, t.ID+".csv"), []byte(t.CSV()), 0o644)
}

// progressState is the -serve endpoint's view of the experiment loop.
// Runs is sampled at experiment boundaries, keeping the scrape goroutine
// off the session's unsynchronised fields.
type progressState struct {
	mu    sync.Mutex
	phase string
	done  int
	total int
	runs  int
}

func (p *progressState) set(phase string, done, total, runs int) {
	p.mu.Lock()
	p.phase, p.done, p.total, p.runs = phase, done, total, runs
	p.mu.Unlock()
}

func (p *progressState) snapshot() metrics.Progress {
	p.mu.Lock()
	defer p.mu.Unlock()
	return metrics.Progress{Phase: p.phase, Done: p.done, Total: p.total, Runs: p.runs}
}
