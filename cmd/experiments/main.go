// Command experiments regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	experiments [-run id[,id...]] [-quick] [-budget N] [-seed N] [-bench A,B]
//	            [-workers N]
//
// Without -run it executes every experiment in paper order. Use -list to
// see the available ids.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hdpat/internal/experiments"
)

func main() {
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	quick := flag.Bool("quick", false, "quick mode: fewer benchmarks, smaller budgets")
	budget := flag.Int("budget", 0, "per-CU operation budget override")
	seed := flag.Int64("seed", 1, "simulation seed")
	bench := flag.String("bench", "", "comma-separated benchmark subset")
	workers := flag.Int("workers", 0, "parallel simulations per experiment (0 = GOMAXPROCS, 1 = serial)")
	asJSON := flag.Bool("json", false, "emit results as a JSON array")
	asCSV := flag.Bool("csv", false, "emit results as CSV blocks")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}

	p := experiments.Params{Quick: *quick, OpsBudget: *budget, Seed: *seed, Workers: *workers}
	if *bench != "" {
		p.Benchmarks = strings.Split(*bench, ",")
	}
	session := experiments.NewSession(p)

	var selected []experiments.Experiment
	if *run == "" {
		for _, e := range experiments.All() {
			if experiments.RunByDefault(e.ID) {
				selected = append(selected, e)
			}
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	t0 := time.Now()
	var tables []experiments.Table
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(session)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch {
		case *asJSON:
			tables = append(tables, table)
		case *asCSV:
			fmt.Printf("# %s: %s\n%s\n", table.ID, table.Title, table.CSV())
		default:
			fmt.Println(table.String())
			fmt.Printf("(%s in %s)\n\n", e.ID, time.Since(start).Truncate(time.Millisecond))
		}
	}
	if *asJSON {
		out, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	if !*asCSV {
		fmt.Printf("total: %d experiments, %d simulations, %s\n",
			len(selected), session.Runs, time.Since(t0).Truncate(time.Millisecond))
	}
}
