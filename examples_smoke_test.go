// Smoke test for the runnable examples: build each binary and run it with a
// tiny HDPAT_OPS_BUDGET so a broken example fails `go test ./...` instead of
// rotting silently. Lives at the repo root because a directory containing
// only _test.go files would break `go build ./...`.
package hdpat_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples build+run skipped in -short mode")
	}
	for _, name := range []string{"quickstart", "sweep"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(t.TempDir(), name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			run := exec.Command(bin)
			run.Env = append(os.Environ(), "HDPAT_OPS_BUDGET=8")
			out, err := run.CombinedOutput()
			if err != nil {
				t.Fatalf("run failed: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Error("example produced no output")
			}
		})
	}
}
