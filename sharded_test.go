// End-to-end conformance for the domain-sharded kernel (WithDomains): a
// sharded run must return a Result byte-identical to the serial kernel's,
// for every scheme — including the ones that fall back to serial — across
// domain counts. Run under -race (make check does) this doubles as the
// parallel kernel's data-race gate.
package hdpat_test

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"hdpat"
)

// shardedBenchmarks trades matrix size for coverage: one regular-strided
// and one irregular workload exercise both sparse and dense event phases.
var shardedBenchmarks = []string{"FIR", "SPMV"}

func shardedOpts(extra ...hdpat.Option) []hdpat.Option {
	return append([]hdpat.Option{hdpat.WithOpsBudget(8), hdpat.WithSeed(7)}, extra...)
}

func TestShardedMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("scheme x benchmark x domains matrix is not short")
	}
	cfg := hdpat.DefaultConfig()
	for _, scheme := range hdpat.Schemes() {
		for _, bench := range shardedBenchmarks {
			spec := hdpat.RunSpec{Scheme: scheme, Benchmark: bench}
			serial, err := hdpat.Simulate(cfg, spec, shardedOpts()...)
			if err != nil {
				t.Fatalf("%s/%s serial: %v", scheme, bench, err)
			}
			for _, nd := range []int{2, 4} {
				sharded, err := hdpat.Simulate(cfg, spec, shardedOpts(hdpat.WithDomains(nd))...)
				if err != nil {
					t.Fatalf("%s/%s domains=%d: %v", scheme, bench, nd, err)
				}
				if !reflect.DeepEqual(serial, sharded) {
					t.Errorf("%s/%s: WithDomains(%d) result differs from serial\nserial:  %+v\nsharded: %+v",
						scheme, bench, nd, serial, sharded)
				}
			}
		}
	}
}

// TestShardedAutoDomains exercises WithDomains(0): one domain per available
// CPU. On a single-CPU host that resolves to the serial kernel, so the
// assertion holds everywhere.
func TestShardedAutoDomains(t *testing.T) {
	cfg := hdpat.DefaultConfig()
	cfg.MeshW, cfg.MeshH = 3, 3
	spec := hdpat.RunSpec{Scheme: "hdpat", Benchmark: "SPMV"}
	serial, err := hdpat.Simulate(cfg, spec, shardedOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := hdpat.Simulate(cfg, spec, shardedOpts(hdpat.WithDomains(0))...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, auto) {
		t.Errorf("WithDomains(0) differs from serial:\nserial: %+v\nauto:   %+v", serial, auto)
	}
}

// TestShardedDomainsExceedMesh asks for more domains than the mesh has rows;
// the partition must cap rather than create empty engines, and results must
// still match serial.
func TestShardedDomainsExceedMesh(t *testing.T) {
	cfg := hdpat.DefaultConfig()
	cfg.MeshW, cfg.MeshH = 3, 3
	spec := hdpat.RunSpec{Scheme: "baseline", Benchmark: "FIR"}
	serial, err := hdpat.Simulate(cfg, spec, shardedOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := hdpat.Simulate(cfg, spec, shardedOpts(hdpat.WithDomains(64))...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, sharded) {
		t.Errorf("WithDomains(64) on 3x3 differs from serial")
	}
}

// TestShardedBatch runs a sharded batch: the worker clamp must keep
// workers x domains within GOMAXPROCS without perturbing any result.
func TestShardedBatch(t *testing.T) {
	cfg := hdpat.DefaultConfig()
	cfg.MeshW, cfg.MeshH = 3, 3
	specs := []hdpat.RunSpec{
		{Scheme: "baseline", Benchmark: "FIR"},
		{Scheme: "hdpat", Benchmark: "SPMV"},
		{Scheme: "valkyrie", Benchmark: "FIR"},
	}
	serial, err := hdpat.RunBatch(context.Background(), cfg, specs, shardedOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := hdpat.RunBatch(context.Background(), cfg, specs,
		shardedOpts(hdpat.WithDomains(2), hdpat.WithWorkers(runtime.GOMAXPROCS(0)))...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if serial[i].Err != nil || sharded[i].Err != nil {
			t.Fatalf("run %d: errs %v / %v", i, serial[i].Err, sharded[i].Err)
		}
		if !reflect.DeepEqual(serial[i].Result, sharded[i].Result) {
			t.Errorf("run %d (%s/%s): sharded batch result differs from serial",
				i, specs[i].Scheme, specs[i].Benchmark)
		}
	}
}

// TestShardedObserverFallback verifies that observer options compose with
// WithDomains by falling back to serial: the invariant checker must run
// green and the result must match a plain serial run.
func TestShardedObserverFallback(t *testing.T) {
	cfg := hdpat.DefaultConfig()
	cfg.MeshW, cfg.MeshH = 3, 3
	spec := hdpat.RunSpec{Scheme: "hdpat", Benchmark: "SPMV"}
	serial, err := hdpat.Simulate(cfg, spec, shardedOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := hdpat.Simulate(cfg, spec, shardedOpts(hdpat.WithDomains(4), hdpat.WithInvariants())...)
	if err != nil {
		t.Fatalf("invariant checker flagged the fallback run: %v", err)
	}
	if serial.Cycles != checked.Cycles || serial.TotalOps != checked.TotalOps ||
		!reflect.DeepEqual(serial.IOMMU, checked.IOMMU) || !reflect.DeepEqual(serial.NoC, checked.NoC) {
		t.Errorf("WithDomains+WithInvariants fallback diverged from serial")
	}
}
