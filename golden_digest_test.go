// Golden-output conformance: the event-kernel and request-path hot-path
// refactors must leave every observable result byte-identical. This test
// runs every scheme on a small benchmark set with attribution enabled,
// renders Result and Breakdown into a canonical byte form, and compares
// SHA-256 digests against testdata/golden_digests.json — which was
// generated from the pre-refactor closure-based kernel. Any divergence in
// cycle counts, per-GPM stats, IOMMU accounting, NoC traffic or the
// attribution ledger changes a digest and fails the test.
//
// Regenerate (only when an intentional behaviour change is made) with:
//
//	go test -run TestGoldenDigests -update-golden
package hdpat_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"hdpat"
	"hdpat/internal/migrate"
	"hdpat/internal/wafer"
	"hdpat/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_digests.json from current outputs")
var updateGoldenDeflect = flag.Bool("update-golden-deflect", false, "rewrite testdata/golden_digests_deflect.json from current outputs")

const goldenPath = "testdata/golden_digests.json"
const goldenDeflectPath = "testdata/golden_digests_deflect.json"

// goldenBenchmarks keeps the matrix small but covers a regular-strided
// workload, an irregular one, and a pointer-chasing one.
var goldenBenchmarks = []string{"FIR", "SPMV", "PR"}

// digestResult renders the run outcome canonically and hashes it. Every
// field that the acceptance criteria call "Result and Breakdown" is
// included; in-memory-only handles (series pointers, metrics snapshots) are
// not part of the byte contract.
func digestResult(t *testing.T, res hdpat.Result) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "scheme=%s bench=%s cycles=%d ops=%d\n", res.Scheme, res.Benchmark, res.Cycles, res.TotalOps)
	fmt.Fprintf(&b, "iommu=%+v\n", res.IOMMU)
	// The noc line spells out the four original Stats fields so the XY
	// digests stay byte-identical to the goldens generated before the
	// routing seam grew Stats; the routing-era fields join the byte contract
	// only when routing actually deflected something.
	fmt.Fprintf(&b, "noc={Messages:%d ByteHops:%d HopsTotal:%d MaxHops:%d}\n",
		res.NoC.Messages, res.NoC.ByteHops, res.NoC.HopsTotal, res.NoC.MaxHops)
	if res.NoC.Deflections != 0 {
		fmt.Fprintf(&b, "deflections=%d manhattan=%d\n", res.NoC.Deflections, res.NoC.ManhattanTotal)
	}
	fmt.Fprintf(&b, "aux=%d %+v\n", res.AuxLen, res.AuxStats)
	fmt.Fprintf(&b, "bysource=%v\n", res.RemoteBySource())
	fmt.Fprintf(&b, "migration=%+v\n", res.Migration)
	for i, gs := range res.GPMStats {
		fmt.Fprintf(&b, "gpm%d finish=%d stats=%+v\n", i, res.GPMFinish[i], gs)
	}
	if res.Breakdown != nil {
		bd, err := json.Marshal(res.Breakdown)
		if err != nil {
			t.Fatalf("marshal breakdown: %v", err)
		}
		b.Write(bd)
		b.WriteByte('\n')
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// goldenRuns produces the scheme x benchmark digest map. Each run uses the
// Table I configuration with a small per-CU ops budget and a fixed seed;
// attribution is enabled so the Breakdown is part of the contract. One
// extra run exercises the page-migration extension's request path.
func goldenRuns(t *testing.T) map[string]string {
	t.Helper()
	out := make(map[string]string)
	cfg := hdpat.DefaultConfig()
	for _, scheme := range hdpat.Schemes() {
		for _, bench := range goldenBenchmarks {
			res, err := hdpat.Simulate(cfg, hdpat.RunSpec{Scheme: scheme, Benchmark: bench},
				hdpat.WithOpsBudget(12), hdpat.WithSeed(7), hdpat.WithAttribution())
			if err != nil {
				t.Fatalf("%s/%s: %v", scheme, bench, err)
			}
			out[scheme+"/"+bench] = digestResult(t, res)
		}
	}
	// Page migration rides the same pooled request path; pin its outputs too.
	mcfg, err := wafer.ConfigFor("hdpat", cfg)
	if err != nil {
		t.Fatal(err)
	}
	bench, err := workload.ByAbbr("PR")
	if err != nil {
		t.Fatal(err)
	}
	mig := migrate.DefaultConfig()
	res, err := wafer.Run(mcfg, wafer.Options{
		Scheme: "hdpat", Benchmark: bench, OpsBudget: 12, Seed: 7,
		Migration: &mig,
	})
	if err != nil {
		t.Fatalf("hdpat/PR+migrate: %v", err)
	}
	out["hdpat/PR/migrate"] = digestResult(t, res)
	return out
}

// TestGoldenDigestsSharded pins the domain-sharded path to the same golden
// digests: WithDomains composed with WithAttribution falls back to serial
// (observers force the serial kernel, see WithDomains), so every stored
// digest must still match; the no-observer sharded path is asserted
// byte-identical to serial separately in sharded_test.go, where the full
// Result is compared field by field.
func TestGoldenDigestsSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix is not short")
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	cfg := hdpat.DefaultConfig()
	for _, scheme := range hdpat.Schemes() {
		for _, bench := range goldenBenchmarks {
			res, err := hdpat.Simulate(cfg, hdpat.RunSpec{Scheme: scheme, Benchmark: bench},
				hdpat.WithOpsBudget(12), hdpat.WithSeed(7), hdpat.WithAttribution(), hdpat.WithDomains(4))
			if err != nil {
				t.Fatalf("%s/%s: %v", scheme, bench, err)
			}
			k := scheme + "/" + bench
			if got := digestResult(t, res); got != want[k] {
				t.Errorf("%s: WithDomains(4) digest %s != golden %s", k, got[:12], want[k][:12])
			}
		}
	}
}

// TestGoldenDigestsDeflect pins the bufferless deflection router's outputs:
// the same scheme matrix as the XY goldens, run under WithRouting("deflect"),
// against its own digest file. Alongside the byte contract it asserts the
// routing laws directly on every run: HopsTotal >= ManhattanTotal (paths may
// be non-minimal but never shorter than Manhattan) and ByteHops consistency
// with per-hop accrual.
//
// Regenerate (only when an intentional behaviour change is made) with:
//
//	go test -run TestGoldenDigestsDeflect -update-golden-deflect
func TestGoldenDigestsDeflect(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix is not short")
	}
	got := make(map[string]string)
	cfg := hdpat.DefaultConfig()
	for _, scheme := range hdpat.Schemes() {
		for _, bench := range goldenBenchmarks {
			res, err := hdpat.Simulate(cfg, hdpat.RunSpec{Scheme: scheme, Benchmark: bench},
				hdpat.WithOpsBudget(12), hdpat.WithSeed(7), hdpat.WithAttribution(),
				hdpat.WithRouting("deflect"))
			if err != nil {
				t.Fatalf("%s/%s: %v", scheme, bench, err)
			}
			if res.NoC.HopsTotal < res.NoC.ManhattanTotal {
				t.Errorf("%s/%s: HopsTotal %d below Manhattan lower bound %d",
					scheme, bench, res.NoC.HopsTotal, res.NoC.ManhattanTotal)
			}
			got[scheme+"/"+bench] = digestResult(t, res)
		}
	}
	if *updateGoldenDeflect {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenDeflectPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(got), goldenDeflectPath)
		return
	}
	data, err := os.ReadFile(goldenDeflectPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden-deflect): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got[k] == "" {
			t.Errorf("%s: run missing from matrix", k)
			continue
		}
		if got[k] != want[k] {
			t.Errorf("%s: digest %s != golden %s (output changed)", k, got[k][:12], want[k][:12])
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: not in golden file (regenerate with -update-golden-deflect)", k)
		}
	}
}

func TestGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix is not short")
	}
	got := goldenRuns(t)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(got), goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got[k] == "" {
			t.Errorf("%s: run missing from matrix", k)
			continue
		}
		if got[k] != want[k] {
			t.Errorf("%s: digest %s != golden %s (output changed)", k, got[k][:12], want[k][:12])
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: not in golden file (regenerate with -update-golden)", k)
		}
	}
}
