# Tier-1 verification lives behind `make check`: vet plus the full test
# suite under the race detector, which guards the parallel batch engine
# (internal/runner, hdpat.RunBatch, the experiments warm-up phase) against
# data races.

GO ?= go

.PHONY: build test race vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: vet race

# One iteration of every paper-artifact benchmark plus the batch-engine
# serial/parallel comparison.
bench:
	$(GO) test -bench=. -benchtime 1x
