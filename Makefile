# Tier-1 verification lives behind `make check`: vet plus the full test
# suite under the race detector, which guards the parallel batch engine
# (internal/runner, hdpat.RunBatch, the experiments warm-up phase) against
# data races.

GO ?= go
BENCH ?= BenchmarkBatch3x3
BENCHTIME ?= 3x

.PHONY: build test race vet check bench bench-all

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: vet race

# Machine-readable benchmark run: the batch-engine benchmarks (override
# with BENCH=...) with allocation stats, teed to results/bench.txt and
# parsed into results/bench.json for regression diffing. Set BENCHJSON_NOTE
# to annotate the JSON (e.g. "baseline at <commit>").
bench:
	@mkdir -p results
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchtime $(BENCHTIME) -benchmem \
		| tee results/bench.txt | /tmp/benchjson > results/bench.json
	@echo "wrote results/bench.txt and results/bench.json"

# One iteration of every paper-artifact benchmark plus the batch-engine
# serial/parallel comparison.
bench-all:
	$(GO) test -bench=. -benchtime 1x
