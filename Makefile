# Tier-1 verification lives behind `make check`: vet plus the full test
# suite under the race detector, which guards the parallel batch engine
# (internal/runner, hdpat.RunBatch, the experiments warm-up phase) against
# data races.

GO ?= go
BENCH ?= BenchmarkBatch3x3|BenchmarkCompare|BenchmarkScale
BENCHTIME ?= 3x

.PHONY: build test race vet staticcheck check verify-invariants bench bench-check bench-all report service-smoke scale-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. The version is pinned so local runs and CI
# agree on the finding set; offline sandboxes without the binary skip with a
# notice rather than failing the whole gate (CI always installs it, against
# the shared Go module cache).
STATICCHECK_VERSION ?= 2025.1
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not found; skipping (install: go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

check: vet staticcheck race

# Invariant conformance gate: run every scheme x benchmark pair — at the
# Table I configuration and across randomized small wafers — under the
# simulation invariant checker (hdpat.WithInvariants), plus the
# serial-vs-parallel determinism cross-check and the domain-sharded kernel's
# serial-equivalence case (INV_DOMAINS shards; 1 skips it). The ops/rand
# budget bounds the run to about a minute; raise INV_OPS locally for a
# deeper sweep. INV_ROUTING reruns the whole harness under another NoC
# routing policy (CI gates both xy and deflect). See docs/invariants.md
# for the invariant catalogue.
INV_OPS ?= 2
INV_RAND ?= 2
INV_DOMAINS ?= 4
INV_ROUTING ?= xy
INV_FLAGS ?=
verify-invariants:
	$(GO) run ./cmd/verifyinv -ops $(INV_OPS) -rand $(INV_RAND) -domains $(INV_DOMAINS) -routing $(INV_ROUTING) $(INV_FLAGS)

# Machine-readable benchmark run: the batch-engine benchmarks (override
# with BENCH=...) with allocation stats, teed to results/bench.txt and
# parsed into results/bench.json for regression diffing. Set BENCHJSON_NOTE
# to annotate the JSON (e.g. "baseline at <commit>").
bench:
	@mkdir -p results
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchtime $(BENCHTIME) -benchmem \
		| tee results/bench.txt | /tmp/benchjson > results/bench.json
	@echo "wrote results/bench.txt and results/bench.json"

# Bench-regression gate: rerun the hot-path benchmarks and compare against
# the committed baseline results/bench.json on three metrics. Wall time
# (ns/op) and the derived events/sec throughput get wide slack because
# shared runners are noisy; allocs/op is nearly deterministic, so its
# tolerance only absorbs sync.Pool and map-growth jitter — one real new
# allocation per op on the Compare path trips it. CI runs this on every
# push.
BENCH_TOLERANCE ?= 0.15
ALLOC_TOLERANCE ?= 0.10
EVENTS_TOLERANCE ?= 0.15
BYTES_TOLERANCE ?= 0.20
# Extra benchmarks to diff but never gate on (regexp). Domain-sharded D<n>
# legs are automatically informational when the run used a single CPU.
BENCH_INFORMATIONAL ?=
bench-check:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchtime $(BENCHTIME) -benchmem \
		| /tmp/benchjson > /tmp/bench-new.json
	/tmp/benchjson -compare -tolerance $(BENCH_TOLERANCE) \
		-alloc-tolerance $(ALLOC_TOLERANCE) -events-tolerance $(EVENTS_TOLERANCE) \
		-bytes-tolerance $(BYTES_TOLERANCE) \
		-informational '$(BENCH_INFORMATIONAL)' \
		results/bench.json /tmp/bench-new.json

# Giant-wafer memory-scaling gate: the 30x30 bounded-memory and digest
# tests, the lazy-GPM construction-cost ratio, and the invariant smoke at
# scale. Bytes/GPM regressions in the bench baseline are caught by
# bench-check through the bytes/GPM metric (BYTES_TOLERANCE slack).
scale-check:
	$(GO) test -run 'TestScale30x30|TestInvariants30x30' -count=1 .
	$(GO) test -run 'TestLazyGPMsAtLeast5xCheaper|TestStatReadersDoNotMaterialize' -count=1 ./internal/gpm/

# One iteration of every paper-artifact benchmark plus the batch-engine
# serial/parallel comparison.
bench-all:
	$(GO) test -bench=. -benchtime 1x

# Service smoke (run by CI): build hdpatd, start it, submit a compare job
# over HTTP, poll to completion and check every served artifact's bytes
# hash to the digest a direct in-process run of the same spec prints
# (hdpatd -digest). See docs/service.md.
service-smoke:
	bash scripts/service-smoke.sh

# Latency-attribution run report (Markdown breakdowns + NoC heatmap CSVs)
# for REPORT_SCHEME vs baseline on REPORT_BENCH, written under
# results/report/ (gitignored). Override the knobs for other comparisons:
#   make report REPORT_SCHEME=transfw REPORT_BENCH=SPMV,PR,KM
REPORT_SCHEME ?= hdpat
REPORT_BENCH ?= SPMV,PR
report:
	$(GO) run ./cmd/report -scheme $(REPORT_SCHEME) -bench $(REPORT_BENCH) -o results/report
