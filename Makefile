# Tier-1 verification lives behind `make check`: vet plus the full test
# suite under the race detector, which guards the parallel batch engine
# (internal/runner, hdpat.RunBatch, the experiments warm-up phase) against
# data races.

GO ?= go
BENCH ?= BenchmarkBatch3x3
BENCHTIME ?= 3x

.PHONY: build test race vet check verify-invariants bench bench-check bench-all report

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: vet race

# Invariant conformance gate: run every scheme x benchmark pair — at the
# Table I configuration and across randomized small wafers — under the
# simulation invariant checker (hdpat.WithInvariants), plus the
# serial-vs-parallel determinism cross-check. The ops/rand budget bounds the
# run to about a minute; raise INV_OPS locally for a deeper sweep. See
# docs/invariants.md for the invariant catalogue.
INV_OPS ?= 2
INV_RAND ?= 2
verify-invariants:
	$(GO) run ./cmd/verifyinv -ops $(INV_OPS) -rand $(INV_RAND)

# Machine-readable benchmark run: the batch-engine benchmarks (override
# with BENCH=...) with allocation stats, teed to results/bench.txt and
# parsed into results/bench.json for regression diffing. Set BENCHJSON_NOTE
# to annotate the JSON (e.g. "baseline at <commit>").
bench:
	@mkdir -p results
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchtime $(BENCHTIME) -benchmem \
		| tee results/bench.txt | /tmp/benchjson > results/bench.json
	@echo "wrote results/bench.txt and results/bench.json"

# Bench-regression gate: rerun the hot-path benchmarks and fail when any
# ns/op regressed more than BENCH_TOLERANCE (fraction) against the committed
# baseline results/bench.json. CI runs this on every push.
BENCH_TOLERANCE ?= 0.15
bench-check:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchtime $(BENCHTIME) -benchmem \
		| /tmp/benchjson > /tmp/bench-new.json
	/tmp/benchjson -compare -tolerance $(BENCH_TOLERANCE) results/bench.json /tmp/bench-new.json

# One iteration of every paper-artifact benchmark plus the batch-engine
# serial/parallel comparison.
bench-all:
	$(GO) test -bench=. -benchtime 1x

# Latency-attribution run report (Markdown breakdowns + NoC heatmap CSVs)
# for REPORT_SCHEME vs baseline on REPORT_BENCH, written under
# results/report/ (gitignored). Override the knobs for other comparisons:
#   make report REPORT_SCHEME=transfw REPORT_BENCH=SPMV,PR,KM
REPORT_SCHEME ?= hdpat
REPORT_BENCH ?= SPMV,PR
report:
	$(GO) run ./cmd/report -scheme $(REPORT_SCHEME) -bench $(REPORT_BENCH) -o results/report
