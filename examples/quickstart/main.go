// Quickstart: run one benchmark under the baseline and under HDPAT on the
// paper's default 7x7 wafer, and print the headline comparison.
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"hdpat"
)

// opsBudget honours the HDPAT_OPS_BUDGET override (used by the repository's
// smoke test to keep example runs fast) and defaults to def.
func opsBudget(def int) int {
	if s := os.Getenv("HDPAT_OPS_BUDGET"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func main() {
	cfg := hdpat.DefaultConfig()

	cmp, err := hdpat.Compare(cfg, "hdpat", "SPMV",
		hdpat.WithOpsBudget(opsBudget(64)), hdpat.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	base, res := cmp.Baseline, cmp.Result

	fmt.Println("SPMV on a 7x7 wafer-scale GPU (48 GPMs, central IOMMU)")
	fmt.Printf("  baseline: %8d cycles, %6.0f-cycle avg remote translation\n",
		base.Cycles, base.AvgRemoteLatency())
	fmt.Printf("  HDPAT:    %8d cycles, %6.0f-cycle avg remote translation\n",
		res.Cycles, res.AvgRemoteLatency())
	fmt.Printf("  speedup:  %.2fx, offloading %.1f%% of remote translations from the IOMMU\n",
		cmp.Speedup, 100*res.OffloadFraction())

	by := res.RemoteBySource()
	fmt.Printf("  served by: peer=%d proactive=%d redirect=%d iommu=%d\n",
		by[1], by[2], by[3], by[0])
}
