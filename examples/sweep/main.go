// Sweep: a custom sensitivity study built on the public API — proactive
// delivery degree x concentric layer count, the two dials a deployment
// would actually tune. The paper sweeps degree (Fig 18) and fixes C=2;
// this example explores the full grid on a prefetch-friendly workload.
package main

import (
	"fmt"
	"log"

	"hdpat"
)

func main() {
	base, err := hdpat.Simulate(hdpat.DefaultConfig(),
		hdpat.RunSpec{Scheme: "baseline", Benchmark: "FIR", OpsBudget: 64, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("FIR speedup vs baseline: proactive-delivery degree x concentric layers")
	fmt.Printf("%-8s", "degree")
	for _, layers := range []int{1, 2, 3} {
		fmt.Printf("   C=%d  ", layers)
	}
	fmt.Println()

	for _, degree := range []int{1, 2, 4, 8} {
		fmt.Printf("%-8d", degree)
		for _, layers := range []int{1, 2, 3} {
			cfg := hdpat.DefaultConfig()
			cfg.HDPAT.Layers = layers
			res, err := hdpat.SimulateWithIOMMU(cfg,
				hdpat.RunSpec{Scheme: "hdpat", Benchmark: "FIR", OpsBudget: 64, Seed: 1},
				func(io *hdpat.IOMMUConfig) { io.PrefetchDegree = degree })
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%6.2f  ", res.Speedup(base))
		}
		fmt.Println()
	}
	fmt.Println("\nExpect saturation at degree 4 (the paper's chosen configuration) and")
	fmt.Println("diminishing returns from a third layer, which mostly adds hops.")
}
