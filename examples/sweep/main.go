// Sweep: a custom sensitivity study built on the public API — proactive
// delivery degree x concentric layer count, the two dials a deployment
// would actually tune. The paper sweeps degree (Fig 18) and fixes C=2;
// this example explores the full grid on a prefetch-friendly workload.
//
// The 12-cell grid runs as one parallel batch: hdpat.WithPerRun gives each
// cell its own layer count (WithConfig) and prefetch degree (WithIOMMU).
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strconv"

	"hdpat"
)

// opsBudget honours the HDPAT_OPS_BUDGET override (used by the repository's
// smoke test to keep example runs fast) and defaults to def.
func opsBudget(def int) int {
	if s := os.Getenv("HDPAT_OPS_BUDGET"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func main() {
	degrees := []int{1, 2, 4, 8}
	layers := []int{1, 2, 3}

	budget := opsBudget(64)
	base, err := hdpat.Simulate(hdpat.DefaultConfig(),
		hdpat.RunSpec{Scheme: "baseline", Benchmark: "FIR"},
		hdpat.WithOpsBudget(budget), hdpat.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}

	// One spec per grid cell; the cell's dials are applied per run.
	type cell struct{ degree, layers int }
	var cells []cell
	for _, d := range degrees {
		for _, c := range layers {
			cells = append(cells, cell{d, c})
		}
	}
	specs := make([]hdpat.RunSpec, len(cells))
	for i := range specs {
		specs[i] = hdpat.RunSpec{Scheme: "hdpat", Benchmark: "FIR"}
	}
	runs, err := hdpat.RunBatch(context.Background(), hdpat.DefaultConfig(), specs,
		hdpat.WithOpsBudget(budget), hdpat.WithSeed(1),
		hdpat.WithPerRun(func(i int) []hdpat.Option {
			c := cells[i]
			return []hdpat.Option{
				hdpat.WithConfig(func(cfg *hdpat.Config) { cfg.HDPAT.Layers = c.layers }),
				hdpat.WithIOMMU(func(io *hdpat.IOMMUConfig) { io.PrefetchDegree = c.degree }),
			}
		}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("FIR speedup vs baseline: proactive-delivery degree x concentric layers")
	fmt.Printf("%-8s", "degree")
	for _, c := range layers {
		fmt.Printf("   C=%d  ", c)
	}
	fmt.Println()
	for di, d := range degrees {
		fmt.Printf("%-8d", d)
		for li := range layers {
			run := runs[di*len(layers)+li]
			if run.Err != nil {
				log.Fatal(run.Err)
			}
			fmt.Printf("%6.2f  ", run.Result.Speedup(base))
		}
		fmt.Println()
	}
	fmt.Println("\nExpect saturation at degree 4 (the paper's chosen configuration) and")
	fmt.Println("diminishing returns from a third layer, which mostly adds hops.")
}
