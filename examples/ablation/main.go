// Ablation: walk the Fig 15 technique ladder — route-based caching,
// concentric caching, the distributed-caching baseline, clustering+rotation,
// the redirection table and proactive delivery — on three contrasting
// benchmarks, showing how each mechanism contributes.
package main

import (
	"fmt"
	"log"

	"hdpat"
)

func main() {
	cfg := hdpat.DefaultConfig()
	benchmarks := []string{"PR", "FIR", "MT"} // best case, prefetch-friendly, worst case
	ladder := []string{"route", "concentric", "distributed", "cluster", "redirect", "prefetch", "hdpat"}

	fmt.Printf("%-12s", "scheme")
	for _, b := range benchmarks {
		fmt.Printf("%8s", b)
	}
	fmt.Println("   (speedup vs baseline)")

	// One baseline run per benchmark, reused across the ladder.
	bases := map[string]hdpat.Result{}
	for _, b := range benchmarks {
		res, err := hdpat.Simulate(cfg, hdpat.RunSpec{Scheme: "baseline", Benchmark: b, OpsBudget: 64, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		bases[b] = res
	}

	for _, scheme := range ladder {
		fmt.Printf("%-12s", scheme)
		for _, b := range benchmarks {
			res, err := hdpat.Simulate(cfg, hdpat.RunSpec{Scheme: scheme, Benchmark: b, OpsBudget: 64, Seed: 1})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8.2f", res.Speedup(bases[b]))
		}
		fmt.Println()
	}
	fmt.Println("\nPR gains most (hot shared pages), MT least (reuse distances exceed")
	fmt.Println("every cache), matching the paper's §V-C analysis.")
}
