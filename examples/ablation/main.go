// Ablation: walk the Fig 15 technique ladder — route-based caching,
// concentric caching, the distributed-caching baseline, clustering+rotation,
// the redirection table and proactive delivery — on three contrasting
// benchmarks, showing how each mechanism contributes.
//
// The whole 7x3 grid (plus one shared baseline per benchmark) executes as a
// single parallel batch via hdpat.CompareAll.
package main

import (
	"context"
	"fmt"
	"log"

	"hdpat"
)

func main() {
	cfg := hdpat.DefaultConfig()
	benchmarks := []string{"PR", "FIR", "MT"} // best case, prefetch-friendly, worst case
	ladder := []string{"route", "concentric", "distributed", "cluster", "redirect", "prefetch", "hdpat"}

	cmp, err := hdpat.CompareAll(context.Background(), cfg, ladder, benchmarks,
		hdpat.WithOpsBudget(64), hdpat.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	// cmp is benchmark-major: cell (benchmarks[i], ladder[j]) at i*len(ladder)+j.
	cell := func(bi, si int) hdpat.ComparisonResult { return cmp[bi*len(ladder)+si] }

	fmt.Printf("%-12s", "scheme")
	for _, b := range benchmarks {
		fmt.Printf("%8s", b)
	}
	fmt.Println("   (speedup vs baseline)")

	for si, scheme := range ladder {
		fmt.Printf("%-12s", scheme)
		for bi := range benchmarks {
			c := cell(bi, si)
			if c.Err != nil {
				log.Fatal(c.Err)
			}
			fmt.Printf("%8.2f", c.Speedup)
		}
		fmt.Println()
	}
	fmt.Println("\nPR gains most (hot shared pages), MT least (reuse distances exceed")
	fmt.Println("every cache), matching the paper's §V-C analysis.")
}
