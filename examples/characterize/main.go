// Characterize: reproduce the O1-O4 workload analysis of §III for any
// benchmark — IOMMU pressure, reuse counts, reuse distances and spatial
// locality of the translation request stream — using the trace observer
// hook of the simulator.
package main

import (
	"flag"
	"fmt"
	"log"

	"hdpat/internal/config"
	"hdpat/internal/iommu"
	"hdpat/internal/sim"
	"hdpat/internal/stats"
	"hdpat/internal/wafer"
	"hdpat/internal/workload"
	"hdpat/internal/xlat"
)

func main() {
	bench := flag.String("bench", "SPMV", "benchmark to characterise")
	budget := flag.Int("budget", 64, "ops per CU")
	flag.Parse()

	b, err := workload.ByAbbr(*bench)
	if err != nil {
		log.Fatal(err)
	}
	cfg, _ := wafer.ConfigFor("baseline", config.Default())

	reuse := stats.NewReuseTracker()
	var spatial stats.SpatialTracker
	res, err := wafer.Run(cfg, wafer.Options{
		Scheme: "baseline", Benchmark: b, OpsBudget: *budget, Seed: 1,
		QueueWindow: 2000,
		Hooks: []iommu.RequestHook{iommu.RequestHookFunc(func(now sim.VTime, req *xlat.Request) {
			reuse.Touch(uint64(req.VPN))
			spatial.Touch(uint64(req.VPN))
		})},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== %s: translation characterisation (baseline, %d ops) ===\n\n", *bench, res.TotalOps)

	fmt.Println("O1 — IOMMU pressure:")
	pre, q, w := res.IOMMU.Breakdown.Means()
	fmt.Printf("  %d requests, %d walks; latency pre-queue %.0f + queue %.0f + walk %.0f cycles\n",
		res.IOMMU.Requests, res.IOMMU.Walks, pre, q, w)
	fmt.Printf("  peak queue depth %d\n", res.IOMMU.PeakQueue)
	fmt.Printf("  depth over time: %s\n\n", res.QueueSeries.Sparkline(60))

	fmt.Println("O3 — translation reuse at the IOMMU:")
	h := reuse.CountHistogram()
	fmt.Printf("  %d unique pages, %.0f%% translated exactly once, max %d translations\n",
		reuse.UniquePages(), 100*reuse.SingleTouchFraction(), h.Max())
	if reuse.Distances.Total() > 0 {
		fmt.Printf("  reuse distance: mean %.0f, max %d, %.0f%% within 256 requests\n",
			reuse.Distances.Mean(), reuse.Distances.Max(), 100*reuse.Distances.FractionAtMost(256))
	}
	fmt.Println()

	fmt.Println("O4 — spatial locality of consecutive requests:")
	for _, d := range []uint64{1, 2, 4} {
		fmt.Printf("  within %d page(s): %5.1f%%\n", d, 100*spatial.FractionWithin(d))
	}

	fmt.Println("\nO2 — geometric imbalance (per-ring mean finish, kcycles):")
	cpuX, cpuY := (cfg.MeshW-1)/2, (cfg.MeshH-1)/2
	sums := map[int]float64{}
	counts := map[int]int{}
	for i, c := range res.GPMCoords {
		dx, dy := c.X-cpuX, c.Y-cpuY
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		r := dx
		if dy > dx {
			r = dy
		}
		sums[r] += float64(res.GPMFinish[i])
		counts[r]++
	}
	for r := 1; counts[r] > 0; r++ {
		fmt.Printf("  ring %d: %8.1f\n", r, sums[r]/float64(counts[r])/1000)
	}
}
