package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Span("iommu", "walk", 0, 10)
	tr.Instant("noc", "drop", 5)
	tr.WalkSpan(0, 10, 1, 2)
	tr.QueueSpan("iommu.pwq", 0, 5, 1)
	tr.HopSpan(0, 32, 0, 0, 1, 0, 64, false)
	tr.MigrationSpan(0, 100, 42, 1, 2)
	tr.RequestSpan(0, 100, 1, 0, 3)
	if tr.Run(3) != nil {
		t.Error("nil.Run should stay nil")
	}
	if tr.Events() != 0 {
		t.Error("nil.Events should be 0")
	}
	if tr.Close() != nil {
		t.Error("nil.Close should be nil")
	}
}

func TestJSONLFormat(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, JSONL)
	tr.WalkSpan(100, 600, 7, 0x42)
	tr.Instant("noc", "drop", 50, KV{"bytes", 64})
	tr.Run(3).HopSpan(10, 42, 0, 1, 1, 1, 32, false)
	if tr.Events() != 3 {
		t.Errorf("events = %d", tr.Events())
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	var walk map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &walk); err != nil {
		t.Fatalf("line 0: %v", err)
	}
	if walk["ev"] != "walk" || walk["ts"] != float64(100) || walk["dur"] != float64(500) ||
		walk["vpn"] != float64(0x42) {
		t.Errorf("walk event = %v", walk)
	}
	if _, hasRun := walk["run"]; hasRun {
		t.Error("run 0 events must omit the run tag")
	}
	var inst map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &inst); err != nil {
		t.Fatalf("line 1: %v", err)
	}
	if _, hasDur := inst["dur"]; hasDur {
		t.Error("instant events must omit dur")
	}
	var hop map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &hop); err != nil {
		t.Fatalf("line 2: %v", err)
	}
	if hop["run"] != float64(3) {
		t.Errorf("child-run event missing run tag: %v", hop)
	}
}

func TestChromeFormatIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, Chrome)
	tr.WalkSpan(0, 10, 1, 2)
	tr.Run(2).QueueSpan("iommu.pwq", 5, 9, 1)
	tr.MigrationSpan(0, 50, 9, 0, 3)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("Chrome output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 3 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0]["ph"] != "X" || events[0]["name"] != "walk" || events[0]["dur"] != float64(10) {
		t.Errorf("event 0 = %v", events[0])
	}
	if events[1]["pid"] != float64(2) {
		t.Errorf("child-run event pid = %v", events[1]["pid"])
	}
	args, ok := events[2]["args"].(map[string]any)
	if !ok || args["vpn"] != float64(9) || args["to"] != float64(3) {
		t.Errorf("migration args = %v", events[2]["args"])
	}
}

func TestChromeEmptyTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, Chrome)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty Chrome trace invalid: %v\n%q", err, buf.String())
	}
	if len(events) != 0 {
		t.Errorf("expected no events, got %d", len(events))
	}
}

func TestEmitAfterCloseDropped(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, JSONL)
	tr.Span("a", "b", 0, 1)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	tr.Span("a", "late", 2, 3)
	if buf.Len() != n {
		t.Error("events after Close must be dropped")
	}
	if err := tr.Close(); err != nil {
		t.Error("double Close should be idempotent:", err)
	}
}

// recordingSink captures typed sink callbacks for assertions.
type recordingSink struct {
	requests, queues, walks, hops, migrations int
	lastStage                                 string
	lastSource                                int
}

func (s *recordingSink) OnRequest(start, end uint64, req uint64, source, gpm int) {
	s.requests++
	s.lastSource = source
}
func (s *recordingSink) OnQueue(stage string, start, end uint64, req uint64) {
	s.queues++
	s.lastStage = stage
}
func (s *recordingSink) OnWalk(start, end uint64, req, vpn uint64) { s.walks++ }
func (s *recordingSink) OnHop(start, end uint64, fx, fy, tx, ty, size int, deflected bool) {
	s.hops++
}
func (s *recordingSink) OnMigration(start, end uint64, vpn uint64, from, to int) {
	s.migrations++
}

// TestSinkReceivesTypedSpans: Attach fans every typed span out to the sink
// while the stream still sees it.
func TestSinkReceivesTypedSpans(t *testing.T) {
	var buf bytes.Buffer
	var sink recordingSink
	tr := Attach(New(&buf, JSONL), &sink)
	tr.WalkSpan(0, 10, 1, 2)
	tr.QueueSpan("iommu.pwq", 0, 5, 1)
	tr.HopSpan(0, 32, 0, 0, 1, 0, 64, false)
	tr.MigrationSpan(0, 100, 42, 1, 2)
	tr.RequestSpan(0, 50, 1, 3, 7)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.walks != 1 || sink.queues != 1 || sink.hops != 1 || sink.migrations != 1 || sink.requests != 1 {
		t.Errorf("sink = %+v", sink)
	}
	if sink.lastStage != "iommu.pwq" || sink.lastSource != 3 {
		t.Errorf("sink payloads = %+v", sink)
	}
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != 5 {
		t.Errorf("stream got %d lines, want 5", got)
	}
}

// TestSinkOnlyTracer: Attach over a nil tracer observes spans but writes
// nothing, and Close is a no-op.
func TestSinkOnlyTracer(t *testing.T) {
	var sink recordingSink
	tr := Attach(nil, &sink)
	tr.WalkSpan(0, 10, 1, 2)
	tr.RequestSpan(0, 50, 1, 0, 0)
	if sink.walks != 1 || sink.requests != 1 {
		t.Errorf("sink = %+v", sink)
	}
	if tr.Events() != 2 {
		t.Errorf("events = %d, want 2", tr.Events())
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if Attach(nil, nil) != nil {
		t.Error("Attach(nil, nil) should stay nil")
	}
}

// TestEventsConcurrent: Events() may race with emission from batch workers —
// the counter must be clean under the race detector.
func TestEventsConcurrent(t *testing.T) {
	tr := New(&bytes.Buffer{}, JSONL)
	const workers, perWorker = 4, 250
	var emitters sync.WaitGroup
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() { // concurrent reader, as tests and progress reporters do
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = tr.Events()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		emitters.Add(1)
		go func(w int) {
			defer emitters.Done()
			child := tr.Run(w)
			for i := uint64(0); i < perWorker; i++ {
				child.WalkSpan(i, i+1, i, i)
			}
		}(w)
	}
	emitters.Wait()
	close(stop)
	reader.Wait()
	if got := tr.Events(); got != workers*perWorker {
		t.Errorf("events = %d, want %d", got, workers*perWorker)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestByteDeterminism: the same span sequence produces identical bytes —
// the property the wafer-level determinism test builds on.
func TestByteDeterminism(t *testing.T) {
	emitAll := func(format Format) []byte {
		var buf bytes.Buffer
		tr := New(&buf, format)
		for i := uint64(0); i < 100; i++ {
			tr.WalkSpan(i*10, i*10+7, i, i<<12)
			tr.Run(int(i%4)).HopSpan(i, i+32, 0, 0, 1, 0, 64, false)
		}
		tr.Close()
		return buf.Bytes()
	}
	for _, f := range []Format{JSONL, Chrome} {
		if !bytes.Equal(emitAll(f), emitAll(f)) {
			t.Errorf("format %v output not deterministic", f)
		}
	}
}

// TestAttachComposesSinks: attaching a second sink tees spans to both, in
// attachment order — the wiring the attribution ledger and the invariant
// checker share.
func TestAttachComposesSinks(t *testing.T) {
	var first, second recordingSink
	tr := Attach(Attach(nil, &first), &second)
	tr.WalkSpan(0, 10, 1, 2)
	tr.QueueSpan("iommu.admission", 0, 5, 1)
	tr.HopSpan(0, 32, 0, 0, 1, 0, 64, false)
	tr.MigrationSpan(0, 100, 42, 1, 2)
	tr.RequestSpan(0, 50, 1, 3, 7)
	for name, s := range map[string]*recordingSink{"first": &first, "second": &second} {
		if s.walks != 1 || s.queues != 1 || s.hops != 1 || s.migrations != 1 || s.requests != 1 {
			t.Errorf("%s sink = %+v", name, s)
		}
	}
	if tr.Events() != 5 {
		t.Errorf("events = %d, want 5", tr.Events())
	}
	// A Run child keeps the composed sink.
	var third recordingSink
	child := Attach(tr.Run(3), &third)
	child.WalkSpan(10, 20, 2, 3)
	if first.walks != 2 || second.walks != 2 || third.walks != 1 {
		t.Errorf("child fan-out: first=%d second=%d third=%d", first.walks, second.walks, third.walks)
	}
}
