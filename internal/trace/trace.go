// Package trace is the cycle-domain event tracer: typed spans (IOMMU walks,
// queue residency, NoC hops, page migrations) emitted as either a compact
// JSONL stream or Chrome trace_event JSON loadable in chrome://tracing /
// Perfetto. Timestamps are simulated cycles, not wall time.
//
// A nil *Tracer is a valid, disabled tracer: every method is a no-op, so an
// instrumented component pays exactly one branch when tracing is off.
// Tracing only observes — it never schedules events or mutates simulator
// state — so a traced run is cycle-for-cycle identical to an untraced one.
//
// Batch runs share one output stream: Run(pid) derives a child tracer whose
// events carry that pid (one per batch index), serialised onto the shared
// writer under the parent's lock.
//
// Beyond the output stream, a tracer can fan typed spans out to an
// in-process Sink (Attach): the attribution ledger of internal/attr consumes
// walk, queue, hop and request spans this way at simulation time, without a
// write/parse round trip. A sink-only tracer (Attach over a nil tracer)
// emits no bytes at all.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Format selects the output encoding.
type Format int

const (
	// JSONL emits one self-contained JSON object per line.
	JSONL Format = iota
	// Chrome emits a trace_event JSON array for chrome://tracing / Perfetto.
	Chrome
)

// KV is one numeric span attribute. Attributes are numeric only so emission
// stays allocation-cheap and byte-deterministic.
type KV struct {
	K string
	V uint64
}

// Sink receives typed spans in-process as they are emitted, before they are
// encoded to the output stream. Implementations must treat the calls as
// observations only: they run inside the simulation loop and must not
// schedule events or mutate simulator state. internal/attr's Collector is
// the canonical implementation.
type Sink interface {
	// OnRequest sees one remote translation lifecycle: issue at the GPM's
	// GMMU boundary to completion, with the serving source (an xlat.Source
	// ordinal) and the requesting GPM.
	OnRequest(start, end uint64, req uint64, source, gpm int)
	// OnQueue sees one queue-stage residency ("iommu.admission",
	// "iommu.pwq").
	OnQueue(stage string, start, end uint64, req uint64)
	// OnWalk sees one page-table walk occupying an IOMMU walker.
	OnWalk(start, end uint64, req, vpn uint64)
	// OnHop sees one NoC link traversal; deflected marks a hop that was
	// misrouted off a productive direction by bufferless deflection routing
	// (always false under XY).
	OnHop(start, end uint64, fromX, fromY, toX, toY, size int, deflected bool)
	// OnMigration sees one completed page migration.
	OnMigration(start, end uint64, vpn uint64, from, to int)
}

// state is the output stream shared by a tracer and its Run children. A nil
// writer marks a sink-only tracer: spans reach the sink but no bytes are
// emitted.
type state struct {
	mu     sync.Mutex
	w      *bufio.Writer
	format Format
	events atomic.Uint64
	opened bool
	closed bool
	err    error
}

// Tracer emits events for one run (identified by pid in batch traces).
type Tracer struct {
	st   *state
	pid  int
	sink Sink
}

// New creates a tracer writing to w in the given format. Call Close when the
// run (or batch) finishes to flush buffered events and, for Chrome, to
// terminate the JSON array.
func New(w io.Writer, format Format) *Tracer {
	return &Tracer{st: &state{w: bufio.NewWriterSize(w, 1<<16), format: format}}
}

// Attach returns a tracer that forwards typed spans to sink in addition to
// t's output stream. A nil t yields a sink-only tracer that writes nothing;
// a nil sink returns t unchanged. The returned tracer shares t's stream and
// pid, so it can replace t at every instrumentation site of a run. Attaching
// to a tracer that already has a sink fans spans out to both, earlier sinks
// first — the attribution ledger and the invariant checker compose this way.
func Attach(t *Tracer, sink Sink) *Tracer {
	if sink == nil {
		return t
	}
	if t == nil {
		return &Tracer{st: &state{}, sink: sink}
	}
	if t.sink != nil {
		sink = teeSink{t.sink, sink}
	}
	return &Tracer{st: t.st, pid: t.pid, sink: sink}
}

// teeSink fans typed spans out to two sinks in order.
type teeSink struct{ a, b Sink }

func (s teeSink) OnRequest(start, end uint64, req uint64, source, gpm int) {
	s.a.OnRequest(start, end, req, source, gpm)
	s.b.OnRequest(start, end, req, source, gpm)
}

func (s teeSink) OnQueue(stage string, start, end uint64, req uint64) {
	s.a.OnQueue(stage, start, end, req)
	s.b.OnQueue(stage, start, end, req)
}

func (s teeSink) OnWalk(start, end uint64, req, vpn uint64) {
	s.a.OnWalk(start, end, req, vpn)
	s.b.OnWalk(start, end, req, vpn)
}

func (s teeSink) OnHop(start, end uint64, fromX, fromY, toX, toY, size int, deflected bool) {
	s.a.OnHop(start, end, fromX, fromY, toX, toY, size, deflected)
	s.b.OnHop(start, end, fromX, fromY, toX, toY, size, deflected)
}

func (s teeSink) OnMigration(start, end uint64, vpn uint64, from, to int) {
	s.a.OnMigration(start, end, vpn, from, to)
	s.b.OnMigration(start, end, vpn, from, to)
}

// Run derives a child tracer for one run of a batch: same stream, events
// tagged with pid so viewers separate the runs.
func (t *Tracer) Run(pid int) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{st: t.st, pid: pid, sink: t.sink}
}

// Events returns the number of events emitted so far. It is safe to call
// concurrently with emission (progress reporting, tests).
func (t *Tracer) Events() uint64 {
	if t == nil {
		return 0
	}
	return t.st.events.Load()
}

// Close flushes the stream and terminates the Chrome JSON array. It returns
// the first write error encountered over the tracer's lifetime.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	st := t.st
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed || st.w == nil {
		return st.err
	}
	st.closed = true
	if st.format == Chrome {
		if !st.opened {
			st.w.WriteString("[")
		}
		st.w.WriteString("\n]\n")
	}
	if err := st.w.Flush(); err != nil && st.err == nil {
		st.err = err
	}
	return st.err
}

// emit writes one event. dur < 0 marks an instant event.
func (t *Tracer) emit(tid, name string, ts uint64, dur int64, kv []KV) {
	if t == nil {
		return
	}
	st := t.st
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.events.Add(1)
	if st.w == nil { // sink-only tracer: count the event, write nothing
		return
	}
	w := st.w
	switch st.format {
	case Chrome:
		if !st.opened {
			w.WriteString("[")
			st.opened = true
		} else {
			w.WriteString(",")
		}
		if dur >= 0 {
			fmt.Fprintf(w, "\n{\"ph\":\"X\",\"pid\":%d,\"tid\":%q,\"cat\":%q,\"name\":%q,\"ts\":%d,\"dur\":%d",
				t.pid, tid, tid, name, ts, dur)
		} else {
			fmt.Fprintf(w, "\n{\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%q,\"cat\":%q,\"name\":%q,\"ts\":%d",
				t.pid, tid, tid, name, ts)
		}
		w.WriteString(",\"args\":{")
		for i, a := range kv {
			if i > 0 {
				w.WriteString(",")
			}
			fmt.Fprintf(w, "%q:%d", a.K, a.V)
		}
		w.WriteString("}}")
	default: // JSONL
		fmt.Fprintf(w, "{\"ts\":%d,\"tid\":%q,\"ev\":%q", ts, tid, name)
		if t.pid != 0 {
			fmt.Fprintf(w, ",\"run\":%d", t.pid)
		}
		if dur >= 0 {
			fmt.Fprintf(w, ",\"dur\":%d", dur)
		}
		for _, a := range kv {
			fmt.Fprintf(w, ",%q:%d", a.K, a.V)
		}
		w.WriteString("}\n")
	}
}

// Span records a completed [start, end] interval on the named component
// track ("iommu", "noc", ...).
func (t *Tracer) Span(tid, name string, start, end uint64, kv ...KV) {
	if t == nil {
		return
	}
	t.emit(tid, name, start, int64(end-start), kv)
}

// Instant records a point event.
func (t *Tracer) Instant(tid, name string, ts uint64, kv ...KV) {
	if t == nil {
		return
	}
	t.emit(tid, name, ts, -1, kv)
}

// WalkSpan records one IOMMU page-table walk occupying a walker from start
// to end, on behalf of request req for virtual page vpn.
func (t *Tracer) WalkSpan(start, end uint64, req, vpn uint64) {
	if t == nil {
		return
	}
	if t.sink != nil {
		t.sink.OnWalk(start, end, req, vpn)
	}
	t.emit("iommu", "walk", start, int64(end-start), []KV{{"req", req}, {"vpn", vpn}})
}

// QueueSpan records a request's residency in one queue stage
// ("iommu.admission", "iommu.pwq").
func (t *Tracer) QueueSpan(stage string, start, end uint64, req uint64) {
	if t == nil {
		return
	}
	if t.sink != nil {
		t.sink.OnQueue(stage, start, end, req)
	}
	t.emit(stage, "queued", start, int64(end-start), []KV{{"req", req}})
}

// HopSpan records one NoC link traversal (serialisation plus hop latency)
// of a size-byte message. Deflected hops carry an extra defl=1 key; XY
// traces emit exactly the pre-deflection byte stream.
func (t *Tracer) HopSpan(start, end uint64, fromX, fromY, toX, toY, size int, deflected bool) {
	if t == nil {
		return
	}
	if t.sink != nil {
		t.sink.OnHop(start, end, fromX, fromY, toX, toY, size, deflected)
	}
	kv := []KV{
		{"fx", uint64(fromX)}, {"fy", uint64(fromY)},
		{"tx", uint64(toX)}, {"ty", uint64(toY)},
		{"bytes", uint64(size)},
	}
	if deflected {
		kv = append(kv, KV{"defl", 1})
	}
	t.emit("noc", "hop", start, int64(end-start), kv)
}

// MigrationSpan records one page migration (shootdown through data copy)
// of vpn from GPM `from` to GPM `to`.
func (t *Tracer) MigrationSpan(start, end uint64, vpn uint64, from, to int) {
	if t == nil {
		return
	}
	if t.sink != nil {
		t.sink.OnMigration(start, end, vpn, from, to)
	}
	t.emit("migrate", "migration", start, int64(end-start), []KV{
		{"vpn", vpn}, {"from", uint64(from)}, {"to", uint64(to)},
	})
}

// RequestSpan records one remote translation lifecycle — request issue at
// the GPM's GMMU boundary through completion — with the serving source (an
// xlat.Source ordinal) and the requesting GPM. Emitted by the GPM at
// completion time, it is the stitching anchor the attribution ledger hangs
// walk/queue spans off.
func (t *Tracer) RequestSpan(start, end uint64, req uint64, source, gpm int) {
	if t == nil {
		return
	}
	if t.sink != nil {
		t.sink.OnRequest(start, end, req, source, gpm)
	}
	t.emit("xlat", "request", start, int64(end-start), []KV{
		{"req", req}, {"src", uint64(source)}, {"gpm", uint64(gpm)},
	})
}
