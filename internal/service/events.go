package service

import (
	"context"
	"log/slog"
	"sync"
)

// Event is one flight-recorder entry: a structured log record captured in
// the job's bounded ring buffer, served by GET /v1/jobs/{id}/events for
// post-mortem debugging of failed or wedged jobs.
type Event struct {
	// Time is the record's RFC 3339 wall-clock stamp with sub-second
	// precision.
	Time string `json:"time"`
	// Level is the slog level string ("INFO", "WARN", ...).
	Level string `json:"level"`
	// Msg is the log message.
	Msg string `json:"msg"`
	// Attrs carries the record's attributes, group names flattened into
	// dotted keys.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// flightRecorder is a bounded ring of recent Events. Writes never block
// and never grow past the capacity: once full, each new event evicts the
// oldest, and Dropped counts the evictions.
type flightRecorder struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	total uint64
}

func newFlightRecorder(capacity int) *flightRecorder {
	if capacity <= 0 {
		capacity = defaultFlightEvents
	}
	return &flightRecorder{buf: make([]Event, capacity)}
}

func (f *flightRecorder) add(e Event) {
	f.mu.Lock()
	f.buf[f.next] = e
	f.next++
	f.total++
	if f.next == len(f.buf) {
		f.next = 0
		f.full = true
	}
	f.mu.Unlock()
}

// Events returns the buffered events oldest-first.
func (f *flightRecorder) Events() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.full {
		return append([]Event(nil), f.buf[:f.next]...)
	}
	out := make([]Event, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	return append(out, f.buf[:f.next]...)
}

// Dropped reports how many events the ring has evicted.
func (f *flightRecorder) Dropped() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.full {
		return 0
	}
	return f.total - uint64(len(f.buf))
}

// ringHandler is a slog.Handler that records every log line into a
// flightRecorder. Composed (via teeHandler) with the service's output
// handler, it gives each job logger a second destination: the job's own
// bounded post-mortem buffer.
type ringHandler struct {
	rec    *flightRecorder
	prefix string
	attrs  []slog.Attr
}

func (h *ringHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *ringHandler) Handle(_ context.Context, r slog.Record) error {
	e := Event{
		Time:  r.Time.UTC().Format("2006-01-02T15:04:05.000000Z07:00"),
		Level: r.Level.String(),
		Msg:   r.Message,
	}
	n := len(h.attrs) + r.NumAttrs()
	if n > 0 {
		e.Attrs = make(map[string]any, n)
		for _, a := range h.attrs {
			flattenAttr(e.Attrs, "", a)
		}
		r.Attrs(func(a slog.Attr) bool {
			flattenAttr(e.Attrs, h.prefix, a)
			return true
		})
	}
	h.rec.add(e)
	return nil
}

func (h *ringHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	nh.attrs = make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	nh.attrs = append(nh.attrs, h.attrs...)
	for _, a := range attrs {
		a.Key = h.prefix + a.Key
		nh.attrs = append(nh.attrs, a)
	}
	return &nh
}

func (h *ringHandler) WithGroup(name string) slog.Handler {
	nh := *h
	nh.prefix = h.prefix + name + "."
	return &nh
}

// flattenAttr folds one attribute into m, dotting group names into the key.
func flattenAttr(m map[string]any, prefix string, a slog.Attr) {
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		for _, ga := range v.Group() {
			flattenAttr(m, prefix+a.Key+".", ga)
		}
		return
	}
	m[prefix+a.Key] = v.Any()
}

// teeHandler fans one log record out to two handlers — the service's
// output stream and a job's flight recorder.
type teeHandler struct{ a, b slog.Handler }

func (t teeHandler) Enabled(ctx context.Context, l slog.Level) bool {
	return t.a.Enabled(ctx, l) || t.b.Enabled(ctx, l)
}

func (t teeHandler) Handle(ctx context.Context, r slog.Record) error {
	var err error
	if t.a.Enabled(ctx, r.Level) {
		err = t.a.Handle(ctx, r)
	}
	if t.b.Enabled(ctx, r.Level) {
		if e := t.b.Handle(ctx, r); err == nil {
			err = e
		}
	}
	return err
}

func (t teeHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return teeHandler{a: t.a.WithAttrs(attrs), b: t.b.WithAttrs(attrs)}
}

func (t teeHandler) WithGroup(name string) slog.Handler {
	return teeHandler{a: t.a.WithGroup(name), b: t.b.WithGroup(name)}
}
