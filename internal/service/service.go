package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hdpat/internal/metrics"
	"hdpat/internal/runner"
	"hdpat/internal/trace"
	"hdpat/internal/wafer"
)

// defaultFlightEvents bounds each job's flight-recorder ring when
// Options.FlightEvents is 0.
const defaultFlightEvents = 256

// RunFunc executes one run of a job: the point's scheme on its benchmark at
// the spec's budget and seed. cmd/hdpatd supplies one built on the public
// hdpat API. reg is non-nil when the spec asked for metrics; the run should
// report into it. RunFunc must be deterministic — equal (spec, point) pairs
// must produce identical results — or resume loses its byte-identity
// guarantee.
type RunFunc func(ctx context.Context, spec JobSpec, p Point, reg *metrics.Registry) (wafer.Result, error)

// Options configure a Service.
type Options struct {
	// Dir is the state root: artifacts under Dir/artifacts, job journals
	// under Dir/jobs.
	Dir string
	// Run executes one run (required).
	Run RunFunc
	// JobWorkers bounds concurrently executing jobs (default 1: jobs run in
	// submission order; runs inside a job still parallelise).
	JobWorkers int
	// RunWorkers is the default per-job run concurrency when a spec leaves
	// Workers at 0 (default 1; <0 means GOMAXPROCS).
	RunWorkers int
	// QueueDepth bounds jobs waiting for a dispatcher (default 1024).
	QueueDepth int
	// Logger receives structured operational log records (nil = discard).
	// Job-scoped records carry job_id and spec_digest attributes, run-scoped
	// records additionally run_id/scheme/benchmark, and every job-scoped
	// record is also captured in that job's flight-recorder ring
	// (GET /v1/jobs/{id}/events).
	Logger *slog.Logger
	// FlightEvents bounds each job's flight-recorder ring (default 256).
	FlightEvents int
	// CheckSpec, when set, vets each submitted spec beyond JobSpec.Validate.
	// cmd/hdpatd plugs in the full config.Validate on the job's effective
	// system config, so a hostile spec (overflowing mesh, bad scale) is
	// rejected as a client error at submission instead of failing — or
	// panicking — deep inside a run.
	CheckSpec func(JobSpec) error
}

// ErrClosed reports an operation on a closed service.
var ErrClosed = errors.New("service: closed")

// ErrNotFound reports an unknown job ID.
var ErrNotFound = errors.New("service: job not found")

// Service is the daemon core: a job registry and queue in front of the
// runner pool, an artifact store, and per-job journals. Create one with
// Open, serve it with Handler, stop it with Close.
type Service struct {
	opts  Options
	store *Store
	log   *slog.Logger
	// reg carries service-level series (jobs accepted/done, runs
	// executed/resumed) plus the wall-clock HTTP and runtime series; per-job
	// series live on each job's registry and are merged into the /metrics
	// aggregate at scrape time.
	reg *metrics.Registry
	// runtime samples Go runtime telemetry (heap, GC pauses, goroutines,
	// uptime) into reg at scrape time.
	runtime *metrics.RuntimeSampler
	// ready flips true once journal replay and the store index load are
	// done, and false when Close begins — the /readyz signal.
	ready atomic.Bool

	baseCtx   context.Context
	cancelAll context.CancelFunc
	queue     chan *Job
	wg        sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	closed bool
}

// Job is one submitted job's runtime state. All fields are accessed through
// methods; the HTTP layer serves Status() snapshots.
type Job struct {
	ID   string
	Spec JobSpec

	reg *metrics.Registry
	jr  *journal
	// log is the job-scoped structured logger: every record goes to the
	// service's output handler (tagged job_id/spec_digest) and into the
	// job's flight-recorder ring.
	log    *slog.Logger
	flight *flightRecorder
	// tl records the job's wall-clock lifecycle spans; the rendered Chrome
	// trace is served at /v1/jobs/{id}/timeline and persisted to the store
	// when the job settles.
	tl *timeline

	mu        sync.Mutex
	state     State
	rev       int64
	changed   chan struct{}
	errMsg    string
	artifacts []Artifact
	// completed maps run index -> result digest, restored from the journal
	// at recovery time; the executor skips these runs.
	completed map[int]string
	total     int
	done      int
	executed  int
	resumed   int
	pool      *runner.Pool
	cancelRun context.CancelFunc
	userStop  bool
	created   time.Time
	started   time.Time
	finished  time.Time
	// timelineDigest addresses the persisted wall-clock trace once the job
	// is terminal (restored from the journal for recovered jobs).
	timelineDigest string
}

func newJob(id string, spec JobSpec, jr *journal, logger *slog.Logger, flightCap int) *Job {
	created := time.Now()
	flight := newFlightRecorder(flightCap)
	return &Job{
		ID:   id,
		Spec: spec,
		reg:  metrics.NewRegistry(),
		jr:   jr,
		log: slog.New(teeHandler{a: logger.Handler(), b: &ringHandler{rec: flight}}).
			With("job_id", id, "spec_digest", spec.Digest()),
		flight:    flight,
		tl:        newTimeline(created),
		state:     StateQueued,
		changed:   make(chan struct{}),
		completed: make(map[int]string),
		total:     len(spec.Points()),
		created:   created,
	}
}

// Registry returns the job's metrics registry (the /v1/jobs/{id}/metrics
// source). Safe to scrape while the job runs.
func (j *Job) Registry() *metrics.Registry { return j.reg }

// Events returns the job's flight-recorder contents oldest-first plus the
// count of evicted events — the /v1/jobs/{id}/events payload.
func (j *Job) Events() (events []Event, dropped uint64) {
	return j.flight.Events(), j.flight.Dropped()
}

// TimelineDigest returns the store digest of the persisted wall-clock
// trace ("" while the job is live or when none was persisted).
func (j *Job) TimelineDigest() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.timelineDigest
}

// RenderTimeline renders the job's wall-clock spans recorded so far as
// Chrome trace_event JSON — the live view behind /v1/jobs/{id}/timeline.
func (j *Job) RenderTimeline() []byte { return j.tl.render() }

// notifyLocked bumps the revision and wakes every waiter. Callers hold j.mu.
func (j *Job) notifyLocked() {
	j.rev++
	close(j.changed)
	j.changed = make(chan struct{})
}

// Status snapshots the job for the API.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:    j.ID,
		Spec:  j.Spec,
		State: j.state,
		Rev:   j.rev,
		Progress: ProgressInfo{
			Done:     j.done,
			Total:    j.total,
			Executed: j.executed,
			Resumed:  j.resumed,
		},
		Artifacts: append([]Artifact(nil), j.artifacts...),
		Timeline:  j.timelineDigest,
		Error:     j.errMsg,
		Created:   stamp(j.created),
		Started:   stamp(j.started),
		Finished:  stamp(j.finished),
	}
	if j.pool != nil && j.state == StateRunning {
		ps := j.pool.Snapshot()
		st.Progress.Queued = ps.Queued
		st.Progress.Inflight = ps.Inflight
	}
	return st
}

// Wait blocks until the job's revision exceeds since or ctx fires, then
// returns the current status — the long-poll primitive.
func (j *Job) Wait(ctx context.Context, since int64) Status {
	for {
		j.mu.Lock()
		if j.rev > since {
			j.mu.Unlock()
			return j.Status()
		}
		ch := j.changed
		j.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return j.Status()
		}
	}
}

// Changed returns a channel closed at the next status change after rev,
// plus the current revision — the SSE primitive.
func (j *Job) Changed() (<-chan struct{}, int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.changed, j.rev
}

// Open opens (creating if needed) the service state under opts.Dir,
// recovers journaled jobs — interrupted jobs re-enqueue with their
// completed runs marked resumable — and starts the dispatcher.
func Open(opts Options) (*Service, error) {
	if opts.Run == nil {
		return nil, fmt.Errorf("service: Options.Run is required")
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("service: Options.Dir is required")
	}
	if opts.JobWorkers <= 0 {
		opts.JobWorkers = 1
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 1024
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	store, err := OpenStore(opts.Dir+"/artifacts", opts.Logger)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		opts:      opts,
		store:     store,
		log:       opts.Logger,
		reg:       metrics.NewRegistry(),
		runtime:   metrics.NewRuntimeSampler(),
		baseCtx:   ctx,
		cancelAll: cancel,
		queue:     make(chan *Job, opts.QueueDepth),
		jobs:      make(map[string]*Job),
	}
	if err := s.recover(); err != nil {
		cancel()
		return nil, err
	}
	s.wg.Add(opts.JobWorkers)
	for w := 0; w < opts.JobWorkers; w++ {
		go s.dispatch()
	}
	s.ready.Store(true)
	s.log.Info("service open", "dir", opts.Dir, "jobs", len(s.jobs),
		"store_objects", store.Len(), "job_workers", opts.JobWorkers)
	return s, nil
}

// Ready reports whether the service finished journal replay and loaded the
// store index, and has not begun shutting down — the /readyz signal, as
// opposed to /healthz liveness.
func (s *Service) Ready() bool { return s.ready.Load() }

// recover replays every journal under the state dir: terminal jobs are
// re-registered as completed history, interrupted jobs re-enqueue ordered
// by acceptance time with their journaled runs marked resumable.
func (s *Service) recover() error {
	states, err := scanJournals(s.opts.Dir)
	if err != nil {
		return err
	}
	ordered := make([]journalState, 0, len(states))
	for _, st := range states {
		ordered = append(ordered, st)
	}
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].accepted != ordered[b].accepted {
			return ordered[a].accepted < ordered[b].accepted
		}
		return ordered[a].id < ordered[b].id
	})
	for _, st := range ordered {
		if got := st.spec.ID(); got != st.id {
			s.log.Warn("skipping job dir: spec hash mismatch", "job_id", st.id, "hashed", got)
			continue
		}
		if st.terminal != "" {
			j := newJob(st.id, st.spec, nil, s.opts.Logger, s.opts.FlightEvents)
			j.artifacts = st.artifacts
			j.errMsg = st.errMsg
			j.timelineDigest = st.timeline
			j.done = len(st.completed)
			for i, d := range st.completed {
				j.completed[i] = d
			}
			switch st.terminal {
			case evDone:
				j.state = StateDone
				j.done = j.total
			case evFailed:
				j.state = StateFailed
			case evCancelled:
				j.state = StateCancelled
			}
			s.jobs[st.id] = j
			s.order = append(s.order, st.id)
			continue
		}
		jr, err := openJournal(s.opts.Dir, st.id)
		if err != nil {
			return err
		}
		j := newJob(st.id, st.spec, jr, s.opts.Logger, s.opts.FlightEvents)
		for i, d := range st.completed {
			if s.store.Has(d) {
				j.completed[i] = d
			}
		}
		s.jobs[st.id] = j
		s.order = append(s.order, st.id)
		s.queue <- j
		s.reg.Counter("service.jobs_recovered").Inc()
		j.log.Info("job recovered; re-enqueued",
			"runs_journaled", len(j.completed), "runs_total", j.total)
	}
	return nil
}

// Store exposes the artifact store (read paths of the HTTP layer).
func (s *Service) Store() *Store { return s.store }

// Registry returns the service-level metrics registry.
func (s *Service) Registry() *metrics.Registry { return s.reg }

// Submit registers spec as a job and enqueues it. Identical specs are
// deduplicated: resubmitting returns the existing job with existed true.
func (s *Service) Submit(spec JobSpec) (j *Job, existed bool, err error) {
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	if s.opts.CheckSpec != nil {
		if err := s.opts.CheckSpec(spec); err != nil {
			return nil, false, err
		}
	}
	id := spec.ID()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrClosed
	}
	if j, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		s.reg.Counter("service.jobs_deduped").Inc()
		return j, true, nil
	}
	jr, err := openJournal(s.opts.Dir, id)
	if err != nil {
		s.mu.Unlock()
		return nil, false, err
	}
	j = newJob(id, spec, jr, s.opts.Logger, s.opts.FlightEvents)
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		jr.close()
		return nil, false, fmt.Errorf("service: job queue full")
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	if err := jr.append(journalEntry{T: evAccepted, Spec: &spec}); err != nil {
		return nil, false, err
	}
	s.reg.Counter("service.jobs_accepted").Inc()
	j.tl.instant("job", "accepted", j.created)
	j.log.Info("job accepted", "kind", spec.Kind, "runs", j.total)
	return j, false, nil
}

// Get returns the job with the given ID.
func (s *Service) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists every known job in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel cancels a queued or running job. Terminal jobs return an error.
func (s *Service) Cancel(id string) error {
	j, ok := s.Get(id)
	if !ok {
		return ErrNotFound
	}
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return fmt.Errorf("service: job %s already %s", id, j.state)
	}
	j.userStop = true
	cancel := j.cancelRun
	queued := j.state == StateQueued
	if queued {
		// Never picked up: settle it here; the dispatcher will skip it.
		j.state = StateCancelled
		j.finished = time.Now()
		j.notifyLocked()
	}
	j.mu.Unlock()
	if queued {
		j.tl.instant("job", "cancelled", time.Now())
		tlDigest := s.persistTimeline(j)
		if j.jr != nil {
			if err := j.jr.append(journalEntry{T: evCancelled, Timeline: tlDigest}); err != nil {
				return err
			}
		}
		j.mu.Lock()
		j.timelineDigest = tlDigest
		j.mu.Unlock()
		s.reg.Counter("service.jobs_cancelled").Inc()
		j.log.Info("job cancelled while queued")
		return nil
	}
	j.log.Info("cancelling running job")
	if cancel != nil {
		cancel()
	}
	return nil
}

// Close stops the service: no new jobs are accepted, dispatchers stop, and
// running jobs are interrupted without a terminal journal entry — a later
// Open resumes them from their last completed run. It waits for in-flight
// work to unwind.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.ready.Store(false) // /readyz drains before in-flight work unwinds
	s.log.Info("service closing")
	s.cancelAll()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		if j.jr != nil {
			j.jr.close()
		}
	}
	return nil
}

// dispatch is one job-worker loop.
func (s *Service) dispatch() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			j.mu.Lock()
			skip := j.state != StateQueued // cancelled while queued
			j.mu.Unlock()
			if !skip {
				s.runJob(j)
			}
		}
	}
}

// runRec is one run's finished record: its canonical artifact bytes and the
// parsed result the assembly step reads.
type runRec struct {
	data []byte
	res  wafer.Result
}

// marshalResult renders a run result into its canonical artifact bytes.
// The metrics snapshot is excluded — metric values are live observability,
// not part of the byte contract (matching the golden-digest convention) —
// so a resumed run reproduces the exact bytes of an uninterrupted one.
func marshalResult(res wafer.Result) ([]byte, error) {
	res.Metrics = nil
	return json.MarshalIndent(res, "", " ")
}

// runJob executes one job to a terminal state (or leaves it resumable when
// the service itself is shutting down).
func (s *Service) runJob(j *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	points := j.Spec.Points()
	recs := make([]runRec, len(points))

	workers := j.Spec.Workers
	if workers == 0 {
		workers = s.opts.RunWorkers
		if workers == 0 {
			workers = 1
		}
	}
	pool := &runner.Pool{Workers: workers, Metrics: j.reg}
	pool.Progress = func(done, total int, out runner.Outcome) {
		// Per-run wall-clock span, off the pool's per-task accounting.
		// Cancellation-skipped tasks carry no start time and record nothing.
		if !out.Start.IsZero() && out.Index < len(points) {
			p := points[out.Index]
			j.tl.span("runs", fmt.Sprintf("run %d %s/%s", p.Index, p.Scheme, p.Benchmark),
				out.Start, out.Start.Add(out.Wall), trace.KV{K: "run_id", V: uint64(p.Index)})
		}
		j.mu.Lock()
		j.done = done
		j.notifyLocked()
		j.mu.Unlock()
	}

	j.mu.Lock()
	if j.state != StateQueued { // raced with Cancel
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.pool = pool
	j.cancelRun = cancel
	j.done = 0
	j.notifyLocked()
	j.mu.Unlock()
	j.tl.span("job", "queued", j.created, j.started)
	j.log.Info("job running", "workers", workers, "runs", len(points),
		"resumable", len(j.completed))
	s.reg.Gauge("service.jobs_running").Add(1)
	defer s.reg.Gauge("service.jobs_running").Add(-1)

	tasks := make([]runner.Task, len(points))
	for i, p := range points {
		i, p := i, p
		tasks[i] = func(ctx context.Context) (wafer.Result, error) {
			return s.runPoint(ctx, j, p, recs)
		}
	}
	outs := pool.Run(ctx, tasks)
	j.tl.span("job", "running", j.started, time.Now())

	if ctx.Err() != nil {
		j.mu.Lock()
		stopped := j.userStop
		j.mu.Unlock()
		if !stopped {
			// Service shutdown: leave the journal without a terminal entry so
			// the next Open resumes from the completed runs.
			j.log.Info("job interrupted; resumable on next start", "reason", ctx.Err().Error())
			return
		}
		s.settleJob(j, StateCancelled, evCancelled, nil, "")
		return
	}
	for _, out := range outs {
		if out.Err != nil {
			msg := fmt.Sprintf("run %d (%s/%s): %v",
				out.Index, points[out.Index].Scheme, points[out.Index].Benchmark, out.Err)
			s.settleJob(j, StateFailed, evFailed, nil, msg)
			return
		}
	}

	awStart := time.Now()
	arts, err := s.storeArtifacts(j.Spec, points, recs)
	j.tl.span("job", "artifact-write", awStart, time.Now())
	if err != nil {
		s.settleJob(j, StateFailed, evFailed, nil, err.Error())
		return
	}
	s.settleJob(j, StateDone, evDone, arts, "")
}

// settleJob drives a job to its terminal state: terminal timeline instant,
// wall-clock trace persisted to the store, terminal journal entry, metrics,
// logs, and the Status transition.
func (s *Service) settleJob(j *Job, state State, ev string, arts []Artifact, errMsg string) {
	j.tl.instant("job", string(state), time.Now())
	tlDigest := s.persistTimeline(j)
	entry := journalEntry{T: ev, Artifacts: arts, Error: errMsg, Timeline: tlDigest}
	if err := j.jr.append(entry); err != nil {
		j.log.Error("journal append failed", "entry", ev, "err", err.Error())
	}
	s.reg.Counter("service.jobs_" + ev).Inc()
	switch state {
	case StateDone:
		j.log.Info("job done", "artifacts", len(arts),
			"wall_ms", time.Since(j.started).Milliseconds())
	case StateFailed:
		j.log.Error("job failed", "err", errMsg)
	case StateCancelled:
		j.log.Info("job cancelled")
	}
	j.settle(state, arts, errMsg, tlDigest)
}

// persistTimeline renders the job's wall-clock trace and stores it
// content-addressed, returning its digest ("" on failure — the timeline is
// observability, never worth failing a job over).
func (s *Service) persistTimeline(j *Job) string {
	digest, _, err := s.store.Put(j.tl.render())
	if err != nil {
		j.log.Warn("timeline persist failed", "err", err.Error())
		return ""
	}
	return digest
}

// runPoint executes (or resumes) one run and records its canonical bytes.
func (s *Service) runPoint(ctx context.Context, j *Job, p Point, recs []runRec) (wafer.Result, error) {
	rlog := j.log.With("run_id", p.Index, "scheme", p.Scheme, "benchmark", p.Benchmark)
	if digest, ok := j.completed[p.Index]; ok {
		data, err := s.store.Get(digest)
		if err == nil {
			var res wafer.Result
			if uerr := json.Unmarshal(data, &res); uerr == nil {
				recs[p.Index] = runRec{data: data, res: res}
				j.mu.Lock()
				j.resumed++
				j.mu.Unlock()
				s.reg.Counter("service.runs_resumed").Inc()
				rlog.Info("run resumed from store", "digest", digest)
				return res, nil
			}
		}
		// Missing or unreadable object: re-execute the run.
		rlog.Warn("stored result unavailable; re-executing", "digest", digest)
	}
	var reg *metrics.Registry
	if j.Spec.Metrics {
		reg = metrics.NewRegistry()
	}
	start := time.Now()
	res, err := s.opts.Run(ctx, j.Spec, p, reg)
	if err != nil {
		rlog.Error("run failed", "err", err.Error(),
			"wall_ms", time.Since(start).Milliseconds())
		return res, err
	}
	data, err := marshalResult(res)
	if err != nil {
		return res, fmt.Errorf("service: marshal result: %w", err)
	}
	digest, _, err := s.store.Put(data)
	if err != nil {
		return res, err
	}
	if err := j.jr.append(journalEntry{T: evRun, Index: p.Index, Digest: digest}); err != nil {
		return res, err
	}
	recs[p.Index] = runRec{data: data, res: res}
	j.mu.Lock()
	j.executed++
	j.mu.Unlock()
	s.reg.Counter("service.runs_executed").Inc()
	rlog.Info("run executed", "digest", digest,
		"wall_ms", time.Since(start).Milliseconds(), "cycles", uint64(res.Cycles))
	if reg != nil {
		j.reg.Merge(reg.Snapshot())
	}
	return res, nil
}

// settle moves the job to a terminal state.
func (j *Job) settle(state State, arts []Artifact, errMsg, tlDigest string) {
	j.mu.Lock()
	j.state = state
	j.artifacts = arts
	j.errMsg = errMsg
	j.timelineDigest = tlDigest
	j.finished = time.Now()
	j.pool = nil
	j.cancelRun = nil
	j.notifyLocked()
	j.mu.Unlock()
}

// storeArtifacts assembles the job's artifacts and puts each in the store.
// Per-run artifacts were already stored during execution; re-putting them
// deduplicates to the same digest.
func (s *Service) storeArtifacts(spec JobSpec, points []Point, recs []runRec) ([]Artifact, error) {
	blobs, err := AssembleArtifacts(spec, points, recs)
	if err != nil {
		return nil, err
	}
	arts := make([]Artifact, len(blobs))
	for i, b := range blobs {
		digest, _, err := s.store.Put(b.Data)
		if err != nil {
			return nil, err
		}
		arts[i] = Artifact{Name: b.Name, Digest: digest, Size: int64(len(b.Data))}
	}
	return arts, nil
}

// AggregateSnapshot merges the service registry with every job's registry —
// the /metrics view: one process-wide aggregate across all jobs — plus
// store gauges and Go runtime telemetry sampled at scrape time. The
// runtime series land in the service registry so GC-pause observations
// accumulate across scrapes instead of double-counting.
func (s *Service) AggregateSnapshot() *metrics.Snapshot {
	s.runtime.Sample(s.reg)
	agg := metrics.NewRegistry()
	agg.Merge(s.reg.Snapshot())
	for _, j := range s.Jobs() {
		agg.Merge(j.reg.Snapshot())
	}
	agg.Gauge("store.objects").Set(int64(s.store.Len()))
	agg.Gauge("store.dedup_hits").Set(int64(s.store.DedupHits()))
	return agg.Snapshot()
}
