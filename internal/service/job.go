// Package service is the long-running simulation daemon behind cmd/hdpatd:
// an HTTP+JSON job API over the existing batch engine. Jobs — single
// simulations, baseline comparisons, or scheme x benchmark sweeps — queue
// through a bounded dispatcher onto internal/runner pools, stream live
// progress (SSE or long-poll) and per-job metrics, and persist their
// Result/Breakdown/report.md artifacts content-addressed (SHA-256) in an
// on-disk store. Every job keeps a durable journal (accepted -> one entry
// per completed run -> terminal), so a restarted daemon resumes an
// interrupted sweep from the last finished run instead of from scratch;
// because runs are deterministic, an interrupted-then-resumed job produces
// artifacts byte-identical to an uninterrupted one.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"hdpat/internal/config"
	"hdpat/internal/noc"
)

// Kind names what a job simulates.
const (
	// KindSimulate runs one scheme on one benchmark.
	KindSimulate = "simulate"
	// KindCompare runs one scheme and the baseline on one benchmark and
	// reports the speedup.
	KindCompare = "compare"
	// KindSweep runs a schemes x benchmarks cross-product, each benchmark's
	// baseline first — the CompareAll shape, and the job kind checkpoint/
	// restore targets.
	KindSweep = "sweep"
)

// JobSpec is the client-submitted description of a job. Its canonical JSON
// encoding determines the job ID, so resubmitting an identical spec joins
// the existing job instead of re-running it.
type JobSpec struct {
	// Kind is one of KindSimulate, KindCompare, KindSweep.
	Kind string `json:"kind"`
	// Scheme and Benchmark name a simulate/compare job's cell.
	Scheme    string `json:"scheme,omitempty"`
	Benchmark string `json:"benchmark,omitempty"`
	// Schemes and Benchmarks span a sweep's cross-product.
	Schemes    []string `json:"schemes,omitempty"`
	Benchmarks []string `json:"benchmarks,omitempty"`
	// OpsBudget is the per-CU operation budget (0 = the daemon's default).
	OpsBudget int `json:"ops_budget,omitempty"`
	// Seed makes the job's runs reproducible; it is part of the identity.
	Seed int64 `json:"seed,omitempty"`
	// Workers bounds how many of the job's runs execute concurrently
	// (0 = the daemon's default).
	Workers int `json:"workers,omitempty"`
	// MeshW and MeshH override the daemon's wafer geometry for this job
	// (0 = the daemon's default mesh). Both must be set together; bounds
	// follow config.MaxMeshDim/MaxTiles so a hostile spec is rejected at
	// submission instead of panicking inside geometry construction. The
	// fields are omitempty, so specs that leave them unset keep their
	// pre-existing canonical encoding and job identity.
	MeshW int `json:"mesh_w,omitempty"`
	MeshH int `json:"mesh_h,omitempty"`
	// Routing overrides the daemon's NoC routing policy for this job's runs
	// ("" = the daemon's default, "xy" or "deflect"). Unknown names are
	// rejected at submission with the routing policies the build knows.
	// Omitempty keeps pre-existing job identities intact.
	Routing string `json:"routing,omitempty"`
	// Attribution attaches the per-request latency ledger to every run and
	// adds a rendered report.md artifact.
	Attribution bool `json:"attribution,omitempty"`
	// Metrics gives every run a private metrics registry folded into the
	// job's registry (served on /v1/jobs/{id}/metrics). Live-only: metric
	// values never become artifacts, so they do not affect resume identity.
	Metrics bool `json:"metrics,omitempty"`
}

// Validate reports whether the spec is well-formed for its kind.
func (s JobSpec) Validate() error {
	switch s.Kind {
	case KindSimulate, KindCompare:
		if s.Scheme == "" || s.Benchmark == "" {
			return fmt.Errorf("service: %s job needs scheme and benchmark", s.Kind)
		}
		if len(s.Schemes) > 0 || len(s.Benchmarks) > 0 {
			return fmt.Errorf("service: %s job must not set schemes/benchmarks lists", s.Kind)
		}
	case KindSweep:
		if len(s.Schemes) == 0 || len(s.Benchmarks) == 0 {
			return fmt.Errorf("service: sweep job needs schemes and benchmarks lists")
		}
		if s.Scheme != "" || s.Benchmark != "" {
			return fmt.Errorf("service: sweep job must not set scheme/benchmark")
		}
	case "":
		return fmt.Errorf("service: job kind is required (%s, %s or %s)",
			KindSimulate, KindCompare, KindSweep)
	default:
		return fmt.Errorf("service: unknown job kind %q", s.Kind)
	}
	if s.OpsBudget < 0 || s.Workers < 0 {
		return fmt.Errorf("service: ops_budget and workers must be >= 0")
	}
	if s.MeshW != 0 || s.MeshH != 0 {
		if s.MeshW <= 0 || s.MeshH <= 0 {
			return fmt.Errorf("service: mesh_w and mesh_h must be set together and positive")
		}
		if s.MeshW < 3 || s.MeshH < 3 {
			return fmt.Errorf("service: mesh %dx%d too small; need at least 3x3", s.MeshW, s.MeshH)
		}
		// Per-dimension cap first, so the product below cannot overflow.
		if s.MeshW > config.MaxMeshDim || s.MeshH > config.MaxMeshDim {
			return fmt.Errorf("service: mesh dimension exceeds %d", config.MaxMeshDim)
		}
		if s.MeshW*s.MeshH > config.MaxTiles {
			return fmt.Errorf("service: mesh %dx%d exceeds the %d-tile bound",
				s.MeshW, s.MeshH, config.MaxTiles)
		}
	}
	if !noc.ValidRouting(s.Routing) {
		return fmt.Errorf("service: unknown routing %q (valid: %s)",
			s.Routing, strings.Join(noc.RoutingNames(), ", "))
	}
	return nil
}

// ID derives the job's content-addressed identity: the SHA-256 of the
// spec's canonical JSON encoding, truncated to 16 hex digits. Identical
// specs always map to the same job.
func (s JobSpec) ID() string {
	return s.Digest()[:16]
}

// Digest is the full SHA-256 hex of the spec's canonical JSON encoding —
// the untruncated form of ID, used as the spec_digest correlation
// attribute on structured log lines.
func (s JobSpec) Digest() string {
	data, err := json.Marshal(s)
	if err != nil {
		// JobSpec holds only marshalable fields; this cannot happen.
		panic(fmt.Sprintf("service: marshal spec: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Point is one run of a job: a (scheme, benchmark) cell at the job's budget
// and seed. Index is the run's position in the job's deterministic order —
// the unit of checkpoint/restore.
type Point struct {
	Index     int
	Scheme    string
	Benchmark string
}

// Points expands the spec into its deterministic run list. Compare and
// sweep jobs are benchmark-major with the baseline leading each benchmark
// group, mirroring CompareAll's layout.
func (s JobSpec) Points() []Point {
	var pts []Point
	add := func(scheme, bench string) {
		pts = append(pts, Point{Index: len(pts), Scheme: scheme, Benchmark: bench})
	}
	switch s.Kind {
	case KindSimulate:
		add(s.Scheme, s.Benchmark)
	case KindCompare:
		add("baseline", s.Benchmark)
		add(s.Scheme, s.Benchmark)
	case KindSweep:
		for _, bench := range s.Benchmarks {
			add("baseline", bench)
			for _, scheme := range s.Schemes {
				add(scheme, bench)
			}
		}
	}
	return pts
}

// State is a job's lifecycle position.
type State string

const (
	// StateQueued jobs wait for a dispatcher slot (including recovered jobs
	// waiting to resume).
	StateQueued State = "queued"
	// StateRunning jobs are executing on a runner pool.
	StateRunning State = "running"
	// StateDone jobs completed; their artifacts are in the store.
	StateDone State = "done"
	// StateFailed jobs hit a run error.
	StateFailed State = "failed"
	// StateCancelled jobs were cancelled by a client.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Artifact names one stored output of a completed job.
type Artifact struct {
	// Name is the artifact's role within its job ("run-0-baseline-FIR.json",
	// "comparisons.json", "report.md").
	Name string `json:"name"`
	// Digest is the SHA-256 hex of the content; fetch it from
	// /v1/artifacts/{digest}. Identical content shares one digest across
	// jobs (deduplication).
	Digest string `json:"digest"`
	// Size is the content length in bytes.
	Size int64 `json:"size"`
}

// ProgressInfo is the live progress block of a job status.
type ProgressInfo struct {
	// Done and Total count settled vs planned runs, including runs restored
	// from the journal.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Executed counts runs actually simulated by this process; Resumed
	// counts runs restored from the journal without re-executing.
	Executed int `json:"executed"`
	Resumed  int `json:"resumed"`
	// Queued and Inflight mirror the runner pool's live state while the job
	// runs (runner.Pool.Snapshot).
	Queued   int `json:"queued"`
	Inflight int `json:"inflight"`
}

// Status is the JSON representation of a job served by the API.
type Status struct {
	ID    string  `json:"id"`
	Spec  JobSpec `json:"spec"`
	State State   `json:"state"`
	// Rev increments on every observable change; long-poll clients pass it
	// back as ?since= to wait for the next change.
	Rev      int64        `json:"rev"`
	Progress ProgressInfo `json:"progress"`
	// Artifacts lists the job's stored outputs once it is done.
	Artifacts []Artifact `json:"artifacts,omitempty"`
	// Timeline is the store digest of the job's persisted wall-clock trace
	// once terminal (GET /v1/jobs/{id}/timeline serves it). Wall-clock data
	// is nondeterministic, so the timeline is deliberately not an Artifact:
	// the artifact list stays byte-identical across interrupted-and-resumed
	// executions.
	Timeline string `json:"timeline,omitempty"`
	Error    string `json:"error,omitempty"`
	Created  string `json:"created,omitempty"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
}

// stamp renders a timestamp for Status, empty when unset.
func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339)
}
