package service

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hdpat/internal/metrics"
	"hdpat/internal/wafer"
)

// serveTest mounts a service over fakeRun behind httptest.
func serveTest(t *testing.T, run RunFunc) (*Service, *httptest.Server) {
	t.Helper()
	svc := open(t, t.TempDir(), run)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return svc, srv
}

func postJob(t *testing.T, srv *httptest.Server, spec JobSpec) (Status, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode status: %v", err)
		}
	}
	return st, resp.StatusCode
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// pollDone long-polls /progress until the job is terminal, carrying the
// revision cursor forward like a real client.
func pollDone(t *testing.T, srv *httptest.Server, id string) Status {
	t.Helper()
	since := int64(-1)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var st Status
		url := fmt.Sprintf("%s/v1/jobs/%s/progress?since=%d&timeout=1s", srv.URL, id, since)
		if code := getJSON(t, url, &st); code != http.StatusOK {
			t.Fatalf("progress returned %d", code)
		}
		if st.State.Terminal() {
			return st
		}
		since = st.Rev
	}
	t.Fatal("job never settled")
	return Status{}
}

func TestHTTPSubmitPollFetchArtifact(t *testing.T) {
	_, srv := serveTest(t, nil)
	spec := JobSpec{Kind: KindCompare, Scheme: "hdpat", Benchmark: "FIR", Seed: 1, OpsBudget: 8}

	st, code := postJob(t, srv, spec)
	if code != http.StatusCreated {
		t.Fatalf("first submit = %d", code)
	}
	if st.ID != spec.ID() || st.State.Terminal() && st.State != StateDone {
		t.Fatalf("submit status = %+v", st)
	}
	// Identical resubmission joins the job with 200.
	if _, code := postJob(t, srv, spec); code != http.StatusOK {
		t.Fatalf("resubmit = %d", code)
	}

	final := pollDone(t, srv, st.ID)
	if final.State != StateDone || len(final.Artifacts) != 3 {
		t.Fatalf("final = %+v", final)
	}

	// Fetch each artifact and verify its content hashes to its address.
	for _, a := range final.Artifacts {
		resp, err := http.Get(srv.URL + "/v1/artifacts/" + a.Digest)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("artifact %s: %d", a.Name, resp.StatusCode)
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != a.Digest {
			t.Errorf("artifact %s content does not match digest", a.Name)
		}
	}

	// The artifact index lists every stored digest.
	var idx map[string]ArtifactInfo
	if code := getJSON(t, srv.URL+"/v1/artifacts", &idx); code != http.StatusOK {
		t.Fatalf("index = %d", code)
	}
	for _, a := range final.Artifacts {
		if _, ok := idx[a.Digest]; !ok {
			t.Errorf("index missing %s", a.Digest)
		}
	}

	// Job listing includes the job.
	var list []Status
	if code := getJSON(t, srv.URL+"/v1/jobs", &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("list = %d (%d jobs)", code, len(list))
	}
}

func TestHTTPSSEProgress(t *testing.T) {
	// Gate each run so the stream observes at least one non-terminal event.
	release := make(chan struct{})
	run := func(ctx context.Context, spec JobSpec, p Point, reg *metrics.Registry) (wafer.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return wafer.Result{}, ctx.Err()
		}
		return fakeRun(ctx, spec, p, reg)
	}
	_, srv := serveTest(t, run)
	st, _ := postJob(t, srv, JobSpec{Kind: KindSimulate, Scheme: "hdpat", Benchmark: "FIR"})

	req, _ := http.NewRequest("GET", srv.URL+"/v1/jobs/"+st.ID+"/progress", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	close(release)

	// Read events until the terminal one arrives; each data line must be a
	// parseable Status with a non-decreasing revision.
	sc := bufio.NewScanner(resp.Body)
	var lastRev int64 = -1
	var events int
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Status
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE data %q: %v", line, err)
		}
		events++
		if ev.Rev < lastRev {
			t.Fatalf("revision went backwards: %d after %d", ev.Rev, lastRev)
		}
		lastRev = ev.Rev
		if ev.State.Terminal() {
			if ev.State != StateDone {
				t.Fatalf("terminal state %s (%s)", ev.State, ev.Error)
			}
			return // stream ends after the terminal event
		}
	}
	t.Fatalf("stream ended after %d events without a terminal status", events)
}

func TestHTTPCancel(t *testing.T) {
	block := make(chan struct{})
	run := func(ctx context.Context, spec JobSpec, p Point, reg *metrics.Registry) (wafer.Result, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return wafer.Result{}, ctx.Err()
	}
	_, srv := serveTest(t, run)
	st, _ := postJob(t, srv, JobSpec{Kind: KindSimulate, Scheme: "hdpat", Benchmark: "FIR"})

	req, _ := http.NewRequest("DELETE", srv.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d", resp.StatusCode)
	}
	final := pollDone(t, srv, st.ID)
	if final.State != StateCancelled {
		t.Fatalf("state %s after cancel", final.State)
	}
	// Cancelling a terminal job conflicts.
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel = %d", resp.StatusCode)
	}
}

func TestHTTPJobMetricsAndAggregate(t *testing.T) {
	svc, srv := serveTest(t, nil)
	spec := JobSpec{Kind: KindCompare, Scheme: "hdpat", Benchmark: "FIR", Metrics: true}
	st, _ := postJob(t, srv, spec)
	pollDone(t, srv, st.ID)

	// Per-job exposition carries the fake simulator's series and the job
	// pool's runner series.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"fake_runs", "runner_runs"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("job metrics missing %s:\n%s", want, text)
		}
	}
	var snap metrics.Snapshot
	if code := getJSON(t, srv.URL+"/v1/jobs/"+st.ID+"/metrics.json", &snap); code != http.StatusOK {
		t.Fatalf("metrics.json = %d", code)
	}
	if snap.Counters["fake.runs"] != 2 {
		t.Errorf("fake.runs = %d, want 2", snap.Counters["fake.runs"])
	}

	// The aggregate view folds service counters and every job registry.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"service_jobs_accepted", "service_runs_executed", "fake_runs", "store_objects"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("aggregate missing %s", want)
		}
	}
	agg := svc.AggregateSnapshot()
	if agg.Counters["service.jobs_done"] != 1 || agg.Counters["fake.runs"] != 2 {
		t.Errorf("aggregate snapshot = %+v", agg.Counters)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, srv := serveTest(t, nil)
	// Malformed and invalid specs.
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed spec = %d", resp.StatusCode)
	}
	if _, code := postJob(t, srv, JobSpec{Kind: "nope"}); code != http.StatusBadRequest {
		t.Errorf("invalid kind = %d", code)
	}
	if _, code := postJob(t, srv, JobSpec{}); code != http.StatusBadRequest {
		t.Errorf("empty spec = %d", code)
	}
	// Unknown resources.
	if code := getJSON(t, srv.URL+"/v1/jobs/doesnotexist", nil); code != http.StatusNotFound {
		t.Errorf("unknown job = %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/artifacts/zzzz", nil); code != http.StatusNotFound {
		t.Errorf("bad digest = %d", code)
	}
	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz = %d", code)
	}
	// Bad progress parameters.
	if code := getJSON(t, srv.URL+"/v1/jobs/doesnotexist/progress", nil); code != http.StatusNotFound {
		t.Errorf("progress of unknown job = %d", code)
	}
}

// Hostile mesh geometry in a submitted spec must come back as HTTP 400 —
// never reach a run where it would panic inside mesh construction. Covers
// both the JobSpec.Validate bounds and the Options.CheckSpec seam cmd/hdpatd
// wires to the full config validation.
func TestHostileMeshSpecRejected(t *testing.T) {
	checked := 0
	svc, err := Open(Options{
		Dir: t.TempDir(),
		Run: fakeRun,
		CheckSpec: func(spec JobSpec) error {
			checked++
			if spec.Benchmark == "vetoed" {
				return fmt.Errorf("daemon config rejects this spec")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer func() { srv.Close(); svc.Close() }()

	base := JobSpec{Kind: KindSimulate, Scheme: "hdpat", Benchmark: "FIR", OpsBudget: 4}
	hostile := []func(*JobSpec){
		func(s *JobSpec) { s.MeshW = 0; s.MeshH = 30 },            // one-sided override
		func(s *JobSpec) { s.MeshW = -4; s.MeshH = -4 },           // negative
		func(s *JobSpec) { s.MeshW = 2; s.MeshH = 2 },             // below minimum
		func(s *JobSpec) { s.MeshW = 1 << 20; s.MeshH = 1 << 20 }, // would overflow W*H
		func(s *JobSpec) { s.MeshW = 1024; s.MeshH = 1024 },       // over the tile cap
		func(s *JobSpec) { s.Routing = "torus" },                  // unknown routing policy
	}
	for i, mutate := range hostile {
		spec := base
		mutate(&spec)
		if _, code := postJob(t, srv, spec); code != http.StatusBadRequest {
			t.Errorf("hostile spec %d accepted with %d, want 400", i, code)
		}
	}
	// The CheckSpec veto also surfaces as a client error.
	spec := base
	spec.Benchmark = "vetoed"
	if _, code := postJob(t, srv, spec); code != http.StatusBadRequest {
		t.Errorf("CheckSpec veto = %d, want 400", code)
	}
	if checked == 0 {
		t.Error("CheckSpec never invoked")
	}
	// A sane 30x30 override passes validation and runs.
	spec = base
	spec.MeshW, spec.MeshH = 30, 30
	st, code := postJob(t, srv, spec)
	if code != http.StatusCreated {
		t.Fatalf("valid 30x30 spec = %d, want 201", code)
	}
	if got := pollDone(t, srv, st.ID); got.State != StateDone {
		t.Fatalf("30x30 job state %s: %s", got.State, got.Error)
	}
}

// Mesh override fields are omitempty: specs that never set them keep their
// pre-existing canonical encoding, so job IDs from earlier daemon versions
// still deduplicate against the same spec submitted today.
func TestMeshFieldsOmittedFromCanonicalSpec(t *testing.T) {
	spec := JobSpec{Kind: KindSimulate, Scheme: "hdpat", Benchmark: "FIR"}
	data, _ := json.Marshal(spec)
	if strings.Contains(string(data), "mesh") {
		t.Fatalf("unset mesh fields leak into canonical encoding: %s", data)
	}
}
