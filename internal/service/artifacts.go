package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"hdpat/internal/metrics"
)

// Blob is one assembled artifact before storage: its name within the job
// and its canonical bytes.
type Blob struct {
	Name string
	Data []byte
}

// runName is the deterministic per-run artifact name.
func runName(p Point) string {
	return fmt.Sprintf("run-%d-%s-%s.json", p.Index, p.Scheme, p.Benchmark)
}

// comparisonRow is one row of the comparisons.json artifact.
type comparisonRow struct {
	Scheme         string  `json:"scheme"`
	Benchmark      string  `json:"benchmark"`
	BaselineCycles uint64  `json:"baseline_cycles"`
	Cycles         uint64  `json:"cycles"`
	Speedup        float64 `json:"speedup"`
}

// AssembleArtifacts renders a finished job's artifact set from its run
// records, deterministically: per-run canonical result JSON, a
// comparisons.json speedup table for compare/sweep jobs, and a report.md of
// stitched latency breakdowns when the spec asked for attribution. The
// output depends only on (spec, results), so an interrupted-then-resumed
// job assembles bytes identical to an uninterrupted one.
func AssembleArtifacts(spec JobSpec, points []Point, recs []runRec) ([]Blob, error) {
	blobs := make([]Blob, 0, len(points)+2)
	for i, p := range points {
		if recs[i].data == nil {
			return nil, fmt.Errorf("service: run %d has no record", i)
		}
		blobs = append(blobs, Blob{Name: runName(p), Data: recs[i].data})
	}

	if spec.Kind == KindCompare || spec.Kind == KindSweep {
		var rows []comparisonRow
		// Points are benchmark-major with the baseline leading each group.
		for i := 0; i < len(points); i++ {
			if points[i].Scheme != "baseline" {
				continue
			}
			base := recs[i].res
			for k := i + 1; k < len(points) && points[k].Scheme != "baseline"; k++ {
				res := recs[k].res
				rows = append(rows, comparisonRow{
					Scheme:         points[k].Scheme,
					Benchmark:      points[k].Benchmark,
					BaselineCycles: uint64(base.Cycles),
					Cycles:         uint64(res.Cycles),
					Speedup:        res.Speedup(base),
				})
			}
		}
		data, err := json.MarshalIndent(rows, "", " ")
		if err != nil {
			return nil, fmt.Errorf("service: marshal comparisons: %w", err)
		}
		blobs = append(blobs, Blob{Name: "comparisons.json", Data: data})
	}

	if spec.Attribution {
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "# Job report\n\n")
		for i := range points {
			if recs[i].res.Breakdown == nil {
				continue
			}
			recs[i].res.Breakdown.WriteMarkdown(&buf)
		}
		blobs = append(blobs, Blob{Name: "report.md", Data: buf.Bytes()})
	}
	return blobs, nil
}

// Materialize executes every run of spec serially through run and returns
// the job's assembled artifacts without a service or store — the reference
// path: a daemon processing the same spec stores byte-identical artifacts.
// cmd/hdpatd's -digest mode uses it to cross-check a served job against a
// direct run.
func Materialize(ctx context.Context, spec JobSpec, run RunFunc) ([]Blob, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	points := spec.Points()
	recs := make([]runRec, len(points))
	for i, p := range points {
		var reg *metrics.Registry
		if spec.Metrics {
			reg = metrics.NewRegistry()
		}
		res, err := run(ctx, spec, p, reg)
		if err != nil {
			return nil, fmt.Errorf("service: run %d (%s/%s): %w", i, p.Scheme, p.Benchmark, err)
		}
		data, err := marshalResult(res)
		if err != nil {
			return nil, err
		}
		recs[i] = runRec{data: data, res: res}
	}
	return AssembleArtifacts(spec, points, recs)
}
