package service

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hdpat/internal/attr"
	"hdpat/internal/metrics"
	"hdpat/internal/sim"
	"hdpat/internal/wafer"
)

// fakeRun is a deterministic stand-in simulator: the result depends only on
// (scheme, benchmark, spec seed/budget), like the real engine. Baselines
// run longer than schemes so speedups come out above 1.
func fakeRun(ctx context.Context, spec JobSpec, p Point, reg *metrics.Registry) (wafer.Result, error) {
	if err := ctx.Err(); err != nil {
		return wafer.Result{}, err
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s/%d/%d", p.Scheme, p.Benchmark, spec.Seed, spec.OpsBudget)
	cycles := 2000 + h.Sum64()%1000
	if p.Scheme == "baseline" {
		cycles += 5000
	}
	res := wafer.Result{
		Scheme:    p.Scheme,
		Benchmark: p.Benchmark,
		Cycles:    sim.VTime(cycles),
		TotalOps:  cycles / 10,
		Events:    cycles * 3,
	}
	if spec.Attribution {
		res.Breakdown = &attr.Breakdown{
			Scheme:    p.Scheme,
			Benchmark: p.Benchmark,
			Cycles:    cycles,
			Requests:  cycles / 100,
			Sources:   map[string]uint64{"iommu": cycles / 200, "peer": cycles / 200},
		}
	}
	if reg != nil {
		reg.Counter("fake.runs").Inc()
		reg.Counter("fake.cycles").Add(cycles)
	}
	return res, nil
}

// open starts a service over fakeRun in dir.
func open(t *testing.T, dir string, run RunFunc) *Service {
	t.Helper()
	if run == nil {
		run = fakeRun
	}
	svc, err := Open(Options{Dir: dir, Run: run})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return svc
}

// waitState polls until the job reaches a terminal state.
func waitState(t *testing.T, j *Job, want State) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	since := int64(-1)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		st := j.Wait(ctx, since)
		cancel()
		since = st.Rev
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s settled %s (err %q), want %s", st.ID, st.State, st.Error, want)
		}
	}
	t.Fatalf("job %s never reached %s", j.ID, want)
	return Status{}
}

func sweepSpec() JobSpec {
	return JobSpec{
		Kind:        KindSweep,
		Schemes:     []string{"hdpat", "transfw"},
		Benchmarks:  []string{"FIR", "SPMV", "PR"},
		OpsBudget:   8,
		Seed:        1,
		Attribution: true,
	}
}

func TestSpecValidateAndID(t *testing.T) {
	bad := []JobSpec{
		{},
		{Kind: "nope"},
		{Kind: KindSimulate},
		{Kind: KindCompare, Scheme: "hdpat"},
		{Kind: KindSweep, Schemes: []string{"hdpat"}},
		{Kind: KindSweep, Schemes: []string{"x"}, Benchmarks: []string{"y"}, Scheme: "z"},
		{Kind: KindCompare, Scheme: "hdpat", Benchmark: "FIR", OpsBudget: -1},
		{Kind: KindSimulate, Scheme: "hdpat", Benchmark: "FIR", Routing: "torus"},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("spec %d (%+v) validated", i, spec)
		}
	}
	good := JobSpec{Kind: KindSimulate, Scheme: "hdpat", Benchmark: "FIR", Routing: "deflect"}
	if err := good.Validate(); err != nil {
		t.Errorf("deflect routing spec rejected: %v", err)
	}
	a := sweepSpec()
	b := sweepSpec()
	if a.ID() != b.ID() {
		t.Errorf("identical specs hash differently: %s vs %s", a.ID(), b.ID())
	}
	b.Seed = 2
	if a.ID() == b.ID() {
		t.Errorf("different seeds share ID %s", a.ID())
	}
}

func TestPointsLayout(t *testing.T) {
	pts := sweepSpec().Points()
	// Benchmark-major, baseline leading each group: 3 benchmarks x (1+2).
	if len(pts) != 9 {
		t.Fatalf("got %d points, want 9", len(pts))
	}
	wantScheme := []string{"baseline", "hdpat", "transfw"}
	for i, p := range pts {
		if p.Index != i {
			t.Errorf("point %d has index %d", i, p.Index)
		}
		if p.Scheme != wantScheme[i%3] {
			t.Errorf("point %d scheme %s, want %s", i, p.Scheme, wantScheme[i%3])
		}
	}
	if got := (JobSpec{Kind: KindCompare, Scheme: "hdpat", Benchmark: "FIR"}).Points(); len(got) != 2 ||
		got[0].Scheme != "baseline" || got[1].Scheme != "hdpat" {
		t.Errorf("compare points = %+v", got)
	}
}

func TestStorePutGetDedup(t *testing.T) {
	st, err := OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	d1, existed, err := st.Put([]byte("hello"))
	if err != nil || existed {
		t.Fatalf("first put: digest %s existed %v err %v", d1, existed, err)
	}
	d2, existed, err := st.Put([]byte("hello"))
	if err != nil || !existed || d1 != d2 {
		t.Fatalf("second put: digest %s existed %v err %v", d2, existed, err)
	}
	if st.DedupHits() != 1 || st.Len() != 1 {
		t.Errorf("dedup %d len %d", st.DedupHits(), st.Len())
	}
	data, err := st.Get(d1)
	if err != nil || string(data) != "hello" {
		t.Fatalf("get: %q %v", data, err)
	}
	if _, err := st.Get("../../etc/passwd"); err == nil {
		t.Error("traversal digest accepted")
	}
	if _, err := st.Get("0000000000000000000000000000000000000000000000000000000000000000"); err == nil {
		t.Error("missing digest returned data")
	}
}

func TestStoreIndexRebuild(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenStore(dir, nil)
	d, _, err := st.Put([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	// Reopen without the index file: the object tree is authoritative.
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Has(d) {
		t.Errorf("rebuilt index lost %s", d)
	}
}

func TestCompareJobLifecycleAndDedup(t *testing.T) {
	dir := t.TempDir()
	svc := open(t, dir, nil)
	defer svc.Close()

	spec := JobSpec{Kind: KindCompare, Scheme: "hdpat", Benchmark: "FIR", Seed: 3, OpsBudget: 8}
	j, existed, err := svc.Submit(spec)
	if err != nil || existed {
		t.Fatalf("submit: existed %v err %v", existed, err)
	}
	st := waitState(t, j, StateDone)
	if len(st.Artifacts) != 3 { // run-0, run-1, comparisons.json
		t.Fatalf("artifacts = %+v", st.Artifacts)
	}
	if st.Progress.Done != 2 || st.Progress.Executed != 2 || st.Progress.Resumed != 0 {
		t.Errorf("progress = %+v", st.Progress)
	}
	for _, a := range st.Artifacts {
		data, err := svc.Store().Get(a.Digest)
		if err != nil || int64(len(data)) != a.Size {
			t.Errorf("artifact %s: %d bytes err %v, want %d", a.Name, len(data), err, a.Size)
		}
	}

	// Resubmitting the identical spec joins the existing job.
	j2, existed, err := svc.Submit(spec)
	if err != nil || !existed || j2 != j {
		t.Fatalf("resubmit: existed %v err %v", existed, err)
	}
	if svc.Registry().Counter("service.jobs_deduped").Value() != 1 {
		t.Error("dedup counter not bumped")
	}
}

func TestArtifactDedupAcrossJobs(t *testing.T) {
	svc := open(t, t.TempDir(), nil)
	defer svc.Close()

	// A simulate job and a compare job share the (hdpat, FIR) cell at the
	// same budget/seed: the run artifact content is identical, so the store
	// keeps one object.
	simSpec := JobSpec{Kind: KindSimulate, Scheme: "hdpat", Benchmark: "FIR", Seed: 3, OpsBudget: 8}
	cmp := JobSpec{Kind: KindCompare, Scheme: "hdpat", Benchmark: "FIR", Seed: 3, OpsBudget: 8}
	js, _, err := svc.Submit(simSpec)
	if err != nil {
		t.Fatal(err)
	}
	stSim := waitState(t, js, StateDone)
	jc, _, err := svc.Submit(cmp)
	if err != nil {
		t.Fatal(err)
	}
	stCmp := waitState(t, jc, StateDone)

	simDigest := stSim.Artifacts[0].Digest
	var cmpDigest string
	for _, a := range stCmp.Artifacts {
		if a.Name == "run-1-hdpat-FIR.json" {
			cmpDigest = a.Digest
		}
	}
	if simDigest == "" || simDigest != cmpDigest {
		t.Fatalf("identical cells not deduplicated: %s vs %s", simDigest, cmpDigest)
	}
	if svc.Store().DedupHits() == 0 {
		t.Error("store recorded no dedup hits")
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	block := make(chan struct{})
	var started sync.Once
	startedCh := make(chan struct{})
	run := func(ctx context.Context, spec JobSpec, p Point, reg *metrics.Registry) (wafer.Result, error) {
		started.Do(func() { close(startedCh) })
		select {
		case <-block:
		case <-ctx.Done():
			return wafer.Result{}, ctx.Err()
		}
		return fakeRun(ctx, spec, p, reg)
	}
	svc := open(t, t.TempDir(), run)
	defer svc.Close()

	// First job occupies the single dispatcher slot...
	j1, _, err := svc.Submit(JobSpec{Kind: KindSimulate, Scheme: "hdpat", Benchmark: "FIR"})
	if err != nil {
		t.Fatal(err)
	}
	<-startedCh
	// ...so the second stays queued and cancels instantly.
	j2, _, err := svc.Submit(JobSpec{Kind: KindSimulate, Scheme: "hdpat", Benchmark: "PR"})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Cancel(j2.ID); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if st := j2.Status(); st.State != StateCancelled {
		t.Fatalf("queued job state %s after cancel", st.State)
	}

	// Cancelling the running job interrupts its context.
	if err := svc.Cancel(j1.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	st := waitState(t, j1, StateCancelled)
	if st.State != StateCancelled {
		t.Fatalf("running job state %s", st.State)
	}
	// Terminal jobs refuse another cancel.
	if err := svc.Cancel(j1.ID); err == nil {
		t.Error("cancel of terminal job succeeded")
	}
	if err := svc.Cancel("nope"); err != ErrNotFound {
		t.Errorf("cancel unknown = %v", err)
	}
}

func TestRunErrorFailsJob(t *testing.T) {
	run := func(ctx context.Context, spec JobSpec, p Point, reg *metrics.Registry) (wafer.Result, error) {
		if p.Scheme == "hdpat" {
			return wafer.Result{}, fmt.Errorf("boom")
		}
		return fakeRun(ctx, spec, p, reg)
	}
	svc := open(t, t.TempDir(), run)
	defer svc.Close()
	j, _, err := svc.Submit(JobSpec{Kind: KindCompare, Scheme: "hdpat", Benchmark: "FIR"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := j.Status(); st.State.Terminal() {
			if st.State != StateFailed || st.Error == "" {
				t.Fatalf("state %s err %q", st.State, st.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never settled")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestKillAndRestartResumesSweep is the acceptance scenario: a sweep
// interrupted mid-flight (daemon torn down without terminal journal
// entries) and resumed by a fresh service produces artifacts byte-identical
// (same SHA-256 set) to the same sweep run uninterrupted, and the
// already-completed runs are not re-executed.
func TestKillAndRestartResumesSweep(t *testing.T) {
	spec := sweepSpec()
	total := len(spec.Points())
	const allowBeforeKill = 4

	// Control: the sweep uninterrupted, in its own state dir.
	ctrl := open(t, t.TempDir(), nil)
	jc, _, err := ctrl.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := waitState(t, jc, StateDone)
	ctrl.Close()

	// Interrupted: the run function blocks after allowBeforeKill runs, then
	// the service is torn down (the "kill").
	dir := t.TempDir()
	var executed1 atomic.Int64
	blocked := make(chan struct{})
	var once sync.Once
	gated := func(ctx context.Context, s JobSpec, p Point, reg *metrics.Registry) (wafer.Result, error) {
		if executed1.Add(1) > allowBeforeKill {
			once.Do(func() { close(blocked) })
			<-ctx.Done()
			return wafer.Result{}, ctx.Err()
		}
		return fakeRun(ctx, s, p, reg)
	}
	svc1 := open(t, dir, gated)
	if _, _, err := svc1.Submit(spec); err != nil {
		t.Fatal(err)
	}
	select {
	case <-blocked:
	case <-time.After(10 * time.Second):
		t.Fatal("run function never reached the gate")
	}
	svc1.Close() // kill: no terminal journal entry

	// Restart: a fresh service over the same dir resumes the sweep.
	var executed2 atomic.Int64
	var executedPoints sync.Map
	counting := func(ctx context.Context, s JobSpec, p Point, reg *metrics.Registry) (wafer.Result, error) {
		executed2.Add(1)
		if _, dup := executedPoints.LoadOrStore(p.Index, true); dup {
			t.Errorf("run %d executed twice after restart", p.Index)
		}
		return fakeRun(ctx, s, p, reg)
	}
	svc2 := open(t, dir, counting)
	defer svc2.Close()
	j, ok := svc2.Get(spec.ID())
	if !ok {
		t.Fatal("recovered service lost the job")
	}
	got := waitState(t, j, StateDone)

	// Already-completed runs were restored, not re-executed.
	if n := int(executed2.Load()); n != total-allowBeforeKill {
		t.Errorf("restarted daemon executed %d runs, want %d", n, total-allowBeforeKill)
	}
	if got.Progress.Resumed != allowBeforeKill || got.Progress.Executed != total-allowBeforeKill {
		t.Errorf("resume accounting = %+v", got.Progress)
	}
	if v := svc2.Registry().Counter("service.runs_resumed").Value(); v != allowBeforeKill {
		t.Errorf("runs_resumed = %d", v)
	}

	// Golden-digest equality: same artifact names mapping to the same
	// SHA-256 digests as the uninterrupted control sweep.
	if len(got.Artifacts) != len(want.Artifacts) {
		t.Fatalf("artifact count %d vs control %d", len(got.Artifacts), len(want.Artifacts))
	}
	for i, a := range got.Artifacts {
		w := want.Artifacts[i]
		if a.Name != w.Name || a.Digest != w.Digest {
			t.Errorf("artifact %d: %s %s, control %s %s", i, a.Name, a.Digest, w.Name, w.Digest)
		}
	}
}

// TestRecoverTerminalJobs restarts over a dir holding a finished job: it
// reloads as history, not as queued work.
func TestRecoverTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Kind: KindCompare, Scheme: "hdpat", Benchmark: "FIR", Seed: 9}
	svc1 := open(t, dir, nil)
	j, _, err := svc1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := waitState(t, j, StateDone)
	svc1.Close()

	var executed atomic.Int64
	svc2 := open(t, dir, func(ctx context.Context, s JobSpec, p Point, reg *metrics.Registry) (wafer.Result, error) {
		executed.Add(1)
		return fakeRun(ctx, s, p, reg)
	})
	defer svc2.Close()
	j2, ok := svc2.Get(spec.ID())
	if !ok {
		t.Fatal("terminal job not recovered")
	}
	st := j2.Status()
	if st.State != StateDone || len(st.Artifacts) != len(want.Artifacts) {
		t.Fatalf("recovered status = %+v", st)
	}
	// Resubmitting the same spec deduplicates against the recovered job.
	j3, existed, err := svc2.Submit(spec)
	if err != nil || !existed || j3 != j2 {
		t.Fatalf("resubmit after restart: existed %v err %v", existed, err)
	}
	time.Sleep(50 * time.Millisecond)
	if executed.Load() != 0 {
		t.Errorf("recovered done job re-executed %d runs", executed.Load())
	}
}
