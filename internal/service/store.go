package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// ArtifactInfo is the index record of one stored object.
type ArtifactInfo struct {
	// Size is the content length in bytes.
	Size int64 `json:"size"`
	// Created is the first-seen time (unix seconds); later identical puts
	// deduplicate against this object and keep the original stamp.
	Created int64 `json:"created"`
}

// Store is a content-addressed artifact store: objects live under
// <dir>/objects/<aa>/<digest> keyed by the SHA-256 hex of their content,
// with a JSON index at <dir>/index.json. Identical content is stored once
// regardless of how many jobs produce it.
type Store struct {
	dir string
	log *slog.Logger

	mu    sync.Mutex
	index map[string]ArtifactInfo
	// dedup counts puts that found their object already present.
	dedup uint64
}

// OpenStore opens (creating if needed) the store rooted at dir. A missing
// or unreadable index is rebuilt by scanning the object tree, so a crash
// between an object write and the index rewrite loses nothing. logger (nil
// = discard) receives structured operational events: index rebuilds and
// tolerated index-write failures.
func OpenStore(dir string, logger *slog.Logger) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("service: store: %w", err)
	}
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Store{dir: dir, log: logger.With("component", "store"), index: make(map[string]ArtifactInfo)}
	data, err := os.ReadFile(s.indexPath())
	switch {
	case err == nil:
		if jerr := json.Unmarshal(data, &s.index); jerr != nil {
			// Corrupt index: fall back to a scan.
			s.log.Warn("store index unreadable; rebuilding from object tree", "err", jerr)
			s.index = make(map[string]ArtifactInfo)
		}
	case !os.IsNotExist(err):
		return nil, fmt.Errorf("service: store index: %w", err)
	}
	if len(s.index) == 0 {
		if err := s.rebuild(); err != nil {
			return nil, err
		}
		if len(s.index) > 0 {
			s.log.Info("store index rebuilt by scan", "objects", len(s.index))
		}
	}
	return s, nil
}

func (s *Store) indexPath() string { return filepath.Join(s.dir, "index.json") }

func (s *Store) objectPath(digest string) string {
	return filepath.Join(s.dir, "objects", digest[:2], digest)
}

// rebuild repopulates the index from the object tree.
func (s *Store) rebuild() error {
	root := filepath.Join(s.dir, "objects")
	return filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		digest := filepath.Base(path)
		if len(digest) == sha256.Size*2 {
			s.index[digest] = ArtifactInfo{Size: info.Size(), Created: info.ModTime().Unix()}
		}
		return nil
	})
}

// Put stores data under its SHA-256 digest and returns the digest. existed
// reports a deduplicated write: the object (byte-identical content) was
// already present. The object file lands via temp-file + rename, so readers
// never observe a partial object.
func (s *Store) Put(data []byte) (digest string, existed bool, err error) {
	sum := sha256.Sum256(data)
	digest = hex.EncodeToString(sum[:])

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[digest]; ok {
		s.dedup++
		return digest, true, nil
	}
	path := s.objectPath(digest)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", false, fmt.Errorf("service: store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return "", false, fmt.Errorf("service: store: %w", err)
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", false, fmt.Errorf("service: store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", false, fmt.Errorf("service: store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", false, fmt.Errorf("service: store: %w", err)
	}
	s.index[digest] = ArtifactInfo{Size: int64(len(data)), Created: time.Now().Unix()}
	s.writeIndexLocked()
	return digest, false, nil
}

// writeIndexLocked persists the index atomically; index-write failures are
// tolerated (the index rebuilds from the object tree on next open).
func (s *Store) writeIndexLocked() {
	data, err := json.MarshalIndent(s.index, "", " ")
	if err != nil {
		return
	}
	tmp := s.indexPath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		s.log.Warn("store index write failed; will rebuild by scan on next open", "err", err)
		return
	}
	if err := os.Rename(tmp, s.indexPath()); err != nil {
		s.log.Warn("store index rename failed; will rebuild by scan on next open", "err", err)
	}
}

// Get returns the content stored under digest.
func (s *Store) Get(digest string) ([]byte, error) {
	if !validDigest(digest) {
		return nil, fmt.Errorf("service: store: invalid digest %q", digest)
	}
	data, err := os.ReadFile(s.objectPath(digest))
	if err != nil {
		return nil, fmt.Errorf("service: store: %w", err)
	}
	return data, nil
}

// Has reports whether digest is present.
func (s *Store) Has(digest string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[digest]
	return ok
}

// Stat returns the index record for digest.
func (s *Store) Stat(digest string) (ArtifactInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.index[digest]
	return info, ok
}

// Index returns a sorted copy of the digest index.
func (s *Store) Index() map[string]ArtifactInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]ArtifactInfo, len(s.index))
	for d, info := range s.index {
		out[d] = info
	}
	return out
}

// Digests lists every stored digest in sorted order.
func (s *Store) Digests() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.index))
	for d := range s.index {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// DedupHits counts puts that were deduplicated against existing objects.
func (s *Store) DedupHits() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dedup
}

// validDigest accepts exactly 64 lowercase hex digits — the only strings
// objectPath may be asked to resolve (no separators, no traversal).
func validDigest(d string) bool {
	if len(d) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(d); i++ {
		c := d[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
