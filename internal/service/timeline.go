package service

import (
	"bytes"
	"sync"
	"time"

	"hdpat/internal/trace"
)

// timeline is a wall-clock span recorder for one job: the real-time
// sibling of the cycle-domain tracer. It collects job lifecycle spans
// (queued, running, per-run, artifact-write) and instants (accepted,
// terminal state) in memory and renders them through internal/trace's
// Chrome trace_event encoder, so GET /v1/jobs/{id}/timeline loads straight
// into chrome://tracing or Perfetto. Timestamps are microseconds since the
// job's acceptance (the epoch), keeping the numbers viewer-friendly.
//
// Recording is observation only — it never influences run scheduling or
// result bytes — and every method is safe for concurrent use (pool workers
// record run spans while HTTP handlers render live views).
type timeline struct {
	mu     sync.Mutex
	epoch  time.Time
	events []tlEvent
}

// tlEvent is one recorded wall-clock event; dur < 0 marks an instant.
type tlEvent struct {
	tid, name string
	start     time.Time
	dur       time.Duration
	args      []trace.KV
}

func newTimeline(epoch time.Time) *timeline {
	return &timeline{epoch: epoch}
}

// span records a completed [start, end] wall-clock interval on the named
// track.
func (tl *timeline) span(tid, name string, start, end time.Time, args ...trace.KV) {
	if tl == nil || start.IsZero() {
		return
	}
	d := end.Sub(start)
	if d < 0 {
		d = 0
	}
	tl.mu.Lock()
	tl.events = append(tl.events, tlEvent{tid: tid, name: name, start: start, dur: d, args: args})
	tl.mu.Unlock()
}

// instant records a point event.
func (tl *timeline) instant(tid, name string, at time.Time, args ...trace.KV) {
	if tl == nil {
		return
	}
	tl.mu.Lock()
	tl.events = append(tl.events, tlEvent{tid: tid, name: name, start: at, dur: -1, args: args})
	tl.mu.Unlock()
}

// us converts t to microseconds since the epoch, clamped at zero so events
// recorded marginally before the epoch stamp never underflow.
func (tl *timeline) us(t time.Time) uint64 {
	d := t.Sub(tl.epoch)
	if d < 0 {
		return 0
	}
	return uint64(d.Microseconds())
}

// render encodes the recorded events as Chrome trace_event JSON. It is a
// pure read: rendering a live job's timeline mid-run yields the spans
// completed so far.
func (tl *timeline) render() []byte {
	var buf bytes.Buffer
	t := trace.New(&buf, trace.Chrome)
	tl.mu.Lock()
	events := append([]tlEvent(nil), tl.events...)
	tl.mu.Unlock()
	for _, ev := range events {
		if ev.dur < 0 {
			t.Instant(ev.tid, ev.name, tl.us(ev.start), ev.args...)
			continue
		}
		t.Span(ev.tid, ev.name, tl.us(ev.start), tl.us(ev.start.Add(ev.dur)), ev.args...)
	}
	t.Close()
	return buf.Bytes()
}
