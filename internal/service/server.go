package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hdpat/internal/metrics"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs                 submit a JobSpec (201; 200 when deduplicated)
//	GET    /v1/jobs                 list job statuses
//	GET    /v1/jobs/{id}            one job's status
//	DELETE /v1/jobs/{id}            cancel a queued or running job
//	GET    /v1/jobs/{id}/progress   SSE stream (Accept: text/event-stream) or
//	                                long-poll (?since=REV&timeout=30s)
//	GET    /v1/jobs/{id}/metrics    per-job Prometheus text exposition
//	GET    /v1/jobs/{id}/metrics.json  per-job JSON snapshot
//	GET    /v1/jobs/{id}/timeline   wall-clock Chrome trace_event JSON
//	GET    /v1/jobs/{id}/events     flight-recorder ring (recent log events)
//	GET    /v1/artifacts            artifact index (digest -> size)
//	GET    /v1/artifacts/{digest}   artifact content by SHA-256 hex digest
//	GET    /metrics                 aggregate exposition across all jobs
//	GET    /metrics.json            aggregate JSON snapshot
//	GET    /healthz                 liveness
//	GET    /readyz                  readiness (journal replay + store index)
//
// Per-job metrics reuse the same handlers ServeMetrics mounts per-process
// (internal/metrics), lifted to one registry per job. Every route is
// wrapped in metrics.InstrumentHandler, so the aggregate /metrics carries
// per-route/per-status http_request.count counters and
// http_request.latency_us log2 histograms keyed by registration pattern.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, metrics.InstrumentHandler(s.reg, pattern, h))
	}
	handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	handle("GET /readyz", s.handleReadyz)
	handle("POST /v1/jobs", s.handleSubmit)
	handle("GET /v1/jobs", s.handleList)
	handle("GET /v1/jobs/{id}", s.handleJob)
	handle("DELETE /v1/jobs/{id}", s.handleCancel)
	handle("GET /v1/jobs/{id}/progress", s.handleProgress)
	handle("GET /v1/jobs/{id}/metrics", s.handleJobMetrics)
	handle("GET /v1/jobs/{id}/metrics.json", s.handleJobMetricsJSON)
	handle("GET /v1/jobs/{id}/timeline", s.handleTimeline)
	handle("GET /v1/jobs/{id}/events", s.handleEvents)
	handle("GET /v1/artifacts", s.handleArtifactIndex)
	handle("GET /v1/artifacts/{digest}", s.handleArtifact)
	handle("GET /metrics", s.handleAggregate)
	handle("GET /metrics.json", s.handleAggregateJSON)
	return mux
}

// handleReadyz distinguishes readiness from liveness: 200 only between the
// end of journal replay / store index load and the start of shutdown, so
// orchestrators route traffic to daemons that can actually serve state.
func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	if !s.Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
		return
	}
	fmt.Fprintln(w, "ready")
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode spec: %w", err))
		return
	}
	j, existed, err := s.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrClosed) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	code := http.StatusCreated
	if existed {
		code = http.StatusOK
	}
	writeJSON(w, code, j.Status())
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

// job resolves the {id} path value, writing 404 on a miss.
func (s *Service) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
	}
	return j, ok
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if err := s.Cancel(j.ID); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleProgress serves job progress two ways: an SSE stream of status
// events when the client accepts text/event-stream (or asks with ?sse=1),
// else one long-poll — block until the revision exceeds ?since (or
// ?timeout, default 30s, elapses) and return the current status.
func (s *Service) handleProgress(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") || r.URL.Query().Get("sse") == "1" {
		s.streamProgress(w, r, j)
		return
	}
	since := int64(-1)
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad since: %w", err))
			return
		}
		since = n
	}
	timeout := 30 * time.Second
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad timeout %q", v))
			return
		}
		if d > time.Minute {
			d = time.Minute
		}
		timeout = d
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	writeJSON(w, http.StatusOK, j.Wait(ctx, since))
}

// streamProgress writes SSE "status" events on every revision change until
// the job reaches a terminal state or the client disconnects. Each event's
// data is the job's Status JSON.
func (s *Service) streamProgress(w http.ResponseWriter, r *http.Request, j *Job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	send := func(st Status) bool {
		data, err := json.Marshal(st)
		if err != nil {
			return false
		}
		fmt.Fprintf(w, "event: status\nid: %d\ndata: %s\n\n", st.Rev, data)
		fl.Flush()
		return true
	}
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		ch, rev := j.Changed()
		st := j.Status()
		if !send(st) {
			return
		}
		if st.State.Terminal() {
			return
		}
		select {
		case <-ch:
		case <-heartbeat.C:
			fmt.Fprintf(w, ": heartbeat rev=%d\n\n", rev)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Service) handleJobMetrics(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		metrics.Handler(j.Registry()).ServeHTTP(w, r)
	}
}

func (s *Service) handleJobMetricsJSON(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		metrics.JSONHandler(j.Registry()).ServeHTTP(w, r)
	}
}

// handleTimeline serves the job's wall-clock trace as Chrome trace_event
// JSON: the persisted object for terminal jobs (including jobs recovered
// from a previous process), a live render of the spans recorded so far
// otherwise.
func (s *Service) handleTimeline(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if digest := j.TimelineDigest(); digest != "" {
		if data, err := s.store.Get(digest); err == nil {
			w.Header().Set("ETag", `"`+digest+`"`)
			_, _ = w.Write(data)
			return
		}
		// Store miss (pruned object tree): fall through to the live render.
	}
	_, _ = w.Write(j.RenderTimeline())
}

// eventsBody is the /v1/jobs/{id}/events payload.
type eventsBody struct {
	Events []Event `json:"events"`
	// Dropped counts older events the bounded ring evicted.
	Dropped uint64 `json:"dropped"`
}

func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	events, dropped := j.Events()
	writeJSON(w, http.StatusOK, eventsBody{Events: events, Dropped: dropped})
}

func (s *Service) handleArtifactIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Index())
}

func (s *Service) handleArtifact(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	data, err := s.store.Get(digest)
	if err != nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("artifact %s not found", digest))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("ETag", `"`+digest+`"`)
	_, _ = w.Write(data)
}

func (s *Service) handleAggregate(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.AggregateSnapshot().Prometheus()))
}

func (s *Service) handleAggregateJSON(w http.ResponseWriter, r *http.Request) {
	out, err := s.AggregateSnapshot().JSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(out)
}
