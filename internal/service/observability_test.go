package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"hdpat/internal/metrics"
	"hdpat/internal/wafer"
)

func TestFlightRecorderRing(t *testing.T) {
	rec := newFlightRecorder(4)
	if got := rec.Events(); len(got) != 0 || rec.Dropped() != 0 {
		t.Fatalf("fresh ring: %d events, %d dropped", len(got), rec.Dropped())
	}
	for i := 0; i < 6; i++ {
		rec.add(Event{Msg: fmt.Sprintf("e%d", i)})
	}
	events := rec.Events()
	if len(events) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(events))
	}
	// Oldest-first, with the two oldest evicted.
	for i, e := range events {
		if want := fmt.Sprintf("e%d", i+2); e.Msg != want {
			t.Errorf("event %d = %q, want %q", i, e.Msg, want)
		}
	}
	if rec.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", rec.Dropped())
	}
}

// TestTimelineEndpoint asserts the /timeline payload is structurally valid
// Chrome trace_event JSON covering the job lifecycle, and that the
// persisted timeline digest stays out of the deterministic artifact list.
func TestTimelineEndpoint(t *testing.T) {
	_, srv := serveTest(t, nil)
	spec := JobSpec{Kind: KindCompare, Scheme: "hdpat", Benchmark: "FIR", Seed: 3, OpsBudget: 8}
	st, _ := postJob(t, srv, spec)
	final := pollDone(t, srv, st.ID)
	if final.Timeline == "" {
		t.Fatal("terminal status has no timeline digest")
	}
	for _, a := range final.Artifacts {
		if a.Digest == final.Timeline {
			t.Errorf("timeline digest leaked into artifact list as %s", a.Name)
		}
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	if etag := resp.Header.Get("ETag"); etag != `"`+final.Timeline+`"` {
		t.Errorf("ETag = %q, want the persisted digest", etag)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("timeline is not a JSON array of events: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("timeline has no events")
	}
	names := map[string]bool{}
	for i, e := range events {
		for _, field := range []string{"ph", "name", "ts", "pid", "tid"} {
			if _, ok := e[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, e)
			}
		}
		names[e["name"].(string)] = true
	}
	for _, want := range []string{"accepted", "queued", "running", "artifact-write", "done"} {
		if !names[want] {
			t.Errorf("timeline missing %q span/instant; have %v", want, names)
		}
	}
	// Per-run spans carry the (scheme, benchmark) cell in the name.
	var runSpans int
	for n := range names {
		if strings.HasPrefix(n, "run ") {
			runSpans++
		}
	}
	if runSpans != len(spec.Points()) {
		t.Errorf("timeline has %d run spans, want %d", runSpans, len(spec.Points()))
	}
}

// TestTimelineSurvivesRestart checks a recovered terminal job still serves
// its persisted wall-clock trace: the digest rides the terminal journal
// entry and resolves in the content-addressed store after reopen.
func TestTimelineSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Kind: KindCompare, Scheme: "hdpat", Benchmark: "SPMV", Seed: 4, OpsBudget: 8}

	svc := open(t, dir, nil)
	j, _, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, j, StateDone)
	svc.Close()
	if final.Timeline == "" {
		t.Fatal("no timeline digest before restart")
	}

	svc2 := open(t, dir, nil)
	defer svc2.Close()
	j2, ok := svc2.Get(spec.ID())
	if !ok {
		t.Fatal("job not recovered")
	}
	st := j2.Status()
	if st.Timeline != final.Timeline {
		t.Fatalf("recovered timeline digest %q, want %q", st.Timeline, final.Timeline)
	}
	data, err := svc2.Store().Get(st.Timeline)
	if err != nil {
		t.Fatalf("persisted timeline not in store: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil || len(events) == 0 {
		t.Fatalf("persisted timeline unparseable (%d events): %v", len(events), err)
	}
}

func TestReadyzFlipsOnClose(t *testing.T) {
	svc, srv := serveTest(t, nil)
	code := getJSON(t, srv.URL+"/readyz", nil)
	if code != http.StatusOK {
		t.Fatalf("readyz while open = %d", code)
	}
	if getJSON(t, srv.URL+"/healthz", nil) != http.StatusOK {
		t.Fatal("healthz while open != 200")
	}
	svc.Close()
	if code := getJSON(t, srv.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("readyz after close = %d, want 503", code)
	}
	// Liveness is unaffected by drain.
	if getJSON(t, srv.URL+"/healthz", nil) != http.StatusOK {
		t.Error("healthz after close != 200")
	}
}

func TestEventsEndpoint(t *testing.T) {
	_, srv := serveTest(t, nil)
	spec := JobSpec{Kind: KindCompare, Scheme: "hdpat", Benchmark: "FIR", Seed: 5, OpsBudget: 8}
	st, _ := postJob(t, srv, spec)
	pollDone(t, srv, st.ID)

	var body struct {
		Events  []Event `json:"events"`
		Dropped uint64  `json:"dropped"`
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/"+st.ID+"/events", &body); code != http.StatusOK {
		t.Fatalf("events = %d", code)
	}
	if len(body.Events) == 0 {
		t.Fatal("flight recorder empty after a completed job")
	}
	if body.Dropped != 0 {
		t.Errorf("dropped = %d for a short job", body.Dropped)
	}
	msgs := map[string]bool{}
	for _, e := range body.Events {
		if e.Time == "" || e.Level == "" || e.Msg == "" {
			t.Fatalf("malformed event: %+v", e)
		}
		if e.Attrs["job_id"] != st.ID {
			t.Errorf("event %q missing job_id correlation: %v", e.Msg, e.Attrs)
		}
		msgs[e.Msg] = true
	}
	for _, want := range []string{"job accepted", "job running", "job done"} {
		if !msgs[want] {
			t.Errorf("flight recorder missing %q; have %v", want, msgs)
		}
	}
}

// TestAggregateMetricsExposition checks /metrics carries the runtime
// telemetry and per-route HTTP series the smoke test scrapes for.
func TestAggregateMetricsExposition(t *testing.T) {
	_, srv := serveTest(t, nil)
	if getJSON(t, srv.URL+"/healthz", nil) != http.StatusOK {
		t.Fatal("healthz failed")
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"hdpat_go_runtime_goroutines",
		"hdpat_go_runtime_heap_alloc_bytes",
		"hdpat_http_request_count_GET__healthz_200",
		"hdpat_http_request_latency_us_GET__healthz",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestSSEDisconnectReconnect is the streaming-resume contract: a client
// that drops its SSE stream mid-job and falls back to ?since= long-polls
// observes a single strictly-increasing revision sequence with no
// duplicates and monotone progress, through to the terminal state.
func TestSSEDisconnectReconnect(t *testing.T) {
	step := make(chan struct{})
	gated := func(ctx context.Context, spec JobSpec, p Point, reg *metrics.Registry) (wafer.Result, error) {
		select {
		case <-step:
		case <-ctx.Done():
			return wafer.Result{}, ctx.Err()
		}
		return fakeRun(ctx, spec, p, reg)
	}
	_, srv := serveTest(t, gated)
	spec := sweepSpec()
	total := len(spec.Points())
	st, code := postJob(t, srv, spec)
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}

	// Phase 1: stream SSE, release two runs, then drop the connection.
	req, err := http.NewRequest("GET", srv.URL+"/v1/jobs/"+st.ID+"/progress", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	const allow = 2
	go func() {
		for i := 0; i < allow; i++ {
			step <- struct{}{}
		}
	}()

	seen := map[int64]bool{}
	lastRev := int64(-1)
	lastDone := 0
	record := func(s Status) {
		if s.Rev <= lastRev {
			t.Fatalf("revision regressed or repeated: %d after %d", s.Rev, lastRev)
		}
		if seen[s.Rev] {
			t.Fatalf("duplicate revision %d", s.Rev)
		}
		if s.Progress.Done < lastDone {
			t.Fatalf("progress went backwards: %d after %d", s.Progress.Done, lastDone)
		}
		seen[s.Rev] = true
		lastRev = s.Rev
		lastDone = s.Progress.Done
	}

	sc := bufio.NewScanner(resp.Body)
	for lastDone < allow && sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var s Status
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &s); err != nil {
			t.Fatalf("bad SSE data line %q: %v", line, err)
		}
		record(s)
	}
	resp.Body.Close() // the mid-stream disconnect
	if lastDone < allow {
		t.Fatalf("stream ended early: done=%d (%v)", lastDone, sc.Err())
	}

	// Phase 2: release the rest and resume with long-polls from the last
	// revision the dropped stream delivered.
	go func() {
		for i := 0; i < total-allow; i++ {
			step <- struct{}{}
		}
	}()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never settled after reconnect")
		}
		var s Status
		url := srv.URL + "/v1/jobs/" + st.ID + "/progress?since=" + strconv.FormatInt(lastRev, 10) + "&timeout=5s"
		if code := getJSON(t, url, &s); code != http.StatusOK {
			t.Fatalf("long-poll = %d", code)
		}
		if s.Rev == lastRev {
			continue // long-poll timeout with no change; same cursor, not a gap
		}
		record(s)
		if s.State.Terminal() {
			if s.State != StateDone || s.Progress.Done != total {
				t.Fatalf("terminal = %s done=%d/%d (%s)", s.State, s.Progress.Done, total, s.Error)
			}
			return
		}
	}
}
