package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Journal event types, in lifecycle order. A job journal is an append-only
// JSONL file: exactly one "accepted" line, one "run" line per completed
// run (any order between runs), and at most one terminal line ("done",
// "failed" or "cancelled"). A journal without a terminal line is an
// interrupted job: on restart the daemon re-enqueues it and skips every
// journaled run.
const (
	evAccepted  = "accepted"
	evRun       = "run"
	evDone      = "done"
	evFailed    = "failed"
	evCancelled = "cancelled"
)

// journalEntry is one line of a job journal.
type journalEntry struct {
	T string `json:"t"`
	// Spec rides the accepted entry.
	Spec *JobSpec `json:"spec,omitempty"`
	// Index and Digest ride run entries: the run's position in the job's
	// point order and the store digest of its canonical result JSON.
	Index  int    `json:"i,omitempty"`
	Digest string `json:"digest,omitempty"`
	// Artifacts ride the done entry.
	Artifacts []Artifact `json:"artifacts,omitempty"`
	// Error rides the failed entry.
	Error string `json:"error,omitempty"`
	// Timeline rides terminal entries: the store digest of the job's
	// wall-clock Chrome trace. It is live observability, not part of the
	// artifact byte contract, so it never appears in Artifacts.
	Timeline string `json:"timeline,omitempty"`
	// Time is the wall-clock unix-seconds stamp of the entry; recovery
	// orders re-enqueued jobs by their accepted stamp.
	Time int64 `json:"time"`
}

// journal is the append handle for one job's journal file. Appends are
// serialised and synced, so every acknowledged entry survives a process
// kill.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

// jobDir returns the per-job state directory under the service root.
func jobDir(root, id string) string { return filepath.Join(root, "jobs", id) }

// journalPath returns the journal file path for a job directory.
func journalPath(dir string) string { return filepath.Join(dir, "journal.jsonl") }

// openJournal opens (creating if needed) the append handle for a job.
func openJournal(root, id string) (*journal, error) {
	dir := jobDir(root, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: journal: %w", err)
	}
	f, err := os.OpenFile(journalPath(dir), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: journal: %w", err)
	}
	return &journal{f: f}, nil
}

// append writes one entry and syncs it to disk.
func (j *journal) append(e journalEntry) error {
	if e.Time == 0 {
		e.Time = time.Now().Unix()
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("service: journal: %w", err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("service: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("service: journal: %w", err)
	}
	return nil
}

// close releases the file handle.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// journalState is a journal replayed into memory at recovery time.
type journalState struct {
	id       string
	spec     JobSpec
	accepted int64
	// completed maps run index -> result digest for every journaled run.
	completed map[int]string
	// terminal is the terminal event type ("" when the job was interrupted).
	terminal  string
	artifacts []Artifact
	errMsg    string
	// timeline is the stored wall-clock trace digest from the terminal
	// entry, when one was persisted.
	timeline string
}

// readJournal replays one job's journal file. Lines that fail to parse
// (e.g. a torn final write from a kill) are skipped: every complete line
// before them still counts, which is exactly the run-boundary granularity
// resume wants.
func readJournal(path string) (journalState, error) {
	st := journalState{completed: make(map[int]string)}
	f, err := os.Open(path)
	if err != nil {
		return st, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue // torn tail write: ignore
		}
		switch e.T {
		case evAccepted:
			if e.Spec != nil {
				st.spec = *e.Spec
				st.accepted = e.Time
			}
		case evRun:
			if e.Digest != "" {
				st.completed[e.Index] = e.Digest
			}
		case evDone:
			st.terminal = evDone
			st.artifacts = e.Artifacts
			st.timeline = e.Timeline
		case evFailed:
			st.terminal = evFailed
			st.errMsg = e.Error
			st.timeline = e.Timeline
		case evCancelled:
			st.terminal = evCancelled
			st.timeline = e.Timeline
		}
	}
	return st, sc.Err()
}

// scanJournals replays every job journal under root, keyed by job ID
// (directory name).
func scanJournals(root string) (map[string]journalState, error) {
	dir := filepath.Join(root, "jobs")
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: recover: %w", err)
	}
	out := make(map[string]journalState)
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		st, err := readJournal(journalPath(filepath.Join(dir, ent.Name())))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, fmt.Errorf("service: recover %s: %w", ent.Name(), err)
		}
		if st.spec.Kind == "" {
			continue // no (valid) accepted entry: nothing to recover
		}
		st.id = ent.Name()
		out[st.id] = st
	}
	return out, nil
}
