// Package area estimates the silicon overhead of HDPAT's added structures
// (§V-F). The paper ran OpenRoad at a 7 nm node; that flow is proprietary
// tooling plus PDK data we cannot ship, so this package substitutes an
// analytical bit-count model with published 7 nm SRAM macro density and
// energy constants. The deliverable claim being reproduced is relative:
// the 1024-entry redirection table should come out near 0.034 mm^2 / 0.16 W,
// i.e. ~0.02 % of a Ryzen-9-class CPU die and ~0.09 % of its power.
package area

import "fmt"

// Technology constants for a 7 nm node, calibrated so the 1024-entry,
// 64-bit redirection table reproduces the paper's OpenRoad result
// (0.034 mm^2, 0.16 W). The effective density (~2 Mb/mm^2) is far below a
// raw 6T SRAM macro because a fully-associative lookup structure carries
// CAM match lines, priority logic and LRU update circuitry per entry.
const (
	SRAMBitsPerMM2 = 1.93e6
	// WattsPerBit is the effective per-bit power of a hot, always-on lookup
	// structure (match lines, sense amps, leakage) at 1 GHz, 7 nm.
	WattsPerBit = 2.44e-6
)

// Reference CPU die (§V-F assumes an AMD Ryzen 9 7900X centre tile).
const (
	RyzenDieMM2  = 141.2
	RyzenTDPWatt = 170.0
)

// Structure is one hardware table to be estimated.
type Structure struct {
	Name    string
	Entries int
	// BitsPerEntry is the storage cost of one entry, including tag,
	// payload and replacement metadata.
	BitsPerEntry int
	// Copies is how many instances exist on the wafer (e.g. one cuckoo
	// filter per GPM).
	Copies int
}

// TotalBits returns entries x bits x copies.
func (s Structure) TotalBits() int { return s.Entries * s.BitsPerEntry * s.Copies }

// AreaMM2 estimates total silicon area.
func (s Structure) AreaMM2() float64 { return float64(s.TotalBits()) / SRAMBitsPerMM2 }

// PowerW estimates total power.
func (s Structure) PowerW() float64 { return float64(s.TotalBits()) * WattsPerBit }

// RedirectionTable sizes the 1024-entry redirection table: each entry holds
// a process id (16 b), a VPN tag (36 b for a 48-bit VA at 4 KB pages), the
// target GPM id (6 b for up to 64 GPMs per layer pointer, 2 layers) and LRU
// state (10 b), ~64 b after alignment. The paper stresses it stores *no*
// physical address, the source of its 2x density advantage over a TLB.
func RedirectionTable(entries int) Structure {
	return Structure{Name: "redirection-table", Entries: entries, BitsPerEntry: 64, Copies: 1}
}

// IOMMUTLB sizes the Fig 19 area-equivalent TLB: PID + VPN tag + PFN
// payload (36 b) + flags + LRU ≈ 128 b per entry — twice the redirection
// table entry, hence half the entries at equal area.
func IOMMUTLB(entries int) Structure {
	return Structure{Name: "iommu-tlb", Entries: entries, BitsPerEntry: 128, Copies: 1}
}

// CuckooFilter sizes one GPM's filter: 12-bit fingerprints, 4-way buckets.
func CuckooFilter(slots, copies int) Structure {
	return Structure{Name: "cuckoo-filter", Entries: slots, BitsPerEntry: 12, Copies: copies}
}

// Report is the §V-F output.
type Report struct {
	Structures []Structure
	// Relative overheads against the reference CPU die.
	AreaPct  float64
	PowerPct float64
}

// Estimate produces the overhead report for HDPAT's default configuration:
// the redirection table on the CPU die (compared against the Ryzen die) and
// the per-GPM cuckoo filters (reported, but sited on GPM dies).
func Estimate(rtEntries, filterSlotsPerGPM, numGPMs int) Report {
	rt := RedirectionTable(rtEntries)
	cf := CuckooFilter(filterSlotsPerGPM, numGPMs)
	return Report{
		Structures: []Structure{rt, cf},
		AreaPct:    100 * rt.AreaMM2() / RyzenDieMM2,
		PowerPct:   100 * rt.PowerW() / RyzenTDPWatt,
	}
}

// String renders the report as the §V-F table.
func (r Report) String() string {
	out := ""
	for _, s := range r.Structures {
		out += fmt.Sprintf("%-18s %7d entries x %3d b x %2d = %8.4f mm^2  %6.3f W\n",
			s.Name, s.Entries, s.BitsPerEntry, s.Copies, s.AreaMM2(), s.PowerW())
	}
	out += fmt.Sprintf("redirection table vs CPU die: %.3f%% area, %.3f%% power\n", r.AreaPct, r.PowerPct)
	return out
}
