package area

import (
	"strings"
	"testing"
)

func TestRedirectionTableNearPaperNumbers(t *testing.T) {
	rt := RedirectionTable(1024)
	// Paper: 0.034 mm^2, 0.16 W. The analytical model should land within
	// a small factor (the paper's own numbers are tool estimates).
	a := rt.AreaMM2()
	if a < 0.034*0.8 || a > 0.034*1.2 {
		t.Errorf("RT area = %f mm^2, paper says 0.034", a)
	}
	p := rt.PowerW()
	if p < 0.16*0.8 || p > 0.16*1.2 {
		t.Errorf("RT power = %f W, paper says 0.16", p)
	}
}

func TestRelativeOverheadTiny(t *testing.T) {
	r := Estimate(1024, 4096, 48)
	// Paper: 0.02 % area, 0.09 % power. Demand the same order of magnitude
	// and, critically, "well under 1 %".
	if r.AreaPct > 0.5 {
		t.Errorf("area overhead %.3f%%, want << 1%%", r.AreaPct)
	}
	if r.PowerPct > 0.5 {
		t.Errorf("power overhead %.3f%%, want << 1%%", r.PowerPct)
	}
	if r.AreaPct <= 0 || r.PowerPct <= 0 {
		t.Error("overheads must be positive")
	}
}

func TestRTDenserThanTLB(t *testing.T) {
	rt := RedirectionTable(1024)
	tlb := IOMMUTLB(512)
	// Equal area at half the entries (the Fig 19 premise).
	ratio := rt.AreaMM2() / tlb.AreaMM2()
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("1024-entry RT vs 512-entry TLB area ratio = %f, want ~1", ratio)
	}
}

func TestCuckooFilterScalesWithCopies(t *testing.T) {
	one := CuckooFilter(4096, 1)
	all := CuckooFilter(4096, 48)
	if all.TotalBits() != 48*one.TotalBits() {
		t.Error("copies not applied")
	}
}

func TestReportString(t *testing.T) {
	s := Estimate(1024, 4096, 48).String()
	for _, want := range []string{"redirection-table", "cuckoo-filter", "% area"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}
