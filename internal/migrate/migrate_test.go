package migrate

import (
	"testing"

	"hdpat/internal/config"
	"hdpat/internal/core"
	"hdpat/internal/geom"
	"hdpat/internal/gpm"
	"hdpat/internal/iommu"
	"hdpat/internal/noc"
	"hdpat/internal/schemes"
	"hdpat/internal/sim"
	"hdpat/internal/tlb"
	"hdpat/internal/vm"
	"hdpat/internal/xlat"
)

// buildFabric assembles a 5x5 wafer with a 96-page region.
func buildFabric(t *testing.T) (*core.Fabric, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	mesh := geom.NewMesh(5, 5)
	layout := geom.NewLayout(mesh)
	network := noc.New(eng, mesh, noc.DefaultConfig())
	placement := vm.NewPlacement(mesh.NumGPMs(), vm.Page4K)
	placement.Alloc("data", 96, 0)
	gcfg := config.MI100GPM()
	gcfg.NumCUs = 1
	var gpms []*gpm.GPM
	for i, c := range mesh.GPMs() {
		g := gpm.New(eng, i, c, gcfg, vm.Page4K, placement.Local(i))
		id := uint64(0)
		g.NextReqID = func() uint64 { id++; return id }
		gpms = append(gpms, g)
	}
	io := iommu.New(eng, config.DefaultIOMMU(), mesh.CPU, network, placement.Global())
	io.GPMCoord = func(id int) geom.Coord { return gpms[id].Coord }
	f := &core.Fabric{Eng: eng, Mesh: network, Layout: layout, GPMs: gpms, IOMMU: io, Placement: placement}
	f.Finish()
	return f, eng
}

func req(f *core.Fabric, id uint64, vpn vm.VPN, requester int, done func(xlat.Result)) *xlat.Request {
	return xlat.NewRequest(id, 0, vpn, requester, f.Eng.Now(), done)
}

func TestMigrationMovesDominantPage(t *testing.T) {
	f, eng := buildFabric(t)
	cfg := DefaultConfig()
	cfg.Threshold = 3
	m := New(f, cfg)
	s := m.Wrap(schemes.NewNaive(f))

	vpn := vm.VPN(10)
	owner, _ := f.Placement.OwnerOf(vpn)
	requester := (owner + 7) % len(f.GPMs)

	for i := uint64(0); i < 3; i++ {
		s.Translate(req(f, i+1, vpn, requester, func(xlat.Result) {}))
		eng.Run()
	}
	if m.Stats.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1", m.Stats.Migrations)
	}
	newOwner, ok := f.Placement.OwnerOf(vpn)
	if !ok || newOwner != requester {
		t.Fatalf("owner = %d, want %d", newOwner, requester)
	}
	pte, _, ok := f.Placement.Global().Lookup(vpn)
	if !ok || pte.Owner != requester {
		t.Fatalf("global PTE owner = %d", pte.Owner)
	}
	if !f.Placement.Local(requester).Contains(vpn) {
		t.Error("target local table missing migrated page")
	}
	if f.Placement.Local(owner).Contains(vpn) {
		t.Error("old owner still maps migrated page")
	}
	if m.Stats.BytesMoved != uint64(vm.Page4K) {
		t.Errorf("bytes moved = %d", m.Stats.BytesMoved)
	}
	if f.Placement.Migrated() != 1 {
		t.Errorf("placement overlay has %d entries", f.Placement.Migrated())
	}
}

func TestMigrationSkipsSharedPages(t *testing.T) {
	f, eng := buildFabric(t)
	cfg := DefaultConfig()
	cfg.Threshold = 3
	m := New(f, cfg)
	s := m.Wrap(schemes.NewNaive(f))

	vpn := vm.VPN(20)
	owner, _ := f.Placement.OwnerOf(vpn)
	// Many GPMs share the page evenly: no single requester dominates.
	id := uint64(0)
	for round := 0; round < 4; round++ {
		for r := 0; r < 6; r++ {
			requester := (owner + 1 + r) % len(f.GPMs)
			id++
			s.Translate(req(f, id, vpn, requester, func(xlat.Result) {}))
		}
		eng.Run()
	}
	if m.Stats.Migrations != 0 {
		t.Fatalf("shared page migrated %d times", m.Stats.Migrations)
	}
	if m.Stats.SkippedShare == 0 {
		t.Error("dominance rejection never recorded")
	}
}

func TestMigrationCooldownPreventsPingPong(t *testing.T) {
	f, eng := buildFabric(t)
	cfg := DefaultConfig()
	cfg.Threshold = 2
	cfg.Cooldown = 1_000_000
	m := New(f, cfg)
	s := m.Wrap(schemes.NewNaive(f))

	vpn := vm.VPN(30)
	owner, _ := f.Placement.OwnerOf(vpn)
	a := (owner + 3) % len(f.GPMs)
	b := (owner + 9) % len(f.GPMs)
	id := uint64(0)
	send := func(r int, n int) {
		for i := 0; i < n; i++ {
			id++
			s.Translate(req(f, id, vpn, r, func(xlat.Result) {}))
			eng.Run()
		}
	}
	send(a, 3) // migrates to a
	if m.Stats.Migrations != 1 {
		t.Fatalf("migrations = %d after first burst", m.Stats.Migrations)
	}
	send(b, 6) // b now dominates, but within the cooldown
	if m.Stats.Migrations != 1 {
		t.Errorf("page ping-ponged during cooldown (migrations=%d)", m.Stats.Migrations)
	}
	if m.Stats.SkippedBusy == 0 {
		t.Error("cooldown rejection never recorded")
	}
}

func TestMigrationShootsDownStaleEntries(t *testing.T) {
	f, eng := buildFabric(t)
	cfg := DefaultConfig()
	cfg.Threshold = 2
	m := New(f, cfg)
	s := m.Wrap(schemes.NewNaive(f))

	vpn := vm.VPN(40)
	owner, _ := f.Placement.OwnerOf(vpn)
	requester := (owner + 5) % len(f.GPMs)
	// Warm another GPM's aux with the old translation.
	other := f.GPMs[(owner+11)%len(f.GPMs)]
	oldPTE, _, _ := f.Placement.Global().Lookup(vpn)
	other.InstallAux(oldPTE, xlat.PushDemand)

	id := uint64(0)
	for i := 0; i < 2; i++ {
		id++
		s.Translate(req(f, id, vpn, requester, func(xlat.Result) {}))
		eng.Run()
	}
	if m.Stats.Migrations != 1 {
		t.Fatalf("migrations = %d", m.Stats.Migrations)
	}
	if _, _, ok := other.Aux().Probe(toKey(vpn)); ok {
		t.Error("stale aux entry survived migration shootdown")
	}
	if m.Stats.Dropped == 0 {
		t.Error("shootdown dropped nothing")
	}
}

func toKey(v vm.VPN) tlb.Key { return tlb.Key{VPN: v} }
