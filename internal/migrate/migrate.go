// Package migrate implements the page-migration extension the paper's
// conclusion names as future work ("opens pathways for future exploration
// in ... intelligent page migration"). A manager observes remote
// translation requests; when one GPM dominates the traffic to a page, the
// page is migrated into that GPM's HBM: the page tables are repointed, a
// wafer-wide TLB shootdown retires every cached copy of the old
// translation, and the page data is copied over the mesh. Subsequent
// accesses are fully local — no GMMU/IOMMU involvement at all.
//
// The paper excludes migration from its evaluation precisely because the
// zero-copy model's computable ownership breaks under it; the placement
// layer keeps an explicit overlay for migrated pages so owner-dependent
// schemes (ownerfw) stay correct.
package migrate

import (
	"hdpat/internal/core"
	"hdpat/internal/metrics"
	"hdpat/internal/sim"
	"hdpat/internal/tlb"
	"hdpat/internal/trace"
	"hdpat/internal/vm"
	"hdpat/internal/xlat"
)

// Config tunes the migration policy.
type Config struct {
	// Threshold is the number of remote translation requests from a single
	// GPM after which migration is considered.
	Threshold uint32
	// DominanceNum/DominanceDen: the top requester must account for at
	// least Num/Den of the page's remote requests, or the page is shared
	// and migrating it would ping-pong. Default 2/3.
	DominanceNum uint32
	DominanceDen uint32
	// Cooldown is the minimum interval between migrations of the same page.
	Cooldown sim.VTime
	// MaxInflight bounds concurrent migrations (DMA engine count).
	MaxInflight int
}

// DefaultConfig returns a conservative policy.
func DefaultConfig() Config {
	return Config{Threshold: 2, DominanceNum: 2, DominanceDen: 3, Cooldown: 50_000, MaxInflight: 8}
}

// Stats counts migration activity.
type Stats struct {
	Migrations   uint64
	BytesMoved   uint64
	Dropped      uint64 // cached entries retired by shootdowns
	SkippedShare uint64 // candidates rejected as shared (no dominant GPM)
	SkippedBusy  uint64 // candidates rejected by inflight/cooldown limits
}

type pageHeat struct {
	byGPM     map[int]uint32
	total     uint32
	lastMoved sim.VTime
	moved     bool
}

// Manager watches remote translation traffic and migrates hot pages.
type Manager struct {
	f   *core.Fabric
	cfg Config

	heat     map[tlb.Key]*pageHeat
	inflight int
	migFree  []*migration

	Stats Stats

	// Trace, when non-nil, receives one span per migration (from decision to
	// destination write completion).
	Trace *trace.Tracer

	m *migrateMetrics
}

// migrateMetrics are the manager's registry series.
type migrateMetrics struct {
	migrations, bytesMoved, dropped, skipShare, skipBusy *metrics.Counter
}

// AttachMetrics mirrors migration activity into reg: migrate.migrations,
// migrate.bytes_moved, migrate.shootdown_dropped, migrate.skipped.shared and
// migrate.skipped.busy counters.
func (m *Manager) AttachMetrics(reg *metrics.Registry) {
	m.m = &migrateMetrics{
		migrations: reg.Counter("migrate.migrations"),
		bytesMoved: reg.Counter("migrate.bytes_moved"),
		dropped:    reg.Counter("migrate.shootdown_dropped"),
		skipShare:  reg.Counter("migrate.skipped.shared"),
		skipBusy:   reg.Counter("migrate.skipped.busy"),
	}
}

// New creates a manager over an assembled fabric (Placement must be set).
func New(f *core.Fabric, cfg Config) *Manager {
	if cfg.DominanceDen == 0 {
		cfg.DominanceNum, cfg.DominanceDen = 2, 3
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 1
	}
	return &Manager{f: f, cfg: cfg, heat: make(map[tlb.Key]*pageHeat)}
}

// Wrap interposes the manager on a translation scheme so it sees every
// remote request (not only those reaching the IOMMU — peer-served pages are
// exactly the ones worth making local).
func (m *Manager) Wrap(inner xlat.RemoteTranslator) xlat.RemoteTranslator {
	return &wrapped{m: m, inner: inner}
}

type wrapped struct {
	m     *Manager
	inner xlat.RemoteTranslator
}

func (w *wrapped) Name() string { return w.inner.Name() + "+migrate" }

func (w *wrapped) Translate(req *xlat.Request) {
	w.m.observe(req)
	w.inner.Translate(req)
}

func (m *Manager) observe(req *xlat.Request) {
	k := tlb.Key{PID: req.PID, VPN: req.VPN}
	h := m.heat[k]
	if h == nil {
		h = &pageHeat{byGPM: make(map[int]uint32)}
		m.heat[k] = h
	}
	h.byGPM[req.Requester]++
	h.total++
	n := h.byGPM[req.Requester]
	if n < m.cfg.Threshold {
		return
	}
	// Dominance check: a page most GPMs share must stay put.
	if n*m.cfg.DominanceDen < h.total*m.cfg.DominanceNum {
		m.Stats.SkippedShare++
		if m.m != nil {
			m.m.skipShare.Inc()
		}
		return
	}
	now := m.f.Eng.Now()
	if m.inflight >= m.cfg.MaxInflight || (h.moved && now-h.lastMoved < m.cfg.Cooldown) {
		m.Stats.SkippedBusy++
		if m.m != nil {
			m.m.skipBusy.Inc()
		}
		return
	}
	m.migrate(k, req.Requester, h)
}

// migrate repoints the page to the target GPM, shoots down stale cached
// translations wafer-wide, then copies the page data over the mesh. The
// move from shootdown-done to destination write is carried by one pooled
// migration state machine instead of nested closures.
func (m *Manager) migrate(k tlb.Key, to int, h *pageHeat) {
	old, _, ok := m.f.Placement.Migrate(k.VPN, to)
	if !ok {
		return
	}
	m.inflight++
	h.moved = true
	started := m.f.Eng.Now()
	h.lastMoved = started
	// Reset the heat so post-migration traffic is judged afresh.
	h.byGPM = make(map[int]uint32)
	h.total = 0

	target := m.f.GPMs[to]
	target.AddLocalMapping(k.PID, k.VPN)

	var mg *migration
	if n := len(m.migFree); n > 0 {
		mg = m.migFree[n-1]
		m.migFree = m.migFree[:n-1]
	} else {
		mg = new(migration)
	}
	*mg = migration{
		m: m, k: k, from: old.Owner, to: to,
		started: started, pageBytes: int(m.f.GPMs[0].PageSize()),
	}
	m.f.Shootdown(k.PID, []vm.VPN{k.VPN}, mg.shotDown)
}

// migration phases, advanced by each Event delivery.
const (
	migCopyArrived = iota // page copy reached the target tile
	migWritten            // destination HBM write finished
)

// migration is one in-flight page move: shootdown acknowledgement, the page
// copy over the mesh (charged against link bandwidth), and HBM time at the
// destination.
type migration struct {
	m         *Manager
	k         tlb.Key
	from, to  int
	started   sim.VTime
	pageBytes int
	state     uint8
}

// shotDown receives the wafer-wide shootdown acknowledgement and launches
// the page copy.
func (mg *migration) shotDown(dropped int) {
	m := mg.m
	m.Stats.Dropped += uint64(dropped)
	if m.m != nil {
		m.m.dropped.Add(uint64(dropped))
	}
	src := m.f.GPMs[mg.from]
	mg.state = migCopyArrived
	m.f.Mesh.SendH(src.Coord, m.f.GPMs[mg.to].Coord, mg.pageBytes, mg, sim.EventArg{})
}

// Event implements sim.Handler.
func (mg *migration) Event(sim.EventArg) {
	switch mg.state {
	case migCopyArrived:
		mg.state = migWritten
		mg.m.f.GPMs[mg.to].ServeLineH(0, mg, sim.EventArg{}) // destination write
	case migWritten:
		m := mg.m
		m.Stats.Migrations++
		m.Stats.BytesMoved += uint64(mg.pageBytes)
		if m.m != nil {
			m.m.migrations.Inc()
			m.m.bytesMoved.Add(uint64(mg.pageBytes))
		}
		if m.Trace != nil {
			m.Trace.MigrationSpan(uint64(mg.started), uint64(m.f.Eng.Now()), uint64(mg.k.VPN), mg.from, mg.to)
		}
		m.inflight--
		*mg = migration{}
		m.migFree = append(m.migFree, mg)
	}
}
