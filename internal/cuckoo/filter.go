// Package cuckoo implements the cuckoo filter of Fan et al. (CoNEXT'14),
// the probabilistic membership structure that sits between the L2 TLB and
// the last-level TLB in each GPM (§II-B). A negative answer guarantees the
// queried VPN is absent from the local page table, letting the request skip
// the local walk; false positives occur at a real, measurable rate and force
// the doubled-latency path the paper describes.
//
// This is a genuine partial-key cuckoo hash: 4-way buckets, 12-bit
// fingerprints, alternate bucket index derived from the fingerprint alone so
// displaced fingerprints can move without the original key.
package cuckoo

import "math/rand"

const (
	// SlotsPerBucket is the bucket associativity (b=4 in the paper's
	// recommended configuration).
	SlotsPerBucket = 4
	// fpBits is the fingerprint width; 12 bits gives a false-positive rate
	// around 2b/2^f ≈ 0.2 % at high load.
	fpBits = 12
	fpMask = 1<<fpBits - 1
	// maxKicks bounds the eviction chain during insert.
	maxKicks = 500
)

// Filter is a cuckoo filter over uint64 keys (VPNs).
// It is not safe for concurrent use; the simulator is single-threaded.
type Filter struct {
	buckets [][SlotsPerBucket]uint16
	mask    uint64 // len(buckets)-1
	count   int
	rng     *rand.Rand

	// Kicked counts total displacement operations, exposed for tests and
	// occupancy studies.
	Kicked uint64
}

// New creates a filter with capacity for roughly n keys at ~95 % load.
// The bucket count is rounded up to a power of two.
func New(n int) *Filter {
	buckets := 1
	need := (n + SlotsPerBucket - 1) / SlotsPerBucket
	// Head room: cuckoo filters fill reliably to ~95 %.
	need = need + need/16 + 1
	for buckets < need {
		buckets <<= 1
	}
	return &Filter{
		buckets: make([][SlotsPerBucket]uint16, buckets),
		mask:    uint64(buckets - 1),
		rng:     rand.New(rand.NewSource(0x5eed)),
	}
}

// splitmix64 is a strong, allocation-free 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fingerprint derives a non-zero fingerprint from the key; zero is the empty
// slot marker.
func fingerprint(key uint64) uint16 {
	fp := uint16(splitmix64(key)>>32) & fpMask
	if fp == 0 {
		fp = 1
	}
	return fp
}

func (f *Filter) index1(key uint64) uint64 {
	return splitmix64(key) & f.mask
}

// index2 derives the alternate bucket from an index and the fingerprint
// only, so i1 == altIndex(i2, fp) and vice versa (xor construction).
func (f *Filter) altIndex(i uint64, fp uint16) uint64 {
	return (i ^ splitmix64(uint64(fp))) & f.mask
}

// Len returns the number of stored fingerprints.
func (f *Filter) Len() int { return f.count }

// Capacity returns the total slot count.
func (f *Filter) Capacity() int { return len(f.buckets) * SlotsPerBucket }

// LoadFactor returns the fraction of slots in use.
func (f *Filter) LoadFactor() float64 {
	return float64(f.count) / float64(f.Capacity())
}

// Contains reports whether key may be present. False positives possible,
// false negatives impossible for inserted-and-not-deleted keys.
func (f *Filter) Contains(key uint64) bool {
	fp := fingerprint(key)
	i1 := f.index1(key)
	if f.bucketHas(i1, fp) {
		return true
	}
	return f.bucketHas(f.altIndex(i1, fp), fp)
}

func (f *Filter) bucketHas(i uint64, fp uint16) bool {
	b := &f.buckets[i]
	for s := 0; s < SlotsPerBucket; s++ {
		if b[s] == fp {
			return true
		}
	}
	return false
}

func (f *Filter) bucketInsert(i uint64, fp uint16) bool {
	b := &f.buckets[i]
	for s := 0; s < SlotsPerBucket; s++ {
		if b[s] == 0 {
			b[s] = fp
			return true
		}
	}
	return false
}

// Insert adds key. It returns false only if the filter is too full to accept
// the key after the maximum eviction effort; the caller (a GMMU managing its
// local page table summary) treats that as "rebuild needed" — in practice the
// filters are sized so this does not occur.
func (f *Filter) Insert(key uint64) bool {
	fp := fingerprint(key)
	i1 := f.index1(key)
	i2 := f.altIndex(i1, fp)
	if f.bucketInsert(i1, fp) || f.bucketInsert(i2, fp) {
		f.count++
		return true
	}
	// Kick a random resident fingerprint to its alternate bucket.
	i := i1
	if f.rng.Intn(2) == 1 {
		i = i2
	}
	for k := 0; k < maxKicks; k++ {
		slot := f.rng.Intn(SlotsPerBucket)
		fp, f.buckets[i][slot] = f.buckets[i][slot], fp
		f.Kicked++
		i = f.altIndex(i, fp)
		if f.bucketInsert(i, fp) {
			f.count++
			return true
		}
	}
	return false
}

// Delete removes one copy of key's fingerprint and reports whether one was
// found. Deleting a never-inserted key can, with fingerprint-collision
// probability, remove another key's fingerprint — a documented cuckoo filter
// property; callers only delete keys they inserted.
func (f *Filter) Delete(key uint64) bool {
	fp := fingerprint(key)
	i1 := f.index1(key)
	if f.bucketDelete(i1, fp) {
		f.count--
		return true
	}
	if f.bucketDelete(f.altIndex(i1, fp), fp) {
		f.count--
		return true
	}
	return false
}

func (f *Filter) bucketDelete(i uint64, fp uint16) bool {
	b := &f.buckets[i]
	for s := 0; s < SlotsPerBucket; s++ {
		if b[s] == fp {
			b[s] = 0
			return true
		}
	}
	return false
}

// Reset clears the filter in place.
func (f *Filter) Reset() {
	for i := range f.buckets {
		f.buckets[i] = [SlotsPerBucket]uint16{}
	}
	f.count = 0
}
