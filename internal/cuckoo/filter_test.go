package cuckoo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertContains(t *testing.T) {
	f := New(1000)
	for k := uint64(0); k < 1000; k++ {
		if !f.Insert(k) {
			t.Fatalf("insert %d failed at load %.2f", k, f.LoadFactor())
		}
	}
	for k := uint64(0); k < 1000; k++ {
		if !f.Contains(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
	if f.Len() != 1000 {
		t.Errorf("Len = %d, want 1000", f.Len())
	}
}

// The defining property: no false negatives, ever.
func TestNoFalseNegativesProperty(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := New(2000)
		keys := map[uint64]bool{}
		for i := 0; i < 1500; i++ {
			k := rng.Uint64() >> 20 // VPN-like
			if f.Insert(k) {
				keys[k] = true
			}
		}
		for k := range keys {
			if !f.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := New(10000)
	for k := uint64(0); k < 10000; k++ {
		f.Insert(k)
	}
	fp := 0
	probes := 200000
	for i := 0; i < probes; i++ {
		if f.Contains(uint64(1_000_000 + i)) {
			fp++
		}
	}
	rate := float64(fp) / float64(probes)
	// 12-bit fingerprints, 4-way buckets: expect ~0.2 %. Allow 1 %.
	if rate > 0.01 {
		t.Errorf("false-positive rate %.4f too high", rate)
	}
	if rate == 0 {
		t.Log("warning: observed zero false positives (unusual but legal)")
	}
}

func TestDelete(t *testing.T) {
	f := New(100)
	f.Insert(42)
	if !f.Delete(42) {
		t.Fatal("delete of present key failed")
	}
	if f.Contains(42) {
		// Could be a collision with another key's fingerprint, but the
		// filter is otherwise empty, so this must not happen.
		t.Fatal("key still present after delete")
	}
	if f.Len() != 0 {
		t.Errorf("Len = %d after delete", f.Len())
	}
	if f.Delete(42) {
		t.Error("delete of absent key returned true")
	}
}

func TestDeleteRestoresCapacity(t *testing.T) {
	f := New(500)
	for k := uint64(0); k < 500; k++ {
		f.Insert(k)
	}
	for k := uint64(0); k < 500; k++ {
		if !f.Delete(k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	if f.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", f.Len())
	}
	for k := uint64(1000); k < 1500; k++ {
		if !f.Insert(k) {
			t.Fatalf("re-insert %d failed", k)
		}
	}
}

func TestAltIndexSymmetry(t *testing.T) {
	f := New(1024)
	for i := 0; i < 1000; i++ {
		key := rand.Uint64()
		fp := fingerprint(key)
		i1 := f.index1(key)
		i2 := f.altIndex(i1, fp)
		if f.altIndex(i2, fp) != i1 {
			t.Fatalf("alt index not symmetric for key %#x", key)
		}
	}
}

func TestFingerprintNeverZero(t *testing.T) {
	fn := func(key uint64) bool { return fingerprint(key) != 0 }
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestHighLoadInsert(t *testing.T) {
	f := New(4096)
	inserted := 0
	for k := uint64(0); k < 4096; k++ {
		if f.Insert(k) {
			inserted++
		}
	}
	if inserted < 4050 {
		t.Errorf("only %d/4096 inserted; filter sized too tight", inserted)
	}
}

func TestReset(t *testing.T) {
	f := New(100)
	for k := uint64(0); k < 100; k++ {
		f.Insert(k)
	}
	f.Reset()
	if f.Len() != 0 {
		t.Fatalf("Len = %d after reset", f.Len())
	}
	for k := uint64(0); k < 100; k++ {
		if f.Contains(k) && k%7 == 0 {
			t.Fatalf("stale key %d after reset", k)
		}
	}
}

func TestCapacityRounding(t *testing.T) {
	f := New(1000)
	if f.Capacity()&(f.Capacity()-1) != 0 && f.Capacity()%SlotsPerBucket != 0 {
		t.Errorf("capacity %d not bucket-aligned power of two", f.Capacity())
	}
	if f.Capacity() < 1000 {
		t.Errorf("capacity %d below requested 1000", f.Capacity())
	}
}

func BenchmarkInsert(b *testing.B) {
	f := New(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f.Len() > 60000 {
			f.Reset()
		}
		f.Insert(uint64(i))
	}
}

func BenchmarkContains(b *testing.B) {
	f := New(1 << 16)
	for k := uint64(0); k < 60000; k++ {
		f.Insert(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(uint64(i))
	}
}
