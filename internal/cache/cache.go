// Package cache models the GPM data caches of Table I: per-CU L1
// vector/scalar/instruction caches and the per-GPM shared L2, all
// set-associative with LRU replacement and bounded MSHR files. The model is
// presence-only (no dirty writeback traffic): the translation study's
// workloads are read-dominated and the paper's bottleneck is translation, so
// the data path only needs to produce realistic latencies and downstream
// request rates.
package cache

import (
	"hdpat/internal/sim"
	"hdpat/internal/vm"
)

// LineSize is the cacheline size in bytes; GPMs access remote memory at
// cacheline granularity (§II-A).
const LineSize = 64

// LineOf returns the line address (tag+index portion) of a physical address.
func LineOf(a vm.PAddr) uint64 { return uint64(a) / LineSize }

// Config sizes a cache.
type Config struct {
	SizeBytes int
	Ways      int
	MSHRs     int
	Latency   sim.VTime
}

// Sets derives the set count from size, ways and line size.
func (c Config) Sets() int {
	s := c.SizeBytes / (c.Ways * LineSize)
	if s < 1 {
		s = 1
	}
	return s
}

// Stats counts cache events.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	MSHRMerge uint64
	MSHRStall uint64
}

// HitRate returns hits/(hits+misses).
func (s Stats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Waiter is woken when an outstanding miss fills. Waiters are long-lived
// components or pooled per-operation state machines, so tracking a miss
// allocates nothing — this replaced the previous per-miss func() callback.
type Waiter interface {
	LineFilled(line uint64)
}

// WaiterFunc adapts a closure to Waiter for cold paths and tests.
type WaiterFunc func(line uint64)

// LineFilled implements Waiter.
func (f WaiterFunc) LineFilled(line uint64) { f(line) }

// Cache is a set-associative LRU cache of line addresses.
type Cache struct {
	cfg   Config
	sets  [][]uint64 // recency-ordered line addresses per set (0 = MRU)
	valid [][]bool
	Stats Stats

	pending map[uint64][]Waiter
}

// New creates a cache.
func New(cfg Config) *Cache {
	n := cfg.Sets()
	c := &Cache{cfg: cfg, sets: make([][]uint64, n), pending: make(map[uint64][]Waiter)}
	for i := range c.sets {
		c.sets[i] = make([]uint64, 0, cfg.Ways)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Latency returns the hit latency.
func (c *Cache) Latency() sim.VTime { return c.cfg.Latency }

func (c *Cache) setOf(line uint64) int { return int(line % uint64(len(c.sets))) }

// Lookup probes for a line, promoting hits to MRU.
func (c *Cache) Lookup(line uint64) bool {
	set := c.sets[c.setOf(line)]
	for i, l := range set {
		if l == line {
			copy(set[1:i+1], set[:i])
			set[0] = line
			c.Stats.Hits++
			return true
		}
	}
	c.Stats.Misses++
	return false
}

// Insert fills a line, evicting LRU on conflict.
func (c *Cache) Insert(line uint64) {
	si := c.setOf(line)
	set := c.sets[si]
	for i, l := range set {
		if l == line {
			copy(set[1:i+1], set[:i])
			set[0] = line
			return
		}
	}
	if len(set) < c.cfg.Ways {
		set = append(set, 0)
	} else {
		c.Stats.Evictions++
	}
	copy(set[1:], set)
	set[0] = line
	c.sets[si] = set
}

// MissTrack registers an outstanding miss on line.
//
//	primary=true  — caller must fetch the line downstream and call Fill.
//	primary=false, ok=true — merged; w wakes at Fill time.
//	ok=false      — MSHR file full; caller must stall/retry.
func (c *Cache) MissTrack(line uint64, w Waiter) (primary, ok bool) {
	if ws, exists := c.pending[line]; exists {
		c.pending[line] = append(ws, w)
		c.Stats.MSHRMerge++
		return false, true
	}
	if len(c.pending) >= c.cfg.MSHRs {
		c.Stats.MSHRStall++
		return false, false
	}
	c.pending[line] = []Waiter{w}
	return true, true
}

// OutstandingMisses returns occupied MSHR count.
func (c *Cache) OutstandingMisses() int { return len(c.pending) }

// Fill completes an outstanding miss: installs the line and releases every
// merged waiter.
func (c *Cache) Fill(line uint64) {
	c.Insert(line)
	ws := c.pending[line]
	delete(c.pending, line)
	for _, w := range ws {
		w.LineFilled(line)
	}
}

// Flush empties the cache (MSHRs are unaffected).
func (c *Cache) Flush() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
}

// Len returns resident line count.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.sets {
		n += len(s)
	}
	return n
}
