package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hdpat/internal/vm"
)

func mk(size, ways, mshrs int) *Cache {
	return New(Config{SizeBytes: size, Ways: ways, MSHRs: mshrs, Latency: 1})
}

func TestSetsDerivation(t *testing.T) {
	// 16 KB, 4-way, 64 B lines -> 64 sets (L1 of Table I).
	c := Config{SizeBytes: 16 << 10, Ways: 4}
	if c.Sets() != 64 {
		t.Errorf("Sets = %d, want 64", c.Sets())
	}
	// 4 MB, 16-way -> 4096 sets (L2).
	c = Config{SizeBytes: 4 << 20, Ways: 16}
	if c.Sets() != 4096 {
		t.Errorf("Sets = %d, want 4096", c.Sets())
	}
}

func TestLineOf(t *testing.T) {
	if LineOf(vm.PAddr(0)) != 0 || LineOf(vm.PAddr(63)) != 0 || LineOf(vm.PAddr(64)) != 1 {
		t.Error("LineOf boundary arithmetic wrong")
	}
}

func TestMissThenHit(t *testing.T) {
	c := mk(1024, 2, 4)
	if c.Lookup(5) {
		t.Fatal("hit in empty cache")
	}
	c.Insert(5)
	if !c.Lookup(5) {
		t.Fatal("miss after insert")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Errorf("stats %+v", c.Stats)
	}
}

func TestLRU(t *testing.T) {
	c := New(Config{SizeBytes: 2 * LineSize, Ways: 2, MSHRs: 4}) // 1 set, 2 ways
	c.Insert(0)
	c.Insert(1)
	c.Lookup(0)
	c.Insert(2) // evicts 1
	if c.Lookup(1) {
		t.Error("LRU line survived")
	}
	if !c.Lookup(0) {
		t.Error("MRU line evicted")
	}
}

func TestMSHRMergeAndFill(t *testing.T) {
	c := mk(1024, 2, 2)
	fired := 0
	p1, ok1 := c.MissTrack(9, WaiterFunc(func(uint64) { fired++ }))
	p2, ok2 := c.MissTrack(9, WaiterFunc(func(uint64) { fired++ }))
	if !p1 || !ok1 || p2 || !ok2 {
		t.Fatalf("track results %v,%v,%v,%v", p1, ok1, p2, ok2)
	}
	c.Fill(9)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if !c.Lookup(9) {
		t.Fatal("line absent after Fill")
	}
	if c.OutstandingMisses() != 0 {
		t.Fatal("MSHR not released")
	}
}

func TestMSHRFull(t *testing.T) {
	c := mk(1024, 2, 1)
	c.MissTrack(1, WaiterFunc(func(uint64) {}))
	_, ok := c.MissTrack(2, WaiterFunc(func(uint64) {}))
	if ok {
		t.Fatal("allocation beyond MSHR capacity succeeded")
	}
	if c.Stats.MSHRStall != 1 {
		t.Errorf("MSHRStall = %d", c.Stats.MSHRStall)
	}
}

// Property: capacity invariant and insert-lookup consistency.
func TestCacheProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := mk(LineSize*16, 4, 8) // 4 sets x 4 ways
		for i := 0; i < 400; i++ {
			line := uint64(rng.Intn(64))
			c.Insert(line)
			if c.Len() > 16 {
				return false
			}
			// Inserted line is immediately resident.
			if !c.Lookup(line) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFlush(t *testing.T) {
	c := mk(1024, 4, 4)
	for i := uint64(0); i < 8; i++ {
		c.Insert(i)
	}
	c.Flush()
	if c.Len() != 0 {
		t.Errorf("Len = %d after flush", c.Len())
	}
}
