package gpm

import (
	"hdpat/internal/cuckoo"
	"hdpat/internal/metrics"
	"hdpat/internal/tlb"
	"hdpat/internal/vm"
	"hdpat/internal/xlat"
)

// AuxCache is the auxiliary translation store a caching-layer GPM exposes to
// its peers: a TLB-like structure carved out of the GMMU cache space
// (§IV-B/F: "due to the limited space of GMMU, GPM cannot afford remote page
// table replication") plus a cuckoo filter kept exactly in sync with its
// contents so peer probes can be answered quickly and negatively without a
// full lookup (Fig 9). Each entry remembers how it arrived — demand push or
// proactive delivery — so hits can be attributed for the Fig 16 breakdown.
type AuxCache struct {
	tlb     *tlb.TLB
	filter  *cuckoo.Filter
	origins map[tlb.Key]xlat.PushOrigin
}

// NewAuxCache creates an auxiliary cache with the given TLB geometry.
func NewAuxCache(cfg tlb.Config) *AuxCache {
	a := &AuxCache{
		tlb:     tlb.New(cfg),
		filter:  cuckoo.New(cfg.Sets * cfg.Ways * 2),
		origins: make(map[tlb.Key]xlat.PushOrigin),
	}
	a.tlb.OnEvict = func(p vm.PTE) {
		k := tlb.Key{PID: p.PID, VPN: p.VPN}
		a.filter.Delete(filterKey(k))
		delete(a.origins, k)
	}
	return a
}

func filterKey(k tlb.Key) uint64 {
	return uint64(k.VPN) ^ uint64(k.PID)<<48
}

// Install stores a pushed PTE with its origin, keeping the filter in sync.
func (a *AuxCache) Install(pte vm.PTE, origin xlat.PushOrigin) {
	k := tlb.Key{PID: pte.PID, VPN: pte.VPN}
	if _, had := a.tlb.Peek(k); !had {
		a.filter.Insert(filterKey(k))
	}
	a.origins[k] = origin
	a.tlb.Insert(pte)
}

// MightHave is the fast cuckoo-filter check a probe performs first;
// false positives possible, false negatives not.
func (a *AuxCache) MightHave(k tlb.Key) bool {
	return a.filter.Contains(filterKey(k))
}

// Probe looks up k, reporting the entry and how it originally arrived.
func (a *AuxCache) Probe(k tlb.Key) (vm.PTE, xlat.PushOrigin, bool) {
	pte, ok := a.tlb.Lookup(k)
	if !ok {
		return vm.PTE{}, 0, false
	}
	return pte, a.origins[k], true
}

// AttachMetrics mirrors the underlying TLB's hits and misses into the given
// counters (shared across all auxiliary caches on the wafer).
func (a *AuxCache) AttachMetrics(hits, misses *metrics.Counter) {
	a.tlb.AttachMetrics(hits, misses)
}

// Len returns resident entry count.
func (a *AuxCache) Len() int { return a.tlb.Len() }

// Stats exposes the underlying TLB counters.
func (a *AuxCache) Stats() tlb.Stats { return a.tlb.Stats }
