package gpm

import (
	"hdpat/internal/sim"
	"hdpat/internal/tlb"
)

// Shootdown invalidates every cached translation for the given keys: the
// per-CU L1 TLBs, the shared L2 TLB, the last-level TLB, the auxiliary
// cache (with its cuckoo filter kept in sync by the eviction hook), and the
// local-page-table cuckoo filter. It returns how many entries were dropped
// in total. The paper's scope needs this only when memory is freed (§II-A);
// the page-migration extension reuses it per migrated page.
func (g *GPM) Shootdown(keys []tlb.Key) int {
	// Materialize rather than short-circuit: the filter must reflect local
	// page-table removals even if this GPM has seen no traffic yet, or a
	// later seed would resurrect a mapping the table no longer has.
	g.ensure()
	n := 0
	for _, k := range keys {
		for _, l1 := range g.l1TLBs {
			if l1.Invalidate(k) {
				n++
			}
		}
		if g.l2TLB.Invalidate(k) {
			n++
		}
		if g.llTLB.Invalidate(k) {
			n++
		}
		if _, had := g.aux.tlb.Peek(k); had {
			g.aux.tlb.Invalidate(k)
			g.aux.filter.Delete(filterKey(k))
			delete(g.aux.origins, k)
			n++
		}
		// If the page was local, its filter membership must go too, or the
		// filter would promise a mapping the table no longer has.
		if g.localPT != nil && !g.localPT.Contains(k.VPN) {
			g.filter.Delete(filterKey(k))
		}
	}
	return n
}

// ShootdownLatency returns the cycles a GPM spends processing an
// invalidation of n keys: a fixed decode cost plus per-key port occupancy.
func ShootdownLatency(n int) sim.VTime {
	return 8 + sim.VTime(n)*2
}
