package gpm

import (
	"hdpat/internal/sim"
	"hdpat/internal/vm"
)

// cuState is the issue engine of one compute unit: it walks its address
// trace with bounded memory-level parallelism (cfg.MLP outstanding ops) and
// a fixed issue gap modelling the kernel's compute intensity. It is its own
// event handler — issue wake-ups and gap ticks post the cuState itself, so
// the steady-state issue loop allocates nothing.
type cuState struct {
	g          *GPM
	idx        int
	trace      []vm.VAddr
	next       int
	inflight   int
	stalled    bool      // true when issue is waiting for an op to retire
	stallSince sim.VTime // cycle the current stall began, for stall accounting
	armed      bool      // an issue event is scheduled
}

// Event implements sim.Handler: every event posted on a CU is an issue tick.
func (c *cuState) Event(sim.EventArg) { c.g.issue(c.idx) }

// LoadTrace assigns the address trace CU cu will execute. All traces must be
// loaded before Start; the issue machinery holds pointers into g.cus.
func (g *GPM) LoadTrace(cu int, trace []vm.VAddr) {
	if len(trace) == 0 && len(g.cus) == 0 {
		// Nothing to run and nothing built yet: an all-idle GPM never grows
		// its CU array (or the rest of its hierarchy — see ensure).
		return
	}
	for len(g.cus) < g.cfg.NumCUs {
		g.cus = append(g.cus, cuState{})
	}
	g.cus[cu].trace = trace
}

// Start launches all CUs. gap is the per-CU issue interval in cycles;
// onFinish fires once, when the last op of the last CU completes. A GPM
// whose CUs all have empty traces finishes immediately.
func (g *GPM) Start(gap sim.VTime, onFinish func(id int, at sim.VTime)) {
	if gap < 1 {
		gap = 1
	}
	g.gap = gap
	g.onFinish = onFinish
	if len(g.cus) > 0 {
		for len(g.cus) < g.cfg.NumCUs {
			g.cus = append(g.cus, cuState{})
		}
	}
	g.running = 0
	for i := range g.cus {
		g.cus[i].g = g
		g.cus[i].idx = i
		if len(g.cus[i].trace) > 0 {
			g.running++
		}
	}
	if g.running == 0 {
		// Idle GPM: finish immediately (same event time as the eager
		// layout) without materializing anything.
		fin := g.onFinish
		g.eng.Schedule(0, func() { fin(g.ID, g.eng.Now()) })
		return
	}
	g.ensure()
	for i := range g.cus {
		if len(g.cus[i].trace) > 0 {
			// Stagger CU start cycles slightly to avoid artificial lockstep.
			g.cus[i].armed = true
			g.eng.Post(sim.VTime(i%8), &g.cus[i], sim.EventArg{})
		}
	}
}

func (g *GPM) issue(cu int) {
	c := &g.cus[cu]
	c.armed = false
	if c.next >= len(c.trace) {
		return
	}
	if c.inflight >= g.cfg.MLP {
		c.stalled = true
		c.stallSince = g.eng.Now()
		return
	}
	va := c.trace[c.next]
	c.next++
	c.inflight++
	g.Stats.OpsIssued++
	if g.m != nil {
		g.m.opsIssued.Inc()
	}
	// Launch the op end to end: translate, then access, then opDone — no
	// per-op callbacks on this path.
	g.getOp(cu, va).startTranslate()
	if c.next < len(c.trace) {
		c.armed = true
		g.eng.Post(g.gap, c, sim.EventArg{})
	}
}

func (g *GPM) opDone(cu int) {
	c := &g.cus[cu]
	c.inflight--
	g.Stats.OpsCompleted++
	if g.m != nil {
		g.m.opsCompleted.Inc()
	}
	if c.stalled && !c.armed {
		stalled := uint64(g.eng.Now() - c.stallSince)
		g.Stats.CUStallCycles += stalled
		if g.m != nil {
			g.m.stallCycles.Add(stalled)
		}
		c.stalled = false
		c.armed = true
		g.eng.Post(0, c, sim.EventArg{})
	}
	if c.next >= len(c.trace) && c.inflight == 0 {
		g.running--
		if g.running == 0 {
			g.Stats.FinishTime = g.eng.Now()
			g.onFinish(g.ID, g.eng.Now())
		}
	}
}

// Outstanding reports total in-flight ops across CUs (for tests).
func (g *GPM) Outstanding() int {
	n := 0
	for i := range g.cus {
		n += g.cus[i].inflight
	}
	return n
}
