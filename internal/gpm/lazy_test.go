package gpm

import (
	"runtime"
	"testing"

	"hdpat/internal/config"
	"hdpat/internal/geom"
	"hdpat/internal/sim"
	"hdpat/internal/vm"
)

// buildGPMs constructs n Table I GPMs, materializing each when eager is
// set, and returns the bytes allocated per GPM (runtime.MemStats.TotalAlloc
// delta — allocation totals are deterministic enough to compare layouts).
func buildGPMs(t *testing.T, n int, eager bool) float64 {
	t.Helper()
	eng := sim.NewEngine()
	cfg := config.Default().GPM
	pt := vm.NewPageTable()
	gpms := make([]*GPM, n)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	for i := range gpms {
		gpms[i] = New(eng, i, geom.XY(i, 0), cfg, vm.Page4K, pt)
		if eager {
			gpms[i].ensure()
		}
	}
	runtime.ReadMemStats(&m1)
	runtime.KeepAlive(gpms)
	return float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n)
}

// Lazy instantiation is the giant-wafer memory story: a constructed but
// untouched GPM must cost a small header, not the full TLB/cache/walker
// hierarchy. The eager (materialized) layout — what every GPM paid before
// laziness — must be at least 5x more expensive per GPM, the bound the
// scale acceptance criteria pin.
func TestLazyGPMsAtLeast5xCheaper(t *testing.T) {
	const n = 899 // a 30x30 wafer's GPM count
	lazy := buildGPMs(t, n, false)
	eager := buildGPMs(t, n, true)
	t.Logf("bytes/GPM: lazy=%.0f eager=%.0f ratio=%.1fx", lazy, eager, eager/lazy)
	if lazy <= 0 || eager <= 0 {
		t.Fatalf("degenerate measurement: lazy=%.0f eager=%.0f", lazy, eager)
	}
	if eager < 5*lazy {
		t.Errorf("eager layout only %.1fx the lazy cost per GPM, want >= 5x (lazy=%.0f eager=%.0f)",
			eager/lazy, lazy, eager)
	}
}

// Stat readers on an unmaterialized GPM must not trip materialization —
// result assembly walks every GPM, and doing so must stay free for the
// idle ones.
func TestStatReadersDoNotMaterialize(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, 0, geom.XY(0, 0), config.Default().GPM, vm.Page4K, vm.NewPageTable())
	stats := g.TLBStats()
	for _, lvl := range []string{"l1", "l2", "ll", "aux"} {
		if _, ok := stats[lvl]; !ok {
			t.Errorf("TLBStats missing %q on unmaterialized GPM", lvl)
		}
	}
	if g.AuxLen() != 0 {
		t.Errorf("AuxLen = %d on unmaterialized GPM", g.AuxLen())
	}
	if s := g.AuxStats(); s.Hits != 0 || s.Misses != 0 {
		t.Errorf("AuxStats = %+v on unmaterialized GPM", s)
	}
	if g.Stats != (Stats{}) {
		t.Errorf("Stats = %+v on unmaterialized GPM", g.Stats)
	}
	if g.mat {
		t.Fatal("stat readers materialized the GPM")
	}
	// Traffic does materialize, exactly once.
	g.ensure()
	if !g.mat {
		t.Fatal("ensure did not materialize")
	}
}
