package gpm

import (
	"testing"

	"hdpat/internal/config"
	"hdpat/internal/geom"
	"hdpat/internal/sim"
	"hdpat/internal/tlb"
	"hdpat/internal/vm"
	"hdpat/internal/xlat"
)

// fakeRemote resolves every request instantly from a reference table.
type fakeRemote struct {
	table map[vm.VPN]vm.PTE
	calls int
	delay sim.VTime
	eng   *sim.Engine
}

func (f *fakeRemote) Name() string { return "fake" }
func (f *fakeRemote) Translate(req *xlat.Request) {
	f.calls++
	pte := f.table[req.VPN]
	f.eng.Schedule(f.delay, func() {
		req.Complete(xlat.Result{PTE: pte, Source: xlat.SourceIOMMU})
	})
}

// testGPM builds a GPM owning pages [0,64) of a 128-page space; the rest is
// remote. Returns the gpm, engine, and the remote stub.
func testGPM(t *testing.T) (*GPM, *sim.Engine, *fakeRemote) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := config.MI100GPM()
	cfg.NumCUs = 2
	cfg.MLP = 4
	localPT := vm.NewPageTable()
	remote := &fakeRemote{table: map[vm.VPN]vm.PTE{}, eng: eng, delay: 100}
	var localVPNs []vm.VPN
	for v := vm.VPN(1); v < 129; v++ {
		pte := vm.PTE{VPN: v, PFN: vm.PFN(v + 1000), Owner: 0, Valid: true}
		if v < 65 {
			localPT.Insert(pte)
			localVPNs = append(localVPNs, v)
		} else {
			pte.Owner = 1
			remote.table[v] = pte
		}
	}
	g := New(eng, 0, geom.XY(1, 1), cfg, vm.Page4K, localPT)
	g.ReseedFilter(0, localVPNs)
	g.Remote = remote
	id := uint64(0)
	g.NextReqID = func() uint64 { id++; return id }
	g.Fetch = fetchFunc(func(requester *GPM, owner int, line uint64) {
		eng.Schedule(200, func() { requester.FillLine(line) })
	})
	return g, eng, remote
}

// fetchFunc adapts a closure to LineFetcher for tests.
type fetchFunc func(requester *GPM, owner int, line uint64)

func (f fetchFunc) FetchLine(requester *GPM, owner int, line uint64) {
	f(requester, owner, line)
}

func addr(v vm.VPN) vm.VAddr { return vm.Page4K.Base(v) }

func TestTranslateLocalWalk(t *testing.T) {
	g, eng, remote := testGPM(t)
	var got vm.PTE
	g.Translate(0, addr(5), func(p vm.PTE) { got = p })
	eng.Run()
	if got.PFN != 1005 {
		t.Fatalf("PFN = %d, want 1005", got.PFN)
	}
	if remote.calls != 0 {
		t.Error("local translation went remote")
	}
	if g.Stats.LocalWalks != 1 || g.Stats.FilterPositive != 1 {
		t.Errorf("stats %+v", g.Stats)
	}
}

func TestTranslateL1Caching(t *testing.T) {
	g, eng, _ := testGPM(t)
	n := 0
	g.Translate(0, addr(5), func(vm.PTE) { n++ })
	eng.Run()
	g.Translate(0, addr(5)+64, func(vm.PTE) { n++ })
	eng.Run()
	if n != 2 {
		t.Fatalf("completions = %d", n)
	}
	if g.Stats.L1TLBHits != 1 {
		t.Errorf("second access should hit L1 TLB: %+v", g.Stats)
	}
	if g.Stats.LocalWalks != 1 {
		t.Errorf("walks = %d, want 1", g.Stats.LocalWalks)
	}
}

func TestTranslateRemoteViaFilterNegative(t *testing.T) {
	g, eng, remote := testGPM(t)
	var got vm.PTE
	start := eng.Now()
	g.Translate(0, addr(100), func(p vm.PTE) { got = p })
	eng.Run()
	if got.PFN != 1100 {
		t.Fatalf("PFN = %d, want 1100", got.PFN)
	}
	if remote.calls != 1 || g.Stats.FilterNegative != 1 {
		t.Errorf("remote=%d stats=%+v", remote.calls, g.Stats)
	}
	if g.Stats.LocalWalks != 0 {
		t.Error("filter-negative path should skip the local walk")
	}
	if g.Stats.RemoteLatencySum == 0 || eng.Now() == start {
		t.Error("remote latency not accounted")
	}
}

func TestFalsePositivePaysDoublePath(t *testing.T) {
	g, eng, remote := testGPM(t)
	// Force a false positive: seed the filter with a VPN that is not in the
	// local page table.
	g.ReseedFilter(0, []vm.VPN{100})
	var done bool
	g.Translate(0, addr(100), func(vm.PTE) { done = true })
	eng.Run()
	if !done {
		t.Fatal("translation never completed")
	}
	if g.Stats.FalsePositives != 1 {
		t.Errorf("false positives = %d, want 1", g.Stats.FalsePositives)
	}
	if remote.calls != 1 {
		t.Errorf("remote calls = %d, want 1", remote.calls)
	}
	if g.Stats.LocalWalks != 1 {
		t.Errorf("local walks = %d, want 1 (wasted walk)", g.Stats.LocalWalks)
	}
}

func TestL2MSHRCoalescesConcurrentMisses(t *testing.T) {
	g, eng, remote := testGPM(t)
	done := 0
	// Two CUs request the same remote page in the same cycle.
	g.Translate(0, addr(100), func(vm.PTE) { done++ })
	g.Translate(1, addr(100), func(vm.PTE) { done++ })
	eng.Run()
	if done != 2 {
		t.Fatalf("completions = %d", done)
	}
	if remote.calls != 1 {
		t.Errorf("remote calls = %d, want 1 (coalesced)", remote.calls)
	}
}

func TestDataAccessLocalVsRemote(t *testing.T) {
	g, eng, _ := testGPM(t)
	pteLocal := vm.PTE{VPN: 5, PFN: 1005, Owner: 0, Valid: true}
	pteRemote := vm.PTE{VPN: 100, PFN: 1100, Owner: 1, Valid: true}
	var tLocal, tRemote sim.VTime
	g.Access(0, addr(5), pteLocal, func() { tLocal = eng.Now() })
	eng.Run()
	base := eng.Now()
	g.Access(0, addr(100), pteRemote, func() { tRemote = eng.Now() - base })
	eng.Run()
	if g.Stats.LocalAccesses != 1 || g.Stats.RemoteAccesses != 1 {
		t.Fatalf("access stats %+v", g.Stats)
	}
	if tRemote <= tLocal {
		t.Errorf("remote access (%d) should be slower than local (%d)", tRemote, tLocal)
	}
}

func TestDataCachesFilterRepeats(t *testing.T) {
	g, eng, _ := testGPM(t)
	pte := vm.PTE{VPN: 5, PFN: 1005, Owner: 0, Valid: true}
	g.Access(0, addr(5), pte, func() {})
	eng.Run()
	reads := g.hbm.Reads
	g.Access(0, addr(5), pte, func() {})
	eng.Run()
	if g.hbm.Reads != reads {
		t.Error("second access to same line should hit L1 cache")
	}
}

func TestCUEngineCompletesTrace(t *testing.T) {
	g, eng, _ := testGPM(t)
	var trace []vm.VAddr
	for v := vm.VPN(1); v < 33; v++ {
		trace = append(trace, addr(v))
	}
	g.LoadTrace(0, trace)
	g.LoadTrace(1, trace[:8])
	finished := false
	g.Start(4, func(id int, at sim.VTime) {
		finished = true
		if id != 0 {
			t.Errorf("finish id = %d", id)
		}
	})
	eng.Run()
	if !finished {
		t.Fatal("GPM never finished")
	}
	if g.Stats.OpsIssued != 40 || g.Stats.OpsCompleted != 40 {
		t.Errorf("ops issued=%d completed=%d, want 40", g.Stats.OpsIssued, g.Stats.OpsCompleted)
	}
	if g.Outstanding() != 0 {
		t.Errorf("outstanding = %d at end", g.Outstanding())
	}
	if g.Stats.FinishTime == 0 {
		t.Error("finish time not recorded")
	}
}

func TestEmptyTraceFinishesImmediately(t *testing.T) {
	g, eng, _ := testGPM(t)
	finished := false
	g.Start(4, func(int, sim.VTime) { finished = true })
	eng.Run()
	if !finished {
		t.Fatal("empty GPM never finished")
	}
}

func TestMLPBoundsOutstanding(t *testing.T) {
	g, eng, _ := testGPM(t)
	// All remote, slow path: outstanding must never exceed MLP per CU.
	var trace []vm.VAddr
	for v := vm.VPN(65); v < 129; v++ {
		trace = append(trace, addr(v))
	}
	g.LoadTrace(0, trace)
	g.Start(1, func(int, sim.VTime) {})
	maxOut := 0
	for eng.Step() {
		if o := g.Outstanding(); o > maxOut {
			maxOut = o
		}
	}
	if maxOut > 4 {
		t.Errorf("outstanding peaked at %d, MLP is 4", maxOut)
	}
	if maxOut < 2 {
		t.Errorf("outstanding peaked at %d; MLP never exploited", maxOut)
	}
}

func TestProbeAuxAndInstall(t *testing.T) {
	g, eng, _ := testGPM(t)
	k := tlb.Key{VPN: 200}
	var hit bool
	g.ProbeAux(k, 18, func(_ vm.PTE, _ xlat.PushOrigin, ok bool) { hit = ok })
	eng.Run()
	if hit {
		t.Fatal("probe hit on empty aux cache")
	}
	g.InstallAux(vm.PTE{VPN: 200, PFN: 9, Valid: true}, xlat.PushPrefetch)
	var origin xlat.PushOrigin
	var pte vm.PTE
	g.ProbeAux(k, 18, func(p vm.PTE, o xlat.PushOrigin, ok bool) { hit, pte, origin = ok, p, o })
	eng.Run()
	if !hit || pte.PFN != 9 || origin != xlat.PushPrefetch {
		t.Fatalf("probe after install: hit=%v pte=%+v origin=%v", hit, pte, origin)
	}
	if g.Stats.ProbesServed != 2 || g.Stats.ProbeHits != 1 {
		t.Errorf("probe stats %+v", g.Stats)
	}
}

func TestProbeL2TLB(t *testing.T) {
	g, eng, _ := testGPM(t)
	// Warm the L2 TLB via a local translation.
	g.Translate(0, addr(5), func(vm.PTE) {})
	eng.Run()
	var hit bool
	g.ProbeL2TLB(tlb.Key{VPN: 5}, func(_ vm.PTE, ok bool) { hit = ok })
	eng.Run()
	if !hit {
		t.Error("L2 TLB probe missed a resident translation")
	}
}

func TestWalkForPeer(t *testing.T) {
	g, eng, _ := testGPM(t)
	var found bool
	var pte vm.PTE
	g.WalkForPeer(tlb.Key{VPN: 10}, func(p vm.PTE, ok bool) { pte, found = p, ok })
	eng.Run()
	if !found || pte.PFN != 1010 {
		t.Fatalf("peer walk: found=%v pte=%+v", found, pte)
	}
	var missFound bool
	g.WalkForPeer(tlb.Key{VPN: 999}, func(_ vm.PTE, ok bool) { missFound = ok })
	eng.Run()
	if missFound {
		t.Error("peer walk found unmapped page")
	}
}

func TestAuxEvictionKeepsFilterInSync(t *testing.T) {
	cfg := tlb.Config{Sets: 1, Ways: 2, MSHRs: 4, Latency: 1}
	a := NewAuxCache(cfg)
	p := func(v vm.VPN) vm.PTE { return vm.PTE{VPN: v, PFN: vm.PFN(v), Valid: true} }
	a.Install(p(1), xlat.PushDemand)
	a.Install(p(2), xlat.PushDemand)
	a.Install(p(3), xlat.PushDemand) // evicts 1
	if a.MightHave(tlb.Key{VPN: 1}) {
		t.Error("filter still claims evicted entry (no collision expected at this occupancy)")
	}
	if !a.MightHave(tlb.Key{VPN: 2}) || !a.MightHave(tlb.Key{VPN: 3}) {
		t.Error("filter lost resident entries")
	}
	if a.Len() != 2 {
		t.Errorf("aux len = %d", a.Len())
	}
}

// When the L2 TLB MSHR file is exhausted, later misses must stall and then
// resume as registers free — with no request lost.
func TestL2TLBMSHRExhaustionRecovers(t *testing.T) {
	eng := sim.NewEngine()
	cfg := config.MI100GPM()
	cfg.NumCUs = 2
	cfg.MLP = 64
	cfg.L2TLB.MSHRs = 2 // tiny: force stalls
	localPT := vm.NewPageTable()
	remote := &fakeRemote{table: map[vm.VPN]vm.PTE{}, eng: eng, delay: 300}
	for v := vm.VPN(100); v < 150; v++ {
		remote.table[v] = vm.PTE{VPN: v, PFN: vm.PFN(v), Owner: 1, Valid: true}
	}
	g := New(eng, 0, geom.XY(1, 1), cfg, vm.Page4K, localPT)
	g.Remote = remote
	id := uint64(0)
	g.NextReqID = func() uint64 { id++; return id }
	done := 0
	for v := vm.VPN(100); v < 150; v++ {
		g.Translate(0, addr(v), func(vm.PTE) { done++ })
	}
	eng.Run()
	if done != 50 {
		t.Fatalf("completed %d of 50 with exhausted MSHRs", done)
	}
	if g.Stats.MSHRRetries == 0 {
		t.Error("no stalls recorded despite 2 MSHRs and 50 concurrent misses")
	}
}

// Same for the data-side L2 cache MSHRs.
func TestL2DataMSHRExhaustionRecovers(t *testing.T) {
	g, eng, _ := testGPM(t)
	done := 0
	// 40 distinct remote lines against 64 MSHRs via the remote fetch path;
	// shrink by issuing to lines that all miss while fetch takes 200 cycles.
	for i := 0; i < 40; i++ {
		pte := vm.PTE{VPN: 100, PFN: 1100, Owner: 1, Valid: true}
		va := addr(100) + vm.VAddr(i*64)
		g.Access(0, va, pte, func() { done++ })
	}
	eng.Run()
	if done != 40 {
		t.Fatalf("completed %d of 40", done)
	}
}

func TestShootdownClearsAllStructures(t *testing.T) {
	g, eng, _ := testGPM(t)
	// Warm every structure: local translation (L1/L2/LLTLB), aux install.
	g.Translate(0, addr(5), func(vm.PTE) {})
	eng.Run()
	g.InstallAux(vm.PTE{VPN: 5, PFN: 1, Valid: true}, xlat.PushDemand)
	keys := []tlb.Key{{VPN: 5}}
	dropped := g.Shootdown(keys)
	if dropped < 3 {
		t.Errorf("dropped %d entries, want >= 3 (L1, L2, aux at least)", dropped)
	}
	// Every structure must now miss.
	if _, _, ok := g.Aux().Probe(tlb.Key{VPN: 5}); ok {
		t.Error("aux still holds shot-down entry")
	}
	if g.Aux().MightHave(tlb.Key{VPN: 5}) {
		t.Error("aux filter still claims shot-down entry")
	}
	// A fresh translation must re-walk (L1/L2 cleared).
	walks := g.Stats.LocalWalks
	g.Translate(0, addr(5), func(vm.PTE) {})
	eng.Run()
	if g.Stats.LocalWalks != walks+1 {
		t.Error("translation after shootdown did not re-walk")
	}
}

func TestShootdownSyncsLocalFilter(t *testing.T) {
	g, eng, _ := testGPM(t)
	// Unmap page 5 from the local table, then shoot it down: the cuckoo
	// filter must stop claiming it so future requests go remote directly.
	g.localPT.Remove(5)
	g.Shootdown([]tlb.Key{{VPN: 5}})
	g.Translate(0, addr(5), func(vm.PTE) {})
	eng.Run()
	if g.Stats.FilterPositive != 0 {
		t.Error("filter still positive for unmapped, shot-down page")
	}
}
