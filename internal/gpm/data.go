package gpm

import (
	"hdpat/internal/cache"
	"hdpat/internal/sim"
	"hdpat/internal/vm"
)

// LineFetcher retrieves a cacheline from the owner GPM's memory on behalf of
// requester; the line arrives via requester.FillLine. The system builder
// implements it over the mesh with pooled fetch state machines.
type LineFetcher interface {
	FetchLine(requester *GPM, owner int, line uint64)
}

// Access performs the data access for a translated address: per-CU L1,
// shared L2, then local HBM or a remote fetch from the owner GPM at
// cacheline granularity (§II-A zero-copy). done fires when the data is
// available to the CU. The closure-compat form of the op state machine
// (op.go).
func (g *GPM) Access(cu int, va vm.VAddr, pte vm.PTE, done func()) {
	g.ensure()
	o := g.getOp(cu, va)
	o.doneD = done
	o.startAccess(pte)
}

// Event implements sim.Handler: the GPM's only typed event is an L2 data
// fill (arg.A is the line), posted at HBM completion or remote arrival.
func (g *GPM) Event(arg sim.EventArg) { g.fillL2(arg.A) }

// FillLine delivers a remotely fetched cacheline (LineFetcher completion).
func (g *GPM) FillLine(line uint64) { g.fillL2(line) }

// fillL2 completes an outstanding L2 data miss, then drains stalled accesses
// while MSHR registers remain free. Waiters that hit the freshly filled line
// or merge into another register do not consume a register, so the loop
// keeps waking until one allocates or the queue empties — this is what
// prevents stranding when the last outstanding miss completes.
func (g *GPM) fillL2(line uint64) {
	g.l2Cache.Fill(line)
	for len(g.l2DataWait) > 0 && g.l2Cache.OutstandingMisses() < g.cfg.L2Cache.MSHRs {
		w := g.l2DataWait[0]
		g.l2DataWait = g.l2DataWait[1:]
		w.stepD2()
	}
}

// ServeLine services a remote cacheline fetch against this GPM's HBM; the
// system's fetch path routes requests here and carries the response back.
func (g *GPM) ServeLine(line uint64, done func()) {
	g.ensure()
	doneAt := g.hbm.Access(g.eng.Now(), cache.LineSize)
	g.eng.At(doneAt, done)
}

// ServeLineH is ServeLine with a typed completion.
func (g *GPM) ServeLineH(line uint64, h sim.Handler, arg sim.EventArg) {
	g.ensure()
	doneAt := g.hbm.Access(g.eng.Now(), cache.LineSize)
	g.eng.PostAt(doneAt, h, arg)
}
