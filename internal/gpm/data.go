package gpm

import (
	"hdpat/internal/cache"
	"hdpat/internal/vm"
)

// Access performs the data access for a translated address: per-CU L1,
// shared L2, then local HBM or a remote fetch from the owner GPM at
// cacheline granularity (§II-A zero-copy). done fires when the data is
// available to the CU.
func (g *GPM) Access(cu int, va vm.VAddr, pte vm.PTE, done func()) {
	pa := g.ps.Translate(va, pte.PFN)
	line := cache.LineOf(pa)
	l1 := g.l1Caches[cu]
	g.eng.Schedule(l1.Latency(), func() {
		if l1.Lookup(line) {
			done()
			return
		}
		g.accessL2(cu, line, pte.Owner, done)
	})
}

func (g *GPM) accessL2(cu int, line uint64, owner int, done func()) {
	g.eng.Schedule(g.l2Cache.Latency(), func() { g.tryAccessL2(cu, line, owner, done) })
}

// tryAccessL2 is the post-latency L2 access body. It runs synchronously so
// the MSHR drain loop in fillL2 can observe register consumption between
// waiters.
func (g *GPM) tryAccessL2(cu int, line uint64, owner int, done func()) {
	l1 := g.l1Caches[cu]
	if g.l2Cache.Lookup(line) {
		l1.Insert(line)
		done()
		return
	}
	fill := func() {
		l1.Insert(line)
		done()
	}
	primary, ok := g.l2Cache.MissTrack(line, fill)
	if !ok {
		// L2 MSHRs exhausted: stall at the L2 boundary; resume when a
		// register frees.
		g.Stats.MSHRRetries++
		g.l2DataWait = append(g.l2DataWait, func() { g.tryAccessL2(cu, line, owner, done) })
		return
	}
	if !primary {
		return
	}
	if owner == g.ID {
		g.Stats.LocalAccesses++
		doneAt := g.hbm.Access(g.eng.Now(), cache.LineSize)
		g.eng.At(doneAt, func() { g.fillL2(line) })
		return
	}
	g.Stats.RemoteAccesses++
	g.FetchRemote(owner, line, func() { g.fillL2(line) })
}

// fillL2 completes an outstanding L2 data miss, then drains stalled accesses
// while MSHR registers remain free. Waiters that hit the freshly filled line
// or merge into another register do not consume a register, so the loop
// keeps waking until one allocates or the queue empties — this is what
// prevents stranding when the last outstanding miss completes.
func (g *GPM) fillL2(line uint64) {
	g.l2Cache.Fill(line)
	for len(g.l2DataWait) > 0 && g.l2Cache.OutstandingMisses() < g.cfg.L2Cache.MSHRs {
		w := g.l2DataWait[0]
		g.l2DataWait = g.l2DataWait[1:]
		w()
	}
}

// ServeLine services a remote cacheline fetch against this GPM's HBM; the
// system's fetch path routes requests here and carries the response back.
func (g *GPM) ServeLine(line uint64, done func()) {
	doneAt := g.hbm.Access(g.eng.Now(), cache.LineSize)
	g.eng.At(doneAt, done)
}
