package gpm

import (
	"hdpat/internal/cache"
	"hdpat/internal/sim"
	"hdpat/internal/tlb"
	"hdpat/internal/vm"
)

// opState names the stage an in-flight memory operation resumes at when its
// next event fires. The states mirror, one for one, the closure chain they
// replaced (Translate → translateL2 → checkFilter → LLTLB → walk, then
// Access → L2 → fill), so the event schedule — and therefore every result —
// is unchanged; only the per-step closure allocations are gone.
type opState uint8

const (
	opL1       opState = iota // L1 TLB lookup after its latency
	opL2                      // shared L2 TLB lookup after its latency
	opFilter                  // cuckoo filter decision
	opLL                      // last-level GMMU cache lookup
	opWalkDone                // local page-table walk completed
	opRetryL2                 // woken after stalling on a full L2 TLB MSHR file
	opD1                      // L1 data cache lookup
	opD2                      // shared L2 data access body
)

// op is one memory operation in flight: a pooled state machine that is its
// own event handler (sim.Handler), TLB MSHR waiter (tlb.Filler) and data
// MSHR waiter (cache.Waiter). The phases are strictly sequential, so one
// object can wear all three hats without conflict. CU-issued ops run
// translate → access → opDone end to end; the exported Translate/Access
// closure wrappers set doneT/doneD instead and stop after their phase.
type op struct {
	g     *GPM
	cu    int
	va    vm.VAddr
	k     tlb.Key
	line  uint64
	owner int
	state opState

	doneT func(vm.PTE) // compat completion for Translate(); nil on the CU path
	doneD func()       // compat completion for Access(); nil on the CU path
}

// getOp leases an op from the GPM's free list. The engine is
// single-threaded, so a plain slice beats sync.Pool here.
func (g *GPM) getOp(cu int, va vm.VAddr) *op {
	var o *op
	if n := len(g.opFree); n > 0 {
		o = g.opFree[n-1]
		g.opFree = g.opFree[:n-1]
	} else {
		o = new(op)
	}
	*o = op{g: g, cu: cu, va: va}
	return o
}

// putOp recycles a finished op. Ops are freed exactly once, at the end of
// their last phase; no event or MSHR entry may reference them afterwards.
func (g *GPM) putOp(o *op) {
	*o = op{}
	g.opFree = append(g.opFree, o)
}

// Event resumes the operation at its recorded stage.
func (o *op) Event(sim.EventArg) {
	switch o.state {
	case opL1:
		o.stepL1()
	case opL2:
		o.stepL2()
	case opFilter:
		o.stepFilter()
	case opLL:
		o.stepLL()
	case opWalkDone:
		o.stepWalkDone()
	case opRetryL2:
		o.tryL2()
	case opD1:
		o.stepD1()
	case opD2:
		o.stepD2()
	}
}

// --- Translation phase ------------------------------------------------------

// startTranslate begins the translation walk for o.va.
func (o *op) startTranslate() {
	g := o.g
	o.k = tlb.Key{PID: 0, VPN: g.ps.VPNOf(o.va)}
	o.state = opL1
	g.eng.Post(g.l1TLBs[o.cu].Latency(), o, sim.EventArg{})
}

func (o *op) stepL1() {
	g := o.g
	if pte, ok := g.l1TLBs[o.cu].Lookup(o.k); ok {
		g.Stats.L1TLBHits++
		o.translated(pte)
		return
	}
	o.tryL2()
}

// tryL2 attempts to register the miss at the shared L2 TLB; also the resume
// point after an MSHR-full stall.
func (o *op) tryL2() {
	g := o.g
	primary, ok := g.l2MSHR.Allocate(o.k, o)
	if !ok {
		// MSHR file full: the request stalls at the L2 TLB boundary and
		// resumes when a register frees.
		g.Stats.MSHRRetries++
		g.l2TLBWait = append(g.l2TLBWait, o)
		return
	}
	if !primary {
		return // coalesced into an earlier miss; Fill wakes us
	}
	o.state = opL2
	g.eng.Post(g.l2TLB.Latency(), o, sim.EventArg{})
}

func (o *op) stepL2() {
	g := o.g
	if pte, ok := g.l2TLB.Lookup(o.k); ok {
		g.Stats.L2TLBHits++
		g.completeL2(o.k, pte)
		return
	}
	o.state = opFilter
	g.eng.Post(g.cfg.CuckooLatency, o, sim.EventArg{})
}

// stepFilter consults the cuckoo filter (§II-B): negative answers bypass the
// whole local path; positives proceed through LLTLB and GMMU, with false
// positives paying the doubled-latency penalty before going remote.
func (o *op) stepFilter() {
	g := o.g
	if !g.filter.Contains(filterKey(o.k)) {
		g.Stats.FilterNegative++
		o.goRemote()
		return
	}
	g.Stats.FilterPositive++
	o.state = opLL
	g.eng.Post(g.llTLB.Latency(), o, sim.EventArg{})
}

func (o *op) stepLL() {
	g := o.g
	if pte, ok := g.llTLB.Lookup(o.k); ok {
		g.Stats.LLTLBHits++
		g.finishLocal(o.k, pte)
		return
	}
	// GMMU page-table walk over the local table, modelling walker pool
	// contention (the same pool WalkForPeer shares).
	g.Stats.LocalWalks++
	start := g.walkers.Acquire(g.eng.Now(), g.cfg.WalkCycles)
	o.state = opWalkDone
	g.eng.PostAt(start+g.cfg.WalkCycles, o, sim.EventArg{})
}

func (o *op) stepWalkDone() {
	g := o.g
	pte, _, found := g.localPT.Lookup(o.k.VPN)
	if found {
		g.llTLB.Insert(pte)
		g.finishLocal(o.k, pte)
		return
	}
	g.Stats.FalsePositives++
	o.goRemote()
}

// goRemote hands the translation to the active scheme via a pooled request.
// The GPM is the request's Completer; its RequestDone drops the creator
// reference after filling the L2 TLB.
func (o *op) goRemote() {
	g := o.g
	g.Stats.RemoteRequests++
	if g.m != nil {
		g.m.remoteReqs.Inc()
	}
	req := g.ReqPool.Get(g.NextReqID(), o.k.PID, o.k.VPN, g.ID, g.eng.Now(), g)
	g.Remote.Translate(req)
}

// Fill implements tlb.Filler: the L2 TLB MSHR resolved this op's key.
func (o *op) Fill(pte vm.PTE, _ bool) {
	o.g.l1TLBs[o.cu].Insert(pte)
	o.translated(pte)
}

// translated ends the translation phase: hand back to a Translate() caller,
// or continue into the data access on the CU path.
func (o *op) translated(pte vm.PTE) {
	if o.doneT != nil {
		done := o.doneT
		o.g.putOp(o)
		done(pte)
		return
	}
	o.startAccess(pte)
}

// --- Data phase -------------------------------------------------------------

// startAccess begins the data access once the translation is known.
func (o *op) startAccess(pte vm.PTE) {
	g := o.g
	pa := g.ps.Translate(o.va, pte.PFN)
	o.line = cache.LineOf(pa)
	o.owner = pte.Owner
	o.state = opD1
	g.eng.Post(g.l1Caches[o.cu].Latency(), o, sim.EventArg{})
}

func (o *op) stepD1() {
	g := o.g
	if g.l1Caches[o.cu].Lookup(o.line) {
		o.accessDone()
		return
	}
	o.state = opD2
	g.eng.Post(g.l2Cache.Latency(), o, sim.EventArg{})
}

// stepD2 is the post-latency L2 access body. It runs synchronously from the
// fillL2 drain loop too, so the loop can observe register consumption
// between waiters.
func (o *op) stepD2() {
	g := o.g
	if g.l2Cache.Lookup(o.line) {
		g.l1Caches[o.cu].Insert(o.line)
		o.accessDone()
		return
	}
	primary, ok := g.l2Cache.MissTrack(o.line, o)
	if !ok {
		// L2 MSHRs exhausted: stall at the L2 boundary; resume when a
		// register frees.
		g.Stats.MSHRRetries++
		g.l2DataWait = append(g.l2DataWait, o)
		return
	}
	if !primary {
		return
	}
	if o.owner == g.ID {
		g.Stats.LocalAccesses++
		doneAt := g.hbm.Access(g.eng.Now(), cache.LineSize)
		// The fill event targets the GPM itself (its Event is fillL2), not
		// the op: merged waiters ride the same fill.
		g.eng.PostAt(doneAt, g, sim.EventArg{A: o.line})
		return
	}
	g.Stats.RemoteAccesses++
	g.Fetch.FetchLine(g, o.owner, o.line)
}

// LineFilled implements cache.Waiter: the L2 data miss for o.line resolved.
func (o *op) LineFilled(uint64) {
	o.g.l1Caches[o.cu].Insert(o.line)
	o.accessDone()
}

// accessDone ends the data phase and recycles the op.
func (o *op) accessDone() {
	if o.doneD != nil {
		done := o.doneD
		o.g.putOp(o)
		done()
		return
	}
	g, cu := o.g, o.cu
	g.putOp(o)
	g.opDone(cu)
}
