// Package gpm models one GPU Processing Module: 32 compute units issuing
// memory operations through the Table I translation hierarchy (per-CU L1
// TLB → shared L2 TLB → cuckoo filter → last-level TLB → GMMU walkers over
// the local page table) and data hierarchy (per-CU L1 → shared L2 → local
// HBM or remote memory over the mesh). Remote translations are delegated to
// the active xlat.RemoteTranslator scheme; peer-facing services (auxiliary
// cache probes, local walks for Trans-FW, L2 TLB probes for Valkyrie) are
// exposed as methods with modelled port contention.
package gpm

import (
	"hdpat/internal/cache"
	"hdpat/internal/config"
	"hdpat/internal/cuckoo"
	"hdpat/internal/dram"
	"hdpat/internal/geom"
	"hdpat/internal/metrics"
	"hdpat/internal/sim"
	"hdpat/internal/tlb"
	"hdpat/internal/trace"
	"hdpat/internal/vm"
	"hdpat/internal/xlat"
)

// Stats aggregates one GPM's activity.
type Stats struct {
	OpsIssued    uint64
	OpsCompleted uint64

	L1TLBHits      uint64
	L2TLBHits      uint64
	FilterNegative uint64
	FilterPositive uint64
	FalsePositives uint64 // filter said local, GMMU walk found nothing
	LLTLBHits      uint64
	LocalWalks     uint64

	RemoteRequests uint64
	RemoteBySource [xlat.NumSources]uint64
	// RemoteLatencySum accumulates remote translation round-trip cycles
	// (request issue at the GMMU boundary to completion), for Fig 17.
	RemoteLatencySum uint64

	ProbesServed uint64
	ProbeHits    uint64

	LocalAccesses  uint64
	RemoteAccesses uint64

	// FinishTime is when the last op completed (Fig 5).
	FinishTime sim.VTime

	MSHRRetries uint64

	// CUStallCycles accumulates cycles CUs spent unable to issue because
	// their MLP window was full — the per-GPM translation-pressure signal.
	CUStallCycles uint64
}

// GPM is one GPU processing module on the wafer.
type GPM struct {
	ID    int
	Coord geom.Coord

	eng *sim.Engine
	cfg config.GPM
	ps  vm.PageSize

	// mat is set once ensure has materialized the translation and data
	// hierarchies below. A GPM that never sees traffic (no trace, no peer
	// probe, no line fetch) stays unmaterialized and costs only this
	// header — on a giant wafer running a concentrated footprint, idle
	// tiles pay nothing for TLB arrays, cuckoo tables or caches.
	mat bool
	// seed, when non-nil, runs once at materialization to populate the
	// cuckoo filter (SeedFilter); it replaces an eager ReseedFilter call
	// at build time.
	seed func(*GPM)
	// reg defers per-level TLB metric attachment to materialization.
	reg *metrics.Registry

	// Translation hierarchy.
	l1TLBs  []*tlb.TLB
	l2TLB   *tlb.TLB
	l2MSHR  *tlb.MSHR
	filter  *cuckoo.Filter
	llTLB   *tlb.TLB
	aux     *AuxCache
	localPT *vm.PageTable
	walkers *sim.Pool

	// probePort serialises peer-facing translation services; local
	// translations have priority in the paper's model, approximated here by
	// the port charging only peer traffic.
	probePort sim.Line

	// Data hierarchy.
	l1Caches []*cache.Cache
	l2Cache  *cache.Cache
	hbm      *dram.HBM

	// Remote is the active translation scheme (set by the system builder).
	Remote xlat.RemoteTranslator
	// Fetch retrieves cachelines from owner GPMs' memories; the fetched
	// line arrives via FillLine.
	Fetch LineFetcher
	// ReqPool leases remote-translation requests. New installs a private
	// pool; the system builder replaces it with the run-wide one.
	ReqPool *xlat.RequestPool
	// NextReqID allocates wafer-unique translation request ids.
	NextReqID func() uint64
	// Trace, when non-nil, receives one request span per remote translation
	// (issue at the GMMU boundary to completion) — the lifecycle anchor the
	// attribution ledger stitches walk/queue/hop spans onto.
	Trace *trace.Tracer

	cus      []cuState
	gap      sim.VTime
	onFinish func(id int, at sim.VTime)
	running  int // CUs still working

	// l2TLBWait queues translation misses stalled on a full L2 TLB MSHR
	// file; they resume as registers free (no polling).
	l2TLBWait []*op
	// l2DataWait queues data misses stalled on full L2 cache MSHRs.
	l2DataWait []*op
	// opFree recycles finished memory-operation state machines.
	opFree []*op

	// m mirrors GPM activity into an attached registry; counters are shared
	// across GPMs (same names), aggregating the wafer.
	m *gpmMetrics

	Stats Stats
}

// gpmMetrics are the GPM-side registry series.
type gpmMetrics struct {
	opsIssued    *metrics.Counter
	opsCompleted *metrics.Counter
	stallCycles  *metrics.Counter
	remoteReqs   *metrics.Counter
	probes       *metrics.Counter
	probeHits    *metrics.Counter
	remoteLat    *metrics.Histogram
}

// AttachMetrics mirrors this GPM's activity into reg. All GPMs attach to
// the same series names, so the registry aggregates the wafer: per-level
// TLB hit/miss counters (tlb.l1, tlb.l2, tlb.ll, tlb.aux), op issue and
// stall counters (gpm.*), and the remote-translation latency histogram.
func (g *GPM) AttachMetrics(reg *metrics.Registry) {
	g.reg = reg
	g.m = &gpmMetrics{
		opsIssued:    reg.Counter("gpm.ops.issued"),
		opsCompleted: reg.Counter("gpm.ops.completed"),
		stallCycles:  reg.Counter("gpm.cu.stall_cycles"),
		remoteReqs:   reg.Counter("gpm.remote.requests"),
		probes:       reg.Counter("gpm.probes.served"),
		probeHits:    reg.Counter("gpm.probes.hits"),
		remoteLat:    reg.Histogram("gpm.remote.latency"),
	}
	// Create the shared per-level TLB counters now so the registry's series
	// set does not depend on which GPMs end up seeing traffic; the actual
	// TLB instances attach at materialization.
	for _, name := range [...]string{"tlb.l1", "tlb.l2", "tlb.ll", "tlb.aux"} {
		reg.Counter(name + ".hits")
		reg.Counter(name + ".misses")
	}
	if g.mat {
		g.attachLevelMetrics()
	}
}

// attachLevelMetrics wires the materialized TLB instances into the shared
// per-level counters. Called from AttachMetrics when already materialized,
// or from ensure when metrics were attached first.
func (g *GPM) attachLevelMetrics() {
	l1Hits, l1Misses := g.reg.Counter("tlb.l1.hits"), g.reg.Counter("tlb.l1.misses")
	for _, t := range g.l1TLBs {
		t.AttachMetrics(l1Hits, l1Misses)
	}
	g.l2TLB.AttachMetrics(g.reg.Counter("tlb.l2.hits"), g.reg.Counter("tlb.l2.misses"))
	g.llTLB.AttachMetrics(g.reg.Counter("tlb.ll.hits"), g.reg.Counter("tlb.ll.misses"))
	g.aux.AttachMetrics(g.reg.Counter("tlb.aux.hits"), g.reg.Counter("tlb.aux.misses"))
}

// New builds a GPM header with the given configuration. The local page
// table must already be populated by the placement layer. The translation
// and data hierarchies (TLB arrays, cuckoo filter, caches, HBM model) are
// NOT built here — ensure materializes them on the first request, so a
// giant wafer's idle tiles allocate nothing.
func New(eng *sim.Engine, id int, coord geom.Coord, cfg config.GPM, ps vm.PageSize, localPT *vm.PageTable) *GPM {
	return &GPM{
		ID: id, Coord: coord, eng: eng, cfg: cfg, ps: ps,
		localPT: localPT,
		ReqPool: xlat.NewRequestPool(),
	}
}

// ensure materializes the GPM's translation and data hierarchies on first
// use. Every traffic entry point (local issue, peer probe, remote walk,
// line fetch, shootdown) funnels through here; pure stat readers
// (TLBStats, AuxLen, AuxStats) deliberately do not, so assembling results
// never defeats the laziness.
func (g *GPM) ensure() {
	if g.mat {
		return
	}
	g.mat = true
	cfg := g.cfg
	g.l2TLB = tlb.New(cfg.L2TLB)
	g.l2MSHR = tlb.NewMSHR(cfg.L2TLB.MSHRs)
	g.llTLB = tlb.New(cfg.GMMUCache)
	g.aux = NewAuxCache(cfg.AuxTLB)
	g.walkers = sim.NewPool(cfg.GMMUWalkers)
	g.l2Cache = cache.New(cfg.L2Cache)
	g.hbm = dram.New(cfg.HBM)
	g.filter = cuckoo.New(g.localPT.Len()*2 + 64)
	for i := 0; i < cfg.NumCUs; i++ {
		g.l1TLBs = append(g.l1TLBs, tlb.New(cfg.L1TLB))
		g.l1Caches = append(g.l1Caches, cache.New(cfg.L1VCache))
	}
	if g.seed != nil {
		seed := g.seed
		g.seed = nil
		seed(g)
	}
	if g.reg != nil {
		g.attachLevelMetrics()
	}
}

// SeedFilter registers fn to populate the cuckoo filter when the GPM
// materializes (typically via ReseedFilter). The system builder uses this
// instead of seeding eagerly so idle tiles never enumerate their local
// pages; fn runs at most once.
func (g *GPM) SeedFilter(fn func(*GPM)) {
	if g.mat {
		fn(g)
		return
	}
	g.seed = fn
}

// TLBStats returns per-level TLB statistics for this GPM: "l1" aggregated
// over all CU-private instances, "l2", "ll" (the last-level GMMU cache) and
// "aux" (the auxiliary translation cache). The attribution layer's TLB
// section reads hit rates and lookup volumes through this seam.
func (g *GPM) TLBStats() map[string]tlb.Stats {
	if !g.mat {
		// Unmaterialized: no lookups ever happened. Report the same four
		// levels, all zero, without building the hierarchy.
		return map[string]tlb.Stats{"l1": {}, "l2": {}, "ll": {}, "aux": {}}
	}
	var l1 tlb.Stats
	for _, t := range g.l1TLBs {
		l1.Add(t.Stats)
	}
	return map[string]tlb.Stats{
		"l1":  l1,
		"l2":  g.l2TLB.Stats,
		"ll":  g.llTLB.Stats,
		"aux": g.aux.Stats(),
	}
}

// ReseedFilter inserts the VPNs of all locally mapped pages into the cuckoo
// filter, as the GMMU does when the driver installs the local page table.
// The page table itself has no iterator by design (hardware walks it, it
// does not enumerate), so the system builder calls this per region chunk
// after allocation.
func (g *GPM) ReseedFilter(pid vm.PID, vpns []vm.VPN) {
	g.ensure()
	for _, v := range vpns {
		g.filter.Insert(filterKey(tlb.Key{PID: pid, VPN: v}))
	}
}

// Aux exposes the auxiliary cache to schemes, materializing on demand.
// Result assembly reads aux occupancy through AuxLen/AuxStats instead,
// which stay nil-safe and never materialize.
func (g *GPM) Aux() *AuxCache {
	g.ensure()
	return g.aux
}

// AuxLen reports the auxiliary cache's live entry count; zero for an
// unmaterialized GPM.
func (g *GPM) AuxLen() int {
	if !g.mat {
		return 0
	}
	return g.aux.Len()
}

// AuxStats reports the auxiliary cache's TLB counters; all zero for an
// unmaterialized GPM.
func (g *GPM) AuxStats() tlb.Stats {
	if !g.mat {
		return tlb.Stats{}
	}
	return g.aux.Stats()
}

// Engine returns the shared simulation engine.
func (g *GPM) Engine() *sim.Engine { return g.eng }

// PageSize returns the system page size.
func (g *GPM) PageSize() vm.PageSize { return g.ps }

// Translate resolves va for the given CU, invoking done with the PTE. The
// closure-compat form of the op state machine (op.go); the CU issue path
// drives ops directly without a per-op callback.
func (g *GPM) Translate(cu int, va vm.VAddr, done func(vm.PTE)) {
	g.ensure()
	o := g.getOp(cu, va)
	o.doneT = done
	o.startTranslate()
}

// completeL2 resolves an outstanding L2 TLB miss and wakes one stalled
// request per freed MSHR register.
func (g *GPM) completeL2(k tlb.Key, pte vm.PTE) {
	g.l2MSHR.Complete(k, pte, true)
	if len(g.l2TLBWait) > 0 {
		w := g.l2TLBWait[0]
		g.l2TLBWait = g.l2TLBWait[1:]
		w.state = opRetryL2
		g.eng.Post(1, w, sim.EventArg{})
	}
}

func (g *GPM) finishLocal(k tlb.Key, pte vm.PTE) {
	g.l2TLB.Insert(pte)
	g.completeL2(k, pte)
}

// walkLocal performs a GMMU page table walk over the local table, modelling
// walker pool contention. It is also the service Trans-FW requests remotely.
func (g *GPM) walkLocal(k tlb.Key, done func(vm.PTE, bool)) {
	g.Stats.LocalWalks++
	start := g.walkers.Acquire(g.eng.Now(), g.cfg.WalkCycles)
	g.eng.At(start+g.cfg.WalkCycles, func() {
		pte, _, found := g.localPT.Lookup(k.VPN)
		done(pte, found)
	})
}

// RequestDone implements xlat.Completer: the scheme resolved a remote
// translation this GPM issued. Fills the L2 TLB, wakes the waiting ops, and
// drops the creator reference — the request recycles once any still-running
// scheme legs release theirs.
func (g *GPM) RequestDone(req *xlat.Request, res xlat.Result) {
	done := g.eng.Now()
	issued := req.Issued
	g.Stats.RemoteBySource[res.Source]++
	g.Stats.RemoteLatencySum += uint64(done - issued)
	if g.m != nil {
		g.m.remoteLat.Observe(uint64(done - issued))
	}
	g.Trace.RequestSpan(uint64(issued), uint64(done), req.ID, int(res.Source), g.ID)
	g.l2TLB.Insert(res.PTE)
	g.completeL2(tlb.Key{PID: req.PID, VPN: req.VPN}, res.PTE)
	req.Unref()
}

// --- Peer-facing services -------------------------------------------------

// ProbeAux services a peer's concentric-layer probe: the probe occupies the
// GPM's translation port, checks the aux cuckoo filter and, if it might hit,
// performs the aux lookup. done reports the PTE, its push origin, and
// whether it hit.
func (g *GPM) ProbeAux(k tlb.Key, latency sim.VTime, done func(vm.PTE, xlat.PushOrigin, bool)) {
	g.ensure()
	g.Stats.ProbesServed++
	if g.m != nil {
		g.m.probes.Inc()
	}
	_, end := g.probePort.Occupy(g.eng.Now(), latency)
	g.eng.At(end, func() {
		if !g.aux.MightHave(k) {
			done(vm.PTE{}, 0, false)
			return
		}
		pte, origin, ok := g.aux.Probe(k)
		if ok {
			g.Stats.ProbeHits++
			if g.m != nil {
				g.m.probeHits.Inc()
			}
		}
		done(pte, origin, ok)
	})
}

// ProbeL2TLB services a Valkyrie-style neighbour probe of the shared L2 TLB.
func (g *GPM) ProbeL2TLB(k tlb.Key, done func(vm.PTE, bool)) {
	g.ensure()
	g.Stats.ProbesServed++
	if g.m != nil {
		g.m.probes.Inc()
	}
	_, end := g.probePort.Occupy(g.eng.Now(), g.l2TLB.Latency())
	g.eng.At(end, func() {
		pte, ok := g.l2TLB.Peek(k)
		if ok {
			g.Stats.ProbeHits++
			if g.m != nil {
				g.m.probeHits.Inc()
			}
		}
		done(pte, ok)
	})
}

// WalkForPeer services a Trans-FW remote walk against this GPM's local page
// table, sharing the GMMU walker pool with local translations.
func (g *GPM) WalkForPeer(k tlb.Key, done func(vm.PTE, bool)) {
	g.ensure()
	g.walkLocal(k, done)
}

// InstallAux accepts a pushed PTE into the auxiliary cache.
func (g *GPM) InstallAux(pte vm.PTE, origin xlat.PushOrigin) {
	g.ensure()
	g.aux.Install(pte, origin)
}

// CacheOnPath installs a translation observed flowing through this GPM
// (route-based caching, §IV-B). It shares the aux structure.
func (g *GPM) CacheOnPath(pte vm.PTE) {
	g.ensure()
	g.aux.Install(pte, xlat.PushDemand)
}

// AddLocalMapping registers a page newly resident in this GPM's HBM (page
// migration target) with the local-page-table cuckoo filter; the page table
// itself is updated by the placement layer.
func (g *GPM) AddLocalMapping(pid vm.PID, vpn vm.VPN) {
	g.ensure()
	g.filter.Insert(filterKey(tlb.Key{PID: pid, VPN: vpn}))
}
