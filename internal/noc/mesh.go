// Package noc models the wafer's interposer mesh network (Table I:
// 768 GB/s per link, 32-cycle latency per link). Each directed link
// serialises traffic at the link bandwidth; a message traverses its path
// hop by hop, paying serialisation plus the fixed hop latency at each
// link. This produces the geometry-dependent latency and the multi-hop
// bandwidth consumption that §III identifies as central to the
// wafer-scale translation problem. The per-hop direction decision is a
// pluggable Router policy (router.go): dimension-ordered XY by default,
// bufferless deflection routing as the cheap-at-scale alternative.
package noc

import (
	"fmt"
	"sync"

	"hdpat/internal/geom"
	"hdpat/internal/metrics"
	"hdpat/internal/sim"
	"hdpat/internal/trace"
)

// Config describes the mesh links. At 1 GHz, 768 GB/s is 768 B/cycle.
// Routing selects the per-hop policy by name (RoutingXY, RoutingDeflect);
// the empty string means XY.
type Config struct {
	HopLatency    sim.VTime
	BytesPerCycle float64
	Routing       string
}

// DefaultConfig matches Table I.
func DefaultConfig() Config {
	return Config{HopLatency: 32, BytesPerCycle: 768}
}

// Stats aggregates network activity. ByteHops, HopsTotal and MaxHops count
// actual link traversals, accumulated per hop as messages move — under XY
// routing that equals the Manhattan precomputation, under deflection it can
// exceed it. ManhattanTotal is the routing-independent lower bound (billed
// at send), so HopsTotal >= ManhattanTotal always, with equality exactly
// when no message was misrouted.
type Stats struct {
	Messages       uint64
	ByteHops       uint64 // sum over hops of message size: the traffic metric of §V-D
	HopsTotal      uint64
	MaxHops        int
	Deflections    uint64 // hops taken off a productive direction (bufferless routing)
	ManhattanTotal uint64 // sum over messages of Manhattan(src, dst)
}

// linkSlab holds the state of materialized links in structure-of-arrays
// form: three parallel slices, four consecutive entries (one per direction)
// per materialized tile. nextFree/busy mirror sim.Line's fields; debt is
// the fractional serialisation carry. Slabs grow only when a tile first
// sends, so an idle region of a giant wafer costs zero link bytes.
type linkSlab struct {
	nextFree []sim.VTime
	busy     []sim.VTime
	debt     []float64
}

// grow appends one zeroed 4-link block and returns its base index.
func (s *linkSlab) grow() int32 {
	base := int32(len(s.busy))
	s.nextFree = append(s.nextFree, 0, 0, 0, 0)
	s.busy = append(s.busy, 0, 0, 0, 0)
	s.debt = append(s.debt, 0, 0, 0, 0)
	return base
}

// noLink marks a tile whose output links have never carried traffic.
const noLink = int32(-1)

// Mesh is the wafer network. It is driven by the shared simulation engine.
type Mesh struct {
	cfg    Config
	eng    *sim.Engine
	layout *geom.Mesh
	// tile[i] is the base index of tile i's 4-link block inside the slab
	// owned by the tile's domain (slabs[0] when serial), or noLink while
	// the tile has never sent. Entries are only ever written by the domain
	// owning the tile, so the sparse map needs no synchronisation.
	tile   []int32
	slabs  []linkSlab
	router Router
	Stats  Stats

	// Sharded mode (Shard): per-tile domain map, per-domain engines and
	// per-domain stats shards. A hop's link state is only ever touched by the
	// domain owning the hop's source tile, so links need no synchronisation;
	// stats are sharded the same way and folded by MergeStats.
	engs  []*sim.Engine
	dom   []int32
	stats []Stats

	// Trace, when non-nil, receives one span per link traversal.
	Trace *trace.Tracer

	reg *metrics.Registry
	m   *meshMetrics

	// tpool recycles in-flight transfer state machines; a transfer lives
	// from Send until final delivery, one event per hop, no allocation per
	// hop or per message in steady state.
	tpool sync.Pool
}

// meshMetrics are the mesh's hot-path registry series.
type meshMetrics struct {
	messages *metrics.Counter
	byteHops *metrics.Counter
	hops     *metrics.Histogram
}

// direction indices
const (
	dirEast = iota
	dirWest
	dirSouth
	dirNorth
)

// New builds the network over the given wafer layout. Link state is
// sparse: only the tile index array is sized by topology; the per-link
// slab entries materialize on first traffic. The routing policy is fixed
// at construction from cfg.Routing; unknown names panic (config.Validate
// rejects them on every public path first).
func New(eng *sim.Engine, layout *geom.Mesh, cfg Config) *Mesh {
	m := &Mesh{cfg: cfg, eng: eng, layout: layout, tile: make([]int32, layout.NumTiles()), slabs: make([]linkSlab, 1), router: routerFor(cfg)}
	for i := range m.tile {
		m.tile[i] = noLink
	}
	return m
}

// Router returns the active routing policy.
func (m *Mesh) Router() Router { return m.router }

// slabFor returns the slab owning tile id's links: the single serial slab,
// or the slab of the tile's domain in sharded mode.
func (m *Mesh) slabFor(id int) *linkSlab {
	if m.dom == nil {
		return &m.slabs[0]
	}
	return &m.slabs[m.dom[id]]
}

// linkIndex returns the slab and element index of tile id's output link in
// direction dir, materializing the tile's 4-link block on first use.
func (m *Mesh) linkIndex(id, dir int) (*linkSlab, int) {
	s := m.slabFor(id)
	base := m.tile[id]
	if base == noLink {
		base = s.grow()
		m.tile[id] = base
	}
	return s, int(base) + dir
}

// linkProbe reports one directed link's busy cycles and fractional debt
// without materializing it; ok is false while the link is untouched.
// Test-only observability into the sparse representation.
func (m *Mesh) linkProbe(id, dir int) (busy sim.VTime, debt float64, ok bool) {
	base := m.tile[id]
	if base == noLink {
		return 0, 0, false
	}
	s := m.slabFor(id)
	return s.busy[int(base)+dir], s.debt[int(base)+dir], true
}

// linkFreeAt reports whether tile id's output link in direction dir is free
// at time now, without materializing it: an untouched link is free by
// definition. Routers use this to probe contention cheaply.
func (m *Mesh) linkFreeAt(id, dir int, now sim.VTime) bool {
	base := m.tile[id]
	if base == noLink {
		return true
	}
	return m.slabFor(id).nextFree[int(base)+dir] <= now
}

// statsFor returns the stats shard charged for activity on tile id: the
// single serial shard, or the shard of the tile's domain in sharded mode.
// Per-hop stats are charged to the domain owning the hop's source tile —
// the same ownership rule links follow — so no shard is written
// concurrently and MergeStats reproduces the serial totals exactly.
func (m *Mesh) statsFor(id int) *Stats {
	if m.dom == nil {
		return &m.Stats
	}
	return &m.stats[m.dom[id]]
}

// AttachMetrics mirrors mesh activity into reg: noc.messages and
// noc.byte_hops counters plus a noc.hops histogram (hops per message).
// FlushMetrics adds the per-link utilisation gauges at end of run.
func (m *Mesh) AttachMetrics(reg *metrics.Registry) {
	m.reg = reg
	m.m = &meshMetrics{
		messages: reg.Counter("noc.messages"),
		byteHops: reg.Counter("noc.byte_hops"),
		hops:     reg.Histogram("noc.hops"),
	}
}

// dirNames label the four directed output links in exposition series.
var dirNames = [4]string{"e", "w", "s", "n"}

// FlushMetrics publishes the per-link busy-cycle gauges
// (noc.link.busy.x<X>y<Y>.<dir>, non-idle links only) and the
// noc.links.busy_total aggregate into the attached registry. Link occupancy
// accumulates monotonically, so this is called once when a run settles.
func (m *Mesh) FlushMetrics() {
	if m.reg == nil {
		return
	}
	var total sim.VTime
	m.VisitLinks(func(c geom.Coord, dir string, busy sim.VTime) {
		total += busy
		if busy > 0 {
			m.reg.Gauge(fmt.Sprintf("noc.link.busy.x%dy%d.%s", c.X, c.Y, dir)).Set(int64(busy))
		}
	})
	m.reg.Gauge("noc.links.busy_total").Set(int64(total))
}

// Shard switches the mesh into domain-sharded mode: dom maps each tile ID
// to its domain and engs holds one engine per domain. Every message step
// then executes on the engine owning its current tile, handing off at
// domain boundaries through sim.Engine.CrossAt — the mesh is the single
// seam all cross-domain traffic rides, and its HopLatency is the
// coordinator's lookahead.
func (m *Mesh) Shard(engs []*sim.Engine, dom []int32) {
	if len(dom) != m.layout.NumTiles() {
		panic("noc: domain map length does not match tile count")
	}
	// Deflection decisions arbitrate same-cycle output contention, which a
	// neighbouring domain can influence inside the lookahead window; the
	// wafer layer declares deflect non-shardable and falls back to serial,
	// so hitting this is a wiring bug.
	if m.router.Name() == RoutingDeflect {
		panic("noc: deflection routing is not shardable (same-cycle output arbitration is cross-domain)")
	}
	m.engs = engs
	m.dom = dom
	m.stats = make([]Stats, len(engs))
	// One link slab per domain: a hop's link state is only touched by the
	// domain owning the hop's source tile, so each slab grows privately and
	// the sharded run needs no link locks. Sharding happens at wiring time,
	// before any traffic, so no materialized state is carried over.
	if len(m.slabs[0].busy) > 0 {
		panic("noc: Shard after traffic has materialized links")
	}
	m.slabs = make([]linkSlab, len(engs))
}

// engFor returns the engine owning tile id.
func (m *Mesh) engFor(id int) *sim.Engine {
	if m.dom == nil {
		return m.eng
	}
	return m.engs[m.dom[id]]
}

// MergeStats folds the per-domain stats shards of a sharded run into
// m.Stats and returns it; on a serial mesh it just returns m.Stats.
func (m *Mesh) MergeStats() Stats {
	for i := range m.stats {
		s := &m.stats[i]
		m.Stats.Messages += s.Messages
		m.Stats.ByteHops += s.ByteHops
		m.Stats.HopsTotal += s.HopsTotal
		if s.MaxHops > m.Stats.MaxHops {
			m.Stats.MaxHops = s.MaxHops
		}
		m.Stats.Deflections += s.Deflections
		m.Stats.ManhattanTotal += s.ManhattanTotal
		*s = Stats{}
	}
	return m.Stats
}

// Layout returns the wafer geometry the mesh routes over.
func (m *Mesh) Layout() *geom.Mesh { return m.layout }

// Config returns the link parameters.
func (m *Mesh) Config() Config { return m.cfg }

func dirOf(from, to geom.Coord) int {
	switch {
	case to.X == from.X+1 && to.Y == from.Y:
		return dirEast
	case to.X == from.X-1 && to.Y == from.Y:
		return dirWest
	case to.X == from.X && to.Y == from.Y+1:
		return dirSouth
	case to.X == from.X && to.Y == from.Y-1:
		return dirNorth
	}
	panic(fmt.Sprintf("noc: %v -> %v is not a single hop", from, to))
}

// nextHop returns the next tile on the dimension-ordered XY route from cur
// toward dst: resolve the X dimension first, then Y — the same step order
// geom.XYPath materialises, computed incrementally so routing never builds a
// path slice.
func nextHop(cur, dst geom.Coord) geom.Coord {
	switch {
	case dst.X > cur.X:
		cur.X++
	case dst.X < cur.X:
		cur.X--
	case dst.Y > cur.Y:
		cur.Y++
	default:
		cur.Y--
	}
	return cur
}

// transfer is one in-flight message: a pooled state machine whose Event
// fires at each hop arrival. cur is the tile the message has reached; the
// final arrival hands off to the typed (h, arg) or closure (deliver)
// completion and recycles the transfer. hops counts actual link traversals
// so far; born is the send time, read by age-based routing policies.
type transfer struct {
	m        *Mesh
	cur, dst geom.Coord
	size     int
	hops     int
	born     sim.VTime
	h        sim.Handler
	arg      sim.EventArg
	deliver  func()
}

// Event advances the message: deliver if it has reached dst, otherwise take
// the next link. Delivery settles the per-message stats that need the
// final hop count — MaxHops and the hops histogram — charged to the
// destination tile's shard.
func (t *transfer) Event(sim.EventArg) {
	if t.cur == t.dst {
		m, h, arg, deliver, hops := t.m, t.h, t.arg, t.deliver, t.hops
		st := m.statsFor(m.layout.NodeID(t.cur))
		if hops > st.MaxHops {
			st.MaxHops = hops
		}
		if m.m != nil {
			m.m.hops.Observe(uint64(hops))
		}
		*t = transfer{}
		m.tpool.Put(t)
		if h != nil {
			h.Event(arg)
		} else {
			deliver()
		}
		return
	}
	t.step()
}

// step asks the routing policy for the next tile, occupies the chosen
// output link and schedules the arrival at the far end. Byte-hops, hop
// counts and deflections accrue here, per actual hop, charged to the
// domain owning the link's source tile — the accounting is exact for any
// Router, minimal paths or not.
func (t *transfer) step() {
	m := t.m
	curID := m.layout.NodeID(t.cur)
	eng := m.engFor(curID)
	now := eng.Now()
	next, deflected := m.router.route(m, t, now)
	s, li := m.linkIndex(curID, dirOf(t.cur, next))
	// Serialisation: accumulate fractional cycles so small messages still
	// consume bandwidth in aggregate.
	s.debt[li] += float64(t.size) / m.cfg.BytesPerCycle
	hold := sim.VTime(0)
	if s.debt[li] >= 1 {
		whole := sim.VTime(s.debt[li])
		s.debt[li] -= float64(whole)
		hold = whole
	}
	// Inline sim.Line.Occupy over the slab entry: start at max(now,
	// nextFree), hold the link, accumulate busy cycles.
	start := now
	if s.nextFree[li] > start {
		start = s.nextFree[li]
	}
	end := start + hold
	s.nextFree[li] = end
	s.busy[li] += hold
	arrive := end + m.cfg.HopLatency
	st := m.statsFor(curID)
	st.HopsTotal++
	st.ByteHops += uint64(t.size)
	if deflected {
		st.Deflections++
	}
	if m.m != nil {
		m.m.byteHops.Add(uint64(t.size))
	}
	t.hops++
	if m.Trace != nil {
		m.Trace.HopSpan(uint64(now), uint64(arrive), t.cur.X, t.cur.Y, next.X, next.Y, t.size, deflected)
	}
	t.cur = next
	if m.dom == nil {
		eng.PostAt(arrive, t, sim.EventArg{})
		return
	}
	// arrive = end + HopLatency >= now + HopLatency >= windowEnd, so the
	// hand-off always satisfies the lookahead contract.
	eng.CrossAt(int(m.dom[m.layout.NodeID(next)]), arrive, t, sim.EventArg{})
}

// send is the single entry point behind both delivery forms.
func (m *Mesh) send(src, dst geom.Coord, size int, h sim.Handler, arg sim.EventArg, deliver func()) {
	st, eng := &m.Stats, m.eng
	if m.dom != nil {
		d := m.dom[m.layout.NodeID(src)]
		st, eng = &m.stats[d], m.engs[d]
	}
	st.Messages++
	man := src.Manhattan(dst) // == len(XYPath): the minimal-path hop count
	st.ManhattanTotal += uint64(man)
	if m.m != nil {
		m.m.messages.Inc()
	}
	if man == 0 {
		if m.m != nil {
			m.m.hops.Observe(0)
		}
		if h != nil {
			eng.Post(1, h, arg)
		} else {
			eng.Schedule(1, deliver)
		}
		return
	}
	t, _ := m.tpool.Get().(*transfer)
	if t == nil {
		t = new(transfer)
	}
	*t = transfer{m: m, cur: src, dst: dst, size: size, born: eng.Now(), h: h, arg: arg, deliver: deliver}
	t.step()
}

// Send routes a message of `size` bytes from src to dst and invokes deliver
// at the arrival time. src == dst delivers after a single local forwarding
// delay of one cycle (an on-tile loopback, no link consumed). The closure
// form; hot senders use SendH.
func (m *Mesh) Send(src, dst geom.Coord, size int, deliver func()) {
	m.send(src, dst, size, nil, sim.EventArg{}, deliver)
}

// SendH is Send with a typed arrival: h.Event(arg) fires at delivery time.
// Nothing is allocated per message in steady state.
func (m *Mesh) SendH(src, dst geom.Coord, size int, h sim.Handler, arg sim.EventArg) {
	m.send(src, dst, size, h, arg, nil)
}

// VisitLinks calls fn for every materialized directed output link with its
// tile coordinate, direction label ("e", "w", "s", "n") and accumulated
// busy cycles, in deterministic tile-major order. Links that never carried
// traffic are not materialized and not visited — their busy cycles are
// identically zero, so every consumer (attribution sampler, heatmap
// builders, conservation checks) observes the same totals as an eager
// walk. Like everything else in the observability layer it is read-only.
func (m *Mesh) VisitLinks(fn func(c geom.Coord, dir string, busy sim.VTime)) {
	for i := range m.tile {
		base := m.tile[i]
		if base == noLink {
			continue
		}
		s := m.slabFor(i)
		c := m.layout.CoordOf(i)
		for d := 0; d < 4; d++ {
			fn(c, dirNames[d], s.busy[int(base)+d])
		}
	}
}

// LatencyLowerBound returns the zero-load latency between two tiles: hops x
// hop latency (serialisation excluded). Useful for analytical checks.
func (m *Mesh) LatencyLowerBound(src, dst geom.Coord) sim.VTime {
	return sim.VTime(src.Manhattan(dst)) * m.cfg.HopLatency
}

// LinkUtilization returns the total busy cycles across all links,
// for coarse congestion reporting.
func (m *Mesh) LinkUtilization() sim.VTime {
	var t sim.VTime
	for i := range m.slabs {
		for _, b := range m.slabs[i].busy {
			t += b
		}
	}
	return t
}
