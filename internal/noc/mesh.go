// Package noc models the wafer's interposer mesh network (Table I:
// 768 GB/s per link, 32-cycle latency per link) with dimension-ordered XY
// routing. Each directed link serialises traffic at the link bandwidth;
// a message traverses its path hop by hop, paying serialisation plus the
// fixed hop latency at each link. This produces the geometry-dependent
// latency and the multi-hop bandwidth consumption that §III identifies as
// central to the wafer-scale translation problem.
package noc

import (
	"fmt"

	"hdpat/internal/geom"
	"hdpat/internal/metrics"
	"hdpat/internal/sim"
	"hdpat/internal/trace"
)

// Config describes the mesh links. At 1 GHz, 768 GB/s is 768 B/cycle.
type Config struct {
	HopLatency    sim.VTime
	BytesPerCycle float64
}

// DefaultConfig matches Table I.
func DefaultConfig() Config {
	return Config{HopLatency: 32, BytesPerCycle: 768}
}

// Stats aggregates network activity.
type Stats struct {
	Messages  uint64
	ByteHops  uint64 // sum over messages of size x hops: the traffic metric of §V-D
	HopsTotal uint64
	MaxHops   int
}

type link struct {
	line sim.Line
	debt float64
}

// Mesh is the wafer network. It is driven by the shared simulation engine.
type Mesh struct {
	cfg    Config
	eng    *sim.Engine
	layout *geom.Mesh
	// links[from][dir]: four directed output links per tile.
	links []([4]*link)
	Stats Stats

	// Trace, when non-nil, receives one span per link traversal.
	Trace *trace.Tracer

	reg *metrics.Registry
	m   *meshMetrics
}

// meshMetrics are the mesh's hot-path registry series.
type meshMetrics struct {
	messages *metrics.Counter
	byteHops *metrics.Counter
	hops     *metrics.Histogram
}

// direction indices
const (
	dirEast = iota
	dirWest
	dirSouth
	dirNorth
)

// New builds the network over the given wafer layout.
func New(eng *sim.Engine, layout *geom.Mesh, cfg Config) *Mesh {
	m := &Mesh{cfg: cfg, eng: eng, layout: layout, links: make([][4]*link, layout.NumTiles())}
	for i := range m.links {
		for d := 0; d < 4; d++ {
			m.links[i][d] = &link{}
		}
	}
	return m
}

// AttachMetrics mirrors mesh activity into reg: noc.messages and
// noc.byte_hops counters plus a noc.hops histogram (hops per message).
// FlushMetrics adds the per-link utilisation gauges at end of run.
func (m *Mesh) AttachMetrics(reg *metrics.Registry) {
	m.reg = reg
	m.m = &meshMetrics{
		messages: reg.Counter("noc.messages"),
		byteHops: reg.Counter("noc.byte_hops"),
		hops:     reg.Histogram("noc.hops"),
	}
}

// dirNames label the four directed output links in exposition series.
var dirNames = [4]string{"e", "w", "s", "n"}

// FlushMetrics publishes the per-link busy-cycle gauges
// (noc.link.busy.x<X>y<Y>.<dir>, non-idle links only) and the
// noc.links.busy_total aggregate into the attached registry. Link occupancy
// accumulates monotonically, so this is called once when a run settles.
func (m *Mesh) FlushMetrics() {
	if m.reg == nil {
		return
	}
	var total sim.VTime
	for i := range m.links {
		c := m.layout.CoordOf(i)
		for d := 0; d < 4; d++ {
			busy := m.links[i][d].line.BusyCycles
			total += busy
			if busy > 0 {
				m.reg.Gauge(fmt.Sprintf("noc.link.busy.x%dy%d.%s", c.X, c.Y, dirNames[d])).Set(int64(busy))
			}
		}
	}
	m.reg.Gauge("noc.links.busy_total").Set(int64(total))
}

// Layout returns the wafer geometry the mesh routes over.
func (m *Mesh) Layout() *geom.Mesh { return m.layout }

// Config returns the link parameters.
func (m *Mesh) Config() Config { return m.cfg }

func dirOf(from, to geom.Coord) int {
	switch {
	case to.X == from.X+1 && to.Y == from.Y:
		return dirEast
	case to.X == from.X-1 && to.Y == from.Y:
		return dirWest
	case to.X == from.X && to.Y == from.Y+1:
		return dirSouth
	case to.X == from.X && to.Y == from.Y-1:
		return dirNorth
	}
	panic(fmt.Sprintf("noc: %v -> %v is not a single hop", from, to))
}

// Send routes a message of `size` bytes from src to dst and invokes deliver
// at the arrival time. src == dst delivers after a single local forwarding
// delay of one cycle (an on-tile loopback, no link consumed).
func (m *Mesh) Send(src, dst geom.Coord, size int, deliver func()) {
	m.Stats.Messages++
	path := m.layout.XYPath(src, dst)
	if len(path) > m.Stats.MaxHops {
		m.Stats.MaxHops = len(path)
	}
	m.Stats.HopsTotal += uint64(len(path))
	m.Stats.ByteHops += uint64(size) * uint64(len(path))
	if m.m != nil {
		m.m.messages.Inc()
		m.m.byteHops.Add(uint64(size) * uint64(len(path)))
		m.m.hops.Observe(uint64(len(path)))
	}
	if len(path) == 0 {
		m.eng.Schedule(1, deliver)
		return
	}
	m.hop(src, path, 0, size, deliver)
}

func (m *Mesh) hop(cur geom.Coord, path []geom.Coord, i, size int, deliver func()) {
	next := path[i]
	l := m.links[m.layout.NodeID(cur)][dirOf(cur, next)]
	// Serialisation: accumulate fractional cycles so small messages still
	// consume bandwidth in aggregate.
	l.debt += float64(size) / m.cfg.BytesPerCycle
	hold := sim.VTime(0)
	if l.debt >= 1 {
		whole := sim.VTime(l.debt)
		l.debt -= float64(whole)
		hold = whole
	}
	now := m.eng.Now()
	_, end := l.line.Occupy(now, hold)
	arrive := end + m.cfg.HopLatency
	if m.Trace != nil {
		m.Trace.HopSpan(uint64(now), uint64(arrive), cur.X, cur.Y, next.X, next.Y, size)
	}
	m.eng.At(arrive, func() {
		if i+1 == len(path) {
			deliver()
			return
		}
		m.hop(next, path, i+1, size, deliver)
	})
}

// VisitLinks calls fn for every directed output link with its tile
// coordinate, direction label ("e", "w", "s", "n") and accumulated busy
// cycles, in deterministic tile-major order. The attribution sampler and
// heatmap builders read link occupancy through this seam; like everything
// else in the observability layer it is read-only.
func (m *Mesh) VisitLinks(fn func(c geom.Coord, dir string, busy sim.VTime)) {
	for i := range m.links {
		c := m.layout.CoordOf(i)
		for d := 0; d < 4; d++ {
			fn(c, dirNames[d], m.links[i][d].line.BusyCycles)
		}
	}
}

// LatencyLowerBound returns the zero-load latency between two tiles: hops x
// hop latency (serialisation excluded). Useful for analytical checks.
func (m *Mesh) LatencyLowerBound(src, dst geom.Coord) sim.VTime {
	return sim.VTime(src.Manhattan(dst)) * m.cfg.HopLatency
}

// LinkUtilization returns the total busy cycles across all links,
// for coarse congestion reporting.
func (m *Mesh) LinkUtilization() sim.VTime {
	var t sim.VTime
	for i := range m.links {
		for d := 0; d < 4; d++ {
			t += m.links[i][d].line.BusyCycles
		}
	}
	return t
}
