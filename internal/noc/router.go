// Routing policies: the per-hop decision seam of the mesh. The fabric —
// sparse link slabs, serialisation debt, stats shards, tracing, pools —
// lives in Mesh; a Router only picks the next tile for an in-flight
// transfer. Two policies ship: dimension-ordered XY (buffered links, the
// Table I default) and bufferless deflection routing, where a tile whose
// productive output is contended misroutes the message onto a free port
// instead of buffering it (cf. "Bufferless NOC Simulation of Large
// Multicore System on GPU Hardware", PAPERS.md).
package noc

import (
	"hdpat/internal/geom"
	"hdpat/internal/sim"
)

// Routing policy names accepted by Config.Routing. The empty string selects
// XY, so zero-value configurations keep their pre-seam behaviour.
const (
	// RoutingXY is dimension-ordered XY routing over buffered links:
	// minimal paths, messages wait for contended links.
	RoutingXY = "xy"
	// RoutingDeflect is bufferless deflection routing: a message finding
	// every productive output busy is misrouted onto a free port instead of
	// waiting, with age-based priority as the livelock guard. Paths are no
	// longer minimal, so hop counts are accounted per actual hop.
	RoutingDeflect = "deflect"
)

// RoutingNames lists the routing policies in presentation order.
func RoutingNames() []string { return []string{RoutingXY, RoutingDeflect} }

// ValidRouting reports whether name selects a built-in routing policy. The
// empty string is valid and means RoutingXY.
func ValidRouting(name string) bool {
	return name == "" || name == RoutingXY || name == RoutingDeflect
}

// Router decides each hop of an in-flight message. Implementations read
// fabric state (link occupancy probes) but never mutate it: occupancy,
// accounting and scheduling stay in transfer.step, so every policy shares
// one serialisation and stats model. route is called only while
// t.cur != t.dst and must return a tile adjacent to t.cur inside the mesh;
// deflected marks a hop that moved the message off a productive (distance-
// reducing) direction.
type Router interface {
	// Name returns the policy's Config.Routing name.
	Name() string
	route(m *Mesh, t *transfer, now sim.VTime) (next geom.Coord, deflected bool)
}

// routerFor resolves cfg.Routing. Unknown names panic: the public entry
// points reject them earlier with a typed config.ValidationError, so
// reaching here is an internal wiring bug, not user input.
func routerFor(cfg Config) Router {
	switch cfg.Routing {
	case "", RoutingXY:
		return xyRouter{}
	case RoutingDeflect:
		age := cfg.HopLatency
		if age < 1 {
			age = 1
		}
		return deflectRouter{ageCap: deflectAgeHops * age}
	}
	panic("noc: unknown routing policy " + cfg.Routing)
}

// xyRouter is dimension-ordered XY routing, computed incrementally by
// nextHop. It never deflects: a contended link is waited for, which is what
// makes every path Manhattan-length.
type xyRouter struct{}

func (xyRouter) Name() string { return RoutingXY }

func (xyRouter) route(m *Mesh, t *transfer, now sim.VTime) (geom.Coord, bool) {
	return nextHop(t.cur, t.dst), false
}

// deflectAgeHops is the age cap of the deflection livelock guard, in units
// of the hop latency: a message older than this stops misrouting and waits
// for its productive port like an XY message would, so it acquires the link
// in FIFO (nextFree) order and monotonically closes on its destination.
// 64 hop-latencies is far past the diameter of any supported mesh, so young
// traffic keeps the bufferless behaviour while stragglers are guaranteed
// delivery.
const deflectAgeHops = 64

// deflectRouter is bufferless deflection routing. Productive directions
// (those reducing the Manhattan distance, X resolved first like XY) are
// preferred; when every productive output link is busy at decision time the
// message is deflected onto the first free misroute port in fixed
// east/west/south/north order. Age-based priority guards against livelock:
// once a message's age exceeds ageCap it claims its productive port
// unconditionally. All link reads are non-materializing probes, so an idle
// neighbourhood costs nothing.
type deflectRouter struct {
	ageCap sim.VTime
}

func (deflectRouter) Name() string { return RoutingDeflect }

// neighbor returns cur's adjacent tile in direction dir.
func neighbor(cur geom.Coord, dir int) geom.Coord {
	switch dir {
	case dirEast:
		cur.X++
	case dirWest:
		cur.X--
	case dirSouth:
		cur.Y++
	default:
		cur.Y--
	}
	return cur
}

func (r deflectRouter) route(m *Mesh, t *transfer, now sim.VTime) (geom.Coord, bool) {
	cur, dst := t.cur, t.dst
	// Productive directions in XY preference order (X first); route is only
	// called while cur != dst, so there is at least one.
	var prod [2]int
	np := 0
	switch {
	case dst.X > cur.X:
		prod[np] = dirEast
		np++
	case dst.X < cur.X:
		prod[np] = dirWest
		np++
	}
	switch {
	case dst.Y > cur.Y:
		prod[np] = dirSouth
		np++
	case dst.Y < cur.Y:
		prod[np] = dirNorth
		np++
	}
	// Livelock guard: an old message takes its preferred productive port
	// even when busy, waiting in link FIFO order like an XY message.
	if now-t.born >= r.ageCap {
		return neighbor(cur, prod[0]), false
	}
	id := m.layout.NodeID(cur)
	for i := 0; i < np; i++ {
		if m.linkFreeAt(id, prod[i], now) {
			return neighbor(cur, prod[i]), false
		}
	}
	// Every productive output is contended: deflect onto the first free
	// in-mesh misroute port. Fixed direction order keeps the policy
	// deterministic.
	for d := 0; d < 4; d++ {
		if d == prod[0] || (np == 2 && d == prod[1]) {
			continue
		}
		n := neighbor(cur, d)
		if !m.layout.Contains(n) {
			continue
		}
		if m.linkFreeAt(id, d, now) {
			return n, true
		}
	}
	// Nothing is free in any direction; wait on the preferred productive
	// port rather than queueing a guaranteed misroute.
	return neighbor(cur, prod[0]), false
}
