// Routing-seam tests: the XY policy is pinned step-for-step against the
// geometric reference path, the deflection policy is checked against its
// delivery and accounting laws (every message arrives; HopsTotal ==
// ManhattanTotal + 2 x Deflections, since each misroute moves one hop away
// from the destination and must be paid back), and the sharded fabric's
// observability surfaces (MergeStats, FlushMetrics, VisitLinks) are pinned
// idempotent and deterministic.
package noc

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"hdpat/internal/geom"
	"hdpat/internal/metrics"
	"hdpat/internal/sim"
)

// stepXY walks nextHop from src until dst, returning the visited sequence
// (excluding src, including dst) — the incremental router's trajectory.
func stepXY(t *testing.T, src, dst geom.Coord) []geom.Coord {
	t.Helper()
	var path []geom.Coord
	c := src
	for steps := 0; c != dst; steps++ {
		if steps > 1000 {
			t.Fatalf("nextHop(%v -> %v) did not converge", src, dst)
		}
		c = nextHop(c, dst)
		path = append(path, c)
	}
	return path
}

// Property: the incremental nextHop decision, iterated, reproduces the
// reference geom.XYPath element for element — the XY router is exactly
// dimension-ordered minimal routing, never an off-by-one of it.
func TestNextHopMatchesXYPath(t *testing.T) {
	layout := geom.NewMesh(9, 8)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 2000; i++ {
		src := geom.XY(rng.Intn(9), rng.Intn(8))
		dst := geom.XY(rng.Intn(9), rng.Intn(8))
		want := layout.XYPath(src, dst)
		got := stepXY(t, src, dst)
		if len(got) != len(want) {
			t.Fatalf("%v -> %v: stepped %d hops, XYPath has %d", src, dst, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%v -> %v: hop %d is %v, XYPath says %v", src, dst, j, got[j], want[j])
			}
		}
		if len(got) != src.Manhattan(dst) {
			t.Fatalf("%v -> %v: %d hops, Manhattan %d", src, dst, len(got), src.Manhattan(dst))
		}
	}
}

// FuzzNextHopXYPath is the fuzz-shaped form of the property above; the
// corpus seeds cover same-tile, same-row, same-column and both diagonals.
func FuzzNextHopXYPath(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(6), uint8(6))
	f.Add(uint8(3), uint8(3), uint8(3), uint8(3))
	f.Add(uint8(0), uint8(5), uint8(6), uint8(5))
	f.Add(uint8(2), uint8(0), uint8(2), uint8(6))
	f.Add(uint8(6), uint8(6), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, sx, sy, dx, dy uint8) {
		const w, h = 7, 7
		layout := geom.NewMesh(w, h)
		src := geom.XY(int(sx)%w, int(sy)%h)
		dst := geom.XY(int(dx)%w, int(dy)%h)
		want := layout.XYPath(src, dst)
		got := stepXY(t, src, dst)
		if len(got) != len(want) {
			t.Fatalf("%v -> %v: stepped %d hops, XYPath has %d", src, dst, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%v -> %v: hop %d is %v, XYPath says %v", src, dst, j, got[j], want[j])
			}
		}
	})
}

func TestRoutingNames(t *testing.T) {
	for _, name := range []string{"", RoutingXY, RoutingDeflect} {
		if !ValidRouting(name) {
			t.Errorf("ValidRouting(%q) = false", name)
		}
	}
	if ValidRouting("torus") {
		t.Error("ValidRouting accepted an unknown policy")
	}
	if len(RoutingNames()) != 2 {
		t.Errorf("RoutingNames() = %v", RoutingNames())
	}
	defer func() {
		if recover() == nil {
			t.Error("routerFor did not panic on an unknown routing name")
		}
	}()
	routerFor(Config{Routing: "torus"})
}

// mkDeflect builds a deflection-routed mesh with enough serialisation cost
// per message that same-cycle sends contend for output ports.
func mkDeflect(w, h int) (*sim.Engine, *Mesh) {
	eng := sim.NewEngine()
	layout := geom.NewMesh(w, h)
	return eng, New(eng, layout, Config{HopLatency: 4, BytesPerCycle: 64, Routing: RoutingDeflect})
}

// An uncontended message under deflection takes the minimal path at the
// exact XY zero-load latency: the policies only diverge under contention.
func TestDeflectUncontendedMatchesXYLatency(t *testing.T) {
	eng, m := mkDeflect(7, 7)
	var arrived sim.VTime
	src, dst := geom.XY(1, 5), geom.XY(5, 0)
	m.Send(src, dst, 16, func() { arrived = eng.Now() })
	eng.Run()
	// 16 B at 64 B/cycle is sub-cycle debt on every link: zero-load exactly.
	if want := m.LatencyLowerBound(src, dst); arrived != want {
		t.Errorf("arrival at %d, want %d", arrived, want)
	}
	if m.Stats.Deflections != 0 {
		t.Errorf("uncontended message deflected %d times", m.Stats.Deflections)
	}
	if m.Stats.HopsTotal != uint64(src.Manhattan(dst)) {
		t.Errorf("HopsTotal = %d, want %d", m.Stats.HopsTotal, src.Manhattan(dst))
	}
}

// deflectLaws asserts the policy's accounting invariants on a finished run.
func deflectLaws(t *testing.T, m *Mesh) {
	t.Helper()
	st := m.Stats
	if st.HopsTotal < st.ManhattanTotal {
		t.Errorf("HopsTotal %d below Manhattan bound %d", st.HopsTotal, st.ManhattanTotal)
	}
	// Every misroute steps exactly one hop away from the destination (the
	// productive directions are excluded from the misroute probe), so the
	// surplus over the Manhattan bound is exactly two hops per deflection.
	if st.HopsTotal != st.ManhattanTotal+2*st.Deflections {
		t.Errorf("HopsTotal %d != ManhattanTotal %d + 2 x %d deflections",
			st.HopsTotal, st.ManhattanTotal, st.Deflections)
	}
}

// Contending same-cycle sends over one shared output port deflect the
// losers instead of queueing them — and still deliver every message.
func TestDeflectContentionDeflectsAndDelivers(t *testing.T) {
	eng, m := mkDeflect(5, 5)
	src, dst := geom.XY(0, 2), geom.XY(4, 2)
	const n = 16
	delivered := 0
	for i := 0; i < n; i++ {
		// 256 B at 64 B/cycle: each message holds the east port 4 cycles,
		// so the burst saturates the row and losers must misroute.
		m.Send(src, dst, 256, func() { delivered++ })
	}
	eng.Run()
	if delivered != n {
		t.Fatalf("delivered %d of %d", delivered, n)
	}
	if m.Stats.Deflections == 0 {
		t.Error("saturated row produced no deflections")
	}
	deflectLaws(t, m)
}

// Heavy random all-to-all congestion must still settle (the age guard
// parks over-age messages on their preferred port instead of letting them
// orbit) with every message delivered and the accounting laws intact.
func TestDeflectHeavyCongestionSettles(t *testing.T) {
	eng, m := mkDeflect(5, 5)
	layout := m.Layout()
	rng := rand.New(rand.NewSource(3))
	const n = 2000
	delivered := 0
	for i := 0; i < n; i++ {
		src := layout.CoordOf(rng.Intn(layout.NumTiles()))
		dst := layout.CoordOf(rng.Intn(layout.NumTiles()))
		m.Send(src, dst, rng.Intn(256)+1, func() { delivered++ })
	}
	eng.Run()
	if delivered != n {
		t.Fatalf("delivered %d of %d", delivered, n)
	}
	deflectLaws(t, m)
}

// A deflection mesh with the age cap forced to its floor degenerates to
// FIFO waits almost immediately — delivery and accounting must hold there
// too, pinning the guard path itself.
func TestDeflectAgeGuardFloorStillDelivers(t *testing.T) {
	eng, m := mkDeflect(5, 5)
	m.router = &deflectRouter{ageCap: 1}
	src, dst := geom.XY(0, 2), geom.XY(4, 2)
	const n = 16
	delivered := 0
	for i := 0; i < n; i++ {
		m.Send(src, dst, 256, func() { delivered++ })
	}
	eng.Run()
	if delivered != n {
		t.Fatalf("delivered %d of %d", delivered, n)
	}
	deflectLaws(t, m)
}

// Deflection decisions arbitrate same-cycle output contention, which a
// neighbouring domain can influence inside the lookahead window; Shard on
// a deflection mesh is a wiring bug and must panic.
func TestDeflectShardPanics(t *testing.T) {
	coord := sim.NewDomains(2, 4)
	_, m := mkDeflect(4, 4)
	dom := make([]int32, m.Layout().NumTiles())
	for id := range dom {
		if m.Layout().CoordOf(id).Y >= 2 {
			dom[id] = 1
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Shard accepted a deflection-routed mesh")
		}
	}()
	m.Shard(coord.Engines(), dom)
}

// shardedRun drives a fixed cross-domain traffic pattern on a 4x4 mesh
// split into two row-halves and returns the sharded mesh after the run.
func shardedRun(t *testing.T, reg *metrics.Registry) *Mesh {
	t.Helper()
	const hopLat = 32
	coord := sim.NewDomains(2, hopLat)
	layout := geom.NewMesh(4, 4)
	m := New(coord.Engine(0), layout, Config{HopLatency: hopLat, BytesPerCycle: 64})
	dom := make([]int32, layout.NumTiles())
	for id := range dom {
		if layout.CoordOf(id).Y >= 2 {
			dom[id] = 1
		}
	}
	m.Shard(coord.Engines(), dom)
	if reg != nil {
		m.AttachMetrics(reg)
	}
	// Cross- and intra-domain traffic, scheduled on the engine owning each
	// source tile.
	sends := []struct {
		src, dst geom.Coord
		size     int
	}{
		{geom.XY(0, 0), geom.XY(3, 3), 128},
		{geom.XY(3, 3), geom.XY(0, 0), 128},
		{geom.XY(1, 0), geom.XY(1, 3), 64},
		{geom.XY(2, 3), geom.XY(2, 0), 64},
		{geom.XY(0, 1), geom.XY(3, 1), 192},
		{geom.XY(3, 2), geom.XY(0, 2), 192},
	}
	delivered := 0
	for _, s := range sends {
		s := s
		eng := coord.Engine(int(dom[layout.NodeID(s.src)]))
		eng.At(0, func() { m.Send(s.src, s.dst, s.size, func() { delivered++ }) })
	}
	if err := coord.Run(context.Background(), sim.Infinity); err != nil {
		t.Fatal(err)
	}
	if delivered != len(sends) {
		t.Fatalf("delivered %d of %d", delivered, len(sends))
	}
	return m
}

// serialStats runs the same traffic pattern serially and returns the stats
// — the reference MergeStats must reproduce.
func serialStats(t *testing.T) Stats {
	t.Helper()
	eng := sim.NewEngine()
	layout := geom.NewMesh(4, 4)
	m := New(eng, layout, Config{HopLatency: 32, BytesPerCycle: 64})
	for _, s := range []struct {
		src, dst geom.Coord
		size     int
	}{
		{geom.XY(0, 0), geom.XY(3, 3), 128},
		{geom.XY(3, 3), geom.XY(0, 0), 128},
		{geom.XY(1, 0), geom.XY(1, 3), 64},
		{geom.XY(2, 3), geom.XY(2, 0), 64},
		{geom.XY(0, 1), geom.XY(3, 1), 192},
		{geom.XY(3, 2), geom.XY(0, 2), 192},
	} {
		m.Send(s.src, s.dst, s.size, func() {})
	}
	eng.Run()
	return m.Stats
}

// MergeStats on a sharded run folds the per-domain shards exactly once:
// the totals equal the serial reference, and a second call is a no-op
// (shards are zeroed, nothing double-counts).
func TestMergeStatsIdempotent(t *testing.T) {
	m := shardedRun(t, nil)
	first := m.MergeStats()
	if want := serialStats(t); first != want {
		t.Errorf("sharded MergeStats = %+v, serial reference %+v", first, want)
	}
	if second := m.MergeStats(); second != first {
		t.Errorf("second MergeStats = %+v, first %+v (double-counted)", second, first)
	}
	for i := range m.stats {
		if m.stats[i] != (Stats{}) {
			t.Errorf("shard %d not zeroed after merge: %+v", i, m.stats[i])
		}
	}
}

// FlushMetrics publishes link gauges by Set, so flushing twice must leave
// every metric at the same value.
func TestFlushMetricsIdempotent(t *testing.T) {
	reg := metrics.NewRegistry()
	m := shardedRun(t, reg)
	m.FlushMetrics()
	total := reg.Gauge("noc.links.busy_total").Value()
	if total == 0 {
		t.Fatal("no busy cycles published")
	}
	m.FlushMetrics()
	if again := reg.Gauge("noc.links.busy_total").Value(); again != total {
		t.Errorf("second flush moved busy_total %d -> %d", total, again)
	}
	if total != int64(m.LinkUtilization()) {
		t.Errorf("busy_total gauge %d != LinkUtilization %d", total, m.LinkUtilization())
	}
}

// visitOrder renders one VisitLinks walk as strings for comparison.
func visitOrder(m *Mesh) []string {
	var out []string
	m.VisitLinks(func(c geom.Coord, dir string, busy sim.VTime) {
		out = append(out, fmt.Sprintf("%d,%d,%s,%d", c.X, c.Y, dir, busy))
	})
	return out
}

// VisitLinks on a sharded mesh walks tile-major across the per-domain
// slabs: the order is deterministic across runs and strictly tile-ordered,
// never grouped by domain.
func TestVisitLinksShardedDeterministic(t *testing.T) {
	a := visitOrder(shardedRun(t, nil))
	b := visitOrder(shardedRun(t, nil))
	if len(a) == 0 || len(a)%4 != 0 {
		t.Fatalf("visited %d links, want a positive multiple of 4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("visit %d differs across identical runs: %q vs %q", i, a[i], b[i])
		}
	}
	// Tile-major: each materialized tile contributes its four directions
	// consecutively in e, w, s, n order, with tile IDs strictly increasing.
	layout := geom.NewMesh(4, 4)
	lastID := -1
	for i := 0; i < len(a); i += 4 {
		var x, y int
		var dir string
		var busy sim.VTime
		if _, err := fmt.Sscanf(a[i], "%d,%d,%1s,%d", &x, &y, &dir, &busy); err != nil {
			t.Fatal(err)
		}
		id := layout.NodeID(geom.XY(x, y))
		if id <= lastID {
			t.Fatalf("tile %d visited after %d: not tile-major", id, lastID)
		}
		lastID = id
		for d, want := range dirNames {
			var dx, dy int
			var got string
			if _, err := fmt.Sscanf(a[i+d], "%d,%d,%1s,", &dx, &dy, &got); err != nil {
				t.Fatal(err)
			}
			if dx != x || dy != y || got != want {
				t.Fatalf("visit %d = %q, want tile (%d,%d) dir %s", i+d, a[i+d], x, y, want)
			}
		}
	}
}
