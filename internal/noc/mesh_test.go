package noc

import (
	"math/rand"
	"testing"

	"hdpat/internal/geom"
	"hdpat/internal/sim"
)

func mkMesh() (*sim.Engine, *Mesh) {
	eng := sim.NewEngine()
	layout := geom.NewMesh(7, 7)
	return eng, New(eng, layout, Config{HopLatency: 32, BytesPerCycle: 768})
}

func TestZeroLoadLatency(t *testing.T) {
	eng, m := mkMesh()
	var arrived sim.VTime
	src, dst := geom.XY(0, 0), geom.XY(3, 3)
	m.Send(src, dst, 16, func() { arrived = eng.Now() })
	eng.Run()
	want := m.LatencyLowerBound(src, dst) // 6 hops x 32 = 192
	if arrived != want {
		t.Errorf("arrival at %d, want %d", arrived, want)
	}
}

func TestLocalLoopback(t *testing.T) {
	eng, m := mkMesh()
	var arrived sim.VTime
	c := geom.XY(2, 2)
	m.Send(c, c, 64, func() { arrived = eng.Now() })
	eng.Run()
	if arrived != 1 {
		t.Errorf("loopback at %d, want 1", arrived)
	}
}

func TestSerialisationUnderLoad(t *testing.T) {
	eng := sim.NewEngine()
	layout := geom.NewMesh(3, 3)
	// 64 B/cycle: each 64 B message occupies a link for a full cycle.
	m := New(eng, layout, Config{HopLatency: 10, BytesPerCycle: 64})
	src, dst := geom.XY(0, 1), geom.XY(1, 1)
	var times []sim.VTime
	for i := 0; i < 4; i++ {
		m.Send(src, dst, 64, func() { times = append(times, eng.Now()) })
	}
	eng.Run()
	// First message: serialise 1 cycle + 10 latency = 11; then one per cycle.
	want := []sim.VTime{11, 12, 13, 14}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestOppositeDirectionsIndependent(t *testing.T) {
	eng := sim.NewEngine()
	layout := geom.NewMesh(3, 3)
	m := New(eng, layout, Config{HopLatency: 10, BytesPerCycle: 64})
	a, b := geom.XY(0, 1), geom.XY(1, 1)
	var ta, tb sim.VTime
	m.Send(a, b, 64, func() { ta = eng.Now() })
	m.Send(b, a, 64, func() { tb = eng.Now() })
	eng.Run()
	if ta != 11 || tb != 11 {
		t.Errorf("opposite-direction sends interfered: %d, %d", ta, tb)
	}
}

func TestStats(t *testing.T) {
	eng, m := mkMesh()
	m.Send(geom.XY(0, 0), geom.XY(2, 0), 100, func() {})
	eng.Run()
	if m.Stats.Messages != 1 {
		t.Errorf("Messages = %d", m.Stats.Messages)
	}
	if m.Stats.ByteHops != 200 {
		t.Errorf("ByteHops = %d, want 200", m.Stats.ByteHops)
	}
	if m.Stats.MaxHops != 2 || m.Stats.HopsTotal != 2 {
		t.Errorf("hops: max=%d total=%d", m.Stats.MaxHops, m.Stats.HopsTotal)
	}
}

func TestManySendsAllDeliver(t *testing.T) {
	eng, m := mkMesh()
	layout := m.Layout()
	delivered := 0
	n := 0
	for _, src := range layout.GPMs() {
		for _, dst := range []geom.Coord{layout.CPU, geom.XY(0, 0), geom.XY(6, 6)} {
			if src == dst {
				continue
			}
			n++
			m.Send(src, dst, 32, func() { delivered++ })
		}
	}
	eng.Run()
	if delivered != n {
		t.Fatalf("delivered %d of %d", delivered, n)
	}
}

func TestFarLinkCongestionRaisesLatency(t *testing.T) {
	eng := sim.NewEngine()
	layout := geom.NewMesh(7, 7)
	m := New(eng, layout, Config{HopLatency: 32, BytesPerCycle: 8})
	// Hammer a single column path; later messages must arrive strictly later
	// than zero-load latency.
	src, dst := geom.XY(0, 3), geom.XY(6, 3)
	var last sim.VTime
	const n = 100
	for i := 0; i < n; i++ {
		m.Send(src, dst, 64, func() { last = eng.Now() })
	}
	eng.Run()
	zeroLoad := m.LatencyLowerBound(src, dst)
	if last <= zeroLoad+sim.VTime(n/2) {
		t.Errorf("no congestion observed: last=%d zeroload=%d", last, zeroLoad)
	}
	if m.LinkUtilization() == 0 {
		t.Error("link utilisation not recorded")
	}
}

// Property: ByteHops conservation — total equals the sum over messages of
// size x Manhattan distance.
func TestByteHopsConservation(t *testing.T) {
	eng, m := mkMesh()
	layout := m.Layout()
	rng := rand.New(rand.NewSource(11))
	var want uint64
	for i := 0; i < 500; i++ {
		src := layout.GPMs()[rng.Intn(layout.NumGPMs())]
		dst := layout.GPMs()[rng.Intn(layout.NumGPMs())]
		size := rng.Intn(100) + 1
		want += uint64(size) * uint64(src.Manhattan(dst))
		m.Send(src, dst, size, func() {})
	}
	eng.Run()
	if m.Stats.ByteHops != want {
		t.Errorf("ByteHops = %d, want %d", m.Stats.ByteHops, want)
	}
	if m.Stats.Messages != 500 {
		t.Errorf("Messages = %d", m.Stats.Messages)
	}
}

// Determinism: two identical traffic patterns deliver at identical times.
func TestMeshDeterminism(t *testing.T) {
	runOnce := func() []sim.VTime {
		eng, m := mkMesh()
		layout := m.Layout()
		rng := rand.New(rand.NewSource(5))
		var times []sim.VTime
		for i := 0; i < 300; i++ {
			src := layout.GPMs()[rng.Intn(layout.NumGPMs())]
			dst := layout.GPMs()[rng.Intn(layout.NumGPMs())]
			m.Send(src, dst, rng.Intn(200)+1, func() { times = append(times, eng.Now()) })
		}
		eng.Run()
		return times
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatal("different delivery counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

// Many sub-cycle messages must accumulate fractional serialisation debt into
// whole busy cycles: total link occupancy tracks total bytes / bandwidth with
// at most one cycle of residual debt outstanding, never losing bandwidth.
func TestFractionalDebtAccumulatesWholeBusyCycles(t *testing.T) {
	eng := sim.NewEngine()
	layout := geom.NewMesh(3, 3)
	m := New(eng, layout, Config{HopLatency: 10, BytesPerCycle: 64})
	src, dst := geom.XY(0, 1), geom.XY(1, 1)
	// 64 16-byte messages: each is a quarter cycle of serialisation, so every
	// fourth send must charge one whole cycle to the link.
	const n, size = 64, 16
	delivered := 0
	for i := 0; i < n; i++ {
		m.Send(src, dst, size, func() { delivered++ })
	}
	eng.Run()
	if delivered != n {
		t.Fatalf("delivered = %d, want %d", delivered, n)
	}
	wantBusy := sim.VTime(n * size / 64) // 16 cycles, exactly divisible
	if got := m.LinkUtilization(); got != wantBusy {
		t.Errorf("busy cycles = %d, want %d (fractional debt lost)", got, wantBusy)
	}
}

// Fractional debt must survive across temporally spread sends, not just
// back-to-back bursts: residual debt below one cycle is the only bandwidth
// ever outstanding.
func TestFractionalDebtSpreadOverTime(t *testing.T) {
	eng := sim.NewEngine()
	layout := geom.NewMesh(3, 3)
	m := New(eng, layout, Config{HopLatency: 10, BytesPerCycle: 64})
	src, dst := geom.XY(0, 1), geom.XY(1, 1)
	const n, size = 31, 48 // 0.75 cycles each, deliberately not divisible
	for i := 0; i < n; i++ {
		at := sim.VTime(i * 100)
		eng.At(at, func() { m.Send(src, dst, size, func() {}) })
	}
	eng.Run()
	totalBytes := float64(n * size)
	exact := totalBytes / 64 // 23.25 cycles
	got := float64(m.LinkUtilization())
	if got < exact-1 || got > exact {
		t.Errorf("busy cycles = %v, want within (%v-1, %v]", got, exact, exact)
	}
	// The accumulated whole cycles plus the residual debt equal the exact
	// serialisation demand: no bandwidth created or destroyed.
	_, debt, ok := m.linkProbe(m.layout.NodeID(src), dirEast)
	if !ok {
		t.Fatal("hammered link not materialized")
	}
	if sum := got + debt; sum != exact {
		t.Errorf("busy+debt = %v, want exactly %v", sum, exact)
	}
}

// Sparse accounting: tiles that never send stay unmaterialized (zero link
// bytes), and VisitLinks walks only materialized tiles while reporting the
// same busy totals as LinkUtilization.
func TestSparseLinksOnlyTouchedMaterialize(t *testing.T) {
	eng, m := mkMesh()
	src, dst := geom.XY(0, 0), geom.XY(2, 0)
	m.Send(src, dst, 768*4, func() {})
	eng.Run()
	touched := 0
	for id := range m.tile {
		if m.tile[id] != noLink {
			touched++
		}
	}
	if touched != 2 { // (0,0) and (1,0) send east; (2,0) never sends
		t.Errorf("materialized tiles = %d, want 2", touched)
	}
	var visited int
	var sum sim.VTime
	m.VisitLinks(func(_ geom.Coord, _ string, busy sim.VTime) {
		visited++
		sum += busy
	})
	if visited != 2*4 {
		t.Errorf("VisitLinks visited %d links, want 8", visited)
	}
	if sum != m.LinkUtilization() {
		t.Errorf("VisitLinks busy sum %d != LinkUtilization %d", sum, m.LinkUtilization())
	}
	if _, _, ok := m.linkProbe(m.layout.NodeID(dst), dirEast); ok {
		t.Error("destination tile materialized despite never sending")
	}
}
