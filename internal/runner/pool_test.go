package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hdpat/internal/wafer"
)

// fake builds a task returning a result labelled with its index.
func fake(i int, delay time.Duration) Task {
	return func(ctx context.Context) (wafer.Result, error) {
		if delay > 0 {
			time.Sleep(delay)
		}
		return wafer.Result{Scheme: fmt.Sprintf("task-%d", i), Cycles: 10}, nil
	}
}

func TestRunOrdersResultsBySubmission(t *testing.T) {
	const n = 16
	tasks := make([]Task, n)
	for i := range tasks {
		// Later submissions finish first.
		tasks[i] = fake(i, time.Duration(n-i)*time.Millisecond)
	}
	p := &Pool{Workers: 8}
	outs := p.Run(context.Background(), tasks)
	if len(outs) != n {
		t.Fatalf("got %d outcomes, want %d", len(outs), n)
	}
	for i, o := range outs {
		if o.Index != i || o.Result.Scheme != fmt.Sprintf("task-%d", i) {
			t.Errorf("outs[%d] = index %d scheme %q", i, o.Index, o.Result.Scheme)
		}
		if o.Err != nil {
			t.Errorf("outs[%d] err = %v", i, o.Err)
		}
		if o.Wall <= 0 {
			t.Errorf("outs[%d] wall = %v", i, o.Wall)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak int64
	tasks := make([]Task, 24)
	for i := range tasks {
		i := i
		tasks[i] = func(ctx context.Context) (wafer.Result, error) {
			cur := atomic.AddInt64(&inFlight, 1)
			for {
				old := atomic.LoadInt64(&peak)
				if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			atomic.AddInt64(&inFlight, -1)
			return fake(i, 0)(ctx)
		}
	}
	(&Pool{Workers: workers}).Run(context.Background(), tasks)
	if p := atomic.LoadInt64(&peak); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	tasks := []Task{
		fake(0, 0),
		func(ctx context.Context) (wafer.Result, error) { panic("boom") },
		fake(2, 0),
	}
	outs := (&Pool{Workers: 2}).Run(context.Background(), tasks)
	if outs[0].Err != nil || outs[2].Err != nil {
		t.Fatalf("healthy tasks failed: %v / %v", outs[0].Err, outs[2].Err)
	}
	var pe *PanicError
	if !errors.As(outs[1].Err, &pe) {
		t.Fatalf("panicking task error = %v, want *PanicError", outs[1].Err)
	}
	if pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = %v (stack %d bytes)", pe.Value, len(pe.Stack))
	}
	if !strings.Contains(pe.Error(), "boom") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

func TestRunCancellationSkipsUnstartedTasks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 8
	tasks := make([]Task, n)
	for i := range tasks {
		i := i
		tasks[i] = func(ctx context.Context) (wafer.Result, error) {
			if i == 0 {
				cancel() // cancel the batch from inside the first task
			}
			return fake(i, 0)(ctx)
		}
	}
	// One worker makes the schedule deterministic: task 0 completes, then
	// every later task is claimed after cancellation.
	outs := (&Pool{Workers: 1}).Run(ctx, tasks)
	if outs[0].Err != nil {
		t.Fatalf("task 0 err = %v", outs[0].Err)
	}
	for i := 1; i < n; i++ {
		if !errors.Is(outs[i].Err, context.Canceled) {
			t.Errorf("outs[%d].Err = %v, want context.Canceled", i, outs[i].Err)
		}
	}
}

func TestProgressSerialisedAndMonotonic(t *testing.T) {
	const n = 12
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = fake(i, time.Duration(i%3)*time.Millisecond)
	}
	var calls []int
	p := &Pool{Workers: 4, Progress: func(done, total int, out Outcome) {
		if total != n {
			t.Errorf("total = %d, want %d", total, n)
		}
		calls = append(calls, done) // safe: Progress calls are serialised
	}}
	p.Run(context.Background(), tasks)
	if len(calls) != n {
		t.Fatalf("progress called %d times, want %d", len(calls), n)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress done sequence %v", calls)
		}
	}
}

func TestRunEmptyBatch(t *testing.T) {
	outs := (&Pool{}).Run(context.Background(), nil)
	if len(outs) != 0 {
		t.Errorf("got %d outcomes for empty batch", len(outs))
	}
}

func TestSummarize(t *testing.T) {
	outs := []Outcome{
		{Result: wafer.Result{Cycles: 100}, Wall: time.Millisecond},
		{Err: errors.New("x"), Wall: 2 * time.Millisecond},
		{Result: wafer.Result{Cycles: 50}, Wall: time.Millisecond},
	}
	s := Summarize(outs)
	if s.Cycles != 150 || s.Errors != 1 || s.Wall != 4*time.Millisecond {
		t.Errorf("summary = %+v", s)
	}
}

func TestSnapshotTracksBatchState(t *testing.T) {
	if s := (&Pool{}).Snapshot(); s != (Snapshot{}) {
		t.Errorf("fresh pool snapshot = %+v, want zero", s)
	}

	const n = 8
	release := make(chan struct{})
	started := make(chan struct{}, n)
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = func(ctx context.Context) (wafer.Result, error) {
			started <- struct{}{}
			<-release
			return wafer.Result{Cycles: 1}, nil
		}
	}
	p := &Pool{Workers: 2}
	done := make(chan []Outcome)
	go func() { done <- p.Run(context.Background(), tasks) }()

	// Wait until both workers hold a task, then observe the mid-flight
	// state: 2 inflight, none settled, the rest queued.
	<-started
	<-started
	mid := p.Snapshot()
	if mid.Total != n || mid.Inflight != 2 || mid.Done != 0 || mid.Queued != n-2 {
		t.Errorf("mid-flight snapshot = %+v", mid)
	}
	close(release)
	<-done
	end := p.Snapshot()
	if end.Total != n || end.Done != n || end.Inflight != 0 || end.Queued != 0 {
		t.Errorf("settled snapshot = %+v", end)
	}

	// Counts are cumulative across Run calls on the same pool.
	p.Run(context.Background(), []Task{fake(0, 0)})
	if s := p.Snapshot(); s.Total != n+1 || s.Done != n+1 {
		t.Errorf("cumulative snapshot = %+v", s)
	}
}
