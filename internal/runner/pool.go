// Package runner is the parallel batch-execution engine behind
// hdpat.RunBatch and the experiments harness. Every simulation in this
// repository is single-threaded and deterministic, so a batch of N
// independent runs parallelises perfectly at the run level: a Pool fans
// tasks across GOMAXPROCS worker goroutines while keeping results in
// submission order, recovering per-task panics, and honouring context
// cancellation between (and, via the task's own context, inside) runs.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"hdpat/internal/metrics"
	"hdpat/internal/sim"
	"hdpat/internal/wafer"
)

// Task is one unit of work: a prepared simulation closure. Tasks must be
// independent of each other; the pool may run them in any order and in any
// worker goroutine. The context is the batch context — long tasks should
// pass it down (wafer.RunContext) so cancellation can interrupt a run
// mid-simulation, not just between runs.
type Task func(ctx context.Context) (wafer.Result, error)

// Outcome is one task's result plus its accounting.
type Outcome struct {
	// Index is the task's submission index; Pool.Run returns outcomes
	// ordered by it regardless of completion order.
	Index int
	// Result is the simulation result (zero when Err is non-nil).
	Result wafer.Result
	// Err is the task's error: the simulation error, the batch context's
	// error for tasks cancelled before or while running, or a *PanicError
	// when the task panicked.
	Err error
	// Wall is the task's wall-clock execution time (zero for tasks the
	// cancellation path skipped).
	Wall time.Duration
	// Start is the wall-clock instant the task began executing (zero for
	// tasks the cancellation path skipped) — with Wall it bounds the run's
	// real-time span for wall-clock timelines.
	Start time.Time
}

// PanicError wraps a panic recovered from a task, so one broken scheme run
// surfaces as a per-run error instead of crashing the whole sweep.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("runner: task panicked: %v", p.Value)
}

// Pool runs batches of tasks on a bounded set of worker goroutines.
// The zero value is ready to use.
type Pool struct {
	// Workers bounds concurrent tasks; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when set, is called after each task settles (completed,
	// failed, or skipped by cancellation) with the number settled so far and
	// the batch size. Calls are serialised; done is strictly increasing from
	// 1 to total.
	Progress func(done, total int, out Outcome)
	// Metrics, when set, receives batch throughput series as tasks settle:
	// runner.runs and runner.errors counters, a runner.sim_cycles counter of
	// simulated cycles completed, and a runner.wall_ms histogram of per-run
	// wall time. Safe to scrape live (e.g. via metrics.ListenAndServe) while
	// the batch runs.
	Metrics *metrics.Registry

	// Task accounting behind Snapshot, cumulative across Run calls.
	total   atomic.Int64
	claimed atomic.Int64
	settled atomic.Int64
}

// Snapshot is a point-in-time view of a pool's task accounting: how many
// tasks are waiting for a worker, executing right now, and settled. Counts
// are cumulative across every Run call on the pool.
type Snapshot struct {
	// Queued tasks have been submitted but not yet claimed by a worker.
	Queued int `json:"queued"`
	// Inflight tasks are executing (or being drained by cancellation).
	Inflight int `json:"inflight"`
	// Done tasks have settled: completed, failed, or skipped by
	// cancellation.
	Done int `json:"done"`
	// Total tasks were ever submitted.
	Total int `json:"total"`
}

// Snapshot reports the pool's current task accounting. It is safe to call
// concurrently with Run — progress endpoints poll it while a batch is
// mid-flight. The counts are individually atomic, so a snapshot taken
// during a state transition may transiently disagree by one task between
// fields; Queued and Inflight are clamped at zero.
func (p *Pool) Snapshot() Snapshot {
	total := int(p.total.Load())
	claimed := int(p.claimed.Load())
	done := int(p.settled.Load())
	queued := total - claimed
	if queued < 0 {
		queued = 0
	}
	inflight := claimed - done
	if inflight < 0 {
		inflight = 0
	}
	return Snapshot{Queued: queued, Inflight: inflight, Done: done, Total: total}
}

// Run executes every task and returns their outcomes indexed by submission
// order. It always returns len(tasks) outcomes: when ctx is cancelled,
// unstarted tasks settle immediately with ctx's error while already-running
// tasks finish (or abort themselves via ctx) before Run returns.
func (p *Pool) Run(ctx context.Context, tasks []Task) []Outcome {
	n := len(tasks)
	outs := make([]Outcome, n)
	if n == 0 {
		return outs
	}
	p.total.Add(int64(n))
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var (
		next int64 = -1 // claimed by atomic increment
		mu   sync.Mutex
		done int
		wg   sync.WaitGroup
	)
	settle := func(out Outcome) {
		outs[out.Index] = out
		p.settled.Add(1)
		if p.Metrics != nil {
			p.Metrics.Counter("runner.runs").Inc()
			if out.Err != nil {
				p.Metrics.Counter("runner.errors").Inc()
			} else {
				p.Metrics.Counter("runner.sim_cycles").Add(uint64(out.Result.Cycles))
			}
			p.Metrics.Histogram("runner.wall_ms").Observe(uint64(out.Wall.Milliseconds()))
		}
		if p.Progress == nil {
			return
		}
		mu.Lock()
		done++
		p.Progress(done, n, out)
		mu.Unlock()
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				p.claimed.Add(1)
				if err := ctx.Err(); err != nil {
					// Drain the remaining indices, marking each cancelled.
					settle(Outcome{Index: i, Err: err})
					continue
				}
				settle(execute(ctx, i, tasks[i]))
			}
		}()
	}
	wg.Wait()
	return outs
}

// execute runs one task with wall-time accounting and panic recovery.
func execute(ctx context.Context, i int, task Task) (out Outcome) {
	out.Index = i
	start := time.Now()
	out.Start = start
	defer func() {
		out.Wall = time.Since(start)
		if v := recover(); v != nil {
			out.Result = wafer.Result{}
			out.Err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	out.Result, out.Err = task(ctx)
	return out
}

// Summary aggregates a batch's accounting.
type Summary struct {
	// Wall is the sum of per-run wall-clock times (CPU work, not batch
	// latency — with W workers the batch itself takes roughly Wall/W).
	Wall time.Duration
	// Cycles is the total simulated time across successful runs.
	Cycles sim.VTime
	// Errors counts failed (or cancelled, or panicked) runs.
	Errors int
}

// Summarize folds a batch's outcomes into totals.
func Summarize(outs []Outcome) Summary {
	var s Summary
	for _, o := range outs {
		s.Wall += o.Wall
		if o.Err != nil {
			s.Errors++
			continue
		}
		s.Cycles += o.Result.Cycles
	}
	return s
}
