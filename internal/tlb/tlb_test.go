package tlb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hdpat/internal/vm"
)

func mkTLB(sets, ways int) *TLB {
	return New(Config{Sets: sets, Ways: ways, MSHRs: 4, Latency: 4})
}

func pte(v vm.VPN) vm.PTE { return vm.PTE{VPN: v, PFN: vm.PFN(v * 10), Valid: true} }

func TestLookupMissThenHit(t *testing.T) {
	tl := mkTLB(4, 2)
	k := Key{VPN: 42}
	if _, ok := tl.Lookup(k); ok {
		t.Fatal("hit in empty TLB")
	}
	tl.Insert(pte(42))
	got, ok := tl.Lookup(k)
	if !ok || got.PFN != 420 {
		t.Fatalf("lookup after insert: %+v ok=%v", got, ok)
	}
	if tl.Stats.Hits != 1 || tl.Stats.Misses != 1 {
		t.Errorf("stats = %+v", tl.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	// 1 set, 2 ways: inserting a third entry evicts the LRU.
	tl := mkTLB(1, 2)
	tl.Insert(pte(1))
	tl.Insert(pte(2))
	tl.Lookup(Key{VPN: 1}) // 1 becomes MRU, 2 is LRU
	tl.Insert(pte(3))      // evicts 2
	if _, ok := tl.Peek(Key{VPN: 2}); ok {
		t.Error("LRU entry 2 survived")
	}
	if _, ok := tl.Peek(Key{VPN: 1}); !ok {
		t.Error("MRU entry 1 evicted")
	}
	if tl.Stats.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", tl.Stats.Evictions)
	}
}

func TestOnEvictCallback(t *testing.T) {
	tl := mkTLB(1, 1)
	var evicted []vm.VPN
	tl.OnEvict = func(p vm.PTE) { evicted = append(evicted, p.VPN) }
	tl.Insert(pte(1))
	tl.Insert(pte(2))
	tl.Insert(pte(3))
	if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 2 {
		t.Fatalf("evicted = %v", evicted)
	}
}

func TestReinsertRefreshes(t *testing.T) {
	tl := mkTLB(1, 2)
	tl.Insert(pte(1))
	tl.Insert(pte(2))
	tl.Insert(pte(1)) // refresh, not duplicate
	if tl.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tl.Len())
	}
	tl.Insert(pte(3)) // evicts 2 (LRU), not 1
	if _, ok := tl.Peek(Key{VPN: 1}); !ok {
		t.Error("refreshed entry was evicted")
	}
}

func TestInvalidate(t *testing.T) {
	tl := mkTLB(2, 2)
	tl.Insert(pte(5))
	if !tl.Invalidate(Key{VPN: 5}) {
		t.Fatal("invalidate of present entry returned false")
	}
	if tl.Invalidate(Key{VPN: 5}) {
		t.Fatal("double invalidate returned true")
	}
	if tl.Len() != 0 {
		t.Errorf("Len = %d", tl.Len())
	}
}

func TestFlush(t *testing.T) {
	tl := mkTLB(4, 4)
	for v := vm.VPN(0); v < 16; v++ {
		tl.Insert(pte(v))
	}
	tl.Flush()
	if tl.Len() != 0 {
		t.Fatalf("Len = %d after flush", tl.Len())
	}
}

func TestPIDsAreSeparate(t *testing.T) {
	tl := mkTLB(8, 4)
	tl.Insert(vm.PTE{VPN: 9, PFN: 1, PID: 1, Valid: true})
	if _, ok := tl.Peek(Key{VPN: 9, PID: 2}); ok {
		t.Error("PID 2 hit PID 1's entry")
	}
	if _, ok := tl.Peek(Key{VPN: 9, PID: 1}); !ok {
		t.Error("owning PID missed")
	}
}

// Property: TLB never exceeds capacity and lookups after inserts return the
// inserted PFN for keys still resident.
func TestTLBProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := mkTLB(4, 4)
		resident := map[Key]vm.PFN{}
		for i := 0; i < 500; i++ {
			v := vm.VPN(rng.Intn(64))
			tl.Insert(pte(v))
			resident[Key{VPN: v}] = vm.PFN(v * 10)
			if tl.Len() > tl.Capacity() {
				return false
			}
		}
		// Every entry still resident must carry the right PFN.
		for k, pfn := range resident {
			if got, ok := tl.Peek(k); ok && got.PFN != pfn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty stats hit rate not 0")
	}
	s.Hits, s.Misses = 3, 1
	if s.HitRate() != 0.75 {
		t.Errorf("HitRate = %f", s.HitRate())
	}
}

func TestMSHRCoalesce(t *testing.T) {
	m := NewMSHR(2)
	var results []vm.PFN
	cb := FillerFunc(func(p vm.PTE, ok bool) { results = append(results, p.PFN) })
	k := Key{VPN: 7}
	primary, ok := m.Allocate(k, cb)
	if !primary || !ok {
		t.Fatal("first allocate should be primary")
	}
	primary, ok = m.Allocate(k, cb)
	if primary || !ok {
		t.Fatal("second allocate should merge")
	}
	if m.Used() != 1 {
		t.Fatalf("Used = %d, want 1", m.Used())
	}
	m.Complete(k, vm.PTE{PFN: 99}, true)
	if len(results) != 2 || results[0] != 99 || results[1] != 99 {
		t.Fatalf("results = %v", results)
	}
	if m.Used() != 0 {
		t.Fatalf("Used = %d after complete", m.Used())
	}
}

func TestMSHRFullStalls(t *testing.T) {
	m := NewMSHR(1)
	m.Allocate(Key{VPN: 1}, FillerFunc(func(vm.PTE, bool) {}))
	_, ok := m.Allocate(Key{VPN: 2}, FillerFunc(func(vm.PTE, bool) {}))
	if ok {
		t.Fatal("allocation beyond capacity succeeded")
	}
	if m.Stalled != 1 {
		t.Errorf("Stalled = %d", m.Stalled)
	}
	// Same-key merge still works when full.
	_, ok = m.Allocate(Key{VPN: 1}, FillerFunc(func(vm.PTE, bool) {}))
	if !ok {
		t.Fatal("merge rejected while full")
	}
}

func TestMSHRCompleteUnknownKey(t *testing.T) {
	m := NewMSHR(2)
	m.Complete(Key{VPN: 5}, vm.PTE{}, false) // must not panic
}

func BenchmarkTLBLookup(b *testing.B) {
	tl := New(Config{Sets: 64, Ways: 32, Latency: 32})
	for v := vm.VPN(0); v < 2048; v++ {
		tl.Insert(pte(v))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Lookup(Key{VPN: vm.VPN(i % 4096)})
	}
}
