// Package tlb models the set-associative translation lookaside buffers of
// the GPM hierarchy (Table I): L1 vector/scalar/instruction TLBs (1-set,
// 32-way), the shared L2 TLB (64-set, 32-way) and the last-level GMMU cache
// (64-set, 16-way), all with LRU replacement and a bounded MSHR file that
// coalesces outstanding misses to the same page.
package tlb

import (
	"hdpat/internal/metrics"
	"hdpat/internal/sim"
	"hdpat/internal/vm"
)

// Key identifies a translation: the redirection table and all TLBs are
// tagged with (process id, virtual page number).
type Key struct {
	PID vm.PID
	VPN vm.VPN
}

// Config sizes a TLB.
type Config struct {
	Sets    int
	Ways    int
	MSHRs   int
	Latency sim.VTime
}

// Stats counts TLB events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Fills      uint64
	Evictions  uint64
	MSHRHits   uint64 // misses merged into an existing MSHR
	MSHRStalls uint64 // misses rejected because the MSHR file was full
}

type entry struct {
	key   Key
	pte   vm.PTE
	valid bool
}

// TLB is a set-associative, LRU-replacement translation cache.
// Within each set, entries are kept in recency order (index 0 = MRU).
type TLB struct {
	cfg   Config
	sets  [][]entry
	Stats Stats

	// OnEvict, when non-nil, is called with each evicted entry. The GMMU
	// uses this to keep its cuckoo filter in sync with the auxiliary
	// translation cache contents.
	OnEvict func(vm.PTE)

	// m mirrors hits/misses into registry counters shared across every TLB
	// of the same level (AttachMetrics); nil costs one branch per lookup.
	m *levelCounters
}

// levelCounters are the per-level registry series a TLB reports into.
type levelCounters struct {
	hits, misses *metrics.Counter
}

// AttachMetrics mirrors this TLB's hits and misses into the given counters.
// Many TLB instances (one L1 per CU, one L2 per GPM, ...) typically share
// one counter pair, aggregating the level across the wafer.
func (t *TLB) AttachMetrics(hits, misses *metrics.Counter) {
	t.m = &levelCounters{hits: hits, misses: misses}
}

// New creates a TLB with the given geometry.
func New(cfg Config) *TLB {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic("tlb: sets and ways must be positive")
	}
	t := &TLB{cfg: cfg, sets: make([][]entry, cfg.Sets)}
	for i := range t.sets {
		t.sets[i] = make([]entry, 0, cfg.Ways)
	}
	return t
}

// Config returns the TLB geometry.
func (t *TLB) Config() Config { return t.cfg }

// Latency returns the lookup latency in cycles.
func (t *TLB) Latency() sim.VTime { return t.cfg.Latency }

// Capacity returns total entry slots.
func (t *TLB) Capacity() int { return t.cfg.Sets * t.cfg.Ways }

// Len returns the number of valid entries.
func (t *TLB) Len() int {
	n := 0
	for _, s := range t.sets {
		n += len(s)
	}
	return n
}

func (t *TLB) setOf(k Key) int {
	// Hash the key rather than taking low VPN bits directly: HDPAT's
	// clustering assigns an auxiliary cache only VPNs sharing a residue
	// class (Eq. 1-2), which would alias onto a fraction of the sets and
	// quarter the effective capacity. Hardware achieves the same with an
	// XOR-folded index.
	x := uint64(k.VPN) ^ uint64(k.PID)<<48
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(t.cfg.Sets))
}

// Lookup probes the TLB, promoting a hit to MRU.
func (t *TLB) Lookup(k Key) (vm.PTE, bool) {
	set := t.sets[t.setOf(k)]
	for i, e := range set {
		if e.valid && e.key == k {
			// Move to front (MRU).
			copy(set[1:i+1], set[:i])
			set[0] = e
			t.Stats.Hits++
			if t.m != nil {
				t.m.hits.Inc()
			}
			return e.pte, true
		}
	}
	t.Stats.Misses++
	if t.m != nil {
		t.m.misses.Inc()
	}
	return vm.PTE{}, false
}

// Peek probes without updating recency or stats (used by remote probes that
// should not perturb the local replacement state in some schemes, and by
// tests).
func (t *TLB) Peek(k Key) (vm.PTE, bool) {
	for _, e := range t.sets[t.setOf(k)] {
		if e.valid && e.key == k {
			return e.pte, true
		}
	}
	return vm.PTE{}, false
}

// Insert fills pte, evicting the LRU entry of its set if needed.
// Re-inserting an existing key refreshes it to MRU.
func (t *TLB) Insert(pte vm.PTE) {
	k := Key{PID: pte.PID, VPN: pte.VPN}
	si := t.setOf(k)
	set := t.sets[si]
	for i, e := range set {
		if e.valid && e.key == k {
			copy(set[1:i+1], set[:i])
			set[0] = entry{key: k, pte: pte, valid: true}
			return
		}
	}
	t.Stats.Fills++
	if len(set) < t.cfg.Ways {
		set = append(set, entry{})
	} else {
		victim := set[len(set)-1]
		t.Stats.Evictions++
		if t.OnEvict != nil && victim.valid {
			t.OnEvict(victim.pte)
		}
	}
	copy(set[1:], set)
	set[0] = entry{key: k, pte: pte, valid: true}
	t.sets[si] = set
}

// Invalidate drops k if present and reports whether it was.
func (t *TLB) Invalidate(k Key) bool {
	si := t.setOf(k)
	set := t.sets[si]
	for i, e := range set {
		if e.valid && e.key == k {
			t.sets[si] = append(set[:i], set[i+1:]...)
			return true
		}
	}
	return false
}

// Flush invalidates everything.
func (t *TLB) Flush() {
	for i := range t.sets {
		t.sets[i] = t.sets[i][:0]
	}
}

// HitRate returns hits/(hits+misses), or 0 with no accesses.
func (s Stats) HitRate() float64 {
	tot := s.Hits + s.Misses
	if tot == 0 {
		return 0
	}
	return float64(s.Hits) / float64(tot)
}

// Lookups returns the total probe count (hits + misses).
func (s Stats) Lookups() uint64 { return s.Hits + s.Misses }

// Add accumulates o into s, aggregating many TLB instances of one level
// (e.g. the per-CU L1 TLBs of a GPM) into a single Stats.
func (s *Stats) Add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Fills += o.Fills
	s.Evictions += o.Evictions
	s.MSHRHits += o.MSHRHits
	s.MSHRStalls += o.MSHRStalls
}
