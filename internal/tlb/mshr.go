package tlb

import "hdpat/internal/vm"

// MSHR is a miss-status holding register file: it tracks outstanding misses
// so that concurrent requests for the same page coalesce into one downstream
// request, and it bounds miss-level parallelism — when all registers are
// occupied, further misses stall, the behaviour that motivates the
// redirection table's advantage over an IOMMU-side TLB (§V-E, Fig 19).
type MSHR struct {
	cap     int
	pending map[Key][]func(vm.PTE, bool)

	// Stats
	Allocated uint64
	Merged    uint64
	Stalled   uint64
	PeakUsed  int
}

// NewMSHR creates a file with capacity registers.
func NewMSHR(capacity int) *MSHR {
	return &MSHR{cap: capacity, pending: make(map[Key][]func(vm.PTE, bool))}
}

// Capacity returns the register count.
func (m *MSHR) Capacity() int { return m.cap }

// Used returns the number of occupied registers.
func (m *MSHR) Used() int { return len(m.pending) }

// Allocate registers a miss on k with completion callback cb.
//
//	primary=true  — a new register was allocated; the caller must issue the
//	                downstream request and later call Complete.
//	primary=false, ok=true — merged into an existing register; cb fires when
//	                the primary completes, no downstream request needed.
//	ok=false      — MSHR file full; the miss must stall and retry.
func (m *MSHR) Allocate(k Key, cb func(vm.PTE, bool)) (primary, ok bool) {
	if cbs, exists := m.pending[k]; exists {
		m.pending[k] = append(cbs, cb)
		m.Merged++
		return false, true
	}
	if len(m.pending) >= m.cap {
		m.Stalled++
		return false, false
	}
	m.pending[k] = []func(vm.PTE, bool){cb}
	m.Allocated++
	if len(m.pending) > m.PeakUsed {
		m.PeakUsed = len(m.pending)
	}
	return true, true
}

// Complete resolves the register for k, invoking every merged callback with
// the outcome. Unknown keys are ignored (the register may have been flushed).
func (m *MSHR) Complete(k Key, pte vm.PTE, found bool) {
	cbs := m.pending[k]
	delete(m.pending, k)
	for _, cb := range cbs {
		cb(pte, found)
	}
}

// Waiters returns how many callbacks (primary + merged) wait on k.
func (m *MSHR) Waiters(k Key) int { return len(m.pending[k]) }
