package tlb

import "hdpat/internal/vm"

// Filler receives an MSHR completion: the translation outcome for the key a
// miss was registered under. Waiters are long-lived components or pooled
// per-request state machines, so registering a miss allocates nothing —
// this replaced the previous per-miss func(vm.PTE, bool) callback.
type Filler interface {
	Fill(pte vm.PTE, found bool)
}

// FillerFunc adapts a closure to Filler for cold paths and tests.
type FillerFunc func(pte vm.PTE, found bool)

// Fill implements Filler.
func (f FillerFunc) Fill(pte vm.PTE, found bool) { f(pte, found) }

// MSHR is a miss-status holding register file: it tracks outstanding misses
// so that concurrent requests for the same page coalesce into one downstream
// request, and it bounds miss-level parallelism — when all registers are
// occupied, further misses stall, the behaviour that motivates the
// redirection table's advantage over an IOMMU-side TLB (§V-E, Fig 19).
type MSHR struct {
	cap     int
	pending map[Key][]Filler

	// Stats
	Allocated uint64
	Merged    uint64
	Stalled   uint64
	PeakUsed  int
}

// NewMSHR creates a file with capacity registers.
func NewMSHR(capacity int) *MSHR {
	return &MSHR{cap: capacity, pending: make(map[Key][]Filler)}
}

// Capacity returns the register count.
func (m *MSHR) Capacity() int { return m.cap }

// Used returns the number of occupied registers.
func (m *MSHR) Used() int { return len(m.pending) }

// Allocate registers a miss on k waking w at completion.
//
//	primary=true  — a new register was allocated; the caller must issue the
//	                downstream request and later call Complete.
//	primary=false, ok=true — merged into an existing register; w fills when
//	                the primary completes, no downstream request needed.
//	ok=false      — MSHR file full; the miss must stall and retry.
func (m *MSHR) Allocate(k Key, w Filler) (primary, ok bool) {
	if ws, exists := m.pending[k]; exists {
		m.pending[k] = append(ws, w)
		m.Merged++
		return false, true
	}
	if len(m.pending) >= m.cap {
		m.Stalled++
		return false, false
	}
	m.pending[k] = []Filler{w}
	m.Allocated++
	if len(m.pending) > m.PeakUsed {
		m.PeakUsed = len(m.pending)
	}
	return true, true
}

// Complete resolves the register for k, filling every merged waiter with
// the outcome. Unknown keys are ignored (the register may have been flushed).
func (m *MSHR) Complete(k Key, pte vm.PTE, found bool) {
	ws := m.pending[k]
	delete(m.pending, k)
	for _, w := range ws {
		w.Fill(pte, found)
	}
}

// Waiters returns how many fillers (primary + merged) wait on k.
func (m *MSHR) Waiters(k Key) int { return len(m.pending[k]) }
