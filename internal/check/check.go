// Package check is the opt-in simulation invariant checker: a passive
// observer that rides the existing observation seams — the tracer's typed
// spans (trace.Sink), the IOMMU request hook, the engine's periodic sampler
// and the mesh's link visitor — and cross-checks the simulator's conservation
// laws at run end. It adds no hot-path branches of its own: every signal it
// consumes already exists for metrics, tracing or attribution, so a checked
// run is byte-identical to an unchecked one.
//
// # Invariants
//
// Streaming (checked as spans arrive):
//
//   - request.double-complete: a request's completion span is seen at most
//     once; a duplicate means a lifecycle completed twice.
//   - sampler.lost-window: sampler boundaries arrive strictly in order,
//     exactly one window apart — a gap means time-series windows were
//     silently dropped.
//   - xlat.bad-pfn: via Scheme, every remote translation's completion carries
//     the frame the global page table maps (reported through Record).
//
// At settle (Finish with Final.Settled):
//
//   - request.conservation: completions equal issued remote requests.
//   - request.dropped: every request that reached the IOMMU completed.
//   - iommu.queue-settle: admission+PW-queue depth and busy walkers are zero.
//   - iommu.conservation: every IOMMU submission terminates in exactly one of
//     the six terminal counters (TLB hit, MSHR merge, walk, revisit,
//     redirect, skipped-completed).
//   - noc.byte-hops: NoC ByteHops equals the bytes observed crossing links
//     hop by hop — both sides accrue per actual link traversal, so the law
//     holds for any routing policy, minimal paths or not.
//   - noc.hops-lower-bound: HopsTotal is at least the sum of Manhattan
//     distances over all messages (routing-aware: equality is additionally
//     required, and Deflections must be zero, when Final.ExactHops marks the
//     routing minimal, as XY is).
//   - noc.deflections: the deflected hops observed crossing links equal
//     Stats.Deflections, and the observed hop count equals HopsTotal.
//   - attr.accounting: summed request-span latency equals the GPMs'
//     RemoteLatencySum, and an attached attribution breakdown is exact
//     (stage sums equal the total, nothing clipped or left unfinished).
//   - sampler.lost-window: no boundary at or before the final cycle is
//     missing.
//
// Always (Finish):
//
//   - noc.link-busy: no link's accumulated busy cycles exceed elapsed time.
//
// Violations are collected, not panicked: Finish returns them joined into one
// error (match with errors.Is(err, ErrInvariant)), each naming the invariant,
// the request ID where one applies, and the cycle.
package check

import (
	"errors"
	"fmt"
	"sort"

	"hdpat/internal/attr"
	"hdpat/internal/iommu"
	"hdpat/internal/noc"
	"hdpat/internal/sim"
	"hdpat/internal/vm"
	"hdpat/internal/xlat"
)

// ErrInvariant is the sentinel every Violation matches via errors.Is.
var ErrInvariant = errors.New("simulation invariant violated")

// maxRecorded bounds how many violations are kept verbatim; the total count
// is always exact.
const maxRecorded = 32

// Violation is one invariant breach.
type Violation struct {
	// Invariant names the broken invariant ("request.double-complete", ...).
	Invariant string
	// Req is the request ID involved, 0 when the invariant is not
	// per-request.
	Req uint64
	// Cycle is the simulated time the violation was detected at.
	Cycle uint64
	// Detail is a human-readable explanation.
	Detail string
}

// Error formats the violation naming the invariant, request and cycle.
func (v Violation) Error() string {
	if v.Req != 0 {
		return fmt.Sprintf("invariant %s: %s (req %d, cycle %d)", v.Invariant, v.Detail, v.Req, v.Cycle)
	}
	return fmt.Sprintf("invariant %s: %s (cycle %d)", v.Invariant, v.Detail, v.Cycle)
}

// Is matches ErrInvariant, so errors.Is works through errors.Join.
func (v Violation) Is(target error) bool { return target == ErrInvariant }

// LinkVisitor receives one directed link's coordinates, direction label and
// accumulated busy cycles (the shape of noc.Mesh.VisitLinks).
type LinkVisitor func(x, y int, dir string, busy uint64)

// Options parameterise a Checker.
type Options struct {
	// Window is the expected sampler period in cycles; 0 disables the
	// sampler-coverage invariant.
	Window uint64
}

// Final is the end-of-run state Finish cross-checks the streamed
// observations against.
type Final struct {
	// Cycle is the engine clock at the end of the run (after draining).
	Cycle uint64
	// Settled is false when a cycle limit cut the run with work in flight;
	// conservation checks that only hold at quiescence are skipped then.
	Settled bool
	// QueueDepth and WalkersBusy are the IOMMU's waiting and in-service
	// counts at the end of the run.
	QueueDepth  int
	WalkersBusy int
	// IOMMU and NoC are the final component stats.
	IOMMU iommu.Stats
	NoC   noc.Stats
	// ExactHops marks the routing policy minimal (XY): every message takes
	// exactly Manhattan(src, dst) hops, so HopsTotal must equal
	// ManhattanTotal and no hop may be deflected. Leave false for
	// non-minimal policies (deflection), where only the lower bound holds.
	ExactHops bool
	// RemoteReqs and RemoteLatencySum aggregate gpm.Stats across GPMs.
	RemoteReqs       uint64
	RemoteLatencySum uint64
	// Breakdown, when non-nil, is the attribution result to check for
	// exactness.
	Breakdown *attr.Breakdown
}

// Checker accumulates observations from the seams it is attached to. It is
// not goroutine-safe: like the tracer and collector it belongs to one engine.
type Checker struct {
	window uint64

	completed  map[uint64]struct{}
	arrived    map[uint64]struct{}
	nComplete  uint64
	latencySum uint64
	hopBytes   uint64
	hopCount   uint64
	hopDefl    uint64
	nextSample uint64

	linkProbe func(LinkVisitor)

	violations []Violation
	nViolated  uint64
}

// New returns an empty checker.
func New(o Options) *Checker {
	return &Checker{
		window:     o.Window,
		nextSample: o.Window,
		completed:  make(map[uint64]struct{}),
		arrived:    make(map[uint64]struct{}),
	}
}

// Record adds one violation (bounded; the count stays exact).
func (c *Checker) Record(v Violation) {
	c.nViolated++
	if len(c.violations) < maxRecorded {
		c.violations = append(c.violations, v)
	}
}

func (c *Checker) violate(inv string, req, cycle uint64, format string, args ...any) {
	c.Record(Violation{Invariant: inv, Req: req, Cycle: cycle, Detail: fmt.Sprintf(format, args...)})
}

// Violations returns the recorded violations (capped) and the exact total.
func (c *Checker) Violations() ([]Violation, uint64) {
	return c.violations, c.nViolated
}

// Err joins the recorded violations into one error, nil when clean. When more
// violations occurred than were recorded, a summary line notes the overflow.
func (c *Checker) Err() error {
	if c.nViolated == 0 {
		return nil
	}
	errs := make([]error, 0, len(c.violations)+1)
	for _, v := range c.violations {
		errs = append(errs, v)
	}
	if c.nViolated > uint64(len(c.violations)) {
		errs = append(errs, fmt.Errorf("%w: %d further violations not recorded",
			ErrInvariant, c.nViolated-uint64(len(c.violations))))
	}
	return errors.Join(errs...)
}

// IOMMURequest implements iommu.RequestHook: every request reaching the
// IOMMU must eventually complete (checked at settle).
func (c *Checker) IOMMURequest(now sim.VTime, req *xlat.Request) {
	c.arrived[req.ID] = struct{}{}
}

// OnRequest sees one completed translation lifecycle (trace.Sink). Each
// request ID may complete exactly once.
func (c *Checker) OnRequest(start, end uint64, req uint64, source, gpm int) {
	c.nComplete++
	c.latencySum += end - start
	if _, dup := c.completed[req]; dup {
		c.violate("request.double-complete", req, end, "request completed more than once")
		return
	}
	c.completed[req] = struct{}{}
}

// OnQueue implements trace.Sink; queue residency carries no invariant of its
// own beyond what attribution already checks.
func (c *Checker) OnQueue(stage string, start, end uint64, req uint64) {}

// OnWalk implements trace.Sink.
func (c *Checker) OnWalk(start, end uint64, req, vpn uint64) {}

// OnHop accumulates observed link traffic (trace.Sink): at settle the byte
// sum must equal NoC ByteHops, the hop count must equal HopsTotal and the
// deflected count must equal Stats.Deflections — all three accrue per
// actual link traversal on both sides, so the laws are routing-independent.
func (c *Checker) OnHop(start, end uint64, fromX, fromY, toX, toY, size int, deflected bool) {
	c.hopBytes += uint64(size)
	c.hopCount++
	if deflected {
		c.hopDefl++
	}
}

// OnMigration implements trace.Sink.
func (c *Checker) OnMigration(start, end uint64, vpn uint64, from, to int) {}

// Sample receives one sampler boundary. Boundaries must arrive in order,
// exactly one window apart — anything else means a dropped or duplicated
// time-series window.
func (c *Checker) Sample(at uint64) {
	if c.window == 0 {
		return
	}
	if at != c.nextSample {
		c.violate("sampler.lost-window", 0, at,
			"sampler boundary %d fired, expected %d", at, c.nextSample)
	}
	if at >= c.nextSample {
		c.nextSample = at + c.window
	}
}

// Probes wires the end-of-run link occupancy walk (noc.Mesh.VisitLinks
// adapted). May be nil.
func (c *Checker) Probes(links func(LinkVisitor)) {
	c.linkProbe = links
}

// Finish runs the end-of-run conservation checks against f and returns every
// violation collected over the run joined into one error (nil when the run
// was clean). Checks that only hold at quiescence are skipped when the run
// was cut (f.Settled false).
func (c *Checker) Finish(f Final) error {
	if f.Settled {
		if f.QueueDepth != 0 || f.WalkersBusy != 0 {
			c.violate("iommu.queue-settle", 0, f.Cycle,
				"IOMMU not quiescent at settle: queue depth %d, walkers busy %d",
				f.QueueDepth, f.WalkersBusy)
		}
		s := f.IOMMU
		terminal := s.TLBHits + s.MSHRMerged + s.Walks + s.Revisits + s.RTRedirects + s.SkippedCompleted
		if s.Requests != terminal {
			c.violate("iommu.conservation", 0, f.Cycle,
				"%d IOMMU submissions vs %d terminal outcomes (tlb %d + merged %d + walks %d + revisits %d + redirects %d + skipped %d)",
				s.Requests, terminal, s.TLBHits, s.MSHRMerged, s.Walks, s.Revisits, s.RTRedirects, s.SkippedCompleted)
		}
		if c.nComplete != f.RemoteReqs {
			c.violate("request.conservation", 0, f.Cycle,
				"%d completions observed for %d issued remote requests", c.nComplete, f.RemoteReqs)
		}
		var dropped []uint64
		for id := range c.arrived {
			if _, ok := c.completed[id]; !ok {
				dropped = append(dropped, id)
			}
		}
		sort.Slice(dropped, func(i, j int) bool { return dropped[i] < dropped[j] })
		for _, id := range dropped {
			c.violate("request.dropped", id, f.Cycle,
				"request reached the IOMMU but never completed")
		}
		if c.hopBytes != f.NoC.ByteHops {
			c.violate("noc.byte-hops", 0, f.Cycle,
				"NoC ByteHops %d but %d bytes observed crossing links", f.NoC.ByteHops, c.hopBytes)
		}
		if c.hopCount != f.NoC.HopsTotal {
			c.violate("noc.deflections", 0, f.Cycle,
				"NoC HopsTotal %d but %d hops observed crossing links", f.NoC.HopsTotal, c.hopCount)
		}
		if c.hopDefl != f.NoC.Deflections {
			c.violate("noc.deflections", 0, f.Cycle,
				"NoC Deflections %d but %d deflected hops observed", f.NoC.Deflections, c.hopDefl)
		}
		if f.NoC.HopsTotal < f.NoC.ManhattanTotal {
			c.violate("noc.hops-lower-bound", 0, f.Cycle,
				"HopsTotal %d below the Manhattan lower bound %d", f.NoC.HopsTotal, f.NoC.ManhattanTotal)
		}
		if f.ExactHops {
			if f.NoC.HopsTotal != f.NoC.ManhattanTotal {
				c.violate("noc.hops-lower-bound", 0, f.Cycle,
					"minimal routing took %d hops for a Manhattan total of %d", f.NoC.HopsTotal, f.NoC.ManhattanTotal)
			}
			if f.NoC.Deflections != 0 {
				c.violate("noc.hops-lower-bound", 0, f.Cycle,
					"minimal routing recorded %d deflections", f.NoC.Deflections)
			}
		}
		if c.latencySum != f.RemoteLatencySum {
			c.violate("attr.accounting", 0, f.Cycle,
				"request spans sum to %d cycles, RemoteLatencySum is %d", c.latencySum, f.RemoteLatencySum)
		}
		if b := f.Breakdown; b != nil {
			var stageSum uint64
			for _, st := range attr.StageOrder {
				stageSum += b.Stage(st).Sum
			}
			if total := b.Stage(attr.StageTotal).Sum; stageSum != total {
				c.violate("attr.accounting", 0, f.Cycle,
					"attribution stages sum to %d, total is %d", stageSum, total)
			}
			if b.Clipped != 0 || b.Unfinished != 0 {
				c.violate("attr.accounting", 0, f.Cycle,
					"attribution ledger not exact at settle: %d clipped, %d unfinished", b.Clipped, b.Unfinished)
			}
		}
		if c.window > 0 && c.nextSample <= f.Cycle {
			c.violate("sampler.lost-window", 0, f.Cycle,
				"sampler boundary %d never fired by final cycle %d", c.nextSample, f.Cycle)
		}
	}
	if c.linkProbe != nil {
		c.linkProbe(func(x, y int, dir string, busy uint64) {
			if busy > f.Cycle {
				c.violate("noc.link-busy", 0, f.Cycle,
					"link x%dy%d.%s busy %d cycles in a %d-cycle run", x, y, dir, busy, f.Cycle)
			}
		})
	}
	return c.Err()
}

// Scheme wraps a remote translator, validating that every completion carries
// the frame number the global page table maps for the requested page — the
// generalised form of the wafer's former checkedScheme. Report receives one
// Violation per mismatch; wiring it to Checker.Record folds translation
// correctness into the invariant error, wiring it elsewhere (the Validate
// option's string list) keeps the legacy behaviour. Do not wrap a migrating
// scheme: in-flight completions legitimately race the table repoint.
type Scheme struct {
	Inner  xlat.RemoteTranslator
	Global *vm.PageTable
	Report func(Violation)
	// Now supplies the detection cycle for reported violations; nil means 0.
	Now func() uint64
}

// Name returns the wrapped scheme's name.
func (s *Scheme) Name() string { return s.Inner.Name() }

// Translate forwards the request through a proxy that checks the completion
// against the global page table before completing the real request.
func (s *Scheme) Translate(req *xlat.Request) {
	proxy := xlat.NewRequest(req.ID, req.PID, req.VPN, req.Requester, req.Issued, func(res xlat.Result) {
		var cycle uint64
		if s.Now != nil {
			cycle = s.Now()
		}
		want, _, ok := s.Global.Lookup(req.VPN)
		if !ok {
			s.Report(Violation{
				Invariant: "xlat.bad-pfn", Req: req.ID, Cycle: cycle,
				Detail: fmt.Sprintf("vpn %#x: completed but unmapped", uint64(req.VPN)),
			})
		} else if want.PFN != res.PTE.PFN {
			s.Report(Violation{
				Invariant: "xlat.bad-pfn", Req: req.ID, Cycle: cycle,
				Detail: fmt.Sprintf("vpn %#x: pfn %#x from %v, want %#x",
					uint64(req.VPN), uint64(res.PTE.PFN), res.Source, uint64(want.PFN)),
			})
		}
		req.Complete(res)
	})
	s.Inner.Translate(proxy)
}
