package check

import (
	"errors"
	"strings"
	"testing"

	"hdpat/internal/attr"
	"hdpat/internal/iommu"
	"hdpat/internal/noc"
	"hdpat/internal/vm"
	"hdpat/internal/xlat"
)

// wantViolation asserts err matches ErrInvariant and names the invariant.
func wantViolation(t *testing.T, err error, invariant string) {
	t.Helper()
	if err == nil {
		t.Fatalf("no violation reported, want %s", invariant)
	}
	if !errors.Is(err, ErrInvariant) {
		t.Fatalf("error does not match ErrInvariant: %v", err)
	}
	if !strings.Contains(err.Error(), "invariant "+invariant+":") {
		t.Fatalf("error does not name %s: %v", invariant, err)
	}
}

// cleanFinal builds a Final consistent with the checker's observations after
// n completed requests of latency each, totalBytes of hop traffic over hops
// link traversals.
func cleanFinal(n, latencyEach, hopBytes, hops uint64) Final {
	return Final{
		Cycle:   10_000,
		Settled: true,
		IOMMU: iommu.Stats{
			Requests: n, Walks: n,
		},
		NoC:              noc.Stats{ByteHops: hopBytes, HopsTotal: hops, ManhattanTotal: hops},
		RemoteReqs:       n,
		RemoteLatencySum: n * latencyEach,
	}
}

// feed streams n well-formed request lifecycles through the checker.
func feed(c *Checker, n int, latency uint64) {
	for i := 1; i <= n; i++ {
		id := uint64(i)
		c.IOMMURequest(0, &xlat.Request{ID: id})
		c.OnRequest(100, 100+latency, id, 0, 0)
	}
}

func TestCleanRunReportsNothing(t *testing.T) {
	c := New(Options{})
	feed(c, 5, 300)
	c.OnHop(0, 40, 0, 0, 1, 0, 64, false)
	c.OnHop(40, 80, 1, 0, 2, 0, 64, false)
	if err := c.Finish(cleanFinal(5, 300, 128, 2)); err != nil {
		t.Fatalf("clean run reported: %v", err)
	}
}

// Mutation: a double-completed request must be caught by name.
func TestCatchesDoubleComplete(t *testing.T) {
	c := New(Options{})
	feed(c, 3, 300)
	c.OnRequest(100, 400, 2, 0, 0) // request 2 completes again
	err := c.Finish(cleanFinal(3, 300, 0, 0))
	wantViolation(t, err, "request.double-complete")
	// The duplicate also breaks completion conservation.
	wantViolation(t, err, "request.conservation")
}

// Mutation: a request that reached the IOMMU but was silently dropped (a
// dispatch that never completes) must be caught by name.
func TestCatchesDroppedDispatch(t *testing.T) {
	c := New(Options{})
	feed(c, 3, 300)
	c.IOMMURequest(50, &xlat.Request{ID: 99}) // arrives, never completes
	err := c.Finish(cleanFinal(3, 300, 0, 0))
	wantViolation(t, err, "request.dropped")
	if !strings.Contains(err.Error(), "req 99") {
		t.Errorf("dropped request not identified by ID: %v", err)
	}
}

// Mutation: a skipped sampler boundary must be caught by name, both as a gap
// between boundaries and as missing trailing coverage.
func TestCatchesLostSamplerWindow(t *testing.T) {
	c := New(Options{Window: 100})
	c.Sample(100)
	c.Sample(300) // boundary 200 never fired
	err := c.Err()
	wantViolation(t, err, "sampler.lost-window")

	c2 := New(Options{Window: 100})
	c2.Sample(100)
	f := cleanFinal(0, 0, 0, 0)
	f.Cycle = 350 // boundaries 200 and 300 should have fired by now
	wantViolation(t, c2.Finish(f), "sampler.lost-window")

	c3 := New(Options{Window: 100})
	c3.Sample(100)
	c3.Sample(200)
	c3.Sample(300)
	f3 := cleanFinal(0, 0, 0, 0)
	f3.Cycle = 350
	if err := c3.Finish(f3); err != nil {
		t.Fatalf("complete coverage reported: %v", err)
	}
}

func TestCatchesByteHopMismatch(t *testing.T) {
	c := New(Options{})
	c.OnHop(0, 40, 0, 0, 1, 0, 64, false)
	f := cleanFinal(0, 0, 100, 1) // ByteHops says 100, links carried 64
	wantViolation(t, c.Finish(f), "noc.byte-hops")
}

// Mutation: hop-count accounting that disagrees with the hops actually
// observed crossing links must be caught by name.
func TestCatchesHopCountMismatch(t *testing.T) {
	c := New(Options{})
	c.OnHop(0, 40, 0, 0, 1, 0, 64, false)
	c.OnHop(40, 80, 1, 0, 2, 0, 64, false)
	f := cleanFinal(0, 0, 128, 3) // HopsTotal says 3, links saw 2
	wantViolation(t, c.Finish(f), "noc.deflections")
}

// Mutation: a deflection count that disagrees with the deflected hops
// observed must be caught by name.
func TestCatchesDeflectionMismatch(t *testing.T) {
	c := New(Options{})
	c.OnHop(0, 40, 0, 0, 1, 0, 64, true)
	f := cleanFinal(0, 0, 64, 1)
	f.ExactHops = false
	f.NoC.Deflections = 0 // one deflected hop observed
	f.NoC.ManhattanTotal = 1
	wantViolation(t, c.Finish(f), "noc.deflections")
}

// Mutation: fewer hops than the Manhattan lower bound is impossible under
// any routing and must be caught by name.
func TestCatchesHopsBelowManhattan(t *testing.T) {
	c := New(Options{})
	c.OnHop(0, 40, 0, 0, 1, 0, 64, false)
	f := cleanFinal(0, 0, 64, 1)
	f.NoC.ManhattanTotal = 2 // bound says 2, only 1 hop taken
	wantViolation(t, c.Finish(f), "noc.hops-lower-bound")
}

// Mutation: under a minimal routing (ExactHops) any surplus hop or any
// deflection must be caught by name; under a non-minimal routing the same
// surplus is legal.
func TestExactHopsTightensLowerBound(t *testing.T) {
	c := New(Options{})
	c.OnHop(0, 40, 0, 0, 1, 0, 64, false)
	c.OnHop(40, 80, 1, 0, 2, 0, 64, false)
	f := cleanFinal(0, 0, 128, 2)
	f.ExactHops = true
	f.NoC.ManhattanTotal = 1 // 2 hops for a 1-hop Manhattan path
	wantViolation(t, c.Finish(f), "noc.hops-lower-bound")

	c2 := New(Options{})
	c2.OnHop(0, 40, 0, 0, 1, 0, 64, false)
	c2.OnHop(40, 80, 1, 0, 2, 0, 64, true)
	f2 := cleanFinal(0, 0, 128, 2)
	f2.NoC.Deflections = 1
	f2.NoC.ManhattanTotal = 1 // deflection legitimately exceeds the bound
	if err := c2.Finish(f2); err != nil {
		t.Fatalf("non-minimal surplus reported: %v", err)
	}

	c3 := New(Options{})
	c3.OnHop(0, 40, 0, 0, 1, 0, 64, true)
	f3 := cleanFinal(0, 0, 64, 1)
	f3.ExactHops = true
	f3.NoC.Deflections = 1 // minimal routing must never deflect
	wantViolation(t, c3.Finish(f3), "noc.hops-lower-bound")
}

func TestCatchesIOMMUConservationBreak(t *testing.T) {
	c := New(Options{})
	f := cleanFinal(0, 0, 0, 0)
	f.IOMMU = iommu.Stats{Requests: 5, Walks: 4} // one submission unaccounted
	wantViolation(t, c.Finish(f), "iommu.conservation")
}

func TestCatchesUnsettledQueues(t *testing.T) {
	c := New(Options{})
	f := cleanFinal(0, 0, 0, 0)
	f.QueueDepth = 2
	f.WalkersBusy = 1
	wantViolation(t, c.Finish(f), "iommu.queue-settle")
}

func TestCatchesLatencyAccountingBreak(t *testing.T) {
	c := New(Options{})
	feed(c, 2, 300)
	f := cleanFinal(2, 300, 0, 0)
	f.RemoteLatencySum = 599 // spans sum to 600
	wantViolation(t, c.Finish(f), "attr.accounting")
}

func TestCatchesInexactBreakdown(t *testing.T) {
	c := New(Options{})
	feed(c, 1, 300)
	f := cleanFinal(1, 300, 0, 0)
	f.Breakdown = &attr.Breakdown{Clipped: 1, Stages: map[string]*attr.Dist{}}
	wantViolation(t, c.Finish(f), "attr.accounting")
}

func TestCatchesOverfullLink(t *testing.T) {
	c := New(Options{})
	c.Probes(func(v LinkVisitor) {
		v(1, 1, "e", 20_000) // busier than the run is long
	})
	f := cleanFinal(0, 0, 0, 0)
	f.Settled = false // link check applies even to cut runs
	wantViolation(t, c.Finish(f), "noc.link-busy")
}

// A cut run (Settled false) must skip quiescence-only checks.
func TestCutRunSkipsSettleChecks(t *testing.T) {
	c := New(Options{})
	c.IOMMURequest(0, &xlat.Request{ID: 1}) // in flight at the cut
	f := Final{Cycle: 500, Settled: false, QueueDepth: 3, WalkersBusy: 2}
	if err := c.Finish(f); err != nil {
		t.Fatalf("cut run reported settle violations: %v", err)
	}
}

func TestViolationCapKeepsExactCount(t *testing.T) {
	c := New(Options{})
	for i := 0; i < maxRecorded+10; i++ {
		c.violate("test.cap", 0, 0, "violation %d", i)
	}
	vs, total := c.Violations()
	if len(vs) != maxRecorded || total != maxRecorded+10 {
		t.Fatalf("recorded %d / total %d, want %d / %d", len(vs), total, maxRecorded, maxRecorded+10)
	}
	if !strings.Contains(c.Err().Error(), "10 further violations") {
		t.Errorf("overflow not summarised: %v", c.Err())
	}
}

// fakeScheme completes every request with a fixed PFN.
type fakeScheme struct{ pfn vm.PFN }

func (f *fakeScheme) Name() string { return "fake" }
func (f *fakeScheme) Translate(req *xlat.Request) {
	req.Complete(xlat.Result{PTE: vm.PTE{VPN: req.VPN, PFN: f.pfn, Valid: true}, Source: xlat.SourceIOMMU})
}

func TestSchemeCatchesBadPFN(t *testing.T) {
	global := vm.NewPageTable()
	global.Insert(vm.PTE{VPN: 7, PFN: 5007, Valid: true})
	c := New(Options{})
	s := &Scheme{
		Inner:  &fakeScheme{pfn: 1234},
		Global: global,
		Report: c.Record,
		Now:    func() uint64 { return 42 },
	}
	done := false
	s.Translate(xlat.NewRequest(1, 0, 7, 0, 0, func(xlat.Result) { done = true }))
	if !done {
		t.Fatal("wrapped request never completed")
	}
	wantViolation(t, c.Err(), "xlat.bad-pfn")

	// A correct completion passes through clean.
	c2 := New(Options{})
	s2 := &Scheme{Inner: &fakeScheme{pfn: 5007}, Global: global, Report: c2.Record}
	s2.Translate(xlat.NewRequest(2, 0, 7, 0, 0, func(xlat.Result) {}))
	if err := c2.Err(); err != nil {
		t.Fatalf("correct translation reported: %v", err)
	}
}
