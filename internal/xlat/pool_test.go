package xlat

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one containing %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want one containing %q", r, want)
		}
	}()
	f()
}

type discard struct{}

func (discard) RequestDone(*Request, Result) {}

// TestPoolChecksTripwire: with checks armed, every touch of a released
// request panics instead of silently corrupting a recycled object.
func TestPoolChecksTripwire(t *testing.T) {
	SetPoolChecks(true)
	defer SetPoolChecks(false)

	p := NewRequestPool()
	r := p.Get(1, 0, 0x10, 3, 0, discard{})
	r.Unref() // last reference: released to the pool

	mustPanic(t, "Ref on released request", func() { r.Ref() })
	mustPanic(t, "Unref on released request", func() { r.Unref() })
	mustPanic(t, "Complete on released request", func() { r.Complete(Result{}) })
	mustPanic(t, "Completed on released request", func() { r.Completed() })
}

// TestUnrefUnderflowPanics: an unbalanced Unref is a bug in the leg
// accounting and must fail loudly even without pool checks.
func TestUnrefUnderflowPanics(t *testing.T) {
	r := NewRequest(7, 0, 0x20, 0, 0, func(Result) {})
	r.refs = 0 // simulate a leg double-dropping
	mustPanic(t, "Unref underflow", func() { r.Unref() })
}

// TestReferencesKeepRequestLive: intermediate Unrefs must not release while
// another leg still holds a reference; Completed stays readable throughout.
func TestReferencesKeepRequestLive(t *testing.T) {
	SetPoolChecks(true)
	defer SetPoolChecks(false)

	p := NewRequestPool()
	r := p.Get(2, 0, 0x30, 1, 0, discard{})
	r.Ref() // a second in-flight leg
	r.Complete(Result{Source: SourcePeer})
	r.Unref() // creator drops
	if !r.Completed() {
		t.Fatal("completed flag lost while a reference is held")
	}
	r.Unref() // last leg drops; only now may it recycle
	mustPanic(t, "Completed on released request", func() { r.Completed() })
}

// TestGenerationTokens: reference-free legs finish through generation
// tokens, which a recycled object rejects.
func TestGenerationTokens(t *testing.T) {
	p := NewRequestPool()
	r := p.Get(3, 0, 0x40, 0, 0, discard{})
	gen := r.Gen()
	if r.CompletedFor(gen) {
		t.Fatal("fresh request reported completed")
	}
	r.Unref() // recycles: gen advances

	if !r.CompletedFor(gen) {
		t.Fatal("stale generation not reported as over")
	}
	if r.CompleteIf(gen, Result{}) {
		t.Fatal("CompleteIf with a stale generation delivered")
	}

	// The recycled object must come back with a fresh generation so stale
	// tokens from the previous lease keep bouncing.
	r2 := p.Get(4, 0, 0x50, 0, 0, discard{})
	if r2 == r && r2.Gen() == gen {
		t.Fatal("generation not advanced across recycle")
	}
	if !r2.CompleteIf(r2.Gen(), Result{Source: SourceIOMMU}) {
		t.Fatal("CompleteIf with the live generation dropped")
	}
	r2.Unref()
}

// TestDoubleCompleteLoses: only the first Complete wins; the loser reports
// false and the completer runs once.
func TestDoubleCompleteLoses(t *testing.T) {
	n := 0
	r := NewRequest(5, 0, 0x60, 0, 0, func(Result) { n++ })
	if !r.Complete(Result{}) {
		t.Fatal("first Complete lost")
	}
	if r.Complete(Result{}) {
		t.Fatal("second Complete won")
	}
	if n != 1 {
		t.Fatalf("done ran %d times", n)
	}
}
