// Package xlat defines the types shared between the GPM, IOMMU and the
// translation schemes: the remote translation request, its completion
// result, the taxonomy of "who served this translation" used by Fig 16, and
// the wire-message size constants charged against the mesh.
package xlat

import (
	"fmt"
	"sync"

	"hdpat/internal/sim"
	"hdpat/internal/vm"
)

// Message sizes in bytes, charged against NoC bandwidth. A translation
// request carries a VPN plus routing metadata; a response carries a PTE;
// pushes batch one PTE per entry. Data traffic moves whole cachelines.
const (
	ReqBytes      = 16
	RespBytes     = 16
	MissRespBytes = 8
	PushPTEBytes  = 16
	DataReqBytes  = 16
	DataRespBytes = 72 // 64 B line + header
)

// Source says which mechanism ultimately produced a translation, the
// categories of the Fig 16 breakdown.
type Source int

const (
	// SourceIOMMU: resolved by an IOMMU page-table walk (including walks
	// whose response was batched by the PW-queue revisit).
	SourceIOMMU Source = iota
	// SourcePeer: hit in an auxiliary GPM cache reached by the concentric
	// probe, where the entry had been installed by a demand push.
	SourcePeer
	// SourceProactive: hit on an entry that reached its location via
	// proactive page-entry delivery (prefetch).
	SourceProactive
	// SourceRedirect: served via the IOMMU redirection table pointing the
	// request at a peer GPM.
	SourceRedirect
	// SourceOwner: served by the page owner's GMMU (Trans-FW).
	SourceOwner
	// SourceNeighbor: served by a mesh neighbour's L2 TLB (Valkyrie).
	SourceNeighbor
	// SourceRoute: served by an intermediate GPM on the route toward the
	// IOMMU (route-based caching ablation).
	SourceRoute

	numSources
)

// NumSources is the number of distinct Source values.
const NumSources = int(numSources)

var sourceNames = [...]string{
	"iommu", "peer", "proactive", "redirect", "owner", "neighbor", "route",
}

func (s Source) String() string {
	if int(s) < len(sourceNames) {
		return sourceNames[s]
	}
	return "unknown"
}

// Offloaded reports whether the source counts as offloaded from the IOMMU
// walker path (the paper's 42.1 % claim counts everything except walks).
func (s Source) Offloaded() bool { return s != SourceIOMMU }

// Result is the outcome of a remote translation.
type Result struct {
	PTE    vm.PTE
	Source Source
}

// Request is one remote translation request: a GPM failed to translate VPN
// locally and asks the active scheme to resolve it. Exactly one Complete
// call wins; late responses (a concurrent layer probe losing the race, a
// stale IOMMU response after a peer hit) are dropped, mirroring how the
// requesting GMMU's MSHR entry is freed by the first fill.
//
// # Pooling lifetime
//
// Requests on the hot path come from a per-run RequestPool and recycle once
// every in-flight leg has let go (docs/performance.md spells out the rules):
//
//   - The creator holds the first reference; each additional asynchronous
//     leg that will later read request fields (a concentric probe chain, an
//     in-flight mesh hop carrying the request, a pending IOMMU job) takes
//     one with Ref and drops it with Unref when the leg ends.
//   - Completion (Complete/CompleteIf) marks the request completed and
//     advances the generation; it does NOT free. The object returns to the
//     pool only when the last reference unwinds, so late legs — the
//     SkippedCompleted walk skip, a losing probe, a stale poll — still read
//     coherent fields.
//   - Anything that may outlive the last reference must not touch the
//     request at all: capture the generation with Gen at spawn time and
//     finish through CompleteIf/CompletedFor, which a recycled object
//     rejects by generation mismatch.
type Request struct {
	ID        uint64
	PID       vm.PID
	VPN       vm.VPN
	Requester int // GPM index
	Issued    sim.VTime

	done      func(Result)
	c         Completer
	completed bool

	// Attempt counts translation lookups performed on behalf of this
	// request before resolution (peer probes, walk), for diagnostics.
	Attempt int

	pool     *RequestPool // nil for unpooled requests (NewRequest)
	refs     int
	gen      uint32
	released bool
}

// Completer receives a pooled request's result. It is the typed counterpart
// of the done closure: one long-lived implementation (the issuing GPM)
// serves every request, so the completion path allocates nothing.
type Completer interface {
	RequestDone(req *Request, res Result)
}

// RequestPool recycles Request objects within one simulation run. Pools are
// deliberately per-run, not global: a global pool would hand an object
// recycled by one run to a parallel batch worker while a stale reader from
// the first run still held the pointer.
type RequestPool struct {
	p sync.Pool
}

// NewRequestPool returns an empty pool.
func NewRequestPool() *RequestPool {
	return &RequestPool{p: sync.Pool{New: func() any { return new(Request) }}}
}

// Get leases a request for one translation. The caller (the issuing GPM)
// holds the initial reference and drops it with Unref at the end of its
// RequestDone.
func (p *RequestPool) Get(id uint64, pid vm.PID, vpn vm.VPN, requester int, issued sim.VTime, c Completer) *Request {
	r := p.p.Get().(*Request)
	gen := r.gen // survives recycling; everything else is reset
	*r = Request{ID: id, PID: pid, VPN: vpn, Requester: requester,
		Issued: issued, c: c, pool: p, refs: 1, gen: gen}
	return r
}

// poolChecks arms the released-request tripwire: with checks on, touching a
// request after its last reference unwound panics instead of silently
// corrupting a recycled object. Test builds switch it on via SetPoolChecks;
// it costs one predictable branch per operation otherwise.
var poolChecks bool

// SetPoolChecks toggles released-request mutation panics (test builds).
func SetPoolChecks(on bool) { poolChecks = on }

// checkLive panics if the request was already released back to its pool.
func (r *Request) checkLive(op string) {
	if poolChecks && r.released {
		panic(fmt.Sprintf("xlat: %s on released request (id=%d gen=%d)", op, r.ID, r.gen))
	}
}

// NewRequest builds an unpooled request; done is invoked exactly once at
// completion. The cold-path constructor: validation proxies and tests use
// it, hot components lease from a RequestPool instead.
func NewRequest(id uint64, pid vm.PID, vpn vm.VPN, requester int, issued sim.VTime, done func(Result)) *Request {
	return &Request{ID: id, PID: pid, VPN: vpn, Requester: requester, Issued: issued, done: done, refs: 1}
}

// Gen returns the request's generation, captured by legs that may outlive
// the object (see CompleteIf).
func (r *Request) Gen() uint32 { return r.gen }

// Ref takes one reference on behalf of an asynchronous leg that will read
// request fields later. Balance with Unref when the leg ends.
func (r *Request) Ref() {
	r.checkLive("Ref")
	r.refs++
}

// Unref drops one reference. When the last one unwinds the generation
// advances (invalidating every outstanding CompleteIf/CompletedFor token)
// and the object returns to its pool.
func (r *Request) Unref() {
	r.checkLive("Unref")
	r.refs--
	if r.refs > 0 {
		return
	}
	if r.refs < 0 {
		panic(fmt.Sprintf("xlat: Unref underflow (id=%d)", r.ID))
	}
	r.gen++
	r.released = true
	if r.pool != nil {
		r.pool.p.Put(r)
	}
}

// Complete delivers the result; only the first call has effect.
// It reports whether this call was the winning one.
func (r *Request) Complete(res Result) bool {
	r.checkLive("Complete")
	if r.completed {
		return false
	}
	r.completed = true
	if r.c != nil {
		r.c.RequestDone(r, res)
	} else {
		r.done(res)
	}
	return true
}

// CompleteIf is Complete for legs that hold no reference: gen was captured
// while the request was provably live, and a mismatch means the object was
// recycled (or the leg's request completed and the pointer now belongs to a
// different translation) — the delivery is dropped, exactly like a losing
// Complete race.
func (r *Request) CompleteIf(gen uint32, res Result) bool {
	if gen != r.gen || r.completed {
		return false
	}
	return r.Complete(res)
}

// Completed reports whether a result was already delivered. Only holders of
// a reference may call it; reference-free legs use CompletedFor.
func (r *Request) Completed() bool {
	r.checkLive("Completed")
	return r.completed
}

// CompletedFor reports whether the translation identified by gen is over —
// either completed, or recycled out from under a reference-free observer.
func (r *Request) CompletedFor(gen uint32) bool {
	return gen != r.gen || r.completed
}

// RemoteTranslator is a translation scheme: the strategy a GPM invokes when
// a virtual page cannot be translated locally. Implementations are the
// baseline (straight to the IOMMU), HDPAT and its ablations, and the
// Trans-FW / Valkyrie / Barre comparators.
type RemoteTranslator interface {
	// Name identifies the scheme in results tables.
	Name() string
	// Translate resolves req, eventually calling req.Complete.
	Translate(req *Request)
}

// PushOrigin distinguishes how a PTE reached an auxiliary cache, so a later
// hit can be attributed to peer caching vs proactive delivery (Fig 16).
type PushOrigin int

const (
	// PushDemand: pushed after a demand walk whose access count crossed
	// the selective-caching threshold.
	PushDemand PushOrigin = iota
	// PushPrefetch: delivered proactively for a not-yet-requested VPN.
	PushPrefetch
)

// SourceOf maps a push origin to the serving source it produces on a hit.
func (o PushOrigin) SourceOf() Source {
	if o == PushPrefetch {
		return SourceProactive
	}
	return SourcePeer
}
