// Package xlat defines the types shared between the GPM, IOMMU and the
// translation schemes: the remote translation request, its completion
// result, the taxonomy of "who served this translation" used by Fig 16, and
// the wire-message size constants charged against the mesh.
package xlat

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hdpat/internal/sim"
	"hdpat/internal/vm"
)

// Message sizes in bytes, charged against NoC bandwidth. A translation
// request carries a VPN plus routing metadata; a response carries a PTE;
// pushes batch one PTE per entry. Data traffic moves whole cachelines.
const (
	ReqBytes      = 16
	RespBytes     = 16
	MissRespBytes = 8
	PushPTEBytes  = 16
	DataReqBytes  = 16
	DataRespBytes = 72 // 64 B line + header
)

// Source says which mechanism ultimately produced a translation, the
// categories of the Fig 16 breakdown.
type Source int

const (
	// SourceIOMMU: resolved by an IOMMU page-table walk (including walks
	// whose response was batched by the PW-queue revisit).
	SourceIOMMU Source = iota
	// SourcePeer: hit in an auxiliary GPM cache reached by the concentric
	// probe, where the entry had been installed by a demand push.
	SourcePeer
	// SourceProactive: hit on an entry that reached its location via
	// proactive page-entry delivery (prefetch).
	SourceProactive
	// SourceRedirect: served via the IOMMU redirection table pointing the
	// request at a peer GPM.
	SourceRedirect
	// SourceOwner: served by the page owner's GMMU (Trans-FW).
	SourceOwner
	// SourceNeighbor: served by a mesh neighbour's L2 TLB (Valkyrie).
	SourceNeighbor
	// SourceRoute: served by an intermediate GPM on the route toward the
	// IOMMU (route-based caching ablation).
	SourceRoute

	numSources
)

// NumSources is the number of distinct Source values.
const NumSources = int(numSources)

var sourceNames = [...]string{
	"iommu", "peer", "proactive", "redirect", "owner", "neighbor", "route",
}

func (s Source) String() string {
	if int(s) < len(sourceNames) {
		return sourceNames[s]
	}
	return "unknown"
}

// Offloaded reports whether the source counts as offloaded from the IOMMU
// walker path (the paper's 42.1 % claim counts everything except walks).
func (s Source) Offloaded() bool { return s != SourceIOMMU }

// Result is the outcome of a remote translation.
type Result struct {
	PTE    vm.PTE
	Source Source
}

// Request is one remote translation request: a GPM failed to translate VPN
// locally and asks the active scheme to resolve it. Exactly one Complete
// call wins; late responses (a concurrent layer probe losing the race, a
// stale IOMMU response after a peer hit) are dropped, mirroring how the
// requesting GMMU's MSHR entry is freed by the first fill.
//
// # Pooling lifetime
//
// Requests on the hot path come from a per-run RequestPool and recycle once
// every in-flight leg has let go (docs/performance.md spells out the rules):
//
//   - The creator holds the first reference; each additional asynchronous
//     leg that will later read request fields (a concentric probe chain, an
//     in-flight mesh hop carrying the request, a pending IOMMU job) takes
//     one with Ref and drops it with Unref when the leg ends.
//   - Completion (Complete/CompleteIf) marks the request completed and
//     advances the generation; it does NOT free. The object returns to the
//     pool only when the last reference unwinds, so late legs — the
//     SkippedCompleted walk skip, a losing probe, a stale poll — still read
//     coherent fields.
//   - Anything that may outlive the last reference must not touch the
//     request at all: capture the generation with Gen at spawn time and
//     finish through CompleteIf/CompletedFor, which a recycled object
//     rejects by generation mismatch.
type Request struct {
	ID        uint64
	PID       vm.PID
	VPN       vm.VPN
	Requester int // GPM index
	Issued    sim.VTime

	done func(Result)
	c    Completer

	// completedAt is the completion mark, accessed atomically: 0 while
	// pending, else the completion cycle + 1 (1 in serial runs, which never
	// need the cycle). Atomic because a sharded run's IOMMU domain probes it
	// (CompletedProbe) while the requester's domain completes.
	completedAt uint64
	// probedAt is the Dekker handshake word of CompletedProbe in sharded
	// runs: window<<32 | probe cycle, accessed atomically.
	probedAt uint64

	// Attempt counts translation lookups performed on behalf of this
	// request before resolution (peer probes, walk), for diagnostics.
	Attempt int

	pool     *RequestPool // nil for unpooled requests (NewRequest)
	refs     int32        // atomic: legs in different domains Ref/Unref
	gen      uint32
	released bool
}

// Completer receives a pooled request's result. It is the typed counterpart
// of the done closure: one long-lived implementation (the issuing GPM)
// serves every request, so the completion path allocates nothing.
type Completer interface {
	RequestDone(req *Request, res Result)
}

// RequestPool recycles Request objects within one simulation run. Pools are
// deliberately per-run, not global: a global pool would hand an object
// recycled by one run to a parallel batch worker while a stale reader from
// the first run still held the pointer.
type RequestPool struct {
	p sync.Pool
	// shard is non-nil for the pool of a domain-sharded run (see ShardInfo);
	// installed once before the run starts.
	shard *ShardInfo
}

// ShardInfo wires a domain-sharded run's completion hazard detection into
// its request pool. A serial run never sets one.
//
// One ordering seam survives domain sharding's lookahead argument: the
// IOMMU's dispatch-time skip check reads a request's completion mark, which
// the requester's domain writes — a zero-lookahead read. CompletedProbe and
// Complete resolve it per window: completions from earlier windows are
// barrier-ordered and exact; within the current window the two sides run a
// store-then-load handshake on (probedAt, completedAt) so that any racing
// probe/complete pair on the same request — and any exact same-cycle tie,
// whose serial order depends on sequence numbers neither side can see — is
// flagged as a hazard by at least one side. The caller discards a run with
// hazards and reruns it serially, which is always exact.
type ShardInfo struct {
	// NowOf returns the current cycle of the engine owning GPM id's domain;
	// called only from that domain's goroutine.
	NowOf func(gpmID int) sim.VTime
	// DomOf maps GPM id to domain; IOMMUDom is the CPU tile's domain.
	DomOf    []int32
	IOMMUDom int32

	round   uint64 // atomic: current 1-based window
	hazards uint64 // atomic: same-window probe/complete collisions
}

// SetRound publishes the current window index; the coordinator calls it at
// each window start, while no domain goroutine runs.
func (si *ShardInfo) SetRound(r uint64) { atomic.StoreUint64(&si.round, r) }

// Hazards reports how many same-window completion races were flagged; any
// nonzero count means the run's results may diverge from serial and must be
// discarded.
func (si *ShardInfo) Hazards() uint64 { return atomic.LoadUint64(&si.hazards) }

// SetShard installs the sharded-run hazard wiring; call before the run.
func (p *RequestPool) SetShard(si *ShardInfo) { p.shard = si }

// shardInfo returns the hazard wiring, nil for unpooled requests and serial
// runs.
func (r *Request) shardInfo() *ShardInfo {
	if r.pool == nil {
		return nil
	}
	return r.pool.shard
}

// NewRequestPool returns an empty pool.
func NewRequestPool() *RequestPool {
	return &RequestPool{p: sync.Pool{New: func() any { return new(Request) }}}
}

// Get leases a request for one translation. The caller (the issuing GPM)
// holds the initial reference and drops it with Unref at the end of its
// RequestDone.
func (p *RequestPool) Get(id uint64, pid vm.PID, vpn vm.VPN, requester int, issued sim.VTime, c Completer) *Request {
	r := p.p.Get().(*Request)
	gen := r.gen // survives recycling; everything else is reset
	*r = Request{ID: id, PID: pid, VPN: vpn, Requester: requester,
		Issued: issued, c: c, pool: p, refs: 1, gen: gen}
	return r
}

// poolChecks arms the released-request tripwire: with checks on, touching a
// request after its last reference unwound panics instead of silently
// corrupting a recycled object. Test builds switch it on via SetPoolChecks;
// it costs one predictable branch per operation otherwise.
var poolChecks bool

// SetPoolChecks toggles released-request mutation panics (test builds).
func SetPoolChecks(on bool) { poolChecks = on }

// checkLive panics if the request was already released back to its pool.
func (r *Request) checkLive(op string) {
	if poolChecks && r.released {
		panic(fmt.Sprintf("xlat: %s on released request (id=%d gen=%d)", op, r.ID, r.gen))
	}
}

// NewRequest builds an unpooled request; done is invoked exactly once at
// completion. The cold-path constructor: validation proxies and tests use
// it, hot components lease from a RequestPool instead.
func NewRequest(id uint64, pid vm.PID, vpn vm.VPN, requester int, issued sim.VTime, done func(Result)) *Request {
	return &Request{ID: id, PID: pid, VPN: vpn, Requester: requester, Issued: issued, done: done, refs: 1}
}

// Gen returns the request's generation, captured by legs that may outlive
// the object (see CompleteIf).
func (r *Request) Gen() uint32 { return r.gen }

// Ref takes one reference on behalf of an asynchronous leg that will read
// request fields later. Balance with Unref when the leg ends. Legs in
// different domains of a sharded run take and drop references concurrently,
// hence the atomic count.
func (r *Request) Ref() {
	r.checkLive("Ref")
	atomic.AddInt32(&r.refs, 1)
}

// Unref drops one reference. When the last one unwinds the generation
// advances (invalidating every outstanding CompleteIf/CompletedFor token)
// and the object returns to its pool.
func (r *Request) Unref() {
	r.checkLive("Unref")
	n := atomic.AddInt32(&r.refs, -1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic(fmt.Sprintf("xlat: Unref underflow (id=%d)", r.ID))
	}
	r.gen++
	r.released = true
	if r.pool != nil {
		r.pool.p.Put(r)
	}
}

// Complete delivers the result; only the first call has effect.
// It reports whether this call was the winning one. Completion always runs
// on the requester's engine (the first fill frees the requesting GMMU's
// MSHR entry there), so competing Complete calls are sequential and the
// first-wins check needs no compare-and-swap.
func (r *Request) Complete(res Result) bool {
	r.checkLive("Complete")
	if atomic.LoadUint64(&r.completedAt) != 0 {
		return false
	}
	at := uint64(1)
	si := r.shardInfo()
	if si != nil {
		at = uint64(si.NowOf(r.Requester)) + 1
	}
	atomic.StoreUint64(&r.completedAt, at)
	if si != nil && si.DomOf[r.Requester] != si.IOMMUDom {
		// Dekker back-check: an IOMMU-domain probe in this same window at a
		// cycle >= ours may have loaded the pre-completion state (serial
		// order would have shown it completed) or hit an exact-cycle tie;
		// either way the run must be discarded. Sequentially consistent
		// store/load order guarantees at least one side of a racing pair
		// sees the other.
		p := atomic.LoadUint64(&r.probedAt)
		if p>>32 == atomic.LoadUint64(&si.round) && p&0xffffffff >= at-1 {
			atomic.AddUint64(&si.hazards, 1)
		}
	}
	if r.c != nil {
		r.c.RequestDone(r, res)
	} else {
		r.done(res)
	}
	return true
}

// CompletedProbe is Completed for the one cross-domain reader a sharded run
// has: the IOMMU's dispatch-time skip check, probing at its own cycle `now`.
// Completions from earlier windows (and same-domain ones) are exact; a
// same-window cross-domain completion is ordered by cycle, with exact-cycle
// ties — undecidable without serial sequence numbers — flagged as hazards.
// On a serial run it is identical to Completed.
func (r *Request) CompletedProbe(now sim.VTime) bool {
	r.checkLive("CompletedProbe")
	si := r.shardInfo()
	if si == nil || si.DomOf[r.Requester] == si.IOMMUDom {
		return atomic.LoadUint64(&r.completedAt) != 0
	}
	atomic.StoreUint64(&r.probedAt, atomic.LoadUint64(&si.round)<<32|uint64(now))
	c := atomic.LoadUint64(&r.completedAt)
	switch {
	case c == 0:
		return false // a racing same-window completion flags the hazard itself
	case sim.VTime(c-1) < now:
		return true
	case sim.VTime(c-1) > now:
		return false // serial order: the probe precedes the completion
	default:
		atomic.AddUint64(&si.hazards, 1) // exact-cycle tie
		return true
	}
}

// CompleteIf is Complete for legs that hold no reference: gen was captured
// while the request was provably live, and a mismatch means the object was
// recycled (or the leg's request completed and the pointer now belongs to a
// different translation) — the delivery is dropped, exactly like a losing
// Complete race.
func (r *Request) CompleteIf(gen uint32, res Result) bool {
	if gen != r.gen || atomic.LoadUint64(&r.completedAt) != 0 {
		return false
	}
	return r.Complete(res)
}

// Completed reports whether a result was already delivered. Only holders of
// a reference may call it; reference-free legs use CompletedFor. In a
// sharded run it may only be read from the requester's own domain (where it
// is exact); the IOMMU's cross-domain check uses CompletedProbe.
func (r *Request) Completed() bool {
	r.checkLive("Completed")
	return atomic.LoadUint64(&r.completedAt) != 0
}

// CompletedFor reports whether the translation identified by gen is over —
// either completed, or recycled out from under a reference-free observer.
func (r *Request) CompletedFor(gen uint32) bool {
	return gen != r.gen || atomic.LoadUint64(&r.completedAt) != 0
}

// RemoteTranslator is a translation scheme: the strategy a GPM invokes when
// a virtual page cannot be translated locally. Implementations are the
// baseline (straight to the IOMMU), HDPAT and its ablations, and the
// Trans-FW / Valkyrie / Barre comparators.
type RemoteTranslator interface {
	// Name identifies the scheme in results tables.
	Name() string
	// Translate resolves req, eventually calling req.Complete.
	Translate(req *Request)
}

// PushOrigin distinguishes how a PTE reached an auxiliary cache, so a later
// hit can be attributed to peer caching vs proactive delivery (Fig 16).
type PushOrigin int

const (
	// PushDemand: pushed after a demand walk whose access count crossed
	// the selective-caching threshold.
	PushDemand PushOrigin = iota
	// PushPrefetch: delivered proactively for a not-yet-requested VPN.
	PushPrefetch
)

// SourceOf maps a push origin to the serving source it produces on a hit.
func (o PushOrigin) SourceOf() Source {
	if o == PushPrefetch {
		return SourceProactive
	}
	return SourcePeer
}
