// Package xlat defines the types shared between the GPM, IOMMU and the
// translation schemes: the remote translation request, its completion
// result, the taxonomy of "who served this translation" used by Fig 16, and
// the wire-message size constants charged against the mesh.
package xlat

import (
	"hdpat/internal/sim"
	"hdpat/internal/vm"
)

// Message sizes in bytes, charged against NoC bandwidth. A translation
// request carries a VPN plus routing metadata; a response carries a PTE;
// pushes batch one PTE per entry. Data traffic moves whole cachelines.
const (
	ReqBytes      = 16
	RespBytes     = 16
	MissRespBytes = 8
	PushPTEBytes  = 16
	DataReqBytes  = 16
	DataRespBytes = 72 // 64 B line + header
)

// Source says which mechanism ultimately produced a translation, the
// categories of the Fig 16 breakdown.
type Source int

const (
	// SourceIOMMU: resolved by an IOMMU page-table walk (including walks
	// whose response was batched by the PW-queue revisit).
	SourceIOMMU Source = iota
	// SourcePeer: hit in an auxiliary GPM cache reached by the concentric
	// probe, where the entry had been installed by a demand push.
	SourcePeer
	// SourceProactive: hit on an entry that reached its location via
	// proactive page-entry delivery (prefetch).
	SourceProactive
	// SourceRedirect: served via the IOMMU redirection table pointing the
	// request at a peer GPM.
	SourceRedirect
	// SourceOwner: served by the page owner's GMMU (Trans-FW).
	SourceOwner
	// SourceNeighbor: served by a mesh neighbour's L2 TLB (Valkyrie).
	SourceNeighbor
	// SourceRoute: served by an intermediate GPM on the route toward the
	// IOMMU (route-based caching ablation).
	SourceRoute

	numSources
)

// NumSources is the number of distinct Source values.
const NumSources = int(numSources)

var sourceNames = [...]string{
	"iommu", "peer", "proactive", "redirect", "owner", "neighbor", "route",
}

func (s Source) String() string {
	if int(s) < len(sourceNames) {
		return sourceNames[s]
	}
	return "unknown"
}

// Offloaded reports whether the source counts as offloaded from the IOMMU
// walker path (the paper's 42.1 % claim counts everything except walks).
func (s Source) Offloaded() bool { return s != SourceIOMMU }

// Result is the outcome of a remote translation.
type Result struct {
	PTE    vm.PTE
	Source Source
}

// Request is one remote translation request: a GPM failed to translate VPN
// locally and asks the active scheme to resolve it. Exactly one Complete
// call wins; late responses (a concurrent layer probe losing the race, a
// stale IOMMU response after a peer hit) are dropped, mirroring how the
// requesting GMMU's MSHR entry is freed by the first fill.
type Request struct {
	ID        uint64
	PID       vm.PID
	VPN       vm.VPN
	Requester int // GPM index
	Issued    sim.VTime

	done      func(Result)
	completed bool

	// Attempt counts translation lookups performed on behalf of this
	// request before resolution (peer probes, walk), for diagnostics.
	Attempt int
}

// NewRequest builds a request; done is invoked exactly once at completion.
func NewRequest(id uint64, pid vm.PID, vpn vm.VPN, requester int, issued sim.VTime, done func(Result)) *Request {
	return &Request{ID: id, PID: pid, VPN: vpn, Requester: requester, Issued: issued, done: done}
}

// Complete delivers the result; only the first call has effect.
// It reports whether this call was the winning one.
func (r *Request) Complete(res Result) bool {
	if r.completed {
		return false
	}
	r.completed = true
	r.done(res)
	return true
}

// Completed reports whether a result was already delivered.
func (r *Request) Completed() bool { return r.completed }

// RemoteTranslator is a translation scheme: the strategy a GPM invokes when
// a virtual page cannot be translated locally. Implementations are the
// baseline (straight to the IOMMU), HDPAT and its ablations, and the
// Trans-FW / Valkyrie / Barre comparators.
type RemoteTranslator interface {
	// Name identifies the scheme in results tables.
	Name() string
	// Translate resolves req, eventually calling req.Complete.
	Translate(req *Request)
}

// PushOrigin distinguishes how a PTE reached an auxiliary cache, so a later
// hit can be attributed to peer caching vs proactive delivery (Fig 16).
type PushOrigin int

const (
	// PushDemand: pushed after a demand walk whose access count crossed
	// the selective-caching threshold.
	PushDemand PushOrigin = iota
	// PushPrefetch: delivered proactively for a not-yet-requested VPN.
	PushPrefetch
)

// SourceOf maps a push origin to the serving source it produces on a hit.
func (o PushOrigin) SourceOf() Source {
	if o == PushPrefetch {
		return SourceProactive
	}
	return SourcePeer
}
