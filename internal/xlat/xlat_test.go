package xlat

import (
	"testing"

	"hdpat/internal/vm"
)

func TestRequestCompleteOnce(t *testing.T) {
	calls := 0
	var got Result
	r := NewRequest(1, 0, 42, 3, 100, func(res Result) { calls++; got = res })
	if r.Completed() {
		t.Fatal("new request already completed")
	}
	first := r.Complete(Result{PTE: vm.PTE{PFN: 7}, Source: SourcePeer})
	second := r.Complete(Result{PTE: vm.PTE{PFN: 9}, Source: SourceIOMMU})
	if !first || second {
		t.Fatalf("first=%v second=%v; want true,false", first, second)
	}
	if calls != 1 || got.PTE.PFN != 7 || got.Source != SourcePeer {
		t.Fatalf("calls=%d got=%+v", calls, got)
	}
	if !r.Completed() {
		t.Error("Completed() false after completion")
	}
}

func TestSourceNames(t *testing.T) {
	seen := map[string]bool{}
	for s := Source(0); int(s) < NumSources; s++ {
		n := s.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Errorf("source %d has bad name %q", s, n)
		}
		seen[n] = true
	}
	if Source(99).String() != "unknown" {
		t.Error("out-of-range source should be unknown")
	}
}

func TestOffloaded(t *testing.T) {
	if SourceIOMMU.Offloaded() {
		t.Error("IOMMU walks are not offloaded")
	}
	for _, s := range []Source{SourcePeer, SourceProactive, SourceRedirect, SourceOwner, SourceNeighbor, SourceRoute} {
		if !s.Offloaded() {
			t.Errorf("%v should count as offloaded", s)
		}
	}
}

func TestPushOriginSource(t *testing.T) {
	if PushDemand.SourceOf() != SourcePeer {
		t.Error("demand push should surface as peer caching")
	}
	if PushPrefetch.SourceOf() != SourceProactive {
		t.Error("prefetch push should surface as proactive delivery")
	}
}
