package metrics

import (
	"encoding/json"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestLog2BucketProperties(t *testing.T) {
	if Log2Bucket(0) != 0 {
		t.Errorf("Log2Bucket(0) = %d, want 0", Log2Bucket(0))
	}
	if lo, hi := BucketRange(0); lo != 0 || hi != 0 {
		t.Errorf("BucketRange(0) = %d, %d", lo, hi)
	}
	// Every non-zero value must land in a bucket whose range contains it.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10_000; i++ {
		v := rng.Uint64() >> uint(rng.Intn(64))
		if v == 0 {
			continue
		}
		b := Log2Bucket(v)
		if b <= 0 || b >= NumBuckets {
			t.Fatalf("Log2Bucket(%d) = %d out of range", v, b)
		}
		lo, hi := BucketRange(b)
		if v < lo || v > hi {
			t.Fatalf("v=%d in bucket %d with range [%d, %d]", v, b, lo, hi)
		}
	}
	// Boundaries: 2^(i-1) starts bucket i, 2^i - 1 ends it.
	for i := 1; i < NumBuckets; i++ {
		lo, hi := BucketRange(i)
		if Log2Bucket(lo) != i {
			t.Errorf("Log2Bucket(%d) = %d, want %d", lo, Log2Bucket(lo), i)
		}
		if Log2Bucket(hi) != i {
			t.Errorf("Log2Bucket(%d) = %d, want %d", hi, Log2Bucket(hi), i)
		}
	}
	// Ranges tile the uint64 space without gaps.
	for i := 1; i < NumBuckets-1; i++ {
		_, hi := BucketRange(i)
		lo, _ := BucketRange(i + 1)
		if lo != hi+1 {
			t.Errorf("gap between bucket %d (hi %d) and %d (lo %d)", i, hi, i+1, lo)
		}
	}
	if _, hi := BucketRange(NumBuckets - 1); hi != math.MaxUint64 {
		t.Errorf("top bucket hi = %d, want MaxUint64", hi)
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("counter = %d, want 42", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if g.Value() != -3 {
		t.Errorf("gauge = %d, want -3", g.Value())
	}
	g.Max(5)
	if g.Value() != 5 {
		t.Errorf("gauge after Max(5) = %d", g.Value())
	}
	g.Max(2) // lower: must not move
	if g.Value() != 5 {
		t.Errorf("gauge after Max(2) = %d, want 5", g.Value())
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot()
	hs := s.Histograms["lat"]
	if hs.Count != 6 || hs.Sum != 1010 || hs.Max != 1000 {
		t.Errorf("snapshot = %+v", hs)
	}
	if got := hs.Mean(); got != 1010.0/6 {
		t.Errorf("mean = %f", got)
	}
	// 1000 lands in bucket 10 ([512, 1023]); trimming keeps 11 buckets.
	if len(hs.Buckets) != Log2Bucket(1000)+1 {
		t.Errorf("buckets trimmed to %d, want %d", len(hs.Buckets), Log2Bucket(1000)+1)
	}
	var total uint64
	for _, b := range hs.Buckets {
		total += b
	}
	if total != hs.Count {
		t.Errorf("bucket sum %d != count %d", total, hs.Count)
	}
	// The snapshot must be detached from the live histogram.
	h.Observe(5)
	if hs.Count != 6 || s.Histograms["lat"].Count != 6 {
		t.Error("snapshot not immutable")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter returned distinct handles for one name")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Error("Gauge returned distinct handles for one name")
	}
	if r.Histogram("a") != r.Histogram("a") {
		t.Error("Histogram returned distinct handles for one name")
	}
}

func TestMerge(t *testing.T) {
	run := NewRegistry()
	run.Counter("c").Add(10)
	run.Gauge("g").Set(3)
	run.Histogram("h").Observe(100)
	run.Histogram("h").Observe(200)
	s := run.Snapshot()

	agg := NewRegistry()
	agg.Counter("c").Add(5)
	agg.Gauge("g").Set(99)
	agg.Histogram("h").Observe(7)
	agg.Merge(s)
	agg.Merge(nil) // no-op

	out := agg.Snapshot()
	if out.Counter("c") != 15 {
		t.Errorf("merged counter = %d, want 15", out.Counter("c"))
	}
	if out.Gauge("g") != 3 {
		t.Errorf("merged gauge = %d, want 3 (snapshot wins)", out.Gauge("g"))
	}
	h := out.Histograms["h"]
	if h.Count != 3 || h.Sum != 307 || h.Max != 200 {
		t.Errorf("merged histogram = %+v", h)
	}
}

// TestMergeConcurrentPerRunRegistries is the batch path of batch.go: every
// run owns a private registry and folds its final snapshot into the shared
// session registry as it settles, from worker goroutines. The aggregate
// must equal the arithmetic sum regardless of merge interleaving.
func TestMergeConcurrentPerRunRegistries(t *testing.T) {
	const runs = 16
	agg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run := NewRegistry() // per-run private registry
			run.Counter("noc.messages").Add(uint64(100 + i))
			run.Gauge("run.index").Set(int64(i))
			for v := uint64(0); v <= uint64(i); v++ {
				run.Histogram("iommu.latency").Observe(v * v)
			}
			agg.Merge(run.Snapshot())
		}(i)
	}
	wg.Wait()

	out := agg.Snapshot()
	var wantC, wantCount, wantSum, wantMax uint64
	for i := 0; i < runs; i++ {
		wantC += uint64(100 + i)
		for v := uint64(0); v <= uint64(i); v++ {
			wantCount++
			wantSum += v * v
			if v*v > wantMax {
				wantMax = v * v
			}
		}
	}
	if got := out.Counter("noc.messages"); got != wantC {
		t.Errorf("merged counter = %d, want %d", got, wantC)
	}
	h := out.Histograms["iommu.latency"]
	if h.Count != wantCount || h.Sum != wantSum || h.Max != wantMax {
		t.Errorf("merged histogram = %+v, want count %d sum %d max %d", h, wantCount, wantSum, wantMax)
	}
	var bucketTotal uint64
	for _, b := range h.Buckets {
		bucketTotal += b
	}
	if bucketTotal != wantCount {
		t.Errorf("bucket occupancy %d != count %d after merges", bucketTotal, wantCount)
	}
	// The gauge holds some run's index — last merge wins, any run is legal.
	if g := out.Gauge("run.index"); g < 0 || g >= runs {
		t.Errorf("merged gauge = %d, outside run range", g)
	}
}

// TestMergeHistogramBucketEdges covers bucket-boundary cases of the merge:
// trimmed bucket slices of different lengths, the zero-value bucket, the
// top bucket, empty histograms, and max propagation in both directions.
func TestMergeHistogramBucketEdges(t *testing.T) {
	short := NewRegistry()
	short.Histogram("h").Observe(0) // bucket 0: the zero-only bucket
	short.Histogram("h").Observe(1) // bucket 1
	long := NewRegistry()
	long.Histogram("h").Observe(1 << 63)       // top bucket (NumBuckets-1)
	long.Histogram("h").Observe((1 << 63) - 1) // one bucket below
	long.Histogram("empty").Observe(5)         // series absent on the other side
	agg := NewRegistry()
	agg.Merge(short.Snapshot()) // short Buckets slice first...
	agg.Merge(long.Snapshot())  // ...then one trimmed far longer
	agg.Merge(NewRegistry().Snapshot())

	h := agg.Snapshot().Histograms["h"]
	if h.Count != 4 || h.Max != 1<<63 {
		t.Fatalf("merged histogram = %+v", h)
	}
	if len(h.Buckets) != NumBuckets {
		t.Fatalf("bucket slice trimmed to %d, want full %d (top bucket occupied)", len(h.Buckets), NumBuckets)
	}
	for i, want := range map[int]uint64{0: 1, 1: 1, NumBuckets - 2: 1, NumBuckets - 1: 1} {
		if h.Buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, h.Buckets[i], want)
		}
	}
	// Merging the larger max first then a smaller one must keep the larger.
	rev := NewRegistry()
	rev.Merge(long.Snapshot())
	rev.Merge(short.Snapshot())
	if got := rev.Snapshot().Histograms["h"].Max; got != 1<<63 {
		t.Errorf("reverse-order merge max = %d, want %d", got, uint64(1)<<63)
	}
	if e := agg.Snapshot().Histograms["empty"]; e.Count != 1 || e.Sum != 5 {
		t.Errorf("one-sided series merged to %+v", e)
	}
}

// TestDiffDisjointAndHistogramCounts: diffs over snapshots with disjoint
// series report one-sided entries with the correct sign, and histogram
// series diff by count.
func TestDiffDisjointAndHistogramCounts(t *testing.T) {
	a := NewRegistry()
	a.Counter("only.a").Add(3)
	a.Histogram("h").Observe(10)
	a.Histogram("h").Observe(20)
	b := NewRegistry()
	b.Counter("only.b").Add(7)
	b.Gauge("g").Set(-4)
	b.Histogram("h").Observe(99)
	b.Histogram("only.b.h").Observe(1)

	d := a.Snapshot().Diff(b.Snapshot())
	want := map[string]float64{
		"only.a": 3, "only.b": -7, "g": 4,
		"h.count": 1, "only.b.h.count": -1,
	}
	for k, v := range want {
		if d[k] != v {
			t.Errorf("diff[%q] = %v, want %v", k, d[k], v)
		}
	}
	if d := (*Snapshot)(nil).Diff(b.Snapshot()); d != nil {
		t.Error("nil snapshot diff should be nil")
	}
}

func TestSnapshotValueSeriesDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(4)
	r.Gauge("g").Set(-2)
	r.Histogram("h").Observe(10)
	s := r.Snapshot()

	if v, ok := s.Value("c"); !ok || v != 4 {
		t.Errorf("Value(c) = %f, %v", v, ok)
	}
	if v, ok := s.Value("g"); !ok || v != -2 {
		t.Errorf("Value(g) = %f, %v", v, ok)
	}
	if v, ok := s.Value("h"); !ok || v != 10 {
		t.Errorf("Value(h) = %f, %v", v, ok)
	}
	if _, ok := s.Value("missing"); ok {
		t.Error("Value(missing) reported ok")
	}
	if got := s.Series(); len(got) != 3 || got[0] != "c" || got[1] != "g" || got[2] != "h" {
		t.Errorf("Series = %v", got)
	}

	b := NewRegistry()
	b.Counter("c").Add(1)
	b.Counter("only_base").Add(9)
	b.Histogram("h").Observe(1)
	b.Histogram("h").Observe(2)
	base := b.Snapshot()

	d := s.Diff(base)
	if d["c"] != 3 {
		t.Errorf("diff c = %f, want 3", d["c"])
	}
	if d["only_base"] != -9 {
		t.Errorf("diff only_base = %f, want -9", d["only_base"])
	}
	if d["g"] != -2 {
		t.Errorf("diff g = %f, want -2", d["g"])
	}
	if d["h.count"] != -1 {
		t.Errorf("diff h.count = %f, want -1", d["h.count"])
	}
	if s.Diff(nil) != nil {
		t.Error("Diff(nil) should be nil")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("tlb.l2.hits").Add(12)
	r.Histogram("iommu.latency").Observe(400)
	out, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("tlb.l2.hits") != 12 || back.Histograms["iommu.latency"].Count != 1 {
		t.Errorf("round-trip = %+v", back)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("tlb.l2.hits").Add(3)
	r.Gauge("iommu.queue.depth").Set(-1)
	h := r.Histogram("noc.hops")
	h.Observe(1)
	h.Observe(6)
	text := r.Snapshot().Prometheus()

	for _, want := range []string{
		"# TYPE hdpat_tlb_l2_hits counter\nhdpat_tlb_l2_hits 3\n",
		"# TYPE hdpat_iommu_queue_depth gauge\nhdpat_iommu_queue_depth -1\n",
		"# TYPE hdpat_noc_hops histogram\n",
		"hdpat_noc_hops_bucket{le=\"+Inf\"} 2\n",
		"hdpat_noc_hops_sum 7\nhdpat_noc_hops_count 2\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	// Cumulative buckets must be non-decreasing and end at the count.
	var last uint64
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "hdpat_noc_hops_bucket") {
			continue
		}
		v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < last {
			t.Errorf("cumulative bucket decreased: %q", line)
		}
		last = v
	}
	if last != 2 {
		t.Errorf("final cumulative bucket = %d, want 2", last)
	}
}

// TestConcurrentUpdatesAndSnapshots drives writers and snapshot readers in
// parallel; run under -race this proves live scraping is safe.
func TestConcurrentUpdatesAndSnapshots(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			g := r.Gauge("g")
			h := r.Histogram("h")
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Set(int64(i))
				g.Max(int64(i))
				h.Observe(uint64(i))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			s := r.Snapshot()
			_ = s.Prometheus()
			r.Merge(s) // merging while writing must also be safe
		}
	}()
	wg.Wait()
	if r.Counter("c").Value() < 4000 {
		t.Errorf("lost counter updates: %d", r.Counter("c").Value())
	}
}
