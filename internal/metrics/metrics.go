// Package metrics is a dependency-free registry of named counters, gauges
// and log2-bucketed histograms: the observability backbone every simulator
// component reports into. Hot-path updates are single atomic operations so a
// disabled component pays one nil-check and an enabled one stays cheap;
// reads (snapshots, the HTTP exposition in http.go) may run concurrently
// with a simulation.
//
// A Registry is attached per run (wafer.Options.Metrics); its immutable
// Snapshot travels on the run's Result so schemes can be diffed series by
// series. Batch layers merge per-run snapshots into a long-lived aggregate
// registry, which is what a live /metrics endpoint serves.
//
// Naming convention: dotted lowercase paths, component first —
// "tlb.l2.hits", "iommu.queue.depth", "noc.byte_hops". Dots become
// underscores (with an "hdpat_" prefix) in the Prometheus exposition.
package metrics

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// NumBuckets is the number of log2 histogram buckets: bucket 0 holds only
// zero, bucket i >= 1 holds [2^(i-1), 2^i).
const NumBuckets = 65

// Log2Bucket returns the bucket index of v. It is the one log2-bucketing
// rule in the repository: stats.Histogram delegates here too.
func Log2Bucket(v uint64) int { return bits.Len64(v) }

// BucketRange returns the inclusive value range [lo, hi] covered by bucket i
// (0, 0 for bucket 0 and out-of-range indices).
func BucketRange(i int) (lo, hi uint64) {
	if i <= 0 || i >= NumBuckets {
		return 0, 0
	}
	lo = 1 << (i - 1)
	hi = lo<<1 - 1 // wraps to MaxUint64 for the top bucket
	return lo, hi
}

// Counter is a monotonically increasing series.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a series that can move in both directions (queue depth, heap
// size, configuration constants).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max raises the gauge to v if it is below it.
func (g *Gauge) Max(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Histogram is a fixed-size log2-bucketed histogram for wide-ranged values
// (latencies, hop counts, queue depths). All updates are lock-free.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// Observe records v.
func (h *Histogram) Observe(v uint64) {
	h.buckets[Log2Bucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Registry holds named series. The zero value is not usable; create with
// NewRegistry. Series creation takes a lock; updates through the returned
// handles do not.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it at zero on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it empty on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// HistSnapshot is one histogram's frozen state. Buckets is trimmed to the
// highest non-empty bucket.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Max     uint64   `json:"max"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// Mean returns the mean observed value (0 when empty).
func (h HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is an immutable copy of a registry's series at one instant; it is
// what a run's Result carries.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current values.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
		top := -1
		var buckets [NumBuckets]uint64
		for i := range buckets {
			buckets[i] = h.buckets[i].Load()
			if buckets[i] > 0 {
				top = i
			}
		}
		if top >= 0 {
			hs.Buckets = append([]uint64(nil), buckets[:top+1]...)
		}
		s.Histograms[name] = hs
	}
	return s
}

// Merge folds a snapshot into the registry: counters and histograms
// accumulate, gauges take the snapshot's value. Batch layers use it to
// aggregate per-run snapshots into a live session registry.
func (r *Registry) Merge(s *Snapshot) {
	if s == nil {
		return
	}
	for name, v := range s.Counters {
		r.Counter(name).Add(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Set(v)
	}
	for name, hs := range s.Histograms {
		h := r.Histogram(name)
		for i, b := range hs.Buckets {
			if b > 0 {
				h.buckets[i].Add(b)
			}
		}
		h.count.Add(hs.Count)
		h.sum.Add(hs.Sum)
		for {
			cur := h.max.Load()
			if hs.Max <= cur || h.max.CompareAndSwap(cur, hs.Max) {
				break
			}
		}
	}
}

// Counter returns the named counter's value (0 if absent).
func (s *Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns the named gauge's value (0 if absent).
func (s *Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Value returns the named series as a float64: a counter, else a gauge,
// else a histogram's mean. ok is false when no series has that name.
func (s *Snapshot) Value(name string) (v float64, ok bool) {
	if c, found := s.Counters[name]; found {
		return float64(c), true
	}
	if g, found := s.Gauges[name]; found {
		return float64(g), true
	}
	if h, found := s.Histograms[name]; found {
		return h.Mean(), true
	}
	return 0, false
}

// Series returns every series name, sorted.
func (s *Snapshot) Series() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Diff returns per-series deltas (s minus base) for every counter and gauge
// present in either snapshot; histogram series contribute their count delta.
// It is how CompareAll callers diff a scheme's metric set against the
// baseline's.
func (s *Snapshot) Diff(base *Snapshot) map[string]float64 {
	if s == nil || base == nil {
		return nil
	}
	out := make(map[string]float64)
	for name, v := range s.Counters {
		out[name] = float64(v) - float64(base.Counters[name])
	}
	for name, v := range base.Counters {
		if _, seen := s.Counters[name]; !seen {
			out[name] = -float64(v)
		}
	}
	for name, v := range s.Gauges {
		out[name] = float64(v) - float64(base.Gauges[name])
	}
	for name, v := range base.Gauges {
		if _, seen := s.Gauges[name]; !seen {
			out[name] = -float64(v)
		}
	}
	for name, h := range s.Histograms {
		out[name+".count"] = float64(h.Count) - float64(base.Histograms[name].Count)
	}
	for name, h := range base.Histograms {
		if _, seen := s.Histograms[name]; !seen {
			out[name+".count"] = -float64(h.Count)
		}
	}
	return out
}

// JSON renders the snapshot as indented JSON.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// promName maps a dotted series name to a Prometheus-legal metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("hdpat_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Prometheus renders the snapshot in the Prometheus text exposition format
// (series names sanitised to hdpat_<name with dots as underscores>).
func (s *Snapshot) Prometheus() string {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		var cum uint64
		for i, c := range h.Buckets {
			cum += c
			_, hi := BucketRange(i)
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", pn, hi, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", pn, h.Sum, pn, h.Count)
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
