package metrics

import (
	"encoding/json"
	"net/http"
)

// Progress describes a live session for the /progress endpoint: how far a
// batch or experiment sweep has advanced while it is still simulating.
type Progress struct {
	// Phase names what is currently running (an experiment id, "batch", ...).
	Phase string `json:"phase,omitempty"`
	// Done and Total count settled vs submitted runs of the current phase.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Runs counts simulations completed across the whole session.
	Runs int `json:"runs"`
}

// Handler serves the registry's current values in the Prometheus text
// exposition format.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(reg.Snapshot().Prometheus()))
	})
}

// JSONHandler serves the registry's current values as a JSON snapshot.
func JSONHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		out, err := reg.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(out)
	})
}

// ProgressHandler serves fn's current Progress as JSON.
func ProgressHandler(fn func() Progress) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(fn())
	})
}

// Mux wires the standard observability endpoints — /metrics (Prometheus
// text), /metrics.json, and /progress (when progress is non-nil) — so a
// live batch or experiments session can be watched while it simulates.
func Mux(reg *Registry, progress func() Progress) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.Handle("/metrics.json", JSONHandler(reg))
	if progress != nil {
		mux.Handle("/progress", ProgressHandler(progress))
	}
	return mux
}

// ListenAndServe serves Mux(reg, progress) on addr; it blocks like
// http.ListenAndServe and is normally launched in a goroutine beside the
// simulation.
func ListenAndServe(addr string, reg *Registry, progress func() Progress) error {
	return http.ListenAndServe(addr, Mux(reg, progress))
}
