package metrics

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Progress describes a live session for the /progress endpoint: how far a
// batch or experiment sweep has advanced while it is still simulating.
type Progress struct {
	// Phase names what is currently running (an experiment id, "batch", ...).
	Phase string `json:"phase,omitempty"`
	// Done and Total count settled vs submitted runs of the current phase.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Runs counts simulations completed across the whole session.
	Runs int `json:"runs"`
}

// Handler serves the registry's current values in the Prometheus text
// exposition format.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(reg.Snapshot().Prometheus()))
	})
}

// JSONHandler serves the registry's current values as a JSON snapshot.
func JSONHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		out, err := reg.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(out)
	})
}

// ProgressHandler serves fn's current Progress as JSON.
func ProgressHandler(fn func() Progress) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(fn())
	})
}

// ServeOption adjusts which endpoints Mux and ListenAndServe expose.
type ServeOption func(*serveConfig)

type serveConfig struct{ pprof bool }

// WithPprof additionally mounts the net/http/pprof profiling endpoints
// under /debug/pprof/ (index, cmdline, profile, symbol, trace), so a live
// simulation can be CPU- or heap-profiled over the same listener as its
// metrics. Off by default: the profiles expose process internals, and the
// CPU endpoint costs a sampling signal while active — opt in only on
// listeners that are not publicly reachable.
func WithPprof() ServeOption {
	return func(c *serveConfig) { c.pprof = true }
}

// Mux wires the standard observability endpoints — /metrics (Prometheus
// text), /metrics.json, and /progress (when progress is non-nil) — so a
// live batch or experiments session can be watched while it simulates.
// ServeOptions add more: WithPprof mounts the profiling endpoints.
func Mux(reg *Registry, progress func() Progress, opts ...ServeOption) *http.ServeMux {
	var sc serveConfig
	for _, o := range opts {
		o(&sc)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.Handle("/metrics.json", JSONHandler(reg))
	if progress != nil {
		mux.Handle("/progress", ProgressHandler(progress))
	}
	if sc.pprof {
		// The default-mux registrations from net/http/pprof, re-homed onto
		// this mux so importing the package stays side-effect free here.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// ListenAndServe serves Mux(reg, progress, opts...) on addr; it blocks like
// http.ListenAndServe and is normally launched in a goroutine beside the
// simulation.
func ListenAndServe(addr string, reg *Registry, progress func() Progress, opts ...ServeOption) error {
	return http.ListenAndServe(addr, Mux(reg, progress, opts...))
}
