// Concurrency tests for the observability endpoints: every Mux handler is
// scraped in parallel while the registry it serves is being written, and
// /progress is polled while a live runner.Pool batch is mid-flight. All of
// it runs under `make race`, so a torn read anywhere in the snapshot or
// progress path fails the tier-1 gate.
package metrics_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"hdpat/internal/metrics"
	"hdpat/internal/runner"
	"hdpat/internal/wafer"
)

// scrape GETs path and requires a 200 with a non-empty body.
func scrape(t *testing.T, srv *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if len(body) == 0 {
		t.Fatalf("GET %s: empty body", path)
	}
	return body
}

// TestMuxConcurrentScrapeAndUpdate hammers /metrics and /metrics.json from
// several goroutines while other goroutines keep mutating the registry —
// bumping existing series and registering brand-new ones, which exercises
// the registry's name-map locking against Snapshot.
func TestMuxConcurrentScrapeAndUpdate(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("sim.ops").Add(1)
	var progressCalls atomic.Int64
	srv := httptest.NewServer(metrics.Mux(reg, func() metrics.Progress {
		n := int(progressCalls.Add(1))
		return metrics.Progress{Phase: "race", Done: n, Total: n + 1, Runs: n}
	}))
	defer srv.Close()

	const writers, scrapers, iters = 4, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				reg.Counter("sim.ops").Add(3)
				reg.Gauge("sim.inflight").Set(int64(i))
				reg.Histogram("sim.latency").Observe(uint64(i))
				// New series mid-scrape: the snapshot must never observe a
				// half-registered metric.
				reg.Counter(fmt.Sprintf("writer.%d.%d", w, i)).Inc()
			}
		}(w)
	}
	errs := make(chan error, scrapers*3)
	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				body := scrape(t, srv, "/metrics")
				if !strings.Contains(string(body), "hdpat_sim_ops") {
					errs <- fmt.Errorf("/metrics lost sim.ops")
					return
				}
				var snap metrics.Snapshot
				if err := json.Unmarshal(scrape(t, srv, "/metrics.json"), &snap); err != nil {
					errs <- fmt.Errorf("metrics.json unparseable mid-update: %v", err)
					return
				}
				if snap.Counter("sim.ops") == 0 {
					errs <- fmt.Errorf("snapshot lost an already-written counter")
					return
				}
				var p metrics.Progress
				if err := json.Unmarshal(scrape(t, srv, "/progress"), &p); err != nil {
					errs <- fmt.Errorf("progress unparseable: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// After the dust settles the counter totals every writer's increments.
	if got := reg.Snapshot().Counter("sim.ops"); got != 1+writers*iters*3 {
		t.Errorf("sim.ops = %d, want %d", got, 1+writers*iters*3)
	}
}

// TestMuxProgressDuringBatch serves /progress and /metrics off a live
// runner.Pool while a batch is mid-flight: tasks park on a gate, scrapes
// observe the half-done state, then the gate opens and the batch drains.
// This is the same wiring RunBatch uses (pool.Metrics + a Progress
// callback), so it guards the scrape-while-simulating path end to end.
func TestMuxProgressDuringBatch(t *testing.T) {
	const total = 8
	const parked = 2 // pool workers

	reg := metrics.NewRegistry()
	pool := &runner.Pool{Workers: parked, Metrics: reg}
	var done atomic.Int64
	pool.Progress = func(d, n int, _ runner.Outcome) { done.Store(int64(d)) }

	srv := httptest.NewServer(metrics.Mux(reg, func() metrics.Progress {
		s := pool.Snapshot()
		return metrics.Progress{Phase: "batch", Done: s.Done, Total: s.Total, Runs: int(done.Load())}
	}))
	defer srv.Close()

	gate := make(chan struct{})
	arrived := make(chan struct{}, total)
	tasks := make([]runner.Task, total)
	for i := range tasks {
		tasks[i] = func(ctx context.Context) (wafer.Result, error) {
			arrived <- struct{}{}
			select {
			case <-gate:
			case <-ctx.Done():
				return wafer.Result{}, ctx.Err()
			}
			return wafer.Result{Cycles: 100}, nil
		}
	}
	batchDone := make(chan []runner.Outcome, 1)
	go func() { batchDone <- pool.Run(context.Background(), tasks) }()

	// Both workers are parked on the gate: the batch is genuinely mid-flight.
	<-arrived
	<-arrived

	var mid metrics.Progress
	if err := json.Unmarshal(scrape(t, srv, "/progress"), &mid); err != nil {
		t.Fatalf("mid-flight progress: %v", err)
	}
	if mid.Total != total || mid.Done != 0 {
		t.Errorf("mid-flight progress = %+v, want done 0 of %d", mid, total)
	}
	// Concurrent scrapes of every endpoint while the batch advances.
	var wg sync.WaitGroup
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				scrape(t, srv, "/progress")
				scrape(t, srv, "/metrics")
				scrape(t, srv, "/metrics.json")
			}
		}()
	}
	close(gate)
	outs := <-batchDone
	wg.Wait()

	for _, o := range outs {
		if o.Err != nil {
			t.Fatalf("task %d: %v", o.Index, o.Err)
		}
	}
	var final metrics.Progress
	if err := json.Unmarshal(scrape(t, srv, "/progress"), &final); err != nil {
		t.Fatal(err)
	}
	if final.Done != total || final.Runs != total {
		t.Errorf("final progress = %+v, want %d done", final, total)
	}
	if got := reg.Snapshot().Counter("runner.runs"); got != total {
		t.Errorf("runner.runs = %d, want %d", got, total)
	}
	if !strings.Contains(string(scrape(t, srv, "/metrics")), "hdpat_runner_sim_cycles") {
		t.Error("/metrics missing runner.sim_cycles after batch")
	}
}
