package metrics

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestInstrumentHandlerCountsAndLatency(t *testing.T) {
	reg := NewRegistry()
	h := InstrumentHandler(reg, "GET /widget/{id}", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/widget/missing" {
			http.Error(w, "nope", http.StatusNotFound)
			return
		}
		w.Write([]byte("ok"))
	}))

	for _, path := range []string{"/widget/a", "/widget/b", "/widget/missing"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	}

	snap := reg.Snapshot()
	if n := snap.Counter("http_request.count.GET /widget/{id}.200"); n != 2 {
		t.Errorf("200 count = %d, want 2", n)
	}
	if n := snap.Counter("http_request.count.GET /widget/{id}.404"); n != 1 {
		t.Errorf("404 count = %d, want 1", n)
	}
	if c := snap.Histograms["http_request.latency_us.GET /widget/{id}"].Count; c != 3 {
		t.Errorf("latency observations = %d, want 3", c)
	}
	// The route pattern sanitises into one bounded Prometheus series name.
	if text := snap.Prometheus(); !strings.Contains(text, "hdpat_http_request_count_GET__widget__id__200") {
		t.Errorf("exposition missing sanitised route series:\n%s", text)
	}
}

// TestInstrumentHandlerKeepsFlusher guards the SSE contract: the wrapped
// ResponseWriter must still satisfy http.Flusher, or streaming handlers
// would refuse to serve once instrumented.
func TestInstrumentHandlerKeepsFlusher(t *testing.T) {
	reg := NewRegistry()
	var sawFlusher bool
	h := InstrumentHandler(reg, "GET /stream", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		sawFlusher = ok
		if ok {
			w.Write([]byte("data: x\n\n"))
			fl.Flush()
		}
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/stream", nil))
	if !sawFlusher {
		t.Fatal("instrumented writer lost http.Flusher")
	}
	if !rec.Flushed {
		t.Error("Flush did not reach the underlying writer")
	}
}
