package metrics

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tlb.l2.hits").Add(5)
	reg.Histogram("iommu.latency").Observe(123)
	srv := httptest.NewServer(Mux(reg, func() Progress {
		return Progress{Phase: "fig14", Done: 2, Total: 8, Runs: 13}
	}))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, "hdpat_tlb_l2_hits 5") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "hdpat_iommu_latency_count 1") {
		t.Errorf("/metrics missing histogram:\n%s", body)
	}

	body, ct = get("/metrics.json")
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/metrics.json content type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json parse: %v", err)
	}
	if snap.Counter("tlb.l2.hits") != 5 {
		t.Errorf("/metrics.json counter = %d", snap.Counter("tlb.l2.hits"))
	}

	body, _ = get("/progress")
	var p Progress
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/progress parse: %v", err)
	}
	if p.Phase != "fig14" || p.Done != 2 || p.Total != 8 || p.Runs != 13 {
		t.Errorf("/progress = %+v", p)
	}
}

func TestMuxPprofGated(t *testing.T) {
	// Off by default.
	srv := httptest.NewServer(Mux(NewRegistry(), nil))
	resp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("/debug/pprof/ without WithPprof: status %d, want 404", resp.StatusCode)
	}
	srv.Close()

	// Mounted with the option; the index and a named profile must respond.
	srv = httptest.NewServer(Mux(NewRegistry(), nil, WithPprof()))
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap?debug=1", "/debug/pprof/cmdline"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("GET %s: empty body", path)
		}
	}
}

func TestMuxWithoutProgress(t *testing.T) {
	srv := httptest.NewServer(Mux(NewRegistry(), nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("/progress without fn: status %d, want 404", resp.StatusCode)
	}
}
