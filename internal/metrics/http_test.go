package metrics

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tlb.l2.hits").Add(5)
	reg.Histogram("iommu.latency").Observe(123)
	srv := httptest.NewServer(Mux(reg, func() Progress {
		return Progress{Phase: "fig14", Done: 2, Total: 8, Runs: 13}
	}))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, "hdpat_tlb_l2_hits 5") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "hdpat_iommu_latency_count 1") {
		t.Errorf("/metrics missing histogram:\n%s", body)
	}

	body, ct = get("/metrics.json")
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/metrics.json content type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json parse: %v", err)
	}
	if snap.Counter("tlb.l2.hits") != 5 {
		t.Errorf("/metrics.json counter = %d", snap.Counter("tlb.l2.hits"))
	}

	body, _ = get("/progress")
	var p Progress
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/progress parse: %v", err)
	}
	if p.Phase != "fig14" || p.Done != 2 || p.Total != 8 || p.Runs != 13 {
		t.Errorf("/progress = %+v", p)
	}
}

func TestMuxWithoutProgress(t *testing.T) {
	srv := httptest.NewServer(Mux(NewRegistry(), nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("/progress without fn: status %d, want 404", resp.StatusCode)
	}
}
