package metrics

import (
	"net/http"
	"strconv"
	"time"
)

// InstrumentHandler wraps next so every request records, into reg:
//
//	http_request.count.<route>.<status>   counter
//	http_request.latency_us.<route>       log2 histogram of wall time
//
// route is the registration-time pattern (e.g. "GET /v1/jobs/{id}"), so
// cardinality is bounded by the mux's route table, never by client input.
// The wrapper passes http.Flusher through, so SSE streams stay flushable
// when instrumented; their latency is the full stream lifetime.
func InstrumentHandler(reg *Registry, route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		reg.Counter("http_request.count." + route + "." + strconv.Itoa(sw.code)).Inc()
		reg.Histogram("http_request.latency_us." + route).Observe(uint64(time.Since(start).Microseconds()))
	})
}

// statusWriter captures the response status code for the per-status
// counter while forwarding writes (and flushes) to the real writer.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer when it supports flushing, so
// instrumented SSE handlers keep streaming incrementally.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
