package metrics

import (
	"runtime"
	"sync"
	"time"
)

// RuntimeSampler folds Go runtime telemetry into a Registry: heap and GC
// gauges, a goroutine count, process uptime, and a log2 histogram of GC
// pause times. It is the wall-clock sibling of the simulator's cycle-domain
// series — sampled at scrape time, it costs nothing while idle.
//
// Gauges are overwritten on every Sample; the gc_pause histogram
// accumulates only the pauses that happened since the previous Sample, so
// repeated scrapes never double-count a pause.
type RuntimeSampler struct {
	start time.Time

	mu        sync.Mutex
	lastNumGC uint32
}

// NewRuntimeSampler creates a sampler; uptime is measured from this call.
func NewRuntimeSampler() *RuntimeSampler {
	return &RuntimeSampler{start: time.Now()}
}

// Sample reads the runtime state and writes the go_runtime.* series into
// reg. Safe for concurrent use; typically called once per /metrics scrape.
func (rs *RuntimeSampler) Sample(reg *Registry) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	reg.Gauge("go_runtime.goroutines").Set(int64(runtime.NumGoroutine()))
	reg.Gauge("go_runtime.heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	reg.Gauge("go_runtime.heap_sys_bytes").Set(int64(ms.HeapSys))
	reg.Gauge("go_runtime.heap_objects").Set(int64(ms.HeapObjects))
	reg.Gauge("go_runtime.next_gc_bytes").Set(int64(ms.NextGC))
	reg.Gauge("go_runtime.gc_count").Set(int64(ms.NumGC))
	reg.Gauge("go_runtime.uptime_seconds").Set(int64(time.Since(rs.start).Seconds()))

	rs.mu.Lock()
	defer rs.mu.Unlock()
	if ms.NumGC > rs.lastNumGC {
		h := reg.Histogram("go_runtime.gc_pause_us")
		n := ms.NumGC - rs.lastNumGC
		// PauseNs is a 256-entry circular buffer; older pauses are gone.
		if n > uint32(len(ms.PauseNs)) {
			n = uint32(len(ms.PauseNs))
		}
		for i := ms.NumGC - n; i < ms.NumGC; i++ {
			h.Observe(ms.PauseNs[i%uint32(len(ms.PauseNs))] / 1000)
		}
		rs.lastNumGC = ms.NumGC
	}
}
