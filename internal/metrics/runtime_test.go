package metrics

import (
	"runtime"
	"strings"
	"testing"
)

func TestRuntimeSamplerGauges(t *testing.T) {
	reg := NewRegistry()
	rs := NewRuntimeSampler()
	rs.Sample(reg)
	snap := reg.Snapshot()
	if g := snap.Gauge("go_runtime.goroutines"); g < 1 {
		t.Errorf("goroutines = %d, want >= 1", g)
	}
	if g := snap.Gauge("go_runtime.heap_alloc_bytes"); g <= 0 {
		t.Errorf("heap_alloc_bytes = %d, want > 0", g)
	}
	if g := snap.Gauge("go_runtime.heap_sys_bytes"); g <= 0 {
		t.Errorf("heap_sys_bytes = %d, want > 0", g)
	}
	for _, name := range []string{
		"go_runtime.heap_objects", "go_runtime.next_gc_bytes",
		"go_runtime.gc_count", "go_runtime.uptime_seconds",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %s not sampled", name)
		}
	}
}

func TestRuntimeSamplerGCPausesNoDoubleCount(t *testing.T) {
	reg := NewRegistry()
	rs := NewRuntimeSampler()
	rs.Sample(reg) // establish the GC baseline
	base := reg.Snapshot().Histograms["go_runtime.gc_pause_us"].Count

	runtime.GC()
	runtime.GC()
	rs.Sample(reg)
	after := reg.Snapshot().Histograms["go_runtime.gc_pause_us"].Count
	if after < base+2 {
		t.Errorf("gc_pause_us count = %d after 2 forced GCs (baseline %d)", after, base)
	}

	// A sample with no intervening GC must not re-observe old pauses.
	rs.Sample(reg)
	if again := reg.Snapshot().Histograms["go_runtime.gc_pause_us"].Count; again != after {
		t.Errorf("idle sample changed gc_pause_us count: %d -> %d", after, again)
	}
}

func TestRuntimeSeriesPrometheusNames(t *testing.T) {
	reg := NewRegistry()
	NewRuntimeSampler().Sample(reg)
	text := reg.Snapshot().Prometheus()
	for _, want := range []string{"hdpat_go_runtime_goroutines", "hdpat_go_runtime_heap_alloc_bytes"} {
		if !strings.Contains(text, want+" ") {
			t.Errorf("exposition missing %s:\n%s", want, text)
		}
	}
}
