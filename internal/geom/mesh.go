// Package geom provides the wafer geometry underlying HDPAT: tile
// coordinates on the 2-D mesh, hop distances, the concentric caching layers
// around the central CPU tile, and the quadrant clustering + rotation scheme
// of §IV-D/E (equations 1-2, Fig 11) that maps a virtual page number to the
// unique caching GPM responsible for it in each layer.
package geom

import "fmt"

// Coord is a tile position on the mesh. X grows rightward, Y downward.
type Coord struct {
	X, Y int
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// XY is a convenience constructor for Coord.
func XY(x, y int) Coord { return Coord{X: x, Y: y} }

// Manhattan returns the XY-routing hop count between two tiles.
func (c Coord) Manhattan(o Coord) int {
	return abs(c.X-o.X) + abs(c.Y-o.Y)
}

// Chebyshev returns the ring distance max(|dx|,|dy|) between two tiles;
// concentric layers are defined by Chebyshev distance from the CPU tile.
func (c Coord) Chebyshev(o Coord) int {
	dx, dy := abs(c.X-o.X), abs(c.Y-o.Y)
	if dx > dy {
		return dx
	}
	return dy
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Mesh describes a W x H wafer with one CPU tile; every other tile is a GPM.
type Mesh struct {
	W, H int
	CPU  Coord

	tiles []Coord // all GPM tiles in row-major order (CPU excluded)
}

// Mesh size bounds. MaxDim caps one dimension so W*H can never overflow
// 32-bit index arithmetic (tile IDs, domain maps and the NoC's sparse link
// index all use int32-sized products); MaxTiles caps the topology a mesh
// may allocate. config.Validate enforces the same bounds with a typed
// error before any geometry is built — the panic here is the last line of
// defence for callers constructing meshes directly.
const (
	MaxDim   = 1024
	MaxTiles = 1 << 16
)

// NewMesh creates a mesh with the CPU at the centre tile, matching the paper
// ("we designate the center tile as the CPU"). For even dimensions the centre
// rounds down, keeping the CPU as central as possible.
func NewMesh(w, h int) *Mesh {
	if w < 3 || h < 3 {
		panic("geom: mesh must be at least 3x3")
	}
	if w > MaxDim || h > MaxDim || w*h > MaxTiles {
		panic(fmt.Sprintf("geom: mesh %dx%d exceeds the %d-tile bound", w, h, MaxTiles))
	}
	m := &Mesh{W: w, H: h, CPU: Coord{(w - 1) / 2, (h - 1) / 2}}
	m.tiles = make([]Coord, 0, w*h-1)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := Coord{x, y}
			if c != m.CPU {
				m.tiles = append(m.tiles, c)
			}
		}
	}
	return m
}

// NumTiles returns the total tile count, including the CPU.
func (m *Mesh) NumTiles() int { return m.W * m.H }

// NumGPMs returns the number of GPM tiles (all tiles except the CPU).
func (m *Mesh) NumGPMs() int { return len(m.tiles) }

// GPMs returns all GPM coordinates in row-major order. The returned slice is
// shared; callers must not modify it.
func (m *Mesh) GPMs() []Coord { return m.tiles }

// Contains reports whether c lies on the wafer.
func (m *Mesh) Contains(c Coord) bool {
	return c.X >= 0 && c.X < m.W && c.Y >= 0 && c.Y < m.H
}

// NodeID maps a coordinate to a dense integer id in [0, W*H).
func (m *Mesh) NodeID(c Coord) int { return c.Y*m.W + c.X }

// CoordOf is the inverse of NodeID.
func (m *Mesh) CoordOf(id int) Coord { return Coord{id % m.W, id / m.W} }

// Ring returns the Chebyshev distance of c from the CPU tile.
func (m *Mesh) Ring(c Coord) int { return c.Chebyshev(m.CPU) }

// MaxRing returns the largest ring index present on the wafer.
func (m *Mesh) MaxRing() int {
	max := 0
	for _, c := range m.tiles {
		if r := m.Ring(c); r > max {
			max = r
		}
	}
	return max
}

// RingTiles enumerates the tiles at exactly Chebyshev distance r from the
// CPU, clockwise starting from the top-left corner of the ring. Tiles falling
// off the wafer (clipped rings on non-square meshes) are omitted, preserving
// the clockwise order of the survivors. Ring 0 is the CPU itself and returns
// nil (it is not a caching layer).
func (m *Mesh) RingTiles(r int) []Coord {
	if r <= 0 {
		return nil
	}
	var out []Coord
	cx, cy := m.CPU.X, m.CPU.Y
	add := func(x, y int) {
		c := Coord{x, y}
		if m.Contains(c) {
			out = append(out, c)
		}
	}
	// Top edge: left to right.
	for x := cx - r; x <= cx+r; x++ {
		add(x, cy-r)
	}
	// Right edge: top+1 to bottom-1.
	for y := cy - r + 1; y <= cy+r-1; y++ {
		add(cx+r, y)
	}
	// Bottom edge: right to left.
	for x := cx + r; x >= cx-r; x-- {
		add(x, cy+r)
	}
	// Left edge: bottom-1 to top+1.
	for y := cy + r - 1; y >= cy-r+1; y-- {
		add(cx-r, y)
	}
	return out
}

// XYPath returns the sequence of tiles visited routing from src to dst with
// dimension-ordered (X then Y) routing, excluding src and including dst.
// An empty slice means src == dst.
func (m *Mesh) XYPath(src, dst Coord) []Coord {
	var path []Coord
	c := src
	for c.X != dst.X {
		if dst.X > c.X {
			c.X++
		} else {
			c.X--
		}
		path = append(path, c)
	}
	for c.Y != dst.Y {
		if dst.Y > c.Y {
			c.Y++
		} else {
			c.Y--
		}
		path = append(path, c)
	}
	return path
}
