package geom

import (
	"testing"
	"testing/quick"
)

func layers7x7(c int) *Layers {
	return NewLayers(NewLayout(NewMesh(7, 7)), c, 4)
}

func TestLayersDefault7x7(t *testing.T) {
	ls := layers7x7(2)
	if ls.NumLayers() != 2 {
		t.Fatalf("NumLayers = %d, want 2", ls.NumLayers())
	}
	if n := len(ls.LayerTiles(0)); n != 8 {
		t.Errorf("layer 0 has %d tiles, want 8", n)
	}
	if n := len(ls.LayerTiles(1)); n != 16 {
		t.Errorf("layer 1 has %d tiles, want 16", n)
	}
}

func TestLayerOf(t *testing.T) {
	ls := layers7x7(2)
	m := ls.mesh
	cases := []struct {
		c    Coord
		want int
	}{
		{m.CPU, -1},
		{Coord{3, 2}, 0},  // ring 1
		{Coord{1, 2}, 1},  // ring 2
		{Coord{0, 0}, -1}, // ring 3, peripheral
	}
	for _, c := range cases {
		if got := ls.LayerOf(c.c); got != c.want {
			t.Errorf("LayerOf(%v) = %d, want %d", c.c, got, c.want)
		}
	}
}

// Each VPN must map to exactly one home per layer ("each PTE appears exactly
// once per concentric layer", §IV-D), and that home must be a tile of the
// layer's ring.
func TestHomeUniqueAndInLayer(t *testing.T) {
	ls := layers7x7(2)
	for vpn := uint64(0); vpn < 10000; vpn++ {
		for l := 0; l < 2; l++ {
			h := ls.Home(l, vpn)
			if ls.LayerOf(h) != l {
				t.Fatalf("Home(%d,%d)=%v is not in layer %d", l, vpn, h, l)
			}
			// Determinism: same answer twice.
			if ls.Home(l, vpn) != h {
				t.Fatalf("Home not deterministic for vpn %d", vpn)
			}
		}
	}
}

// Consecutive VPNs must spread across clusters (Eq. 1 is VPN mod Nc), so four
// consecutive VPNs land in four distinct quadrant clusters.
func TestClusterSpreading(t *testing.T) {
	ls := layers7x7(2)
	for base := uint64(0); base < 1000; base += 4 {
		seen := map[Coord]bool{}
		for i := uint64(0); i < 4; i++ {
			seen[ls.Home(1, base+i)] = true
		}
		if len(seen) != 4 {
			t.Fatalf("VPNs %d..%d map to %d distinct layer-1 homes, want 4", base, base+3, len(seen))
		}
	}
}

// All tiles of a layer should receive a near-uniform share of VPNs.
func TestHomeLoadBalance(t *testing.T) {
	ls := layers7x7(2)
	for l := 0; l < 2; l++ {
		counts := map[Coord]int{}
		n := 16 * 4096
		for vpn := 0; vpn < n; vpn++ {
			counts[ls.Home(l, uint64(vpn))]++
		}
		tiles := ls.LayerTiles(l)
		if len(counts) != len(tiles) {
			t.Fatalf("layer %d uses %d of %d tiles", l, len(counts), len(tiles))
		}
		want := n / len(tiles)
		for c, got := range counts {
			if got < want*9/10 || got > want*11/10 {
				t.Errorf("layer %d tile %v holds %d VPNs, want ~%d", l, c, got, want)
			}
		}
	}
}

// Rotation property (§IV-E): with C=2 every GPM on the wafer must have at
// least one per-layer home within a small hop count for every VPN. Without
// rotation, requesters in the quadrant opposite a VPN's cluster would see
// distances up to nearly the wafer diameter for both layers simultaneously.
func TestRotationNearbyHome(t *testing.T) {
	ls := layers7x7(2)
	m := ls.mesh
	worst := 0
	for _, g := range m.GPMs() {
		for vpn := uint64(0); vpn < 512; vpn++ {
			d := ls.NearestHop(g, vpn)
			if d > worst {
				worst = d
			}
		}
	}
	// On a 7x7, CPU-centred rings 1-2: a corner GPM is 6 hops from the CPU;
	// with rotation the nearest home stays within 6 hops for every VPN.
	if worst > 6 {
		t.Errorf("worst-case nearest home distance %d, want <= 6", worst)
	}
}

// Rotation must make adjacent layers start half a ring apart: the layer-0 and
// layer-1 homes of a VPN should usually not sit in the same quadrant.
func TestRotationOffsetsLayers(t *testing.T) {
	ls := layers7x7(2)
	cpu := ls.mesh.CPU
	same := 0
	n := 4096
	for vpn := 0; vpn < n; vpn++ {
		h0 := ls.Home(0, uint64(vpn))
		h1 := ls.Home(1, uint64(vpn))
		q0 := quadrant(h0, cpu)
		q1 := quadrant(h1, cpu)
		if q0 == q1 {
			same++
		}
	}
	if same > n/2 {
		t.Errorf("homes share a quadrant for %d/%d VPNs; rotation ineffective", same, n)
	}
}

func quadrant(c, cpu Coord) int {
	q := 0
	if c.X > cpu.X {
		q |= 1
	}
	if c.Y > cpu.Y {
		q |= 2
	}
	return q
}

func TestLayersClampToWafer(t *testing.T) {
	ls := NewLayers(NewLayout(NewMesh(3, 3)), 5, 4)
	if ls.NumLayers() != 1 {
		t.Fatalf("3x3 wafer supports %d layers, want 1", ls.NumLayers())
	}
}

func TestLayers7x12(t *testing.T) {
	ls := NewLayers(NewLayout(NewMesh(7, 12)), 2, 4)
	for vpn := uint64(0); vpn < 5000; vpn++ {
		for l := 0; l < 2; l++ {
			h := ls.Home(l, vpn)
			if ls.LayerOf(h) != l {
				t.Fatalf("7x12 Home(%d,%d)=%v not in layer", l, vpn, h)
			}
		}
	}
}

// Property: Home is total and stable for any vpn on several wafer shapes.
func TestHomeTotalProperty(t *testing.T) {
	shapes := []*Layers{
		layers7x7(2), layers7x7(3),
		NewLayers(NewLayout(NewMesh(7, 12)), 2, 4),
		NewLayers(NewLayout(NewMesh(5, 5)), 2, 4),
	}
	f := func(vpn uint64) bool {
		for _, ls := range shapes {
			for l := 0; l < ls.NumLayers(); l++ {
				h := ls.Home(l, vpn)
				if !ls.mesh.Contains(h) || ls.LayerOf(h) != l {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
