package geom

import (
	"testing"
	"testing/quick"
)

func TestNewMeshCenter(t *testing.T) {
	cases := []struct {
		w, h   int
		cpu    Coord
		nGPM   int
		maxRng int
	}{
		{7, 7, Coord{3, 3}, 48, 3},
		{7, 12, Coord{3, 5}, 83, 6},
		{3, 3, Coord{1, 1}, 8, 1},
		{5, 5, Coord{2, 2}, 24, 2},
	}
	for _, c := range cases {
		m := NewMesh(c.w, c.h)
		if m.CPU != c.cpu {
			t.Errorf("%dx%d CPU = %v, want %v", c.w, c.h, m.CPU, c.cpu)
		}
		if m.NumGPMs() != c.nGPM {
			t.Errorf("%dx%d GPMs = %d, want %d", c.w, c.h, m.NumGPMs(), c.nGPM)
		}
		if m.MaxRing() != c.maxRng {
			t.Errorf("%dx%d MaxRing = %d, want %d", c.w, c.h, m.MaxRing(), c.maxRng)
		}
	}
}

func TestNodeIDRoundTrip(t *testing.T) {
	m := NewMesh(7, 12)
	for y := 0; y < 12; y++ {
		for x := 0; x < 7; x++ {
			c := Coord{x, y}
			if got := m.CoordOf(m.NodeID(c)); got != c {
				t.Fatalf("roundtrip %v -> %v", c, got)
			}
		}
	}
}

func TestRingTilesComplete(t *testing.T) {
	m := NewMesh(7, 7)
	// Full rings on a 7x7 have 8r tiles.
	for r := 1; r <= 3; r++ {
		tiles := m.RingTiles(r)
		if len(tiles) != 8*r {
			t.Errorf("ring %d has %d tiles, want %d", r, len(tiles), 8*r)
		}
		seen := map[Coord]bool{}
		for _, c := range tiles {
			if m.Ring(c) != r {
				t.Errorf("tile %v in ring %d has Chebyshev %d", c, r, m.Ring(c))
			}
			if seen[c] {
				t.Errorf("ring %d repeats tile %v", r, c)
			}
			seen[c] = true
		}
	}
	if m.RingTiles(0) != nil {
		t.Error("ring 0 should be nil")
	}
}

func TestRingTilesClipped(t *testing.T) {
	m := NewMesh(7, 12) // CPU at (3,5); ring 4 clips on X but not Y
	tiles := m.RingTiles(4)
	for _, c := range tiles {
		if !m.Contains(c) {
			t.Errorf("clipped ring contains off-wafer tile %v", c)
		}
		if m.Ring(c) != 4 {
			t.Errorf("tile %v not at ring 4", c)
		}
	}
	// Every on-wafer tile at Chebyshev 4 must be present.
	want := 0
	for y := 0; y < 12; y++ {
		for x := 0; x < 7; x++ {
			if (Coord{x, y}).Chebyshev(m.CPU) == 4 {
				want++
			}
		}
	}
	if len(tiles) != want {
		t.Errorf("clipped ring 4 has %d tiles, want %d", len(tiles), want)
	}
}

func TestRingsPartitionWafer(t *testing.T) {
	for _, dim := range [][2]int{{7, 7}, {7, 12}, {5, 9}} {
		m := NewMesh(dim[0], dim[1])
		count := 1 // CPU
		for r := 1; r <= m.MaxRing(); r++ {
			count += len(m.RingTiles(r))
		}
		if count != m.NumTiles() {
			t.Errorf("%dx%d rings cover %d tiles, want %d", dim[0], dim[1], count, m.NumTiles())
		}
	}
}

func TestXYPath(t *testing.T) {
	m := NewMesh(7, 7)
	p := m.XYPath(Coord{0, 0}, Coord{3, 2})
	if len(p) != 5 {
		t.Fatalf("path length %d, want 5 (Manhattan)", len(p))
	}
	if p[len(p)-1] != (Coord{3, 2}) {
		t.Fatalf("path ends at %v", p[len(p)-1])
	}
	// X moves first.
	if p[0] != (Coord{1, 0}) {
		t.Fatalf("first hop %v, want (1,0)", p[0])
	}
	if got := m.XYPath(Coord{2, 2}, Coord{2, 2}); len(got) != 0 {
		t.Fatalf("self path length %d", len(got))
	}
}

// Property: XY path length always equals Manhattan distance and every hop
// moves exactly one tile.
func TestXYPathProperty(t *testing.T) {
	m := NewMesh(7, 12)
	f := func(a, b uint16) bool {
		src := m.CoordOf(int(a) % m.NumTiles())
		dst := m.CoordOf(int(b) % m.NumTiles())
		p := m.XYPath(src, dst)
		if len(p) != src.Manhattan(dst) {
			return false
		}
		prev := src
		for _, c := range p {
			if prev.Manhattan(c) != 1 || !m.Contains(c) {
				return false
			}
			prev = c
		}
		return len(p) == 0 || p[len(p)-1] == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistances(t *testing.T) {
	a, b := Coord{1, 2}, Coord{4, 0}
	if a.Manhattan(b) != 5 {
		t.Errorf("Manhattan = %d, want 5", a.Manhattan(b))
	}
	if a.Chebyshev(b) != 3 {
		t.Errorf("Chebyshev = %d, want 3", a.Chebyshev(b))
	}
}

// The largest supported mesh (256x256 = MaxTiles) must build, index and
// invert tile IDs correctly at every corner — this is the boundary where
// 32-bit products in NodeID/CoordOf would first misbehave if the bounds
// were wrong — and anything past the cap must panic rather than silently
// wrap.
func TestMeshMaxBounds(t *testing.T) {
	m := NewMesh(256, 256)
	if m.NumTiles() != MaxTiles {
		t.Fatalf("NumTiles = %d, want %d", m.NumTiles(), MaxTiles)
	}
	if m.NumGPMs() != MaxTiles-1 {
		t.Fatalf("NumGPMs = %d, want %d", m.NumGPMs(), MaxTiles-1)
	}
	corners := []Coord{{0, 0}, {255, 0}, {0, 255}, {255, 255}, m.CPU}
	for _, c := range corners {
		id := m.NodeID(c)
		if id < 0 || id >= MaxTiles {
			t.Errorf("NodeID(%v) = %d out of range", c, id)
		}
		if got := m.CoordOf(id); got != c {
			t.Errorf("CoordOf(NodeID(%v)) = %v", c, got)
		}
	}
	if id := m.NodeID(Coord{255, 255}); id != MaxTiles-1 {
		t.Errorf("last tile id = %d, want %d", id, MaxTiles-1)
	}

	for _, dims := range [][2]int{{257, 256}, {MaxDim + 1, 3}, {3, MaxDim + 1}, {1 << 16, 1 << 16}} {
		func(w, h int) {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMesh(%d, %d) did not panic", w, h)
				}
			}()
			NewMesh(w, h)
		}(dims[0], dims[1])
	}
}

// Frame-space exhaustion on the vm side is exercised in internal/vm; here we
// pin the geometric invariant it depends on: every tile id fits MaxTiles.
func TestCoordRoundTripAtScale(t *testing.T) {
	m := NewMesh(30, 30)
	for id := 0; id < m.NumTiles(); id++ {
		if got := m.NodeID(m.CoordOf(id)); got != id {
			t.Fatalf("roundtrip %d -> %d", id, got)
		}
	}
}
