package geom

// Layers implements HDPAT's concentric caching organisation (§IV-C to §IV-E):
// the C rings closest to the CPU act as translation caching layers; within a
// layer, the wafer is partitioned into quadrant clusters, a VPN picks its
// cluster with VPN mod Nc (Eq. 1) and the GPM within the cluster with
// floor(VPN/Nc) mod Ng (Eq. 2); successive layers rotate their enumeration
// start by 180 degrees so every requester has a nearby caching GPM (Fig 11b).
type Layers struct {
	mesh     *Layout
	C        int       // number of caching layers
	clusters int       // Nc, quadrant count (4 per the paper)
	rings    [][]Coord // rings[l] = rotated tile enumeration of layer l (ring l+1)
}

// Layout couples a Mesh with the concentric-layer machinery. It is the type
// the rest of the system uses to reason about wafer geometry.
type Layout struct {
	*Mesh
}

// NewLayout wraps a mesh.
func NewLayout(m *Mesh) *Layout { return &Layout{Mesh: m} }

// NewLayers builds the concentric layer structure with c caching layers and
// nc clusters per layer. The paper's default is c=2 ("one step away from the
// border" on a 7x7 wafer) and nc=4 (quadrants). Layer index 0 is the
// innermost ring (ring 1); layer c-1 is the outermost caching ring (ring c).
func NewLayers(l *Layout, c, nc int) *Layers {
	if c < 0 {
		panic("geom: negative layer count")
	}
	if nc < 1 {
		nc = 1
	}
	maxR := l.MaxRing()
	if c > maxR {
		c = maxR
	}
	ls := &Layers{mesh: l, C: c, clusters: nc}
	for layer := 0; layer < c; layer++ {
		tiles := l.RingTiles(layer + 1)
		// Rotation (§IV-E): layer index counting begins 180 degrees from the
		// original starting point on every other layer, so cached PTEs for
		// the same VPN sit on opposite sides of the wafer in adjacent layers.
		rot := (layer * len(tiles)) / 2 % maxInt(len(tiles), 1)
		rotated := make([]Coord, len(tiles))
		for i := range tiles {
			rotated[i] = tiles[(i+rot)%len(tiles)]
		}
		ls.rings = append(ls.rings, rotated)
	}
	return ls
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NumLayers returns the number of caching layers (C).
func (ls *Layers) NumLayers() int { return ls.C }

// LayerOf returns the caching-layer index of tile c, or -1 if c is not a
// caching GPM (it is the CPU or lies outside the C rings).
func (ls *Layers) LayerOf(c Coord) int {
	r := ls.mesh.Ring(c)
	if r >= 1 && r <= ls.C {
		return r - 1
	}
	return -1
}

// LayerTiles returns the (rotated) tile enumeration of layer l.
func (ls *Layers) LayerTiles(l int) []Coord { return ls.rings[l] }

// Home returns the unique GPM in layer l responsible for caching vpn,
// applying Eq. 1 and Eq. 2 over the rotated enumeration. With fewer tiles
// than clusters (clipped rings) the arithmetic degrades gracefully to a
// simple modulo over the whole ring.
func (ls *Layers) Home(l int, vpn uint64) Coord {
	ring := ls.rings[l]
	n := len(ring)
	nc := ls.clusters
	if n < nc {
		return ring[vpn%uint64(n)]
	}
	arc := n / nc                                // Ng: GPMs per cluster in this layer
	cluster := int(vpn % uint64(nc))             // Eq. 1
	local := int(vpn / uint64(nc) % uint64(arc)) // Eq. 2
	idx := cluster*arc + local
	// Tiles left over by integer division (n not divisible by nc) extend the
	// last cluster's arc; they are reachable when local wraps there.
	if idx >= n {
		idx %= n
	}
	return ring[idx]
}

// Homes returns vpn's caching GPM in every layer, innermost first.
func (ls *Layers) Homes(vpn uint64) []Coord {
	out := make([]Coord, ls.C)
	for l := 0; l < ls.C; l++ {
		out[l] = ls.Home(l, vpn)
	}
	return out
}

// NearestHop returns, for a requester at c, the minimum Manhattan distance to
// any of vpn's per-layer homes; used in tests to validate the rotation
// property ("there is always a nearby chiplet").
func (ls *Layers) NearestHop(c Coord, vpn uint64) int {
	best := -1
	for l := 0; l < ls.C; l++ {
		d := c.Manhattan(ls.Home(l, vpn))
		if best < 0 || d < best {
			best = d
		}
	}
	return best
}
