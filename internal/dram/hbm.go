// Package dram models each GPM's HBM stack (Table I: 8 GB, 1.23 TB/s):
// a fixed access latency plus a bandwidth-limited service line. At 1 GHz,
// 1.23 TB/s is 1230 bytes per cycle; a 64 B cacheline therefore occupies the
// stack for a fraction of a cycle, so bandwidth only matters under heavy
// concurrent load — exactly when it should.
package dram

import "hdpat/internal/sim"

// Config describes one HBM stack.
type Config struct {
	// AccessLatency is the fixed CAS-equivalent latency in cycles.
	AccessLatency sim.VTime
	// BytesPerCycle is the sustained bandwidth (bytes transferred per cycle).
	BytesPerCycle float64
}

// DefaultConfig matches Table I at 1 GHz.
func DefaultConfig() Config {
	return Config{AccessLatency: 100, BytesPerCycle: 1230}
}

// HBM is one memory stack.
type HBM struct {
	cfg  Config
	line sim.Line
	// Partial-cycle bandwidth debt, carried between requests so small
	// transfers still consume bandwidth in aggregate.
	debt float64

	// Stats
	Reads      uint64
	BytesMoved uint64
}

// New creates a stack.
func New(cfg Config) *HBM {
	return &HBM{cfg: cfg}
}

// Access books a transfer of size bytes arriving at now and returns the
// completion time: queueing for bandwidth, then the fixed access latency.
func (h *HBM) Access(now sim.VTime, size int) (done sim.VTime) {
	h.Reads++
	h.BytesMoved += uint64(size)
	h.debt += float64(size) / h.cfg.BytesPerCycle
	hold := sim.VTime(0)
	if h.debt >= 1 {
		whole := sim.VTime(h.debt)
		h.debt -= float64(whole)
		hold = whole
	}
	_, end := h.line.Occupy(now, hold)
	return end + h.cfg.AccessLatency
}

// Utilization returns busy cycles so far (for stats).
func (h *HBM) Utilization() sim.VTime { return h.line.BusyCycles }
