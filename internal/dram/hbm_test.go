package dram

import (
	"testing"

	"hdpat/internal/sim"
)

func TestAccessLatency(t *testing.T) {
	h := New(Config{AccessLatency: 100, BytesPerCycle: 1230})
	done := h.Access(0, 64)
	// 64 B < 1230 B/cycle: no whole-cycle occupancy yet, just latency.
	if done != 100 {
		t.Errorf("done = %d, want 100", done)
	}
}

func TestBandwidthAccumulates(t *testing.T) {
	h := New(Config{AccessLatency: 10, BytesPerCycle: 64})
	// Each 64 B access occupies exactly one cycle of the line.
	d1 := h.Access(0, 64)
	d2 := h.Access(0, 64)
	d3 := h.Access(0, 64)
	if d1 != 11 || d2 != 12 || d3 != 13 {
		t.Errorf("completions = %d,%d,%d; want 11,12,13", d1, d2, d3)
	}
}

func TestSmallTransfersChargeInAggregate(t *testing.T) {
	h := New(Config{AccessLatency: 0, BytesPerCycle: 128})
	// 4 x 64 B = 2 cycles of occupancy in total.
	var last sim.VTime
	for i := 0; i < 4; i++ {
		last = h.Access(0, 64)
	}
	if last != 2 {
		t.Errorf("final completion = %d, want 2", last)
	}
	if h.BytesMoved != 256 || h.Reads != 4 {
		t.Errorf("stats: bytes=%d reads=%d", h.BytesMoved, h.Reads)
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if c.AccessLatency != 100 || c.BytesPerCycle != 1230 {
		t.Errorf("unexpected default %+v", c)
	}
}
