package experiments

import (
	"hdpat/internal/config"
	"hdpat/internal/wafer"
	"hdpat/internal/xlat"
)

// Fig14 compares HDPAT and the state-of-the-art comparators against the
// baseline across benchmarks.
func Fig14(s *Session) (Table, error) {
	schemesList := []string{"transfw", "valkyrie", "barre", "hdpat"}
	t := Table{ID: "fig14", Title: "Normalized performance vs baseline",
		Header: append([]string{"Benchmark"}, schemesList...)}
	if err := s.warmPairs(schemesList, s.benchmarks()); err != nil {
		return t, err
	}
	sums := map[string][]float64{}
	for _, bench := range s.benchmarks() {
		row := []any{bench}
		for _, scheme := range schemesList {
			base, res, err := s.pair(scheme, bench)
			if err != nil {
				return t, err
			}
			sp := res.Speedup(base)
			sums[scheme] = append(sums[scheme], sp)
			row = append(row, sp)
		}
		t.Addf(row...)
	}
	meanRow := []any{"MEAN"}
	gmRow := []any{"GEOMEAN"}
	for _, scheme := range schemesList {
		meanRow = append(meanRow, mean(sums[scheme]))
		gmRow = append(gmRow, geomean(sums[scheme]))
	}
	t.Addf(meanRow...)
	t.Addf(gmRow...)
	t.Note("paper: HDPAT averages 1.57x; Trans-FW/Valkyrie/Barre trail (HDPAT is 1.35x over the best of them)")
	return t, nil
}

// Fig15 walks the ablation ladder: route-based, concentric, distributed,
// cluster+rotation, +redirection, +prefetch, full HDPAT.
func Fig15(s *Session) (Table, error) {
	ladder := []string{"route", "concentric", "distributed", "cluster", "redirect", "prefetch", "hdpat"}
	t := Table{ID: "fig15", Title: "Ablation of HDPAT techniques (speedup vs baseline)",
		Header: append([]string{"Benchmark"}, ladder...)}
	if err := s.warmPairs(ladder, s.benchmarks()); err != nil {
		return t, err
	}
	sums := map[string][]float64{}
	for _, bench := range s.benchmarks() {
		row := []any{bench}
		for _, scheme := range ladder {
			base, res, err := s.pair(scheme, bench)
			if err != nil {
				return t, err
			}
			sp := res.Speedup(base)
			sums[scheme] = append(sums[scheme], sp)
			row = append(row, sp)
		}
		t.Addf(row...)
	}
	meanRow := []any{"MEAN"}
	for _, scheme := range ladder {
		meanRow = append(meanRow, mean(sums[scheme]))
	}
	t.Addf(meanRow...)
	t.Note("paper means: distributed 1.08x, cluster 1.13x, redirect 1.18x, prefetch 1.17x, all combined 1.57x;")
	t.Note("route-based and concentric show no noticeable improvement")
	return t, nil
}

// Fig16 breaks down how HDPAT handles remote translations: peer caching,
// redirection, proactive delivery, or an IOMMU walk.
func Fig16(s *Session) (Table, error) {
	t := Table{ID: "fig16", Title: "Breakdown of translation handling under HDPAT (%)",
		Header: []string{"Benchmark", "Peer", "Redirect", "Proactive", "IOMMU", "Offloaded"}}
	if err := s.warmPairs([]string{"hdpat"}, s.benchmarks()); err != nil {
		return t, err
	}
	var offloads []float64
	for _, bench := range s.benchmarks() {
		_, res, err := s.pair("hdpat", bench)
		if err != nil {
			return t, err
		}
		off := offloadPct(res)
		offloads = append(offloads, off)
		t.Addf(bench,
			sourcePct(res, xlat.SourcePeer),
			sourcePct(res, xlat.SourceRedirect),
			sourcePct(res, xlat.SourceProactive),
			sourcePct(res, xlat.SourceIOMMU),
			off)
	}
	t.Addf("MEAN", "", "", "", "", mean(offloads))
	t.Note("paper: 42.1%% of translations offloaded from the IOMMU on average")
	return t, nil
}

// Fig17 reports remote translation round-trip time under HDPAT normalized
// to baseline, plus the NoC traffic overhead.
func Fig17(s *Session) (Table, error) {
	t := Table{ID: "fig17", Title: "Remote translation round-trip time (normalized) and NoC traffic",
		Header: []string{"Benchmark", "Baseline cyc", "HDPAT cyc", "Normalized", "Traffic overhead %"}}
	if err := s.warmPairs([]string{"hdpat"}, s.benchmarks()); err != nil {
		return t, err
	}
	var norm []float64
	var traffic []float64
	for _, bench := range s.benchmarks() {
		base, res, err := s.pair("hdpat", bench)
		if err != nil {
			return t, err
		}
		bl, hl := base.AvgRemoteLatency(), res.AvgRemoteLatency()
		n := 0.0
		if bl > 0 {
			n = hl / bl
			norm = append(norm, n)
		}
		tr := 0.0
		if base.NoC.ByteHops > 0 {
			tr = 100 * (float64(res.NoC.ByteHops) - float64(base.NoC.ByteHops)) / float64(base.NoC.ByteHops)
			traffic = append(traffic, tr)
		}
		t.Addf(bench, bl, hl, n, tr)
	}
	t.Addf("MEAN", "", "", mean(norm), mean(traffic))
	t.Note("paper: 41%% average round-trip reduction; +0.82%% NoC traffic")
	return t, nil
}

// Fig18 sweeps proactive delivery granularity (1, 4, 8 PTEs per walk).
func Fig18(s *Session) (Table, error) {
	degrees := []int{1, 4, 8}
	t := Table{ID: "fig18", Title: "Proactive delivery granularity (speedup vs baseline)",
		Header: []string{"Benchmark", "1 PTE", "4 PTEs", "8 PTEs"}}
	var jobs []simJob
	for _, bench := range s.benchmarks() {
		baseCfg, _ := wafer.ConfigFor("baseline", config.Default())
		jobs = append(jobs, simJob{cfg: baseCfg, scheme: "baseline", bench: bench})
		for _, d := range degrees {
			cfg, _ := wafer.ConfigFor("hdpat", config.Default())
			cfg.IOMMU.PrefetchDegree = d
			jobs = append(jobs, simJob{cfg: cfg, scheme: "hdpat", bench: bench})
		}
	}
	if err := s.warm(jobs); err != nil {
		return t, err
	}
	sums := map[int][]float64{}
	for _, bench := range s.benchmarks() {
		row := []any{bench}
		baseCfg, _ := wafer.ConfigFor("baseline", config.Default())
		base, err := s.run(baseCfg, "baseline", bench, wafer.Options{})
		if err != nil {
			return t, err
		}
		for _, d := range degrees {
			cfg, _ := wafer.ConfigFor("hdpat", config.Default())
			cfg.IOMMU.PrefetchDegree = d
			res, err := s.run(cfg, "hdpat", bench, wafer.Options{})
			if err != nil {
				return t, err
			}
			sp := res.Speedup(base)
			sums[d] = append(sums[d], sp)
			row = append(row, sp)
		}
		t.Addf(row...)
	}
	t.Addf("MEAN", mean(sums[1]), mean(sums[4]), mean(sums[8]))
	t.Note("paper means: 1.40x / 1.57x / 1.59x — saturating at 4-PTE delivery")
	return t, nil
}

// Fig19 compares the redirection table against an area-equivalent IOMMU TLB.
func Fig19(s *Session) (Table, error) {
	t := Table{ID: "fig19", Title: "Redirection table vs area-equivalent IOMMU TLB (speedup vs baseline)",
		Header: []string{"Benchmark", "RT (1024 ent)", "TLB (512 ent)", "RT/TLB"}}
	if err := s.warmPairs([]string{"hdpat", "iommutlb"}, s.benchmarks()); err != nil {
		return t, err
	}
	var ratios []float64
	for _, bench := range s.benchmarks() {
		base, rt, err := s.pair("hdpat", bench)
		if err != nil {
			return t, err
		}
		_, tlbRes, err := s.pair("iommutlb", bench)
		if err != nil {
			return t, err
		}
		rts, ts := rt.Speedup(base), tlbRes.Speedup(base)
		ratio := 0.0
		if ts > 0 {
			ratio = rts / ts
			ratios = append(ratios, ratio)
		}
		t.Addf(bench, rts, ts, ratio)
	}
	t.Addf("MEAN", "", "", mean(ratios))
	t.Note("paper: redirection table delivers 1.27x over the TLB variant")
	return t, nil
}
