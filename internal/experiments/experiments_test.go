package experiments

import (
	"strings"
	"testing"
)

// tinySession keeps experiment tests fast: one benchmark, small budget.
func tinySession() *Session {
	return NewSession(Params{Quick: true, OpsBudget: 24, Seed: 7, Benchmarks: []string{"PR"}})
}

func TestTableRendering(t *testing.T) {
	tbl := Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	tbl.Addf("row", 1.5)
	tbl.Note("hello %d", 7)
	s := tbl.String()
	for _, want := range []string{"demo", "bb", "1.500", "hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestByIDAndRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 25 {
		t.Fatalf("registry has %d experiments, want 25", len(ids))
	}
	defaults := 0
	for _, id := range ids {
		if RunByDefault(id) {
			defaults++
		}
	}
	if defaults != 20 {
		t.Fatalf("default set has %d experiments, want 20 (extensions opt-in)", defaults)
	}
	if RunByDefault("ext-probe") {
		t.Error("extension study in the default set")
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
		e, err := ByID(id)
		if err != nil || e.ID != id || e.Run == nil || e.Title == "" {
			t.Fatalf("ByID(%s) broken: %+v, %v", id, e, err)
		}
	}
	for _, must := range []string{"tab1", "tab2", "fig14", "fig15", "fig22", "area"} {
		if !seen[must] {
			t.Errorf("missing experiment %s", must)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestStaticTables(t *testing.T) {
	s := tinySession()
	t1, err := Table1(s)
	if err != nil || len(t1.Rows) < 10 {
		t.Fatalf("tab1: %v rows=%d", err, len(t1.Rows))
	}
	t2, err := Table2(s)
	if err != nil || len(t2.Rows) != 14 {
		t.Fatalf("tab2: %v rows=%d", err, len(t2.Rows))
	}
	a, err := Area(s)
	if err != nil || len(a.Rows) != 2 {
		t.Fatalf("area: %v rows=%d", err, len(a.Rows))
	}
}

func TestSessionCachesRuns(t *testing.T) {
	s := tinySession()
	if _, err := Fig16(s); err != nil {
		t.Fatal(err)
	}
	runs := s.Runs
	// Fig17 needs exactly the same baseline+hdpat runs.
	if _, err := Fig17(s); err != nil {
		t.Fatal(err)
	}
	if s.Runs != runs {
		t.Errorf("fig17 re-ran %d simulations despite cache", s.Runs-runs)
	}
}

func TestPerformanceFigureShapes(t *testing.T) {
	s := tinySession()
	f14, err := Fig14(s)
	if err != nil {
		t.Fatal(err)
	}
	// One row per benchmark plus MEAN and GEOMEAN.
	if len(f14.Rows) != 3 {
		t.Fatalf("fig14 rows = %d", len(f14.Rows))
	}
	f16, err := Fig16(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(f16.Rows) != 2 {
		t.Fatalf("fig16 rows = %d", len(f16.Rows))
	}
	f18, err := Fig18(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(f18.Header) != 4 {
		t.Fatalf("fig18 header = %v", f18.Header)
	}
}

func TestCharacterisationFigures(t *testing.T) {
	s := tinySession()
	for _, fn := range []func(*Session) (Table, error){Fig3, Fig6, Fig8} {
		tbl, err := fn(s)
		if err != nil {
			t.Fatalf("%s: %v", tbl.ID, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s produced no rows", tbl.ID)
		}
	}
}

func TestHelpers(t *testing.T) {
	if mean([]float64{2, 4}) != 3 {
		t.Error("mean")
	}
	if geomean([]float64{1, 4}) != 2 {
		t.Error("geomean")
	}
	if geomean(nil) != 0 || mean(nil) != 0 {
		t.Error("empty inputs")
	}
	if fmtCycles(1500) != "1.5k" || fmtCycles(2_500_000) != "2.50M" || fmtCycles(12) != "12" {
		t.Errorf("fmtCycles: %s %s %s", fmtCycles(1500), fmtCycles(2_500_000), fmtCycles(12))
	}
	if got := sortedKeys(map[string]int{"b": 1, "a": 2}); got[0] != "a" {
		t.Errorf("sortedKeys = %v", got)
	}
}

func TestTableExports(t *testing.T) {
	tbl := Table{ID: "x", Title: "demo", Header: []string{"a", "b"}}
	tbl.Addf("r1", 2.0)
	j, err := tbl.MarshalJSON()
	if err != nil || !strings.Contains(string(j), `"rows":[["r1","2.000"]]`) {
		t.Errorf("json: %s %v", j, err)
	}
	c := tbl.CSV()
	if !strings.Contains(c, "a,b\nr1,2.000") {
		t.Errorf("csv: %q", c)
	}
}

// Every registered experiment must run end to end on a tiny session and
// produce a well-formed table: the id matching its registration, a header,
// at least one row, and rows no wider than the header.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness sweep skipped in -short mode")
	}
	s := NewSession(Params{Quick: true, OpsBudget: 16, Seed: 5, Benchmarks: []string{"PR"}})
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(s)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tbl.ID != e.ID {
				t.Errorf("table id %q != experiment id %q", tbl.ID, e.ID)
			}
			if len(tbl.Header) == 0 || len(tbl.Rows) == 0 {
				t.Fatalf("%s produced empty table", e.ID)
			}
			for i, r := range tbl.Rows {
				if len(r) > len(tbl.Header) {
					t.Errorf("%s row %d wider (%d) than header (%d)", e.ID, i, len(r), len(tbl.Header))
				}
			}
		})
	}
}
