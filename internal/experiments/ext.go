package experiments

import (
	"fmt"

	"hdpat/internal/config"
	"hdpat/internal/migrate"
	"hdpat/internal/vm"
	"hdpat/internal/wafer"
	"hdpat/internal/workload"
)

// Extension experiments: studies beyond the paper's figures, covering the
// design choices DESIGN.md documents as interpretation points, plus the
// owner-forwarding what-if the paper's related-work discussion gestures at.

// ExtProbePolicy compares HDPAT's concurrent per-layer probes against
// strict inward sequential forwarding (the literal reading of Fig 9) and
// against different layer counts C — the §IV-C "tunable by drivers or
// firmware" knob.
func ExtProbePolicy(s *Session) (Table, error) {
	t := Table{ID: "ext-probe", Title: "Probe dispatch policy and layer count (speedup vs baseline)",
		Header: []string{"Benchmark", "C=2 concurrent", "C=2 sequential", "C=1", "C=3"}}
	type variant struct {
		name       string
		layers     int
		sequential bool
	}
	variants := []variant{
		{"c2-conc", 2, false},
		{"c2-seq", 2, true},
		{"c1", 1, false},
		{"c3", 3, false},
	}
	var jobs []simJob
	for _, bench := range s.benchmarks() {
		baseCfg, _ := wafer.ConfigFor("baseline", config.Default())
		jobs = append(jobs, simJob{cfg: baseCfg, scheme: "baseline", bench: bench})
		for _, v := range variants {
			cfg, _ := wafer.ConfigFor("hdpat", config.Default())
			cfg.HDPAT.Layers = v.layers
			cfg.HDPAT.SequentialLayers = v.sequential
			cfg.Name = "probe-" + v.name
			jobs = append(jobs, simJob{cfg: cfg, scheme: "hdpat", bench: bench})
		}
	}
	if err := s.warm(jobs); err != nil {
		return t, err
	}
	sums := make([][]float64, len(variants))
	for _, bench := range s.benchmarks() {
		baseCfg, _ := wafer.ConfigFor("baseline", config.Default())
		base, err := s.run(baseCfg, "baseline", bench, wafer.Options{})
		if err != nil {
			return t, err
		}
		row := []any{bench}
		for i, v := range variants {
			cfg, _ := wafer.ConfigFor("hdpat", config.Default())
			cfg.HDPAT.Layers = v.layers
			cfg.HDPAT.SequentialLayers = v.sequential
			cfg.Name = "probe-" + v.name
			res, err := s.run(cfg, "hdpat", bench, wafer.Options{})
			if err != nil {
				return t, err
			}
			sp := res.Speedup(base)
			sums[i] = append(sums[i], sp)
			row = append(row, sp)
		}
		t.Addf(row...)
	}
	meanRow := []any{"MEAN"}
	for i := range variants {
		meanRow = append(meanRow, mean(sums[i]))
	}
	t.Addf(meanRow...)
	t.Note("concurrent probes trade wasted walker work for latency; sequential saves traffic")
	return t, nil
}

// ExtPushThreshold sweeps the selective-caching threshold (§IV-F tracks
// access counts in unused PTE bits; the shipping default pushes at 2).
func ExtPushThreshold(s *Session) (Table, error) {
	thresholds := []uint32{1, 2, 4, 8}
	t := Table{ID: "ext-threshold", Title: "Selective push threshold (speedup vs baseline)",
		Header: []string{"Benchmark", "t=1", "t=2", "t=4", "t=8"}}
	var jobs []simJob
	for _, bench := range s.benchmarks() {
		baseCfg, _ := wafer.ConfigFor("baseline", config.Default())
		jobs = append(jobs, simJob{cfg: baseCfg, scheme: "baseline", bench: bench})
		for _, th := range thresholds {
			cfg, _ := wafer.ConfigFor("hdpat", config.Default())
			cfg.IOMMU.PushThreshold = th
			cfg.Name = fmt.Sprintf("push-t%d", th)
			jobs = append(jobs, simJob{cfg: cfg, scheme: "hdpat", bench: bench})
		}
	}
	if err := s.warm(jobs); err != nil {
		return t, err
	}
	sums := make([][]float64, len(thresholds))
	for _, bench := range s.benchmarks() {
		baseCfg, _ := wafer.ConfigFor("baseline", config.Default())
		base, err := s.run(baseCfg, "baseline", bench, wafer.Options{})
		if err != nil {
			return t, err
		}
		row := []any{bench}
		for i, th := range thresholds {
			cfg, _ := wafer.ConfigFor("hdpat", config.Default())
			cfg.IOMMU.PushThreshold = th
			cfg.Name = fmt.Sprintf("push-t%d", th)
			res, err := s.run(cfg, "hdpat", bench, wafer.Options{})
			if err != nil {
				return t, err
			}
			sp := res.Speedup(base)
			sums[i] = append(sums[i], sp)
			row = append(row, sp)
		}
		t.Addf(row...)
	}
	meanRow := []any{"MEAN"}
	for i := range thresholds {
		meanRow = append(meanRow, mean(sums[i]))
	}
	t.Addf(meanRow...)
	t.Note("t=1 pushes every walk (more traffic, earlier coverage); high t starves the aux caches")
	return t, nil
}

// ExtOwnerForward evaluates the owner-forwarding what-if (schemes.OwnerFW):
// a fully distributed walk fabric using every GPM's GMMU walkers. It bounds
// what HDPAT leaves on the table versus a design that abandons the
// centralized IOMMU entirely (at the cost of giving up centralized
// management, the property §II-A assumes).
func ExtOwnerForward(s *Session) (Table, error) {
	t := Table{ID: "ext-ownerfw", Title: "Owner-forwarded walks vs HDPAT (speedup vs baseline)",
		Header: []string{"Benchmark", "HDPAT", "OwnerFW"}}
	if err := s.warmPairs([]string{"hdpat", "ownerfw"}, s.benchmarks()); err != nil {
		return t, err
	}
	var hd, of []float64
	for _, bench := range s.benchmarks() {
		base, h, err := s.pair("hdpat", bench)
		if err != nil {
			return t, err
		}
		_, o, err := s.pair("ownerfw", bench)
		if err != nil {
			return t, err
		}
		hs, os := h.Speedup(base), o.Speedup(base)
		hd = append(hd, hs)
		of = append(of, os)
		t.Addf(bench, hs, os)
	}
	t.Addf("MEAN", mean(hd), mean(of))
	t.Note("owner forwarding exploits 48x8 distributed walkers but loses on hot partitions and")
	t.Note("gives up the centralized management the zero-copy model assumes")
	return t, nil
}

// ExtMigration evaluates the page-migration extension (the paper's stated
// future work) on top of HDPAT: hot pages with a dominant remote requester
// move into that GPM's HBM, trading one shootdown + page copy for fully
// local access thereafter.
func ExtMigration(s *Session) (Table, error) {
	t := Table{ID: "ext-migrate", Title: "Page migration on top of HDPAT (speedup vs baseline)",
		Header: []string{"Benchmark", "HDPAT", "HDPAT+migration", "Pages moved", "Shared-skips"}}
	var hd, mg []float64
	mcfg := migrate.DefaultConfig()
	for _, bench := range s.benchmarks() {
		base, h, err := s.pair("hdpat", bench)
		if err != nil {
			return t, err
		}
		cfg, _ := wafer.ConfigFor("hdpat", config.Default())
		cfg.Name = "hdpat-migrate"
		b, err := workload.ByAbbr(bench)
		if err != nil {
			return t, err
		}
		res, err := wafer.Run(cfg, wafer.Options{
			Scheme: "hdpat", Benchmark: b, OpsBudget: s.P.OpsBudget,
			Seed: s.P.Seed + 1, Migration: &mcfg,
		})
		if err != nil {
			return t, err
		}
		s.Runs++
		hs, ms := h.Speedup(base), res.Speedup(base)
		hd = append(hd, hs)
		mg = append(mg, ms)
		t.Addf(bench, hs, ms, res.Migration.Migrations, res.Migration.SkippedShare)
	}
	t.Addf("MEAN", mean(hd), mean(mg), "", "")
	t.Note("migration helps only pages with a dominant requester; shared hot pages are skipped")
	return t, nil
}

// privateHot builds the migration microbenchmark: each GPM's CUs repeatedly
// access a small set of pages owned by the next GPM (private to this
// requester, so the dominance filter admits them), interleaved with local
// filler that evicts the shared L2 TLB between rounds so the re-touches
// reach the translation fabric instead of dying in the TLBs.
func privateHot() workload.Benchmark {
	const perGPM = 64
	return workload.Custom("PRIV", "private remote hot pages", 4,
		[]workload.RegionSpec{{Name: "data", Pages: 48 * perGPM}},
		func(ctx workload.Context) []vm.VAddr {
			r := ctx.Regions["data"]
			neighbour := (ctx.GPM + 1) % ctx.NumGPMs
			nLo, _ := r.OwnerSlice(neighbour, ctx.NumGPMs)
			myLo, myHi := r.OwnerSlice(ctx.GPM, ctx.NumGPMs)
			var tr []vm.VAddr
			rounds := ctx.OpsBudget / 44
			if rounds < 4 {
				rounds = 4
			}
			for round := 0; round < rounds; round++ {
				// Hot remote pages: the tail of the neighbour's chunk, which
				// the neighbour's own filler (bounded to its chunk head)
				// never touches — truly private to this requester.
				for h := 0; h < 4; h++ {
					tr = append(tr, ctx.PageSize.Base(r.Start+vm.VPN(nLo+perGPM-4+h)))
				}
				// Local filler: more distinct pages per round than the L1
				// TLB holds, so the hot entries are evicted between rounds.
				span := (myHi - myLo) / 2
				for fcount := 0; fcount < 40; fcount++ {
					pg := myLo + (round*40+fcount)%span
					tr = append(tr, ctx.PageSize.Base(r.Start+vm.VPN(pg)))
				}
			}
			return tr
		})
}

// ExtMigrationMicro isolates the migration mechanism with the private-hot
// microbenchmark and a deliberately tiny L2 TLB, so re-touches of remote
// pages actually reach the translation fabric.
func ExtMigrationMicro(s *Session) (Table, error) {
	t := Table{ID: "ext-migrate-micro", Title: "Migration microbenchmark (private remote hot pages, tiny L2 TLB)",
		Header: []string{"Config", "Cycles", "Remote reqs", "Migrations", "Speedup vs same scheme"}}
	run := func(scheme string, with bool) (wafer.Result, error) {
		cfg, _ := wafer.ConfigFor(scheme, config.Default())
		cfg.Name = "migrate-micro"
		cfg.GPM.L2TLB.Sets = 2
		cfg.GPM.L2TLB.Ways = 8
		opts := wafer.Options{Scheme: scheme, Benchmark: privateHot(),
			OpsBudget: 480, Seed: s.P.Seed + 1}
		if with {
			mc := migrate.DefaultConfig()
			mc.Threshold = 3
			opts.Migration = &mc
		}
		s.Runs++
		return wafer.Run(cfg, opts)
	}
	for _, scheme := range []string{"baseline", "hdpat"} {
		off, err := run(scheme, false)
		if err != nil {
			return t, err
		}
		on, err := run(scheme, true)
		if err != nil {
			return t, err
		}
		t.Addf(scheme, fmtCycles(off.Cycles), off.RemoteRequests(), 0, 1.0)
		t.Addf(scheme+"+migration", fmtCycles(on.Cycles), on.RemoteRequests(),
			on.Migration.Migrations, on.Speedup(off))
	}
	t.Note("migration makes the hot pages local — a modest win over the naive baseline,")
	t.Note("but a small loss under HDPAT, whose peer caches already absorb the re-touches")
	t.Note("at lower cost than shootdown+copy; consistent with the paper deferring")
	t.Note("migration to future work")
	return t, nil
}
