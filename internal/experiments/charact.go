package experiments

import (
	"fmt"

	"hdpat/internal/config"
	"hdpat/internal/geom"
	"hdpat/internal/iommu"
	"hdpat/internal/sim"
	"hdpat/internal/stats"
	"hdpat/internal/wafer"
	"hdpat/internal/workload"
	"hdpat/internal/xlat"
)

// Table1 dumps the simulated hardware configuration, mirroring Table I.
func Table1(s *Session) (Table, error) {
	c := config.Default()
	t := Table{ID: "tab1", Title: "Configuration of wafer-scale GPUs", Header: []string{"Module", "Configuration"}}
	g := c.GPM
	t.Add("CU", fmt.Sprintf("1.0 GHz, %d per GPM", g.NumCUs))
	t.Add("L1 Vector Cache", fmt.Sprintf("%d KB, %d-way, %d-MSHR", g.L1VCache.SizeBytes>>10, g.L1VCache.Ways, g.L1VCache.MSHRs))
	t.Add("L2 Cache", fmt.Sprintf("%d MB, %d-way, %d-MSHR", g.L2Cache.SizeBytes>>20, g.L2Cache.Ways, g.L2Cache.MSHRs))
	t.Add("L1 Vector TLB", fmt.Sprintf("%d-set, %d-way, %d-MSHR, %d-cycle latency, LRU", g.L1TLB.Sets, g.L1TLB.Ways, g.L1TLB.MSHRs, g.L1TLB.Latency))
	t.Add("L2 TLB", fmt.Sprintf("%d-set, %d-way, %d-MSHR, %d-cycle latency, LRU", g.L2TLB.Sets, g.L2TLB.Ways, g.L2TLB.MSHRs, g.L2TLB.Latency))
	t.Add("GMMU Cache", fmt.Sprintf("%d-set, %d-way", g.GMMUCache.Sets, g.GMMUCache.Ways))
	t.Add("Aux cache", fmt.Sprintf("%d-set, %d-way (carve-out for peer caching)", g.AuxTLB.Sets, g.AuxTLB.Ways))
	t.Add("GMMU", fmt.Sprintf("%d shared page table walkers, %d cycles per walk", g.GMMUWalkers, g.WalkCycles))
	t.Add("IOMMU", fmt.Sprintf("%d shared page table walkers, %d cycles per walk", c.IOMMU.Walkers, c.IOMMU.WalkCycles))
	t.Add("Redirection Table", fmt.Sprintf("%d entries, LRU", config.HDPATIOMMU().RedirectEntries))
	t.Add("HBM", fmt.Sprintf("%.2f TB/s, %d-cycle access", g.HBM.BytesPerCycle/1000, g.HBM.AccessLatency))
	t.Add("Mesh Network", fmt.Sprintf("%.0f GB/s, %d-cycle latency per link", c.NoC.BytesPerCycle, c.NoC.HopLatency))
	t.Add("Wafer", fmt.Sprintf("%dx%d mesh, CPU at centre, %d GPMs", c.MeshW, c.MeshH, c.MeshW*c.MeshH-1))
	return t, nil
}

// Table2 dumps the benchmark inventory, mirroring Table II, plus the scaled
// sizes actually simulated.
func Table2(s *Session) (Table, error) {
	c := config.Default()
	t := Table{ID: "tab2", Title: "Benchmarks, workgroup counts and memory footprint",
		Header: []string{"Abbr", "Benchmark", "Workgroups", "Memory FP", "Pattern", "Scaled pages"}}
	for _, b := range workload.All() {
		pages := 0
		for _, r := range b.Regions(c.WorkloadScale, c.MeshW*c.MeshH-1, c.PageSize) {
			pages += r.Pages
		}
		t.Addf(b.Abbr, b.Name, b.Workgroups, fmt.Sprintf("%d MB", b.FootprintMB), b.Pattern, pages)
	}
	t.Note("scaled pages = Table II footprint / %d (WorkloadScale), 4 KB pages", c.WorkloadScale)
	return t, nil
}

// Fig2 compares the baseline IOMMU against the two idealisations (1-cycle
// walks; 4096 walkers), reporting per-benchmark speedups.
func Fig2(s *Session) (Table, error) {
	t := Table{ID: "fig2", Title: "Performance headroom of idealised IOMMUs",
		Header: []string{"Benchmark", "Ideal latency (1cyc/16W)", "Ideal parallel (500cyc/4096W)"}}
	var jobs []simJob
	for _, bench := range s.benchmarks() {
		baseCfg, _ := wafer.ConfigFor("baseline", config.Default())
		jobs = append(jobs, simJob{cfg: baseCfg, scheme: "baseline", bench: bench})
		latCfg := baseCfg
		latCfg.IOMMU = config.IdealLatencyIOMMU()
		latCfg.Name = "ideal-latency"
		jobs = append(jobs, simJob{cfg: latCfg, scheme: "baseline", bench: bench})
		parCfg := baseCfg
		parCfg.IOMMU = config.IdealParallelIOMMU()
		parCfg.Name = "ideal-parallel"
		jobs = append(jobs, simJob{cfg: parCfg, scheme: "baseline", bench: bench})
	}
	if err := s.warm(jobs); err != nil {
		return t, err
	}
	var latSp, parSp []float64
	for _, bench := range s.benchmarks() {
		baseCfg, _ := wafer.ConfigFor("baseline", config.Default())
		base, err := s.run(baseCfg, "baseline", bench, wafer.Options{})
		if err != nil {
			return t, err
		}
		latCfg := baseCfg
		latCfg.IOMMU = config.IdealLatencyIOMMU()
		latCfg.Name = "ideal-latency"
		lat, err := s.run(latCfg, "baseline", bench, wafer.Options{})
		if err != nil {
			return t, err
		}
		parCfg := baseCfg
		parCfg.IOMMU = config.IdealParallelIOMMU()
		parCfg.Name = "ideal-parallel"
		par, err := s.run(parCfg, "baseline", bench, wafer.Options{})
		if err != nil {
			return t, err
		}
		ls, ps := lat.Speedup(base), par.Speedup(base)
		latSp = append(latSp, ls)
		parSp = append(parSp, ps)
		t.Addf(bench, ls, ps)
	}
	t.Addf("MEAN", mean(latSp), mean(parSp))
	t.Note("paper: 5.45x (ideal latency) and 4.96x (ideal parallelism) mean speedup")
	return t, nil
}

// Fig3 decomposes IOMMU per-request latency for SPMV into pre-queue wait,
// PTW-queue wait and the walk itself.
func Fig3(s *Session) (Table, error) {
	t := Table{ID: "fig3", Title: "Averaged latency breakdown per IOMMU translation request (SPMV)",
		Header: []string{"Component", "Cycles (mean)", "Share %"}}
	cfg, _ := wafer.ConfigFor("baseline", config.Default())
	res, err := s.run(cfg, "baseline", "SPMV", wafer.Options{})
	if err != nil {
		return t, err
	}
	pre, q, w := res.IOMMU.Breakdown.Means()
	pp, qp, wp := res.IOMMU.Breakdown.Percentages()
	t.Addf("pre-queue", pre, pp)
	t.Addf("PTW queueing", q, qp)
	t.Addf("PTW walk", w, wp)
	t.Note("paper: pre-queue delay is the largest component, backlog ~700 requests")
	t.Note("peak combined queue depth observed: %d", res.IOMMU.PeakQueue)
	return t, nil
}

// Fig4 contrasts IOMMU buffer pressure over time between a small MCM system
// and the 48-GPM wafer on SPMV.
func Fig4(s *Session) (Table, error) {
	t := Table{ID: "fig4", Title: "IOMMU buffer pressure over time (SPMV)",
		Header: []string{"System", "Peak depth", "Mean depth", "Sparkline (time ->)"}}
	window := uint64(2000)
	for _, sys := range []struct {
		name string
		cfg  config.System
	}{
		{"MCM (3x3 wafer)", config.MCM4()},
		{"wafer-scale (7x7)", config.Default()},
	} {
		cfg, _ := wafer.ConfigFor("baseline", sys.cfg)
		// The paper sets the IOMMU buffer to 4096 in this experiment "to
		// better demonstrate the load".
		cfg.IOMMU.PWQueueCap = 4096
		res, err := s.run(cfg, "baseline", "SPMV", wafer.Options{QueueWindow: window})
		if err != nil {
			return t, err
		}
		vals := res.QueueSeries.Values()
		t.Addf(sys.name, res.QueueSeries.Peak(), mean(vals), res.QueueSeries.Sparkline(48))
	}
	t.Note("paper: wafer-scale backlog is persistently high (~700 with a 4096 buffer); MCM stays low")
	return t, nil
}

// Fig5 reports GPM execution time by ring distance from the CPU for two
// benchmarks, showing the O2 centre/periphery imbalance.
func Fig5(s *Session) (Table, error) {
	t := Table{ID: "fig5", Title: "GPM execution time (kcycles) by geometric position",
		Header: []string{"Benchmark", "Ring 1 (centre)", "Ring 2", "Ring 3 (edge)", "Edge/centre"}}
	for _, bench := range []string{"FIR", "SPMV"} {
		cfg, _ := wafer.ConfigFor("baseline", config.Default())
		res, err := s.run(cfg, "baseline", bench, wafer.Options{})
		if err != nil {
			return t, err
		}
		sums := map[int]float64{}
		counts := map[int]int{}
		cpu := geom.XY((cfg.MeshW-1)/2, (cfg.MeshH-1)/2)
		for i, c := range res.GPMCoords {
			r := c.Chebyshev(cpu)
			sums[r] += float64(res.GPMFinish[i])
			counts[r]++
		}
		ringMean := func(r int) float64 {
			if counts[r] == 0 {
				return 0
			}
			return sums[r] / float64(counts[r]) / 1000
		}
		r1, r2, r3 := ringMean(1), ringMean(2), ringMean(3)
		ratio := 0.0
		if r1 > 0 {
			ratio = r3 / r1
		}
		t.Addf(bench, r1, r2, r3, ratio)
	}
	t.Note("paper: centrally located GPMs exhibit lower execution times")
	return t, nil
}

// Fig6 measures how often each virtual page is translated by the IOMMU.
func Fig6(s *Session) (Table, error) {
	t := Table{ID: "fig6", Title: "Distribution of per-page IOMMU translation counts",
		Header: []string{"Benchmark", "Pages", "x1 %", "x2-3 %", "x4-7 %", "x8+ %", "Max"}}
	for _, bench := range s.benchmarks() {
		tracker := stats.NewReuseTracker()
		cfg, _ := wafer.ConfigFor("baseline", config.Default())
		_, err := s.run(cfg, "baseline", bench, wafer.Options{
			Hooks: []iommu.RequestHook{iommu.RequestHookFunc(
				func(now sim.VTime, req *xlat.Request) { tracker.Touch(uint64(req.VPN)) })},
		})
		if err != nil {
			return t, err
		}
		h := tracker.CountHistogram()
		var once, x23, x47, x8 uint64
		for i := 0; i < h.NumBuckets(); i++ {
			c, lo, _ := h.Bucket(i)
			switch {
			case lo <= 1:
				once += c
			case lo <= 3:
				x23 += c
			case lo <= 7:
				x47 += c
			default:
				x8 += c
			}
		}
		tot := float64(h.Total())
		if tot == 0 {
			tot = 1
		}
		t.Addf(bench, h.Total(), 100*float64(once)/tot, 100*float64(x23)/tot,
			100*float64(x47)/tot, 100*float64(x8)/tot, h.Max())
	}
	t.Note("paper O3: AES and RELU are translated once; BT and FWT repeatedly")
	return t, nil
}

// Fig7 reports reuse-distance distributions at the IOMMU for the
// re-translation-heavy benchmarks.
func Fig7(s *Session) (Table, error) {
	t := Table{ID: "fig7", Title: "Distribution of request distance between repeated translations",
		Header: []string{"Benchmark", "Reuses", "<=16 %", "<=256 %", "<=4096 %", "Max"}}
	benches := []string{"BT", "FWT", "MT", "PR"}
	if s.P.Quick {
		benches = []string{"BT", "PR"}
	}
	for _, bench := range benches {
		tracker := stats.NewReuseTracker()
		cfg, _ := wafer.ConfigFor("baseline", config.Default())
		_, err := s.run(cfg, "baseline", bench, wafer.Options{
			Hooks: []iommu.RequestHook{iommu.RequestHookFunc(
				func(now sim.VTime, req *xlat.Request) { tracker.Touch(uint64(req.VPN)) })},
		})
		if err != nil {
			return t, err
		}
		d := &tracker.Distances
		t.Addf(bench, d.Total(), 100*d.FractionAtMost(16), 100*d.FractionAtMost(256),
			100*d.FractionAtMost(4096), d.Max())
	}
	t.Note("paper O3: reuse distances range from small values to hundreds of thousands")
	return t, nil
}

// Fig8 reports the virtual-page distance between consecutive IOMMU requests.
func Fig8(s *Session) (Table, error) {
	t := Table{ID: "fig8", Title: "Virtual-page distance between consecutive translation requests",
		Header: []string{"Benchmark", "Pairs", "within 1 %", "within 2 %", "within 4 %"}}
	for _, bench := range s.benchmarks() {
		var tracker stats.SpatialTracker
		cfg, _ := wafer.ConfigFor("baseline", config.Default())
		_, err := s.run(cfg, "baseline", bench, wafer.Options{
			Hooks: []iommu.RequestHook{iommu.RequestHookFunc(
				func(now sim.VTime, req *xlat.Request) { tracker.Touch(uint64(req.VPN)) })},
		})
		if err != nil {
			return t, err
		}
		t.Addf(bench, tracker.Distances.Total(),
			100*tracker.FractionWithin(1), 100*tracker.FractionWithin(2), 100*tracker.FractionWithin(4))
	}
	t.Note("paper O4: 10-30%% of next requests fall within a few pages, strongest for compute-dense kernels")
	return t, nil
}

// Fig13 runs FIR at three problem sizes and reports the windowed IOMMU
// request-rate series, demonstrating size-invariant behaviour.
func Fig13(s *Session) (Table, error) {
	t := Table{ID: "fig13", Title: "IOMMU-served translation requests over time, FIR problem sizes",
		Header: []string{"Scale (1/N of Table II)", "Requests", "Peak/window", "Mean/window", "Sparkline"}}
	window := uint64(5000)
	for _, scale := range []int{16, 8, 4} {
		cfg, _ := wafer.ConfigFor("baseline", config.Default())
		cfg.WorkloadScale = scale
		cfg.Name = fmt.Sprintf("fir-scale%d", scale)
		res, err := s.run(cfg, "baseline", "FIR", wafer.Options{ServedWindow: window})
		if err != nil {
			return t, err
		}
		vals := res.ServedSeries.Values()
		t.Addf(fmt.Sprintf("1/%d", scale), res.IOMMU.Requests, res.ServedSeries.Peak(),
			mean(vals), res.ServedSeries.Sparkline(48))
	}
	t.Note("paper: similar request-rate shapes across sizes justify scaled-down footprints")
	return t, nil
}
