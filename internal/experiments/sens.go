package experiments

import (
	"fmt"

	"hdpat/internal/area"
	"hdpat/internal/config"
	"hdpat/internal/vm"
	"hdpat/internal/wafer"
)

// Fig20 sweeps the system page size, reporting baseline and HDPAT geomeans
// normalized to the 4 KB baseline.
func Fig20(s *Session) (Table, error) {
	t := Table{ID: "fig20", Title: "Page-size sensitivity (geomean, normalized to 4KB baseline)",
		Header: []string{"Page size", "Baseline", "HDPAT", "HDPAT advantage"}}
	sizes := []vm.PageSize{vm.Page4K, vm.Page16K, vm.Page64K}
	var jobs []simJob
	for _, bench := range s.benchmarks() {
		cfg, _ := wafer.ConfigFor("baseline", config.Default())
		jobs = append(jobs, simJob{cfg: cfg, scheme: "baseline", bench: bench})
		for _, ps := range sizes {
			for _, scheme := range []string{"baseline", "hdpat"} {
				cfg, _ := wafer.ConfigFor(scheme, config.Default())
				cfg.PageSize = ps
				cfg.Name = fmt.Sprintf("ps%dk", uint64(ps)>>10)
				jobs = append(jobs, simJob{cfg: cfg, scheme: scheme, bench: bench})
			}
		}
	}
	if err := s.warm(jobs); err != nil {
		return t, err
	}
	// Reference: per-benchmark 4 KB baseline cycles.
	ref := map[string]float64{}
	for _, bench := range s.benchmarks() {
		cfg, _ := wafer.ConfigFor("baseline", config.Default())
		res, err := s.run(cfg, "baseline", bench, wafer.Options{})
		if err != nil {
			return t, err
		}
		ref[bench] = float64(res.Cycles)
	}
	for _, ps := range sizes {
		var baseN, hdN []float64
		for _, bench := range s.benchmarks() {
			for _, scheme := range []string{"baseline", "hdpat"} {
				cfg, _ := wafer.ConfigFor(scheme, config.Default())
				cfg.PageSize = ps
				cfg.Name = fmt.Sprintf("ps%dk", uint64(ps)>>10)
				res, err := s.run(cfg, scheme, bench, wafer.Options{})
				if err != nil {
					return t, err
				}
				norm := ref[bench] / float64(res.Cycles)
				if scheme == "baseline" {
					baseN = append(baseN, norm)
				} else {
					hdN = append(hdN, norm)
				}
			}
		}
		gb, gh := geomean(baseN), geomean(hdN)
		adv := 0.0
		if gb > 0 {
			adv = gh / gb
		}
		t.Addf(fmt.Sprintf("%dKB", uint64(ps)>>10), gb, gh, adv)
	}
	t.Note("paper: larger pages help the baseline; HDPAT keeps ~1.5x advantage at every size")
	return t, nil
}

// Fig21 evaluates HDPAT across GPU generations (MI100..H200).
func Fig21(s *Session) (Table, error) {
	t := Table{ID: "fig21", Title: "HDPAT speedup across GPU configurations (geomean)",
		Header: []string{"GPU", "Geomean speedup"}}
	var jobs []simJob
	for _, name := range config.GPMVariantNames() {
		gpm, err := config.GPMVariant(name)
		if err != nil {
			return t, err
		}
		for _, bench := range s.benchmarks() {
			for _, scheme := range []string{"baseline", "hdpat"} {
				cfg, _ := wafer.ConfigFor(scheme, config.Default())
				cfg.GPM.L1VCache = gpm.L1VCache
				cfg.GPM.L2Cache = gpm.L2Cache
				cfg.GPM.HBM = gpm.HBM
				cfg.Name = "gpu-" + name
				jobs = append(jobs, simJob{cfg: cfg, scheme: scheme, bench: bench})
			}
		}
	}
	if err := s.warm(jobs); err != nil {
		return t, err
	}
	for _, name := range config.GPMVariantNames() {
		gpm, err := config.GPMVariant(name)
		if err != nil {
			return t, err
		}
		var sp []float64
		for _, bench := range s.benchmarks() {
			var results [2]wafer.Result
			for i, scheme := range []string{"baseline", "hdpat"} {
				cfg, _ := wafer.ConfigFor(scheme, config.Default())
				cfg.GPM.L1VCache = gpm.L1VCache
				cfg.GPM.L2Cache = gpm.L2Cache
				cfg.GPM.HBM = gpm.HBM
				cfg.Name = "gpu-" + name
				res, err := s.run(cfg, scheme, bench, wafer.Options{})
				if err != nil {
					return t, err
				}
				results[i] = res
			}
			sp = append(sp, results[1].Speedup(results[0]))
		}
		t.Addf(name, geomean(sp))
	}
	t.Note("paper: 1.47-1.57x on AMD parts; larger-memory H100/H200 reach 2.52x/2.36x")
	return t, nil
}

// Fig22 repeats the headline comparison on a 7x12 wafer.
func Fig22(s *Session) (Table, error) {
	t := Table{ID: "fig22", Title: "HDPAT on a 7x12 wafer (speedup vs baseline)",
		Header: []string{"Benchmark", "Speedup"}}
	var jobs []simJob
	for _, bench := range s.benchmarks() {
		for _, scheme := range []string{"baseline", "hdpat"} {
			cfg, _ := wafer.ConfigFor(scheme, config.Wafer7x12())
			jobs = append(jobs, simJob{cfg: cfg, scheme: scheme, bench: bench})
		}
	}
	if err := s.warm(jobs); err != nil {
		return t, err
	}
	var sp []float64
	for _, bench := range s.benchmarks() {
		var results [2]wafer.Result
		for i, scheme := range []string{"baseline", "hdpat"} {
			cfg, _ := wafer.ConfigFor(scheme, config.Wafer7x12())
			res, err := s.run(cfg, scheme, bench, wafer.Options{})
			if err != nil {
				return t, err
			}
			results[i] = res
		}
		v := results[1].Speedup(results[0])
		sp = append(sp, v)
		t.Addf(bench, v)
	}
	t.Addf("GEOMEAN", geomean(sp))
	t.Note("paper: geomean 1.49x on the larger wafer")
	return t, nil
}

// Area reproduces the §V-F overhead estimate.
func Area(s *Session) (Table, error) {
	t := Table{ID: "area", Title: "Area and power overhead (7nm analytical model)",
		Header: []string{"Structure", "Entries", "Bits/entry", "Copies", "Area mm^2", "Power W"}}
	cfg := config.Default()
	filterSlots := cfg.GPM.AuxTLB.Sets * cfg.GPM.AuxTLB.Ways * 2
	rep := area.Estimate(1024, filterSlots, cfg.MeshW*cfg.MeshH-1)
	for _, st := range rep.Structures {
		t.Addf(st.Name, st.Entries, st.BitsPerEntry, st.Copies,
			st.AreaMM2(), st.PowerW())
	}
	t.Note("redirection table vs Ryzen-9 CPU die: %.3f%% area, %.3f%% power", rep.AreaPct, rep.PowerPct)
	t.Note("paper: 0.034 mm^2, 0.16 W -> 0.02%% area, 0.09%% power")
	return t, nil
}
