// Package experiments regenerates every table and figure of the paper's
// evaluation (§III and §V). Each experiment is addressable by the paper's
// artifact id (fig2..fig22, tab1, tab2, area) and produces a Table whose
// rows mirror what the paper reports, so EXPERIMENTS.md can record
// paper-vs-measured side by side.
package experiments

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"hdpat/internal/config"
	"hdpat/internal/metrics"
	"hdpat/internal/runner"
	"hdpat/internal/sim"
	"hdpat/internal/wafer"
	"hdpat/internal/workload"
	"hdpat/internal/xlat"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Addf appends a row formatting each value with %v (floats as %.3f).
func (t *Table) Addf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note attaches a free-form annotation printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured Markdown section, the
// format cmd/experiments -report writes per-experiment artifacts in. Pipes
// inside cells are escaped so free-text notes columns cannot break rows.
func (t Table) Markdown() string {
	esc := func(c string) string { return strings.ReplaceAll(c, "|", "\\|") }
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	for i, h := range t.Header {
		if i == 0 {
			b.WriteByte('|')
		}
		b.WriteString(" " + esc(h) + " |")
	}
	b.WriteByte('\n')
	for range t.Header {
		b.WriteString("|---")
	}
	b.WriteString("|\n")
	for _, r := range t.Rows {
		b.WriteByte('|')
		for _, c := range r {
			b.WriteString(" " + esc(c) + " |")
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// Params configure a session.
type Params struct {
	// Quick restricts benchmarks and shrinks budgets for CI-speed runs.
	Quick bool
	// OpsBudget overrides the per-CU operation budget (0 = default).
	OpsBudget int
	Seed      int64
	// Benchmarks restricts the benchmark set (nil = Table II set, or the
	// quick subset under Quick).
	Benchmarks []string
	// Workers bounds the simulations a figure's warm-up phase runs in
	// parallel (<= 0 means GOMAXPROCS; 1 forces serial execution).
	Workers int
	// Domains shards each simulation across this many spatial domains
	// (wafer.Options.Domains; 0 or 1 = serial). Sharded runs are
	// bit-identical to serial ones, so the memo cache needs no extra key.
	Domains int
}

// Session runs experiments, memoising simulation results so figures that
// share runs (fig14/15/16/17 all need baseline+hdpat per benchmark) pay
// once. Figure generators declare their run set up front (warm/warmPairs),
// which executes the cache misses as one parallel batch; the generators'
// serial loops then assemble tables from cache hits. A Session is not
// goroutine-safe — parallelism lives inside warm.
type Session struct {
	P     Params
	cache map[string]wafer.Result
	// Runs counts actual (non-cached) simulations, for reporting.
	Runs int
	// Metrics, when set, receives runner.* batch-throughput series from the
	// warm-up pools, so a live endpoint (metrics.ListenAndServe) can report
	// progress while figures regenerate.
	Metrics *metrics.Registry
}

// NewSession creates a session.
func NewSession(p Params) *Session {
	if p.OpsBudget == 0 {
		if p.Quick {
			p.OpsBudget = 48
		} else {
			p.OpsBudget = 96
		}
	}
	return &Session{P: p, cache: make(map[string]wafer.Result)}
}

// benchmarks returns the active benchmark list.
func (s *Session) benchmarks() []string {
	if len(s.P.Benchmarks) > 0 {
		return s.P.Benchmarks
	}
	if s.P.Quick {
		return []string{"AES", "BT", "FIR", "KM", "PR", "SPMV"}
	}
	return workload.Names()
}

// runKey is the memo key for one simulation.
func runKey(cfg config.System, scheme, bench string, opts wafer.Options) string {
	return fmt.Sprintf("%s|%s|%s|%d|%d|%d|%d|%v|%d|%d|%d|%d|%v|%d|%d",
		cfg.Name, scheme, bench, cfg.MeshW, cfg.MeshH, cfg.PageSize, cfg.WorkloadScale,
		cfg.IOMMU.UseTLB, cfg.IOMMU.Walkers, cfg.IOMMU.WalkCycles, cfg.IOMMU.PrefetchDegree,
		cfg.IOMMU.RedirectEntries, cfg.IOMMU.Revisit, cfg.GPM.L2Cache.SizeBytes,
		opts.OpsBudget)
}

// plainRun reports whether a run is memoisable (no hooks, observability
// sinks or series, which attach per-call state the cache cannot share).
func plainRun(opts wafer.Options) bool {
	return len(opts.Hooks) == 0 && opts.Metrics == nil && opts.Trace == nil &&
		opts.Attribution == nil && opts.QueueWindow == 0 && opts.ServedWindow == 0
}

// execute performs one simulation with the session's defaults applied. It
// touches no session state, so warm may call it from worker goroutines.
func (s *Session) execute(ctx context.Context, cfg config.System, scheme, bench string, opts wafer.Options) (wafer.Result, error) {
	b, err := workload.ByAbbr(bench)
	if err != nil {
		return wafer.Result{}, err
	}
	opts.Scheme = scheme
	opts.Benchmark = b
	if opts.OpsBudget == 0 {
		opts.OpsBudget = s.P.OpsBudget
	}
	if opts.Seed == 0 {
		opts.Seed = s.P.Seed + 1
	}
	if opts.Domains == 0 {
		opts.Domains = s.P.Domains
	}
	return wafer.RunContext(ctx, cfg, opts)
}

// run executes (or recalls) one simulation.
func (s *Session) run(cfg config.System, scheme, bench string, opts wafer.Options) (wafer.Result, error) {
	key := runKey(cfg, scheme, bench, opts)
	plain := plainRun(opts)
	if plain {
		if r, ok := s.cache[key]; ok {
			return r, nil
		}
	}
	res, err := s.execute(context.Background(), cfg, scheme, bench, opts)
	if err != nil {
		return wafer.Result{}, err
	}
	s.Runs++
	if plain {
		s.cache[key] = res
	}
	return res, nil
}

// simJob names one simulation for parallel pre-execution.
type simJob struct {
	cfg           config.System
	scheme, bench string
	opts          wafer.Options
}

// warm executes the given simulations' cache misses as one parallel batch
// (bounded by Params.Workers) and memoises the results, so the caller's
// subsequent run() calls are cache hits. Non-memoisable jobs (observers,
// series) are skipped — they run serially in the generator as before.
// Results are identical to serial execution; only wall-clock changes.
func (s *Session) warm(jobs []simJob) error {
	var pending []simJob
	var keys []string
	seen := map[string]bool{}
	for _, j := range jobs {
		key := runKey(j.cfg, j.scheme, j.bench, j.opts)
		if !plainRun(j.opts) || seen[key] {
			continue
		}
		if _, ok := s.cache[key]; ok {
			continue
		}
		seen[key] = true
		pending = append(pending, j)
		keys = append(keys, key)
	}
	if len(pending) == 0 {
		return nil
	}
	tasks := make([]runner.Task, len(pending))
	for i, j := range pending {
		j := j
		tasks[i] = func(ctx context.Context) (wafer.Result, error) {
			return s.execute(ctx, j.cfg, j.scheme, j.bench, j.opts)
		}
	}
	pool := &runner.Pool{Workers: s.P.Workers, Metrics: s.Metrics}
	for i, out := range pool.Run(context.Background(), tasks) {
		if out.Err != nil {
			return fmt.Errorf("experiments: %s/%s: %w", pending[i].scheme, pending[i].bench, out.Err)
		}
		s.Runs++
		s.cache[keys[i]] = out.Result
	}
	return nil
}

// warmPairs pre-runs the baseline plus each named scheme across the given
// benchmarks on the default wafer — the run set behind pair()-based
// figures.
func (s *Session) warmPairs(schemes []string, benches []string) error {
	var jobs []simJob
	for _, bench := range benches {
		for _, scheme := range append([]string{"baseline"}, schemes...) {
			cfg, err := wafer.ConfigFor(scheme, config.Default())
			if err != nil {
				return err
			}
			jobs = append(jobs, simJob{cfg: cfg, scheme: scheme, bench: bench})
		}
	}
	return s.warm(jobs)
}

// pair runs baseline and the named scheme on a benchmark with the default
// wafer and returns (base, other).
func (s *Session) pair(scheme, bench string) (wafer.Result, wafer.Result, error) {
	baseCfg, err := wafer.ConfigFor("baseline", config.Default())
	if err != nil {
		return wafer.Result{}, wafer.Result{}, err
	}
	base, err := s.run(baseCfg, "baseline", bench, wafer.Options{})
	if err != nil {
		return wafer.Result{}, wafer.Result{}, err
	}
	cfg, err := wafer.ConfigFor(scheme, config.Default())
	if err != nil {
		return wafer.Result{}, wafer.Result{}, err
	}
	res, err := s.run(cfg, scheme, bench, wafer.Options{})
	return base, res, err
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(s *Session) (Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"tab1", "Configuration of wafer-scale GPUs (Table I)", Table1},
		{"tab2", "Benchmarks, workgroups and memory footprint (Table II)", Table2},
		{"fig2", "Performance headroom of idealised IOMMUs", Fig2},
		{"fig3", "IOMMU per-request latency breakdown (SPMV)", Fig3},
		{"fig4", "IOMMU buffer pressure: MCM vs wafer-scale (SPMV)", Fig4},
		{"fig5", "GPM execution time by geometric position", Fig5},
		{"fig6", "Per-page IOMMU translation counts", Fig6},
		{"fig7", "Reuse distance between repeated translations", Fig7},
		{"fig8", "Virtual-page distance of consecutive requests", Fig8},
		{"fig13", "Size invariance of IOMMU pressure (FIR)", Fig13},
		{"fig14", "Overall performance vs state of the art", Fig14},
		{"fig15", "Ablation of HDPAT techniques", Fig15},
		{"fig16", "Translation handling breakdown", Fig16},
		{"fig17", "Remote translation round-trip time and NoC traffic", Fig17},
		{"fig18", "Proactive delivery granularity", Fig18},
		{"fig19", "Redirection table vs IOMMU TLB", Fig19},
		{"fig20", "System page size sensitivity", Fig20},
		{"fig21", "Generalisation across GPU configurations", Fig21},
		{"fig22", "7x12 wafer generalisation", Fig22},
		{"area", "Area and power overhead (SV-F)", Area},
		// Extension studies beyond the paper (see ext.go); excluded from
		// the default run by RunByDefault.
		{"ext-probe", "EXT: probe dispatch policy and layer count", ExtProbePolicy},
		{"ext-threshold", "EXT: selective push threshold sweep", ExtPushThreshold},
		{"ext-ownerfw", "EXT: owner-forwarded walks what-if", ExtOwnerForward},
		{"ext-migrate", "EXT: page migration on top of HDPAT", ExtMigration},
		{"ext-migrate-micro", "EXT: migration mechanism microbenchmark", ExtMigrationMicro},
	}
}

// RunByDefault reports whether an experiment belongs to the paper's
// artifact set (run when no -run filter is given); extension studies are
// opt-in.
func RunByDefault(id string) bool {
	return len(id) < 4 || id[:4] != "ext-"
}

// ByID resolves an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q", id)
}

// IDs lists all experiment ids.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// --- shared helpers --------------------------------------------------------

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logs := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logs += math.Log(x)
	}
	return math.Exp(logs / float64(len(xs)))
}

// sortedKeys returns map keys in stable order.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fmtCycles renders a cycle count compactly.
func fmtCycles(c sim.VTime) string {
	switch {
	case c >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(c)/1e6)
	case c >= 1_000:
		return fmt.Sprintf("%.1fk", float64(c)/1e3)
	}
	return fmt.Sprintf("%d", c)
}

func offloadPct(r wafer.Result) float64 { return 100 * r.OffloadFraction() }

func sourcePct(r wafer.Result, src xlat.Source) float64 {
	by := r.RemoteBySource()
	var tot uint64
	for _, v := range by {
		tot += v
	}
	if tot == 0 {
		return 0
	}
	return 100 * float64(by[src]) / float64(tot)
}

// MarshalJSON renders a Table as a JSON object with id, title, header,
// rows, and notes — the machine-readable form behind `experiments -json`.
func (t Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Header, t.Rows, t.Notes})
}

// CSV renders the table as RFC-4180 CSV (header + rows).
func (t Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(t.Header)
	for _, r := range t.Rows {
		_ = w.Write(r)
	}
	w.Flush()
	return b.String()
}
