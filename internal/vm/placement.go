package vm

import "fmt"

// Placement implements the driver's zero-copy memory management model
// (§II-A): each allocation's pages are evenly partitioned into contiguous
// chunks, chunk i residing on GPM i ("pages 1-10 assigned to GPM 1, pages
// 11-20 to GPM 2, and so forth"). The split is balanced — GPM g owns pages
// [g*P/N, (g+1)*P/N) — which matches the paper's example exactly when N
// divides P and never leaves a GPM without pages when P >= N. The owner of
// any page is therefore computable from the VPN alone, which Trans-FW
// exploits to short-circuit walks directly to the owning GMMU.
//
// Placement also plays the role of the OS allocator: it hands out physical
// frames per GPM and populates the global page table (IOMMU) plus each GPM's
// local page table.
type Placement struct {
	NumGPMs  int
	PageSize PageSize

	global *PageTable   // every mapping; walked by the IOMMU
	local  []*PageTable // local[i]: mappings whose frames live on GPM i

	nextVPN VPN   // simple bump allocator for virtual pages
	nextPFN []PFN // per-GPM physical frame bump allocator

	// moved overlays migrated pages on the block-partition arithmetic.
	moved map[VPN]int

	regions []Region
}

// Region describes one allocation.
type Region struct {
	Name       string
	Start      VPN
	Pages      int
	ChunkPages int // average pages per GPM chunk (ceil), informational
}

// Contains reports whether v falls inside the region.
func (r Region) Contains(v VPN) bool {
	return v >= r.Start && v < r.Start+VPN(r.Pages)
}

// OwnerSlice returns the page-index range [lo, hi) of this region owned by
// GPM g under the balanced block partition. The intermediate products run
// in 64 bits: at giant-wafer scale (tens of thousands of GPMs times
// millions of pages) g*Pages overflows a 32-bit int.
func (r Region) OwnerSlice(g, numGPMs int) (lo, hi int) {
	return int(int64(g) * int64(r.Pages) / int64(numGPMs)),
		int(int64(g+1) * int64(r.Pages) / int64(numGPMs))
}

// ownerOfIndex inverts OwnerSlice for page index idx; 64-bit intermediates
// for the same reason.
func ownerOfIndex(idx, pages, numGPMs int) int {
	o := int((int64(idx+1)*int64(numGPMs) - 1) / int64(pages))
	if o >= numGPMs {
		o = numGPMs - 1
	}
	return o
}

// NewPlacement creates an allocator for a wafer with n GPMs.
func NewPlacement(n int, ps PageSize) *Placement {
	p := &Placement{
		NumGPMs:  n,
		PageSize: ps,
		global:   NewPageTable(),
		local:    make([]*PageTable, n),
		nextVPN:  1, // keep VPN 0 unmapped, as a guard
		nextPFN:  make([]PFN, n),
	}
	for i := range p.local {
		p.local[i] = NewPageTable()
		p.nextPFN[i] = PFN(uint64(i) << frameSpaceBits) // disjoint frame spaces per GPM
	}
	return p
}

// frameSpaceBits separates the per-GPM physical frame spaces: GPM i's bump
// allocator starts at i<<frameSpaceBits. 2^24 frames of 4K pages is 64 GB
// per GPM — far above any modelled HBM stack. takeFrame guards the
// boundary so a pathological allocation fails loudly instead of silently
// colliding with the next GPM's frames. (The width is part of the
// simulated physical address layout, which cache indexing observes, so it
// cannot be widened without perturbing every result.)
const frameSpaceBits = 24

// takeFrame hands out the next physical frame on the given GPM.
func (p *Placement) takeFrame(owner int) PFN {
	f := p.nextPFN[owner]
	if uint64(f) >= (uint64(owner)+1)<<frameSpaceBits {
		panic(fmt.Sprintf("vm: GPM %d exhausted its 2^%d-frame space", owner, frameSpaceBits))
	}
	p.nextPFN[owner]++
	return f
}

// Global returns the IOMMU's global page table.
func (p *Placement) Global() *PageTable { return p.global }

// Local returns GPM i's local page table (covers only its own HBM).
func (p *Placement) Local(i int) *PageTable { return p.local[i] }

// Regions returns all allocations made so far.
func (p *Placement) Regions() []Region { return p.regions }

// Alloc carves out an allocation of `pages` pages, partitions it evenly
// across the GPMs, installs all mappings, and returns the region. Page
// counts that do not divide evenly leave the last GPM with a short chunk,
// mirroring how a real driver rounds the split.
func (p *Placement) Alloc(name string, pages int, pid PID) Region {
	if pages <= 0 {
		panic("vm: allocation must have at least one page")
	}
	chunk := (pages + p.NumGPMs - 1) / p.NumGPMs
	r := Region{Name: name, Start: p.nextVPN, Pages: pages, ChunkPages: chunk}
	for i := 0; i < pages; i++ {
		v := r.Start + VPN(i)
		owner := ownerOfIndex(i, pages, p.NumGPMs)
		pte := PTE{VPN: v, PFN: p.takeFrame(owner), PID: pid, Owner: owner, Valid: true}
		p.global.Insert(pte)
		p.local[owner].Insert(pte)
	}
	p.nextVPN += VPN(pages)
	p.regions = append(p.regions, r)
	return r
}

// OwnerOf computes which GPM owns the frame backing v without walking any
// table, using the region arithmetic the driver exposes. ok is false for
// unmapped VPNs.
func (p *Placement) OwnerOf(v VPN) (int, bool) {
	if o, ok := p.moved[v]; ok {
		return o, true
	}
	for _, r := range p.regions {
		if r.Contains(v) {
			return ownerOfIndex(int(v-r.Start), r.Pages, p.NumGPMs), true
		}
	}
	return 0, false
}

// TotalPages returns the number of pages mapped across all regions.
func (p *Placement) TotalPages() int {
	n := 0
	for _, r := range p.regions {
		n += r.Pages
	}
	return n
}

// Free unmaps an entire region from the global table and every local
// table, returning the VPNs that were unmapped. The caller is responsible
// for the TLB shootdown that must follow (§II-A: freeing memory is the one
// operation that requires one).
func (p *Placement) Free(r Region) []VPN {
	var vpns []VPN
	for i := 0; i < r.Pages; i++ {
		v := r.Start + VPN(i)
		if p.global.Remove(v) {
			vpns = append(vpns, v)
		}
		owner := ownerOfIndex(i, r.Pages, p.NumGPMs)
		p.local[owner].Remove(v)
	}
	// Drop the region record so OwnerOf stops resolving it.
	for i := range p.regions {
		if p.regions[i].Start == r.Start && p.regions[i].Pages == r.Pages {
			p.regions = append(p.regions[:i], p.regions[i+1:]...)
			break
		}
	}
	return vpns
}

// Migrate moves page v's frame to GPM `to`: the global table is repointed
// at a fresh frame on the target, the old owner's local table drops the
// page, and the target's local table gains it. The ownership overlay keeps
// OwnerOf computable (migrated pages are exceptions to the block
// arithmetic, which is exactly why the paper's zero-copy model defers
// migration to future work). Returns the old and new PTEs.
func (p *Placement) Migrate(v VPN, to int) (old, new PTE, ok bool) {
	old, _, ok = p.global.Lookup(v)
	if !ok || old.Owner == to {
		return old, old, false
	}
	new = old
	new.Owner = to
	new.PFN = p.takeFrame(to)
	p.global.Insert(new)
	p.local[old.Owner].Remove(v)
	p.local[to].Insert(new)
	if p.moved == nil {
		p.moved = make(map[VPN]int)
	}
	p.moved[v] = to
	return old, new, true
}

// Migrated reports how many pages have been moved off their home chunk.
func (p *Placement) Migrated() int { return len(p.moved) }
