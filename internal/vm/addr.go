// Package vm models the virtual-memory substrate of the wafer-scale GPU:
// 64-bit virtual and physical addresses, page table entries, a five-level
// radix page table matching the paper's 100-cycles-per-level walk cost, and
// the zero-copy block placement that evenly partitions allocations across
// GPMs (§II-A).
package vm

import "fmt"

// VAddr is a virtual byte address.
type VAddr uint64

// PAddr is a physical byte address.
type PAddr uint64

// VPN is a virtual page number.
type VPN uint64

// PFN is a physical frame number.
type PFN uint64

// PID identifies a process / address space. The simulated GPU runs one
// kernel at a time, but the structures carry the PID because the redirection
// table stores (PID, VPN) pairs (§IV-F).
type PID uint32

// PageSize describes the system page size in bytes; must be a power of two.
type PageSize uint64

// Standard page sizes evaluated in Fig 20.
const (
	Page4K  PageSize = 4 << 10
	Page16K PageSize = 16 << 10
	Page64K PageSize = 64 << 10
)

// Shift returns log2 of the page size.
func (s PageSize) Shift() uint {
	sh := uint(0)
	for v := uint64(s); v > 1; v >>= 1 {
		sh++
	}
	return sh
}

// VPNOf extracts the virtual page number of a.
func (s PageSize) VPNOf(a VAddr) VPN { return VPN(uint64(a) >> s.Shift()) }

// Base returns the first byte address of page v.
func (s PageSize) Base(v VPN) VAddr { return VAddr(uint64(v) << s.Shift()) }

// Offset returns the in-page offset of a.
func (s PageSize) Offset(a VAddr) uint64 { return uint64(a) & (uint64(s) - 1) }

// Translate combines a frame number with the page offset of a.
func (s PageSize) Translate(a VAddr, f PFN) PAddr {
	return PAddr(uint64(f)<<s.Shift() | s.Offset(a))
}

// PTE is a page table entry. Owner records which GPM's HBM stack holds the
// frame, which the zero-copy model needs to route data accesses; hardware
// encodes this in the PFN range, we keep it explicit for clarity.
type PTE struct {
	VPN   VPN
	PFN   PFN
	PID   PID
	Owner int // GPM index owning the physical frame
	Valid bool
}

func (p PTE) String() string {
	return fmt.Sprintf("PTE{v:%#x p:%#x gpm:%d}", uint64(p.VPN), uint64(p.PFN), p.Owner)
}
