package vm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPageSize(t *testing.T) {
	cases := []struct {
		ps    PageSize
		shift uint
	}{{Page4K, 12}, {Page16K, 14}, {Page64K, 16}}
	for _, c := range cases {
		if c.ps.Shift() != c.shift {
			t.Errorf("%d shift = %d, want %d", c.ps, c.ps.Shift(), c.shift)
		}
		a := VAddr(0xdeadbeef)
		v := c.ps.VPNOf(a)
		if c.ps.Base(v) > a || a-c.ps.Base(v) >= VAddr(c.ps) {
			t.Errorf("%d VPN/Base roundtrip broken", c.ps)
		}
	}
}

func TestTranslatePreservesOffset(t *testing.T) {
	ps := Page4K
	a := VAddr(0x12345)
	pa := ps.Translate(a, PFN(7))
	if uint64(pa)&0xfff != uint64(a)&0xfff {
		t.Errorf("offset not preserved: %#x", pa)
	}
	if uint64(pa)>>12 != 7 {
		t.Errorf("frame not applied: %#x", pa)
	}
}

func TestPageTableInsertLookup(t *testing.T) {
	pt := NewPageTable()
	pt.Insert(PTE{VPN: 42, PFN: 100, Owner: 3})
	e, levels, ok := pt.Lookup(42)
	if !ok || e.PFN != 100 || e.Owner != 3 {
		t.Fatalf("lookup = %+v ok=%v", e, ok)
	}
	if levels != 5 {
		t.Errorf("successful walk touched %d levels, want 5", levels)
	}
	if pt.Len() != 1 {
		t.Errorf("Len = %d, want 1", pt.Len())
	}
}

func TestPageTableMissEarlyTermination(t *testing.T) {
	pt := NewPageTable()
	pt.Insert(PTE{VPN: 0})
	// A VPN differing in the top radix digit misses at level 1.
	far := VPN(1) << (9 * 4)
	_, levels, ok := pt.Lookup(far)
	if ok {
		t.Fatal("unexpected hit")
	}
	if levels != 1 {
		t.Errorf("early miss touched %d levels, want 1", levels)
	}
	// A neighbour in the same leaf misses only at the last level.
	_, levels, ok = pt.Lookup(1)
	if ok || levels != 5 {
		t.Errorf("leaf miss touched %d levels (ok=%v), want 5", levels, ok)
	}
}

func TestPageTableRemove(t *testing.T) {
	pt := NewPageTable()
	pt.Insert(PTE{VPN: 7, PFN: 9})
	if !pt.Remove(7) {
		t.Fatal("Remove returned false for mapped page")
	}
	if pt.Contains(7) {
		t.Fatal("page still mapped after Remove")
	}
	if pt.Remove(7) {
		t.Fatal("double Remove returned true")
	}
	if pt.Len() != 0 {
		t.Errorf("Len = %d after remove", pt.Len())
	}
}

func TestPageTableOverwrite(t *testing.T) {
	pt := NewPageTable()
	pt.Insert(PTE{VPN: 5, PFN: 1})
	pt.Insert(PTE{VPN: 5, PFN: 2})
	e, _, _ := pt.Lookup(5)
	if e.PFN != 2 || pt.Len() != 1 {
		t.Fatalf("overwrite: pfn=%d len=%d", e.PFN, pt.Len())
	}
}

func TestLeafSharing(t *testing.T) {
	pt := NewPageTable()
	if pt.LeafIndex(100) != pt.LeafIndex(103) {
		t.Error("adjacent VPNs should share a leaf")
	}
	if pt.LeafIndex(511) == pt.LeafIndex(512) {
		t.Error("VPNs across a 512 boundary should not share a leaf")
	}
}

// Property: insert-then-lookup roundtrips for arbitrary VPN/PFN pairs, and
// lookups of never-inserted VPNs miss.
func TestPageTableProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pt := NewPageTable()
		ref := map[VPN]PFN{}
		for i := 0; i < 500; i++ {
			v := VPN(rng.Uint64() & 0x1fffffffff) // 37 bits < 45-bit space
			p := PFN(rng.Uint64())
			pt.Insert(PTE{VPN: v, PFN: p})
			ref[v] = p
		}
		for v, p := range ref {
			e, _, ok := pt.Lookup(v)
			if !ok || e.PFN != p {
				return false
			}
		}
		if pt.Len() != len(ref) {
			return false
		}
		for i := 0; i < 100; i++ {
			v := VPN(rng.Uint64())
			if _, present := ref[v]; !present && pt.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPlacementPartition(t *testing.T) {
	p := NewPlacement(48, Page4K)
	r := p.Alloc("buf", 480, 0)
	if r.ChunkPages != 10 {
		t.Fatalf("chunk = %d, want 10", r.ChunkPages)
	}
	// Paper's example: pages 0-9 -> GPM 0, 10-19 -> GPM 1, ...
	for i := 0; i < 480; i++ {
		v := r.Start + VPN(i)
		owner, ok := p.OwnerOf(v)
		if !ok || owner != i/10 {
			t.Fatalf("page %d owner = %d (ok=%v), want %d", i, owner, ok, i/10)
		}
		e, _, ok := p.Global().Lookup(v)
		if !ok || e.Owner != owner {
			t.Fatalf("global table owner mismatch for page %d", i)
		}
		if !p.Local(owner).Contains(v) {
			t.Fatalf("local table of GPM %d missing page %d", owner, i)
		}
		// No other GPM's local table has it.
		other := (owner + 1) % 48
		if p.Local(other).Contains(v) {
			t.Fatalf("page %d leaked into GPM %d's local table", i, other)
		}
	}
}

func TestPlacementUnevenSplit(t *testing.T) {
	p := NewPlacement(4, Page4K)
	r := p.Alloc("odd", 10, 0)
	counts := make([]int, 4)
	for i := 0; i < 10; i++ {
		o, _ := p.OwnerOf(r.Start + VPN(i))
		counts[o]++
	}
	// Balanced split: no GPM differs from another by more than one page,
	// and ownership agrees with OwnerSlice.
	for g := 0; g < 4; g++ {
		lo, hi := r.OwnerSlice(g, 4)
		if counts[g] != hi-lo {
			t.Fatalf("GPM %d owns %d pages, OwnerSlice says %d", g, counts[g], hi-lo)
		}
		if counts[g] < 2 || counts[g] > 3 {
			t.Fatalf("unbalanced counts %v", counts)
		}
	}
}

func TestOwnerSliceCoversRegion(t *testing.T) {
	for _, pages := range []int{48, 100, 255, 4801} {
		r := Region{Start: 1, Pages: pages}
		prev := 0
		for g := 0; g < 48; g++ {
			lo, hi := r.OwnerSlice(g, 48)
			if lo != prev {
				t.Fatalf("pages=%d gpm=%d slice gap: lo=%d prev=%d", pages, g, lo, prev)
			}
			if pages >= 48 && hi <= lo {
				t.Fatalf("pages=%d gpm=%d empty slice", pages, g)
			}
			prev = hi
		}
		if prev != pages {
			t.Fatalf("pages=%d slices end at %d", pages, prev)
		}
	}
}

func TestPlacementDisjointFrames(t *testing.T) {
	p := NewPlacement(8, Page4K)
	p.Alloc("a", 100, 0)
	p.Alloc("b", 100, 0)
	seen := map[PFN]bool{}
	for _, r := range p.Regions() {
		for i := 0; i < r.Pages; i++ {
			e, _, ok := p.Global().Lookup(r.Start + VPN(i))
			if !ok {
				t.Fatalf("unmapped page in region %s", r.Name)
			}
			if seen[e.PFN] {
				t.Fatalf("frame %d double-allocated", e.PFN)
			}
			seen[e.PFN] = true
		}
	}
}

func TestPlacementOwnerOfUnmapped(t *testing.T) {
	p := NewPlacement(4, Page4K)
	p.Alloc("a", 8, 0)
	if _, ok := p.OwnerOf(VPN(1 << 40)); ok {
		t.Error("OwnerOf returned ok for unmapped page")
	}
	if p.Global().Contains(0) {
		t.Error("guard VPN 0 should be unmapped")
	}
}

// Property: OwnerOf always agrees with the global page table.
func TestPlacementOwnerAgreesWithTable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewPlacement(rng.Intn(47)+2, Page4K)
		for a := 0; a < 3; a++ {
			p.Alloc("r", rng.Intn(500)+1, 0)
		}
		for _, r := range p.Regions() {
			for i := 0; i < r.Pages; i++ {
				v := r.Start + VPN(i)
				o1, ok1 := p.OwnerOf(v)
				e, _, ok2 := p.Global().Lookup(v)
				if !ok1 || !ok2 || o1 != e.Owner {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPlacementFree(t *testing.T) {
	p := NewPlacement(8, Page4K)
	r := p.Alloc("buf", 64, 0)
	keep := p.Alloc("keep", 16, 0)
	vpns := p.Free(r)
	if len(vpns) != 64 {
		t.Fatalf("freed %d pages, want 64", len(vpns))
	}
	for _, v := range vpns {
		if p.Global().Contains(v) {
			t.Fatalf("page %d still globally mapped", v)
		}
		if _, ok := p.OwnerOf(v); ok {
			t.Fatalf("OwnerOf still resolves freed page %d", v)
		}
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < r.Pages; j++ {
			if p.Local(i).Contains(r.Start + VPN(j)) {
				t.Fatalf("GPM %d local table still maps freed page", i)
			}
		}
	}
	// Other regions untouched.
	if !p.Global().Contains(keep.Start) {
		t.Error("unrelated region was freed")
	}
	// Double free is a no-op.
	if len(p.Free(r)) != 0 {
		t.Error("double free returned pages")
	}
}

func TestPlacementMigrate(t *testing.T) {
	p := NewPlacement(8, Page4K)
	r := p.Alloc("buf", 64, 0)
	v := r.Start + 5
	oldOwner, _ := p.OwnerOf(v)
	target := (oldOwner + 3) % 8
	old, moved, ok := p.Migrate(v, target)
	if !ok {
		t.Fatal("migrate failed")
	}
	if old.Owner != oldOwner || moved.Owner != target {
		t.Fatalf("owners: old=%d moved=%d", old.Owner, moved.Owner)
	}
	if old.PFN == moved.PFN {
		t.Error("migrated page kept its frame")
	}
	if got, _ := p.OwnerOf(v); got != target {
		t.Errorf("OwnerOf = %d, want %d (overlay)", got, target)
	}
	e, _, _ := p.Global().Lookup(v)
	if e.Owner != target || e.PFN != moved.PFN {
		t.Errorf("global PTE %+v", e)
	}
	if p.Local(oldOwner).Contains(v) || !p.Local(target).Contains(v) {
		t.Error("local tables not repointed")
	}
	if p.Migrated() != 1 {
		t.Errorf("Migrated = %d", p.Migrated())
	}
	// Migrating to the current owner is a no-op.
	if _, _, ok := p.Migrate(v, target); ok {
		t.Error("self-migration succeeded")
	}
	// Migrating an unmapped page fails.
	if _, _, ok := p.Migrate(VPN(1<<40), 0); ok {
		t.Error("migrated unmapped page")
	}
}

func TestPlacementTotalPagesAndStringers(t *testing.T) {
	p := NewPlacement(4, Page4K)
	p.Alloc("a", 10, 0)
	p.Alloc("b", 6, 0)
	if p.TotalPages() != 16 {
		t.Errorf("TotalPages = %d", p.TotalPages())
	}
	pte := PTE{VPN: 1, PFN: 2, Owner: 3}
	if pte.String() == "" {
		t.Error("PTE.String empty")
	}
	if NewPageTable().Levels() != 5 {
		t.Error("Levels != 5")
	}
}

// Each GPM's frame space is 2^frameSpaceBits frames; the bump allocator
// must refuse to cross into the next GPM's space rather than silently
// handing out colliding frames.
func TestFrameSpaceExhaustionGuard(t *testing.T) {
	p := NewPlacement(4, Page4K)
	// Frames for GPM 2 start at 2<<frameSpaceBits; pretend all but one
	// have been handed out.
	p.nextPFN[2] = PFN(uint64(3)<<frameSpaceBits - 1)
	if f := p.takeFrame(2); uint64(f) != uint64(3)<<frameSpaceBits-1 {
		t.Fatalf("last frame = %#x", uint64(f))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("takeFrame past the frame-space boundary did not panic")
		}
	}()
	p.takeFrame(2)
}

// The block-partition arithmetic must stay exact at giant-wafer scale:
// every page has exactly one owner, OwnerSlice tiles the index space with
// no gaps or overlaps, and ownerOfIndex inverts it.
func TestOwnerSliceTilesAtScale(t *testing.T) {
	const numGPMs = 899 // 30x30 wafer minus the CPU tile
	const pages = 1 << 20
	next := 0
	for g := 0; g < numGPMs; g++ {
		lo, hi := Region{Pages: pages}.OwnerSlice(g, numGPMs)
		if lo != next {
			t.Fatalf("GPM %d slice starts at %d, want %d", g, lo, next)
		}
		if hi < lo {
			t.Fatalf("GPM %d slice inverted: [%d,%d)", g, lo, hi)
		}
		next = hi
		// Spot-check inversion at the slice edges.
		if lo < hi {
			if o := ownerOfIndex(lo, pages, numGPMs); o != g {
				t.Fatalf("ownerOfIndex(%d) = %d, want %d", lo, o, g)
			}
			if o := ownerOfIndex(hi-1, pages, numGPMs); o != g {
				t.Fatalf("ownerOfIndex(%d) = %d, want %d", hi-1, o, g)
			}
		}
	}
	if next != pages {
		t.Fatalf("slices cover %d pages, want %d", next, pages)
	}
}
