package vm

// PageTable is a five-level radix page table, the structure both the GMMUs
// and the IOMMU walk. Each level resolves 9 bits of the VPN (as in x86-64
// with LA57), so a walk touches five levels; the paper charges 100 cycles of
// memory access per level for a 500-cycle total walk (Table I).
//
// The table is a real radix tree rather than a flat map so that walk cost
// accounting (levels touched, shared interior nodes for adjacent VPNs) falls
// out of the structure — in particular, the prefetcher's claim that adjacent
// PTEs live in the same leaf node is directly observable via LeafIndex.
type PageTable struct {
	root   *node
	size   int
	levels int
}

const (
	radixBits = 9
	radixFan  = 1 << radixBits
	radixMask = radixFan - 1
)

type node struct {
	children [radixFan]*node // interior levels
	entries  []PTE           // leaf level, allocated lazily
}

// NewPageTable creates an empty 5-level table.
func NewPageTable() *PageTable {
	return &PageTable{root: &node{}, levels: 5}
}

// Levels returns the number of radix levels a walk traverses.
func (t *PageTable) Levels() int { return t.levels }

// Len returns the number of valid mappings.
func (t *PageTable) Len() int { return t.size }

func (t *PageTable) indices(v VPN) [5]int {
	var idx [5]int
	x := uint64(v)
	for l := t.levels - 1; l >= 0; l-- {
		idx[l] = int(x & radixMask)
		x >>= radixBits
	}
	return idx
}

// Insert maps v. Replacing an existing mapping is allowed.
func (t *PageTable) Insert(pte PTE) {
	idx := t.indices(pte.VPN)
	n := t.root
	for l := 0; l < t.levels-1; l++ {
		c := n.children[idx[l]]
		if c == nil {
			c = &node{}
			if l == t.levels-2 {
				c.entries = make([]PTE, radixFan)
			}
			n.children[idx[l]] = c
		}
		n = c
	}
	slot := &n.entries[idx[t.levels-1]]
	if !slot.Valid {
		t.size++
	}
	pte.Valid = true
	*slot = pte
}

// Lookup walks the table and returns the entry for v. levels reports how
// many radix levels were touched before the walk resolved or failed — a
// missing interior node terminates the walk early, exactly as hardware does.
func (t *PageTable) Lookup(v VPN) (pte PTE, levels int, ok bool) {
	idx := t.indices(v)
	n := t.root
	for l := 0; l < t.levels-1; l++ {
		levels++
		c := n.children[idx[l]]
		if c == nil {
			return PTE{}, levels, false
		}
		n = c
	}
	levels++
	e := n.entries[idx[t.levels-1]]
	if !e.Valid {
		return PTE{}, levels, false
	}
	return e, levels, true
}

// Contains reports whether v is mapped.
func (t *PageTable) Contains(v VPN) bool {
	_, _, ok := t.Lookup(v)
	return ok
}

// Remove unmaps v and reports whether it was present. Interior nodes are not
// reclaimed; unmap traffic is negligible in this model (§II-A: no page
// migration, shootdown only at free).
func (t *PageTable) Remove(v VPN) bool {
	idx := t.indices(v)
	n := t.root
	for l := 0; l < t.levels-1; l++ {
		c := n.children[idx[l]]
		if c == nil {
			return false
		}
		n = c
	}
	slot := &n.entries[idx[t.levels-1]]
	if !slot.Valid {
		return false
	}
	slot.Valid = false
	t.size--
	return true
}

// LeafIndex returns a key identifying the leaf node v resides in; two VPNs
// with equal LeafIndex share a leaf page-table page, so walking one brings
// the other's PTE into the same memory access. The prefetcher (§IV-G)
// exploits this: fetching N..N+3 after walking N costs one extra leaf read,
// not four walks.
func (t *PageTable) LeafIndex(v VPN) uint64 {
	return uint64(v) >> radixBits
}
