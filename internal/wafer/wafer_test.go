package wafer

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"hdpat/internal/config"
	"hdpat/internal/iommu"
	"hdpat/internal/sim"
	"hdpat/internal/workload"
	"hdpat/internal/xlat"
)

// smallConfig shrinks the system so integration tests stay fast: a 5x5
// wafer with 8 CUs per GPM.
func smallConfig() config.System {
	cfg := config.Default()
	cfg.MeshW, cfg.MeshH = 5, 5
	cfg.GPM.NumCUs = 8
	cfg.WorkloadScale = 32
	return cfg
}

func mustRun(t *testing.T, scheme, bench string, budget int) Result {
	t.Helper()
	cfg, err := ConfigFor(scheme, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.ByAbbr(bench)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, Options{Scheme: scheme, Benchmark: b, OpsBudget: budget, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBaselineRunCompletes(t *testing.T) {
	res := mustRun(t, "baseline", "SPMV", 48)
	if res.Cycles == 0 {
		t.Fatal("zero execution time")
	}
	if res.TotalOps == 0 {
		t.Fatal("no ops generated")
	}
	var issued, completed uint64
	for _, s := range res.GPMStats {
		issued += s.OpsIssued
		completed += s.OpsCompleted
	}
	if issued != res.TotalOps || completed != res.TotalOps {
		t.Fatalf("ops: total=%d issued=%d completed=%d", res.TotalOps, issued, completed)
	}
	if res.IOMMU.Walks == 0 {
		t.Error("SPMV produced no IOMMU walks under baseline")
	}
	if res.NoC.Messages == 0 {
		t.Error("no mesh traffic")
	}
	// Baseline serves all remote translations at the IOMMU.
	if f := res.OffloadFraction(); f != 0 {
		t.Errorf("baseline offload fraction = %f, want 0", f)
	}
}

func TestAllSchemesComplete(t *testing.T) {
	for _, scheme := range SchemeNames() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			res := mustRun(t, scheme, "PR", 32)
			if res.Cycles == 0 {
				t.Fatalf("%s: zero cycles", scheme)
			}
			var completed uint64
			for _, s := range res.GPMStats {
				completed += s.OpsCompleted
			}
			if completed != res.TotalOps {
				t.Fatalf("%s completed %d of %d ops", scheme, completed, res.TotalOps)
			}
		})
	}
}

func TestHDPATOffloadsTranslations(t *testing.T) {
	res := mustRun(t, "hdpat", "PR", 48)
	if res.RemoteRequests() == 0 {
		t.Skip("PR produced no remote translations at this scale")
	}
	f := res.OffloadFraction()
	if f <= 0.05 {
		t.Errorf("HDPAT offload fraction = %.3f; expected meaningful offload on PR", f)
	}
	by := res.RemoteBySource()
	if by[xlat.SourcePeer]+by[xlat.SourceProactive]+by[xlat.SourceRedirect] == 0 {
		t.Error("no translations served by peer/proactive/redirect")
	}
}

func TestHDPATBeatsBaselineOnReuseHeavyWorkload(t *testing.T) {
	base := mustRun(t, "baseline", "PR", 48)
	hd := mustRun(t, "hdpat", "PR", 48)
	sp := hd.Speedup(base)
	if sp < 1.0 {
		t.Errorf("HDPAT speedup on PR = %.3f, want >= 1.0 (base %d vs hdpat %d cycles)",
			sp, base.Cycles, hd.Cycles)
	}
}

func TestHDPATReducesRemoteLatency(t *testing.T) {
	base := mustRun(t, "baseline", "SPMV", 48)
	hd := mustRun(t, "hdpat", "SPMV", 48)
	if base.AvgRemoteLatency() == 0 {
		t.Skip("no remote translations")
	}
	ratio := hd.AvgRemoteLatency() / base.AvgRemoteLatency()
	if ratio > 1.1 {
		t.Errorf("HDPAT remote latency ratio = %.2f, want <= 1.1", ratio)
	}
}

func TestDeterminism(t *testing.T) {
	a := mustRun(t, "hdpat", "KM", 32)
	b := mustRun(t, "hdpat", "KM", 32)
	if a.Cycles != b.Cycles {
		t.Errorf("nondeterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
	if a.IOMMU.Walks != b.IOMMU.Walks {
		t.Errorf("nondeterministic walks: %d vs %d", a.IOMMU.Walks, b.IOMMU.Walks)
	}
	if a.NoC.Messages != b.NoC.Messages {
		t.Errorf("nondeterministic traffic: %d vs %d messages", a.NoC.Messages, b.NoC.Messages)
	}
}

// Every scheme must return the frame the global page table maps, for every
// remote translation it serves — peer caches, redirection, prefetch and
// owner walks included.
func TestTranslationCorrectnessAllSchemes(t *testing.T) {
	for _, scheme := range SchemeNames() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			cfg, err := ConfigFor(scheme, smallConfig())
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(cfg, Options{
				Scheme: scheme, Benchmark: mustBench(t, "SPMV"),
				OpsBudget: 32, Seed: 2, Validate: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.ValidationErrors) > 0 {
				t.Fatalf("%d wrong translations, first: %s",
					len(res.ValidationErrors), res.ValidationErrors[0])
			}
			if res.RemoteRequests() == 0 {
				t.Skip("no remote translations to validate")
			}
		})
	}
}

func TestConfigForRejectsUnknown(t *testing.T) {
	if _, err := ConfigFor("nope", smallConfig()); !errors.Is(err, ErrUnknownScheme) {
		t.Errorf("ConfigFor err = %v, want ErrUnknownScheme", err)
	}
	if _, err := Run(smallConfig(), Options{Scheme: "nope", Benchmark: mustBench(t, "PR")}); !errors.Is(err, ErrUnknownScheme) {
		t.Errorf("Run err = %v, want ErrUnknownScheme", err)
	}
}

// TestRunContextCancellation: a cancelled context aborts the engine between
// slices, and RunContext with a live context matches Run exactly.
func TestRunContextCancellation(t *testing.T) {
	cfg, _ := ConfigFor("baseline", smallConfig())
	opts := Options{Scheme: "baseline", Benchmark: mustBench(t, "PR"), OpsBudget: 24, Seed: 1}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, cfg, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunContext err = %v, want context.Canceled", err)
	}

	got, err := RunContext(context.Background(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("RunContext result differs from Run")
	}
}

func mustBench(t *testing.T, abbr string) workload.Benchmark {
	t.Helper()
	b, err := workload.ByAbbr(abbr)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestQueueAndServedSeries(t *testing.T) {
	cfg, _ := ConfigFor("baseline", smallConfig())
	res, err := Run(cfg, Options{
		Scheme: "baseline", Benchmark: mustBench(t, "SPMV"),
		OpsBudget: 32, Seed: 1, QueueWindow: 10000, ServedWindow: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueSeries == nil || res.QueueSeries.Len() == 0 {
		t.Error("queue series not recorded")
	}
	if res.ServedSeries == nil || res.ServedSeries.Peak() == 0 {
		t.Error("served series not recorded")
	}
}

func TestHooksSeeRequests(t *testing.T) {
	cfg, _ := ConfigFor("baseline", smallConfig())
	seen := 0
	res, err := Run(cfg, Options{
		Scheme: "baseline", Benchmark: mustBench(t, "SPMV"),
		OpsBudget: 32, Seed: 1,
		Hooks: []iommu.RequestHook{iommu.RequestHookFunc(
			func(now sim.VTime, req *xlat.Request) { seen++ })},
	})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(seen) != res.IOMMU.Requests {
		t.Errorf("hook saw %d, IOMMU counted %d", seen, res.IOMMU.Requests)
	}
	if seen == 0 {
		t.Error("hook saw nothing")
	}
}

func TestGPMPositionImbalanceExists(t *testing.T) {
	// O2: central GPMs should finish no later than corner GPMs on a
	// translation-heavy workload under the baseline.
	res := mustRun(t, "baseline", "SPMV", 48)
	var centerSum, cornerSum sim.VTime
	var centerN, cornerN int
	for i, c := range res.GPMCoords {
		switch c.Chebyshev(res.GPMCoords[0]) {
		default:
		}
		ring := maxAbs(c.X-2, c.Y-2) // 5x5 CPU at (2,2)
		if ring == 1 {
			centerSum += res.GPMFinish[i]
			centerN++
		}
		if ring == 2 {
			cornerSum += res.GPMFinish[i]
			cornerN++
		}
	}
	if centerN == 0 || cornerN == 0 {
		t.Fatal("ring classification failed")
	}
	center := float64(centerSum) / float64(centerN)
	corner := float64(cornerSum) / float64(cornerN)
	if center > corner*1.05 {
		t.Errorf("central GPMs slower than peripheral: center=%.0f corner=%.0f", center, corner)
	}
}

func maxAbs(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}
