// Package wafer assembles a complete simulated system — mesh, GPMs, IOMMU,
// placement, translation scheme, workload traces — runs it to completion
// and returns a Result with everything the evaluation figures need.
package wafer

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hdpat/internal/attr"
	"hdpat/internal/check"
	"hdpat/internal/config"
	"hdpat/internal/core"
	"hdpat/internal/geom"
	"hdpat/internal/gpm"
	"hdpat/internal/iommu"
	"hdpat/internal/metrics"
	"hdpat/internal/migrate"
	"hdpat/internal/noc"
	"hdpat/internal/schemes"
	"hdpat/internal/sim"
	"hdpat/internal/stats"
	"hdpat/internal/tlb"
	"hdpat/internal/trace"
	"hdpat/internal/vm"
	"hdpat/internal/workload"
	"hdpat/internal/xlat"
)

// ErrUnknownScheme is returned (wrapped with the offending name) when a
// scheme is not one of SchemeNames(); match it with errors.Is.
var ErrUnknownScheme = errors.New("unknown scheme")

// SchemeNames lists every runnable scheme.
func SchemeNames() []string {
	return []string{
		"baseline", "route", "concentric", "distributed", "cluster",
		"redirect", "prefetch", "hdpat", "transfw", "valkyrie", "barre",
		"iommutlb", "ownerfw",
	}
}

// ConfigFor returns base with its IOMMU configured as the named scheme
// requires (redirection table, revisit, prefetch degree). Callers may
// further override individual fields afterwards (sensitivity sweeps).
func ConfigFor(scheme string, base config.System) (config.System, error) {
	io := base.IOMMU
	io.RedirectEntries = 0
	io.Revisit = false
	io.PrefetchDegree = 1
	io.UseTLB = false
	switch scheme {
	case "baseline", "route", "concentric", "distributed", "cluster", "valkyrie", "ownerfw":
	case "transfw":
		// Remote forwarding short-circuits the cross-wafer pointer chases
		// of the walk's leaf levels (see schemes.TransFW).
		io.WalkCycles = io.WalkCycles * 3 / 5
	case "barre":
		io.Revisit = true
	case "redirect":
		io.RedirectEntries = 1024
		io.Revisit = true
	case "prefetch":
		io.PrefetchDegree = 4
	case "hdpat":
		io.RedirectEntries = 1024
		io.Revisit = true
		io.PrefetchDegree = 4
	case "iommutlb":
		io.UseTLB = true
		io.Revisit = true
		io.PrefetchDegree = 4
	default:
		return base, fmt.Errorf("wafer: %w %q", ErrUnknownScheme, scheme)
	}
	base.IOMMU = io
	return base, nil
}

// Options parameterise one run.
type Options struct {
	Scheme    string
	Benchmark workload.Benchmark
	// OpsBudget is the approximate per-CU operation count (default 96).
	OpsBudget int
	Seed      int64
	// MaxCycles aborts runaway simulations (default 200M cycles).
	MaxCycles sim.VTime
	// QueueWindow, when nonzero, attaches a max-depth IOMMU queue series
	// with this window (Fig 4).
	QueueWindow uint64
	// ServedWindow, when nonzero, attaches a count series of IOMMU-arriving
	// requests with this window (Fig 13).
	ServedWindow uint64
	// Hooks see every request arriving at the IOMMU, in order
	// (characterisation figures attach trackers). Replaces the former
	// single-callback Observer field.
	Hooks []iommu.RequestHook
	// Metrics, when non-nil, has every component report into it
	// (sim.*, noc.*, tlb.*, iommu.*, gpm.*, migrate.* series); the run's
	// final snapshot lands on Result.Metrics. Nil costs one branch per
	// instrumented hot-path site.
	Metrics *metrics.Registry
	// Trace, when non-nil, receives cycle-domain spans (IOMMU walks and
	// queueing, NoC hops, migrations). Tracing only observes; a traced run
	// is cycle-for-cycle identical to an untraced one.
	Trace *trace.Tracer
	// Attribution, when non-nil, attaches the per-request latency ledger
	// (internal/attr): the run's Breakdown lands on Result.Breakdown. Works
	// with or without Trace; like the other observers it never perturbs
	// results.
	Attribution *attr.Config
	// Validate cross-checks every remote translation result against the
	// global page table and records mismatches in Result.ValidationErrors.
	// Intended for tests; adds a lookup per remote translation. Do not
	// combine with Migration: in-flight completions legitimately race the
	// table repoint.
	Validate bool
	// Invariants attaches the internal/check invariant checker through the
	// observation seams (request hook, trace sink, sampler, link visitor):
	// conservation violations come back as errors naming the invariant,
	// request and cycle, joined onto the run error. Results are
	// byte-identical with the checker on or off. With Migration enabled the
	// per-translation PFN check is skipped (legitimate races); the
	// conservation checks still run.
	Invariants bool
	// Migration, when non-nil, enables the page-migration extension with
	// the given policy (see internal/migrate).
	Migration *migrate.Config
	// Domains shards the simulation across n spatial mesh domains executing
	// on parallel goroutines under the conservative window protocol of
	// internal/sim (lookahead = the NoC hop latency). 0 or 1 runs serially.
	// Results are bit-identical to serial. Runs that attach observers
	// (Metrics, Trace, Attribution, Invariants, Validate, Hooks), enable
	// Migration, use deflection routing (same-cycle output arbitration is
	// cross-domain), or use a scheme whose protocol reads completion state
	// across domains mid-window (route, concentric, distributed) fall back
	// to serial automatically.
	Domains int
	// Routing, when non-empty, overrides cfg.NoC.Routing for this run:
	// noc.RoutingXY (dimension-ordered, minimal) or noc.RoutingDeflect
	// (bufferless deflection). Validated with the configuration.
	Routing string
}

// Result is everything a run produces.
type Result struct {
	Scheme    string
	Benchmark string
	Cycles    sim.VTime

	GPMCoords []geom.Coord
	GPMFinish []sim.VTime
	GPMStats  []gpm.Stats

	IOMMU iommu.Stats
	NoC   noc.Stats

	QueueSeries  *stats.TimeSeries
	ServedSeries *stats.TimeSeries

	TotalOps uint64

	// Events is the number of discrete events the kernel dispatched for
	// this run — the denominator of events-per-second throughput
	// reporting (see docs/performance.md).
	Events uint64

	// AuxLen and AuxStats aggregate the auxiliary caches across GPMs at the
	// end of the run (diagnostics).
	AuxLen   int
	AuxStats tlb.Stats

	// ValidationErrors holds translation-correctness violations found when
	// Options.Validate is set (nil/empty means every remote translation
	// returned the frame the global page table maps).
	ValidationErrors []string

	// Migration reports page-migration activity when the extension is on.
	Migration migrate.Stats

	// Metrics is the run's final registry snapshot when Options.Metrics was
	// set (nil otherwise).
	Metrics *metrics.Snapshot

	// Breakdown is the per-request latency attribution when
	// Options.Attribution was set (nil otherwise).
	Breakdown *attr.Breakdown
}

// RemoteBySource aggregates per-source remote translation counts.
func (r Result) RemoteBySource() [xlat.NumSources]uint64 {
	var out [xlat.NumSources]uint64
	for i := range r.GPMStats {
		for s := 0; s < xlat.NumSources; s++ {
			out[s] += r.GPMStats[i].RemoteBySource[s]
		}
	}
	return out
}

// RemoteRequests returns total remote translation requests.
func (r Result) RemoteRequests() uint64 {
	var n uint64
	for i := range r.GPMStats {
		n += r.GPMStats[i].RemoteRequests
	}
	return n
}

// OffloadFraction returns the share of remote translations served without
// an IOMMU walk (the paper's 42.1 % metric).
func (r Result) OffloadFraction() float64 {
	by := r.RemoteBySource()
	var off, tot uint64
	for s := 0; s < xlat.NumSources; s++ {
		tot += by[s]
		if xlat.Source(s).Offloaded() {
			off += by[s]
		}
	}
	if tot == 0 {
		return 0
	}
	return float64(off) / float64(tot)
}

// AvgRemoteLatency returns the mean remote translation round-trip in cycles
// (Fig 17).
func (r Result) AvgRemoteLatency() float64 {
	var sum, n uint64
	for i := range r.GPMStats {
		sum += r.GPMStats[i].RemoteLatencySum
		n += r.GPMStats[i].RemoteRequests
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Speedup returns base.Cycles / r.Cycles.
func (r Result) Speedup(base Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// Run builds and executes one simulation. It is RunContext with a
// background context.
func Run(cfg config.System, opts Options) (Result, error) {
	return RunContext(context.Background(), cfg, opts)
}

// ctxCheckInterval is how many simulated cycles RunContext executes between
// cancellation checks. Small enough that cancellation lands promptly even on
// short runs; large enough that the per-check cost vanishes in the noise.
const ctxCheckInterval = 1 << 16

// runEngine executes events with time <= limit, checking ctx between
// slices of at most ctxCheckInterval cycles. Slicing does not perturb event
// order, so results are identical to a single RunUntil(limit) call.
func runEngine(ctx context.Context, eng *sim.Engine, limit sim.VTime) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		next, ok := eng.NextTime()
		if !ok {
			return nil
		}
		if next > limit {
			// The run logically advanced to limit even though no event at or
			// before it remains: close out any sampler windows in
			// (last event, limit] that the sliced RunUntil calls never saw.
			eng.FlushSamples(limit)
			return nil
		}
		slice := next + ctxCheckInterval
		if slice > limit || slice < next { // min(limit, ...), overflow-safe
			slice = limit
		}
		eng.RunUntil(slice)
	}
}

// errHazard is the internal signal that a sharded run hit a same-cycle
// cross-domain race on the one zero-lookahead seam (the IOMMU's dispatch
// skip-check reading a requester-domain completion): its results cannot be
// proven identical to serial, so the caller discards them and reruns
// serially, which is always exact.
var errHazard = errors.New("wafer: sharded run completion hazard")

// shardable reports whether cfg/opts can run domain-sharded with
// bit-identical results. Observers are rejected because their callbacks and
// samplers assume one global event order mid-run; deflection routing
// arbitrates same-cycle output contention, which a neighbouring domain can
// influence inside the lookahead window; route/concentric/distributed poll
// request completion across domains mid-window; MaxCycles must fit the
// hazard detector's 32-bit cycle packing.
func shardable(cfg config.System, opts Options) bool {
	if opts.Metrics != nil || opts.Trace != nil || opts.Attribution != nil ||
		opts.Invariants || opts.Validate || opts.Migration != nil || len(opts.Hooks) > 0 {
		return false
	}
	if cfg.NoC.Routing == noc.RoutingDeflect {
		return false
	}
	switch opts.Scheme {
	case "route", "concentric", "distributed":
		return false
	}
	return opts.MaxCycles < 1<<32
}

// partitionTiles splits the mesh into nd contiguous bands along its larger
// dimension — the partition that minimises boundary links (and therefore
// cross-domain traffic) on a rectangular mesh.
func partitionTiles(mesh *geom.Mesh, nd int) []int32 {
	dom := make([]int32, mesh.NumTiles())
	for i := range dom {
		c := mesh.CoordOf(i)
		if mesh.H >= mesh.W {
			dom[i] = int32(c.Y * nd / mesh.H)
		} else {
			dom[i] = int32(c.X * nd / mesh.W)
		}
	}
	return dom
}

// RunContext builds and executes one simulation, aborting with ctx.Err()
// when ctx is cancelled mid-run (checked between engine slices; a cancelled
// run returns a zero Result).
func RunContext(ctx context.Context, cfg config.System, opts Options) (Result, error) {
	if opts.Routing != "" {
		cfg.NoC.Routing = opts.Routing
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	// Keep footprint:capacity ratios at their Table II values (see
	// config.ApplyScale).
	cfg = cfg.ApplyScale()
	if opts.OpsBudget <= 0 {
		opts.OpsBudget = 96
	}
	if opts.MaxCycles == 0 {
		opts.MaxCycles = 200_000_000
	}
	if opts.Scheme == "" {
		opts.Scheme = "baseline"
	}
	nd := opts.Domains
	if nd > 1 && shardable(cfg, opts) {
		// More domains than bands along the partition axis leaves engines
		// with no tiles.
		if m := max(cfg.MeshW, cfg.MeshH); nd > m {
			nd = m
		}
	} else {
		nd = 1
	}
	res, err := run(ctx, cfg, opts, nd)
	if errors.Is(err, errHazard) {
		res, err = run(ctx, cfg, opts, 1)
	}
	return res, err
}

// run builds and executes one simulation over nd domains (1 = the serial
// kernel).
func run(ctx context.Context, cfg config.System, opts Options, nd int) (Result, error) {
	mesh := geom.NewMesh(cfg.MeshW, cfg.MeshH)
	layout := geom.NewLayout(mesh)

	// nd > 1: per-domain engines under the window coordinator, with the NoC
	// hop latency as the conservative lookahead. Construction runs in the
	// coordinator's setup mode (single-threaded, globally sequenced), so
	// start-of-run events carry their serial keys.
	var coord *sim.Domains
	var tileDom []int32
	eng := sim.NewEngine()
	if nd > 1 {
		coord = sim.NewDomains(nd, cfg.NoC.HopLatency)
		tileDom = partitionTiles(mesh, nd)
		eng = coord.Engine(0)
	}
	engAt := func(c geom.Coord) *sim.Engine {
		if coord == nil {
			return eng
		}
		return coord.Engine(int(tileDom[mesh.NodeID(c)]))
	}
	network := noc.New(eng, mesh, cfg.NoC)
	if coord != nil {
		network.Shard(coord.Engines(), tileDom)
	}
	numGPMs := mesh.NumGPMs()

	reg := opts.Metrics
	if reg != nil {
		eng.AttachMetrics(reg)
		network.AttachMetrics(reg)
	}
	// The attribution ledger rides the tracer seam: Attach fans typed spans
	// out to the collector (sink-only when no trace output was requested),
	// and the resulting tracer replaces opts.Trace at every component. The
	// invariant checker stacks onto the same seam via the tracer's sink
	// composition.
	tr := opts.Trace
	var coll *attr.Collector
	if opts.Attribution != nil {
		coll = attr.NewCollector(*opts.Attribution)
		tr = trace.Attach(tr, coll)
	}
	var sampleWindow uint64
	if coll != nil {
		sampleWindow = coll.Window()
	}
	var chk *check.Checker
	if opts.Invariants {
		if sampleWindow == 0 {
			sampleWindow = attr.DefaultWindow
		}
		chk = check.New(check.Options{Window: sampleWindow})
		tr = trace.Attach(tr, chk)
	}
	network.Trace = tr

	placement := vm.NewPlacement(numGPMs, cfg.PageSize)
	regions := map[string]vm.Region{}
	for _, rs := range opts.Benchmark.Regions(cfg.WorkloadScale, numGPMs, cfg.PageSize) {
		regions[rs.Name] = placement.Alloc(rs.Name, rs.Pages, 0)
	}

	// Build GPMs, each on its domain's engine (one shared engine serially).
	// Filter seeding is deferred: the closure enumerates the GPM's local
	// pages only if the GPM ever materializes, so idle tiles of a giant
	// wafer never build a VPN list or a populated cuckoo table. Region
	// ownership is static, so a deferred seed observes the same pages an
	// eager one would.
	gpms := make([]*gpm.GPM, numGPMs)
	for i, c := range mesh.GPMs() {
		gpms[i] = gpm.New(engAt(c), i, c, cfg.GPM, cfg.PageSize, placement.Local(i))
		id := i
		gpms[i].SeedFilter(func(g *gpm.GPM) {
			var vpns []vm.VPN
			for _, r := range regions {
				lo, hi := r.OwnerSlice(id, numGPMs)
				for p := lo; p < hi; p++ {
					vpns = append(vpns, r.Start+vm.VPN(p))
				}
			}
			g.ReseedFilter(0, vpns)
		})
	}

	io := iommu.New(engAt(mesh.CPU), cfg.IOMMU, mesh.CPU, network, placement.Global())
	io.GPMCoord = func(id int) geom.Coord { return gpms[id].Coord }
	io.Trace = tr
	if coll != nil {
		coll.Probes(io.QueueDepth, io.WalkersBusy, func(v attr.LinkVisitor) {
			network.VisitLinks(func(c geom.Coord, dir string, busy sim.VTime) {
				v(c.X, c.Y, dir, uint64(busy))
			})
		})
	}
	if chk != nil {
		io.AddHook(chk)
		chk.Probes(func(v check.LinkVisitor) {
			network.VisitLinks(func(c geom.Coord, dir string, busy sim.VTime) {
				v(c.X, c.Y, dir, uint64(busy))
			})
		})
	}
	if coll != nil || chk != nil {
		// Periodic sampler: queue-depth, walker-occupancy and link-busy
		// series once per window, fired between events so the heap and event
		// order are untouched. The collector and checker share one window,
		// so the checker audits exactly the boundaries the series record.
		eng.AttachSampler(sim.VTime(sampleWindow), func(at sim.VTime) {
			if coll != nil {
				coll.Sample(uint64(at))
			}
			if chk != nil {
				chk.Sample(uint64(at))
			}
		})
	}
	if reg != nil {
		io.AttachMetrics(reg)
		for _, g := range gpms {
			g.AttachMetrics(reg)
		}
	}
	if opts.QueueWindow > 0 {
		io.QueueSeries = stats.NewMaxSeries(opts.QueueWindow)
	}
	var served *stats.TimeSeries
	if opts.ServedWindow > 0 {
		served = stats.NewCountSeries(opts.ServedWindow)
	}
	if served != nil {
		io.AddHook(iommu.RequestHookFunc(func(now sim.VTime, req *xlat.Request) {
			served.Record(uint64(now), 1)
		}))
	}
	for _, h := range opts.Hooks {
		io.AddHook(h)
	}

	fabric := &core.Fabric{
		Eng: eng, Mesh: network, Layout: layout,
		GPMs: gpms, IOMMU: io, Placement: placement,
	}
	fabric.Finish()

	scheme, err := buildScheme(opts.Scheme, fabric, cfg.HDPAT)
	if err != nil {
		return Result{}, err
	}
	var validationErrs []string
	if opts.Validate {
		scheme = &check.Scheme{
			Inner: scheme, Global: placement.Global(),
			Report: func(v check.Violation) { validationErrs = append(validationErrs, v.Detail) },
		}
	}
	if chk != nil && opts.Migration == nil {
		scheme = &check.Scheme{
			Inner: scheme, Global: placement.Global(),
			Report: chk.Record,
			Now:    func() uint64 { return uint64(eng.Now()) },
		}
	}
	var migrator *migrate.Manager
	if opts.Migration != nil {
		migrator = migrate.New(fabric, *opts.Migration)
		migrator.Trace = tr
		if reg != nil {
			migrator.AttachMetrics(reg)
		}
		scheme = migrator.Wrap(scheme)
	}

	// Wire GPMs. The request pool is per run, shared across GPMs: sharing
	// maximises reuse, and scoping it to the run keeps recycled objects
	// away from parallel batch workers (a global pool would hand one
	// worker's recycled request to another while stale readers remain).
	var reqID uint64
	nextID := func() uint64 { reqID++; return reqID }
	reqPool := xlat.NewRequestPool()
	fetch := &fetcher{mesh: network, gpms: gpms}
	var si *xlat.ShardInfo
	if coord != nil {
		// Sharded wiring: carriers that are leased in one domain and
		// released in another go through sync.Pools, and the request pool
		// gets the hazard detector for the IOMMU's cross-domain
		// completion check.
		io.ShardResponses()
		fabric.MsgPool = &sync.Pool{}
		fetch.pool = &sync.Pool{}
		domOfGPM := make([]int32, numGPMs)
		for i, g := range gpms {
			domOfGPM[i] = tileDom[mesh.NodeID(g.Coord)]
		}
		si = &xlat.ShardInfo{
			NowOf:    func(id int) sim.VTime { return coord.Engine(int(domOfGPM[id])).Now() },
			DomOf:    domOfGPM,
			IOMMUDom: tileDom[mesh.NodeID(mesh.CPU)],
		}
		reqPool.SetShard(si)
		coord.OnWindow = si.SetRound
	}
	for i, g := range gpms {
		g.Remote = scheme
		if coord != nil {
			// A shared ID counter would be a cross-domain data race; give
			// each GPM its own 2^40-entry ID space instead. IDs only feed
			// diagnostics and the (serial-only) invariant checker, never
			// behaviour, so the numbering change cannot perturb results.
			hi := uint64(i+1) << 40
			var n uint64
			g.NextReqID = func() uint64 { n++; return hi | n }
		} else {
			g.NextReqID = nextID
		}
		g.Trace = tr
		g.ReqPool = reqPool
		g.Fetch = fetch
	}

	// Load traces and start.
	var totalOps uint64
	for i, g := range gpms {
		for cu := 0; cu < cfg.GPM.NumCUs; cu++ {
			tr := opts.Benchmark.Trace(workload.Context{
				Regions: regions, PageSize: cfg.PageSize,
				GPM: i, NumGPMs: numGPMs, CU: cu, NumCUs: cfg.GPM.NumCUs,
				OpsBudget: opts.OpsBudget, Seed: opts.Seed,
			})
			totalOps += uint64(len(tr))
			g.LoadTrace(cu, tr)
		}
	}
	// GPMs in different domains can finish inside the same window, so the
	// completion count is atomic.
	var finished int32
	for _, g := range gpms {
		g.Start(sim.VTime(opts.Benchmark.Gap), func(int, sim.VTime) { atomic.AddInt32(&finished, 1) })
	}

	runTo := func(limit sim.VTime) error {
		if coord != nil {
			return coord.Run(ctx, limit)
		}
		return runEngine(ctx, eng, limit)
	}
	if err := runTo(opts.MaxCycles); err != nil {
		return Result{}, err
	}
	var runErr error
	if int(finished) < numGPMs {
		runErr = fmt.Errorf("wafer: %s/%s finished %d/%d GPMs by cycle limit %d",
			opts.Scheme, opts.Benchmark.Abbr, finished, numGPMs, opts.MaxCycles)
	} else {
		// Drain stragglers (late miss responses etc.) for accurate NoC stats.
		if err := runTo(sim.Infinity); err != nil {
			return Result{}, err
		}
	}
	if si != nil && si.Hazards() > 0 {
		return Result{}, errHazard
	}

	events := eng.Processed
	if coord != nil {
		events = coord.Processed()
	}
	res := Result{
		Scheme: scheme.Name(), Benchmark: opts.Benchmark.Abbr,
		IOMMU: io.Stats, NoC: network.MergeStats(),
		QueueSeries: io.QueueSeries, ServedSeries: served,
		TotalOps:         totalOps,
		Events:           events,
		ValidationErrors: validationErrs,
	}
	if migrator != nil {
		res.Migration = migrator.Stats
	}
	// Structure-of-arrays assembly at exact capacity: one allocation per
	// parallel column, no append growth — at 900+ GPMs the growth slack of
	// three appending slices is real memory.
	res.GPMCoords = make([]geom.Coord, numGPMs)
	res.GPMFinish = make([]sim.VTime, numGPMs)
	res.GPMStats = make([]gpm.Stats, numGPMs)
	for i, g := range gpms {
		res.AuxLen += g.AuxLen()
		as := g.AuxStats()
		res.AuxStats.Hits += as.Hits
		res.AuxStats.Misses += as.Misses
		res.AuxStats.Fills += as.Fills
		res.AuxStats.Evictions += as.Evictions
		res.GPMCoords[i] = g.Coord
		res.GPMFinish[i] = g.Stats.FinishTime
		res.GPMStats[i] = g.Stats
		if g.Stats.FinishTime > res.Cycles {
			res.Cycles = g.Stats.FinishTime
		}
	}
	if reg != nil {
		network.FlushMetrics()
		reg.Gauge("run.cycles").Set(int64(res.Cycles))
		reg.Gauge("run.total_ops").Set(int64(totalOps))
		res.Metrics = reg.Snapshot()
	}
	if coll != nil {
		for _, g := range gpms {
			for level, s := range g.TLBStats() {
				coll.AddTLB(level, s.Hits, s.Misses)
			}
		}
		res.Breakdown = coll.Finalize(res.Scheme, res.Benchmark, uint64(res.Cycles))
	}
	if chk != nil {
		var latSum uint64
		for i := range res.GPMStats {
			latSum += res.GPMStats[i].RemoteLatencySum
		}
		f := check.Final{
			Cycle:       uint64(eng.Now()),
			Settled:     int(finished) == numGPMs,
			QueueDepth:  io.QueueDepth(),
			WalkersBusy: io.WalkersBusy(),
			IOMMU:       io.Stats,
			NoC:         network.Stats,
			ExactHops:   cfg.NoC.Routing != noc.RoutingDeflect,
			RemoteReqs:  res.RemoteRequests(), RemoteLatencySum: latSum,
			Breakdown: res.Breakdown,
		}
		if err := chk.Finish(f); err != nil {
			runErr = errors.Join(runErr, err)
		}
	}
	return res, runErr
}

func buildScheme(name string, f *core.Fabric, h config.HDPAT) (xlat.RemoteTranslator, error) {
	switch name {
	case "baseline":
		return schemes.NewNaive(f), nil
	case "barre":
		return schemes.NewBarre(f), nil
	case "transfw":
		return schemes.NewTransFW(f), nil
	case "ownerfw":
		return schemes.NewOwnerFW(f), nil
	case "valkyrie":
		return schemes.NewValkyrie(f), nil
	case "route":
		return core.NewRoute(f, h), nil
	case "concentric":
		return core.NewConcentric(f, h), nil
	case "distributed":
		return core.NewDistributed(f, h), nil
	case "cluster", "redirect", "prefetch", "hdpat", "iommutlb":
		return core.NewHDPAT(f, h), nil
	}
	return nil, fmt.Errorf("wafer: %w %q", ErrUnknownScheme, name)
}

// auxProbe is a debugging aggregate filled at the end of Run.
