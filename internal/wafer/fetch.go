package wafer

import (
	"sync"

	"hdpat/internal/gpm"
	"hdpat/internal/noc"
	"hdpat/internal/sim"
	"hdpat/internal/xlat"
)

// fetcher implements gpm.LineFetcher over the mesh: a remote cacheline
// fetch is a request message to the owner, an HBM read there, and a
// response message back, carried by one pooled lineFetch state machine
// instead of a nested closure per stage. pool, when set (sharded runs),
// replaces the free list: a fetch is leased on the requester's domain and
// released back on it after crossing the owner's, but two requesters in
// different domains lease concurrently.
type fetcher struct {
	mesh *noc.Mesh
	gpms []*gpm.GPM
	free []*lineFetch
	pool *sync.Pool
}

// lineFetch phases, advanced by each Event delivery.
const (
	fetchReqArrived  = iota // request message reached the owner tile
	fetchHBMDone            // owner HBM read finished
	fetchRespArrived        // response message reached the requester
)

type lineFetch struct {
	f         *fetcher
	requester *gpm.GPM
	owner     *gpm.GPM
	line      uint64
	state     uint8
}

// FetchLine implements gpm.LineFetcher.
func (f *fetcher) FetchLine(requester *gpm.GPM, owner int, line uint64) {
	var lf *lineFetch
	if f.pool != nil {
		lf, _ = f.pool.Get().(*lineFetch)
	} else if n := len(f.free); n > 0 {
		lf = f.free[n-1]
		f.free = f.free[:n-1]
	}
	if lf == nil {
		lf = new(lineFetch)
	}
	*lf = lineFetch{f: f, requester: requester, owner: f.gpms[owner], line: line}
	f.mesh.SendH(requester.Coord, lf.owner.Coord, xlat.DataReqBytes, lf, sim.EventArg{})
}

// Event advances the fetch through its three legs.
func (lf *lineFetch) Event(sim.EventArg) {
	switch lf.state {
	case fetchReqArrived:
		lf.state = fetchHBMDone
		lf.owner.ServeLineH(lf.line, lf, sim.EventArg{})
	case fetchHBMDone:
		lf.state = fetchRespArrived
		lf.f.mesh.SendH(lf.owner.Coord, lf.requester.Coord, xlat.DataRespBytes, lf, sim.EventArg{})
	case fetchRespArrived:
		f, requester, line := lf.f, lf.requester, lf.line
		*lf = lineFetch{}
		if f.pool != nil {
			f.pool.Put(lf)
		} else {
			f.free = append(f.free, lf)
		}
		requester.FillLine(line)
	}
}
