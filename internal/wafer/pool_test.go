package wafer

import (
	"testing"

	"hdpat/internal/xlat"
)

// TestPoolChecksEndToEnd runs every scheme with the released-request
// tripwire armed: any leg touching a request after its last reference
// unwound panics instead of silently corrupting a recycled object. The
// schemes between them exercise the late-delivery paths the pooled lifetime
// must keep safe — losing concurrent probes, the IOMMU's SkippedCompleted
// walk skip, PW-queue revisits and redirection bounces.
func TestPoolChecksEndToEnd(t *testing.T) {
	xlat.SetPoolChecks(true)
	defer xlat.SetPoolChecks(false)

	revisits := uint64(0)
	for _, scheme := range SchemeNames() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			res := mustRun(t, scheme, "PR", 96)
			var completed uint64
			for _, s := range res.GPMStats {
				completed += s.OpsCompleted
			}
			if completed != res.TotalOps {
				t.Fatalf("%s completed %d of %d ops under pool checks", scheme, completed, res.TotalOps)
			}
			revisits += res.IOMMU.Revisits
		})
	}
	// The tripwire only proves something if the racy paths actually ran.
	if revisits == 0 {
		t.Error("no scheme exercised the PW-queue revisit path")
	}
	// The SkippedCompleted skip — a queued IOMMU copy losing to a concurrent
	// probe hit — needs warmed outer-layer caches; cluster on KM reliably
	// produces it at this scale.
	t.Run("skip-path", func(t *testing.T) {
		res := mustRun(t, "cluster", "KM", 96)
		if res.IOMMU.SkippedCompleted == 0 {
			t.Error("run exercised no SkippedCompleted skips")
		}
	})
}
