package wafer

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"hdpat/internal/metrics"
	"hdpat/internal/migrate"
	"hdpat/internal/trace"
	"hdpat/internal/workload"
)

// runWith executes one small run with the given observability options.
func runWith(t *testing.T, scheme string, budget int, reg *metrics.Registry, tr *trace.Tracer) Result {
	t.Helper()
	cfg, err := ConfigFor(scheme, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.ByAbbr("SPMV")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, Options{
		Scheme: scheme, Benchmark: b, OpsBudget: budget, Seed: 1,
		Metrics: reg, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMetricsNonZeroForEveryScheme: the acceptance criterion that with
// metrics enabled, every scheme reports non-zero TLB, IOMMU and NoC series.
func TestMetricsNonZeroForEveryScheme(t *testing.T) {
	for _, scheme := range SchemeNames() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			res := runWith(t, scheme, 8, metrics.NewRegistry(), nil)
			s := res.Metrics
			if s == nil {
				t.Fatal("Result.Metrics is nil with Options.Metrics set")
			}
			if hits, misses := s.Counter("tlb.l1.hits"), s.Counter("tlb.l1.misses"); hits+misses == 0 {
				t.Error("no L1 TLB activity recorded")
			}
			if s.Counter("noc.messages") == 0 {
				t.Error("no NoC messages recorded")
			}
			if s.Counter("sim.events_dispatched") == 0 {
				t.Error("no engine events recorded")
			}
			// Every scheme must expose IOMMU series. Request counts may be
			// zero for schemes that fully offload (transfw), so assert
			// presence via the walker-count config gauge instead.
			if s.Gauge("iommu.walkers") == 0 {
				t.Error("iommu.walkers gauge missing or zero")
			}
			if s.Gauge("run.cycles") == 0 || s.Gauge("run.total_ops") == 0 {
				t.Error("run gauges not recorded")
			}
		})
	}
}

// TestMetricsMatchLegacyStats cross-checks registry series against the
// hand-rolled Stats structs the Result already carried.
func TestMetricsMatchLegacyStats(t *testing.T) {
	res := runWith(t, "hdpat", 32, metrics.NewRegistry(), nil)
	s := res.Metrics
	if got, want := s.Counter("iommu.requests"), res.IOMMU.Requests; got != want {
		t.Errorf("iommu.requests = %d, stats say %d", got, want)
	}
	if got, want := s.Counter("iommu.walks"), res.IOMMU.Walks; got != want {
		t.Errorf("iommu.walks = %d, stats say %d", got, want)
	}
	if got, want := s.Counter("noc.messages"), res.NoC.Messages; got != want {
		t.Errorf("noc.messages = %d, stats say %d", got, want)
	}
	if got, want := s.Counter("noc.byte_hops"), res.NoC.ByteHops; got != want {
		t.Errorf("noc.byte_hops = %d, stats say %d", got, want)
	}
	var issued, stall uint64
	for _, g := range res.GPMStats {
		issued += g.OpsIssued
		stall += g.CUStallCycles
	}
	if got := s.Counter("gpm.ops.issued"); got != issued {
		t.Errorf("gpm.ops.issued = %d, stats say %d", got, issued)
	}
	if got := s.Counter("gpm.cu.stall_cycles"); got != stall {
		t.Errorf("gpm.cu.stall_cycles = %d, stats say %d", got, stall)
	}
	if uint64(s.Gauge("run.cycles")) != uint64(res.Cycles) {
		t.Errorf("run.cycles = %d, result says %d", s.Gauge("run.cycles"), res.Cycles)
	}
	// Per-link NoC gauges must aggregate to the busy total.
	var linkSum int64
	for name, v := range s.Gauges {
		if strings.HasPrefix(name, "noc.link.busy.") {
			linkSum += v
		}
	}
	if total := s.Gauge("noc.links.busy_total"); linkSum != total {
		t.Errorf("per-link busy sum %d != busy_total %d", linkSum, total)
	}
}

// stripObservability zeroes the fields a run only has when observability is
// attached, so DeepEqual compares pure simulation outcomes.
func stripObservability(r Result) Result {
	r.Metrics = nil
	return r
}

// TestDeterminismWithObservability: byte-identical simulation results with
// metrics and tracing on vs off — observability must only observe.
func TestDeterminismWithObservability(t *testing.T) {
	plain := runWith(t, "hdpat", 24, nil, nil)

	var buf bytes.Buffer
	tr := trace.New(&buf, trace.JSONL)
	observed := runWith(t, "hdpat", 24, metrics.NewRegistry(), tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("trace produced no events")
	}
	if !reflect.DeepEqual(plain, stripObservability(observed)) {
		t.Errorf("observability changed the simulation:\nplain:    %+v\nobserved: %+v",
			plain, stripObservability(observed))
	}

	// And the trace itself is deterministic: run again, compare bytes.
	var buf2 bytes.Buffer
	tr2 := trace.New(&buf2, trace.JSONL)
	runWith(t, "hdpat", 24, metrics.NewRegistry(), tr2)
	if err := tr2.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("identical runs produced different traces")
	}
	// Every line is a self-contained JSON object.
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("trace line %d invalid: %v", i, err)
		}
		if i > 100 {
			break
		}
	}
}

// TestMigrationMetricsAndTrace exercises the migrate.* series and the
// migration span path.
func TestMigrationMetricsAndTrace(t *testing.T) {
	cfg, err := ConfigFor("hdpat", smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.ByAbbr("PR")
	if err != nil {
		t.Fatal(err)
	}
	mcfg := Options{Scheme: "hdpat", Benchmark: b, OpsBudget: 48, Seed: 1}
	mig := migrate.DefaultConfig()
	mig.Threshold = 1 // migrate eagerly so the small run produces activity
	mcfg.Migration = &mig
	reg := metrics.NewRegistry()
	var buf bytes.Buffer
	tr := trace.New(&buf, trace.JSONL)
	mcfg.Metrics = reg
	mcfg.Trace = tr
	res, err := Run(cfg, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Migration.Migrations == 0 {
		t.Skip("workload produced no migrations at this budget")
	}
	if got := res.Metrics.Counter("migrate.migrations"); got != res.Migration.Migrations {
		t.Errorf("migrate.migrations = %d, stats say %d", got, res.Migration.Migrations)
	}
	if !strings.Contains(buf.String(), `"ev":"migration"`) {
		t.Error("no migration spans in trace")
	}
}
