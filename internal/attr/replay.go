package attr

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ReplayJSONL rebuilds a Breakdown from a saved JSONL trace (trace.JSONL
// format) instead of a live run, so reports can be regenerated without
// re-simulating. run selects one batch child (the "run" field; 0 is the
// untagged parent); pass -1 to accept every run.
//
// Replay sees exactly the spans a live collector would, with two
// differences: there is no sampler, so time series and peak-window
// utilisation are absent, and link busy cycles are approximated by the sum
// of hop span durations (an upper bound including the fixed hop latency).
// The run length is taken as the latest span end.
func ReplayJSONL(r io.Reader, run int) (*Breakdown, error) {
	c := NewCollector(Config{})
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var maxEnd uint64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e map[string]any
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("attr: trace line %d: %w", lineNo, err)
		}
		if run >= 0 && int(num(e, "run")) != run {
			continue
		}
		ts := num(e, "ts")
		end := ts + num(e, "dur")
		if end > maxEnd {
			maxEnd = end
		}
		switch e["ev"] {
		case "request":
			c.OnRequest(ts, end, num(e, "req"), int(num(e, "src")), int(num(e, "gpm")))
		case "queued":
			stage, _ := e["tid"].(string)
			c.OnQueue(stage, ts, end, num(e, "req"))
		case "walk":
			c.OnWalk(ts, end, num(e, "req"), num(e, "vpn"))
		case "hop":
			c.OnHop(ts, end, int(num(e, "fx")), int(num(e, "fy")),
				int(num(e, "tx")), int(num(e, "ty")), int(num(e, "bytes")),
				num(e, "defl") != 0)
		case "migration":
			c.OnMigration(ts, end, num(e, "vpn"), int(num(e, "from")), int(num(e, "to")))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("attr: reading trace: %w", err)
	}
	return c.Finalize("", "", maxEnd), nil
}

// num reads a numeric field, 0 when absent.
func num(e map[string]any, k string) uint64 {
	f, _ := e[k].(float64)
	return uint64(f)
}
