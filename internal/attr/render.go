package attr

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteMarkdown renders the breakdown as a Markdown report section: the
// latency-breakdown table (cycle sums, shares, mean and percentiles per
// stage), the serving-source mix, the TLB hierarchy table and time-series
// summaries. The output is deterministic for a given breakdown.
func (b *Breakdown) WriteMarkdown(w io.Writer) {
	title := b.Scheme
	if b.Benchmark != "" {
		title += " / " + b.Benchmark
	}
	if title == "" {
		title = "run"
	}
	fmt.Fprintf(w, "### %s\n\n", title)
	fmt.Fprintf(w, "%d requests over %d cycles", b.Requests, b.Cycles)
	if b.Unfinished > 0 {
		fmt.Fprintf(w, " (%d unfinished)", b.Unfinished)
	}
	if b.Migrations > 0 {
		fmt.Fprintf(w, ", %d migrations", b.Migrations)
	}
	fmt.Fprintf(w, ".\n\n")

	total := b.Stage(StageTotal)
	fmt.Fprintf(w, "| Stage | Cycles | Share | Mean | p50 | p95 | p99 |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|---:|---:|---:|\n")
	rows := append(append([]string{}, StageOrder...), StageTotal)
	for _, s := range rows {
		d := b.Stage(s)
		share := 0.0
		if total.Sum > 0 {
			share = float64(d.Sum) / float64(total.Sum) * 100
		}
		fmt.Fprintf(w, "| %s | %d | %.1f%% | %.1f | %.0f | %.0f | %.0f |\n",
			s, d.Sum, share, d.Mean(),
			d.Quantile(0.50), d.Quantile(0.95), d.Quantile(0.99))
	}
	fmt.Fprintln(w)

	if len(b.Sources) > 0 {
		fmt.Fprintf(w, "| Source | Requests | Share |\n|---|---:|---:|\n")
		names := make([]string, 0, len(b.Sources))
		for n := range b.Sources {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			share := 0.0
			if b.Requests > 0 {
				share = float64(b.Sources[n]) / float64(b.Requests) * 100
			}
			fmt.Fprintf(w, "| %s | %d | %.1f%% |\n", n, b.Sources[n], share)
		}
		fmt.Fprintln(w)
	}

	if len(b.TLB) > 0 {
		fmt.Fprintf(w, "| TLB | Hits | Misses | Hit rate |\n|---|---:|---:|---:|\n")
		for _, t := range b.TLB {
			fmt.Fprintf(w, "| %s | %d | %d | %.1f%% |\n", t.Level, t.Hits, t.Misses, t.HitRate*100)
		}
		fmt.Fprintln(w)
	}

	if len(b.Series) > 0 {
		names := make([]string, 0, len(b.Series))
		for n := range b.Series {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "| Series | Samples | Mean | Peak |\n|---|---:|---:|---:|\n")
		for _, n := range names {
			ss := b.Series[n]
			if len(ss) == 0 {
				continue
			}
			var sum, peak float64
			for _, s := range ss {
				sum += s.Value
				if s.Value > peak {
					peak = s.Value
				}
			}
			fmt.Fprintf(w, "| %s | %d | %.1f | %.0f |\n", n, len(ss), sum/float64(len(ss)), peak)
		}
		fmt.Fprintln(w)
	}
}

// HeatmapCSV renders the per-link NoC heatmap as CSV: one row per active
// directed link in (y, x, dir) order. Utilisation is busy cycles over the
// run length; peak_window_util is the busiest single sampling window;
// deflections is the misrouted-hop count under bufferless deflection
// routing (0 everywhere under XY).
func (b *Breakdown) HeatmapCSV() string {
	var sb strings.Builder
	sb.WriteString("x,y,dir,messages,bytes,busy_cycles,utilization,peak_window_util,deflections\n")
	for _, l := range b.Links {
		fmt.Fprintf(&sb, "%d,%d,%s,%d,%d,%d,%.4f,%.4f,%d\n",
			l.X, l.Y, l.Dir, l.Messages, l.Bytes, l.Busy, l.Util, l.PeakUtil, l.Deflections)
	}
	return sb.String()
}

// CompareMarkdown renders a res-vs-base diff table: per-stage mean and p95
// deltas (negative = res faster) plus the request-count delta.
func CompareMarkdown(w io.Writer, res, base *Breakdown) {
	fmt.Fprintf(w, "### %s vs %s\n\n", res.Scheme, base.Scheme)
	fmt.Fprintf(w, "| Stage | %s mean | %s mean | Δ mean | Δ p95 |\n", res.Scheme, base.Scheme)
	fmt.Fprintf(w, "|---|---:|---:|---:|---:|\n")
	d := Diff(res, base)
	for _, s := range append(append([]string{}, StageOrder...), StageTotal) {
		fmt.Fprintf(w, "| %s | %.1f | %.1f | %+.1f | %+.1f |\n",
			s, res.Stage(s).Mean(), base.Stage(s).Mean(), d[s+".mean"], d[s+".p95"])
	}
	fmt.Fprintf(w, "\nRequests: %d vs %d (%+.0f).\n\n", res.Requests, base.Requests, d["requests"])
}
