// Package attr is the per-request latency attribution layer: a lifecycle
// ledger that stitches the tracer's typed spans (request, queue, walk, hop)
// into complete translation timelines at simulation time — no post-hoc JSONL
// parsing — and reduces them online into per-stage cycle breakdowns,
// per-link NoC heatmaps and sampled time series.
//
// The Collector implements the trace.Sink interface structurally; wiring is
// one trace.Attach call in the wafer builder. Attribution is strictly
// passive: the collector only observes spans and sampler probes, never
// schedules events or mutates simulator state, so an attributed run is
// byte-identical to a plain one (asserted by the public determinism tests).
//
// # Stage taxonomy and exact accounting
//
// Every remote translation's end-to-end latency (request issue at the GMMU
// boundary to completion — exactly the cycles in gpm.Stats.RemoteLatencySum)
// decomposes into four stages:
//
//   - admission: residency in the IOMMU admission stage (pre-queue)
//   - pwq:       residency in the bounded PW-queue
//   - walk:      page-table walker occupancy at the IOMMU
//   - wire:      everything else — NoC hops, peer probes, port contention,
//     redirect detours — computed as the exact remainder
//
// Because wire is the remainder, the identity
//
//	total == admission + pwq + walk + wire
//
// holds per request and in aggregate, making the breakdown an exact
// accounting of the existing latency counters rather than an estimate
// (TestBreakdownExactAccounting). Percentiles are estimated from log2
// histogram buckets with linear interpolation; sums, counts and the
// stage shares are exact.
package attr

import (
	"sort"

	"hdpat/internal/metrics"
	"hdpat/internal/xlat"
)

// Stage names, in presentation order. Total is the end-to-end request
// latency; the other four sum to it exactly.
const (
	StageAdmission = "admission"
	StagePWQ       = "pwq"
	StageWalk      = "walk"
	StageWire      = "wire"
	StageTotal     = "total"
)

// StageOrder lists the component stages in presentation order.
var StageOrder = []string{StageAdmission, StagePWQ, StageWalk, StageWire}

// DefaultWindow is the sampler period, in cycles, when Config.Window is 0.
const DefaultWindow = 8192

// Config parameterises attribution for one run.
type Config struct {
	// Window is the sampling period for queue-depth and link-utilisation
	// time series, in cycles. 0 means DefaultWindow.
	Window uint64
}

// Dist is an online distribution: exact count/sum/min/max plus log2 buckets
// (bucket 0 holds only zero, bucket i >= 1 holds [2^(i-1), 2^i)) for
// percentile estimation.
type Dist struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// Observe adds one value.
func (d *Dist) Observe(v uint64) {
	i := metrics.Log2Bucket(v)
	for len(d.Buckets) <= i {
		d.Buckets = append(d.Buckets, 0)
	}
	d.Buckets[i]++
	if d.Count == 0 || v < d.Min {
		d.Min = v
	}
	if v > d.Max {
		d.Max = v
	}
	d.Count++
	d.Sum += v
}

// Mean returns the exact mean, or 0 with no observations.
func (d *Dist) Mean() float64 {
	if d.Count == 0 {
		return 0
	}
	return float64(d.Sum) / float64(d.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the covering log2 bucket, clamped to the exact [Min, Max].
func (d *Dist) Quantile(q float64) float64 {
	if d.Count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(d.Min)
	}
	if q >= 1 {
		return float64(d.Max)
	}
	rank := q * float64(d.Count)
	var cum float64
	for i, n := range d.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo, hi := metrics.BucketRange(i)
			v := float64(lo) + (rank-cum)/float64(n)*float64(hi-lo)
			if v < float64(d.Min) {
				v = float64(d.Min)
			}
			if v > float64(d.Max) {
				v = float64(d.Max)
			}
			return v
		}
		cum = next
	}
	return float64(d.Max)
}

// TLBLevel summarises one translation-cache level of the hierarchy.
type TLBLevel struct {
	Level   string  `json:"level"`
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// LinkStat is one directed mesh link's traffic and occupancy over a run.
// Deflections counts hops this link carried that were misroutes under
// bufferless deflection routing; identically 0 (and omitted from JSON)
// under XY, so XY artifacts keep their exact bytes.
type LinkStat struct {
	X           int     `json:"x"`
	Y           int     `json:"y"`
	Dir         string  `json:"dir"`
	Messages    uint64  `json:"messages"`
	Bytes       uint64  `json:"bytes"`
	Busy        uint64  `json:"busy_cycles"`
	Util        float64 `json:"utilization"`      // Busy / run cycles
	PeakUtil    float64 `json:"peak_window_util"` // max per-window busy delta / window
	Deflections uint64  `json:"deflections,omitempty"`
}

// Sample is one point of a sampled time series.
type Sample struct {
	At    uint64  `json:"at"`
	Value float64 `json:"value"`
}

// Breakdown is the finished attribution of one run: where every remote
// translation cycle went, per stage, per serving source, per TLB level and
// per mesh link.
type Breakdown struct {
	Scheme    string `json:"scheme"`
	Benchmark string `json:"benchmark"`
	Cycles    uint64 `json:"cycles"`
	Window    uint64 `json:"window"`

	// Requests is the number of completed remote translations attributed.
	Requests uint64 `json:"requests"`
	// Unfinished counts ledger entries that saw stage spans but no request
	// completion (in-flight at cutoff, or walks racing a peer completion).
	Unfinished uint64 `json:"unfinished"`
	// Clipped counts requests whose observed stage cycles exceeded the
	// end-to-end latency — always 0 in a well-formed trace; nonzero flags a
	// span-emission bug rather than a property of the workload.
	Clipped uint64 `json:"clipped"`
	// LateSpans counts queue/walk spans that arrived after their request had
	// already completed — the dispatch skip path emits the residency of a
	// request answered elsewhere while it queued. Late spans are counted,
	// never stitched: the request's breakdown was finalised at completion,
	// so stitching would corrupt the exact accounting.
	LateSpans uint64 `json:"late_spans"`
	// Migrations counts completed page migrations during the run.
	Migrations uint64 `json:"migrations"`

	// Stages maps StageAdmission/StagePWQ/StageWalk/StageWire/StageTotal to
	// their distributions. The four component sums add up to the total sum
	// exactly (when Clipped == 0).
	Stages map[string]*Dist `json:"stages"`
	// Sources counts completed requests by serving source (xlat.Source
	// names: "iommu", "peer", ...).
	Sources map[string]uint64 `json:"sources"`
	// TLB lists cache levels in hierarchy order (l1, l2, ll, aux).
	TLB []TLBLevel `json:"tlb,omitempty"`
	// Links lists active mesh links in (y, x, dir) order.
	Links []LinkStat `json:"links,omitempty"`
	// Series holds the sampled time series ("iommu.queue_depth",
	// "iommu.walkers_busy", "noc.busy_delta"), one point per window.
	Series map[string][]Sample `json:"series,omitempty"`
}

// Stage returns the named stage distribution, never nil.
func (b *Breakdown) Stage(name string) *Dist {
	if d := b.Stages[name]; d != nil {
		return d
	}
	return &Dist{}
}

// Diff returns per-metric res − base deltas between two breakdowns:
// "<stage>.mean" and "<stage>.p95" for every stage plus total, and
// "requests". Negative stage deltas mean res is faster there.
func Diff(res, base *Breakdown) map[string]float64 {
	d := make(map[string]float64)
	for _, s := range append(append([]string{}, StageOrder...), StageTotal) {
		d[s+".mean"] = res.Stage(s).Mean() - base.Stage(s).Mean()
		d[s+".p95"] = res.Stage(s).Quantile(0.95) - base.Stage(s).Quantile(0.95)
	}
	d["requests"] = float64(res.Requests) - float64(base.Requests)
	return d
}

// pending is one in-flight request's accumulated stage cycles.
type pending struct {
	admission, pwq, walk uint64
}

// linkKey identifies one directed mesh link.
type linkKey struct {
	x, y int
	dir  string
}

// LinkVisitor receives one directed link's coordinates, direction and
// monotonically accumulated busy cycles.
type LinkVisitor func(x, y int, dir string, busy uint64)

// Collector is the live attribution ledger. It implements trace.Sink
// structurally (OnRequest/OnQueue/OnWalk/OnHop/OnMigration) and additionally
// receives periodic Sample calls from the engine sampler. It is not
// goroutine-safe: like the tracer state it observes, it belongs to one
// simulation engine.
type Collector struct {
	cfg Config

	open    map[uint64]*pending
	closed  map[uint64]struct{}
	stages  map[string]*Dist
	sources map[string]uint64
	tlb     map[string]*TLBLevel
	clipped uint64
	late    uint64
	migs    uint64

	// Per-link aggregates in structure-of-arrays form: linkIdx maps a
	// directed link to its slot in the parallel columns below. One small
	// map plus six flat slices replaces the four map[linkKey] structures
	// the ledger used to carry — on a giant wafer the columns are one
	// allocation each and release in one drop after Finalize.
	linkIdx   map[linkKey]int32
	linkMsgs  []uint64
	linkBytes []uint64
	linkHop   []uint64 // sum of hop span durations (replay-mode busy proxy)
	linkPrev  []uint64 // busy counter at last sweep
	linkPeak  []uint64 // max per-window busy delta
	linkFinal []uint64 // busy counter at the final probe sweep
	linkDefl  []uint64 // deflected hops carried (bufferless routing)

	queueProbe   func() int
	walkersProbe func() int
	linkProbe    func(LinkVisitor)
	series       map[string][]Sample

	// finalized marks that Finalize has run and released the working
	// ledger. The run is over, so any span still arriving is by definition
	// late: it is counted, never stitched — the same contract late spans
	// had before, without keeping the per-request closed set alive.
	finalized bool
}

// NewCollector returns an empty ledger with the given configuration.
func NewCollector(cfg Config) *Collector {
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	c := &Collector{
		cfg:     cfg,
		open:    make(map[uint64]*pending),
		closed:  make(map[uint64]struct{}),
		stages:  make(map[string]*Dist),
		sources: make(map[string]uint64),
		linkIdx: make(map[linkKey]int32),
		tlb:     make(map[string]*TLBLevel),
		series:  make(map[string][]Sample),
	}
	for _, s := range StageOrder {
		c.stages[s] = &Dist{}
	}
	c.stages[StageTotal] = &Dist{}
	return c
}

// Window returns the effective sampling period.
func (c *Collector) Window() uint64 { return c.cfg.Window }

// Probes wires the sampler's read-only state probes: combined IOMMU queue
// depth, busy walker count, and a per-link busy-cycle walk. Any may be nil.
func (c *Collector) Probes(queueDepth, walkersBusy func() int, links func(LinkVisitor)) {
	c.queueProbe = queueDepth
	c.walkersProbe = walkersBusy
	c.linkProbe = links
}

func (c *Collector) get(req uint64) *pending {
	p := c.open[req]
	if p == nil {
		p = &pending{}
		c.open[req] = p
	}
	return p
}

// OnQueue accumulates one queue-stage residency onto the request's ledger
// entry (trace.Sink). A span for an already-completed request (the dispatch
// skip path) is counted as late rather than opening a dangling entry.
func (c *Collector) OnQueue(stage string, start, end uint64, req uint64) {
	if c.finalized {
		c.late++
		return
	}
	if _, done := c.closed[req]; done {
		c.late++
		return
	}
	p := c.get(req)
	switch stage {
	case "iommu.admission":
		p.admission += end - start
	case "iommu.pwq":
		p.pwq += end - start
	}
}

// OnWalk accumulates one walker occupancy onto the request's ledger entry
// (trace.Sink). Like OnQueue, a span postdating the request's completion is
// counted late, not stitched.
func (c *Collector) OnWalk(start, end uint64, req, vpn uint64) {
	if c.finalized {
		c.late++
		return
	}
	if _, done := c.closed[req]; done {
		c.late++
		return
	}
	c.get(req).walk += end - start
}

// OnHop accumulates one link traversal into the heatmap (trace.Sink). Hops
// are not attributed to individual requests — the mesh carries responses,
// probes and data traffic under one span type — so per-request wire time is
// the exact remainder computed at completion instead.
func (c *Collector) OnHop(start, end uint64, fromX, fromY, toX, toY, size int, deflected bool) {
	if c.finalized {
		return
	}
	var dir string
	switch {
	case toX == fromX+1:
		dir = "e"
	case toX == fromX-1:
		dir = "w"
	case toY == fromY+1:
		dir = "s"
	default:
		dir = "n"
	}
	i := c.linkSlot(linkKey{fromX, fromY, dir})
	c.linkMsgs[i]++
	c.linkBytes[i] += uint64(size)
	c.linkHop[i] += end - start
	if deflected {
		c.linkDefl[i]++
	}
}

// linkSlot returns the SoA column index for link k, appending a zeroed
// slot across all columns on first sight.
func (c *Collector) linkSlot(k linkKey) int32 {
	if i, ok := c.linkIdx[k]; ok {
		return i
	}
	i := int32(len(c.linkMsgs))
	c.linkIdx[k] = i
	c.linkMsgs = append(c.linkMsgs, 0)
	c.linkBytes = append(c.linkBytes, 0)
	c.linkHop = append(c.linkHop, 0)
	c.linkPrev = append(c.linkPrev, 0)
	c.linkPeak = append(c.linkPeak, 0)
	c.linkFinal = append(c.linkFinal, 0)
	c.linkDefl = append(c.linkDefl, 0)
	return i
}

// OnMigration counts one completed page migration (trace.Sink).
func (c *Collector) OnMigration(start, end uint64, vpn uint64, from, to int) {
	c.migs++
}

// OnRequest finalises one request's ledger entry (trace.Sink): the
// end-to-end latency becomes the total, accumulated stages are recorded, and
// wire is the exact remainder.
func (c *Collector) OnRequest(start, end uint64, req uint64, source, gpm int) {
	if c.finalized {
		c.late++
		return
	}
	total := end - start
	var adm, pwq, walk uint64
	if p := c.open[req]; p != nil {
		adm, pwq, walk = p.admission, p.pwq, p.walk
		delete(c.open, req)
	}
	c.closed[req] = struct{}{}
	var wire uint64
	if svc := adm + pwq + walk; svc <= total {
		wire = total - svc
	} else {
		c.clipped++
	}
	c.stages[StageAdmission].Observe(adm)
	c.stages[StagePWQ].Observe(pwq)
	c.stages[StageWalk].Observe(walk)
	c.stages[StageWire].Observe(wire)
	c.stages[StageTotal].Observe(total)
	c.sources[xlat.Source(source).String()]++
}

// AddTLB accumulates one cache instance's hits and misses into the named
// level ("l1", "l2", "ll", "aux").
func (c *Collector) AddTLB(level string, hits, misses uint64) {
	t := c.tlb[level]
	if t == nil {
		t = &TLBLevel{Level: level}
		c.tlb[level] = t
	}
	t.Hits += hits
	t.Misses += misses
}

// Sample records one window boundary: queue depth and walker occupancy as
// point samples, and per-link busy-cycle deltas (feeding peak-window
// utilisation and the aggregate noc.busy_delta series). Called by the engine
// sampler; strictly read-only against simulator state.
func (c *Collector) Sample(at uint64) {
	if c.finalized {
		return
	}
	if c.queueProbe != nil {
		c.series["iommu.queue_depth"] = append(c.series["iommu.queue_depth"],
			Sample{At: at, Value: float64(c.queueProbe())})
	}
	if c.walkersProbe != nil {
		c.series["iommu.walkers_busy"] = append(c.series["iommu.walkers_busy"],
			Sample{At: at, Value: float64(c.walkersProbe())})
	}
	if c.linkProbe != nil {
		c.series["noc.busy_delta"] = append(c.series["noc.busy_delta"],
			Sample{At: at, Value: float64(c.sweepLinks())})
	}
}

// sweepLinks reads every link's monotonic busy counter, updating per-link
// window deltas and peaks; it returns the total busy delta since last sweep.
func (c *Collector) sweepLinks() uint64 {
	var total uint64
	c.linkProbe(func(x, y int, dir string, busy uint64) {
		i := c.linkSlot(linkKey{x, y, dir})
		d := busy - c.linkPrev[i]
		c.linkPrev[i] = busy
		if d > c.linkPeak[i] {
			c.linkPeak[i] = d
		}
		total += d
	})
	return total
}

// Finalize reduces the ledger into a Breakdown. cycles is the run length
// (Result.Cycles), the denominator for link utilisation. With a live link
// probe wired, Busy is the exact end-of-run occupancy; in replay mode
// (no probe) Busy falls back to the sum of hop span durations, an upper
// bound that includes the fixed hop latency.
func (c *Collector) Finalize(scheme, benchmark string, cycles uint64) *Breakdown {
	b := &Breakdown{
		Scheme:     scheme,
		Benchmark:  benchmark,
		Cycles:     cycles,
		Window:     c.cfg.Window,
		Requests:   c.stages[StageTotal].Count,
		Unfinished: uint64(len(c.open)),
		Clipped:    c.clipped,
		LateSpans:  c.late,
		Migrations: c.migs,
		Stages:     c.stages,
		Sources:    c.sources,
		Series:     c.series,
	}

	// Final link occupancy: one last sweep captures the trailing partial
	// window, then one probe walk stores end-of-run busy into the final
	// column. After that, linkIdx covers every link that saw hops or was
	// probed, so assembling stats is one walk over the index.
	if c.linkProbe != nil {
		c.sweepLinks()
		c.linkProbe(func(x, y int, dir string, busy uint64) {
			c.linkFinal[c.linkSlot(linkKey{x, y, dir})] = busy
		})
	}
	for k, i := range c.linkIdx {
		ls := LinkStat{
			X: k.x, Y: k.y, Dir: k.dir,
			Messages: c.linkMsgs[i], Bytes: c.linkBytes[i],
			Busy:        c.linkHop[i], // replay-mode proxy, overwritten below
			Deflections: c.linkDefl[i],
		}
		if c.linkProbe != nil {
			ls.Busy = c.linkFinal[i]
		}
		if ls.Messages == 0 && ls.Busy == 0 {
			continue
		}
		if cycles > 0 {
			ls.Util = float64(ls.Busy) / float64(cycles)
		}
		if c.cfg.Window > 0 {
			ls.PeakUtil = float64(c.linkPeak[i]) / float64(c.cfg.Window)
		}
		b.Links = append(b.Links, ls)
	}
	sort.Slice(b.Links, func(i, j int) bool {
		a, z := b.Links[i], b.Links[j]
		if a.Y != z.Y {
			return a.Y < z.Y
		}
		if a.X != z.X {
			return a.X < z.X
		}
		return a.Dir < z.Dir
	})

	// TLB levels in hierarchy order, unknown levels alphabetically after.
	order := map[string]int{"l1": 0, "l2": 1, "ll": 2, "aux": 3}
	for _, t := range c.tlb {
		t.HitRate = 0
		if tot := t.Hits + t.Misses; tot > 0 {
			t.HitRate = float64(t.Hits) / float64(tot)
		}
		b.TLB = append(b.TLB, *t)
	}
	sort.Slice(b.TLB, func(i, j int) bool {
		oi, iok := order[b.TLB[i].Level]
		oj, jok := order[b.TLB[j].Level]
		if iok != jok {
			return iok
		}
		if iok && jok && oi != oj {
			return oi < oj
		}
		return b.TLB[i].Level < b.TLB[j].Level
	})

	// The Breakdown now owns everything the caller needs; drop the working
	// ledger so a long-lived process (hdpatd running back-to-back sweeps)
	// does not hold the per-request closed set and per-link columns at peak
	// until the next run's collector replaces this one. Stages, sources and
	// series stay: the Breakdown aliases them.
	c.finalized = true
	c.open = nil
	c.closed = nil
	c.linkIdx = nil
	c.linkMsgs, c.linkBytes, c.linkHop = nil, nil, nil
	c.linkPrev, c.linkPeak, c.linkFinal = nil, nil, nil
	c.linkDefl = nil
	return b
}
