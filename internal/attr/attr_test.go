package attr

import (
	"bytes"
	"math"
	"runtime"
	"strings"
	"testing"

	"hdpat/internal/trace"
)

// The collector must satisfy the tracer's sink seam structurally.
var _ trace.Sink = (*Collector)(nil)

func TestDistBasics(t *testing.T) {
	var d Dist
	if d.Mean() != 0 || d.Quantile(0.5) != 0 {
		t.Error("empty dist should report zeros")
	}
	for _, v := range []uint64{0, 10, 20, 30, 40} {
		d.Observe(v)
	}
	if d.Count != 5 || d.Sum != 100 || d.Min != 0 || d.Max != 40 {
		t.Fatalf("dist = %+v", d)
	}
	if d.Mean() != 20 {
		t.Errorf("mean = %v", d.Mean())
	}
	if q := d.Quantile(0); q != 0 {
		t.Errorf("q0 = %v, want Min", q)
	}
	if q := d.Quantile(1); q != 40 {
		t.Errorf("q1 = %v, want Max", q)
	}
	// Quantiles are estimates but must be monotone and within [Min, Max].
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := d.Quantile(q)
		if v < float64(d.Min) || v > float64(d.Max) || v < prev {
			t.Fatalf("quantile(%v) = %v not monotone in [min,max]", q, v)
		}
		prev = v
	}
}

func TestDistSingleValue(t *testing.T) {
	var d Dist
	for i := 0; i < 100; i++ {
		d.Observe(17)
	}
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99} {
		if v := d.Quantile(q); v != 17 {
			t.Errorf("quantile(%v) = %v, want 17", q, v)
		}
	}
}

// feed pushes one fully-observed request lifecycle through the ledger.
func feed(c *Collector, req uint64, issue, arrive, enq, start, walkEnd, done uint64, src int) {
	if enq > arrive {
		c.OnQueue("iommu.admission", arrive, enq, req)
	}
	if start > enq {
		c.OnQueue("iommu.pwq", enq, start, req)
	}
	c.OnWalk(start, walkEnd, req, 0x42)
	c.OnRequest(issue, done, req, src, 0)
}

func TestExactAccounting(t *testing.T) {
	c := NewCollector(Config{})
	// req 1: issue 0, arrive 100 (wire), enq 100, walk 150..250, done 300.
	feed(c, 1, 0, 100, 100, 150, 250, 300, 0)
	// req 2: admission 10 cycles, pwq 40, walk 100, done with 75 wire.
	feed(c, 2, 1000, 1020, 1030, 1070, 1170, 1225, 1)
	b := c.Finalize("hdpat", "bench", 2000)

	var stageSum uint64
	for _, s := range StageOrder {
		stageSum += b.Stage(s).Sum
	}
	if stageSum != b.Stage(StageTotal).Sum {
		t.Fatalf("stage sums %d != total %d", stageSum, b.Stage(StageTotal).Sum)
	}
	if b.Stage(StageTotal).Sum != 300+225 {
		t.Errorf("total = %d", b.Stage(StageTotal).Sum)
	}
	if b.Stage(StageAdmission).Sum != 10 || b.Stage(StagePWQ).Sum != 50+40 ||
		b.Stage(StageWalk).Sum != 200 {
		t.Errorf("stages: adm=%d pwq=%d walk=%d",
			b.Stage(StageAdmission).Sum, b.Stage(StagePWQ).Sum, b.Stage(StageWalk).Sum)
	}
	if b.Requests != 2 || b.Unfinished != 0 || b.Clipped != 0 {
		t.Errorf("requests=%d unfinished=%d clipped=%d", b.Requests, b.Unfinished, b.Clipped)
	}
	if b.Sources["iommu"] != 1 || b.Sources["peer"] != 1 {
		t.Errorf("sources = %v", b.Sources)
	}
}

func TestUnfinishedAndClipped(t *testing.T) {
	c := NewCollector(Config{})
	// Stage spans with no completing request (a walk racing a peer answer).
	c.OnQueue("iommu.pwq", 0, 50, 7)
	// A malformed lifecycle: more stage cycles than end-to-end latency.
	c.OnWalk(0, 100, 8, 1)
	c.OnRequest(0, 40, 8, 0, 0)
	b := c.Finalize("s", "b", 100)
	if b.Unfinished != 1 {
		t.Errorf("unfinished = %d, want 1", b.Unfinished)
	}
	if b.Clipped != 1 {
		t.Errorf("clipped = %d, want 1", b.Clipped)
	}
	if b.Stage(StageWire).Sum != 0 {
		t.Errorf("clipped request attributed wire %d", b.Stage(StageWire).Sum)
	}
}

func TestHeatmapAndDirections(t *testing.T) {
	c := NewCollector(Config{})
	c.OnHop(0, 40, 1, 1, 2, 1, 64, false) // east from (1,1)
	c.OnHop(0, 40, 1, 1, 0, 1, 32, false) // west
	c.OnHop(0, 40, 1, 1, 1, 2, 16, false) // south
	c.OnHop(0, 40, 1, 1, 1, 0, 8, false)  // north
	c.OnHop(50, 90, 1, 1, 2, 1, 64, true)
	b := c.Finalize("s", "b", 100)
	if len(b.Links) != 4 {
		t.Fatalf("links = %+v", b.Links)
	}
	byDir := map[string]LinkStat{}
	for _, l := range b.Links {
		if l.X != 1 || l.Y != 1 {
			t.Fatalf("unexpected link coord %+v", l)
		}
		byDir[l.Dir] = l
	}
	if byDir["e"].Messages != 2 || byDir["e"].Bytes != 128 {
		t.Errorf("east link = %+v", byDir["e"])
	}
	// The second east hop was a deflection; the other links carried none.
	if byDir["e"].Deflections != 1 {
		t.Errorf("east deflections = %d, want 1", byDir["e"].Deflections)
	}
	if byDir["w"].Deflections != 0 {
		t.Errorf("west deflections = %d, want 0", byDir["w"].Deflections)
	}
	if byDir["w"].Bytes != 32 || byDir["s"].Bytes != 16 || byDir["n"].Bytes != 8 {
		t.Errorf("links = %v", byDir)
	}
	// Replay mode: busy falls back to hop span durations.
	if byDir["e"].Busy != 80 {
		t.Errorf("east busy proxy = %d, want 80", byDir["e"].Busy)
	}
	csv := b.HeatmapCSV()
	if !strings.HasPrefix(csv, "x,y,dir,") || !strings.Contains(csv, ",deflections\n") {
		t.Errorf("csv header: %q", csv)
	}
	if got := len(strings.Split(strings.TrimSpace(csv), "\n")); got != 5 {
		t.Errorf("csv rows = %d, want 5", got)
	}
}

func TestSamplingSeriesAndPeaks(t *testing.T) {
	c := NewCollector(Config{Window: 100})
	depth, walkers := 3, 2
	busy := map[string]uint64{"e": 0}
	c.Probes(
		func() int { return depth },
		func() int { return walkers },
		func(v LinkVisitor) { v(0, 0, "e", busy["e"]) },
	)
	busy["e"] = 40
	c.Sample(100) // delta 40
	depth = 7
	busy["e"] = 130
	c.Sample(200) // delta 90 (peak)
	busy["e"] = 150
	b := c.Finalize("s", "b", 250)

	qd := b.Series["iommu.queue_depth"]
	if len(qd) != 2 || qd[0].Value != 3 || qd[1].Value != 7 || qd[1].At != 200 {
		t.Errorf("queue series = %+v", qd)
	}
	if wb := b.Series["iommu.walkers_busy"]; len(wb) != 2 || wb[0].Value != 2 {
		t.Errorf("walkers series = %+v", wb)
	}
	nb := b.Series["noc.busy_delta"]
	if len(nb) != 2 || nb[0].Value != 40 || nb[1].Value != 90 {
		t.Errorf("busy delta series = %+v", nb)
	}
	if len(b.Links) != 1 {
		t.Fatalf("links = %+v", b.Links)
	}
	l := b.Links[0]
	if l.Busy != 150 { // exact final occupancy from the probe
		t.Errorf("busy = %d, want 150", l.Busy)
	}
	if math.Abs(l.PeakUtil-0.9) > 1e-9 { // 90 busy cycles in a 100-cycle window
		t.Errorf("peak util = %v, want 0.9", l.PeakUtil)
	}
	if math.Abs(l.Util-150.0/250.0) > 1e-9 {
		t.Errorf("util = %v", l.Util)
	}
}

func TestDiffKeys(t *testing.T) {
	a := NewCollector(Config{})
	feed(a, 1, 0, 10, 10, 20, 120, 150, 0)
	bb := NewCollector(Config{})
	feed(bb, 1, 0, 30, 30, 80, 180, 250, 0)
	feed(bb, 2, 0, 30, 30, 80, 180, 250, 0)
	res, base := a.Finalize("hdpat", "x", 1000), bb.Finalize("baseline", "x", 1000)
	d := Diff(res, base)
	if d["requests"] != -1 {
		t.Errorf("requests delta = %v", d["requests"])
	}
	if d["total.mean"] != 150-250 {
		t.Errorf("total.mean delta = %v", d["total.mean"])
	}
	for _, k := range []string{"admission.mean", "pwq.p95", "walk.mean", "wire.p95", "total.p95"} {
		if _, ok := d[k]; !ok {
			t.Errorf("missing diff key %q", k)
		}
	}
}

func TestTLBTable(t *testing.T) {
	c := NewCollector(Config{})
	c.AddTLB("l2", 50, 50)
	c.AddTLB("l1", 90, 10)
	c.AddTLB("l1", 10, 90) // second instance accumulates
	c.AddTLB("aux", 1, 0)
	b := c.Finalize("s", "b", 100)
	if len(b.TLB) != 3 || b.TLB[0].Level != "l1" || b.TLB[1].Level != "l2" || b.TLB[2].Level != "aux" {
		t.Fatalf("tlb order = %+v", b.TLB)
	}
	if b.TLB[0].Hits != 100 || b.TLB[0].HitRate != 0.5 {
		t.Errorf("l1 = %+v", b.TLB[0])
	}
}

func TestMarkdownRendering(t *testing.T) {
	c := NewCollector(Config{})
	feed(c, 1, 0, 100, 100, 150, 250, 300, 0)
	b := c.Finalize("hdpat", "gups", 1000)
	var buf bytes.Buffer
	b.WriteMarkdown(&buf)
	out := buf.String()
	for _, want := range []string{"### hdpat / gups", "| Stage |", "| total |", "| iommu | 1 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	var cmp bytes.Buffer
	CompareMarkdown(&cmp, b, b)
	if !strings.Contains(cmp.String(), "hdpat vs hdpat") || !strings.Contains(cmp.String(), "+0.0") {
		t.Errorf("compare markdown:\n%s", cmp.String())
	}
}

// TestReplayMatchesLive: a breakdown rebuilt from a saved JSONL trace agrees
// with the live collector that saw the same spans.
func TestReplayMatchesLive(t *testing.T) {
	live := NewCollector(Config{})
	var buf bytes.Buffer
	tr := trace.Attach(trace.New(&buf, trace.JSONL), live)
	tr.QueueSpan("iommu.admission", 100, 110, 1)
	tr.QueueSpan("iommu.pwq", 110, 150, 1)
	tr.WalkSpan(150, 250, 1, 0x42)
	tr.HopSpan(250, 290, 0, 0, 1, 0, 64, false)
	tr.RequestSpan(80, 300, 1, 2, 5)
	tr.MigrationSpan(0, 500, 9, 0, 3)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	replayed, err := ReplayJSONL(&buf, -1)
	if err != nil {
		t.Fatal(err)
	}
	want := live.Finalize("", "", 500)
	for _, s := range append(append([]string{}, StageOrder...), StageTotal) {
		if replayed.Stage(s).Sum != want.Stage(s).Sum {
			t.Errorf("stage %s: replay %d != live %d", s, replayed.Stage(s).Sum, want.Stage(s).Sum)
		}
	}
	if replayed.Requests != 1 || replayed.Migrations != 1 {
		t.Errorf("replay = %+v", replayed)
	}
	if replayed.Sources["proactive"] != 1 {
		t.Errorf("replay sources = %v", replayed.Sources)
	}
	if len(replayed.Links) != 1 || replayed.Links[0].Bytes != 64 {
		t.Errorf("replay links = %+v", replayed.Links)
	}
	if replayed.Cycles != 500 {
		t.Errorf("replay cycles = %d", replayed.Cycles)
	}
}

// TestReplayRunFilter: batch traces replay one child at a time.
func TestReplayRunFilter(t *testing.T) {
	var buf bytes.Buffer
	tr := trace.New(&buf, trace.JSONL)
	tr.Run(1).RequestSpan(0, 100, 1, 0, 0)
	tr.Run(2).RequestSpan(0, 200, 2, 0, 0)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := ReplayJSONL(bytes.NewReader(buf.Bytes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Requests != 1 || b.Stage(StageTotal).Sum != 200 {
		t.Errorf("filtered replay = %+v", b)
	}
}

// A queue or walk span arriving after its request completed (the dispatch
// skip path emits residency spans for requests answered elsewhere) must be
// counted late — never stitched into the finished breakdown and never left
// dangling as an unfinished ledger entry.
func TestLateSpansCountedNotStitched(t *testing.T) {
	c := NewCollector(Config{})
	feed(c, 1, 0, 100, 100, 150, 250, 300, 0)
	before := c.Finalize("s", "b", 0).Stage(StageTotal).Sum

	// req 1 is done: its residency spans postdate completion.
	c.OnQueue("iommu.pwq", 300, 400, 1)
	c.OnQueue("iommu.admission", 300, 350, 1)
	c.OnWalk(300, 500, 1, 9)

	b := c.Finalize("s", "b", 1000)
	if b.LateSpans != 3 {
		t.Errorf("late spans = %d, want 3", b.LateSpans)
	}
	if b.Unfinished != 0 {
		t.Errorf("unfinished = %d; late spans must not open dangling entries", b.Unfinished)
	}
	if b.Stage(StageTotal).Sum != before {
		t.Errorf("late spans were stitched: total %d != %d", b.Stage(StageTotal).Sum, before)
	}
	var stageSum uint64
	for _, s := range StageOrder {
		stageSum += b.Stage(s).Sum
	}
	if stageSum != b.Stage(StageTotal).Sum || b.Clipped != 0 {
		t.Errorf("exact accounting broken: stages=%d total=%d clipped=%d",
			stageSum, b.Stage(StageTotal).Sum, b.Clipped)
	}
}

// Finalize must release the working ledger — the per-request open/closed
// sets and the per-link SoA columns — once the Breakdown is built. A
// long-lived hdpatd process runs back-to-back sweeps; before this fix each
// finished run's collector held its peak ledger until the next run replaced
// it.
func TestFinalizeReleasesLedger(t *testing.T) {
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)

	c := NewCollector(Config{})
	// 200k completed requests: the closed set alone is several MB.
	for i := uint64(1); i <= 200_000; i++ {
		c.OnRequest(0, 100, i, 0, 0)
	}
	// A 40x40 wafer's worth of link activity into the SoA columns.
	for x := 0; x < 40; x++ {
		for y := 0; y < 40; y++ {
			c.OnHop(0, 10, x, y, x+1, y, 64, false)
		}
	}
	b := c.Finalize("s", "b", 1000)

	if c.open != nil || c.closed != nil {
		t.Error("request ledger maps retained after Finalize")
	}
	if c.linkIdx != nil || c.linkMsgs != nil || c.linkBytes != nil || c.linkHop != nil ||
		c.linkPrev != nil || c.linkPeak != nil || c.linkFinal != nil {
		t.Error("per-link SoA columns retained after Finalize")
	}

	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	// The collector and breakdown stay live, but with the ledger dropped the
	// residual heap growth must be far below the ~10 MB the closed set held.
	// Generous bound to stay robust against allocator noise.
	if delta := int64(m1.HeapAlloc) - int64(m0.HeapAlloc); delta > 4<<20 {
		t.Errorf("heap grew %d bytes across a finalized run; ledger not released", delta)
	}
	runtime.KeepAlive(c)
	runtime.KeepAlive(b)
}
