package core

import (
	"hdpat/internal/config"
	"hdpat/internal/geom"
	"hdpat/internal/sim"
	"hdpat/internal/vm"
	"hdpat/internal/xlat"
)

// Route is the route-based caching ablation (§IV-B): the request hops
// toward the CPU along its XY path, each intermediate GPM attempting the
// translation from its auxiliary store; on the eventual IOMMU response the
// path GPMs cache the PTE. Its two documented weaknesses — up to five
// attempts of added latency and unbounded PTE duplication — emerge directly.
type Route struct {
	f   *Fabric
	lat config.HDPAT // AuxProbeLatency governs per-hop attempt cost

	Attempts uint64
	Hits     uint64
}

// NewRoute builds the route-based ablation.
func NewRoute(f *Fabric, cfg config.HDPAT) *Route { return &Route{f: f, lat: cfg} }

// Name implements xlat.RemoteTranslator.
func (s *Route) Name() string { return "route" }

// Translate implements xlat.RemoteTranslator.
func (s *Route) Translate(req *xlat.Request) {
	src := s.f.CoordOf(req.Requester)
	path := s.f.Layout.XYPath(src, s.f.Layout.CPU)
	s.step(req, src, path, 0)
}

func (s *Route) step(req *xlat.Request, cur geom.Coord, path []geom.Coord, i int) {
	next := path[i]
	req.Ref() // hop leg: transit plus aux-probe callback
	s.f.Mesh.Send(cur, next, xlat.ReqBytes, func() {
		if next == s.f.Layout.CPU {
			s.f.IOMMU.Submit(req, false)
			// On response, fill the path caches (return-path installs).
			s.fillOnReturn(req, path)
			req.Unref()
			return
		}
		g := s.f.At(next)
		s.Attempts++
		g.ProbeAux(keyOf(req), s.lat.AuxProbeLatency, func(pte vm.PTE, _ xlat.PushOrigin, ok bool) {
			defer req.Unref()
			if ok {
				s.Hits++
				s.f.Respond(next, req, xlat.Result{PTE: pte, Source: xlat.SourceRoute})
				return
			}
			s.step(req, next, path, i+1)
		})
	})
}

// fillOnReturn installs the translation into every GPM on the path once the
// IOMMU answers: the response passes each tile on its way back, so each
// path GPM receives the PTE after its hop distance from the CPU. The
// request carries no shadow callback, so completion is observed by polling
// the (monotonic) completed flag at hop granularity; the poll loop holds a
// reference so the pooled request cannot recycle under it, released as soon
// as the VPN has been read out.
func (s *Route) fillOnReturn(req *xlat.Request, path []geom.Coord) {
	hop := s.f.Mesh.Config().HopLatency
	req.Ref()
	var poll func()
	poll = func() {
		if !req.Completed() {
			s.f.Eng.Schedule(hop, poll)
			return
		}
		vpn := req.VPN
		req.Unref()
		e, _, ok := s.f.Placement.Global().Lookup(vpn)
		if !ok {
			return
		}
		for i, c := range path {
			if c == s.f.Layout.CPU {
				continue
			}
			g := s.f.At(c)
			delay := hop * sim.VTime(len(path)-1-i)
			s.f.Eng.Schedule(delay, func() { g.CacheOnPath(e) })
		}
	}
	s.f.Eng.Schedule(hop, poll)
}

// Concentric is the concentric-caching ablation (§IV-C): one attempt per
// concentric layer — at the layer GPM nearest to the requester — forwarding
// inward on a miss, with no clustering: every layer GPM caches everything it
// serves, so duplication within a layer is unbounded.
type Concentric struct {
	f      *Fabric
	cfg    config.HDPAT
	layers *geom.Layers

	Attempts uint64
	Hits     uint64
}

// NewConcentric builds the concentric-only ablation.
func NewConcentric(f *Fabric, cfg config.HDPAT) *Concentric {
	return &Concentric{f: f, cfg: cfg, layers: geom.NewLayers(f.Layout, cfg.Layers, cfg.Clusters)}
}

// Name implements xlat.RemoteTranslator.
func (s *Concentric) Name() string { return "concentric" }

// nearestInLayer returns the layer-l tile closest (Manhattan) to c.
func (s *Concentric) nearestInLayer(l int, c geom.Coord) geom.Coord {
	best := s.layers.LayerTiles(l)[0]
	bd := c.Manhattan(best)
	for _, t := range s.layers.LayerTiles(l)[1:] {
		if d := c.Manhattan(t); d < bd {
			best, bd = t, d
		}
	}
	return best
}

// Translate implements xlat.RemoteTranslator.
func (s *Concentric) Translate(req *xlat.Request) {
	n := s.layers.NumLayers()
	if n == 0 {
		s.f.ToIOMMU(s.f.CoordOf(req.Requester), req, false)
		return
	}
	s.attempt(req, s.f.CoordOf(req.Requester), n-1)
}

func (s *Concentric) attempt(req *xlat.Request, from geom.Coord, l int) {
	target := s.nearestInLayer(l, from)
	g := s.f.At(target)
	req.Ref() // attempt leg: transit plus aux-probe callback
	s.f.Mesh.Send(from, target, xlat.ReqBytes, func() {
		s.Attempts++
		g.ProbeAux(keyOf(req), s.cfg.AuxProbeLatency, func(pte vm.PTE, _ xlat.PushOrigin, ok bool) {
			defer req.Unref()
			if ok {
				s.Hits++
				s.f.Respond(target, req, xlat.Result{PTE: pte, Source: xlat.SourcePeer})
				return
			}
			if l > 0 {
				s.attempt(req, target, l-1)
				return
			}
			s.f.ToIOMMU(target, req, false)
			// The attempting GPMs cache the eventual translation
			// (unclustered: every server duplicates).
			s.fillLater(g, req)
		})
	})
}

func (s *Concentric) fillLater(g gpmInstaller, req *xlat.Request) {
	hop := s.f.Mesh.Config().HopLatency
	req.Ref() // the poll loop reads req until completion
	var poll func()
	poll = func() {
		if !req.Completed() {
			s.f.Eng.Schedule(hop, poll)
			return
		}
		vpn := req.VPN
		req.Unref()
		if e, _, ok := s.f.Placement.Global().Lookup(vpn); ok {
			g.CacheOnPath(e)
		}
	}
	s.f.Eng.Schedule(hop, poll)
}

type gpmInstaller interface{ CacheOnPath(vm.PTE) }

// Distributed is the straightforward distributed-caching baseline of §V-A:
// the caching GPMs are split into two symmetric groups either side of the
// CPU; a requester probes its group's nearest member, then goes straight to
// the IOMMU — no cross-group lookup, rotation, or redirection.
type Distributed struct {
	f   *Fabric
	cfg config.HDPAT
	// groupPeer[id] is the designated cache peer of GPM id.
	groupPeer []int

	Probes uint64
	Hits   uint64
}

// NewDistributed builds the distributed-caching baseline. It uses the same
// number of caching GPMs as the concentric setup (the tiles of the C rings)
// split into west/east groups by X coordinate relative to the CPU.
func NewDistributed(f *Fabric, cfg config.HDPAT) *Distributed {
	layers := geom.NewLayers(f.Layout, cfg.Layers, cfg.Clusters)
	var west, east []geom.Coord
	for l := 0; l < layers.NumLayers(); l++ {
		for _, t := range layers.LayerTiles(l) {
			if t.X <= f.Layout.CPU.X {
				west = append(west, t)
			} else {
				east = append(east, t)
			}
		}
	}
	s := &Distributed{f: f, cfg: cfg, groupPeer: make([]int, len(f.GPMs))}
	for _, g := range f.GPMs {
		group := west
		if g.Coord.X > f.Layout.CPU.X {
			group = east
		}
		if len(group) == 0 {
			group = append(west, east...)
		}
		best, bd := group[0], g.Coord.Manhattan(group[0])
		for _, t := range group[1:] {
			// A GPM may be its own nearest peer if it is a caching tile.
			if d := g.Coord.Manhattan(t); d < bd {
				best, bd = t, d
			}
		}
		s.groupPeer[g.ID] = f.At(best).ID
	}
	return s
}

// Name implements xlat.RemoteTranslator.
func (s *Distributed) Name() string { return "distributed" }

// Translate implements xlat.RemoteTranslator.
func (s *Distributed) Translate(req *xlat.Request) {
	peer := s.f.GPMs[s.groupPeer[req.Requester]]
	from := s.f.CoordOf(req.Requester)
	s.Probes++
	req.Ref() // probe leg: transit plus aux-probe callback
	s.f.Mesh.Send(from, peer.Coord, xlat.ReqBytes, func() {
		peer.ProbeAux(keyOf(req), s.cfg.AuxProbeLatency, func(pte vm.PTE, _ xlat.PushOrigin, ok bool) {
			defer req.Unref()
			if ok {
				s.Hits++
				s.f.Respond(peer.Coord, req, xlat.Result{PTE: pte, Source: xlat.SourcePeer})
				return
			}
			s.f.ToIOMMU(peer.Coord, req, false)
			// The peer caches the eventual translation for its group.
			s.fill(peer, req)
		})
	})
}

func (s *Distributed) fill(peer gpmInstaller, req *xlat.Request) {
	hop := s.f.Mesh.Config().HopLatency
	req.Ref() // the poll loop reads req until completion
	var poll func()
	poll = func() {
		if !req.Completed() {
			s.f.Eng.Schedule(hop, poll)
			return
		}
		vpn := req.VPN
		req.Unref()
		if e, _, ok := s.f.Placement.Global().Lookup(vpn); ok {
			peer.CacheOnPath(e)
		}
	}
	s.f.Eng.Schedule(hop, poll)
}
