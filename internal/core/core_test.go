package core

import (
	"testing"

	"hdpat/internal/config"
	"hdpat/internal/geom"
	"hdpat/internal/gpm"
	"hdpat/internal/iommu"
	"hdpat/internal/noc"
	"hdpat/internal/sim"
	"hdpat/internal/vm"
	"hdpat/internal/xlat"
)

// testFabric builds a minimal 5x5 wafer with 64 globally mapped pages
// (VPNs 1..64) owned by GPM (id % 24) and empty local page tables, so every
// translation is remote.
func testFabric(t *testing.T, ioCfg config.IOMMU) (*Fabric, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	mesh := geom.NewMesh(5, 5)
	layout := geom.NewLayout(mesh)
	network := noc.New(eng, mesh, noc.DefaultConfig())

	global := vm.NewPageTable()
	for v := vm.VPN(1); v <= 64; v++ {
		global.Insert(vm.PTE{VPN: v, PFN: vm.PFN(v + 7000), Owner: int(v) % 24, Valid: true})
	}

	gcfg := config.MI100GPM()
	gcfg.NumCUs = 1
	var gpms []*gpm.GPM
	for i, c := range mesh.GPMs() {
		g := gpm.New(eng, i, c, gcfg, vm.Page4K, vm.NewPageTable())
		id := uint64(0)
		g.NextReqID = func() uint64 { id++; return id }
		gpms = append(gpms, g)
	}

	io := iommu.New(eng, ioCfg, mesh.CPU, network, global)
	io.GPMCoord = func(id int) geom.Coord { return gpms[id].Coord }

	f := &Fabric{Eng: eng, Mesh: network, Layout: layout, GPMs: gpms, IOMMU: io}
	f.Finish()
	return f, eng
}

func request(f *Fabric, id uint64, vpn vm.VPN, requester int, done func(xlat.Result)) *xlat.Request {
	return xlat.NewRequest(id, 0, vpn, requester, f.Eng.Now(), done)
}

func TestHDPATFallsThroughToIOMMU(t *testing.T) {
	f, eng := testFabric(t, config.HDPATIOMMU())
	s := NewHDPAT(f, config.DefaultHDPAT())
	var got xlat.Result
	s.Translate(request(f, 1, 10, 0, func(r xlat.Result) { got = r }))
	eng.Run()
	if got.PTE.PFN != 7010 {
		t.Fatalf("PFN = %d, want 7010", got.PTE.PFN)
	}
	if got.Source != xlat.SourceIOMMU {
		t.Errorf("cold miss source = %v, want iommu", got.Source)
	}
	if s.ToIOMMU == 0 || s.Probes == 0 {
		t.Errorf("probes=%d toIOMMU=%d", s.Probes, s.ToIOMMU)
	}
	if f.IOMMU.Stats.Walks != 1 {
		t.Errorf("walks = %d", f.IOMMU.Stats.Walks)
	}
}

func TestHDPATPeerHitAfterPush(t *testing.T) {
	f, eng := testFabric(t, config.HDPATIOMMU())
	s := NewHDPAT(f, config.DefaultHDPAT())
	// Two walks cross the push threshold and install aux copies + RT entry.
	for i := uint64(0); i < 2; i++ {
		s.Translate(request(f, i+1, 20, 0, func(xlat.Result) {}))
		eng.Run()
	}
	if f.IOMMU.Stats.PushesDemand == 0 {
		t.Fatal("no demand push after threshold")
	}
	// The next request must be served without a new walk: either by a
	// direct peer probe hit or via redirection.
	walks := f.IOMMU.Stats.Walks
	var got xlat.Result
	s.Translate(request(f, 3, 20, 5, func(r xlat.Result) { got = r }))
	eng.Run()
	if got.PTE.PFN != 7020 {
		t.Fatalf("PFN = %d", got.PTE.PFN)
	}
	if got.Source == xlat.SourceIOMMU {
		t.Errorf("request after push still served by a walk")
	}
	if f.IOMMU.Stats.Walks != walks {
		t.Errorf("extra walk performed: %d -> %d", walks, f.IOMMU.Stats.Walks)
	}
}

func TestHDPATPrefetchInstallsNeighbours(t *testing.T) {
	f, eng := testFabric(t, config.HDPATIOMMU())
	s := NewHDPAT(f, config.DefaultHDPAT())
	s.Translate(request(f, 1, 30, 0, func(xlat.Result) {}))
	eng.Run()
	if f.IOMMU.Stats.PushesPref != 3 {
		t.Fatalf("prefetch pushes = %d, want 3", f.IOMMU.Stats.PushesPref)
	}
	// A first-ever request for VPN 31 must be servable without a walk.
	walks := f.IOMMU.Stats.Walks
	var got xlat.Result
	s.Translate(request(f, 2, 31, 7, func(r xlat.Result) { got = r }))
	eng.Run()
	if got.Source == xlat.SourceIOMMU || f.IOMMU.Stats.Walks != walks {
		t.Errorf("prefetched page walked anyway: source=%v walks %d->%d",
			got.Source, walks, f.IOMMU.Stats.Walks)
	}
	if got.Source != xlat.SourceProactive && got.Source != xlat.SourceRedirect {
		t.Errorf("source = %v, want proactive or redirect", got.Source)
	}
}

func TestHDPATSequentialLayers(t *testing.T) {
	cfg := config.DefaultHDPAT()
	cfg.SequentialLayers = true
	f, eng := testFabric(t, config.HDPATIOMMU())
	s := NewHDPAT(f, cfg)
	done := false
	s.Translate(request(f, 1, 11, 0, func(xlat.Result) { done = true }))
	eng.Run()
	if !done {
		t.Fatal("sequential mode never completed")
	}
	if s.Probes != uint64(s.Layers().NumLayers()) {
		t.Errorf("sequential probes = %d, want %d", s.Probes, s.Layers().NumLayers())
	}
}

func TestHDPATZeroLayersGoesStraightToIOMMU(t *testing.T) {
	cfg := config.DefaultHDPAT()
	cfg.Layers = 0
	f, eng := testFabric(t, config.HDPATIOMMU())
	s := NewHDPAT(f, cfg)
	done := false
	s.Translate(request(f, 1, 12, 3, func(xlat.Result) { done = true }))
	eng.Run()
	if !done || s.Probes != 0 {
		t.Fatalf("done=%v probes=%d", done, s.Probes)
	}
}

func TestHDPATRedirectStaleEntryBouncesToWalk(t *testing.T) {
	f, eng := testFabric(t, config.HDPATIOMMU())
	s := NewHDPAT(f, config.DefaultHDPAT())
	// Plant a stale RT entry pointing at a GPM with an empty aux cache.
	f.IOMMU.RT().Insert(keyOf(request(f, 0, 40, 0, func(xlat.Result) {})), 3)
	var got xlat.Result
	s.Translate(request(f, 1, 40, 0, func(r xlat.Result) { got = r }))
	eng.Run()
	if got.PTE.PFN != 7040 {
		t.Fatalf("stale redirect lost the request: %+v", got)
	}
	if s.RedirectNo == 0 {
		t.Error("stale redirect not recorded")
	}
	if f.IOMMU.Stats.Walks != 1 {
		t.Errorf("walks = %d, want 1 after bounce", f.IOMMU.Stats.Walks)
	}
}

func TestRouteCachesAlongPath(t *testing.T) {
	f, eng := testFabric(t, config.DefaultIOMMU())
	// Route needs placement for return-path fills.
	p := vm.NewPlacement(24, vm.Page4K)
	p.Alloc("all", 64, 0)
	f.Placement = p
	// Rebuild global table from placement so PFNs match fills.
	s := NewRoute(f, config.DefaultHDPAT())
	done := 0
	s.Translate(request(f, 1, 10, 0, func(xlat.Result) { done++ }))
	eng.Run()
	if done != 1 {
		t.Fatal("route request not completed")
	}
	if s.Attempts == 0 {
		t.Error("no intermediate attempts recorded")
	}
	// After the fill, a second request from the same corner should hit an
	// intermediate cache.
	s.Translate(request(f, 2, 10, 0, func(xlat.Result) { done++ }))
	eng.Run()
	if done != 2 {
		t.Fatal("second route request not completed")
	}
	if s.Hits == 0 {
		t.Error("return-path caching never produced a hit")
	}
}

func TestConcentricForwardsInward(t *testing.T) {
	f, eng := testFabric(t, config.DefaultIOMMU())
	p := vm.NewPlacement(24, vm.Page4K)
	p.Alloc("all", 64, 0)
	f.Placement = p
	s := NewConcentric(f, config.DefaultHDPAT())
	done := false
	s.Translate(request(f, 1, 10, 0, func(xlat.Result) { done = true }))
	eng.Run()
	if !done {
		t.Fatal("concentric request not completed")
	}
	if s.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (one per layer)", s.Attempts)
	}
}

func TestDistributedProbesGroupPeer(t *testing.T) {
	f, eng := testFabric(t, config.DefaultIOMMU())
	p := vm.NewPlacement(24, vm.Page4K)
	p.Alloc("all", 64, 0)
	f.Placement = p
	s := NewDistributed(f, config.DefaultHDPAT())
	done := false
	s.Translate(request(f, 1, 10, 0, func(xlat.Result) { done = true }))
	eng.Run()
	if !done || s.Probes != 1 {
		t.Fatalf("done=%v probes=%d", done, s.Probes)
	}
	// Peers stay within the requester's side of the wafer.
	for _, g := range f.GPMs {
		peer := f.GPMs[s.groupPeer[g.ID]]
		cpu := f.Layout.CPU
		if g.Coord.X <= cpu.X && peer.Coord.X > cpu.X {
			t.Errorf("west GPM %v assigned east peer %v", g.Coord, peer.Coord)
		}
	}
}

func TestFabricHelpers(t *testing.T) {
	f, eng := testFabric(t, config.DefaultIOMMU())
	if f.At(f.Layout.CPU) != nil {
		t.Error("CPU tile should have no GPM")
	}
	for _, g := range f.GPMs {
		if f.At(g.Coord) != g {
			t.Fatalf("At(%v) mismatched", g.Coord)
		}
		if f.CoordOf(g.ID) != g.Coord {
			t.Fatalf("CoordOf(%d) mismatched", g.ID)
		}
	}
	delivered := false
	f.Respond(geom.XY(0, 0), request(f, 1, 5, 10, func(xlat.Result) { delivered = true }),
		xlat.Result{})
	eng.Run()
	if !delivered {
		t.Error("Respond did not deliver")
	}
}

func TestFabricShootdown(t *testing.T) {
	f, eng := testFabric(t, config.HDPATIOMMU())
	s := NewHDPAT(f, config.DefaultHDPAT())
	// Resolve VPN 20 twice so pushes install aux copies and an RT entry.
	for i := uint64(0); i < 2; i++ {
		s.Translate(request(f, i+1, 20, 0, func(xlat.Result) {}))
		eng.Run()
	}
	if f.IOMMU.RT().Len() == 0 {
		t.Fatal("no RT entries to shoot down")
	}
	var dropped int
	doneAt := sim.VTime(0)
	f.Shootdown(0, []vm.VPN{20, 21, 22, 23}, func(n int) {
		dropped = n
		doneAt = eng.Now()
	})
	start := eng.Now()
	eng.Run()
	if dropped == 0 {
		t.Error("shootdown dropped nothing despite warm caches")
	}
	if doneAt <= start {
		t.Error("shootdown completed instantaneously")
	}
	// RT no longer redirects for the shot-down page.
	if _, ok := f.IOMMU.RT().Lookup(keyOf(request(f, 9, 20, 0, func(xlat.Result) {}))); ok {
		t.Error("RT entry survived shootdown")
	}
	// The next translation must be a cold walk again.
	walks := f.IOMMU.Stats.Walks
	s.Translate(request(f, 10, 20, 3, func(xlat.Result) {}))
	eng.Run()
	if f.IOMMU.Stats.Walks != walks+1 {
		t.Errorf("post-shootdown request did not walk (walks %d -> %d)", walks, f.IOMMU.Stats.Walks)
	}
}
