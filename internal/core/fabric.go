// Package core implements the paper's contribution: the HDPAT translation
// scheme — concentric auxiliary caching with quadrant clustering and
// rotation (§IV-C/D/E), wired to the IOMMU's redirection table and
// proactive delivery (§IV-F/G) — together with the weaker peer-caching
// designs the ablation study walks through (route-based, concentric-only,
// and the distributed-caching baseline of §V-A).
package core

import (
	"sync"

	"hdpat/internal/geom"
	"hdpat/internal/gpm"
	"hdpat/internal/iommu"
	"hdpat/internal/noc"
	"hdpat/internal/sim"
	"hdpat/internal/tlb"
	"hdpat/internal/vm"
	"hdpat/internal/xlat"
)

// Fabric bundles the assembled wafer hardware a scheme operates over.
type Fabric struct {
	Eng    *sim.Engine
	Mesh   *noc.Mesh
	Layout *geom.Layout
	GPMs   []*gpm.GPM // indexed by GPM id
	IOMMU  *iommu.IOMMU
	// Placement provides owner arithmetic (Trans-FW needs OwnerOf).
	Placement *vm.Placement

	byCoord map[geom.Coord]*gpm.GPM
	msgFree []*reqMsg

	// MsgPool, when set (domain-sharded runs), replaces msgFree: carriers
	// are leased on the sender's domain and released on the receiver's, so
	// the free list must be concurrency-safe. Serial runs leave it nil and
	// keep the allocation-free slice path.
	MsgPool *sync.Pool
}

// reqMsg phases: what happens when the message reaches its destination.
const (
	msgSubmit           = iota // deliver the request to the IOMMU
	msgSubmitNoRedirect        // same, bypassing the redirection table
	msgRespond                 // complete the request at its requester
)

// reqMsg is a pooled mesh message carrying a request (or its result) so the
// two hottest fabric transits — scheme→IOMMU and responder→requester — post
// no closure per message. The carrier holds one reference on the request for
// the duration of the transit; delivery hands off (Submit and Respond take
// their own references) and releases it.
type reqMsg struct {
	f    *Fabric
	req  *xlat.Request
	res  xlat.Result
	kind uint8
}

// Event implements sim.Handler: the message arrived.
func (m *reqMsg) Event(sim.EventArg) {
	f, req, res, kind := m.f, m.req, m.res, m.kind
	*m = reqMsg{}
	if f.MsgPool != nil {
		f.MsgPool.Put(m)
	} else {
		f.msgFree = append(f.msgFree, m)
	}
	switch kind {
	case msgSubmit:
		f.IOMMU.Submit(req, false)
	case msgSubmitNoRedirect:
		f.IOMMU.Submit(req, true)
	case msgRespond:
		req.Complete(res)
	}
	req.Unref()
}

// sendReq leases a carrier holding one transit reference and sends it.
func (f *Fabric) sendReq(from, to geom.Coord, size int, req *xlat.Request, res xlat.Result, kind uint8) {
	req.Ref()
	var m *reqMsg
	if f.MsgPool != nil {
		m, _ = f.MsgPool.Get().(*reqMsg)
	} else if n := len(f.msgFree); n > 0 {
		m = f.msgFree[n-1]
		f.msgFree = f.msgFree[:n-1]
	}
	if m == nil {
		m = new(reqMsg)
	}
	*m = reqMsg{f: f, req: req, res: res, kind: kind}
	f.Mesh.SendH(from, to, size, m, sim.EventArg{})
}

// Finish completes Fabric construction after GPMs are populated.
func (f *Fabric) Finish() {
	f.byCoord = make(map[geom.Coord]*gpm.GPM, len(f.GPMs))
	for _, g := range f.GPMs {
		f.byCoord[g.Coord] = g
	}
}

// At returns the GPM on a tile (nil for the CPU tile).
func (f *Fabric) At(c geom.Coord) *gpm.GPM { return f.byCoord[c] }

// CoordOf returns GPM id's tile.
func (f *Fabric) CoordOf(id int) geom.Coord { return f.GPMs[id].Coord }

// ToIOMMU routes a request from its requester to the CPU tile and submits it.
func (f *Fabric) ToIOMMU(from geom.Coord, req *xlat.Request, noRedirect bool) {
	kind := uint8(msgSubmit)
	if noRedirect {
		kind = msgSubmitNoRedirect
	}
	f.sendReq(from, f.Layout.CPU, xlat.ReqBytes, req, xlat.Result{}, kind)
}

// Respond carries a translation result from a serving tile back to the
// requester and completes the request there.
func (f *Fabric) Respond(from geom.Coord, req *xlat.Request, res xlat.Result) {
	f.sendReq(from, f.CoordOf(req.Requester), xlat.RespBytes, req, res, msgRespond)
}

// keyOf builds the TLB key of a request.
func keyOf(req *xlat.Request) tlb.Key { return tlb.Key{PID: req.PID, VPN: req.VPN} }

// Shootdown performs a wafer-wide TLB shootdown for the given pages: the
// IOMMU purges its redirection table and counters, then broadcasts an
// invalidation to every GPM over the mesh; each GPM invalidates its TLB
// hierarchy and auxiliary cache and acknowledges. done fires when the last
// acknowledgement arrives back at the CPU tile, receiving the total number
// of cached entries dropped. The paper needs this only when freeing memory
// (§II-A); the page-migration extension issues one per migrated page.
func (f *Fabric) Shootdown(pid vm.PID, vpns []vm.VPN, done func(dropped int)) {
	keys := make([]tlb.Key, len(vpns))
	for i, v := range vpns {
		keys[i] = tlb.Key{PID: pid, VPN: v}
	}
	f.IOMMU.Invalidate(keys)
	// One invalidation message per GPM, sized by the key list.
	msgBytes := 16 + 8*len(keys)
	pending := len(f.GPMs)
	dropped := 0
	cpu := f.Layout.CPU
	for _, g := range f.GPMs {
		g := g
		f.Mesh.Send(cpu, g.Coord, msgBytes, func() {
			f.Eng.Schedule(gpm.ShootdownLatency(len(keys)), func() {
				dropped += g.Shootdown(keys)
				f.Mesh.Send(g.Coord, cpu, 8, func() {
					pending--
					if pending == 0 && done != nil {
						done(dropped)
					}
				})
			})
		})
	}
}
