package core

import (
	"sync/atomic"

	"hdpat/internal/config"
	"hdpat/internal/geom"
	"hdpat/internal/vm"
	"hdpat/internal/xlat"
)

// HDPAT is the full scheme: on a local miss the requester computes the
// unique caching GPM per concentric layer (clustering + rotation) and
// probes them — concurrently by default, the earliest positive response
// winning; the innermost layer forwards its miss to the IOMMU, whose
// redirection table, PW-queue revisit and proactive delivery are wired in
// through the Push/Redirect hooks.
type HDPAT struct {
	f      *Fabric
	cfg    config.HDPAT
	layers *geom.Layers

	// Stats. Incremented atomically: in a domain-sharded run the probe,
	// hit, redirect and escalation legs of one request execute on different
	// domains' engines.
	Probes     uint64
	ProbeHits  uint64
	ToIOMMU    uint64
	RedirectOK uint64
	RedirectNo uint64
}

// NewHDPAT builds the scheme and installs the IOMMU hooks. The IOMMU's own
// configuration (redirection entries, revisit, prefetch degree) governs
// which of the complementary mechanisms are active, so the same constructor
// serves the cluster/redirect/prefetch ablations.
func NewHDPAT(f *Fabric, cfg config.HDPAT) *HDPAT {
	s := &HDPAT{f: f, cfg: cfg, layers: geom.NewLayers(f.Layout, cfg.Layers, cfg.Clusters)}
	f.IOMMU.Push = s.push
	f.IOMMU.Redirect = s.redirect
	return s
}

// Name implements xlat.RemoteTranslator.
func (s *HDPAT) Name() string { return "hdpat" }

// Layers exposes the concentric structure (for tests and tools).
func (s *HDPAT) Layers() *geom.Layers { return s.layers }

// Translate implements xlat.RemoteTranslator.
func (s *HDPAT) Translate(req *xlat.Request) {
	n := s.layers.NumLayers()
	if n == 0 {
		s.sendToIOMMU(req)
		return
	}
	if s.cfg.SequentialLayers {
		s.probeLayer(req, n-1, true)
		return
	}
	// Concurrent probes to every layer's responsible GPM (§IV-D: "requests
	// are sent concurrently to all concentric layers, and the earliest
	// response is returned"). Only the innermost layer escalates its miss.
	for l := 0; l < n; l++ {
		s.probeLayer(req, l, false)
	}
}

// probeLayer sends the request to layer l's home GPM for the VPN.
// sequential selects inward forwarding on a miss (layer l-1 next); in
// concurrent mode only layer 0 escalates, and outer-layer misses die.
func (s *HDPAT) probeLayer(req *xlat.Request, l int, sequential bool) {
	home := s.layers.Home(l, uint64(req.VPN))
	target := s.f.At(home)
	from := s.f.CoordOf(req.Requester)
	if sequential && l < s.layers.NumLayers()-1 {
		// Inward forwarding: the request is at the previous layer's GPM.
		from = s.layers.Home(l+1, uint64(req.VPN))
	}
	atomic.AddUint64(&s.Probes, 1)
	req.Ref() // probe leg: transit plus aux-probe callback
	s.f.Mesh.Send(from, home, xlat.ReqBytes, func() {
		target.ProbeAux(keyOf(req), s.cfg.AuxProbeLatency, func(pte vm.PTE, origin xlat.PushOrigin, ok bool) {
			defer req.Unref()
			if ok {
				atomic.AddUint64(&s.ProbeHits, 1)
				s.f.Respond(home, req, xlat.Result{PTE: pte, Source: origin.SourceOf()})
				return
			}
			if l == 0 {
				atomic.AddUint64(&s.ToIOMMU, 1)
				s.f.ToIOMMU(home, req, false)
				return
			}
			if sequential {
				s.probeLayer(req, l-1, true)
			}
			// Concurrent mode: an outer-layer miss is simply dropped; the
			// inner layers or the IOMMU will answer.
		})
	})
}

func (s *HDPAT) sendToIOMMU(req *xlat.Request) {
	atomic.AddUint64(&s.ToIOMMU, 1)
	s.f.ToIOMMU(s.f.CoordOf(req.Requester), req, false)
}

// push implements the IOMMU Push hook: install the PTE in its home GPM of
// each concentric layer (one copy per layer, §IV-F); prefetched PTEs go to
// the innermost layer only, bounding proactive cache pressure. Returns the
// innermost home for the redirection table.
func (s *HDPAT) push(pte vm.PTE, origin xlat.PushOrigin) (int, bool) {
	n := s.layers.NumLayers()
	if n == 0 {
		return 0, false
	}
	if origin == xlat.PushPrefetch {
		n = 1
	}
	innermost := -1
	for l := 0; l < n; l++ {
		home := s.layers.Home(l, uint64(pte.VPN))
		target := s.f.At(home)
		p := pte
		s.f.Mesh.Send(s.f.Layout.CPU, home, xlat.PushPTEBytes, func() {
			target.InstallAux(p, origin)
		})
		if l == 0 {
			innermost = target.ID
		}
	}
	return innermost, true
}

// redirect implements the IOMMU Redirect hook (§IV-F operational flow):
// forward the request to the GPM the redirection table names; a stale entry
// bounces the request back for a real walk and drops the entry.
func (s *HDPAT) redirect(req *xlat.Request, gpmID int) {
	target := s.f.GPMs[gpmID]
	cpu := s.f.Layout.CPU
	// The IOMMU job releases its reference as soon as Redirect returns, so
	// the redirect legs carry their own.
	req.Ref()
	s.f.Mesh.Send(cpu, target.Coord, xlat.ReqBytes, func() {
		target.ProbeAux(keyOf(req), s.cfg.AuxProbeLatency, func(pte vm.PTE, _ xlat.PushOrigin, ok bool) {
			if ok {
				atomic.AddUint64(&s.RedirectOK, 1)
				s.f.Respond(target.Coord, req, xlat.Result{PTE: pte, Source: xlat.SourceRedirect})
				req.Unref()
				return
			}
			atomic.AddUint64(&s.RedirectNo, 1)
			s.f.Mesh.Send(target.Coord, cpu, xlat.ReqBytes, func() {
				if rt := s.f.IOMMU.RT(); rt != nil {
					rt.Remove(keyOf(req))
				}
				s.f.IOMMU.Submit(req, true)
				req.Unref()
			})
		})
	})
}
