package workload

import "hdpat/internal/vm"

// All returns the 14 benchmarks of Table II, in table order.
func All() []Benchmark {
	return []Benchmark{aes(), bt(), fwt(), fft(), fir(), fws(), i2c(), km(), mm(), mt(), pr(), relu(), sc(), spmv()}
}

// single region helper: the whole footprint in one allocation.
func oneRegion(name string) func(int, sizing) []RegionSpec {
	return func(pages int, _ sizing) []RegionSpec {
		return []RegionSpec{{Name: name, Pages: pages}}
	}
}

// split returns a region function dividing the footprint by the given
// fractional weights; the small shared region gets at least minPages.
func split(names []string, weights []int, minPages int) func(int, sizing) []RegionSpec {
	return func(pages int, s sizing) []RegionSpec {
		totalW := 0
		for _, w := range weights {
			totalW += w
		}
		out := make([]RegionSpec, len(names))
		for i := range names {
			p := pages * weights[i] / totalW
			if p < minPages {
				p = minPages
			}
			if p < s.numGPMs {
				p = s.numGPMs
			}
			out[i] = RegionSpec{Name: names[i], Pages: p}
		}
		return out
	}
}

// aes: compute-iterative encryption streaming over the state once. The
// workgroup-to-data mapping is misaligned with the page ownership split by
// half a chunk, so roughly half the stream reads the neighbouring GPM's
// pages — each exactly once, reproducing O3's "each virtual page triggers
// only a single IOMMU request" while the sequential sweep gives AES its
// strong Fig 8 spatial locality. S-boxes live in LDS/constant memory and
// generate no memory traffic.
func aes() Benchmark {
	return Benchmark{
		Abbr: "AES", Name: "Advanced Encryption Standard",
		Workgroups: 4096, FootprintMB: 8, Gap: 48, Pattern: "streaming-misaligned",
		regions: oneRegion("state"),
		trace: func(ctx Context) []vm.VAddr {
			state := ctx.Regions["state"]
			lo, hi := chunkOf(state, ctx.GPM, ctx.NumGPMs)
			s, e := cuSlice(lo, hi, ctx.CU, ctx.NumCUs)
			shift := (hi - lo) / 2
			return streamPages(ctx, state, s+shift, e+shift,
				fitStep(s, e, 1, ctx.OpsBudget), 1)
		},
	}
}

// bt: bitonic sort — descending-distance XOR butterflies; strong page-level
// spatial locality per stage, repeated re-translation across stages.
func bt() Benchmark {
	return Benchmark{
		Abbr: "BT", Name: "Bitonic Sort",
		Workgroups: 16384, FootprintMB: 16, Gap: 8, Pattern: "butterfly",
		regions: oneRegion("data"),
		trace: func(ctx Context) []vm.VAddr {
			return repeatToBudget(ctx, butterfly(ctx, ctx.Regions["data"], false))
		},
	}
}

// fwt: fast Walsh transform — ascending butterflies over a larger footprint.
func fwt() Benchmark {
	return Benchmark{
		Abbr: "FWT", Name: "Fast Walsh Transform",
		Workgroups: 16384, FootprintMB: 64, Gap: 8, Pattern: "butterfly",
		regions: oneRegion("data"),
		trace: func(ctx Context) []vm.VAddr {
			return repeatToBudget(ctx, butterfly(ctx, ctx.Regions["data"], true))
		},
	}
}

// fft: butterfly exchanges plus a shared twiddle-factor table.
func fft() Benchmark {
	return Benchmark{
		Abbr: "FFT", Name: "Fast Fourier Transform",
		Workgroups: 32768, FootprintMB: 256, Gap: 6, Pattern: "butterfly+hot",
		regions: split([]string{"data", "twiddle"}, []int{31, 1}, 1),
		trace: func(ctx Context) []vm.VAddr {
			base := repeatToBudget(ctx, butterfly(ctx, ctx.Regions["data"], true))
			return hotMix(base, ctx.Regions["twiddle"], ctx.PageSize, 16, ctx.rng())
		},
	}
}

// fir: sliding window with a tiny coefficient table — the iterative
// small-stride pattern that profits most from proactive delivery (§V-C).
func fir() Benchmark {
	return Benchmark{
		Abbr: "FIR", Name: "Finite Impulse Response Filter",
		Workgroups: 65536, FootprintMB: 256, Gap: 5, Pattern: "sliding-window",
		regions: split([]string{"signal", "taps"}, []int{127, 1}, 1),
		trace: func(ctx Context) []vm.VAddr {
			base := repeatToBudget(ctx, slidingWindow(ctx, ctx.Regions["signal"], 2, 1))
			return hotMix(base, ctx.Regions["taps"], ctx.PageSize, 12, ctx.rng())
		},
	}
}

// fws: Floyd-Warshall — per round, every GPM re-reads the shared pivot row
// k: hot remote pages with strong cross-GPM temporal reuse.
func fws() Benchmark {
	return Benchmark{
		Abbr: "FWS", Name: "Floyd-Warshall Shortest Paths",
		Workgroups: 65536, FootprintMB: 72, Gap: 6, Pattern: "shared-pivot",
		regions: oneRegion("dist"),
		trace: func(ctx Context) []vm.VAddr {
			dist := ctx.Regions["dist"]
			lo, hi := chunkOf(dist, ctx.GPM, ctx.NumGPMs)
			s, e := cuSlice(lo, hi, ctx.CU, ctx.NumCUs)
			if s >= e {
				return nil
			}
			rounds := 8
			perRound := maxI(ctx.OpsBudget/(rounds*3*linesPerVisit), 1)
			step := maxI((e-s)/perRound, 1)
			var tr []vm.VAddr
			for k := 0; k < rounds; k++ {
				// Pivot row k: the same few pages for every CU on the wafer.
				pivot := k * dist.Pages / rounds
				for pg := s; pg < e; pg += step {
					tr = emit(tr, dist, ctx.PageSize, pg, k, linesPerVisit)
					tr = emit(tr, dist, ctx.PageSize, pivot, k, linesPerVisit)
					tr = emit(tr, dist, ctx.PageSize, pivot+(pg-s)%2, k, linesPerVisit)
				}
			}
			return repeatToBudget(ctx, tr)
		},
	}
}

// i2c: image-to-column — strided window reads with duplication into a local
// output buffer.
func i2c() Benchmark {
	return Benchmark{
		Abbr: "I2C", Name: "Image to Column Conversion",
		Workgroups: 16384, FootprintMB: 32, Gap: 6, Pattern: "strided-window",
		regions: split([]string{"image", "cols"}, []int{1, 3}, 1),
		trace: func(ctx Context) []vm.VAddr {
			// Windows over the shared image (remote for most GPMs),
			// sequential writes into the local column buffer.
			img := ctx.Regions["image"]
			cols := ctx.Regions["cols"]
			lo, hi := chunkOf(cols, ctx.GPM, ctx.NumGPMs)
			s, e := cuSlice(lo, hi, ctx.CU, ctx.NumCUs)
			if s >= e {
				return nil
			}
			cost := 3 * linesPerVisit
			step := fitStep(s, e, 1, ctx.OpsBudget/cost*linesPerVisit)
			var tr []vm.VAddr
			for pg := s; pg < e; pg += step {
				w := pg * img.Pages / maxI(cols.Pages, 1)
				tr = emit(tr, img, ctx.PageSize, w, 0, linesPerVisit)
				tr = emit(tr, img, ctx.PageSize, w+1, 0, linesPerVisit)
				tr = emit(tr, cols, ctx.PageSize, pg, 0, linesPerVisit)
			}
			return repeatToBudget(ctx, tr)
		},
	}
}

// km: kmeans — iterative streams over local points with a hot shared
// centroid region re-read constantly (small stride, high reuse).
func km() Benchmark {
	return Benchmark{
		Abbr: "KM", Name: "KMeans",
		Workgroups: 32768, FootprintMB: 40, Gap: 20, Pattern: "stream+hot",
		regions: split([]string{"points", "centroids"}, []int{39, 1}, 1),
		trace: func(ctx Context) []vm.VAddr {
			points := ctx.Regions["points"]
			lo, hi := chunkOf(points, ctx.GPM, ctx.NumGPMs)
			s, e := cuSlice(lo, hi, ctx.CU, ctx.NumCUs)
			iters := 4
			base := streamPages(ctx, points, s, e, fitStep(s, e, iters, ctx.OpsBudget/2), iters)
			base = repeatToBudget(ctx, base)
			return hotMix(base, ctx.Regions["centroids"], ctx.PageSize, 3, ctx.rng())
		},
	}
}

// mm: tiled matrix multiply — B panels re-read across output tiles.
func mm() Benchmark {
	return Benchmark{
		Abbr: "MM", Name: "Matrix Multiplication",
		Workgroups: 16384, FootprintMB: 256, Gap: 10, Pattern: "tiled-panel",
		regions: split([]string{"a", "b", "c"}, []int{1, 1, 1}, 1),
		trace: func(ctx Context) []vm.VAddr {
			return repeatToBudget(ctx, tiledMM(ctx, ctx.Regions["a"], ctx.Regions["b"], ctx.Regions["c"], 4))
		},
	}
}

// mt: matrix transpose — full-matrix stride writes, enormous reuse
// distances; the paper's worst case for every caching mechanism.
func mt() Benchmark {
	return Benchmark{
		Abbr: "MT", Name: "Matrix Transpose",
		Workgroups: 524288, FootprintMB: 2048, Gap: 4, Pattern: "long-stride",
		regions: split([]string{"a", "b"}, []int{1, 1}, 1),
		trace: func(ctx Context) []vm.VAddr {
			a := ctx.Regions["a"]
			n := 1
			for n*n < a.Pages {
				n++
			}
			return transpose(ctx, a, ctx.Regions["b"], n)
		},
	}
}

// pr: PageRank — edge streams with zipf-distributed reads of the shared
// rank vector: the hot-page temporal reuse that makes PR HDPAT's best case.
func pr() Benchmark {
	return Benchmark{
		Abbr: "PR", Name: "PageRank",
		Workgroups: 524288, FootprintMB: 14, Gap: 5, Pattern: "scatter-gather-zipf",
		regions: split([]string{"edges", "ranks"}, []int{6, 1}, 1),
		trace: func(ctx Context) []vm.VAddr {
			return repeatToBudget(ctx, gather(ctx, ctx.Regions["edges"], ctx.Regions["ranks"], 1.4, 4))
		},
	}
}

// relu: single streaming pass, one touch per page, huge footprint (O3
// lists RELU with AES as single-translation workloads). Like AES, the
// thread-block mapping is offset from the ownership split, producing
// single-touch remote pages around chunk boundaries.
func relu() Benchmark {
	return Benchmark{
		Abbr: "RELU", Name: "Rectified Linear Unit",
		Workgroups: 1310720, FootprintMB: 1280, Gap: 4, Pattern: "streaming-misaligned",
		regions: oneRegion("tensor"),
		trace: func(ctx Context) []vm.VAddr {
			t := ctx.Regions["tensor"]
			lo, hi := chunkOf(t, ctx.GPM, ctx.NumGPMs)
			s, e := cuSlice(lo, hi, ctx.CU, ctx.NumCUs)
			shift := (hi - lo) / 2
			return streamPages(ctx, t, s+shift, e+shift,
				fitStep(s, e, 1, ctx.OpsBudget), 1)
		},
	}
}

// sc: simple convolution — 2-page sliding window over rows with a halo that
// reaches into the neighbouring GPM's partition, plus a small filter table.
func sc() Benchmark {
	return Benchmark{
		Abbr: "SC", Name: "Simple Convolution",
		Workgroups: 262465, FootprintMB: 256, Gap: 5, Pattern: "sliding-window",
		regions: split([]string{"image", "filter"}, []int{127, 1}, 1),
		trace: func(ctx Context) []vm.VAddr {
			base := repeatToBudget(ctx, slidingWindow(ctx, ctx.Regions["image"], 3, 1))
			return hotMix(base, ctx.Regions["filter"], ctx.PageSize, 10, ctx.rng())
		},
	}
}

// spmv: sparse matrix-vector multiply — row streams with uniform-random
// gathers into the dense vector: the irregular all-to-all pattern that
// saturates the IOMMU (Figs 3-4 use SPMV as the stress case).
func spmv() Benchmark {
	return Benchmark{
		Abbr: "SPMV", Name: "Sparse Matrix-Vector Multiplication",
		Workgroups: 81920, FootprintMB: 120, Gap: 4, Pattern: "scatter-gather",
		regions: split([]string{"matrix", "x"}, []int{5, 1}, 1),
		trace: func(ctx Context) []vm.VAddr {
			return repeatToBudget(ctx, gather(ctx, ctx.Regions["matrix"], ctx.Regions["x"], 0, 6))
		},
	}
}
