package workload

import (
	"bytes"
	"strings"
	"testing"

	"hdpat/internal/stats"
	"hdpat/internal/vm"
)

// buildCtx allocates a benchmark's regions on a placement and returns a
// Context for the given GPM/CU.
func buildCtx(t *testing.T, b Benchmark, gpm, cu int) Context {
	t.Helper()
	const numGPMs, numCUs = 48, 4
	p := vm.NewPlacement(numGPMs, vm.Page4K)
	regions := map[string]vm.Region{}
	for _, rs := range b.Regions(16, numGPMs, vm.Page4K) {
		regions[rs.Name] = p.Alloc(rs.Name, rs.Pages, 0)
	}
	return Context{
		Regions: regions, PageSize: vm.Page4K,
		GPM: gpm, NumGPMs: numGPMs, CU: cu, NumCUs: numCUs,
		OpsBudget: 256, Seed: 42,
	}
}

func TestTable2Inventory(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("benchmark count = %d, want 14", len(all))
	}
	want := map[string]struct {
		wg int
		mb int
	}{
		"AES": {4096, 8}, "BT": {16384, 16}, "FWT": {16384, 64},
		"FFT": {32768, 256}, "FIR": {65536, 256}, "FWS": {65536, 72},
		"I2C": {16384, 32}, "KM": {32768, 40}, "MM": {16384, 256},
		"MT": {524288, 2048}, "PR": {524288, 14}, "RELU": {1310720, 1280},
		"SC": {262465, 256}, "SPMV": {81920, 120},
	}
	for _, b := range all {
		w, ok := want[b.Abbr]
		if !ok {
			t.Errorf("unexpected benchmark %s", b.Abbr)
			continue
		}
		if b.Workgroups != w.wg || b.FootprintMB != w.mb {
			t.Errorf("%s: wg=%d fp=%d, want wg=%d fp=%d", b.Abbr, b.Workgroups, b.FootprintMB, w.wg, w.mb)
		}
	}
}

func TestByAbbr(t *testing.T) {
	b, err := ByAbbr("SPMV")
	if err != nil || b.Abbr != "SPMV" {
		t.Fatalf("ByAbbr: %v %v", b.Abbr, err)
	}
	if _, err := ByAbbr("NOPE"); err == nil {
		t.Error("unknown abbr accepted")
	}
	if len(Names()) != 14 {
		t.Errorf("Names() has %d entries", len(Names()))
	}
}

// Every benchmark must produce a nonempty, in-bounds, deterministic trace
// for every sampled (GPM, CU) position.
func TestTracesValidAndDeterministic(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Abbr, func(t *testing.T) {
			for _, pos := range [][2]int{{0, 0}, {13, 1}, {47, 3}} {
				ctx := buildCtx(t, b, pos[0], pos[1])
				tr := b.Trace(ctx)
				if len(tr) == 0 {
					t.Fatalf("empty trace at gpm=%d cu=%d", pos[0], pos[1])
				}
				if len(tr) > ctx.OpsBudget*4 {
					t.Errorf("trace of %d ops blows budget %d", len(tr), ctx.OpsBudget)
				}
				// Same context, same trace.
				tr2 := b.Trace(ctx)
				if len(tr) != len(tr2) {
					t.Fatal("trace nondeterministic in length")
				}
				for i := range tr {
					if tr[i] != tr2[i] {
						t.Fatalf("trace nondeterministic at op %d", i)
					}
				}
				// All addresses land in an allocated region.
				for _, a := range tr {
					vpn := ctx.PageSize.VPNOf(a)
					found := false
					for _, r := range ctx.Regions {
						if r.Contains(vpn) {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("address %#x outside all regions", uint64(a))
					}
				}
			}
		})
	}
}

// Different CUs should mostly access different pages of the partitioned
// regions (work is partitioned, not duplicated) for streaming workloads.
func TestStreamingWorkloadsPartition(t *testing.T) {
	// Compare only the main (partitioned) region. AES is excluded: its
	// scaled state region has fewer pages per GPM than CUs, so CUs share
	// pages round-robin by design.
	mainRegion := map[string]string{"RELU": "tensor"}
	for _, abbr := range []string{"RELU"} {
		b, _ := ByAbbr(abbr)
		ctx0 := buildCtx(t, b, 5, 0)
		ctx1 := buildCtx(t, b, 5, 3)
		main := ctx0.Regions[mainRegion[abbr]]
		pages := func(tr []vm.VAddr) map[vm.VPN]bool {
			m := map[vm.VPN]bool{}
			for _, a := range tr {
				if v := vm.Page4K.VPNOf(a); main.Contains(v) {
					m[v] = true
				}
			}
			return m
		}
		p0, p1 := pages(b.Trace(ctx0)), pages(b.Trace(ctx1))
		overlap := 0
		for v := range p0 {
			if p1[v] {
				overlap++
			}
		}
		// Hot shared regions overlap; the main stream must not.
		if overlap*2 > len(p0) {
			t.Errorf("%s: CU page sets overlap %d/%d", abbr, overlap, len(p0))
		}
	}
}

// pageStream collapses consecutive same-page accesses — the filtering the
// L1 TLB performs before requests reach any shared structure.
func pageStream(tr []vm.VAddr) []uint64 {
	var out []uint64
	var prev uint64
	for i, a := range tr {
		v := uint64(vm.Page4K.VPNOf(a))
		if i == 0 || v != prev {
			out = append(out, v)
			prev = v
		}
	}
	return out
}

// O3 regime check: AES/RELU pages are mostly touched once per CU, while
// BT/FWT re-touch pages across stages.
func TestReuseRegimes(t *testing.T) {
	touch := func(abbr string) float64 {
		b, _ := ByAbbr(abbr)
		ctx := buildCtx(t, b, 10, 0)
		r := stats.NewReuseTracker()
		for _, v := range pageStream(b.Trace(ctx)) {
			r.Touch(v)
		}
		return r.SingleTouchFraction()
	}
	maxCount := func(abbr string) uint64 {
		b, _ := ByAbbr(abbr)
		ctx := buildCtx(t, b, 10, 0)
		r := stats.NewReuseTracker()
		for _, v := range pageStream(b.Trace(ctx)) {
			r.Touch(v)
		}
		return r.CountHistogram().Max()
	}
	if f := touch("RELU"); f < 0.9 {
		t.Errorf("RELU single-touch fraction %.2f, want >= 0.9", f)
	}
	if c := maxCount("RELU"); c > 2 {
		t.Errorf("RELU max per-page touches %d, want <= 2 (single pass)", c)
	}
	// Butterflies re-touch each CU's own pages once per stage.
	if c := maxCount("BT"); c < 4 {
		t.Errorf("BT max per-page touches %d, want >= 4 (one per stage)", c)
	}
	if c := maxCount("FWT"); c < 4 {
		t.Errorf("FWT max per-page touches %d, want >= 4", c)
	}
}

// O4 regime check: FIR (sliding window) must show far more consecutive
// near-page accesses than SPMV (random gather).
func TestSpatialRegimes(t *testing.T) {
	within4 := func(abbr string) float64 {
		b, _ := ByAbbr(abbr)
		ctx := buildCtx(t, b, 10, 0)
		var s stats.SpatialTracker
		for _, v := range pageStream(b.Trace(ctx)) {
			s.Touch(v)
		}
		return s.FractionWithin(4)
	}
	firVal, spmvVal := within4("FIR"), within4("SPMV")
	if firVal <= spmvVal {
		t.Errorf("FIR within-4 %.2f should exceed SPMV %.2f", firVal, spmvVal)
	}
	if firVal < 0.3 {
		t.Errorf("FIR within-4 %.2f too low for a sliding window", firVal)
	}
}

// MT must show much larger reuse distances than KM (hot centroids).
func TestReuseDistanceRegimes(t *testing.T) {
	meanDist := func(abbr string) float64 {
		b, _ := ByAbbr(abbr)
		ctx := buildCtx(t, b, 10, 0)
		r := stats.NewReuseTracker()
		for _, v := range pageStream(b.Trace(ctx)) {
			r.Touch(v)
		}
		if r.Distances.Total() == 0 {
			return 0
		}
		return r.Distances.Mean()
	}
	km, mt := meanDist("KM"), meanDist("MT")
	if km == 0 {
		t.Fatal("KM shows no reuse at all")
	}
	if mt != 0 && mt < km {
		t.Errorf("MT mean reuse distance %.0f should exceed KM %.0f when present", mt, km)
	}
}

// Regions must scale with the footprint and never starve a GPM.
func TestRegionScaling(t *testing.T) {
	for _, b := range All() {
		r16 := b.Regions(16, 48, vm.Page4K)
		r4 := b.Regions(4, 48, vm.Page4K)
		tot := func(rs []RegionSpec) int {
			n := 0
			for _, r := range rs {
				if r.Pages < 48 {
					t.Errorf("%s region %s has %d pages < 48 GPMs", b.Abbr, r.Name, r.Pages)
				}
				n += r.Pages
			}
			return n
		}
		if tot(r4) < tot(r16) {
			t.Errorf("%s: scale 4 total %d < scale 16 total %d", b.Abbr, tot(r4), tot(r16))
		}
	}
}

func TestGapsPositive(t *testing.T) {
	for _, b := range All() {
		if b.Gap <= 0 {
			t.Errorf("%s has non-positive gap", b.Abbr)
		}
		if b.Pattern == "" {
			t.Errorf("%s has no pattern label", b.Abbr)
		}
	}
}

func TestCustomBenchmark(t *testing.T) {
	b := Custom("X", "private hot", 4,
		[]RegionSpec{{Name: "hot", Pages: 96}},
		func(ctx Context) []vm.VAddr {
			r := ctx.Regions["hot"]
			var tr []vm.VAddr
			for i := 0; i < ctx.OpsBudget; i++ {
				tr = append(tr, ctx.PageSize.Base(r.Start+vm.VPN(i%r.Pages)))
			}
			return tr
		})
	if b.Abbr != "X" || b.Pattern != "custom" {
		t.Fatalf("custom benchmark %+v", b)
	}
	// Regions ignore scaling.
	rs := b.Regions(16, 48, vm.Page4K)
	if len(rs) != 1 || rs[0].Pages != 96 {
		t.Fatalf("regions %+v", rs)
	}
	ctx := buildCtx(t, b, 0, 0)
	ctx.Regions = map[string]vm.Region{}
	p := vm.NewPlacement(48, vm.Page4K)
	ctx.Regions["hot"] = p.Alloc("hot", 96, 0)
	tr := b.Trace(ctx)
	if len(tr) != ctx.OpsBudget {
		t.Fatalf("trace len %d", len(tr))
	}
}

func TestTraceRoundTrip(t *testing.T) {
	b, _ := ByAbbr("KM")
	var buf bytes.Buffer
	const numGPMs, numCUs, budget = 8, 2, 32
	if err := WriteTrace(&buf, b, 16, numGPMs, numCUs, budget, vm.Page4K, 9); err != nil {
		t.Fatal(err)
	}
	specs := b.Regions(16, numGPMs, vm.Page4K)
	replay, err := ReadTrace(bytes.NewReader(buf.Bytes()), "KM-replay", b.Gap, specs)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the original traces and compare against the replay built on an
	// identical placement.
	p := vm.NewPlacement(numGPMs, vm.Page4K)
	regions := map[string]vm.Region{}
	for _, rs := range specs {
		regions[rs.Name] = p.Alloc(rs.Name, rs.Pages, 0)
	}
	for g := 0; g < numGPMs; g++ {
		for cu := 0; cu < numCUs; cu++ {
			ctx := Context{Regions: regions, PageSize: vm.Page4K,
				GPM: g, NumGPMs: numGPMs, CU: cu, NumCUs: numCUs,
				OpsBudget: budget, Seed: 9}
			want := b.Trace(ctx)
			got := replay.Trace(ctx)
			if len(got) != len(want) {
				t.Fatalf("gpm %d cu %d: replay %d ops, want %d", g, cu, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("gpm %d cu %d op %d: %#x != %#x", g, cu, i, got[i], want[i])
				}
			}
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader(""), "X", 4, nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := ReadTrace(strings.NewReader("{bad json"), "X", 4, nil); err == nil {
		t.Error("bad json accepted")
	}
	if _, err := FromTraceRecords("X", 4, nil, []TraceRecord{{GPM: -1}}); err == nil {
		t.Error("negative gpm accepted")
	}
}

func TestFromTraceRecordsDropsOutOfRange(t *testing.T) {
	specs := []RegionSpec{{Name: "r", Pages: 48}}
	recs := []TraceRecord{{GPM: 0, CU: 0, Addrs: []uint64{4096, 1 << 50}}}
	b, err := FromTraceRecords("X", 4, specs, recs)
	if err != nil {
		t.Fatal(err)
	}
	p := vm.NewPlacement(48, vm.Page4K)
	regions := map[string]vm.Region{"r": p.Alloc("r", 48, 0)}
	tr := b.Trace(Context{Regions: regions, PageSize: vm.Page4K, GPM: 0, NumGPMs: 48, CU: 0, NumCUs: 1, OpsBudget: 8})
	if len(tr) != 1 {
		t.Fatalf("replay kept %d addrs, want 1 (out-of-range dropped)", len(tr))
	}
}
