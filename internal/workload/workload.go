// Package workload implements the 14 Table II benchmarks as synthetic
// memory-access generators. Real GCN3 kernels are unavailable, so each
// generator reproduces the access pattern the paper attributes to its
// benchmark (random, partitioned, adjacent, scatter-gather, butterfly,
// sliding-window, shared-hot-page): the characterisation harnesses for
// Figs 6-8 verify the streams land in the regimes the paper reports.
//
// A benchmark declares the memory regions it needs (scaled-down Table II
// footprints) and produces, per CU, a deterministic finite trace of virtual
// addresses. The driver model (§II-A) partitions both data and threads
// evenly across GPMs, so generators receive their GPM/CU position and the
// region ownership arithmetic.
package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"hdpat/internal/vm"
)

// ErrUnknownBenchmark is returned (wrapped with the offending abbreviation)
// when a benchmark is not in the Table II suite; match it with errors.Is.
var ErrUnknownBenchmark = errors.New("unknown benchmark")

// RegionSpec names a memory region and its size in pages (already scaled).
type RegionSpec struct {
	Name  string
	Pages int
}

// Context gives a generator everything it needs to produce one CU's trace.
type Context struct {
	Regions  map[string]vm.Region
	PageSize vm.PageSize
	GPM      int
	NumGPMs  int
	CU       int
	NumCUs   int
	// OpsBudget is the approximate number of operations this CU should
	// issue; generators size their patterns to land near it.
	OpsBudget int
	Seed      int64
}

func (c Context) rng() *rand.Rand {
	return rand.New(rand.NewSource(c.Seed ^ int64(c.GPM)<<20 ^ int64(c.CU)<<8))
}

// globalCU returns this CU's index across the whole wafer.
func (c Context) globalCU() int { return c.GPM*c.NumCUs + c.CU }

// totalCUs returns the wafer-wide CU count.
func (c Context) totalCUs() int { return c.NumGPMs * c.NumCUs }

// Benchmark is one Table II workload.
type Benchmark struct {
	Abbr string
	Name string
	// Workgroups and FootprintMB record the unscaled Table II values.
	Workgroups  int
	FootprintMB int
	// Gap is the average cycle count between issue slots per CU: low for
	// memory-bound kernels, high for compute-iterative ones (AES).
	Gap int
	// Pattern is the qualitative label used in docs and tests.
	Pattern string

	regions func(pages int, ctx sizing) []RegionSpec
	trace   func(ctx Context) []vm.VAddr
}

type sizing struct {
	numGPMs int
}

// Regions returns the scaled region list. scale divides the Table II
// footprint; the result is clamped so each GPM owns at least one page of
// the main region.
func (b Benchmark) Regions(scale, numGPMs int, ps vm.PageSize) []RegionSpec {
	total := int(int64(b.FootprintMB) * (1 << 20) / int64(ps) / int64(scale))
	if total < numGPMs {
		total = numGPMs
	}
	return b.regions(total, sizing{numGPMs: numGPMs})
}

// Trace produces the address trace for one CU.
func (b Benchmark) Trace(ctx Context) []vm.VAddr { return b.trace(ctx) }

// ByAbbr resolves a benchmark by its Table II abbreviation.
func ByAbbr(abbr string) (Benchmark, error) {
	for _, b := range All() {
		if b.Abbr == abbr {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: %w %q", ErrUnknownBenchmark, abbr)
}

// Names lists all benchmark abbreviations in Table II order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, b := range all {
		out[i] = b.Abbr
	}
	return out
}

// Custom builds a user-defined benchmark from a region list and a per-CU
// trace generator — the entry point for workloads outside the Table II
// suite. Footprint accounting uses the region pages directly (FootprintMB
// is informational).
func Custom(abbr, name string, gap int, regions []RegionSpec, trace func(ctx Context) []vm.VAddr) Benchmark {
	pages := 0
	for _, r := range regions {
		pages += r.Pages
	}
	return Benchmark{
		Abbr: abbr, Name: name, Gap: gap, Pattern: "custom",
		FootprintMB: pages * 4096 >> 20,
		regions: func(_ int, _ sizing) []RegionSpec {
			out := make([]RegionSpec, len(regions))
			copy(out, regions)
			return out
		},
		trace: trace,
	}
}
