package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"hdpat/internal/vm"
)

// Trace record/replay: a benchmark's per-CU address streams serialise to
// JSON lines ({"gpm":G,"cu":C,"addrs":[...]}), one record per CU. This lets
// users inspect the synthetic streams the generators produce, or feed
// externally captured address traces (e.g. from a real GPU profiler)
// through the simulator via a replaying Benchmark.

// TraceRecord is one CU's address stream.
type TraceRecord struct {
	GPM   int      `json:"gpm"`
	CU    int      `json:"cu"`
	Addrs []uint64 `json:"addrs"`
}

// WriteTrace generates benchmark b's traces for an entire wafer and writes
// them as JSON lines. The regions are allocated on a private placement so
// addresses match what a wafer.Run with the same parameters would issue.
func WriteTrace(w io.Writer, b Benchmark, scale, numGPMs, numCUs, opsBudget int, ps vm.PageSize, seed int64) error {
	placement := vm.NewPlacement(numGPMs, ps)
	regions := map[string]vm.Region{}
	for _, rs := range b.Regions(scale, numGPMs, ps) {
		regions[rs.Name] = placement.Alloc(rs.Name, rs.Pages, 0)
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for g := 0; g < numGPMs; g++ {
		for cu := 0; cu < numCUs; cu++ {
			tr := b.Trace(Context{
				Regions: regions, PageSize: ps,
				GPM: g, NumGPMs: numGPMs, CU: cu, NumCUs: numCUs,
				OpsBudget: opsBudget, Seed: seed,
			})
			rec := TraceRecord{GPM: g, CU: cu, Addrs: make([]uint64, len(tr))}
			for i, a := range tr {
				rec.Addrs[i] = uint64(a)
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTrace parses JSON-line trace records and returns a replaying
// Benchmark. The caller supplies the regions the addresses refer to (page
// counts must cover every address; FromTraceRecords validates this), the
// replay is exact: each (GPM, CU) gets its recorded stream, and positions
// with no record get an empty trace.
func ReadTrace(r io.Reader, abbr string, gap int, regions []RegionSpec) (Benchmark, error) {
	var recs []TraceRecord
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var rec TraceRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return Benchmark{}, fmt.Errorf("workload: bad trace record: %w", err)
		}
		recs = append(recs, rec)
	}
	return FromTraceRecords(abbr, gap, regions, recs)
}

// FromTraceRecords builds a replaying Benchmark from in-memory records.
// Every address must fall inside the named regions once they are allocated
// contiguously in declaration order starting at the replay placement's
// first VPN; addresses are validated at trace-build time.
func FromTraceRecords(abbr string, gap int, regions []RegionSpec, recs []TraceRecord) (Benchmark, error) {
	if len(recs) == 0 {
		return Benchmark{}, fmt.Errorf("workload: empty trace")
	}
	byPos := make(map[[2]int][]uint64, len(recs))
	for _, rec := range recs {
		if rec.GPM < 0 || rec.CU < 0 {
			return Benchmark{}, fmt.Errorf("workload: negative gpm/cu in trace")
		}
		byPos[[2]int{rec.GPM, rec.CU}] = rec.Addrs
	}
	// Total pages across regions bounds the valid address space; the replay
	// assumes region layout matches the recording (same specs, same order).
	totalPages := 0
	for _, r := range regions {
		totalPages += r.Pages
	}
	return Custom(abbr, "trace replay", gap, regions, func(ctx Context) []vm.VAddr {
		addrs := byPos[[2]int{ctx.GPM, ctx.CU}]
		// Rebase: recorded VPN offsets are relative to the first region's
		// start at record time, which equals the replay's first start when
		// the region specs match. Validate bounds rather than trust.
		var first vm.Region
		found := false
		for _, rs := range regions {
			if r, ok := ctx.Regions[rs.Name]; ok && !found {
				first = r
				found = true
			}
		}
		if !found {
			return nil
		}
		limit := first.Start + vm.VPN(totalPages)
		out := make([]vm.VAddr, 0, len(addrs))
		for _, a := range addrs {
			v := ctx.PageSize.VPNOf(vm.VAddr(a))
			if v < first.Start || v >= limit {
				continue // out-of-range record; drop rather than fault
			}
			out = append(out, vm.VAddr(a))
		}
		return out
	}), nil
}
