package workload

import (
	"math/rand"

	"hdpat/internal/vm"
)

// Pattern helpers. All work in units of pages within a region and convert
// to byte addresses at the end; within each visited page a small burst of
// consecutive cacheline addresses is emitted so the data caches see
// realistic line-level locality.

// linesPerVisit is how many consecutive 64 B lines a page visit touches.
const linesPerVisit = 4

// addrOf converts (region, pageIndex, line) to a virtual address.
func addrOf(r vm.Region, ps vm.PageSize, page int, line int) vm.VAddr {
	p := page % r.Pages
	if p < 0 {
		p += r.Pages
	}
	linesPerPage := int(uint64(ps) / 64)
	return ps.Base(r.Start+vm.VPN(p)) + vm.VAddr((line%linesPerPage)*64)
}

// emit appends a burst of lines within one page.
func emit(tr []vm.VAddr, r vm.Region, ps vm.PageSize, page, line, burst int) []vm.VAddr {
	for i := 0; i < burst; i++ {
		tr = append(tr, addrOf(r, ps, page, line+i))
	}
	return tr
}

// chunkOf returns the page range [lo,hi) of region r owned by GPM g under
// the balanced block partition (same arithmetic as vm.Region.OwnerSlice,
// so "local" work really is local).
func chunkOf(r vm.Region, g, numGPMs int) (lo, hi int) {
	return r.OwnerSlice(g, numGPMs)
}

// cuSlice splits [lo,hi) among the GPM's CUs; returns this CU's [s,e).
// With fewer pages than CUs, CUs share pages round-robin so no CU idles.
func cuSlice(lo, hi, cu, numCUs int) (s, e int) {
	n := hi - lo
	if n <= 0 {
		return lo, lo
	}
	if n < numCUs {
		s = lo + cu%n
		return s, s + 1
	}
	s = lo + cu*n/numCUs
	e = lo + (cu+1)*n/numCUs
	return s, e
}

// streamPages walks pages [s,e) in order, visiting each `visits` times with
// a page stride of `step`, repeated for `passes` passes.
func streamPages(ctx Context, r vm.Region, s, e, step, passes int) []vm.VAddr {
	if step < 1 {
		step = 1
	}
	if passes < 1 {
		passes = 1
	}
	var tr []vm.VAddr
	for p := 0; p < passes; p++ {
		for pg := s; pg < e; pg += step {
			tr = emit(tr, r, ctx.PageSize, pg, p*linesPerVisit, linesPerVisit)
		}
	}
	return tr
}

// fitStep chooses a page stride so that walking [s,e) for `passes` passes
// lands near the ops budget (each visit costs linesPerVisit ops).
func fitStep(s, e, passes, budget int) int {
	if budget <= 0 {
		budget = 1
	}
	visits := budget / (linesPerVisit * passes)
	if visits < 1 {
		visits = 1
	}
	span := e - s
	step := span / visits
	if step < 1 {
		step = 1
	}
	return step
}

// hotMix interleaves a base trace with accesses to a small hot region
// (shared read-only structures: AES S-boxes, KMeans centroids, FIR taps):
// every `every` base ops, one access to a rng-chosen hot page.
func hotMix(base []vm.VAddr, hot vm.Region, ps vm.PageSize, every int, rng *rand.Rand) []vm.VAddr {
	if every < 1 {
		every = 1
	}
	out := make([]vm.VAddr, 0, len(base)+len(base)/every+1)
	for i, a := range base {
		out = append(out, a)
		if i%every == every-1 {
			pg := rng.Intn(hot.Pages)
			out = append(out, addrOf(hot, ps, pg, rng.Intn(8)))
		}
	}
	return out
}

// butterfly produces the XOR-partner exchanges of bitonic sort / FWT / FFT:
// for each stage with partner distance d (in pages), each element page i is
// read together with page i^d. Stages sweep d from span/2 down to 1 (or up,
// per `ascending`), giving both cross-wafer and neighbour traffic, and each
// page is re-touched once per stage — the repeated re-translation behaviour
// O3 reports for BT and FWT.
func butterfly(ctx Context, r vm.Region, ascending bool) []vm.VAddr {
	lo, hi := chunkOf(r, ctx.GPM, ctx.NumGPMs)
	s, e := cuSlice(lo, hi, ctx.CU, ctx.NumCUs)
	if s >= e {
		return nil
	}
	// Stage distances: powers of two up to the region size.
	var dists []int
	for d := 1; d < r.Pages; d <<= 1 {
		dists = append(dists, d)
	}
	if !ascending {
		for i, j := 0, len(dists)-1; i < j; i, j = i+1, j-1 {
			dists[i], dists[j] = dists[j], dists[i]
		}
	}
	// Budget: each stage touches each page in [s,e) plus its partner.
	perStage := (e - s) * 2 * linesPerVisit
	stages := len(dists)
	if perStage*stages > ctx.OpsBudget && perStage > 0 {
		stages = ctx.OpsBudget / perStage
		if stages < 1 {
			stages = 1
		}
	}
	// Keep the largest distances (cross-wafer phases) and the smallest
	// (local phases) when trimming, alternating from both ends.
	sel := selectEnds(dists, stages)
	var tr []vm.VAddr
	for si, d := range sel {
		for pg := s; pg < e; pg++ {
			tr = emit(tr, r, ctx.PageSize, pg, si, linesPerVisit)
			tr = emit(tr, r, ctx.PageSize, pg^d, si, linesPerVisit)
		}
	}
	return tr
}

// selectEnds picks n elements from xs alternating first/last/second/... so a
// trimmed butterfly keeps both its global and local phases.
func selectEnds(xs []int, n int) []int {
	if n >= len(xs) {
		return xs
	}
	out := make([]int, 0, n)
	i, j := 0, len(xs)-1
	for len(out) < n {
		out = append(out, xs[i])
		i++
		if len(out) < n {
			out = append(out, xs[j])
			j--
		}
	}
	return out
}

// gather produces SPMV/PR-style scatter-gather: a sequential stream over
// the CU's own slice (row data) interleaved with indexed reads into a
// shared vector; zipfAlpha > 0 skews the indices (hot vertices), 0 means
// uniform random.
func gather(ctx Context, rows, vec vm.Region, zipfAlpha float64, perRow int) []vm.VAddr {
	lo, hi := chunkOf(rows, ctx.GPM, ctx.NumGPMs)
	s, e := cuSlice(lo, hi, ctx.CU, ctx.NumCUs)
	if s >= e {
		return nil
	}
	rng := ctx.rng()
	var zipf *rand.Zipf
	if zipfAlpha > 0 && vec.Pages > 1 {
		zipf = rand.NewZipf(rng, zipfAlpha, 1, uint64(vec.Pages-1))
	}
	// Each row visit costs linesPerVisit + perRow ops.
	rowCost := linesPerVisit + perRow
	step := fitStep(s, e, 1, ctx.OpsBudget/rowCost*linesPerVisit)
	var tr []vm.VAddr
	for pg := s; pg < e; pg += step {
		tr = emit(tr, rows, ctx.PageSize, pg, 0, linesPerVisit)
		for k := 0; k < perRow; k++ {
			var idx int
			if zipf != nil {
				idx = int(zipf.Uint64())
			} else {
				idx = rng.Intn(vec.Pages)
			}
			tr = append(tr, addrOf(vec, ctx.PageSize, idx, rng.Intn(8)))
		}
	}
	return tr
}

// slidingWindow produces FIR/convolution traffic: a forward sweep where
// each step reads a window of `window` consecutive pages starting at the
// step position — heavy overlap between consecutive steps, the small-stride
// iterative pattern O4 highlights for FIR and SC.
func slidingWindow(ctx Context, in vm.Region, window, passes int) []vm.VAddr {
	lo, hi := chunkOf(in, ctx.GPM, ctx.NumGPMs)
	s, e := cuSlice(lo, hi, ctx.CU, ctx.NumCUs)
	if s >= e {
		return nil
	}
	cost := window * linesPerVisit * passes
	step := fitStep(s, e, 1, ctx.OpsBudget/maxI(cost, 1)*linesPerVisit)
	var tr []vm.VAddr
	for p := 0; p < passes; p++ {
		for pg := s; pg < e; pg += step {
			for w := 0; w < window; w++ {
				tr = emit(tr, in, ctx.PageSize, pg+w, p, linesPerVisit)
			}
		}
	}
	return tr
}

// transpose produces MT's traffic: read own rows sequentially, write the
// transposed positions — for an NxN page matrix, page (i,j) maps to
// (j,i) = page j*N+i, a full-matrix stride that crosses every partition.
// The kernel makes a second pass (transpose back, as the benchmark's
// verify step does), so every page is re-touched exactly once at maximal
// reuse distance — the "high-frequency and long-range memory reuse" that
// evicts MT's entries from every cache before reuse (§V-C).
func transpose(ctx Context, a, b vm.Region, n int) []vm.VAddr {
	lo, hi := chunkOf(a, ctx.GPM, ctx.NumGPMs)
	s, e := cuSlice(lo, hi, ctx.CU, ctx.NumCUs)
	if s >= e {
		return nil
	}
	// Each loop iteration emits two page visits (source + target), so the
	// per-visit budget is halved.
	step := fitStep(s, e, 2, ctx.OpsBudget/2)
	var tr []vm.VAddr
	for pass := 0; pass < 2; pass++ {
		for pg := s; pg < e; pg += step {
			i, j := pg/n, pg%n
			if pass == 0 {
				tr = emit(tr, a, ctx.PageSize, pg, 0, linesPerVisit)
				tr = emit(tr, b, ctx.PageSize, j*n+i, 0, linesPerVisit)
			} else {
				tr = emit(tr, b, ctx.PageSize, j*n+i, 1, linesPerVisit)
				tr = emit(tr, a, ctx.PageSize, pg, 1, linesPerVisit)
			}
		}
	}
	return tr
}

// tiledMM produces matrix-multiply panel reuse: for each output tile in the
// CU's share of C, stream a panel of A (local rows) and a panel of B
// (spanning all partitions — remote with reuse across tiles).
func tiledMM(ctx Context, a, b, c vm.Region, tile int) []vm.VAddr {
	lo, hi := chunkOf(c, ctx.GPM, ctx.NumGPMs)
	s, e := cuSlice(lo, hi, ctx.CU, ctx.NumCUs)
	if s >= e {
		return nil
	}
	cost := (2*tile + 1) * linesPerVisit
	step := fitStep(s, e, 1, ctx.OpsBudget/maxI(cost, 1)*linesPerVisit)
	var tr []vm.VAddr
	for pg := s; pg < e; pg += step {
		// A panel: local-ish rows aligned with the output tile.
		for k := 0; k < tile; k++ {
			tr = emit(tr, a, ctx.PageSize, pg+k, 0, linesPerVisit)
		}
		// B panel: column strip — same B pages re-read by every output row,
		// and distributed across the whole allocation.
		col := pg % maxI(b.Pages/maxI(tile, 1), 1)
		for k := 0; k < tile; k++ {
			tr = emit(tr, b, ctx.PageSize, col*tile+k, 0, linesPerVisit)
		}
		tr = emit(tr, c, ctx.PageSize, pg, 0, linesPerVisit)
	}
	return tr
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// repeatToBudget cycles a trace until it reaches roughly the ops budget,
// modelling iterative kernels and repeated launches (AES rounds, KMeans
// iterations, repeated SpMV products over the same matrix). Single-pass
// kernels (RELU, MT) must not use it.
func repeatToBudget(ctx Context, tr []vm.VAddr) []vm.VAddr {
	if len(tr) == 0 || len(tr) >= ctx.OpsBudget {
		return tr
	}
	out := make([]vm.VAddr, 0, ctx.OpsBudget)
	for len(out) < ctx.OpsBudget {
		n := ctx.OpsBudget - len(out)
		if n > len(tr) {
			n = len(tr)
		}
		out = append(out, tr[:n]...)
	}
	return out
}
