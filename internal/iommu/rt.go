package iommu

import (
	"hdpat/internal/tlb"
)

// RedirectTable is the lightweight structure of §IV-F: an LRU-managed map
// from (PID, VPN) to the caching GPM that most recently received that
// translation. It stores no physical addresses and needs no MSHRs, which is
// exactly why it is smaller and more concurrency-friendly than a TLB at
// equal area (Fig 19): a hit simply redirects the request and the entry's
// work is done.
type RedirectTable struct {
	cap   int
	nodes map[tlb.Key]*rtNode
	head  *rtNode // MRU
	tail  *rtNode // LRU

	Hits      uint64
	Misses    uint64
	Inserts   uint64
	Evictions uint64
}

type rtNode struct {
	key        tlb.Key
	gpm        int
	prev, next *rtNode
}

// NewRedirectTable creates a table with the given entry capacity.
func NewRedirectTable(capacity int) *RedirectTable {
	return &RedirectTable{cap: capacity, nodes: make(map[tlb.Key]*rtNode)}
}

// Len returns the resident entry count.
func (r *RedirectTable) Len() int { return len(r.nodes) }

// Capacity returns the entry capacity.
func (r *RedirectTable) Capacity() int { return r.cap }

func (r *RedirectTable) unlink(n *rtNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		r.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		r.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (r *RedirectTable) pushFront(n *rtNode) {
	n.next = r.head
	if r.head != nil {
		r.head.prev = n
	}
	r.head = n
	if r.tail == nil {
		r.tail = n
	}
}

// Lookup returns the GPM holding k's translation, refreshing recency.
func (r *RedirectTable) Lookup(k tlb.Key) (int, bool) {
	n, ok := r.nodes[k]
	if !ok {
		r.Misses++
		return 0, false
	}
	r.unlink(n)
	r.pushFront(n)
	r.Hits++
	return n.gpm, true
}

// Insert records that gpm now holds k's translation, evicting LRU on
// overflow. Re-inserting refreshes and may re-point an existing entry.
func (r *RedirectTable) Insert(k tlb.Key, gpm int) {
	if r.cap <= 0 {
		return
	}
	if n, ok := r.nodes[k]; ok {
		n.gpm = gpm
		r.unlink(n)
		r.pushFront(n)
		return
	}
	if len(r.nodes) >= r.cap {
		victim := r.tail
		r.unlink(victim)
		delete(r.nodes, victim.key)
		r.Evictions++
	}
	n := &rtNode{key: k, gpm: gpm}
	r.nodes[k] = n
	r.pushFront(n)
	r.Inserts++
}

// Remove drops a stale entry (a redirect that missed at the target GPM).
func (r *RedirectTable) Remove(k tlb.Key) bool {
	n, ok := r.nodes[k]
	if !ok {
		return false
	}
	r.unlink(n)
	delete(r.nodes, k)
	return true
}
