package iommu

import (
	"testing"

	"hdpat/internal/config"
	"hdpat/internal/geom"
	"hdpat/internal/noc"
	"hdpat/internal/sim"
	"hdpat/internal/stats"
	"hdpat/internal/tlb"
	"hdpat/internal/trace"
	"hdpat/internal/vm"
	"hdpat/internal/xlat"
)

type harness struct {
	eng  *sim.Engine
	io   *IOMMU
	id   uint64
	gpm0 geom.Coord
}

func newHarness(t *testing.T, cfg config.IOMMU, pages int) *harness {
	t.Helper()
	eng := sim.NewEngine()
	layout := geom.NewMesh(7, 7)
	mesh := noc.New(eng, layout, noc.DefaultConfig())
	global := vm.NewPageTable()
	for v := vm.VPN(1); v <= vm.VPN(pages); v++ {
		global.Insert(vm.PTE{VPN: v, PFN: vm.PFN(v + 5000), Owner: int(v) % 48, Valid: true})
	}
	io := New(eng, cfg, layout.CPU, mesh, global)
	gpm0 := geom.XY(0, 0)
	io.GPMCoord = func(id int) geom.Coord { return gpm0 }
	return &harness{eng: eng, io: io, gpm0: gpm0}
}

func (h *harness) request(v vm.VPN, done func(xlat.Result)) *xlat.Request {
	h.id++
	return xlat.NewRequest(h.id, 0, v, 0, h.eng.Now(), done)
}

func TestWalkRespondsWithCorrectPTE(t *testing.T) {
	h := newHarness(t, config.DefaultIOMMU(), 100)
	var got xlat.Result
	h.io.Submit(h.request(42, func(r xlat.Result) { got = r }), false)
	h.eng.Run()
	if got.PTE.PFN != 5042 {
		t.Fatalf("PFN = %d, want 5042", got.PTE.PFN)
	}
	if got.Source != xlat.SourceIOMMU {
		t.Errorf("source = %v", got.Source)
	}
	if h.io.Stats.Walks != 1 {
		t.Errorf("walks = %d", h.io.Stats.Walks)
	}
	// Walk latency: >= 500 walk + response mesh trip.
	pre, q, w := h.io.Stats.Breakdown.Means()
	if w != 500 || pre != 0 || q != 0 {
		t.Errorf("breakdown = %f,%f,%f; want 0,0,500", pre, q, w)
	}
}

func TestWalkerQueueing(t *testing.T) {
	cfg := config.DefaultIOMMU()
	cfg.Walkers = 1
	h := newHarness(t, cfg, 100)
	var done []sim.VTime
	for v := vm.VPN(1); v <= 3; v++ {
		h.io.Submit(h.request(v, func(xlat.Result) { done = append(done, h.eng.Now()) }), false)
	}
	h.eng.Run()
	// Serialized: walks complete at 500, 1000, 1500 (+mesh).
	if len(done) != 3 {
		t.Fatalf("completions = %d", len(done))
	}
	if done[1]-done[0] != 500 || done[2]-done[1] != 500 {
		t.Errorf("completion spacing %v; want 500 apart", done)
	}
	_, q, _ := h.io.Stats.Breakdown.Means()
	if q == 0 {
		t.Error("PTW queueing time not recorded")
	}
}

func TestAdmissionStageWhenPWQueueFull(t *testing.T) {
	cfg := config.DefaultIOMMU()
	cfg.Walkers = 1
	cfg.PWQueueCap = 2
	h := newHarness(t, cfg, 100)
	for v := vm.VPN(1); v <= 10; v++ {
		h.io.Submit(h.request(v, func(xlat.Result) {}), false)
	}
	// One request is already in service (WalkersBusy), the other nine wait
	// across the PW-queue and the admission stage; QueueDepth counts only
	// the waiters, matching Stats.PeakQueue and the sampled series.
	if h.io.QueueDepth() != 9 || h.io.WalkersBusy() != 1 {
		t.Fatalf("queue depth = %d, walkers busy = %d, want 9 and 1",
			h.io.QueueDepth(), h.io.WalkersBusy())
	}
	h.eng.Run()
	pre, _, _ := h.io.Stats.Breakdown.Means()
	if pre == 0 {
		t.Error("pre-queue time not recorded despite full PW-queue")
	}
	if h.io.Stats.PeakQueue < 8 {
		t.Errorf("peak queue = %d", h.io.Stats.PeakQueue)
	}
}

func TestRevisitCoalescesDuplicates(t *testing.T) {
	cfg := config.DefaultIOMMU()
	cfg.Walkers = 1
	cfg.Revisit = true
	h := newHarness(t, cfg, 100)
	done := 0
	for i := 0; i < 5; i++ {
		h.io.Submit(h.request(7, func(xlat.Result) { done++ }), false)
	}
	h.eng.Run()
	if done != 5 {
		t.Fatalf("completions = %d", done)
	}
	if h.io.Stats.Walks != 1 {
		t.Errorf("walks = %d, want 1 (revisit should absorb duplicates)", h.io.Stats.Walks)
	}
	if h.io.Stats.Revisits != 4 {
		t.Errorf("revisits = %d, want 4", h.io.Stats.Revisits)
	}
}

func TestNoRevisitWalksEachDuplicate(t *testing.T) {
	cfg := config.DefaultIOMMU()
	cfg.Walkers = 1
	h := newHarness(t, cfg, 100)
	for i := 0; i < 3; i++ {
		h.io.Submit(h.request(7, func(xlat.Result) {}), false)
	}
	h.eng.Run()
	if h.io.Stats.Walks != 3 {
		t.Errorf("walks = %d, want 3 without revisit", h.io.Stats.Walks)
	}
}

func TestRedirectionTableFlow(t *testing.T) {
	cfg := config.HDPATIOMMU()
	h := newHarness(t, cfg, 100)
	pushes := 0
	h.io.Push = func(pte vm.PTE, origin xlat.PushOrigin) (int, bool) {
		pushes++
		return 5, true
	}
	redirected := 0
	h.io.Redirect = func(req *xlat.Request, gpm int) {
		redirected++
		if gpm != 5 {
			t.Errorf("redirect target = %d, want 5", gpm)
		}
		// Simulate the peer serving it.
		req.Complete(xlat.Result{PTE: vm.PTE{VPN: req.VPN, PFN: 1}, Source: xlat.SourceRedirect})
	}
	// First two requests walk (threshold 2 reached on the second), which
	// pushes and installs an RT entry; the third redirects.
	for i := 0; i < 2; i++ {
		h.io.Submit(h.request(9, func(xlat.Result) {}), false)
		h.eng.Run()
	}
	if pushes == 0 {
		t.Fatal("no push after threshold crossed")
	}
	h.io.Submit(h.request(9, func(xlat.Result) {}), false)
	h.eng.Run()
	if redirected != 1 || h.io.Stats.RTRedirects != 1 {
		t.Errorf("redirected = %d, RTRedirects = %d", redirected, h.io.Stats.RTRedirects)
	}
}

func TestNoRedirectBypassesRT(t *testing.T) {
	cfg := config.HDPATIOMMU()
	h := newHarness(t, cfg, 100)
	h.io.Redirect = func(req *xlat.Request, gpm int) {
		t.Error("noRedirect request was redirected")
	}
	h.io.RT().Insert(tlb.Key{VPN: 9}, 5)
	done := false
	h.io.Submit(h.request(9, func(xlat.Result) { done = true }), true)
	h.eng.Run()
	if !done {
		t.Fatal("request not served")
	}
	if h.io.Stats.Walks != 1 {
		t.Errorf("walks = %d", h.io.Stats.Walks)
	}
}

func TestSelectivePushThreshold(t *testing.T) {
	cfg := config.HDPATIOMMU()
	cfg.PrefetchDegree = 1 // isolate demand pushes
	cfg.PushThreshold = 3
	h := newHarness(t, cfg, 100)
	pushes := 0
	h.io.Push = func(vm.PTE, xlat.PushOrigin) (int, bool) { pushes++; return 1, true }
	for i := 0; i < 2; i++ {
		h.io.Submit(h.request(11, func(xlat.Result) {}), true)
		h.eng.Run()
	}
	if pushes != 0 {
		t.Fatalf("pushed below threshold (count=2 < 3)")
	}
	h.io.Submit(h.request(11, func(xlat.Result) {}), true)
	h.eng.Run()
	if pushes != 1 {
		t.Errorf("pushes = %d after crossing threshold", pushes)
	}
	if h.io.AccessCount(tlb.Key{VPN: 11}) != 3 {
		t.Errorf("access count = %d", h.io.AccessCount(tlb.Key{VPN: 11}))
	}
}

func TestPrefetchDeliversNeighbours(t *testing.T) {
	cfg := config.HDPATIOMMU() // degree 4
	h := newHarness(t, cfg, 100)
	var pushed []vm.VPN
	var origins []xlat.PushOrigin
	h.io.Push = func(pte vm.PTE, o xlat.PushOrigin) (int, bool) {
		pushed = append(pushed, pte.VPN)
		origins = append(origins, o)
		return 2, true
	}
	h.io.Submit(h.request(20, func(xlat.Result) {}), false)
	h.eng.Run()
	// Demand push requires threshold 2; only prefetch pushes (21,22,23) fire.
	if len(pushed) != 3 {
		t.Fatalf("pushed %v", pushed)
	}
	for i, v := range []vm.VPN{21, 22, 23} {
		if pushed[i] != v || origins[i] != xlat.PushPrefetch {
			t.Errorf("push %d = %d/%v", i, pushed[i], origins[i])
		}
	}
	if h.io.Stats.Prefetches != 3 {
		t.Errorf("prefetches = %d", h.io.Stats.Prefetches)
	}
	// RT learned N+1: next request for 21 should redirect.
	if gpm, ok := h.io.RT().Lookup(tlb.Key{VPN: 21}); !ok || gpm != 2 {
		t.Errorf("RT entry for N+1: %d,%v", gpm, ok)
	}
}

func TestPrefetchChargesWalkerService(t *testing.T) {
	cfg := config.HDPATIOMMU()
	h := newHarness(t, cfg, 100)
	h.io.Submit(h.request(20, func(xlat.Result) {}), false)
	h.eng.Run()
	_, _, w := h.io.Stats.Breakdown.Means()
	want := 500 + 5*3
	if int(w) != want {
		t.Errorf("walk service = %f, want %d", w, want)
	}
}

func TestPrefetchStopsAtUnmappedPages(t *testing.T) {
	cfg := config.HDPATIOMMU()
	h := newHarness(t, cfg, 20) // pages 1..20 mapped
	pushes := 0
	h.io.Push = func(vm.PTE, xlat.PushOrigin) (int, bool) { pushes++; return 0, true }
	h.io.Submit(h.request(20, func(xlat.Result) {}), false)
	h.eng.Run()
	if pushes != 0 {
		t.Errorf("pushed %d unmapped prefetches", pushes)
	}
}

func TestIOMMUTLBVariant(t *testing.T) {
	cfg := config.HDPATIOMMU()
	cfg.UseTLB = true
	cfg.PrefetchDegree = 1
	h := newHarness(t, cfg, 100)
	done := 0
	h.io.Submit(h.request(30, func(r xlat.Result) {
		done++
		if r.Source != xlat.SourceIOMMU {
			t.Errorf("first request source %v", r.Source)
		}
	}), false)
	h.eng.Run()
	h.io.Submit(h.request(30, func(r xlat.Result) {
		done++
		if r.Source != xlat.SourceRedirect {
			t.Errorf("TLB hit source %v", r.Source)
		}
	}), false)
	h.eng.Run()
	if done != 2 {
		t.Fatalf("completions = %d", done)
	}
	if h.io.Stats.TLBHits != 1 || h.io.Stats.Walks != 1 {
		t.Errorf("tlbHits=%d walks=%d", h.io.Stats.TLBHits, h.io.Stats.Walks)
	}
}

func TestIOMMUTLBMSHRCoalesces(t *testing.T) {
	cfg := config.HDPATIOMMU()
	cfg.UseTLB = true
	cfg.PrefetchDegree = 1
	h := newHarness(t, cfg, 100)
	done := 0
	for i := 0; i < 4; i++ {
		h.io.Submit(h.request(31, func(xlat.Result) { done++ }), false)
	}
	h.eng.Run()
	if done != 4 {
		t.Fatalf("completions = %d", done)
	}
	if h.io.Stats.Walks != 1 {
		t.Errorf("walks = %d, want 1 (MSHR coalescing)", h.io.Stats.Walks)
	}
}

func TestQueueSeriesAndHooks(t *testing.T) {
	cfg := config.DefaultIOMMU()
	cfg.Walkers = 1
	h := newHarness(t, cfg, 100)
	h.io.QueueSeries = stats.NewMaxSeries(100)
	var observed []vm.VPN
	h.io.AddHook(RequestHookFunc(func(now sim.VTime, req *xlat.Request) { observed = append(observed, req.VPN) }))
	for v := vm.VPN(1); v <= 5; v++ {
		h.io.Submit(h.request(v, func(xlat.Result) {}), false)
	}
	h.eng.Run()
	if len(observed) != 5 {
		t.Errorf("hook saw %d requests", len(observed))
	}
	if h.io.QueueSeries.Peak() < 3 {
		t.Errorf("queue series peak = %f", h.io.QueueSeries.Peak())
	}
}

// A request that queued before its translation was pushed elsewhere must be
// redirected at dispatch time instead of walking (§IV-F catch-up).
func TestDispatchTimeRedirect(t *testing.T) {
	cfg := config.HDPATIOMMU()
	cfg.Walkers = 1
	cfg.PrefetchDegree = 1
	cfg.Revisit = false // isolate the dispatch-time RT path from revisit
	h := newHarness(t, cfg, 100)
	redirected := 0
	h.io.Push = func(vm.PTE, xlat.PushOrigin) (int, bool) { return 4, true }
	h.io.Redirect = func(req *xlat.Request, gpm int) {
		redirected++
		req.Complete(xlat.Result{Source: xlat.SourceRedirect})
	}
	// Fill the walker with a slow request, then enqueue two more for VPN 7
	// while the RT has no entry yet.
	h.io.Submit(h.request(7, func(xlat.Result) {}), false)
	h.io.Submit(h.request(7, func(xlat.Result) {}), false)
	h.io.Submit(h.request(7, func(xlat.Result) {}), false)
	h.eng.Run()
	// First walk completes (count 1 < threshold 2: no push). Second walk
	// completes (count 2: push + RT insert). The third, still queued, must
	// redirect at dispatch.
	if redirected != 1 {
		t.Errorf("dispatch-time redirects = %d, want 1", redirected)
	}
	if h.io.Stats.Walks != 2 {
		t.Errorf("walks = %d, want 2", h.io.Stats.Walks)
	}
}

// A queued request answered by a peer while waiting must not burn a walker.
func TestDispatchSkipsCompletedRequests(t *testing.T) {
	cfg := config.DefaultIOMMU()
	cfg.Walkers = 1
	h := newHarness(t, cfg, 100)
	var reqs []*xlat.Request
	for v := vm.VPN(1); v <= 3; v++ {
		r := h.request(v, func(xlat.Result) {})
		reqs = append(reqs, r)
		h.io.Submit(r, false)
	}
	// Complete the last queued request out of band (peer probe win).
	reqs[2].Complete(xlat.Result{Source: xlat.SourcePeer})
	h.eng.Run()
	if h.io.Stats.Walks != 2 {
		t.Errorf("walks = %d, want 2 (completed request skipped)", h.io.Stats.Walks)
	}
}

func TestRevisitLimitedToPWQueue(t *testing.T) {
	cfg := config.DefaultIOMMU()
	cfg.Walkers = 1
	cfg.PWQueueCap = 2
	cfg.Revisit = true
	h := newHarness(t, cfg, 100)
	// 6 identical requests: 1 walks, 1 waits in the PW-queue (cap 2 incl.
	// the walker's slot handling), the rest sit in admission. Revisit can
	// only absorb the PW-queue resident ones per completion, but admission
	// promotion refills the queue, so over the run all complete with fewer
	// walks than requests yet more than a single walk would suggest.
	done := 0
	for i := 0; i < 6; i++ {
		h.io.Submit(h.request(9, func(xlat.Result) { done++ }), false)
	}
	h.eng.Run()
	if done != 6 {
		t.Fatalf("completions = %d", done)
	}
	if h.io.Stats.Walks == 1 {
		t.Error("revisit absorbed admission-stage requests; it must only scan the PW-queue")
	}
	if h.io.Stats.Revisits == 0 {
		t.Error("no revisits at all")
	}
}

// sinkRecorder captures typed spans for assertions on the tracing seam.
type sinkRecorder struct {
	queues []recordedQueue
	walks  int
}

type recordedQueue struct {
	stage string
	req   uint64
	start uint64
	end   uint64
}

func (s *sinkRecorder) OnRequest(start, end uint64, req uint64, source, gpm int) {}
func (s *sinkRecorder) OnQueue(stage string, start, end uint64, req uint64) {
	s.queues = append(s.queues, recordedQueue{stage, req, start, end})
}
func (s *sinkRecorder) OnWalk(start, end uint64, req, vpn uint64)                         { s.walks++ }
func (s *sinkRecorder) OnHop(start, end uint64, fx, fy, tx, ty, size int, deflected bool) {}
func (s *sinkRecorder) OnMigration(start, end uint64, vpn uint64, from, to int)           {}

// checkConservation asserts the request accounting law: every Submit
// terminates in exactly one of the six terminal counters.
func checkConservation(t *testing.T, io *IOMMU) {
	t.Helper()
	s := io.Stats
	terminal := s.TLBHits + s.MSHRMerged + s.Walks + s.Revisits + s.RTRedirects + s.SkippedCompleted
	if s.Requests != terminal {
		t.Errorf("conservation violated: Requests=%d, terminal sum=%d (tlb=%d merged=%d walks=%d revisits=%d redirects=%d skipped=%d)",
			s.Requests, terminal, s.TLBHits, s.MSHRMerged, s.Walks, s.Revisits, s.RTRedirects, s.SkippedCompleted)
	}
}

// The dispatch skip path must emit the skipped job's queue-residency spans
// and count it, or its queue time vanishes from traces and the conservation
// law breaks.
func TestDispatchSkipEmitsQueueSpans(t *testing.T) {
	cfg := config.DefaultIOMMU()
	cfg.Walkers = 1
	h := newHarness(t, cfg, 100)
	rec := &sinkRecorder{}
	h.io.Trace = trace.Attach(nil, rec)
	var reqs []*xlat.Request
	for v := vm.VPN(1); v <= 3; v++ {
		r := h.request(v, func(xlat.Result) {})
		reqs = append(reqs, r)
		h.io.Submit(r, false)
	}
	// Complete the last queued request out of band (peer probe win).
	reqs[2].Complete(xlat.Result{Source: xlat.SourcePeer})
	h.eng.Run()
	if h.io.Stats.SkippedCompleted != 1 {
		t.Fatalf("SkippedCompleted = %d, want 1", h.io.Stats.SkippedCompleted)
	}
	found := false
	for _, q := range rec.queues {
		if q.req == reqs[2].ID && q.stage == "iommu.pwq" {
			found = true
			if q.end <= q.start {
				t.Errorf("skipped request's pwq span [%d,%d] is empty", q.start, q.end)
			}
		}
	}
	if !found {
		t.Errorf("no iommu.pwq span for the skipped request %d; spans: %+v", reqs[2].ID, rec.queues)
	}
	checkConservation(t, h.io)
}

// MSHR merges must be counted so request accounting stays exact: coalesced
// arrivals terminate in MSHRMerged, primaries in Walks.
func TestIOMMUTLBMergeAccounting(t *testing.T) {
	cfg := config.HDPATIOMMU()
	cfg.UseTLB = true
	cfg.PrefetchDegree = 1
	h := newHarness(t, cfg, 100)
	done := 0
	for i := 0; i < 4; i++ {
		h.io.Submit(h.request(31, func(xlat.Result) { done++ }), false)
	}
	h.eng.Run()
	if done != 4 {
		t.Fatalf("completions = %d", done)
	}
	if h.io.Stats.Walks != 1 || h.io.Stats.MSHRMerged != 3 {
		t.Errorf("walks=%d merged=%d, want 1 and 3", h.io.Stats.Walks, h.io.Stats.MSHRMerged)
	}
	checkConservation(t, h.io)
}

// Blocked arrivals (full MSHRs) must drain as walks complete registers, with
// every request terminating in exactly one counter: blocking itself is not
// terminal, so MSHRBlocked does not appear in the conservation sum.
func TestTLBWaitDrainAccounting(t *testing.T) {
	cfg := config.HDPATIOMMU()
	cfg.UseTLB = true
	cfg.TLBMSHRs = 2
	cfg.Walkers = 1
	cfg.PrefetchDegree = 1
	h := newHarness(t, cfg, 100)
	done := 0
	// VPNs 1,2,3,1,2: two primaries fill both registers, VPN 3 blocks in
	// tlbWait, the trailing duplicates merge into the live registers.
	for _, v := range []vm.VPN{1, 2, 3, 1, 2} {
		h.io.Submit(h.request(v, func(xlat.Result) { done++ }), false)
	}
	h.eng.Run()
	if done != 5 {
		t.Fatalf("completions = %d, want 5 (blocked arrival stranded?)", done)
	}
	if len(h.io.tlbWait) != 0 {
		t.Errorf("tlbWait not drained: %d waiters left", len(h.io.tlbWait))
	}
	if h.io.Stats.MSHRBlocked == 0 {
		t.Error("expected at least one MSHR-blocked arrival")
	}
	if h.io.Stats.MSHRMerged != 2 || h.io.Stats.Walks != 3 {
		t.Errorf("merged=%d walks=%d, want 2 and 3", h.io.Stats.MSHRMerged, h.io.Stats.Walks)
	}
	if h.io.ioMSHR.Used() != 0 {
		t.Errorf("MSHR registers leaked: %d still used", h.io.ioMSHR.Used())
	}
	checkConservation(t, h.io)
}

// revisit → completeTLBMSHR interplay: a revisited PW-queue job's register
// completion must fire the register's callbacks AND drain tlbWait while it is
// non-empty, freeing blocked arrivals even though no walker finished.
func TestRevisitCompletesMSHRAndDrainsTLBWait(t *testing.T) {
	cfg := config.HDPATIOMMU()
	cfg.UseTLB = true
	cfg.TLBMSHRs = 2
	cfg.Walkers = 1
	cfg.PrefetchDegree = 1
	cfg.Revisit = true
	h := newHarness(t, cfg, 100)
	done := 0
	// VPN 9 occupies the walker; VPN 5 holds the second register and waits in
	// the PW-queue; VPN 7 blocks on full MSHRs.
	for _, v := range []vm.VPN{9, 5, 7} {
		h.io.Submit(h.request(v, func(xlat.Result) { done++ }), false)
	}
	h.eng.RunUntil(10) // past TLB latency, before the 500-cycle walk completes
	if h.io.WalkersBusy() != 1 || len(h.io.pwq) != 1 || len(h.io.tlbWait) != 1 {
		t.Fatalf("setup: busy=%d pwq=%d tlbWait=%d, want 1/1/1",
			h.io.WalkersBusy(), len(h.io.pwq), len(h.io.tlbWait))
	}
	// A same-key walk completes elsewhere: revisit the PW-queue for VPN 5.
	pte, _, ok := h.io.global.Lookup(5)
	if !ok {
		t.Fatal("page 5 unmapped")
	}
	h.io.revisit(tlb.Key{VPN: 5}, pte, true)
	if h.io.Stats.Revisits != 1 {
		t.Fatalf("revisits = %d, want 1", h.io.Stats.Revisits)
	}
	if len(h.io.pwq) == 0 {
		t.Fatal("revisit emptied the PW-queue: the drained tlbWait arrival should have re-enqueued")
	}
	if len(h.io.tlbWait) != 0 {
		t.Fatalf("tlbWait not drained by the revisit's register completion: %d left", len(h.io.tlbWait))
	}
	h.eng.Run()
	if done != 3 {
		t.Fatalf("completions = %d, want 3", done)
	}
	// VPN 5 never walked: its register was completed by the revisit.
	if h.io.Stats.Walks != 2 {
		t.Errorf("walks = %d, want 2 (VPNs 9 and 7 only)", h.io.Stats.Walks)
	}
	checkConservation(t, h.io)
}
