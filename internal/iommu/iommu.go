// Package iommu models the central Input-Output Memory Management Unit on
// the CPU tile: the admission (pre-queue) stage, the bounded PW-queue, the
// shared page-table walkers, and the HDPAT extensions of Fig 12 — the
// redirection table, the PW-queue revisit, selective auxiliary pushes, and
// proactive page-entry delivery. The Fig 19 variant replaces the redirection
// table with an area-equivalent blocking TLB.
package iommu

import (
	"sync"

	"hdpat/internal/config"
	"hdpat/internal/geom"
	"hdpat/internal/metrics"
	"hdpat/internal/noc"
	"hdpat/internal/sim"
	"hdpat/internal/stats"
	"hdpat/internal/tlb"
	"hdpat/internal/trace"
	"hdpat/internal/vm"
	"hdpat/internal/xlat"
)

// RequestHook observes every translation request arriving at the IOMMU.
// Hooks are observation points only: they run synchronously at arrival time
// and must not schedule events or complete requests, so an attached hook
// never perturbs simulation results. It replaces the old Observer field;
// characterisation trackers, served-rate series and tests all attach here.
type RequestHook interface {
	IOMMURequest(now sim.VTime, req *xlat.Request)
}

// RequestHookFunc adapts a function to the RequestHook interface.
type RequestHookFunc func(now sim.VTime, req *xlat.Request)

// IOMMURequest implements RequestHook.
func (f RequestHookFunc) IOMMURequest(now sim.VTime, req *xlat.Request) { f(now, req) }

// Stats aggregates IOMMU activity.
type Stats struct {
	Requests     uint64 // translation requests reaching the IOMMU
	Walks        uint64 // page table walks performed
	RTRedirects  uint64 // requests redirected via the redirection table
	TLBHits      uint64 // IOMMU-TLB variant hits
	Revisits     uint64 // queued duplicates served by a completed walk
	Prefetches   uint64 // PTEs resolved proactively
	PushesDemand uint64
	PushesPref   uint64
	MSHRBlocked  uint64 // IOMMU-TLB variant: arrivals blocked on full MSHRs
	// MSHRMerged counts IOMMU-TLB variant arrivals coalesced into an
	// outstanding miss register: they complete with the register's walk
	// without enqueueing. Together with TLBHits, Walks, RTRedirects,
	// Revisits and SkippedCompleted it makes request accounting exact:
	// every Submit terminates in exactly one of those six counters.
	MSHRMerged uint64
	// SkippedCompleted counts PW-queue entries dispatched after their
	// request had already been completed elsewhere (the concurrent-probe
	// race): they vacate the queue without burning a walker.
	SkippedCompleted uint64

	// Breakdown decomposes per-walk latency (Fig 3).
	Breakdown stats.BreakdownAccumulator
	// PeakQueue is the highest combined admission+PW-queue depth observed.
	PeakQueue int
}

// jobState names the stage a pooled IOMMU job resumes at when its next
// event fires; the stages mirror the closure chain they replaced one for
// one, so dispatch order and results are unchanged.
type jobState uint8

const (
	jobQueued  jobState = iota // waiting in admission/PW-queue (no event pending)
	jobRTProbe                 // redirection-table check after its latency
	jobTLBTry                  // IOMMU-TLB access after its latency
	jobWalk                    // page-table walk completes at this event
	jobMerged                  // IOMMU-TLB variant: coalesced, waiting on Fill
)

// job is one translation request's residency at the IOMMU: a pooled state
// machine that is its own event handler (sim.Handler) and, in the Fig 19
// variant, its own MSHR waiter (tlb.Filler). The job takes one reference on
// the request at Submit and holds it until its terminal action, so request
// identity fields stay coherent even on the late paths (SkippedCompleted,
// redirects of already-answered requests) — id/pid/vpn are also snapshotted
// so queue traces never depend on request lifetime.
type job struct {
	io  *IOMMU
	req *xlat.Request

	id  uint64
	pid vm.PID
	vpn vm.VPN

	arrived    sim.VTime // at the IOMMU
	enqueued   sim.VTime // into the PW-queue
	started    sim.VTime // walk start
	service    sim.VTime // walk service time
	noRedirect bool
	state      jobState
}

// getJob leases a job; the engine is single-threaded, so a plain free list
// suffices.
func (io *IOMMU) getJob() *job {
	if n := len(io.jobFree); n > 0 {
		j := io.jobFree[n-1]
		io.jobFree = io.jobFree[:n-1]
		return j
	}
	return new(job)
}

// release ends the job: recycle it and drop its request reference. Called
// exactly once, at the job's terminal action.
func (j *job) release() {
	io, req := j.io, j.req
	*j = job{}
	io.jobFree = append(io.jobFree, j)
	req.Unref()
}

// Event resumes the job at its recorded stage.
func (j *job) Event(sim.EventArg) {
	switch j.state {
	case jobRTProbe:
		j.probeRT()
	case jobTLBTry:
		j.tryTLB()
	case jobWalk:
		j.io.walkDone(j)
	}
}

// resp carries one completion across the mesh back to the requester: a
// pooled delivery handler holding its own request reference for the
// transit. Result is too wide for an EventArg, hence the carrier object.
type resp struct {
	io  *IOMMU
	req *xlat.Request
	res xlat.Result
}

// Event fires at mesh arrival: deliver the completion and recycle. In a
// sharded run this executes on the requester's domain while respond ran on
// the IOMMU's, so the carrier goes back through a sync.Pool instead of the
// IOMMU-local free list.
func (r *resp) Event(sim.EventArg) {
	io, req, res := r.io, r.req, r.res
	*r = resp{}
	if io.respPool != nil {
		io.respPool.Put(r)
	} else {
		io.respFree = append(io.respFree, r)
	}
	req.Complete(res)
	req.Unref()
}

// IOMMU is the central translation agent.
type IOMMU struct {
	eng    *sim.Engine
	cfg    config.IOMMU
	coord  geom.Coord
	mesh   *noc.Mesh
	global *vm.PageTable

	// GPMCoord maps a GPM index to its tile, for routing responses.
	GPMCoord func(id int) geom.Coord

	admission []*job
	pwq       []*job
	busy      int

	rt      *RedirectTable
	iotlb   *tlb.TLB
	ioMSHR  *tlb.MSHR
	tlbWait []*job             // arrivals blocked on full IOMMU-TLB MSHRs
	counts  map[tlb.Key]uint32 // per-PTE access counts ("unused PTE bits")
	rtProbe sim.VTime          // redirection table / TLB check latency

	// jobFree / respFree recycle the pooled job and response carriers.
	// respPool replaces respFree in sharded runs (ShardResponses), where
	// carriers are leased on the IOMMU's domain and released on the
	// requester's; jobs never leave the IOMMU's domain, so jobFree stays a
	// plain slice either way.
	jobFree  []*job
	respFree []*resp
	respPool *sync.Pool

	// Push delivers a walked or prefetched PTE to auxiliary GPM caches.
	// It returns the GPM chosen (for the redirection table) and whether a
	// push happened. Nil when the active scheme has no peer caching.
	Push func(pte vm.PTE, origin xlat.PushOrigin) (gpm int, ok bool)
	// Redirect forwards a redirected request to the given GPM. Nil when
	// redirection is disabled.
	Redirect func(req *xlat.Request, gpm int)
	// QueueSeries, when set, records combined queue depth over time (Fig 4).
	QueueSeries *stats.TimeSeries
	// Trace, when non-nil, receives queue-residency and walk spans.
	Trace *trace.Tracer

	// hooks observe arriving requests in registration order (AddHook).
	hooks []RequestHook
	// m mirrors IOMMU activity into an attached registry (AttachMetrics).
	m *iommuMetrics

	Stats Stats
}

// iommuMetrics are the IOMMU's registry series.
type iommuMetrics struct {
	requests    *metrics.Counter
	walks       *metrics.Counter
	redirects   *metrics.Counter
	revisits    *metrics.Counter
	prefetches  *metrics.Counter
	pushDemand  *metrics.Counter
	pushPref    *metrics.Counter
	tlbBlocked  *metrics.Counter
	tlbMerged   *metrics.Counter
	skipped     *metrics.Counter
	queueDepth  *metrics.Gauge
	queuePeak   *metrics.Gauge
	walkersBusy *metrics.Gauge
	latency     *metrics.Histogram
}

// AddHook registers h to observe every request arriving at the IOMMU.
func (io *IOMMU) AddHook(h RequestHook) {
	if h != nil {
		io.hooks = append(io.hooks, h)
	}
}

// AttachMetrics mirrors IOMMU activity into reg: arrival/walk/redirect/
// revisit/prefetch/push counters, queue-depth and walker-occupancy gauges,
// and an iommu.latency histogram of arrival-to-walk-completion cycles. The
// iommu.walkers gauge carries the configured walker count so the IOMMU is
// visible in a snapshot even for schemes that fully offload it.
func (io *IOMMU) AttachMetrics(reg *metrics.Registry) {
	io.m = &iommuMetrics{
		requests:    reg.Counter("iommu.requests"),
		walks:       reg.Counter("iommu.walks"),
		redirects:   reg.Counter("iommu.redirects"),
		revisits:    reg.Counter("iommu.revisits"),
		prefetches:  reg.Counter("iommu.prefetches"),
		pushDemand:  reg.Counter("iommu.pushes.demand"),
		pushPref:    reg.Counter("iommu.pushes.prefetch"),
		tlbBlocked:  reg.Counter("iommu.tlb.mshr_blocked"),
		tlbMerged:   reg.Counter("iommu.tlb.mshr_merged"),
		skipped:     reg.Counter("iommu.skipped_completed"),
		queueDepth:  reg.Gauge("iommu.queue.depth"),
		queuePeak:   reg.Gauge("iommu.queue.peak"),
		walkersBusy: reg.Gauge("iommu.walkers.busy"),
		latency:     reg.Histogram("iommu.latency"),
	}
	reg.Gauge("iommu.walkers").Set(int64(io.cfg.Walkers))
	if io.iotlb != nil {
		io.iotlb.AttachMetrics(reg.Counter("iommu.tlb.hits"), reg.Counter("iommu.tlb.misses"))
	}
}

// New builds an IOMMU on the CPU tile.
func New(eng *sim.Engine, cfg config.IOMMU, coord geom.Coord, mesh *noc.Mesh, global *vm.PageTable) *IOMMU {
	io := &IOMMU{
		eng: eng, cfg: cfg, coord: coord, mesh: mesh, global: global,
		counts:  make(map[tlb.Key]uint32),
		rtProbe: 1,
	}
	if cfg.UseTLB {
		io.iotlb = tlb.New(tlb.Config{Sets: cfg.TLBSets, Ways: cfg.TLBWays, MSHRs: cfg.TLBMSHRs, Latency: 1})
		io.ioMSHR = tlb.NewMSHR(cfg.TLBMSHRs)
	} else if cfg.RedirectEntries > 0 {
		io.rt = NewRedirectTable(cfg.RedirectEntries)
	}
	return io
}

// Coord returns the IOMMU's tile.
func (io *IOMMU) Coord() geom.Coord { return io.coord }

// RT exposes the redirection table (nil if disabled), for stats.
func (io *IOMMU) RT() *RedirectTable { return io.rt }

// QueueDepth returns the combined admission + PW-queue depth: requests
// waiting for a walker, excluding the ones already in service (those are
// WalkersBusy). This is the one definition of "combined queue depth" shared
// by Stats.PeakQueue, the iommu.queue.depth gauge, the Fig 4 QueueSeries and
// the attribution sampler's iommu.queue_depth series — it used to include
// in-service walks while the recorded series did not, so the sampled series
// disagreed with every other depth signal.
func (io *IOMMU) QueueDepth() int { return len(io.admission) + len(io.pwq) }

// WalkersBusy returns the number of walkers currently in service — a
// sampler probe for walker-occupancy time series.
func (io *IOMMU) WalkersBusy() int { return io.busy }

// traceQueue emits the admission- and PW-queue residency spans for a job
// leaving the queue stages at time until, whatever path it leaves by (walk
// start, revisit service, or redirection).
func (io *IOMMU) traceQueue(j *job, until sim.VTime) {
	if io.Trace == nil {
		return
	}
	if j.enqueued > j.arrived {
		io.Trace.QueueSpan("iommu.admission", uint64(j.arrived), uint64(j.enqueued), j.id)
	}
	if until > j.enqueued {
		io.Trace.QueueSpan("iommu.pwq", uint64(j.enqueued), uint64(until), j.id)
	}
}

// noteQueue records the combined waiting depth (QueueDepth's definition)
// into Stats.PeakQueue, the Fig 4 series and the attached gauges.
func (io *IOMMU) noteQueue() {
	d := io.QueueDepth()
	if d > io.Stats.PeakQueue {
		io.Stats.PeakQueue = d
	}
	if io.QueueSeries != nil {
		io.QueueSeries.Record(uint64(io.eng.Now()), float64(d))
	}
	if io.m != nil {
		io.m.queueDepth.Set(int64(d))
		io.m.queuePeak.Max(int64(d))
	}
}

// Submit receives a translation request that has arrived at the CPU tile.
// noRedirect marks a request bounced back from a failed redirection, which
// must walk rather than consult the redirection table again. Submit takes
// one reference on req for the job it creates; callers only need req live
// across the call itself.
func (io *IOMMU) Submit(req *xlat.Request, noRedirect bool) {
	io.Stats.Requests++
	if io.m != nil {
		io.m.requests.Inc()
	}
	for _, h := range io.hooks {
		h.IOMMURequest(io.eng.Now(), req)
	}
	req.Ref()
	j := io.getJob()
	*j = job{io: io, req: req, id: req.ID, pid: req.PID, vpn: req.VPN,
		arrived: io.eng.Now(), noRedirect: noRedirect}

	switch {
	case io.iotlb != nil:
		// Fig 19 variant front-end: a conventional TLB whose MSHRs block
		// admission when exhausted.
		j.state = jobTLBTry
		io.eng.Post(io.iotlb.Latency(), j, sim.EventArg{})
	case io.rt != nil && !noRedirect:
		j.state = jobRTProbe
		io.eng.Post(io.rtProbe, j, sim.EventArg{})
	default:
		io.enqueue(j)
	}
}

// probeRT is the post-latency redirection-table check at admission.
func (j *job) probeRT() {
	io := j.io
	if gpm, ok := io.rt.Lookup(tlb.Key{PID: j.pid, VPN: j.vpn}); ok && io.Redirect != nil {
		io.Stats.RTRedirects++
		if io.m != nil {
			io.m.redirects.Inc()
		}
		io.Redirect(j.req, gpm)
		j.release()
		return
	}
	io.enqueue(j)
}

// tryTLB is the post-latency TLB access body; it runs synchronously so the
// drain loop in completeTLBMSHR can observe register consumption.
func (j *job) tryTLB() {
	io := j.io
	k := tlb.Key{PID: j.pid, VPN: j.vpn}
	if pte, ok := io.iotlb.Lookup(k); ok {
		io.Stats.TLBHits++
		io.respond(j.req, xlat.Result{PTE: pte, Source: xlat.SourceRedirect})
		j.release()
		return
	}
	primary, ok := io.ioMSHR.Allocate(k, j)
	if !ok {
		// All MSHRs occupied: the request stalls outside the TLB (§V-E)
		// until a register frees.
		io.Stats.MSHRBlocked++
		if io.m != nil {
			io.m.tlbBlocked.Inc()
		}
		io.tlbWait = append(io.tlbWait, j)
		return
	}
	if primary {
		// The walk's completion fills the TLB and drains the MSHR rather
		// than responding directly; this job's own response arrives through
		// its Fill like every merged waiter's.
		j.state = jobQueued
		io.enqueue(j)
		return
	}
	// Coalesced into an outstanding register: the request completes with
	// that register's walk, never enqueueing itself.
	io.Stats.MSHRMerged++
	if io.m != nil {
		io.m.tlbMerged.Inc()
	}
	j.state = jobMerged
}

// Fill implements tlb.Filler for the IOMMU-TLB variant: the MSHR register
// this job waits on resolved. Merged jobs end here; the primary is still
// mid-walkDone and releases there.
func (j *job) Fill(pte vm.PTE, found bool) {
	if found {
		j.io.respond(j.req, xlat.Result{PTE: pte, Source: xlat.SourceIOMMU})
	}
	if j.state == jobMerged {
		j.release()
	}
}

func (io *IOMMU) enqueue(j *job) {
	if len(io.pwq) < io.cfg.PWQueueCap {
		j.enqueued = io.eng.Now()
		io.pwq = append(io.pwq, j)
	} else {
		io.admission = append(io.admission, j)
	}
	io.noteQueue()
	io.dispatch()
}

func (io *IOMMU) dispatch() {
	for io.busy < io.cfg.Walkers && len(io.pwq) > 0 {
		j := io.pwq[0]
		io.pwq = io.pwq[1:]
		io.promote()
		// A request already answered by a peer cache while it queued (the
		// concurrent-probe race) must not burn a walker. In the IOMMU-TLB
		// variant the walk serves the whole MSHR register (merged waiters
		// included), not just this request, so it must proceed regardless.
		// The job still spent real cycles queued: emit its residency spans
		// (they postdate the request's completion — the attribution ledger
		// counts them as late rather than stitching them) and account for it,
		// or the queue time silently vanishes from traces and conservation.
		if io.iotlb == nil && j.req.CompletedProbe(io.eng.Now()) {
			io.Stats.SkippedCompleted++
			if io.m != nil {
				io.m.skipped.Inc()
			}
			io.traceQueue(j, io.eng.Now())
			j.release()
			continue
		}
		// The redirection table sits in front of the walkers (Fig 12): a
		// request that queued before its translation completed elsewhere is
		// caught here instead of burning a walker — the "requests quickly
		// catch up to recently completed translations" behaviour of §IV-F.
		if io.rt != nil && !j.noRedirect && io.Redirect != nil {
			k := tlb.Key{PID: j.pid, VPN: j.vpn}
			if gpm, ok := io.rt.Lookup(k); ok {
				io.Stats.RTRedirects++
				if io.m != nil {
					io.m.redirects.Inc()
				}
				io.traceQueue(j, io.eng.Now())
				io.Redirect(j.req, gpm)
				j.release()
				continue
			}
		}
		io.busy++
		if io.m != nil {
			io.m.walkersBusy.Set(int64(io.busy))
		}
		start := io.eng.Now()
		service := io.cfg.WalkCycles
		if io.cfg.PrefetchDegree > 1 {
			service += io.cfg.PrefetchExtraCycles * sim.VTime(io.cfg.PrefetchDegree-1)
		}
		j.started, j.service = start, service
		j.state = jobWalk
		io.eng.PostAt(start+service, j, sim.EventArg{})
	}
}

// promote moves admission-stage jobs into freed PW-queue slots.
func (io *IOMMU) promote() {
	for len(io.admission) > 0 && len(io.pwq) < io.cfg.PWQueueCap {
		j := io.admission[0]
		io.admission = io.admission[1:]
		j.enqueued = io.eng.Now()
		io.pwq = append(io.pwq, j)
	}
}

func (io *IOMMU) walkDone(j *job) {
	started, service := j.started, j.service
	io.busy--
	io.Stats.Walks++
	io.Stats.Breakdown.Add(
		uint64(j.enqueued-j.arrived),
		uint64(started-j.enqueued),
		uint64(service),
	)
	if io.m != nil {
		io.m.walks.Inc()
		io.m.walkersBusy.Set(int64(io.busy))
		io.m.latency.Observe(uint64(io.eng.Now() - j.arrived))
	}
	io.traceQueue(j, started)
	if io.Trace != nil {
		io.Trace.WalkSpan(uint64(started), uint64(started+service), j.id, uint64(j.vpn))
	}
	k := tlb.Key{PID: j.pid, VPN: j.vpn}
	pte, _, found := io.global.Lookup(k.VPN)
	io.counts[k]++

	if io.iotlb != nil {
		if found {
			io.iotlb.Insert(pte)
		}
		io.completeTLBMSHR(k, pte, found)
	} else {
		src := xlat.SourceIOMMU
		io.respond(j.req, xlat.Result{PTE: pte, Source: src})
	}

	if io.cfg.Revisit {
		io.revisit(k, pte, found)
	}

	// Selective push of the demand-walked PTE (§IV-F): only translations
	// whose access count crossed the threshold earn auxiliary cache space.
	pushedTo := -1
	if found && io.Push != nil && io.counts[k] >= io.cfg.PushThreshold {
		if gpm, ok := io.Push(pte, xlat.PushDemand); ok {
			io.Stats.PushesDemand++
			if io.m != nil {
				io.m.pushDemand.Inc()
			}
			pushedTo = gpm
		}
	}
	if io.rt != nil && pushedTo >= 0 {
		io.rt.Insert(k, pushedTo)
	}

	// Proactive page-entry delivery (§IV-G): resolve the next degree-1
	// sequential PTEs (their cost was charged into this walk's service) and
	// push them outward; the redirection table learns N+1.
	if io.cfg.PrefetchDegree > 1 {
		for d := 1; d < io.cfg.PrefetchDegree; d++ {
			nk := tlb.Key{PID: k.PID, VPN: k.VPN + vm.VPN(d)}
			npte, _, nfound := io.global.Lookup(nk.VPN)
			if !nfound {
				continue
			}
			io.Stats.Prefetches++
			if io.m != nil {
				io.m.prefetches.Inc()
			}
			if io.iotlb != nil {
				io.iotlb.Insert(npte)
				continue
			}
			if io.Push != nil {
				if gpm, ok := io.Push(npte, xlat.PushPrefetch); ok {
					io.Stats.PushesPref++
					if io.m != nil {
						io.m.pushPref.Inc()
					}
					if io.rt != nil && d == 1 {
						io.rt.Insert(nk, gpm)
					}
				}
			}
		}
	}

	io.promote()
	io.noteQueue()
	io.dispatch()
	j.release()
}

// revisit serves queued duplicates of a just-completed walk (§IV-F step 6;
// the Barre mechanism): identical requests pending in the PW-queue respond
// immediately and vacate it. Only the PW-queue is scanned — requests still
// in the admission stage are outside the walker's reach, which is exactly
// why the PW-queue's size bounds this mechanism's benefit (§V-B).
func (io *IOMMU) revisit(k tlb.Key, pte vm.PTE, found bool) {
	if !found {
		return
	}
	var served []*job
	out := io.pwq[:0]
	for _, j := range io.pwq {
		if j.pid == k.PID && j.vpn == k.VPN {
			served = append(served, j)
			continue
		}
		out = append(out, j)
	}
	io.pwq = out
	// Serve matches only after the queue is compacted: completing an
	// IOMMU-TLB register drains tlbWait, and a drained arrival may
	// re-enqueue into the PW-queue — appending into io.pwq mid-scan would
	// be clobbered by the compaction and strand that request.
	for _, j := range served {
		io.Stats.Revisits++
		if io.m != nil {
			io.m.revisits.Inc()
		}
		io.traceQueue(j, io.eng.Now())
		if io.iotlb != nil {
			io.completeTLBMSHR(tlb.Key{PID: j.pid, VPN: j.vpn}, pte, true)
		} else {
			io.respond(j.req, xlat.Result{PTE: pte, Source: xlat.SourceIOMMU})
		}
		j.release()
	}
}

// completeTLBMSHR resolves an IOMMU-TLB miss register, then drains blocked
// arrivals while registers remain free. Waiters that now hit the TLB or
// merge into another register consume nothing, so draining continues until
// one allocates or the queue empties — preventing stranded requests when
// the last outstanding walk completes.
func (io *IOMMU) completeTLBMSHR(k tlb.Key, pte vm.PTE, found bool) {
	io.ioMSHR.Complete(k, pte, found)
	for len(io.tlbWait) > 0 && io.ioMSHR.Used() < io.ioMSHR.Capacity() {
		w := io.tlbWait[0]
		io.tlbWait = io.tlbWait[1:]
		w.tryTLB()
	}
}

// respond routes a completion back to the requesting GPM over the mesh via
// a pooled carrier holding its own request reference for the transit.
func (io *IOMMU) respond(req *xlat.Request, res xlat.Result) {
	req.Ref()
	var r *resp
	if io.respPool != nil {
		r, _ = io.respPool.Get().(*resp)
	} else if n := len(io.respFree); n > 0 {
		r = io.respFree[n-1]
		io.respFree = io.respFree[:n-1]
	}
	if r == nil {
		r = new(resp)
	}
	*r = resp{io: io, req: req, res: res}
	io.mesh.SendH(io.coord, io.GPMCoord(req.Requester), xlat.RespBytes, r, sim.EventArg{})
}

// ShardResponses switches the response-carrier free list to a sync.Pool for
// a domain-sharded run, where carriers are leased on the IOMMU's domain and
// released on each requester's. The serial slice path is untouched (and
// allocation-free), so serial runs pay nothing.
func (io *IOMMU) ShardResponses() {
	io.respPool = &sync.Pool{}
}

// AccessCount returns the recorded demand count for a page (tests).
func (io *IOMMU) AccessCount(k tlb.Key) uint32 { return io.counts[k] }

// Invalidate drops all state the IOMMU holds for the given keys: redirect
// table entries, IOMMU-TLB entries (Fig 19 variant), and the per-PTE access
// counters. It is the IOMMU-side half of a TLB shootdown.
func (io *IOMMU) Invalidate(keys []tlb.Key) {
	for _, k := range keys {
		if io.rt != nil {
			io.rt.Remove(k)
		}
		if io.iotlb != nil {
			io.iotlb.Invalidate(k)
		}
		delete(io.counts, k)
	}
}
