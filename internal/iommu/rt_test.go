package iommu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hdpat/internal/tlb"
	"hdpat/internal/vm"
)

func k(v vm.VPN) tlb.Key { return tlb.Key{VPN: v} }

func TestRTInsertLookup(t *testing.T) {
	rt := NewRedirectTable(4)
	rt.Insert(k(1), 7)
	gpm, ok := rt.Lookup(k(1))
	if !ok || gpm != 7 {
		t.Fatalf("lookup = %d,%v", gpm, ok)
	}
	if _, ok := rt.Lookup(k(2)); ok {
		t.Fatal("hit for absent key")
	}
	if rt.Hits != 1 || rt.Misses != 1 {
		t.Errorf("hits=%d misses=%d", rt.Hits, rt.Misses)
	}
}

func TestRTLRUEviction(t *testing.T) {
	rt := NewRedirectTable(2)
	rt.Insert(k(1), 1)
	rt.Insert(k(2), 2)
	rt.Lookup(k(1)) // 1 MRU
	rt.Insert(k(3), 3)
	if _, ok := rt.Lookup(k(2)); ok {
		t.Error("LRU entry survived")
	}
	if _, ok := rt.Lookup(k(1)); !ok {
		t.Error("MRU entry evicted")
	}
	if rt.Evictions != 1 {
		t.Errorf("evictions = %d", rt.Evictions)
	}
}

func TestRTReinsertRepoints(t *testing.T) {
	rt := NewRedirectTable(4)
	rt.Insert(k(1), 5)
	rt.Insert(k(1), 9)
	if rt.Len() != 1 {
		t.Fatalf("len = %d", rt.Len())
	}
	gpm, _ := rt.Lookup(k(1))
	if gpm != 9 {
		t.Errorf("gpm = %d, want 9", gpm)
	}
}

func TestRTRemove(t *testing.T) {
	rt := NewRedirectTable(4)
	rt.Insert(k(1), 5)
	if !rt.Remove(k(1)) {
		t.Fatal("remove of present key failed")
	}
	if rt.Remove(k(1)) {
		t.Fatal("double remove succeeded")
	}
	if _, ok := rt.Lookup(k(1)); ok {
		t.Error("removed key still present")
	}
}

func TestRTZeroCapacity(t *testing.T) {
	rt := NewRedirectTable(0)
	rt.Insert(k(1), 5) // must not panic
	if rt.Len() != 0 {
		t.Error("zero-cap table stored an entry")
	}
}

// Property: table never exceeds capacity and lookups return the most recent
// insert for each key.
func TestRTProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rt := NewRedirectTable(16)
		ref := map[tlb.Key]int{}
		for i := 0; i < 500; i++ {
			key := k(vm.VPN(rng.Intn(40)))
			gpm := rng.Intn(48)
			rt.Insert(key, gpm)
			ref[key] = gpm
			if rt.Len() > 16 {
				return false
			}
		}
		for key, want := range ref {
			if got, ok := rt.Lookup(key); ok && got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
