// Package schemes implements the translation comparators the paper
// evaluates against (§V-A): the naive centralized baseline, Trans-FW
// (remote-forwarded page table walks), Valkyrie (inter-TLB locality among
// mesh neighbours) and Barre (PW-queue coalescing at the IOMMU). Each is a
// faithful reimplementation of the cited paper's core mechanism at the
// fidelity of this simulator; see DESIGN.md §4.
package schemes

import (
	"sync/atomic"

	"hdpat/internal/core"
	"hdpat/internal/geom"
	"hdpat/internal/tlb"
	"hdpat/internal/vm"
	"hdpat/internal/xlat"
)

// Naive sends every remote translation to the central IOMMU: the baseline
// configuration all results are normalised to.
type Naive struct {
	f *Fabric
}

// Fabric is re-exported so callers need only one import.
type Fabric = core.Fabric

// NewNaive builds the baseline scheme.
func NewNaive(f *Fabric) *Naive { return &Naive{f: f} }

// Name implements xlat.RemoteTranslator.
func (s *Naive) Name() string { return "baseline" }

// Translate implements xlat.RemoteTranslator.
func (s *Naive) Translate(req *xlat.Request) {
	s.f.ToIOMMU(s.f.CoordOf(req.Requester), req, false)
}

// Barre is the naive routing plus the IOMMU PW-queue revisit: identical
// pending walks coalesce when a walker completes. The revisit itself lives
// in the IOMMU (cfg.Revisit); this scheme only names the configuration.
type Barre struct {
	Naive
}

// NewBarre builds the Barre comparator; the caller must enable
// IOMMU.Revisit in the configuration.
func NewBarre(f *Fabric) *Barre { return &Barre{Naive{f: f}} }

// Name implements xlat.RemoteTranslator.
func (s *Barre) Name() string { return "barre" }

// TransFW models Trans-FW (HPCA'23) at this paper's characterisation:
// Trans-FW short-circuits the *memory accesses of the page table walk* by
// forwarding pointer chases to the GPU holding the page-table pages, so
// walks complete faster — but translation requests still route through the
// centralized IOMMU and its 16 walkers ("remote address translation
// requests still burden the IOMMU", §V-B). The walk-latency reduction is
// configured in wafer.ConfigFor (500 -> 300 cycles: the three leaf levels
// no longer cross the wafer); the routing here is the baseline's.
type TransFW struct {
	Naive
}

// NewTransFW builds the Trans-FW comparator; the caller configures the
// reduced IOMMU walk latency.
func NewTransFW(f *Fabric) *TransFW { return &TransFW{Naive{f: f}} }

// Name implements xlat.RemoteTranslator.
func (s *TransFW) Name() string { return "transfw" }

// OwnerFW is an extension scheme (not in the paper): it forwards the whole
// translation to the page's owner GPM, computable under the deterministic
// block placement, whose GMMU walks its local page table — bypassing the
// IOMMU entirely. It shows what a fully distributed walk fabric would buy:
// its costs (owner GMMU walker contention on hot partitions, cross-wafer
// hop distance) and its substantial aggregate walker parallelism both
// surface naturally.
type OwnerFW struct {
	f *Fabric

	// Stats, incremented atomically: legs of concurrent requests run on
	// different domains' engines in a sharded run.
	Forwarded uint64
	Fallback  uint64
}

// NewOwnerFW builds the owner-forwarding extension scheme.
func NewOwnerFW(f *Fabric) *OwnerFW { return &OwnerFW{f: f} }

// Name implements xlat.RemoteTranslator.
func (s *OwnerFW) Name() string { return "ownerfw" }

// Translate implements xlat.RemoteTranslator.
func (s *OwnerFW) Translate(req *xlat.Request) {
	owner, ok := s.f.Placement.OwnerOf(req.VPN)
	from := s.f.CoordOf(req.Requester)
	if !ok || owner == req.Requester {
		// Unmapped or supposedly-local page: let the IOMMU sort it out.
		atomic.AddUint64(&s.Fallback, 1)
		s.f.ToIOMMU(from, req, false)
		return
	}
	atomic.AddUint64(&s.Forwarded, 1)
	target := s.f.GPMs[owner]
	req.Ref() // forward leg: transit plus the peer walk
	s.f.Mesh.Send(from, target.Coord, xlat.ReqBytes, func() {
		target.WalkForPeer(key(req), func(pte vm.PTE, found bool) {
			defer req.Unref()
			if found {
				s.f.Respond(target.Coord, req, xlat.Result{PTE: pte, Source: xlat.SourceOwner})
				return
			}
			atomic.AddUint64(&s.Fallback, 1)
			s.f.ToIOMMU(target.Coord, req, false)
		})
	})
}

// Valkyrie exploits inter-TLB locality (PACT'20): before burdening the
// IOMMU, the requester probes the shared L2 TLBs of its mesh neighbours;
// only if all of them miss does the request travel to the CPU.
type Valkyrie struct {
	f *Fabric

	// Stats, incremented atomically: probe legs of concurrent requests run
	// on different domains' engines in a sharded run.
	Probes uint64
	Hits   uint64
}

// NewValkyrie builds the Valkyrie comparator.
func NewValkyrie(f *Fabric) *Valkyrie { return &Valkyrie{f: f} }

// Name implements xlat.RemoteTranslator.
func (s *Valkyrie) Name() string { return "valkyrie" }

// Translate implements xlat.RemoteTranslator.
func (s *Valkyrie) Translate(req *xlat.Request) {
	from := s.f.CoordOf(req.Requester)
	var neighbours []geom.Coord
	for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
		c := geom.XY(from.X+d[0], from.Y+d[1])
		if s.f.Layout.Contains(c) && s.f.At(c) != nil {
			neighbours = append(neighbours, c)
		}
	}
	if len(neighbours) == 0 {
		s.f.ToIOMMU(from, req, false)
		return
	}
	misses := 0
	total := len(neighbours)
	for _, nb := range neighbours {
		nb := nb
		target := s.f.At(nb)
		atomic.AddUint64(&s.Probes, 1)
		req.Ref() // probe leg: transit, L2 probe and possible miss response
		s.f.Mesh.Send(from, nb, xlat.ReqBytes, func() {
			target.ProbeL2TLB(key(req), func(pte vm.PTE, ok bool) {
				if ok {
					atomic.AddUint64(&s.Hits, 1)
					s.f.Respond(nb, req, xlat.Result{PTE: pte, Source: xlat.SourceNeighbor})
					req.Unref()
					return
				}
				// Miss responses return to the requester; after the last
				// one, escalate to the IOMMU.
				s.f.Mesh.Send(nb, from, xlat.MissRespBytes, func() {
					misses++
					if misses == total && !req.Completed() {
						s.f.ToIOMMU(from, req, false)
					}
					req.Unref()
				})
			})
		})
	}
}

func key(req *xlat.Request) tlb.Key {
	return tlb.Key{PID: req.PID, VPN: req.VPN}
}
