package schemes

import (
	"testing"

	"hdpat/internal/config"
	"hdpat/internal/core"
	"hdpat/internal/geom"
	"hdpat/internal/gpm"
	"hdpat/internal/iommu"
	"hdpat/internal/noc"
	"hdpat/internal/sim"
	"hdpat/internal/vm"
	"hdpat/internal/xlat"
)

// buildFabric assembles a 5x5 wafer whose global table maps VPNs 1..96 via
// a placement, with per-GPM local tables populated, so owner forwarding has
// real targets.
func buildFabric(t *testing.T, ioCfg config.IOMMU) (*core.Fabric, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	mesh := geom.NewMesh(5, 5)
	layout := geom.NewLayout(mesh)
	network := noc.New(eng, mesh, noc.DefaultConfig())

	placement := vm.NewPlacement(mesh.NumGPMs(), vm.Page4K)
	placement.Alloc("data", 96, 0)

	gcfg := config.MI100GPM()
	gcfg.NumCUs = 1
	var gpms []*gpm.GPM
	for i, c := range mesh.GPMs() {
		g := gpm.New(eng, i, c, gcfg, vm.Page4K, placement.Local(i))
		id := uint64(0)
		g.NextReqID = func() uint64 { id++; return id }
		gpms = append(gpms, g)
	}

	io := iommu.New(eng, ioCfg, mesh.CPU, network, placement.Global())
	io.GPMCoord = func(id int) geom.Coord { return gpms[id].Coord }

	f := &core.Fabric{Eng: eng, Mesh: network, Layout: layout, GPMs: gpms, IOMMU: io, Placement: placement}
	f.Finish()
	return f, eng
}

func req(f *core.Fabric, id uint64, vpn vm.VPN, requester int, done func(xlat.Result)) *xlat.Request {
	return xlat.NewRequest(id, 0, vpn, requester, f.Eng.Now(), done)
}

func TestNaiveRoutesToIOMMU(t *testing.T) {
	f, eng := buildFabric(t, config.DefaultIOMMU())
	s := NewNaive(f)
	if s.Name() != "baseline" {
		t.Errorf("name = %q", s.Name())
	}
	var got xlat.Result
	s.Translate(req(f, 1, 10, 0, func(r xlat.Result) { got = r }))
	eng.Run()
	if !got.PTE.Valid || got.Source != xlat.SourceIOMMU {
		t.Fatalf("result %+v", got)
	}
	if f.IOMMU.Stats.Walks != 1 {
		t.Errorf("walks = %d", f.IOMMU.Stats.Walks)
	}
}

func TestBarreIsNaiveWithRevisitConfig(t *testing.T) {
	cfg := config.DefaultIOMMU()
	cfg.Revisit = true
	cfg.Walkers = 1 // force queueing so duplicates are in the PW-queue
	f, eng := buildFabric(t, cfg)
	s := NewBarre(f)
	if s.Name() != "barre" {
		t.Errorf("name = %q", s.Name())
	}
	done := 0
	for i := uint64(0); i < 4; i++ {
		s.Translate(req(f, i+1, 15, int(i), func(xlat.Result) { done++ }))
	}
	eng.Run()
	if done != 4 {
		t.Fatalf("completions = %d", done)
	}
	if f.IOMMU.Stats.Revisits == 0 {
		t.Error("revisit never fired for concurrent duplicates")
	}
	if f.IOMMU.Stats.Walks >= 4 {
		t.Errorf("walks = %d, expected coalescing", f.IOMMU.Stats.Walks)
	}
}

func TestTransFWRoutesToIOMMU(t *testing.T) {
	f, eng := buildFabric(t, config.DefaultIOMMU())
	s := NewTransFW(f)
	if s.Name() != "transfw" {
		t.Errorf("name = %q", s.Name())
	}
	var got xlat.Result
	s.Translate(req(f, 1, 10, 0, func(r xlat.Result) { got = r }))
	eng.Run()
	if got.Source != xlat.SourceIOMMU {
		t.Errorf("Trans-FW source = %v; per the paper it still uses the IOMMU", got.Source)
	}
}

func TestOwnerFWWalksAtOwner(t *testing.T) {
	f, eng := buildFabric(t, config.DefaultIOMMU())
	s := NewOwnerFW(f)
	// VPN 10 is owned by some GPM != requester 0 under the block split.
	owner, ok := f.Placement.OwnerOf(10)
	if !ok {
		t.Fatal("placement broken")
	}
	requester := (owner + 5) % len(f.GPMs)
	var got xlat.Result
	s.Translate(req(f, 1, 10, requester, func(r xlat.Result) { got = r }))
	eng.Run()
	if got.Source != xlat.SourceOwner {
		t.Fatalf("source = %v, want owner", got.Source)
	}
	if !got.PTE.Valid || got.PTE.Owner != owner {
		t.Fatalf("PTE %+v, want owner %d", got.PTE, owner)
	}
	if f.IOMMU.Stats.Walks != 0 {
		t.Error("owner forwarding should bypass the IOMMU")
	}
	if s.Forwarded != 1 {
		t.Errorf("forwarded = %d", s.Forwarded)
	}
}

func TestOwnerFWFallsBackForUnmapped(t *testing.T) {
	f, eng := buildFabric(t, config.DefaultIOMMU())
	s := NewOwnerFW(f)
	done := false
	s.Translate(req(f, 1, vm.VPN(5000), 0, func(xlat.Result) { done = true }))
	eng.Run()
	if !done {
		t.Fatal("unmapped request never completed")
	}
	if s.Fallback == 0 {
		t.Error("fallback not recorded")
	}
}

func TestValkyrieHitsNeighbourTLB(t *testing.T) {
	f, eng := buildFabric(t, config.DefaultIOMMU())
	s := NewValkyrie(f)
	for _, g := range f.GPMs {
		g.Remote = s
	}
	// Requester 0 sits at a corner; find a mesh neighbour and warm its
	// shared L2 TLB by driving a full translation through it (the remote
	// completion fills the L2 TLB).
	requester := f.GPMs[0]
	var neighbour *gpm.GPM
	for _, g := range f.GPMs {
		if g.Coord.Manhattan(requester.Coord) == 1 {
			neighbour = g
			break
		}
	}
	if neighbour == nil {
		t.Fatal("no neighbour found")
	}
	// VPN 90 is remote to both corner GPMs under the block split.
	warmed := false
	neighbour.Translate(0, vm.Page4K.Base(90), func(vm.PTE) { warmed = true })
	eng.Run()
	if !warmed {
		t.Fatal("warm-up translation failed")
	}
	served := false
	requester.Translate(0, vm.Page4K.Base(90), func(vm.PTE) { served = true })
	eng.Run()
	if !served {
		t.Fatal("valkyrie request lost")
	}
	if requester.Stats.RemoteBySource[xlat.SourceNeighbor] != 1 {
		t.Errorf("neighbour TLB hit not recorded: %v", requester.Stats.RemoteBySource)
	}
	if s.Hits == 0 {
		t.Error("scheme hit counter not incremented")
	}
}

func TestValkyrieAllMissGoesToIOMMU(t *testing.T) {
	f, eng := buildFabric(t, config.DefaultIOMMU())
	s := NewValkyrie(f)
	var got xlat.Result
	s.Translate(req(f, 1, 60, 0, func(r xlat.Result) { got = r }))
	eng.Run()
	if got.Source != xlat.SourceIOMMU {
		t.Errorf("all-miss source = %v", got.Source)
	}
	if f.IOMMU.Stats.Walks != 1 {
		t.Errorf("walks = %d", f.IOMMU.Stats.Walks)
	}
}
