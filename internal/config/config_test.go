package config

import (
	"errors"
	"strings"
	"testing"
)

func TestDefaultMatchesTable1(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if c.MeshW != 7 || c.MeshH != 7 {
		t.Errorf("mesh %dx%d, want 7x7", c.MeshW, c.MeshH)
	}
	g := c.GPM
	if g.NumCUs != 32 {
		t.Errorf("CUs = %d, want 32", g.NumCUs)
	}
	if g.L1TLB.Sets != 1 || g.L1TLB.Ways != 32 || g.L1TLB.Latency != 4 {
		t.Errorf("L1 TLB %+v does not match Table I", g.L1TLB)
	}
	if g.L2TLB.Sets != 64 || g.L2TLB.Ways != 32 || g.L2TLB.Latency != 32 || g.L2TLB.MSHRs != 32 {
		t.Errorf("L2 TLB %+v does not match Table I", g.L2TLB)
	}
	if g.GMMUCache.Sets != 64 || g.GMMUCache.Ways != 16 {
		t.Errorf("GMMU cache %+v does not match Table I", g.GMMUCache)
	}
	if g.GMMUWalkers != 8 || g.WalkCycles != 500 {
		t.Errorf("GMMU walkers=%d walk=%d", g.GMMUWalkers, g.WalkCycles)
	}
	if g.L2Cache.SizeBytes != 4<<20 || g.L2Cache.Ways != 16 || g.L2Cache.MSHRs != 64 {
		t.Errorf("L2 cache %+v does not match Table I", g.L2Cache)
	}
	i := c.IOMMU
	if i.Walkers != 16 || i.WalkCycles != 500 {
		t.Errorf("IOMMU %+v does not match Table I", i)
	}
	if c.HDPAT.Layers != 2 || c.HDPAT.Clusters != 4 {
		t.Errorf("HDPAT defaults %+v", c.HDPAT)
	}
	if c.NoC.HopLatency != 32 || c.NoC.BytesPerCycle != 768 {
		t.Errorf("NoC %+v does not match Table I", c.NoC)
	}
}

func TestHDPATIOMMU(t *testing.T) {
	i := HDPATIOMMU()
	if i.RedirectEntries != 1024 || !i.Revisit || i.PrefetchDegree != 4 {
		t.Errorf("HDPAT IOMMU %+v", i)
	}
}

func TestIdealIOMMUs(t *testing.T) {
	if IdealLatencyIOMMU().WalkCycles != 1 {
		t.Error("ideal latency IOMMU should walk in 1 cycle")
	}
	if IdealParallelIOMMU().Walkers != 4096 {
		t.Error("ideal parallel IOMMU should have 4096 walkers")
	}
}

func TestGPMVariants(t *testing.T) {
	for _, name := range GPMVariantNames() {
		g, err := GPMVariant(name)
		if err != nil {
			t.Fatalf("variant %s: %v", name, err)
		}
		if g.NumCUs != 32 {
			t.Errorf("%s CU count %d; variants vary memory system only", name, g.NumCUs)
		}
	}
	if _, err := GPMVariant("tpu"); err == nil {
		t.Error("unknown variant accepted")
	}
	h100, _ := GPMVariant("h100")
	mi100, _ := GPMVariant("mi100")
	if h100.L1VCache.SizeBytes <= mi100.L1VCache.SizeBytes {
		t.Error("H100 should have a larger L1 than MI100")
	}
	h200, _ := GPMVariant("h200")
	if h200.HBM.BytesPerCycle <= h100.HBM.BytesPerCycle {
		t.Error("H200 should have more bandwidth than H100")
	}
}

func TestWaferVariants(t *testing.T) {
	w := Wafer7x12()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.MeshW != 7 || w.MeshH != 12 {
		t.Errorf("7x12 wafer is %dx%d", w.MeshW, w.MeshH)
	}
	m := MCM4()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.MeshW*m.MeshH >= 49 {
		t.Error("MCM config should be much smaller than the wafer")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*System){
		func(s *System) { s.MeshW = 1 },
		func(s *System) { s.MeshW = 0 },
		func(s *System) { s.MeshH = -7 },
		// Hostile sizes: a dimension past the cap, and a pair whose product
		// would overflow 32-bit tile arithmetic if multiplied unchecked.
		func(s *System) { s.MeshW = MaxMeshDim + 1 },
		func(s *System) { s.MeshW, s.MeshH = 1<<20, 1<<20 },
		func(s *System) { s.MeshW, s.MeshH = 1024, 1024 }, // over the tile cap
		func(s *System) { s.GPM.NumCUs = 0 },
		func(s *System) { s.IOMMU.Walkers = 0 },
		func(s *System) { s.HDPAT.Clusters = 0 },
		func(s *System) { s.PageSize = 1000 },
		func(s *System) { s.WorkloadScale = 0 },
		func(s *System) { s.NoC.BytesPerCycle = 0 },
		func(s *System) { s.NoC.BytesPerCycle = -64 },
		func(s *System) { s.NoC.HopLatency = 0 },
		func(s *System) { s.NoC.Routing = "torus" },
	}
	for i, mutate := range bad {
		c := Default()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

// Mesh rejections carry the typed ValidationError so the service layer can
// classify them as client errors, and the largest supported mesh still
// validates.
func TestValidateMeshBounds(t *testing.T) {
	c := Default()
	c.MeshW, c.MeshH = 1<<18, 1<<18
	err := c.Validate()
	var ve *ValidationError
	if !errors.As(err, &ve) || ve.Field != "mesh" {
		t.Fatalf("overflowing mesh: got %v, want *ValidationError on mesh", err)
	}

	c = Default()
	c.MeshW, c.MeshH = 256, 256 // exactly MaxTiles
	if err := c.Validate(); err != nil {
		t.Errorf("256x256 (= MaxTiles) should validate: %v", err)
	}
	c.MeshW, c.MeshH = 30, 30 // the giant-wafer roadmap target
	if err := c.Validate(); err != nil {
		t.Errorf("30x30 should validate: %v", err)
	}
}

// NoC rejections carry the typed ValidationError (the service layer turns
// them into HTTP 400s), every routing policy the build knows validates,
// and the error for an unknown policy names the valid ones.
func TestValidateNoCRouting(t *testing.T) {
	c := Default()
	c.NoC.Routing = "torus"
	err := c.Validate()
	var ve *ValidationError
	if !errors.As(err, &ve) || ve.Field != "noc.routing" {
		t.Fatalf("unknown routing: got %v, want *ValidationError on noc.routing", err)
	}
	if !strings.Contains(err.Error(), "deflect") {
		t.Errorf("error does not list valid policies: %v", err)
	}

	c.NoC.BytesPerCycle = 0
	c.NoC.Routing = ""
	if err := c.Validate(); !errors.As(err, &ve) || ve.Field != "noc" {
		t.Fatalf("zero bandwidth: got %v, want *ValidationError on noc", err)
	}

	for _, name := range []string{"", "xy", "deflect"} {
		c := Default()
		c.NoC.Routing = name
		if err := c.Validate(); err != nil {
			t.Errorf("routing %q should validate: %v", name, err)
		}
	}
}

func TestApplyScale(t *testing.T) {
	c := Default()
	c.WorkloadScale = 4
	c.IOMMU = HDPATIOMMU()
	s := c.ApplyScale()
	if s.GPM.L2TLB.Sets != c.GPM.L2TLB.Sets/4 {
		t.Errorf("L2 TLB sets %d, want %d", s.GPM.L2TLB.Sets, c.GPM.L2TLB.Sets/4)
	}
	if s.GPM.AuxTLB.Sets != c.GPM.AuxTLB.Sets/4 {
		t.Errorf("aux sets %d", s.GPM.AuxTLB.Sets)
	}
	if s.IOMMU.RedirectEntries != 256 {
		t.Errorf("RT entries %d, want 256", s.IOMMU.RedirectEntries)
	}
	if s.GPM.L2Cache.SizeBytes != 1<<20 {
		t.Errorf("L2 cache %d, want 1 MB", s.GPM.L2Cache.SizeBytes)
	}
	// Rates are not capacities: walkers, latencies and MSHRs untouched.
	if s.IOMMU.Walkers != c.IOMMU.Walkers || s.GPM.WalkCycles != c.GPM.WalkCycles {
		t.Error("rate parameters were scaled")
	}
	if s.GPM.L2TLB.MSHRs != c.GPM.L2TLB.MSHRs {
		t.Error("MSHRs were scaled")
	}
	// Scale 1 is the identity.
	c.WorkloadScale = 1
	id := c.ApplyScale()
	if id.GPM.L2TLB.Sets != c.GPM.L2TLB.Sets {
		t.Error("scale 1 modified the config")
	}
	// Extreme scales clamp rather than zero out.
	c.WorkloadScale = 10000
	ex := c.ApplyScale()
	if ex.GPM.L2TLB.Sets < 1 || ex.IOMMU.RedirectEntries < 16 {
		t.Errorf("extreme scale produced degenerate config: %+v", ex.GPM.L2TLB)
	}
}
