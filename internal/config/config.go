// Package config centralises every hardware parameter of the simulated
// wafer-scale GPU. Default values reproduce Table I of the paper; named
// variants cover the sensitivity studies: GPU generations (Fig 21), page
// sizes (Fig 20), wafer shapes (Fig 22) and the idealised IOMMUs of Fig 2.
package config

import (
	"fmt"
	"strings"

	"hdpat/internal/cache"
	"hdpat/internal/dram"
	"hdpat/internal/geom"
	"hdpat/internal/noc"
	"hdpat/internal/sim"
	"hdpat/internal/tlb"
	"hdpat/internal/vm"
)

// GPM describes one GPU Processing Module (Table I).
type GPM struct {
	NumCUs int

	L1VCache cache.Config // per-CU vector cache
	L2Cache  cache.Config // shared

	L1TLB     tlb.Config // per-CU L1 vector TLB
	L2TLB     tlb.Config // shared
	GMMUCache tlb.Config // last-level TLB / GMMU cache
	// AuxTLB sizes the auxiliary translation store a caching-layer GPM
	// offers its peers. It is deliberately small — a carve-out of the GMMU
	// cache space, since "GPM cannot afford remote page table replication"
	// (§IV-F) — which is what makes the IOMMU's pushes selective.
	AuxTLB tlb.Config

	CuckooLatency sim.VTime // filter check time
	GMMUWalkers   int
	WalkCycles    sim.VTime // full local page table walk (100 x 5 levels)

	HBM dram.Config

	// MLP is the number of outstanding memory operations each CU sustains.
	MLP int
}

// IOMMU describes the central translation agent (Table I + §IV-F/G).
type IOMMU struct {
	Walkers    int
	WalkCycles sim.VTime
	// PWQueueCap bounds the internal walker queue; arrivals beyond it wait
	// in the admission (pre-queue) stage, producing the Fig 3 breakdown.
	PWQueueCap int

	// Redirection table (§IV-F). Entries=0 disables it.
	RedirectEntries int
	// Revisit enables the PW-queue revisit on walk completion
	// (HDPAT §IV-F step 6; also the core of the Barre baseline).
	Revisit bool

	// PrefetchDegree is the number of PTEs resolved per demand walk
	// (1 = demand only; paper default 4, Fig 18 sweeps 1/4/8).
	PrefetchDegree int
	// PrefetchExtraCycles is the added walker service per extra PTE;
	// adjacent PTEs share the leaf page-table page, so this is one extra
	// memory access amortised across the batch, not a full walk.
	PrefetchExtraCycles sim.VTime

	// PushThreshold is the per-PTE access count at or above which a walked
	// translation is pushed to auxiliary GPMs (selective caching, §IV-F).
	PushThreshold uint32

	// UseTLB replaces the redirection table with an area-equivalent
	// conventional TLB (512 entries, 32 MSHRs) for the Fig 19 study.
	UseTLB   bool
	TLBSets  int
	TLBWays  int
	TLBMSHRs int
}

// HDPAT holds the parameters of the paper's mechanism itself.
type HDPAT struct {
	// Layers is C, the number of concentric caching layers (default 2).
	Layers int
	// Clusters is Nc, the cluster count per layer (default 4, quadrants).
	Clusters int
	// SequentialLayers forces strict inward forwarding instead of the
	// default concurrent per-layer probes (§IV-D allows both; the ablation
	// of routing-based and concentric caching uses sequential attempts).
	SequentialLayers bool
	// AuxProbeLatency is the cuckoo-check + aux-cache lookup time at a
	// caching GPM serving a peer probe.
	AuxProbeLatency sim.VTime
}

// System is the full simulation configuration.
type System struct {
	Name     string
	MeshW    int
	MeshH    int
	PageSize vm.PageSize

	GPM   GPM
	IOMMU IOMMU
	HDPAT HDPAT
	NoC   noc.Config

	// WorkloadScale divides Table II footprints and access counts to keep
	// simulations tractable (Fig 13 demonstrates size invariance).
	WorkloadScale int
}

// Default returns the Table I baseline: a 7x7 wafer (48 GPMs + central
// CPU) of quarter-MI100 GPMs, 4 KB pages.
func Default() System {
	return System{
		Name:          "mi100-7x7",
		MeshW:         7,
		MeshH:         7,
		PageSize:      vm.Page4K,
		GPM:           MI100GPM(),
		IOMMU:         DefaultIOMMU(),
		HDPAT:         DefaultHDPAT(),
		NoC:           noc.DefaultConfig(),
		WorkloadScale: 4,
	}
}

// MI100GPM returns the Table I per-GPM configuration (one quarter of an
// AMD MI100).
func MI100GPM() GPM {
	return GPM{
		NumCUs:   32,
		L1VCache: cache.Config{SizeBytes: 16 << 10, Ways: 4, MSHRs: 16, Latency: 1},
		L2Cache:  cache.Config{SizeBytes: 4 << 20, Ways: 16, MSHRs: 64, Latency: 8},
		L1TLB:    tlb.Config{Sets: 1, Ways: 32, MSHRs: 4, Latency: 4},
		L2TLB:    tlb.Config{Sets: 64, Ways: 32, MSHRs: 32, Latency: 32},
		GMMUCache: tlb.Config{
			Sets: 64, Ways: 16, MSHRs: 32, Latency: 16,
		},
		AuxTLB: tlb.Config{
			Sets: 64, Ways: 16, MSHRs: 0, Latency: 16,
		},
		CuckooLatency: 2,
		GMMUWalkers:   8,
		WalkCycles:    500,
		HBM:           dram.DefaultConfig(),
		MLP:           8,
	}
}

// DefaultIOMMU returns the Table I host MMU with all HDPAT extensions
// disabled; schemes enable what they need.
func DefaultIOMMU() IOMMU {
	return IOMMU{
		Walkers:    16,
		WalkCycles: 500,
		// The internal walker queue is small; overflow waits in the
		// admission (pre-queue) stage. Its size is what bounds the
		// PW-queue revisit mechanism ("the size of the PW-queue limits the
		// performance improvement" of Barre, §V-B). Fig 4's experiment
		// raises it to 4096 to expose the backlog.
		PWQueueCap:          64,
		RedirectEntries:     0,
		Revisit:             false,
		PrefetchDegree:      1,
		PrefetchExtraCycles: 5,
		PushThreshold:       2,
		TLBSets:             16,
		TLBWays:             32, // 512 entries, area-equivalent to the 1024-entry RT
		TLBMSHRs:            32,
	}
}

// HDPATIOMMU returns the IOMMU as HDPAT configures it (§IV).
func HDPATIOMMU() IOMMU {
	c := DefaultIOMMU()
	c.RedirectEntries = 1024
	c.Revisit = true
	c.PrefetchDegree = 4
	return c
}

// DefaultHDPAT returns the paper's default mechanism parameters.
func DefaultHDPAT() HDPAT {
	return HDPAT{Layers: 2, Clusters: 4, AuxProbeLatency: 18}
}

// GPU generation variants (Fig 21). Each GPM remains one quarter of the
// named device's memory system; CU count stays at 32 so compute supply is
// comparable and memory-system differences dominate, as in the paper.

// MI200GPM doubles L2 and moves to HBM2e.
func MI200GPM() GPM {
	g := MI100GPM()
	g.L2Cache.SizeBytes = 8 << 20
	g.HBM.BytesPerCycle = 1600 // 1.6 TB/s
	return g
}

// MI300GPM models the larger MI300-class cache hierarchy with HBM3.
func MI300GPM() GPM {
	g := MI100GPM()
	g.L1VCache.SizeBytes = 32 << 10
	g.L2Cache.SizeBytes = 16 << 20
	g.HBM.BytesPerCycle = 2600 // ~2.6 TB/s per stack group
	return g
}

// H100GPM models the NVIDIA H100-class memory system the paper describes:
// 256 KB L1 per CU and 50 MB L2 (quartered), HBM2e-class bandwidth.
func H100GPM() GPM {
	g := MI100GPM()
	g.L1VCache = cache.Config{SizeBytes: 256 << 10, Ways: 8, MSHRs: 32, Latency: 1}
	g.L2Cache = cache.Config{SizeBytes: 12 << 20, Ways: 16, MSHRs: 128, Latency: 8}
	g.HBM.BytesPerCycle = 2000
	return g
}

// H200GPM is H100 with HBM3 bandwidth.
func H200GPM() GPM {
	g := H100GPM()
	g.HBM.BytesPerCycle = 4800 // 4.8 TB/s
	return g
}

// GPMVariant resolves a GPU generation by name.
func GPMVariant(name string) (GPM, error) {
	switch name {
	case "mi100", "MI100":
		return MI100GPM(), nil
	case "mi200", "MI200":
		return MI200GPM(), nil
	case "mi300", "MI300":
		return MI300GPM(), nil
	case "h100", "H100":
		return H100GPM(), nil
	case "h200", "H200":
		return H200GPM(), nil
	}
	return GPM{}, fmt.Errorf("config: unknown GPU variant %q", name)
}

// GPMVariantNames lists the Fig 21 configurations in paper order.
func GPMVariantNames() []string { return []string{"MI100", "MI200", "MI300", "H100", "H200"} }

// IdealLatencyIOMMU is the Fig 2 idealisation with 1-cycle walks.
func IdealLatencyIOMMU() IOMMU {
	c := DefaultIOMMU()
	c.WalkCycles = 1
	return c
}

// IdealParallelIOMMU is the Fig 2 idealisation with 4096 walkers.
func IdealParallelIOMMU() IOMMU {
	c := DefaultIOMMU()
	c.Walkers = 4096
	return c
}

// MCM4 returns a 4-GPM Multi-Chip-Module configuration (Fig 4's
// comparison point): a 1x5 strip with the CPU in the middle.
func MCM4() System {
	c := Default()
	c.Name = "mcm-4gpm"
	c.MeshW = 5
	c.MeshH = 3
	// A 5x3 mesh has 14 GPMs; the paper's MCM has 4. We approximate with
	// the smallest supported mesh (3x3, 8 GPMs) when strict GPM count
	// matters; Fig 4's point is the queue-depth contrast, which survives.
	c.MeshW, c.MeshH = 3, 3
	c.HDPAT.Layers = 1
	return c
}

// Wafer7x12 returns the enlarged wafer of Fig 22.
func Wafer7x12() System {
	c := Default()
	c.Name = "mi100-7x12"
	c.MeshW, c.MeshH = 7, 12
	return c
}

// ApplyScale returns a copy with capacity structures divided by
// WorkloadScale. Scaling footprints down without scaling the caches that
// filter them would distort every miss ratio the paper's observations rest
// on (O3's re-translation traffic exists because footprints exceed TLB
// reach); dividing both keeps each benchmark's footprint:capacity ratio at
// its Table II value. Latencies, parallelism (walkers, MSHRs) and the
// PW-queue bound are not scaled: they are rates, not capacities.
// wafer.Run applies this automatically before building the system.
func (s System) ApplyScale() System {
	f := s.WorkloadScale
	if f <= 1 {
		return s
	}
	div := func(v int, min int) int {
		v /= f
		if v < min {
			v = min
		}
		return v
	}
	s.GPM.L2TLB.Sets = div(s.GPM.L2TLB.Sets, 1)
	s.GPM.GMMUCache.Sets = div(s.GPM.GMMUCache.Sets, 1)
	s.GPM.AuxTLB.Sets = div(s.GPM.AuxTLB.Sets, 1)
	s.GPM.L2Cache.SizeBytes = div(s.GPM.L2Cache.SizeBytes, 64*s.GPM.L2Cache.Ways)
	if s.IOMMU.RedirectEntries > 0 {
		s.IOMMU.RedirectEntries = div(s.IOMMU.RedirectEntries, 16)
	}
	s.IOMMU.TLBSets = div(s.IOMMU.TLBSets, 1)
	return s
}

// Mesh size bounds enforced by Validate, shared with the geometry layer.
// The per-dimension cap keeps the W*H product free of integer overflow on
// any build (1024^2 fits easily in int32); the tile cap bounds what a
// simulation is allowed to allocate for topology — 65536 tiles is two
// orders of magnitude past the giant-wafer roadmap target (30x30 = 900)
// while refusing specs that would OOM the process before any simulation
// ran.
const (
	MaxMeshDim = geom.MaxDim
	MaxTiles   = geom.MaxTiles
)

// ValidationError is the typed error Validate reports: Field names the
// offending parameter and Reason says why it was rejected, so callers (the
// hdpatd spec gate in particular) can distinguish a bad configuration from
// an internal failure.
type ValidationError struct {
	Field  string
	Reason string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("config: invalid %s: %s", e.Field, e.Reason)
}

// Validate sanity-checks a configuration.
func (s System) Validate() error {
	if s.MeshW < 3 || s.MeshH < 3 {
		return &ValidationError{Field: "mesh", Reason: fmt.Sprintf("%dx%d too small (minimum 3x3)", s.MeshW, s.MeshH)}
	}
	if s.MeshW > MaxMeshDim || s.MeshH > MaxMeshDim {
		return &ValidationError{Field: "mesh", Reason: fmt.Sprintf("%dx%d exceeds the %d per-dimension cap", s.MeshW, s.MeshH, MaxMeshDim)}
	}
	// Both dimensions are in [3, MaxMeshDim], so the product cannot
	// overflow; cap the tile count a spec may ask the simulator to build.
	if s.MeshW*s.MeshH > MaxTiles {
		return &ValidationError{Field: "mesh", Reason: fmt.Sprintf("%dx%d = %d tiles exceeds the %d-tile cap", s.MeshW, s.MeshH, s.MeshW*s.MeshH, MaxTiles)}
	}
	if s.GPM.NumCUs <= 0 || s.GPM.GMMUWalkers <= 0 {
		return &ValidationError{Field: "gpm", Reason: "must have CUs and walkers"}
	}
	if s.IOMMU.Walkers <= 0 || s.IOMMU.PWQueueCap <= 0 {
		return &ValidationError{Field: "iommu", Reason: "must have walkers and queue capacity"}
	}
	if s.HDPAT.Layers < 0 || s.HDPAT.Clusters < 1 {
		return &ValidationError{Field: "hdpat", Reason: "invalid layers/clusters"}
	}
	if s.PageSize < 1<<12 || uint64(s.PageSize)&(uint64(s.PageSize)-1) != 0 {
		return &ValidationError{Field: "page_size", Reason: fmt.Sprintf("%d not a power-of-two >= 4K", s.PageSize)}
	}
	if s.WorkloadScale < 1 {
		return &ValidationError{Field: "workload_scale", Reason: "must be >= 1"}
	}
	if s.NoC.BytesPerCycle <= 0 {
		return &ValidationError{Field: "noc", Reason: fmt.Sprintf("bytes_per_cycle %v must be positive", s.NoC.BytesPerCycle)}
	}
	// HopLatency is an unsigned cycle count, so "negative" cannot be
	// represented; zero is rejected too because the hop latency doubles as
	// the domain-sharded coordinator's lookahead window.
	if s.NoC.HopLatency < 1 {
		return &ValidationError{Field: "noc", Reason: "hop_latency must be >= 1 cycle"}
	}
	if !noc.ValidRouting(s.NoC.Routing) {
		return &ValidationError{Field: "noc.routing", Reason: fmt.Sprintf("unknown routing %q (valid: %s)", s.NoC.Routing, strings.Join(noc.RoutingNames(), ", "))}
	}
	return nil
}
