package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeans(t *testing.T) {
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty input should yield 0")
	}
	if !almostEq(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean wrong")
	}
	if !almostEq(GeoMean([]float64{1, 4}), 2) {
		t.Error("GeoMean wrong")
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("GeoMean with nonpositive input should be 0")
	}
}

// Property: geomean(xs) <= mean(xs) for positive inputs (AM-GM).
func TestAMGM(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		for _, r := range raw {
			xs = append(xs, float64(r)+1)
		}
		if len(xs) == 0 {
			return true
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 50) != 3 {
		t.Errorf("p50 = %f", Percentile(xs, 50))
	}
	if Percentile(xs, 100) != 5 {
		t.Errorf("p100 = %f", Percentile(xs, 100))
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Add(0)
	h.Add(1)
	h.Add(2)
	h.Add(3)
	h.Add(100)
	if h.Total() != 5 || h.Max() != 100 {
		t.Fatalf("total=%d max=%d", h.Total(), h.Max())
	}
	c0, lo, hi := h.Bucket(0)
	if c0 != 1 || lo != 0 || hi != 0 {
		t.Errorf("bucket0 = %d [%d,%d]", c0, lo, hi)
	}
	c1, lo, hi := h.Bucket(1)
	if c1 != 1 || lo != 1 || hi != 1 {
		t.Errorf("bucket1 = %d [%d,%d]", c1, lo, hi)
	}
	c2, _, _ := h.Bucket(2)
	if c2 != 2 { // values 2 and 3
		t.Errorf("bucket2 = %d, want 2", c2)
	}
	if !almostEq(h.FractionAtMost(3), 0.8) {
		t.Errorf("FractionAtMost(3) = %f", h.FractionAtMost(3))
	}
	if h.String() == "" {
		t.Error("String empty")
	}
}

func TestHistogramMean(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{10, 20, 30} {
		h.Add(v)
	}
	if !almostEq(h.Mean(), 20) {
		t.Errorf("Mean = %f", h.Mean())
	}
}

func TestTimeSeriesModes(t *testing.T) {
	sum := NewCountSeries(100)
	sum.Record(10, 1)
	sum.Record(20, 1)
	sum.Record(150, 1)
	if v := sum.Values(); v[0] != 2 || v[1] != 1 {
		t.Errorf("sum series %v", v)
	}
	max := NewMaxSeries(100)
	max.Record(10, 5)
	max.Record(20, 3)
	if max.Values()[0] != 5 {
		t.Errorf("max series %v", max.Values())
	}
	mean := NewMeanSeries(100)
	mean.Record(10, 4)
	mean.Record(20, 6)
	if mean.Values()[0] != 5 {
		t.Errorf("mean series %v", mean.Values())
	}
	if sum.Peak() != 2 {
		t.Errorf("Peak = %f", sum.Peak())
	}
}

func TestSparkline(t *testing.T) {
	ts := NewCountSeries(10)
	for i := uint64(0); i < 100; i++ {
		ts.Record(i, float64(i))
	}
	s := ts.Sparkline(20)
	if len([]rune(s)) != 20 {
		t.Errorf("sparkline width %d", len([]rune(s)))
	}
	if (&TimeSeries{Window: 10}).Sparkline(10) != "" {
		t.Error("empty series sparkline should be empty")
	}
}

func TestReuseTracker(t *testing.T) {
	r := NewReuseTracker()
	// Stream: A B A -> reuse distance of A is 2.
	r.Touch(1)
	r.Touch(2)
	r.Touch(1)
	if r.Requests() != 3 || r.UniquePages() != 2 {
		t.Fatalf("requests=%d unique=%d", r.Requests(), r.UniquePages())
	}
	if r.Distances.Total() != 1 {
		t.Fatalf("distances recorded = %d", r.Distances.Total())
	}
	if r.Distances.Max() != 2 {
		t.Errorf("distance = %d, want 2", r.Distances.Max())
	}
	if !almostEq(r.SingleTouchFraction(), 0.5) {
		t.Errorf("single-touch fraction = %f", r.SingleTouchFraction())
	}
	ch := r.CountHistogram()
	if ch.Total() != 2 {
		t.Errorf("count histogram total = %d", ch.Total())
	}
}

func TestSpatialTracker(t *testing.T) {
	var s SpatialTracker
	s.Touch(100)
	s.Touch(101) // distance 1
	s.Touch(99)  // distance 2
	s.Touch(200) // distance 101
	if s.Distances.Total() != 3 {
		t.Fatalf("pairs = %d", s.Distances.Total())
	}
	if !almostEq(s.FractionWithin(1), 1.0/3) {
		t.Errorf("within 1 = %f", s.FractionWithin(1))
	}
	if !almostEq(s.FractionWithin(4), 2.0/3) {
		t.Errorf("within 4 = %f", s.FractionWithin(4))
	}
}

func TestBreakdown(t *testing.T) {
	var b BreakdownAccumulator
	b.Add(100, 200, 500)
	b.Add(300, 0, 500)
	pre, q, w := b.Means()
	if !almostEq(pre, 200) || !almostEq(q, 100) || !almostEq(w, 500) {
		t.Errorf("means = %f,%f,%f", pre, q, w)
	}
	pp, qp, wp := b.Percentages()
	if !almostEq(pp+qp+wp, 100) {
		t.Errorf("percentages sum to %f", pp+qp+wp)
	}
	var empty BreakdownAccumulator
	if p, q, w := empty.Percentages(); p != 0 || q != 0 || w != 0 {
		t.Error("empty breakdown should be zeros")
	}
}
