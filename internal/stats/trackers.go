package stats

// ReuseTracker measures, over a stream of page translation requests, the
// per-page request count (Fig 6) and the reuse distance — the number of
// intervening requests between touches of the same page (Fig 7, O3).
type ReuseTracker struct {
	index    uint64
	lastSeen map[uint64]uint64
	counts   map[uint64]uint64

	Distances Histogram
}

// NewReuseTracker creates an empty tracker.
func NewReuseTracker() *ReuseTracker {
	return &ReuseTracker{lastSeen: make(map[uint64]uint64), counts: make(map[uint64]uint64)}
}

// Touch records a request for page v.
func (r *ReuseTracker) Touch(v uint64) {
	if last, seen := r.lastSeen[v]; seen {
		r.Distances.Add(r.index - last)
	}
	r.lastSeen[v] = r.index
	r.counts[v]++
	r.index++
}

// Requests returns the total touches recorded.
func (r *ReuseTracker) Requests() uint64 { return r.index }

// UniquePages returns how many distinct pages were touched.
func (r *ReuseTracker) UniquePages() int { return len(r.counts) }

// CountHistogram builds the Fig 6 distribution: how many pages were
// requested exactly once, 2-3 times, 4-7 times, and so on (log2 buckets).
func (r *ReuseTracker) CountHistogram() *Histogram {
	var h Histogram
	for _, c := range r.counts {
		h.Add(c)
	}
	return &h
}

// SingleTouchFraction returns the fraction of pages requested exactly once —
// near 1.0 for AES/RELU per O3, low for BT/FWT.
func (r *ReuseTracker) SingleTouchFraction() float64 {
	if len(r.counts) == 0 {
		return 0
	}
	n := 0
	for _, c := range r.counts {
		if c == 1 {
			n++
		}
	}
	return float64(n) / float64(len(r.counts))
}

// SpatialTracker measures the virtual-page distance between each translation
// request and the next one in the stream (Fig 8, O4).
type SpatialTracker struct {
	prev    uint64
	started bool

	Distances Histogram
}

// Touch records the next requested page.
func (s *SpatialTracker) Touch(v uint64) {
	if s.started {
		d := v - s.prev
		if s.prev > v {
			d = s.prev - v
		}
		s.Distances.Add(d)
	}
	s.prev = v
	s.started = true
}

// FractionWithin returns the fraction of consecutive request pairs whose
// pages lie within dist pages of each other (the Fig 8 bars: within 1, 2,
// 4 pages).
func (s *SpatialTracker) FractionWithin(dist uint64) float64 {
	return s.Distances.FractionAtMost(dist)
}

// BreakdownAccumulator aggregates per-request latency components for Fig 3:
// pre-queue wait, PTW-queue wait, and the walk itself.
type BreakdownAccumulator struct {
	PreQueue float64
	PTWQueue float64
	Walk     float64
	Requests uint64
}

// Add records one request's three components, in cycles.
func (b *BreakdownAccumulator) Add(pre, queue, walk uint64) {
	b.PreQueue += float64(pre)
	b.PTWQueue += float64(queue)
	b.Walk += float64(walk)
	b.Requests++
}

// Means returns the average of each component.
func (b *BreakdownAccumulator) Means() (pre, queue, walk float64) {
	if b.Requests == 0 {
		return 0, 0, 0
	}
	n := float64(b.Requests)
	return b.PreQueue / n, b.PTWQueue / n, b.Walk / n
}

// Percentages returns each component as a share of the mean total.
func (b *BreakdownAccumulator) Percentages() (pre, queue, walk float64) {
	p, q, w := b.Means()
	tot := p + q + w
	if tot == 0 {
		return 0, 0, 0
	}
	return 100 * p / tot, 100 * q / tot, 100 * w / tot
}
