// Package stats provides the measurement machinery behind every figure in
// the paper's evaluation: histograms, windowed time series, reuse-distance
// and spatial-locality trackers for the O3/O4 characterisation, latency
// breakdown accumulators for Fig 3, and the geometric-mean summarisation
// used throughout §V.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"hdpat/internal/metrics"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs; non-positive values and empty
// input yield 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0-100) of xs using nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Histogram is a log2-bucketed histogram for wide-ranged counts such as
// reuse distances (Fig 7 spans 1 to hundreds of thousands). Bucketing
// follows metrics.Log2Bucket — the repository's single log2-bucket rule —
// so stats and metrics histograms agree bucket for bucket.
type Histogram struct {
	buckets []uint64 // buckets[i] counts values in metrics.BucketRange(i), bucket 0 = {0}
	total   uint64
	sum     float64
	max     uint64
}

// Add records v.
func (h *Histogram) Add(v uint64) {
	b := metrics.Log2Bucket(v)
	for len(h.buckets) <= b {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[b]++
	h.total++
	h.sum += float64(v)
	if v > h.max {
		h.max = v
	}
}

// Total returns the number of recorded values.
func (h *Histogram) Total() uint64 { return h.total }

// Max returns the largest recorded value.
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the mean of recorded values.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Bucket returns the count and inclusive value range of bucket i.
func (h *Histogram) Bucket(i int) (count uint64, lo, hi uint64) {
	if i < 0 || i >= len(h.buckets) {
		return 0, 0, 0
	}
	lo, hi = metrics.BucketRange(i)
	return h.buckets[i], lo, hi
}

// NumBuckets returns how many buckets carry data.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// FractionAtMost returns the fraction of values <= v.
func (h *Histogram) FractionAtMost(v uint64) float64 {
	if h.total == 0 {
		return 0
	}
	var n uint64
	for i := range h.buckets {
		_, lo, hi := h.Bucket(i)
		if hi <= v || (i == 0 && v >= lo) {
			n += h.buckets[i]
		}
	}
	return float64(n) / float64(h.total)
}

// String renders the histogram as aligned rows.
func (h *Histogram) String() string {
	var b strings.Builder
	for i := range h.buckets {
		c, lo, hi := h.Bucket(i)
		if c == 0 {
			continue
		}
		fmt.Fprintf(&b, "[%8d,%8d] %8d (%5.1f%%)\n", lo, hi, c, 100*float64(c)/float64(h.total))
	}
	return b.String()
}

// TimeSeries aggregates counts into fixed-width windows of simulated time,
// the presentation used by Fig 4 (buffer pressure) and Fig 13 (request
// rate over time).
type TimeSeries struct {
	Window uint64 // cycles per window
	vals   []float64
	counts []uint64
	mode   tsMode
}

type tsMode int

const (
	tsSum tsMode = iota
	tsMax
	tsMean
)

// NewCountSeries sums samples within each window (e.g. requests served).
func NewCountSeries(window uint64) *TimeSeries {
	return &TimeSeries{Window: window, mode: tsSum}
}

// NewMaxSeries keeps the maximum sample per window (e.g. peak queue depth).
func NewMaxSeries(window uint64) *TimeSeries {
	return &TimeSeries{Window: window, mode: tsMax}
}

// NewMeanSeries averages samples within each window.
func NewMeanSeries(window uint64) *TimeSeries {
	return &TimeSeries{Window: window, mode: tsMean}
}

// Record adds sample v at cycle t.
func (ts *TimeSeries) Record(t uint64, v float64) {
	w := int(t / ts.Window)
	for len(ts.vals) <= w {
		ts.vals = append(ts.vals, 0)
		ts.counts = append(ts.counts, 0)
	}
	switch ts.mode {
	case tsSum:
		ts.vals[w] += v
	case tsMax:
		if v > ts.vals[w] || ts.counts[w] == 0 {
			ts.vals[w] = v
		}
	case tsMean:
		ts.vals[w] += v
	}
	ts.counts[w]++
}

// Values returns one value per window.
func (ts *TimeSeries) Values() []float64 {
	out := make([]float64, len(ts.vals))
	for i := range ts.vals {
		switch ts.mode {
		case tsMean:
			if ts.counts[i] > 0 {
				out[i] = ts.vals[i] / float64(ts.counts[i])
			}
		default:
			out[i] = ts.vals[i]
		}
	}
	return out
}

// Len returns the number of windows.
func (ts *TimeSeries) Len() int { return len(ts.vals) }

// Peak returns the maximum window value.
func (ts *TimeSeries) Peak() float64 {
	p := 0.0
	for _, v := range ts.Values() {
		if v > p {
			p = v
		}
	}
	return p
}

// Sparkline renders the series as a coarse text plot for CLI output.
func (ts *TimeSeries) Sparkline(width int) string {
	vals := ts.Values()
	if len(vals) == 0 {
		return ""
	}
	// Downsample to width by taking window maxima.
	if width <= 0 {
		width = 60
	}
	ds := make([]float64, width)
	for i, v := range vals {
		j := i * width / len(vals)
		if v > ds[j] {
			ds[j] = v
		}
	}
	peak := 0.0
	for _, v := range ds {
		if v > peak {
			peak = v
		}
	}
	glyphs := []rune(" .:-=+*#%@")
	var b strings.Builder
	for _, v := range ds {
		g := 0
		if peak > 0 {
			g = int(v / peak * float64(len(glyphs)-1))
		}
		b.WriteRune(glyphs[g])
	}
	return b.String()
}
