// Package sim provides the discrete-event simulation kernel used by every
// other component of the wafer-scale GPU model.
//
// Time is measured in GPU cycles (VTime). The Engine maintains a binary heap
// of scheduled events ordered by (time, sequence number); events scheduled
// for the same cycle run in scheduling order, which makes every simulation
// fully deterministic for a given input.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"hdpat/internal/metrics"
)

// VTime is a point in simulated time, in cycles.
type VTime uint64

// Infinity is a time later than any event a simulation will ever schedule.
const Infinity VTime = math.MaxUint64

type event struct {
	time VTime
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Engine is a single-threaded discrete-event scheduler.
// The zero value is ready to use.
type Engine struct {
	now     VTime
	seq     uint64
	events  eventHeap
	stopped bool

	// Processed counts events executed so far; useful for progress reporting
	// and for bounding runaway simulations in tests.
	Processed uint64

	// m mirrors dispatch activity into an attached metrics registry; nil
	// (the default) costs one branch per event.
	m *engineMetrics

	// Periodic sampler (AttachSampler): fired between events at window
	// boundaries, never through the event heap, so an attached sampler
	// cannot perturb event order, Processed counts, or results.
	samplePeriod VTime
	sampleNext   VTime
	sampleFn     func(at VTime)
}

// engineMetrics are the engine's registry series.
type engineMetrics struct {
	events *metrics.Counter
	heap   *metrics.Gauge
	peak   *metrics.Gauge
}

// AttachMetrics mirrors the engine's dispatch activity into reg:
// sim.events_dispatched (counter), sim.heap_depth (gauge, pending events
// after the latest dispatch) and sim.heap_peak (gauge, deepest heap seen).
// Attaching does not perturb event order — metrics only observe.
func (e *Engine) AttachMetrics(reg *metrics.Registry) {
	e.m = &engineMetrics{
		events: reg.Counter("sim.events_dispatched"),
		heap:   reg.Gauge("sim.heap_depth"),
		peak:   reg.Gauge("sim.heap_peak"),
	}
}

// note records one dispatched event in the attached registry.
func (m *engineMetrics) note(pending int) {
	m.events.Inc()
	m.heap.Set(int64(pending))
	m.peak.Max(int64(pending))
}

// AttachSampler arranges for fn to be called at every multiple of period
// cycles, between event executions — the periodic probe behind queue-depth
// and link-utilisation time series. Unlike a self-rescheduling event, the
// sampler never touches the event heap: before an event at time t runs, fn
// fires once for each elapsed boundary <= t (in boundary order), observing
// simulator state as of the previous event. fn receives the boundary time
// (the engine clock has not advanced yet) and must only read state — it must
// not schedule events or mutate components, so a sampled run is identical to
// an unsampled one. A zero period or nil fn detaches the sampler.
func (e *Engine) AttachSampler(period VTime, fn func(at VTime)) {
	if period == 0 || fn == nil {
		e.samplePeriod, e.sampleFn = 0, nil
		return
	}
	e.samplePeriod = period
	e.sampleNext = (e.now/period + 1) * period
	e.sampleFn = fn
}

// fireSamples invokes the sampler for every boundary at or before upto.
func (e *Engine) fireSamples(upto VTime) {
	for e.sampleNext <= upto {
		e.sampleFn(e.sampleNext)
		e.sampleNext += e.samplePeriod
	}
}

// FlushSamples fires any sampler boundaries at or before upto that have not
// fired yet, in boundary order. RunUntil fires boundaries only up to executed
// events (and, when the limit cuts a run with events still pending, up to the
// limit), so a run that settles mid-window leaves its trailing time-series
// windows unsampled; callers close them by flushing up to the run's logical
// end time. A no-op without an attached sampler; upto must be finite.
func (e *Engine) FlushSamples(upto VTime) {
	if e.sampleFn == nil || upto == Infinity {
		return
	}
	e.fireSamples(upto)
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() VTime { return e.now }

// Pending reports the number of events not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// NextTime returns the time of the earliest pending event. ok is false when
// the queue is empty. Callers slicing a run with RunUntil (cancellation
// checks, progress reporting) use it to skip idle gaps in one step.
func (e *Engine) NextTime() (t VTime, ok bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events.peek().time, true
}

// Schedule runs fn after delay cycles (possibly zero, meaning later in the
// current cycle, after already-scheduled same-cycle events).
func (e *Engine) Schedule(delay VTime, fn func()) {
	e.At(e.now+delay, fn)
}

// At runs fn at absolute time t. Scheduling in the past is a programming
// error and panics, since it would silently corrupt causality.
func (e *Engine) At(t VTime, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	e.events.pushEvent(event{time: t, seq: e.seq, fn: fn})
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(Infinity)
}

// RunUntil executes events with time <= limit. Events scheduled exactly at
// limit do run. On return the engine clock is the time of the last executed
// event (or unchanged if none ran).
//
// When the limit cuts the run — events remain beyond limit — the run has
// logically advanced to limit, so any sampler boundaries in (last event,
// limit] fire before returning; they would otherwise be lost, silently
// truncating time series. A drained queue fires nothing extra (the run ended
// at the last event); use FlushSamples to close a trailing partial window.
func (e *Engine) RunUntil(limit VTime) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events.peek().time > limit {
			if e.sampleFn != nil && limit != Infinity {
				e.fireSamples(limit)
			}
			return
		}
		ev := e.events.popEvent()
		if e.sampleFn != nil {
			e.fireSamples(ev.time)
		}
		e.now = ev.time
		e.Processed++
		if e.m != nil {
			e.m.note(len(e.events))
		}
		ev.fn()
	}
}

// Step executes exactly one event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events.popEvent()
	if e.sampleFn != nil {
		e.fireSamples(ev.time)
	}
	e.now = ev.time
	e.Processed++
	if e.m != nil {
		e.m.note(len(e.events))
	}
	ev.fn()
	return true
}

// Stop halts Run/RunUntil after the current event returns. Remaining events
// stay queued; a subsequent Run resumes them.
func (e *Engine) Stop() { e.stopped = true }
