// Package sim provides the discrete-event simulation kernel used by every
// other component of the wafer-scale GPU model.
//
// Time is measured in GPU cycles (VTime). The Engine maintains an inlined
// 4-ary heap of typed events ordered by (time, sequence number); events
// scheduled for the same cycle run in scheduling order, which makes every
// simulation fully deterministic for a given input.
//
// Events come in two forms. The closure form (Schedule/At) is convenient
// and right for cold paths and tests; it costs one closure allocation per
// event at the call site. The typed form (Post/PostAt) carries a Handler —
// typically a pooled, long-lived component or request object — plus a small
// EventArg payload, and allocates nothing: hot components schedule millions
// of events per simulated second, so the per-event closure was the kernel's
// dominant allocation source (see docs/performance.md for the scheduling
// rules).
package sim

import (
	"fmt"
	"math"

	"hdpat/internal/metrics"
)

// VTime is a point in simulated time, in cycles.
type VTime uint64

// Infinity is a time later than any event a simulation will ever schedule.
const Infinity VTime = math.MaxUint64

// EventArg is the payload of a typed event: an optional pointer (usually a
// pooled request or state-machine object) and two integer scratch words, so
// common payloads (a cacheline address, a generation counter, a drop count)
// need no allocation.
type EventArg struct {
	Ptr  any
	A, B uint64
}

// Handler is the typed event form: Event is invoked at dispatch time with
// the argument the event was posted with. Implementations are long-lived
// components or pooled per-request objects, so posting a typed event
// allocates nothing.
type Handler interface {
	Event(arg EventArg)
}

// funcEvent adapts a closure to Handler. Func values are pointer-shaped, so
// the interface conversion itself does not allocate (the closure already
// did, at its creation site).
type funcEvent func()

// Event implements Handler.
func (f funcEvent) Event(EventArg) { f() }

// event is one heap entry.
type event struct {
	time VTime
	seq  uint64
	h    Handler
	arg  EventArg
}

// before reports dispatch order: (time, seq) lexicographic. seq is unique,
// so the order is total and any correct heap yields the same dispatch
// sequence as the previous container/heap kernel.
func (e event) before(o event) bool {
	if e.time != o.time {
		return e.time < o.time
	}
	return e.seq < o.seq
}

// Heap geometry: a 4-ary heap halves tree depth versus binary, trading a
// wider (branch-predictable, cache-resident) min-of-children scan for fewer
// sift levels — the standard layout for event-driven simulators where pops
// dominate.
const (
	heapArity = 4
	// minHeapCap is the slice capacity below which the drained heap is
	// never shrunk; release below this buys nothing.
	minHeapCap = 64
)

// Engine is a single-threaded discrete-event scheduler.
// The zero value is ready to use.
type Engine struct {
	now     VTime
	seq     uint64
	events  []event
	stopped bool

	// Processed counts events executed so far; useful for progress reporting
	// and for bounding runaway simulations in tests.
	Processed uint64

	// m mirrors dispatch activity into an attached metrics registry; nil
	// (the default) costs one branch per event.
	m *engineMetrics

	// Periodic sampler (AttachSampler): fired between events at window
	// boundaries, never through the event heap, so an attached sampler
	// cannot perturb event order, Processed counts, or results.
	samplePeriod VTime
	sampleNext   VTime
	sampleFn     func(at VTime)

	// sh, when non-nil, marks this engine as one domain of a sharded run
	// (see shard.go): scheduling is logged for the barrier replay and
	// sequence numbers are coordinated globally. Nil costs one predictable
	// branch per scheduling call.
	sh *shardState
}

// pushEvent sifts ev up from the bottom of the heap.
func (e *Engine) pushEvent(ev event) {
	h := append(e.events, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !ev.before(h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
	e.events = h
}

// popEvent removes and returns the earliest event, releasing surplus slice
// capacity left over from a depth spike: once occupancy falls to a quarter
// of capacity the backing array is reallocated at half size, so a burst
// that briefly queued millions of events does not pin their storage for the
// rest of the run. The shrink copies len elements at most every len pops,
// keeping the amortized cost O(1).
func (e *Engine) popEvent() event {
	h := e.events
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release Handler/Ptr references
	h = h[:n]
	if n > 0 {
		// Sift last down from the root.
		i := 0
		for {
			c := i*heapArity + 1
			if c >= n {
				break
			}
			end := c + heapArity
			if end > n {
				end = n
			}
			best := c
			for j := c + 1; j < end; j++ {
				if h[j].before(h[best]) {
					best = j
				}
			}
			if !h[best].before(last) {
				break
			}
			h[i] = h[best]
			i = best
		}
		h[i] = last
	}
	if c := cap(h); c > minHeapCap && n <= c/4 {
		shrunk := make([]event, n, c/2)
		copy(shrunk, h)
		h = shrunk
	}
	e.events = h
	return root
}

// engineMetrics are the engine's registry series.
type engineMetrics struct {
	events *metrics.Counter
	heap   *metrics.Gauge
	peak   *metrics.Gauge
}

// AttachMetrics mirrors the engine's dispatch activity into reg:
// sim.events_dispatched (counter), sim.heap_depth (gauge, pending events
// after the latest dispatch) and sim.heap_peak (gauge, deepest heap seen).
// Attaching does not perturb event order — metrics only observe.
func (e *Engine) AttachMetrics(reg *metrics.Registry) {
	e.m = &engineMetrics{
		events: reg.Counter("sim.events_dispatched"),
		heap:   reg.Gauge("sim.heap_depth"),
		peak:   reg.Gauge("sim.heap_peak"),
	}
}

// note records one dispatched event in the attached registry.
func (m *engineMetrics) note(pending int) {
	m.events.Inc()
	m.heap.Set(int64(pending))
	m.peak.Max(int64(pending))
}

// AttachSampler arranges for fn to be called at every multiple of period
// cycles, between event executions — the periodic probe behind queue-depth
// and link-utilisation time series. Unlike a self-rescheduling event, the
// sampler never touches the event heap: before an event at time t runs, fn
// fires once for each elapsed boundary <= t (in boundary order), observing
// simulator state as of the previous event. fn receives the boundary time
// (the engine clock has not advanced yet) and must only read state — it must
// not schedule events or mutate components, so a sampled run is identical to
// an unsampled one. A zero period or nil fn detaches the sampler.
func (e *Engine) AttachSampler(period VTime, fn func(at VTime)) {
	if period == 0 || fn == nil {
		e.samplePeriod, e.sampleFn = 0, nil
		return
	}
	e.samplePeriod = period
	e.sampleNext = (e.now/period + 1) * period
	e.sampleFn = fn
}

// fireSamples invokes the sampler for every boundary at or before upto.
func (e *Engine) fireSamples(upto VTime) {
	for e.sampleNext <= upto {
		e.sampleFn(e.sampleNext)
		e.sampleNext += e.samplePeriod
	}
}

// FlushSamples fires any sampler boundaries at or before upto that have not
// fired yet, in boundary order. RunUntil fires boundaries only up to executed
// events (and, when the limit cuts a run with events still pending, up to the
// limit), so a run that settles mid-window leaves its trailing time-series
// windows unsampled; callers close them by flushing up to the run's logical
// end time. A no-op without an attached sampler; upto must be finite.
func (e *Engine) FlushSamples(upto VTime) {
	if e.sampleFn == nil || upto == Infinity {
		return
	}
	e.fireSamples(upto)
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() VTime { return e.now }

// Pending reports the number of events not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// NextTime returns the time of the earliest pending event. ok is false when
// the queue is empty. Callers slicing a run with RunUntil (cancellation
// checks, progress reporting) use it to skip idle gaps in one step.
func (e *Engine) NextTime() (t VTime, ok bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].time, true
}

// Schedule runs fn after delay cycles (possibly zero, meaning later in the
// current cycle, after already-scheduled same-cycle events). The closure
// form: convenient, one allocation per event at the call site. Hot paths
// use Post.
func (e *Engine) Schedule(delay VTime, fn func()) {
	e.AtH(e.now+delay, funcEvent(fn), EventArg{})
}

// At runs fn at absolute time t. Scheduling in the past is a programming
// error and panics, since it would silently corrupt causality.
func (e *Engine) At(t VTime, fn func()) {
	e.AtH(t, funcEvent(fn), EventArg{})
}

// Post runs h.Event(arg) after delay cycles: the typed, allocation-free
// event form. Ordering is identical to Schedule — one shared sequence
// counter covers both forms.
func (e *Engine) Post(delay VTime, h Handler, arg EventArg) {
	e.AtH(e.now+delay, h, arg)
}

// PostAt runs h.Event(arg) at absolute time t.
func (e *Engine) PostAt(t VTime, h Handler, arg EventArg) {
	e.AtH(t, h, arg)
}

// AtH is the single scheduling entry point both forms funnel through.
func (e *Engine) AtH(t VTime, h Handler, arg EventArg) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	if e.sh != nil {
		e.sh.schedule(e, t, h, arg)
		return
	}
	e.seq++
	e.pushEvent(event{time: t, seq: e.seq, h: h, arg: arg})
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(Infinity)
}

// RunUntil executes events with time <= limit. Events scheduled exactly at
// limit do run. On return the engine clock is the time of the last executed
// event (or unchanged if none ran).
//
// When the limit cuts the run — events remain beyond limit — the run has
// logically advanced to limit, so any sampler boundaries in (last event,
// limit] fire before returning; they would otherwise be lost, silently
// truncating time series. A drained queue fires nothing extra (the run ended
// at the last event); use FlushSamples to close a trailing partial window.
func (e *Engine) RunUntil(limit VTime) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].time > limit {
			if e.sampleFn != nil && limit != Infinity {
				e.fireSamples(limit)
			}
			return
		}
		ev := e.popEvent()
		if e.sampleFn != nil {
			e.fireSamples(ev.time)
		}
		e.now = ev.time
		e.Processed++
		if e.m != nil {
			e.m.note(len(e.events))
		}
		ev.h.Event(ev.arg)
	}
}

// Step executes exactly one event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.popEvent()
	if e.sampleFn != nil {
		e.fireSamples(ev.time)
	}
	e.now = ev.time
	e.Processed++
	if e.m != nil {
		e.m.note(len(e.events))
	}
	ev.h.Event(ev.arg)
	return true
}

// Stop halts Run/RunUntil after the current event returns. Remaining events
// stay queued; a subsequent Run resumes them.
func (e *Engine) Stop() { e.stopped = true }
