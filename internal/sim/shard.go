// Domain sharding: one simulation split across several Engines running on
// parallel goroutines under a conservative window protocol.
//
// The wafer is partitioned into spatial domains, each with its own Engine.
// Every cross-domain interaction rides a mesh link and therefore arrives at
// least one hop latency L in the future, so events inside a window
// [T, T+L) cannot affect another domain within the same window: domains
// execute their windows concurrently and exchange boundary-crossing events
// at a barrier.
//
// Determinism is bit-exact with a serial run. A serial Engine orders
// same-cycle events by a single sequence counter, and scheduling calls from
// different domains interleave on it, so a sharded run cannot know its
// global sequence numbers while a window executes. Instead each engine runs
// its window with private sequence numbers while logging every dispatch
// (dispRec) and the destination of every scheduling call it makes
// (cross-domain payloads parked in defers). Dispatch within a domain is in
// (time, seq) order, so each domain's log is sorted and the barrier
// recovers the global dispatch order — the order the serial kernel would
// have dispatched — with a K-way merge of the logs, assigning one global
// sequence number per scheduling call as it goes. Within a domain the
// assignment is order-preserving, so surviving heap entries are re-keyed in
// place (heap shape untouched), and cross-domain events are injected with
// their exact serial keys. By induction over windows, every domain
// dispatches exactly the serial run's restriction to that domain, in the
// same order, at the same times.
package sim

import (
	"context"
	"fmt"
	"sync"
)

// dispRec records one event dispatched during a window: its time, the
// sequence number it was dispatched under (global for events keyed before
// the window, engine-local for events scheduled inside it), and how many
// scheduling calls its handler made.
type dispRec struct {
	t   VTime
	seq uint64
	n   int32
}

// shardState is the per-engine side of a Domains coordinator: the window
// bound, the window's dispatch/call logs, and the barrier's working state.
type shardState struct {
	d   *Domains
	dom int32

	// windowEnd bounds the current window; cross-domain posts below it are
	// lookahead violations.
	windowEnd VTime
	// seqBase is the global sequence counter at the window start; local
	// sequence numbers above it belong to this window and are re-keyed at
	// the barrier.
	seqBase uint64

	disp   []dispRec
	calls  []int32 // destination domain per scheduling call; -1 = same-domain
	defers []event // cross-domain payloads, in cross-call order

	// Barrier working state: replay cursors, the global numbers assigned to
	// this window's same-domain calls (in call order), and events other
	// domains posted here.
	di, ci, fi int
	liveG      []uint64
	inj        []event
}

// translate maps a dispatch-log sequence number to its global key: window-
// local numbers were assigned their global keys when the merge consumed the
// scheduling call that created them (always before the event's own record —
// an event is scheduled before it is dispatched), older numbers already are
// global.
func (sh *shardState) translate(seq uint64) uint64 {
	if seq > sh.seqBase {
		return sh.liveG[seq-sh.seqBase-1]
	}
	return seq
}

// schedule is the sharded arm of Engine.AtH.
func (sh *shardState) schedule(e *Engine, t VTime, h Handler, arg EventArg) {
	d := sh.d
	if d.setup {
		// Single-threaded construction: engines share the global counter
		// directly, so setup-scheduled events carry final serial keys.
		d.g++
		e.pushEvent(event{time: t, seq: d.g, h: h, arg: arg})
		return
	}
	sh.calls = append(sh.calls, -1)
	e.seq++
	e.pushEvent(event{time: t, seq: e.seq, h: h, arg: arg})
}

// CrossAt schedules h.Event(arg) at absolute time t on domain dom's engine.
// On a serial engine (or during construction) it degenerates to AtH; during
// a parallel window it must target a time at or beyond the window end — the
// conservative lookahead contract — and panics otherwise, since a closer
// event could race a window the destination already executed.
func (e *Engine) CrossAt(dom int, t VTime, h Handler, arg EventArg) {
	sh := e.sh
	if sh == nil {
		e.AtH(t, h, arg)
		return
	}
	d := sh.d
	if d.setup {
		d.engs[dom].AtH(t, h, arg)
		return
	}
	if int32(dom) == sh.dom {
		e.AtH(t, h, arg)
		return
	}
	if t < sh.windowEnd {
		panic(fmt.Sprintf("sim: cross-domain event at %d inside window ending %d violates lookahead", t, sh.windowEnd))
	}
	sh.calls = append(sh.calls, int32(dom))
	sh.defers = append(sh.defers, event{time: t, h: h, arg: arg})
}

// runWindow executes events with time <= limit, logging each dispatch and
// its scheduling calls for the barrier replay. Samplers, metrics and Stop
// are not supported here: sharded runs reject every observer up front.
func (e *Engine) runWindow(limit VTime) {
	sh := e.sh
	for len(e.events) > 0 && e.events[0].time <= limit {
		ev := e.popEvent()
		e.now = ev.time
		e.Processed++
		n0 := len(sh.calls)
		ev.h.Event(ev.arg)
		sh.disp = append(sh.disp, dispRec{t: ev.time, seq: ev.seq, n: int32(len(sh.calls) - n0)})
	}
}

// mergeHead is one domain's cursor in the barrier's K-way merge: the
// translated global key of its next unconsumed dispatch record.
type mergeHead struct {
	t  VTime
	g  uint64
	ok bool
}

// Domains coordinates one simulation sharded across n Engines. Build the
// system against the per-domain engines (construction runs in setup mode,
// where scheduling is single-threaded and sequence numbers are shared),
// then Run executes windows of one lookahead each in parallel.
type Domains struct {
	engs      []*Engine
	lookahead VTime
	setup     bool

	g     uint64      // global sequence counter (serial numbering)
	heads []mergeHead // barrier merge cursors, one per domain
	round uint64      // 1-based window counter
	// lastWin is the event count of the previous window: the spawn
	// heuristic's load estimate (event density changes slowly relative to
	// one lookahead).
	lastWin int

	// OnWindow, when set, is called before each window with its 1-based
	// index; hazard detectors key their epochs to it.
	OnWindow func(round uint64)

	wg sync.WaitGroup
}

// NewDomains returns a coordinator with n fresh engines in setup mode.
// lookahead is the conservative window length: the minimum cross-domain
// event distance the model guarantees (the NoC hop latency).
func NewDomains(n int, lookahead VTime) *Domains {
	if n < 1 || lookahead == 0 {
		panic("sim: NewDomains needs n >= 1 and a nonzero lookahead")
	}
	d := &Domains{lookahead: lookahead, setup: true,
		engs: make([]*Engine, n), heads: make([]mergeHead, n)}
	for i := range d.engs {
		e := NewEngine()
		e.sh = &shardState{d: d, dom: int32(i)}
		d.engs[i] = e
	}
	return d
}

// N returns the domain count.
func (d *Domains) N() int { return len(d.engs) }

// Engine returns domain i's engine.
func (d *Domains) Engine(i int) *Engine { return d.engs[i] }

// Engines returns the per-domain engines, indexed by domain.
func (d *Domains) Engines() []*Engine { return d.engs }

// Processed sums dispatched events across domains — equal to the serial
// run's single-engine count.
func (d *Domains) Processed() uint64 {
	var n uint64
	for _, e := range d.engs {
		n += e.Processed
	}
	return n
}

// Rounds returns how many parallel windows have run.
func (d *Domains) Rounds() uint64 { return d.round }

// Seal ends setup mode. Idempotent; Run calls it implicitly.
func (d *Domains) Seal() {
	if !d.setup {
		return
	}
	d.setup = false
	for _, e := range d.engs {
		e.seq = d.g
		e.sh.seqBase = d.g
	}
}

// Run executes events with time <= limit across all domains, one lookahead
// window at a time, checking ctx between windows. Like Engine.RunUntil,
// events beyond limit stay queued for a later Run.
func (d *Domains) Run(ctx context.Context, limit VTime) error {
	d.Seal()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		t, any := Infinity, false
		for _, e := range d.engs {
			if nt, ok := e.NextTime(); ok {
				any = true
				if nt < t {
					t = nt
				}
			}
		}
		if !any || t > limit {
			return nil
		}
		end := t + d.lookahead
		if end < t {
			end = Infinity // overflow: one unbounded final window
		}
		if limit != Infinity && end > limit+1 {
			end = limit + 1 // run events at limit itself, none beyond
		}
		d.window(end)
		d.barrier()
	}
}

// spawnThreshold is the previous-window event count below which window runs
// every domain inline instead of spawning goroutines: a sparse window holds
// a few microseconds of work per domain, less than the cost of waking a
// goroutine on another core, so fine-grained phases execute serially (still
// logged and replayed identically) and only dense phases pay for — and
// profit from — real parallelism.
const spawnThreshold = 256

// window runs [.., end) on every domain with work due, in parallel when the
// load estimate justifies goroutine handoff.
func (d *Domains) window(end VTime) {
	d.round++
	if d.OnWindow != nil {
		d.OnWindow(d.round)
	}
	if d.lastWin < spawnThreshold {
		for _, e := range d.engs {
			if t, ok := e.NextTime(); ok && t < end {
				e.sh.windowEnd = end
				e.runWindow(end - 1)
			}
		}
		return
	}
	var first *Engine
	for _, e := range d.engs {
		if t, ok := e.NextTime(); !ok || t >= end {
			continue
		}
		e.sh.windowEnd = end
		if first == nil {
			first = e
			continue
		}
		d.wg.Add(1)
		go func(e *Engine) {
			defer d.wg.Done()
			e.runWindow(end - 1)
		}(e)
	}
	if first != nil {
		first.runWindow(end - 1) // run one domain on this goroutine
	}
	d.wg.Wait()
}

// barrier replays the window's dispatches in global (time, seq) order by
// K-way merging the per-domain logs (each already sorted — domains dispatch
// in key order), assigning serial sequence numbers to every scheduling
// call, then re-keys each domain's surviving events and injects
// cross-domain ones. The merge scans the <=K heads linearly per step:
// domain counts are small, so the scan beats a heap.
func (d *Domains) barrier() {
	total := 0
	for i, e := range d.engs {
		sh := e.sh
		total += len(sh.disp)
		if len(sh.disp) > 0 {
			r := sh.disp[0]
			d.heads[i] = mergeHead{t: r.t, g: sh.translate(r.seq), ok: true}
		} else {
			d.heads[i].ok = false
		}
	}
	d.lastWin = total
	var lastT VTime
	var lastG uint64
	first := true
	for {
		best := -1
		for i := range d.heads {
			h := &d.heads[i]
			if !h.ok {
				continue
			}
			if best < 0 || h.t < d.heads[best].t ||
				(h.t == d.heads[best].t && h.g < d.heads[best].g) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		bh := d.heads[best]
		// The merged key sequence must be strictly increasing; anything else
		// means a domain's log contradicts the global order.
		if !first && (bh.t < lastT || (bh.t == lastT && bh.g <= lastG)) {
			panic("sim: barrier replay diverged from window execution")
		}
		lastT, lastG, first = bh.t, bh.g, false
		sh := d.engs[best].sh
		rec := sh.disp[sh.di]
		sh.di++
		for k := int32(0); k < rec.n; k++ {
			dest := sh.calls[sh.ci]
			sh.ci++
			d.g++
			if dest < 0 {
				sh.liveG = append(sh.liveG, d.g)
			} else {
				ev := sh.defers[sh.fi]
				sh.fi++
				ev.seq = d.g
				dst := d.engs[dest].sh
				dst.inj = append(dst.inj, ev)
			}
		}
		if sh.di < len(sh.disp) {
			r := sh.disp[sh.di]
			d.heads[best] = mergeHead{t: r.t, g: sh.translate(r.seq), ok: true}
		} else {
			d.heads[best].ok = false
		}
	}
	for _, e := range d.engs {
		sh := e.sh
		if sh.di != len(sh.disp) || sh.ci != len(sh.calls) || sh.fi != len(sh.defers) {
			panic("sim: window logs not fully consumed by barrier replay")
		}
		// Re-key this window's surviving events from engine-local to global
		// sequence numbers. The i'th same-domain call of the window carries
		// local key seqBase+1+i and global key liveG[i]; both numberings are
		// increasing in i, so the rewrite preserves every heap comparison.
		if base := sh.seqBase; len(sh.liveG) > 0 {
			for i := range e.events {
				if e.events[i].seq > base {
					e.events[i].seq = sh.liveG[e.events[i].seq-base-1]
				}
			}
		}
		for _, ev := range sh.inj {
			e.pushEvent(ev)
		}
		for i := range sh.defers {
			sh.defers[i] = event{} // release handler references
		}
		for i := range sh.inj {
			sh.inj[i] = event{}
		}
		sh.disp, sh.calls = sh.disp[:0], sh.calls[:0]
		sh.defers, sh.inj = sh.defers[:0], sh.inj[:0]
		sh.liveG = sh.liveG[:0]
		sh.di, sh.ci, sh.fi = 0, 0, 0
		e.seq = d.g
		sh.seqBase = d.g
	}
}
