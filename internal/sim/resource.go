package sim

// Pool models a k-server resource with deterministic service times and FIFO
// admission: page-table walkers, cache ports, DRAM banks. Acquire returns the
// time at which service can begin; the caller schedules its own completion
// event at start+service.
//
// Pool is intentionally not an event source itself: components that need to
// inspect or reorder their queue (the IOMMU PW-queue revisit mechanism, for
// example) keep an explicit queue and use Pool only for the busy/free
// bookkeeping of the servers.
type Pool struct {
	free []VTime // next-free time of each server
}

// NewPool creates a pool of k servers, all free at time zero.
func NewPool(k int) *Pool {
	if k <= 0 {
		panic("sim: pool must have at least one server")
	}
	return &Pool{free: make([]VTime, k)}
}

// Servers returns the number of servers in the pool.
func (p *Pool) Servers() int { return len(p.free) }

// Acquire books the earliest-available server for a job arriving at `now`
// requiring `service` cycles, and returns the start time of service
// (>= now). The server is marked busy until start+service.
func (p *Pool) Acquire(now VTime, service VTime) (start VTime) {
	best := 0
	for i := 1; i < len(p.free); i++ {
		if p.free[i] < p.free[best] {
			best = i
		}
	}
	start = now
	if p.free[best] > start {
		start = p.free[best]
	}
	p.free[best] = start + service
	return start
}

// NextFree returns the earliest time at which any server is free.
func (p *Pool) NextFree() VTime {
	best := p.free[0]
	for _, t := range p.free[1:] {
		if t < best {
			best = t
		}
	}
	return best
}

// Busy reports how many servers are busy at time now.
func (p *Pool) Busy(now VTime) int {
	n := 0
	for _, t := range p.free {
		if t > now {
			n++
		}
	}
	return n
}

// Line models a single serialised resource with a rate, such as a network
// link: each job occupies the line for size/rate cycles, jobs are served in
// arrival order, and the caller learns when its occupancy ends.
type Line struct {
	nextFree VTime
	// BusyCycles accumulates total occupied cycles, for utilisation stats.
	BusyCycles VTime
}

// Occupy books the line for a job arriving at now that occupies it for
// hold cycles. It returns the time at which the job's occupancy starts and
// the time it ends.
func (l *Line) Occupy(now VTime, hold VTime) (start, end VTime) {
	start = now
	if l.nextFree > start {
		start = l.nextFree
	}
	end = start + hold
	l.nextFree = end
	l.BusyCycles += hold
	return start, end
}

// FreeAt returns the time at which the line next becomes free.
func (l *Line) FreeAt() VTime { return l.nextFree }

// Backlog returns how many cycles of work are queued ahead of a job arriving
// at now (zero if the line is idle).
func (l *Line) Backlog(now VTime) VTime {
	if l.nextFree <= now {
		return 0
	}
	return l.nextFree - now
}
