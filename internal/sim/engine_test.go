package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hdpat/internal/metrics"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(10, func() { got = append(got, 2) })
	e.Schedule(5, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 3) })
	e.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Errorf("Now() = %d, want 20", e.Now())
	}
}

func TestEngineSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(7, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-cycle events ran out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []VTime
	e.Schedule(1, func() {
		trace = append(trace, e.Now())
		e.Schedule(3, func() { trace = append(trace, e.Now()) })
		e.Schedule(0, func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	want := []VTime{1, 1, 4}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	for _, d := range []VTime{5, 10, 15, 20} {
		e.Schedule(d, func() { ran++ })
	}
	e.RunUntil(10)
	if ran != 2 {
		t.Fatalf("ran %d events by t=10, want 2", ran)
	}
	if e.Pending() != 2 {
		t.Fatalf("pending %d, want 2", e.Pending())
	}
	e.Run()
	if ran != 4 {
		t.Fatalf("ran %d events total, want 4", ran)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(1, func() { ran++; e.Stop() })
	e.Schedule(2, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("Stop did not halt engine: ran %d", ran)
	}
	e.Run() // resumes
	if ran != 2 {
		t.Fatalf("resume after Stop ran %d, want 2", ran)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(3, func() { n++ })
	if !e.Step() {
		t.Fatal("Step returned false with a pending event")
	}
	if n != 1 || e.Now() != 3 {
		t.Fatalf("after Step: n=%d now=%d", n, e.Now())
	}
	if e.Step() {
		t.Fatal("Step returned true with no events")
	}
}

// Property: for any set of delays, events execute in nondecreasing time order
// and the engine processes all of them.
func TestEngineTimeMonotonic(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var times []VTime
		for _, d := range delays {
			d := VTime(d)
			e.Schedule(d, func() { times = append(times, e.Now()) })
		}
		e.Run()
		if len(times) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPoolSingleServerSerialises(t *testing.T) {
	p := NewPool(1)
	s1 := p.Acquire(0, 100)
	s2 := p.Acquire(0, 100)
	s3 := p.Acquire(250, 100)
	if s1 != 0 || s2 != 100 || s3 != 250 {
		t.Fatalf("starts = %d,%d,%d; want 0,100,250", s1, s2, s3)
	}
}

func TestPoolParallelism(t *testing.T) {
	p := NewPool(4)
	for i := 0; i < 4; i++ {
		if s := p.Acquire(0, 50); s != 0 {
			t.Fatalf("server %d start %d, want 0", i, s)
		}
	}
	if s := p.Acquire(0, 50); s != 50 {
		t.Fatalf("5th job start %d, want 50", s)
	}
	if got := p.Busy(25); got != 4 {
		t.Fatalf("Busy(25) = %d, want 4", got)
	}
}

// Property: a k-server pool never has more than k jobs in service at once,
// and starts are never before arrivals.
func TestPoolInvariants(t *testing.T) {
	f := func(seed int64, k8 uint8) bool {
		k := int(k8%8) + 1
		rng := rand.New(rand.NewSource(seed))
		p := NewPool(k)
		type iv struct{ s, e VTime }
		var jobs []iv
		now := VTime(0)
		for i := 0; i < 200; i++ {
			now += VTime(rng.Intn(20))
			svc := VTime(rng.Intn(50) + 1)
			s := p.Acquire(now, svc)
			if s < now {
				return false
			}
			jobs = append(jobs, iv{s, s + svc})
		}
		// Check max concurrency k at every start point.
		for _, j := range jobs {
			conc := 0
			for _, o := range jobs {
				if o.s <= j.s && j.s < o.e {
					conc++
				}
			}
			if conc > k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLine(t *testing.T) {
	var l Line
	s, e := l.Occupy(10, 5)
	if s != 10 || e != 15 {
		t.Fatalf("first occupy %d-%d, want 10-15", s, e)
	}
	s, e = l.Occupy(11, 5)
	if s != 15 || e != 20 {
		t.Fatalf("second occupy %d-%d, want 15-20", s, e)
	}
	if b := l.Backlog(16); b != 4 {
		t.Fatalf("Backlog(16) = %d, want 4", b)
	}
	if b := l.Backlog(30); b != 0 {
		t.Fatalf("Backlog(30) = %d, want 0", b)
	}
	if l.BusyCycles != 10 {
		t.Fatalf("BusyCycles = %d, want 10", l.BusyCycles)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(VTime(j%17), func() {})
		}
		e.Run()
	}
}

func TestEngineNextTimeEmpty(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextTime(); ok {
		t.Error("NextTime on an empty heap reported ok")
	}
	e.Schedule(5, func() {})
	if next, ok := e.NextTime(); !ok || next != 5 {
		t.Errorf("NextTime = %d, %v, want 5, true", next, ok)
	}
	e.Run()
	if _, ok := e.NextTime(); ok {
		t.Error("NextTime after drain reported ok")
	}
}

func TestEngineScheduleAtCurrentCycle(t *testing.T) {
	// Zero-delay events scheduled from a handler run later in the same
	// cycle, after already-queued same-cycle events, and At(now) is legal.
	e := NewEngine()
	var order []string
	e.At(10, func() {
		order = append(order, "first")
		e.Schedule(0, func() { order = append(order, "nested") })
		e.At(e.Now(), func() { order = append(order, "at-now") })
	})
	e.At(10, func() { order = append(order, "second") })
	e.Run()
	if e.Now() != 10 {
		t.Errorf("clock = %d, want 10", e.Now())
	}
	want := []string{"first", "second", "nested", "at-now"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestEngineStopMidDrainDeterminism stops a run partway, resumes it, and
// checks the event order matches an uninterrupted run — with and without
// metrics attached, which must not perturb dispatch in any way.
func TestEngineStopMidDrainDeterminism(t *testing.T) {
	build := func(e *Engine, log *[]int) {
		for i := 0; i < 20; i++ {
			i := i
			e.At(VTime(i%7), func() {
				*log = append(*log, i)
				if i == 3 {
					e.Schedule(2, func() { *log = append(*log, 100+i) })
				}
			})
		}
	}

	var plain []int
	ep := NewEngine()
	build(ep, &plain)
	ep.Run()

	var sliced []int
	es := NewEngine()
	es.AttachMetrics(metrics.NewRegistry())
	build(es, &sliced)
	for i := 0; es.Pending() > 0 && i < 1000; i++ {
		// Stop after every event: the worst-case drain interruption.
		es.At(es.Now(), func() {})
		es.Step()
		es.Stop()
		es.Run()
	}
	// Filter out the no-op stopper events' absence: sliced should contain
	// exactly the same payload sequence.
	if len(sliced) != len(plain) {
		t.Fatalf("sliced log %v != plain %v", sliced, plain)
	}
	for i := range plain {
		if sliced[i] != plain[i] {
			t.Fatalf("order diverged at %d: %v vs %v", i, sliced, plain)
		}
	}
}

func TestEngineSamplerBoundaries(t *testing.T) {
	e := NewEngine()
	var samples []VTime
	e.AttachSampler(10, func(at VTime) { samples = append(samples, at) })
	for _, d := range []VTime{5, 12, 35, 35, 60} {
		e.At(d, func() {})
	}
	e.Run()
	// Boundaries fire only when an event at or past them runs: 10 before the
	// t=12 event; 20 and 30 before t=35; 40, 50 and 60 before t=60. No
	// boundary beyond the final event, and none at 0.
	want := []VTime{10, 20, 30, 40, 50, 60}
	if len(samples) != len(want) {
		t.Fatalf("samples = %v, want %v", samples, want)
	}
	for i := range want {
		if samples[i] != want[i] {
			t.Fatalf("samples = %v, want %v", samples, want)
		}
	}
}

func TestEngineSamplerObserveOnly(t *testing.T) {
	run := func(e *Engine) ([]int, uint64) {
		var log []int
		for i := 0; i < 30; i++ {
			i := i
			e.Schedule(VTime((i*13)%40), func() { log = append(log, i) })
		}
		e.Run()
		return log, e.Processed
	}
	plain, plainN := run(NewEngine())
	es := NewEngine()
	fired := 0
	es.AttachSampler(7, func(VTime) { fired++ })
	sampled, sampledN := run(es)
	if plainN != sampledN {
		t.Fatalf("Processed %d with sampler vs %d without", sampledN, plainN)
	}
	if len(plain) != len(sampled) {
		t.Fatalf("event counts diverged: %d vs %d", len(sampled), len(plain))
	}
	for i := range plain {
		if plain[i] != sampled[i] {
			t.Fatalf("sampler perturbed order: %v vs %v", sampled, plain)
		}
	}
	if fired == 0 {
		t.Fatal("sampler never fired")
	}
}

func TestEngineSamplerSeesPreEventState(t *testing.T) {
	// The sampler at boundary b observes state as of the last event before b:
	// the engine clock has not advanced to the triggering event yet.
	e := NewEngine()
	var clockAtSample []VTime
	e.AttachSampler(10, func(at VTime) { clockAtSample = append(clockAtSample, e.Now()) })
	e.At(4, func() {})
	e.At(25, func() {})
	e.Run()
	// Boundaries 10 and 20 fire before the t=25 event, with the clock still 4.
	if len(clockAtSample) != 2 || clockAtSample[0] != 4 || clockAtSample[1] != 4 {
		t.Fatalf("engine clock at sample times = %v, want [4 4]", clockAtSample)
	}
}

func TestEngineSamplerStepAndDetach(t *testing.T) {
	e := NewEngine()
	var samples []VTime
	e.AttachSampler(5, func(at VTime) { samples = append(samples, at) })
	e.At(7, func() {})
	e.At(13, func() {})
	if !e.Step() { // fires boundary 5 before the t=7 event
		t.Fatal("Step returned false")
	}
	if len(samples) != 1 || samples[0] != 5 {
		t.Fatalf("samples after first Step = %v, want [5]", samples)
	}
	e.AttachSampler(0, nil) // detach
	e.Run()
	if len(samples) != 1 {
		t.Fatalf("detached sampler still fired: %v", samples)
	}
}

func TestEngineSamplerAttachMidRunAligns(t *testing.T) {
	e := NewEngine()
	var samples []VTime
	e.At(23, func() {
		// Attaching at t=23 with period 10 aligns the next boundary to 30 —
		// never a boundary in the past.
		e.AttachSampler(10, func(at VTime) { samples = append(samples, at) })
	})
	e.At(31, func() {})
	e.Run()
	if len(samples) != 1 || samples[0] != 30 {
		t.Fatalf("samples = %v, want [30]", samples)
	}
}

func TestEngineMetricsObserveOnly(t *testing.T) {
	reg := metrics.NewRegistry()
	run := func(e *Engine) []int {
		var log []int
		for i := 0; i < 10; i++ {
			i := i
			e.Schedule(VTime(10-i), func() { log = append(log, i) })
		}
		e.Run()
		return log
	}
	a := run(NewEngine())
	em := NewEngine()
	em.AttachMetrics(reg)
	b := run(em)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("metrics perturbed order: %v vs %v", a, b)
		}
	}
	s := reg.Snapshot()
	if s.Counter("sim.events_dispatched") != 10 {
		t.Errorf("events_dispatched = %d", s.Counter("sim.events_dispatched"))
	}
	if s.Gauge("sim.heap_peak") < 1 {
		t.Errorf("heap_peak = %d", s.Gauge("sim.heap_peak"))
	}
	if s.Gauge("sim.heap_depth") != 0 {
		t.Errorf("heap_depth after drain = %d", s.Gauge("sim.heap_depth"))
	}
}

// TestEngineSamplerLimitCutFiresTrailingBoundaries is the regression test for
// the sampler boundary gap: when RunUntil's limit cuts the run with events
// still pending, boundaries between the last executed event and the limit
// must fire — they used to be dropped, silently truncating time series.
func TestEngineSamplerLimitCutFiresTrailingBoundaries(t *testing.T) {
	e := NewEngine()
	var samples []VTime
	e.AttachSampler(10, func(at VTime) { samples = append(samples, at) })
	e.At(12, func() {})
	e.At(95, func() {})
	e.RunUntil(47) // runs t=12, leaves t=95 pending
	want := []VTime{10, 20, 30, 40}
	if len(samples) != len(want) {
		t.Fatalf("samples = %v, want %v", samples, want)
	}
	for i := range want {
		if samples[i] != want[i] {
			t.Fatalf("samples = %v, want %v", samples, want)
		}
	}
	// Resuming past the limit must not double-fire: boundaries 50..90 fire
	// before the t=95 event, exactly once each.
	e.RunUntil(Infinity)
	if len(samples) != 9 || samples[4] != 50 || samples[8] != 90 {
		t.Fatalf("samples after resume = %v", samples)
	}
}

// TestEngineSamplerLimitCutMatchesSliced: a single RunUntil(limit) and the
// same run sliced into smaller RunUntil calls fire identical boundary sets —
// the property the wafer's cancellation slicing depends on.
func TestEngineSamplerLimitCutMatchesSliced(t *testing.T) {
	build := func() *Engine {
		e := NewEngine()
		for _, d := range []VTime{3, 18, 44, 90} {
			e.At(d, func() {})
		}
		return e
	}
	var whole, sliced []VTime
	ew := build()
	ew.AttachSampler(10, func(at VTime) { whole = append(whole, at) })
	ew.RunUntil(65)
	es := build()
	es.AttachSampler(10, func(at VTime) { sliced = append(sliced, at) })
	for lim := VTime(5); lim <= 65; lim += 5 {
		es.RunUntil(lim)
	}
	if len(whole) != len(sliced) {
		t.Fatalf("whole %v vs sliced %v", whole, sliced)
	}
	for i := range whole {
		if whole[i] != sliced[i] {
			t.Fatalf("whole %v vs sliced %v", whole, sliced)
		}
	}
}

// TestEngineFlushSamples: a drained run leaves its trailing partial window
// open; FlushSamples closes it without firing anything twice.
func TestEngineFlushSamples(t *testing.T) {
	e := NewEngine()
	var samples []VTime
	e.AttachSampler(10, func(at VTime) { samples = append(samples, at) })
	e.At(25, func() {})
	e.Run()
	if len(samples) != 2 { // 10, 20 before the t=25 event
		t.Fatalf("samples before flush = %v", samples)
	}
	e.FlushSamples(30) // close the [20, 30) window the run ended inside
	if len(samples) != 3 || samples[2] != 30 {
		t.Fatalf("samples after flush = %v", samples)
	}
	e.FlushSamples(30) // idempotent
	e.FlushSamples(Infinity)
	if len(samples) != 3 {
		t.Fatalf("flush re-fired boundaries: %v", samples)
	}
	var detached Engine
	detached.FlushSamples(100) // no sampler: no-op, no panic
}
