package sim

import (
	"context"
	"testing"
)

// ringNode is one station of a synthetic ring workload. Every dispatch mixes
// the event payload and time into a running hash, then forwards work: a
// same-cycle tie event, a local follow-up, and a message to the next node a
// full lookahead away. The hash makes each node's final state sensitive to
// its exact dispatch order, so a sharded run that merges windows in the
// wrong order cannot match the serial states.
type ringNode struct {
	id    int
	dom   int
	eng   *Engine
	ring  []*ringNode
	L     VTime
	state uint64
	log   []VTime
}

func (n *ringNode) Event(arg EventArg) {
	now := n.eng.Now()
	n.state = n.state*1000003 + uint64(now)*31 + arg.A + 1
	n.log = append(n.log, now)
	if arg.B == 0 {
		return
	}
	next := n.ring[(n.id+1)%len(n.ring)]
	n.eng.CrossAt(next.dom, now+n.L, next, EventArg{A: n.state & 0xffff, B: arg.B - 1})
	if arg.B%3 == 0 {
		n.eng.AtH(now, n, EventArg{A: 1}) // same-cycle tie
	}
	n.eng.AtH(now+1, n, EventArg{A: n.state >> 48})
}

// buildRing wires k nodes, each on the engine engAt assigns, and seeds one
// initial event per node at staggered times (several nodes share a start
// cycle, exercising cross-domain ties).
func buildRing(k int, L VTime, hops uint64, engAt func(i int) (*Engine, int)) []*ringNode {
	ring := make([]*ringNode, k)
	for i := range ring {
		eng, dom := engAt(i)
		ring[i] = &ringNode{id: i, dom: dom, eng: eng, ring: ring, L: L}
	}
	for i, n := range ring {
		n.eng.AtH(VTime(i%3), n, EventArg{A: uint64(i) * 7, B: hops})
	}
	return ring
}

// TestDomainsMatchesSerial checks the core determinism contract: per-node
// final states and dispatch-time sequences of a sharded run equal the serial
// engine's. CrossAt degenerates to AtH on a serial engine, so the same model
// drives both.
func TestDomainsMatchesSerial(t *testing.T) {
	const k, L, hops = 8, 16, 40
	se := NewEngine()
	serial := buildRing(k, L, hops, func(i int) (*Engine, int) { return se, 0 })
	se.RunUntil(Infinity)

	for _, nd := range []int{2, 3, 4} {
		d := NewDomains(nd, L)
		sharded := buildRing(k, L, hops, func(i int) (*Engine, int) {
			dom := i * nd / k
			return d.Engine(dom), dom
		})
		if err := d.Run(context.Background(), Infinity); err != nil {
			t.Fatalf("domains=%d: %v", nd, err)
		}
		if d.Processed() != se.Processed {
			t.Errorf("domains=%d: processed %d events, serial %d", nd, d.Processed(), se.Processed)
		}
		for i := range serial {
			if serial[i].state != sharded[i].state {
				t.Errorf("domains=%d node %d: state %#x != serial %#x", nd, i, sharded[i].state, serial[i].state)
			}
			if len(serial[i].log) != len(sharded[i].log) {
				t.Fatalf("domains=%d node %d: %d dispatches, serial %d", nd, i, len(sharded[i].log), len(serial[i].log))
			}
			for j := range serial[i].log {
				if serial[i].log[j] != sharded[i].log[j] {
					t.Fatalf("domains=%d node %d dispatch %d: at %d, serial at %d",
						nd, i, j, sharded[i].log[j], serial[i].log[j])
				}
			}
		}
	}
}

// fanNode doubles itself every cycle until its budget runs out, pushing the
// per-window event count past spawnThreshold so windows execute on spawned
// goroutines (under -race this is the kernel's data-race test).
type fanNode struct {
	id    int
	dom   int
	eng   *Engine
	peers []*fanNode
	L     VTime
	state uint64
}

func (n *fanNode) Event(arg EventArg) {
	now := n.eng.Now()
	n.state = n.state*1000003 + uint64(now)*31 + arg.A + 1
	if arg.B == 0 {
		return
	}
	n.eng.AtH(now+1, n, EventArg{A: n.state & 0xff, B: arg.B - 1})
	n.eng.AtH(now+2, n, EventArg{A: n.state >> 56, B: arg.B - 1})
	peer := n.peers[(n.id+1)%len(n.peers)]
	n.eng.CrossAt(peer.dom, now+n.L, peer, EventArg{A: n.state & 7, B: arg.B / 2})
}

func TestDomainsDenseWindows(t *testing.T) {
	const k, L = 4, 16
	build := func(engAt func(i int) (*Engine, int)) []*fanNode {
		peers := make([]*fanNode, k)
		for i := range peers {
			eng, dom := engAt(i)
			peers[i] = &fanNode{id: i, dom: dom, eng: eng, peers: peers, L: L}
		}
		for i, n := range peers {
			n.eng.AtH(VTime(i), n, EventArg{B: 12})
		}
		return peers
	}
	se := NewEngine()
	serial := build(func(i int) (*Engine, int) { return se, 0 })
	se.RunUntil(Infinity)
	if se.Processed < 4*spawnThreshold {
		t.Fatalf("workload too sparse to exercise the spawn path: %d events", se.Processed)
	}

	d := NewDomains(k, L)
	sharded := build(func(i int) (*Engine, int) { return d.Engine(i), i })
	if err := d.Run(context.Background(), Infinity); err != nil {
		t.Fatal(err)
	}
	if d.Processed() != se.Processed {
		t.Errorf("processed %d events, serial %d", d.Processed(), se.Processed)
	}
	if d.Rounds() == 0 {
		t.Error("no windows ran")
	}
	for i := range serial {
		if serial[i].state != sharded[i].state {
			t.Errorf("node %d: state %#x != serial %#x", i, sharded[i].state, serial[i].state)
		}
	}
}

// TestDomainsRunLimit checks that Run leaves events beyond the limit queued,
// like Engine.RunUntil, and that a later Run picks them up.
func TestDomainsRunLimit(t *testing.T) {
	d := NewDomains(2, 8)
	var fired []VTime
	for _, at := range []VTime{3, 10, 25} {
		at := at
		d.Engine(0).AtH(at, funcEvent(func() { fired = append(fired, at) }), EventArg{})
	}
	if err := d.Run(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 10 {
		t.Fatalf("Run(10) fired %v, want [3 10]", fired)
	}
	if d.Engine(0).Pending() != 1 {
		t.Fatalf("event beyond limit not left queued: pending=%d", d.Engine(0).Pending())
	}
	if err := d.Run(context.Background(), Infinity); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 || fired[2] != 25 {
		t.Fatalf("resumed Run fired %v, want [3 10 25]", fired)
	}
}

// badNode schedules a cross-domain event closer than the lookahead from
// inside a window — the contract violation CrossAt must catch.
type badNode struct{ eng *Engine }

func (b *badNode) Event(EventArg) {
	b.eng.CrossAt(1, b.eng.Now()+1, b, EventArg{})
}

func TestDomainsLookaheadViolationPanics(t *testing.T) {
	d := NewDomains(2, 32)
	d.Engine(0).AtH(1, &badNode{eng: d.Engine(0)}, EventArg{})
	defer func() {
		if recover() == nil {
			t.Error("cross-domain post inside the window did not panic")
		}
	}()
	_ = d.Run(context.Background(), 100)
}

func TestDomainsSetupAndSeal(t *testing.T) {
	d := NewDomains(3, 16)
	if d.N() != 3 {
		t.Fatalf("N=%d, want 3", d.N())
	}
	// Setup-mode CrossAt posts directly on the destination engine.
	h := funcEvent(func() {})
	d.Engine(0).CrossAt(2, 5, h, EventArg{})
	if d.Engine(2).Pending() != 1 || d.Engine(0).Pending() != 0 {
		t.Fatalf("setup CrossAt landed on pending=[%d %d %d], want [0 0 1]",
			d.Engine(0).Pending(), d.Engine(1).Pending(), d.Engine(2).Pending())
	}
	d.Seal()
	d.Seal() // idempotent
	if err := d.Run(context.Background(), Infinity); err != nil {
		t.Fatal(err)
	}
	if d.Processed() != 1 {
		t.Fatalf("processed %d, want 1", d.Processed())
	}
}

func TestDomainsOnWindow(t *testing.T) {
	d := NewDomains(2, 8)
	for i := 0; i < 5; i++ {
		d.Engine(i%2).AtH(VTime(i*20), funcEvent(func() {}), EventArg{})
	}
	var rounds []uint64
	d.OnWindow = func(r uint64) { rounds = append(rounds, r) }
	if err := d.Run(context.Background(), Infinity); err != nil {
		t.Fatal(err)
	}
	if uint64(len(rounds)) != d.Rounds() {
		t.Fatalf("OnWindow fired %d times, Rounds()=%d", len(rounds), d.Rounds())
	}
	for i, r := range rounds {
		if r != uint64(i+1) {
			t.Fatalf("rounds %v not 1-based consecutive", rounds)
		}
	}
}

func TestDomainsRunCancelled(t *testing.T) {
	d := NewDomains(2, 8)
	d.Engine(0).AtH(1, funcEvent(func() {}), EventArg{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := d.Run(ctx, Infinity); err != context.Canceled {
		t.Fatalf("Run on cancelled ctx: %v, want context.Canceled", err)
	}
}

func TestNewDomainsPanics(t *testing.T) {
	for _, c := range []struct {
		n int
		l VTime
	}{{0, 8}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDomains(%d, %d) did not panic", c.n, c.l)
				}
			}()
			NewDomains(c.n, c.l)
		}()
	}
}
