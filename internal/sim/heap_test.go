package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEvent / refHeap is a reference priority queue built on the standard
// library's container/heap — the implementation the inlined 4-ary heap
// replaced. The property tests below check that both dispatch any schedule
// in the identical (time, seq) order.
type refEvent struct {
	time VTime
	seq  uint64
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// dispatched records one executed engine event for order comparison.
type dispatched struct {
	time VTime
	seq  uint64
}

// recorder is a Handler that appends its EventArg.A (the seq stamped at
// schedule time) and the engine clock to the shared log. arg.B == 1 marks a
// stopper event: it halts the run from inside dispatch, and the driver loop
// resumes — Stop/resume must not perturb the order of the remaining queue.
type recorder struct {
	e   *Engine
	log *[]dispatched
}

func (r *recorder) Event(arg EventArg) {
	*r.log = append(*r.log, dispatched{time: r.e.Now(), seq: arg.A})
	if arg.B == 1 {
		r.e.Stop()
	}
}

// runSchedule plays one randomized schedule through a fresh Engine and
// through the reference heap, and fails if the dispatch orders differ.
//
// The schedule is driven by rnd: a mix of up-front events, events scheduled
// from inside running events (including same-cycle zero delays, the subtle
// ordering case), and periodic Stop/resume cuts.
func runSchedule(t *testing.T, rnd *rand.Rand, initial, nested int) {
	t.Helper()

	e := NewEngine()
	var got []dispatched
	rec := &recorder{e: e, log: &got}
	ref := &refHeap{}
	var refSeq uint64

	// post mirrors one logical event into both queues. The engine stamps
	// its own seq internally; we track the same numbering explicitly for
	// the reference (both start at 1 and increment per scheduling call).
	var post func(at VTime, remaining *int)
	post = func(at VTime, remaining *int) {
		refSeq++
		seq := refSeq
		heap.Push(ref, refEvent{time: at, seq: seq})
		arg := EventArg{A: seq}
		if *remaining > 0 && rnd.Intn(2) == 0 {
			*remaining--
			// Nested variant: on dispatch, record then schedule another
			// event at a random (possibly zero) delay — the same-cycle
			// collision case the (time, seq) order must resolve.
			e.PostAt(at, funcEvent(func() {
				rec.Event(arg)
				d := VTime(rnd.Intn(4)) // 0..3, zero = same cycle
				post(e.Now()+d, remaining)
			}), EventArg{})
		} else {
			if rnd.Intn(8) == 0 {
				arg.B = 1 // stopper: Stop mid-run, driver resumes
			}
			e.PostAt(at, rec, arg)
		}
	}

	remaining := nested
	for i := 0; i < initial; i++ {
		post(VTime(rnd.Intn(50)), &remaining)
	}

	// Interleave full runs with Stop/resume and bounded RunUntil slices.
	for e.Pending() > 0 {
		switch rnd.Intn(3) {
		case 0:
			// Stop after a random number of events, then resume.
			n := rnd.Intn(5) + 1
			cut := e.Processed + uint64(n)
			stopAt := e.Processed
			for e.Pending() > 0 && stopAt < cut {
				if !e.Step() {
					break
				}
				stopAt = e.Processed
			}
		case 1:
			if next, ok := e.NextTime(); ok {
				e.RunUntil(next + VTime(rnd.Intn(10)))
			}
		default:
			e.Run()
		}
	}

	// Drain the reference queue.
	var want []dispatched
	for ref.Len() > 0 {
		ev := heap.Pop(ref).(refEvent)
		want = append(want, dispatched{time: ev.time, seq: ev.seq})
	}

	if len(got) != len(want) {
		t.Fatalf("dispatched %d events, reference has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: engine dispatched (t=%d seq=%d), reference (t=%d seq=%d)",
				i, got[i].time, got[i].seq, want[i].time, want[i].seq)
		}
	}
}

// TestHeapOrderProperty dispatches many randomized schedules — heavy on
// same-cycle collisions — and checks the 4-ary heap agrees with
// container/heap on every one.
func TestHeapOrderProperty(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		runSchedule(t, rnd, 40+rnd.Intn(60), 30)
	}
}

// FuzzHeapOrder is the fuzz form of the same property, so the corpus can
// grow adversarial schedules beyond the fixed seeds above.
func FuzzHeapOrder(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(10))
	f.Add(int64(42), uint8(80), uint8(40))
	f.Add(int64(7), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, initial, nested uint8) {
		if initial == 0 {
			initial = 1
		}
		rnd := rand.New(rand.NewSource(seed))
		runSchedule(t, rnd, int(initial), int(nested))
	})
}

// TestHeapCapacityRelease is the regression test for event-heap memory
// retention: after a depth spike drains, the heap's backing array must not
// stay pinned at peak size.
func TestHeapCapacityRelease(t *testing.T) {
	e := NewEngine()
	const spike = 100_000
	n := 0
	for i := 0; i < spike; i++ {
		e.Schedule(VTime(i), func() { n++ })
	}
	if cap(e.events) < spike {
		t.Fatalf("expected spike capacity >= %d, got %d", spike, cap(e.events))
	}
	e.Run()
	if n != spike {
		t.Fatalf("ran %d events, want %d", n, spike)
	}
	// After a full drain the shrink policy must have walked capacity down
	// near minHeapCap; allow one doubling of slack.
	if c := cap(e.events); c > 2*minHeapCap {
		t.Fatalf("heap capacity %d retained after drain (want <= %d)", c, 2*minHeapCap)
	}

	// Steady-state churn must not thrash: capacity stays bounded while a
	// self-rescheduling workload holds a constant small depth.
	left := 10_000
	var tick func()
	tick = func() {
		if left > 0 {
			left--
			e.Schedule(1, tick)
		}
	}
	for i := 0; i < 8; i++ {
		e.Schedule(1, tick)
	}
	e.Run()
	if c := cap(e.events); c > 2*minHeapCap {
		t.Fatalf("steady-state heap capacity %d (want <= %d)", c, 2*minHeapCap)
	}
}

// TestTypedEventAllocs verifies the typed form's core promise: posting and
// dispatching a typed event does not allocate (beyond heap growth, which is
// warmed up first).
func TestTypedEventAllocs(t *testing.T) {
	e := NewEngine()
	var sink uint64
	h := funcHandler{&sink}
	// Warm the heap's backing array; keep depth under minHeapCap so the
	// drain below never triggers a (deliberate, amortized) shrink realloc.
	for i := 0; i < minHeapCap; i++ {
		e.Post(VTime(i), h, EventArg{A: uint64(i)})
	}
	e.Run()
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < minHeapCap/2; i++ {
			e.Post(VTime(i), h, EventArg{A: uint64(i)})
		}
		e.Run()
	})
	if avg > 0 {
		t.Fatalf("typed schedule+dispatch allocates %.1f per batch", avg)
	}
}

type funcHandler struct{ sink *uint64 }

func (h funcHandler) Event(arg EventArg) { *h.sink += arg.A }
