// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation. Each bench regenerates its artifact on a reduced
// benchmark set (the quick subset, small ops budgets) so `go test -bench=.`
// exercises every experiment end to end; `cmd/experiments` produces the
// full-size tables. Headline metrics are attached via b.ReportMetric.
//
// The experiments harness and hdpat.RunBatch fan simulations across worker
// goroutines, so tier-1 verification must include the race detector:
// `make check` (go vet ./... && go test -race ./...) is the canonical gate,
// and `go test -race -bench=BenchmarkBatch -benchtime 1x` exercises the
// parallel path under it. BenchmarkBatch3x3{Serial,Parallel} measure the
// batch engine itself — on >= 4 cores the parallel run of the 3 schemes x 3
// benchmarks batch should be well over 1.5x faster than the serial one.
package hdpat_test

import (
	"context"
	"strconv"
	"testing"

	"hdpat"
	"hdpat/internal/experiments"
)

// benchParams keeps bench runs small but representative.
func benchParams() experiments.Params {
	return experiments.Params{Quick: true, OpsBudget: 32, Seed: 3,
		Benchmarks: []string{"PR", "SPMV", "FIR"}}
}

// runExperiment executes one experiment b.N times and reports a headline
// metric extracted from the final table (the last row's last numeric cell,
// which is the MEAN/GEOMEAN for the performance figures).
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var tbl experiments.Table
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchParams())
		tbl, err = e.Run(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(tbl.Rows) == 0 {
		b.Fatalf("%s produced no rows", id)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	for i := len(last) - 1; i >= 0; i-- {
		if v, err := strconv.ParseFloat(last[i], 64); err == nil {
			b.ReportMetric(v, "headline")
			break
		}
	}
}

func BenchmarkTable1Config(b *testing.B)        { runExperiment(b, "tab1") }
func BenchmarkTable2Workloads(b *testing.B)     { runExperiment(b, "tab2") }
func BenchmarkFig2Headroom(b *testing.B)        { runExperiment(b, "fig2") }
func BenchmarkFig3Breakdown(b *testing.B)       { runExperiment(b, "fig3") }
func BenchmarkFig4BufferPressure(b *testing.B)  { runExperiment(b, "fig4") }
func BenchmarkFig5Imbalance(b *testing.B)       { runExperiment(b, "fig5") }
func BenchmarkFig6ReuseCounts(b *testing.B)     { runExperiment(b, "fig6") }
func BenchmarkFig7ReuseDistance(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkFig8Spatial(b *testing.B)         { runExperiment(b, "fig8") }
func BenchmarkFig13SizeInvariance(b *testing.B) { runExperiment(b, "fig13") }
func BenchmarkFig14Overall(b *testing.B)        { runExperiment(b, "fig14") }
func BenchmarkFig15Ablation(b *testing.B)       { runExperiment(b, "fig15") }
func BenchmarkFig16Offload(b *testing.B)        { runExperiment(b, "fig16") }
func BenchmarkFig17RoundTrip(b *testing.B)      { runExperiment(b, "fig17") }
func BenchmarkFig18PrefetchDegree(b *testing.B) { runExperiment(b, "fig18") }
func BenchmarkFig19RTvsTLB(b *testing.B)        { runExperiment(b, "fig19") }
func BenchmarkFig20PageSize(b *testing.B)       { runExperiment(b, "fig20") }
func BenchmarkFig21GPUConfigs(b *testing.B)     { runExperiment(b, "fig21") }
func BenchmarkFig22Wafer7x12(b *testing.B)      { runExperiment(b, "fig22") }
func BenchmarkAreaPower(b *testing.B)           { runExperiment(b, "area") }

// benchBatchSpecs is the acceptance batch: 3 schemes x 3 benchmarks on the
// default 7x7 wafer.
func benchBatchSpecs() []hdpat.RunSpec {
	var specs []hdpat.RunSpec
	for _, scheme := range []string{"baseline", "transfw", "hdpat"} {
		for _, bench := range []string{"PR", "KM", "FIR"} {
			specs = append(specs, hdpat.RunSpec{Scheme: scheme, Benchmark: bench, OpsBudget: 48, Seed: 1})
		}
	}
	return specs
}

// runBatchBench executes the acceptance batch with the given worker count
// and reports total simulated cycles as the headline.
func runBatchBench(b *testing.B, workers int) {
	b.Helper()
	cfg := hdpat.DefaultConfig()
	specs := benchBatchSpecs()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		runs, err := hdpat.RunBatch(context.Background(), cfg, specs, hdpat.WithWorkers(workers))
		if err != nil {
			b.Fatal(err)
		}
		cycles = 0
		for _, r := range runs {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			cycles += uint64(r.Result.Cycles)
		}
	}
	b.ReportMetric(float64(cycles), "simcycles")
}

// BenchmarkBatch3x3Serial and BenchmarkBatch3x3Parallel compare the batch
// engine against serial execution of the same specs. Compare with:
//
//	go test -bench 'BenchmarkBatch3x3' -benchtime 3x
//
// On >= 4 cores the parallel variant should beat serial by well over 1.5x.
func BenchmarkBatch3x3Serial(b *testing.B)   { runBatchBench(b, 1) }
func BenchmarkBatch3x3Parallel(b *testing.B) { runBatchBench(b, 0) }
