package hdpat_test

import (
	"fmt"
	"testing"

	"hdpat"
)

func TestSimulateDefault(t *testing.T) {
	cfg := hdpat.DefaultConfig()
	cfg.MeshW, cfg.MeshH = 5, 5
	cfg.GPM.NumCUs = 8
	res, err := hdpat.Simulate(cfg, hdpat.RunSpec{Scheme: "hdpat", Benchmark: "PR", OpsBudget: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.TotalOps == 0 {
		t.Fatalf("empty result %+v", res)
	}
	if res.Scheme != "hdpat" || res.Benchmark != "PR" {
		t.Errorf("labels %s/%s", res.Scheme, res.Benchmark)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := hdpat.Simulate(hdpat.DefaultConfig(), hdpat.RunSpec{Scheme: "hdpat"}); err == nil {
		t.Error("missing benchmark accepted")
	}
	if _, err := hdpat.Simulate(hdpat.DefaultConfig(), hdpat.RunSpec{Scheme: "nope", Benchmark: "PR"}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := hdpat.Simulate(hdpat.DefaultConfig(), hdpat.RunSpec{Benchmark: "NOPE"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestCompare(t *testing.T) {
	cfg := hdpat.DefaultConfig()
	cfg.MeshW, cfg.MeshH = 5, 5
	cfg.GPM.NumCUs = 8
	cmp, err := hdpat.Compare(cfg, "hdpat", "KM", hdpat.WithOpsBudget(32), hdpat.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Baseline.Scheme != "baseline" || cmp.Result.Scheme != "hdpat" {
		t.Errorf("schemes %s/%s", cmp.Baseline.Scheme, cmp.Result.Scheme)
	}
	if cmp.Scheme != "hdpat" || cmp.Benchmark != "KM" {
		t.Errorf("labels %s/%s", cmp.Scheme, cmp.Benchmark)
	}
	if cmp.Speedup <= 0 {
		t.Errorf("speedup = %f", cmp.Speedup)
	}
}

func TestSimulateWithIOMMU(t *testing.T) {
	cfg := hdpat.DefaultConfig()
	cfg.MeshW, cfg.MeshH = 5, 5
	cfg.GPM.NumCUs = 8
	applied := false
	res, err := hdpat.SimulateWithIOMMU(cfg,
		hdpat.RunSpec{Scheme: "hdpat", Benchmark: "FIR", OpsBudget: 32, Seed: 1},
		func(io *hdpat.IOMMUConfig) {
			applied = true
			io.PrefetchDegree = 8
		})
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Error("tweak not invoked")
	}
	if res.IOMMU.Prefetches == 0 {
		t.Error("prefetch override had no effect")
	}
}

func TestInventories(t *testing.T) {
	if len(hdpat.Benchmarks()) != 14 {
		t.Errorf("benchmarks = %d", len(hdpat.Benchmarks()))
	}
	if len(hdpat.Schemes()) < 12 {
		t.Errorf("schemes = %d", len(hdpat.Schemes()))
	}
	if hdpat.Wafer7x12Config().MeshH != 12 {
		t.Error("7x12 config wrong")
	}
}

func ExampleBenchmarks() {
	fmt.Println(len(hdpat.Benchmarks()), hdpat.Benchmarks()[0], hdpat.Benchmarks()[13])
	// Output: 14 AES SPMV
}

func ExampleSimulate() {
	cfg := hdpat.DefaultConfig()
	cfg.MeshW, cfg.MeshH = 5, 5 // small wafer for a fast example
	cfg.GPM.NumCUs = 4
	res, err := hdpat.Simulate(cfg, hdpat.RunSpec{
		Scheme: "hdpat", Benchmark: "KM", OpsBudget: 24, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Scheme, res.Benchmark, res.Cycles > 0, res.TotalOps > 0)
	// Output: hdpat KM true true
}
