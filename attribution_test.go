// Public-API tests for the latency attribution layer: WithAttribution
// wiring, the exact-accounting guarantee against the pre-existing latency
// counters, the determinism guarantee, and comparison diffs.
package hdpat_test

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"hdpat"
	"hdpat/internal/attr"
)

func TestSimulateWithAttribution(t *testing.T) {
	res, err := hdpat.Simulate(obsConfig(), hdpat.RunSpec{Scheme: "hdpat", Benchmark: "SPMV"},
		hdpat.WithOpsBudget(16), hdpat.WithSeed(1), hdpat.WithAttribution())
	if err != nil {
		t.Fatal(err)
	}
	b := res.Breakdown
	if b == nil {
		t.Fatal("Result.Breakdown is nil with attribution enabled")
	}
	if b.Scheme != "hdpat" || b.Benchmark != "SPMV" {
		t.Errorf("breakdown labels = %q/%q", b.Scheme, b.Benchmark)
	}
	if b.Requests == 0 {
		t.Fatal("no requests attributed")
	}
	if b.Stage(attr.StageTotal).Count != b.Requests {
		t.Error("total distribution count != requests")
	}
	if len(b.Links) == 0 {
		t.Error("no link heatmap entries")
	}
	if len(b.TLB) == 0 {
		t.Error("no TLB levels")
	}
	if len(b.Sources) == 0 {
		t.Error("no source mix")
	}
	if got := b.Cycles; got != uint64(res.Cycles) {
		t.Errorf("breakdown cycles %d != result cycles %d", got, res.Cycles)
	}
	// The renderers must produce non-trivial output for a real run.
	var md bytes.Buffer
	b.WriteMarkdown(&md)
	if !strings.Contains(md.String(), "| total |") {
		t.Errorf("markdown report missing stage table:\n%s", md.String())
	}
	if rows := strings.Split(strings.TrimSpace(b.HeatmapCSV()), "\n"); len(rows) < 2 {
		t.Errorf("heatmap CSV has no data rows:\n%s", b.HeatmapCSV())
	}
}

// TestBreakdownExactAccounting is the acceptance criterion: with attribution
// enabled, per-stage cycle sums equal the end-to-end translation cycles
// reported by the existing counters, exactly.
func TestBreakdownExactAccounting(t *testing.T) {
	for _, scheme := range []string{"baseline", "hdpat", "redirect", "transfw"} {
		res, err := hdpat.Simulate(obsConfig(), hdpat.RunSpec{Scheme: scheme, Benchmark: "SPMV"},
			hdpat.WithOpsBudget(16), hdpat.WithSeed(1), hdpat.WithAttribution())
		if err != nil {
			t.Fatal(err)
		}
		b := res.Breakdown
		if b.Clipped != 0 {
			t.Errorf("%s: %d clipped requests (stage spans exceeding lifecycle)", scheme, b.Clipped)
		}
		var stageSum uint64
		for _, s := range attr.StageOrder {
			stageSum += b.Stage(s).Sum
		}
		total := b.Stage(attr.StageTotal)
		if stageSum != total.Sum {
			t.Errorf("%s: stage sums %d != total %d", scheme, stageSum, total.Sum)
		}
		// The ledger's total is exactly the cycles the GPM counters already
		// accumulate (request issue to completion, per remote translation).
		var legacy, legacyN uint64
		for _, gs := range res.GPMStats {
			legacy += gs.RemoteLatencySum
			for _, n := range gs.RemoteBySource {
				legacyN += n
			}
		}
		if total.Sum != legacy {
			t.Errorf("%s: attributed cycles %d != gpm.RemoteLatencySum %d", scheme, total.Sum, legacy)
		}
		if total.Count != legacyN {
			t.Errorf("%s: attributed requests %d != completed remote translations %d",
				scheme, total.Count, legacyN)
		}
	}
}

// TestPublicDeterminismWithAttribution: simulation outcomes are byte-
// identical with attribution on and off.
func TestPublicDeterminismWithAttribution(t *testing.T) {
	spec := hdpat.RunSpec{Scheme: "hdpat", Benchmark: "KM"}
	plain, err := hdpat.Simulate(obsConfig(), spec, hdpat.WithOpsBudget(16), hdpat.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	attributed, err := hdpat.Simulate(obsConfig(), spec, hdpat.WithOpsBudget(16), hdpat.WithSeed(7),
		hdpat.WithAttribution(), hdpat.WithMetrics(hdpat.NewMetricsRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	attributed.Metrics = nil
	attributed.Breakdown = nil
	if !reflect.DeepEqual(plain, attributed) {
		t.Error("attribution changed public-API results")
	}
}

// TestCompareBreakdownDiff: comparisons carry per-stage attribution deltas
// when attribution is on, and nil otherwise.
func TestCompareBreakdownDiff(t *testing.T) {
	cmp, err := hdpat.Compare(obsConfig(), "hdpat", "SPMV",
		hdpat.WithOpsBudget(16), hdpat.WithSeed(1), hdpat.WithAttribution())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Result.Breakdown == nil || cmp.Baseline.Breakdown == nil {
		t.Fatal("batch runs missing breakdowns")
	}
	d := cmp.BreakdownDiff()
	if d == nil {
		t.Fatal("BreakdownDiff returned nil with attribution enabled")
	}
	for _, k := range []string{"admission.mean", "pwq.mean", "walk.mean", "wire.mean",
		"total.mean", "total.p95", "requests"} {
		if _, ok := d[k]; !ok {
			t.Errorf("diff missing key %q", k)
		}
	}
	plain, err := hdpat.Compare(obsConfig(), "hdpat", "SPMV",
		hdpat.WithOpsBudget(8), hdpat.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if plain.BreakdownDiff() != nil {
		t.Error("BreakdownDiff should be nil without WithAttribution")
	}
}

// TestBatchAttributionIndependence: concurrent batch runs get independent
// ledgers, and results match the same specs run serially.
func TestBatchAttributionIndependence(t *testing.T) {
	specs := []hdpat.RunSpec{
		{Scheme: "baseline", Benchmark: "SPMV"},
		{Scheme: "hdpat", Benchmark: "SPMV"},
	}
	runs, err := hdpat.RunBatch(context.Background(), obsConfig(), specs,
		hdpat.WithOpsBudget(8), hdpat.WithSeed(1), hdpat.WithWorkers(2), hdpat.WithAttribution())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range runs {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Result.Breakdown == nil {
			t.Fatalf("run %d has no breakdown", i)
		}
		serial, err := hdpat.Simulate(obsConfig(), specs[i],
			hdpat.WithOpsBudget(8), hdpat.WithSeed(1), hdpat.WithAttribution())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial.Breakdown, r.Result.Breakdown) {
			t.Errorf("run %d: batch breakdown differs from serial", i)
		}
	}
}
