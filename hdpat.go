// Package hdpat is the public entry point of the HDPAT reproduction: a
// discrete-event simulator of wafer-scale GPU address translation
// implementing the paper's hierarchical distributed translation scheme
// (concentric auxiliary caching with clustering and rotation, IOMMU
// redirection, PW-queue revisit, and proactive page-entry delivery) together
// with the baseline and comparator schemes its evaluation uses.
//
// Typical use:
//
//	cfg := hdpat.DefaultConfig()                    // Table I system
//	res, err := hdpat.Simulate(cfg, hdpat.RunSpec{
//	    Scheme:    "hdpat",
//	    Benchmark: "SPMV",
//	}, hdpat.WithSeed(1))
//	fmt.Println(res.Cycles, res.OffloadFraction())
//
// Behaviour is adjusted with functional options (WithIOMMU, WithConfig,
// WithOpsBudget, WithSeed, ...), and every entry point has a
// context-carrying form (SimulateContext) that honours cancellation
// mid-simulation.
//
// Independent runs parallelise at the batch level: RunBatch fans a slice of
// RunSpecs across GOMAXPROCS workers with deterministic, submission-ordered
// results, and CompareAll evaluates a schemes x benchmarks cross-product
// against a shared per-benchmark baseline:
//
//	cmp, _ := hdpat.CompareAll(ctx, cfg,
//	    []string{"transfw", "hdpat"}, []string{"SPMV", "PR"},
//	    hdpat.WithSeed(1))
//	for _, c := range cmp {
//	    fmt.Println(c.Scheme, c.Benchmark, c.Speedup)
//	}
//
// Simulations are deterministic: a parallel batch returns results identical
// to the same specs run serially. Unknown names surface as wrapped sentinel
// errors (ErrUnknownScheme, ErrUnknownBenchmark) matchable with errors.Is.
//
// The cmd/experiments tool regenerates every table and figure of the
// paper's evaluation on top of this API.
package hdpat

import (
	"context"
	"fmt"
	"runtime"

	"hdpat/internal/attr"
	"hdpat/internal/check"
	"hdpat/internal/config"
	"hdpat/internal/metrics"
	"hdpat/internal/runner"
	"hdpat/internal/sim"
	"hdpat/internal/trace"
	"hdpat/internal/wafer"
	"hdpat/internal/workload"
)

// Config is the full system configuration (Table I defaults via
// DefaultConfig). It re-exports config.System.
type Config = config.System

// IOMMUConfig re-exports the IOMMU parameters for sensitivity sweeps.
type IOMMUConfig = config.IOMMU

// Result is the outcome of one simulation run.
type Result = wafer.Result

// Breakdown is the per-request latency attribution of one run (see
// WithAttribution): per-stage cycle distributions with exact critical-path
// accounting, the serving-source mix, TLB hierarchy hit rates, the per-link
// NoC heatmap and sampled time series. It re-exports attr.Breakdown;
// renderers are Breakdown.WriteMarkdown and Breakdown.HeatmapCSV (used by
// cmd/report).
type Breakdown = attr.Breakdown

// MetricsRegistry collects named counters, gauges and log2 histograms from
// every component of a run (see WithMetrics). It re-exports
// metrics.Registry; create one with NewMetricsRegistry.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is an immutable point-in-time view of a registry; each
// run's final snapshot is available on Result.Metrics when WithMetrics is
// in effect.
type MetricsSnapshot = metrics.Snapshot

// MetricsProgress is the payload the /progress endpoint of ServeMetrics
// reports.
type MetricsProgress = metrics.Progress

// NewMetricsRegistry returns an empty registry for WithMetrics.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// ServeOption adjusts which endpoints ServeMetrics exposes; see WithPprof.
type ServeOption = metrics.ServeOption

// WithPprof has ServeMetrics additionally mount the net/http/pprof
// profiling endpoints under /debug/pprof/, so a live simulation can be
// CPU- or heap-profiled over the metrics listener (see
// docs/observability.md for the profiling workflow). Off by default: the
// profiles expose process internals — enable it only on listeners that
// are not publicly reachable.
func WithPprof() ServeOption { return metrics.WithPprof() }

// ServeMetrics serves reg over HTTP on addr: Prometheus text exposition on
// /metrics, a JSON snapshot on /metrics.json, and — when progress is
// non-nil — a JSON progress report on /progress. ServeOptions add more
// endpoints (WithPprof). It blocks like http.ListenAndServe; run it in a
// goroutine alongside a live simulation or batch sharing reg.
func ServeMetrics(addr string, reg *MetricsRegistry, progress func() MetricsProgress, opts ...ServeOption) error {
	return metrics.ListenAndServe(addr, reg, progress, opts...)
}

// PanicError is the error type wrapping a panic recovered from one run of a
// batch (see RunBatch); inspect it with errors.As.
type PanicError = runner.PanicError

// Sentinel errors for name resolution, wrapped with the offending name;
// match them with errors.Is.
var (
	// ErrUnknownScheme reports a scheme not listed by Schemes().
	ErrUnknownScheme = wafer.ErrUnknownScheme
	// ErrUnknownBenchmark reports a benchmark not listed by Benchmarks().
	ErrUnknownBenchmark = workload.ErrUnknownBenchmark
	// ErrInvariant matches every invariant violation reported under
	// WithInvariants, including through joined errors.
	ErrInvariant = check.ErrInvariant
)

// InvariantViolation is one invariant breach found under WithInvariants,
// naming the invariant, the request involved (0 when not per-request), and
// the detection cycle. It re-exports check.Violation; violations arrive
// joined into the run error and unwrap with errors.As.
type InvariantViolation = check.Violation

// DefaultConfig returns the paper's Table I system: a 7x7 wafer of
// quarter-MI100 GPMs with a central CPU/IOMMU, 4 KB pages.
func DefaultConfig() Config { return config.Default() }

// Wafer7x12Config returns the enlarged wafer of Fig 22.
func Wafer7x12Config() Config { return config.Wafer7x12() }

// Schemes lists every available translation scheme, from "baseline" to
// "hdpat" and the comparators ("transfw", "valkyrie", "barre", ...).
func Schemes() []string { return wafer.SchemeNames() }

// Benchmarks lists the Table II benchmark abbreviations.
func Benchmarks() []string { return workload.Names() }

// RunSpec names what to simulate.
type RunSpec struct {
	// Scheme is one of Schemes() (default "baseline").
	Scheme string
	// Benchmark is one of Benchmarks().
	Benchmark string
	// OpsBudget is the approximate per-CU operation count (0 = default).
	OpsBudget int
	// Seed makes runs reproducible; equal seeds give identical results.
	Seed int64
}

// Simulate configures the IOMMU for the chosen scheme, runs the benchmark
// on the configured wafer, and returns the measured result.
func Simulate(cfg Config, spec RunSpec, opts ...Option) (Result, error) {
	return SimulateContext(context.Background(), cfg, spec, opts...)
}

// SimulateContext is Simulate with cancellation: the engine checks ctx
// between slices of the event loop and returns ctx.Err() (and a zero
// Result) when it fires.
func SimulateContext(ctx context.Context, cfg Config, spec RunSpec, opts ...Option) (Result, error) {
	return simulate(ctx, cfg, spec, newRunConfig(opts))
}

// simulate executes one run under a resolved option set.
func simulate(ctx context.Context, cfg Config, spec RunSpec, rc *runConfig) (Result, error) {
	if spec.Scheme == "" {
		spec.Scheme = "baseline"
	}
	if spec.Benchmark == "" {
		return Result{}, fmt.Errorf("hdpat: RunSpec.Benchmark is required")
	}
	if rc.opsBudget != nil {
		spec.OpsBudget = *rc.opsBudget
	}
	if rc.seed != nil {
		spec.Seed = *rc.seed
	}
	b, err := workload.ByAbbr(spec.Benchmark)
	if err != nil {
		return Result{}, err
	}
	cfg, err = wafer.ConfigFor(spec.Scheme, cfg)
	if err != nil {
		return Result{}, err
	}
	for _, f := range rc.tweakCfg {
		f(&cfg)
	}
	for _, f := range rc.tweakIOMMU {
		f(&cfg.IOMMU)
	}
	wopts := wafer.Options{
		Scheme:     spec.Scheme,
		Benchmark:  b,
		OpsBudget:  spec.OpsBudget,
		Seed:       spec.Seed,
		MaxCycles:  sim.VTime(rc.maxCycles),
		Metrics:    rc.metrics,
		Invariants: rc.invariants,
		Routing:    rc.routing,
	}
	if rc.attribution {
		wopts.Attribution = &attr.Config{}
	}
	if rc.domains != nil {
		n := *rc.domains
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		wopts.Domains = n
	}
	var owned *trace.Tracer
	if rc.tracer != nil {
		wopts.Trace = rc.tracer // batch child: the batch owns the stream
	} else if rc.traceW != nil {
		owned = trace.New(rc.traceW, rc.traceFormat)
		wopts.Trace = owned
	}
	res, err := wafer.RunContext(ctx, cfg, wopts)
	if cerr := owned.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("hdpat: trace: %w", cerr)
	}
	return res, err
}

// SimulateWithIOMMU is Simulate with a hook to adjust the IOMMU parameters
// after the scheme's defaults are applied.
//
// Deprecated: use Simulate (or SimulateContext) with WithIOMMU.
func SimulateWithIOMMU(cfg Config, spec RunSpec, tweak func(*IOMMUConfig)) (Result, error) {
	return Simulate(cfg, spec, WithIOMMU(tweak))
}
