// Package hdpat is the public entry point of the HDPAT reproduction: a
// discrete-event simulator of wafer-scale GPU address translation
// implementing the paper's hierarchical distributed translation scheme
// (concentric auxiliary caching with clustering and rotation, IOMMU
// redirection, PW-queue revisit, and proactive page-entry delivery) together
// with the baseline and comparator schemes its evaluation uses.
//
// Typical use:
//
//	cfg := hdpat.DefaultConfig()                    // Table I system
//	res, err := hdpat.Simulate(cfg, hdpat.RunSpec{
//	    Scheme:    "hdpat",
//	    Benchmark: "SPMV",
//	})
//	fmt.Println(res.Cycles, res.OffloadFraction())
//
// The cmd/experiments tool regenerates every table and figure of the
// paper's evaluation on top of this API.
package hdpat

import (
	"fmt"

	"hdpat/internal/config"
	"hdpat/internal/wafer"
	"hdpat/internal/workload"
)

// Config is the full system configuration (Table I defaults via
// DefaultConfig). It re-exports config.System.
type Config = config.System

// IOMMUConfig re-exports the IOMMU parameters for sensitivity sweeps.
type IOMMUConfig = config.IOMMU

// Result is the outcome of one simulation run.
type Result = wafer.Result

// DefaultConfig returns the paper's Table I system: a 7x7 wafer of
// quarter-MI100 GPMs with a central CPU/IOMMU, 4 KB pages.
func DefaultConfig() Config { return config.Default() }

// Wafer7x12Config returns the enlarged wafer of Fig 22.
func Wafer7x12Config() Config { return config.Wafer7x12() }

// Schemes lists every available translation scheme, from "baseline" to
// "hdpat" and the comparators ("transfw", "valkyrie", "barre", ...).
func Schemes() []string { return wafer.SchemeNames() }

// Benchmarks lists the Table II benchmark abbreviations.
func Benchmarks() []string { return workload.Names() }

// RunSpec names what to simulate.
type RunSpec struct {
	// Scheme is one of Schemes() (default "baseline").
	Scheme string
	// Benchmark is one of Benchmarks().
	Benchmark string
	// OpsBudget is the approximate per-CU operation count (0 = default).
	OpsBudget int
	// Seed makes runs reproducible; equal seeds give identical results.
	Seed int64
}

// Simulate configures the IOMMU for the chosen scheme, runs the benchmark
// on the configured wafer, and returns the measured result.
func Simulate(cfg Config, spec RunSpec) (Result, error) {
	if spec.Scheme == "" {
		spec.Scheme = "baseline"
	}
	if spec.Benchmark == "" {
		return Result{}, fmt.Errorf("hdpat: RunSpec.Benchmark is required")
	}
	b, err := workload.ByAbbr(spec.Benchmark)
	if err != nil {
		return Result{}, err
	}
	cfg, err = wafer.ConfigFor(spec.Scheme, cfg)
	if err != nil {
		return Result{}, err
	}
	return wafer.Run(cfg, wafer.Options{
		Scheme:    spec.Scheme,
		Benchmark: b,
		OpsBudget: spec.OpsBudget,
		Seed:      spec.Seed,
	})
}

// SimulateWithIOMMU is Simulate with a hook to adjust the IOMMU parameters
// after the scheme's defaults are applied — the entry point for sensitivity
// sweeps (prefetch degree, redirection table size, walker count).
func SimulateWithIOMMU(cfg Config, spec RunSpec, tweak func(*IOMMUConfig)) (Result, error) {
	if spec.Scheme == "" {
		spec.Scheme = "baseline"
	}
	b, err := workload.ByAbbr(spec.Benchmark)
	if err != nil {
		return Result{}, err
	}
	cfg, err = wafer.ConfigFor(spec.Scheme, cfg)
	if err != nil {
		return Result{}, err
	}
	if tweak != nil {
		tweak(&cfg.IOMMU)
	}
	return wafer.Run(cfg, wafer.Options{
		Scheme:    spec.Scheme,
		Benchmark: b,
		OpsBudget: spec.OpsBudget,
		Seed:      spec.Seed,
	})
}

// Compare runs the same benchmark under the baseline and the given scheme
// and returns both results plus the speedup.
func Compare(cfg Config, scheme, benchmark string, opsBudget int, seed int64) (base, res Result, speedup float64, err error) {
	base, err = Simulate(cfg, RunSpec{Scheme: "baseline", Benchmark: benchmark, OpsBudget: opsBudget, Seed: seed})
	if err != nil {
		return
	}
	res, err = Simulate(cfg, RunSpec{Scheme: scheme, Benchmark: benchmark, OpsBudget: opsBudget, Seed: seed})
	if err != nil {
		return
	}
	speedup = res.Speedup(base)
	return
}
