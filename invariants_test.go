// Public-API tests for the invariant checker: the cross-scheme conformance
// matrix (WithInvariants runs clean on every scheme × benchmark pair at the
// default configuration), the determinism guarantees (results byte-identical
// with invariants on or off, and serial identical to parallel), and the
// error-surface contract.
package hdpat_test

import (
	"context"
	"reflect"
	"testing"

	"hdpat"
	"hdpat/internal/wafer"
)

// invariantSpecs is the full scheme × benchmark cross-product.
func invariantSpecs(ops int) []hdpat.RunSpec {
	var specs []hdpat.RunSpec
	for _, s := range hdpat.Schemes() {
		for _, b := range hdpat.Benchmarks() {
			specs = append(specs, hdpat.RunSpec{Scheme: s, Benchmark: b, OpsBudget: ops, Seed: 1})
		}
	}
	return specs
}

// TestInvariantsCleanAcrossAllSchemes runs the full scheme × benchmark
// cross-product under invariants on the small batch wafer: every pair must
// settle without a violation. The same matrix at the full Table I
// configuration is the cmd/verifyinv conformance harness, run by
// `make verify-invariants` in CI.
func TestInvariantsCleanAcrossAllSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("full conformance matrix in -short mode")
	}
	results, err := hdpat.RunBatch(context.Background(), batchCfg(),
		invariantSpecs(8), hdpat.WithInvariants())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s/%s: %v", r.Spec.Scheme, r.Spec.Benchmark, r.Err)
		}
	}
}

// TestInvariantsDefaultConfig spot-checks representative pairs at the
// unmodified Table I configuration.
func TestInvariantsDefaultConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("default-config invariant runs in -short mode")
	}
	for _, spec := range []hdpat.RunSpec{
		{Scheme: "baseline", Benchmark: "SPMV", OpsBudget: 8, Seed: 1},
		{Scheme: "hdpat", Benchmark: "SPMV", OpsBudget: 8, Seed: 1},
		{Scheme: "iommutlb", Benchmark: "KM", OpsBudget: 8, Seed: 1},
	} {
		if _, err := hdpat.Simulate(hdpat.DefaultConfig(), spec,
			hdpat.WithInvariants(), hdpat.WithAttribution()); err != nil {
			t.Errorf("%s/%s: %v", spec.Scheme, spec.Benchmark, err)
		}
	}
}

// Invariant checking only observes: simulation outcomes are byte-identical
// with the checker on and off.
func TestInvariantsDeterminism(t *testing.T) {
	spec := hdpat.RunSpec{Scheme: "hdpat", Benchmark: "KM"}
	plain, err := hdpat.Simulate(obsConfig(), spec, hdpat.WithOpsBudget(16), hdpat.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	checked, err := hdpat.Simulate(obsConfig(), spec, hdpat.WithOpsBudget(16), hdpat.WithSeed(7),
		hdpat.WithInvariants(), hdpat.WithAttribution())
	if err != nil {
		t.Fatal(err)
	}
	checked.Breakdown = nil
	if !reflect.DeepEqual(plain, checked) {
		t.Error("invariant checking changed public-API results")
	}
}

// Same-seed serial and parallel batches under invariants are byte-identical.
func TestInvariantsSerialVsParallel(t *testing.T) {
	specs := []hdpat.RunSpec{
		{Scheme: "baseline", Benchmark: "SPMV", OpsBudget: 24, Seed: 1},
		{Scheme: "hdpat", Benchmark: "SPMV", OpsBudget: 24, Seed: 1},
		{Scheme: "iommutlb", Benchmark: "KM", OpsBudget: 24, Seed: 1},
		{Scheme: "redirect", Benchmark: "AES", OpsBudget: 24, Seed: 1},
	}
	serial, err := hdpat.RunBatch(context.Background(), batchCfg(), specs,
		hdpat.WithInvariants(), hdpat.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := hdpat.RunBatch(context.Background(), batchCfg(), specs,
		hdpat.WithInvariants(), hdpat.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		serial[i].Wall, parallel[i].Wall = 0, 0
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("parallel batch under invariants differs from serial")
	}
	for _, r := range serial {
		if r.Err != nil {
			t.Errorf("%s/%s: %v", r.Spec.Scheme, r.Spec.Benchmark, r.Err)
		}
	}
}

// TestInvariants30x30 runs the invariant checker on the giant 30x30 wafer
// with the concentrated scale workload (see bench_scale_test.go): the
// conservation and accounting invariants must hold when most of the wafer
// is unmaterialized and link state is sparse — the configuration where a
// broken VisitLinks sweep or a resurrected lazy GPM would first show up.
func TestInvariants30x30(t *testing.T) {
	if testing.Short() {
		t.Skip("30x30 run is not short")
	}
	res, err := wafer.Run(scaleConfig(t), wafer.Options{
		Scheme: "hdpat", Benchmark: scaleWorkload(),
		OpsBudget: 8, Seed: 1,
		Invariants: true,
	})
	if err != nil {
		t.Fatalf("30x30 invariants: %v", err)
	}
	if len(res.ValidationErrors) != 0 {
		t.Errorf("validation errors: %v", res.ValidationErrors)
	}
	if res.Events == 0 || res.Cycles == 0 {
		t.Errorf("degenerate run: events=%d cycles=%d", res.Events, res.Cycles)
	}
}
