module hdpat

go 1.22
