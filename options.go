package hdpat

// Option adjusts how Simulate, SimulateContext, RunBatch, Compare and
// CompareAll execute. Options compose left to right: later options override
// earlier ones where they conflict (WithSeed, WithOpsBudget) and accumulate
// where they don't (WithConfig, WithIOMMU).
type Option func(*runConfig)

// runConfig is the resolved option set for one call.
type runConfig struct {
	tweakCfg   []func(*Config)
	tweakIOMMU []func(*IOMMUConfig)
	opsBudget  *int
	seed       *int64
	maxCycles  uint64
	workers    int
	progress   func(done, total int)
	perRun     func(i int) []Option
}

func newRunConfig(opts []Option) *runConfig {
	rc := &runConfig{}
	rc.apply(opts)
	return rc
}

func (rc *runConfig) apply(opts []Option) {
	for _, o := range opts {
		o(rc)
	}
}

// forRun resolves the option set for the i'th spec of a batch, folding in
// WithPerRun options. The clone deep-copies the hook slices so concurrent
// workers never share appendable backing arrays.
func (rc *runConfig) forRun(i int) *runConfig {
	if rc.perRun == nil {
		return rc
	}
	c := *rc
	c.tweakCfg = append([]func(*Config){}, rc.tweakCfg...)
	c.tweakIOMMU = append([]func(*IOMMUConfig){}, rc.tweakIOMMU...)
	c.perRun = nil // per-run options must not recurse
	c.apply(rc.perRun(i))
	return &c
}

// WithConfig registers a hook that adjusts the full system configuration
// after the scheme's defaults are applied — the general entry point for
// sensitivity sweeps (mesh size, HDPAT layers, cache geometry).
func WithConfig(f func(*Config)) Option {
	return func(rc *runConfig) {
		if f != nil {
			rc.tweakCfg = append(rc.tweakCfg, f)
		}
	}
}

// WithIOMMU registers a hook that adjusts the IOMMU parameters after the
// scheme's defaults (and any WithConfig hooks) are applied — prefetch
// degree, redirection table size, walker count. It replaces the old
// SimulateWithIOMMU entry point.
func WithIOMMU(f func(*IOMMUConfig)) Option {
	return func(rc *runConfig) {
		if f != nil {
			rc.tweakIOMMU = append(rc.tweakIOMMU, f)
		}
	}
}

// WithOpsBudget overrides RunSpec.OpsBudget for every run of the call
// (0 restores the simulator default).
func WithOpsBudget(n int) Option {
	return func(rc *runConfig) { rc.opsBudget = &n }
}

// WithSeed overrides RunSpec.Seed for every run of the call.
func WithSeed(seed int64) Option {
	return func(rc *runConfig) { rc.seed = &seed }
}

// WithMaxCycles overrides the runaway-simulation cycle limit
// (0 = the 200M-cycle default).
func WithMaxCycles(cycles uint64) Option {
	return func(rc *runConfig) { rc.maxCycles = cycles }
}

// WithWorkers bounds the number of simulations RunBatch and CompareAll run
// concurrently (<= 0 means GOMAXPROCS; 1 forces serial execution).
// Single-run calls ignore it.
func WithWorkers(n int) Option {
	return func(rc *runConfig) { rc.workers = n }
}

// WithProgress registers a callback invoked after each run of a batch
// settles, with the number settled so far and the batch size. Calls are
// serialised and arrive from worker goroutines. Single-run calls ignore it.
func WithProgress(f func(done, total int)) Option {
	return func(rc *runConfig) { rc.progress = f }
}

// WithPerRun supplies extra options for individual runs of a batch: f is
// called with each spec's submission index and its returned options are
// applied on top of the batch-wide ones. This is how a sweep gives every
// grid cell its own configuration while still executing as one parallel
// batch. Only RunBatch honours it; CompareAll and single-run calls ignore
// it, and nested WithPerRun options are ignored.
func WithPerRun(f func(i int) []Option) Option {
	return func(rc *runConfig) { rc.perRun = f }
}
